// Graph network: partial clustering over a *graph metric* — the paper's
// general model ("clustering over a graph with n nodes and an oracle
// distance function"). We place k depots on a road network so that every
// town is close to a depot along roads, while writing off up to t remote
// settlements that would otherwise dominate the objective.
//
// Run with:
//
//	go run ./examples/graph-network
package main

import (
	"fmt"
	"log"

	"dpc"
)

func main() {
	// A 6x6 grid of towns (unit roads) plus three remote settlements
	// connected by long mountain roads.
	const side = 6
	n := side*side + 3
	var edges []dpc.Edge
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, dpc.Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < side {
				edges = append(edges, dpc.Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	remote := []int{side * side, side*side + 1, side*side + 2}
	edges = append(edges,
		dpc.Edge{U: id(0, 0), V: remote[0], W: 40},
		dpc.Edge{U: id(side-1, side-1), V: remote[1], W: 55},
		dpc.Edge{U: id(0, side-1), V: remote[2], W: 35},
	)

	g, err := dpc.GraphMetric(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	// k=4 depots, up to t=3 settlements written off.
	sol := dpc.SolvePartialMedian(g, nil, 4, 3, dpc.EngineAuto, dpc.SolverOptions{Seed: 1})
	fmt.Println("(k=4, t=3)-median over the road network")
	fmt.Printf("  depots at nodes:      %v\n", sol.Centers)
	fmt.Printf("  total road distance:  %.1f\n", sol.Cost)
	fmt.Printf("  written-off nodes:    %v (the remote settlements are %v)\n",
		sol.Outliers(), remote)

	// Without the outlier budget the mountain roads dominate.
	sol0 := dpc.SolvePartialMedian(g, nil, 4, 0, dpc.EngineAuto, dpc.SolverOptions{Seed: 1})
	fmt.Printf("  with t=0 the cost is  %.1f (%.1fx worse)\n", sol0.Cost, sol0.Cost/sol.Cost)

	// Same network, worst-case (center) objective.
	cen := dpc.SolvePartialCenter(g, nil, 4, 3)
	fmt.Printf("(k=4, t=3)-center radius: %.1f\n", cen.Radius)

	// Feature-space clustering via the angular metric (the paper's
	// "documents in a feature space" setting): three topic directions.
	docs := &dpc.AngularSpace{Pts: []dpc.Point{
		{10, 1, 0}, {8, 2, 0}, {12, 0, 1}, // topic A
		{0, 9, 1}, {1, 11, 0}, {0, 7, 2}, // topic B
		{1, 0, 8}, {0, 2, 10}, // topic C
		{5, 5, 5}, // an off-topic document
	}}
	dsol := dpc.SolvePartialMedian(docs, nil, 3, 1, dpc.EngineAuto, dpc.SolverOptions{Seed: 2})
	fmt.Println("(k=3, t=1)-median over documents in angular feature space")
	fmt.Printf("  topic exemplars: %v, off-topic doc dropped: %v\n", dsol.Centers, dsol.Outliers())
}
