// Center-g: uncertain (k,t)-center under the *global* objective (Eq. 3 of
// the paper): minimize the expected maximum assignment distance over a
// joint realization of all nodes. Algorithm 4 runs a parametric search over
// truncated distances L_tau and pays communication Otilde(skB + tI +
// s log Delta).
//
// Run with:
//
//	go run ./examples/centerg
package main

import (
	"fmt"
	"log"

	"dpc"
)

func main() {
	in := dpc.UncertainMixture(dpc.UncertainSpec{
		N: 120, K: 3, Dim: 2, Support: 4, OutlierFrac: 0.08,
		OutlierBox: 5000, Seed: 17,
	})
	parts := dpc.PartitionNodes(in, 3, dpc.PartitionUniform, 18)
	sites := dpc.SiteNodes(in, parts)

	res, err := dpc.RunCenterG(in.Ground, sites, dpc.CenterGConfig{K: 3, T: 9})
	if err != nil {
		log.Fatal(err)
	}

	obj := dpc.EvalUncertainCenterG(in.Ground, in.Nodes, res.Centers, res.OutlierBudget, 400, 19)
	fmt.Println("uncertain (k,t)-center-g via Algorithm 4")
	fmt.Printf("  tau grid size (O(log Delta)): %d\n", len(res.TauGrid))
	fmt.Printf("  chosen tau-hat:               %.3f\n", res.Tau)
	fmt.Printf("  lower-bound witness tau/3:    %.3f (Lemma 5.13)\n", res.Tau/3)
	fmt.Printf("  Monte-Carlo E[max] objective: %.3f\n", obj)
	fmt.Printf("  communication up:             %d bytes\n", res.Report.UpBytes)
	fmt.Printf("  site outlier budgets:         %v\n", res.SiteBudgets)

	// Contrast with the per-point objective on the same data: center-g is
	// never smaller, because max and expectation do not commute.
	pp, err := dpc.RunUncertain(in.Ground, sites, dpc.UncertainConfig{K: 3, T: 9}, dpc.UncertainCenterPP)
	if err != nil {
		log.Fatal(err)
	}
	ppObj := dpc.EvalUncertainCenterPP(in.Ground, in.Nodes, pp.Centers, pp.OutlierBudget)
	fmt.Printf("\nper-point objective on the same data (Eq. 2): %.3f\n", ppObj)
	fmt.Println("(Eq. 3 upper-bounds Eq. 2: E[max] >= max[E] pointwise)")
}
