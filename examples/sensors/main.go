// Sensors: the paper's motivating workload — a fleet of edge gateways, each
// holding readings from local sensors, some of which are faulty and report
// garbage. We want k representative operating points for the whole fleet
// while ignoring up to t faulty readings, without hauling raw data to the
// control plane.
//
// Run with:
//
//	go run ./examples/sensors
//
// The example builds a skewed fleet (gateways of very different sizes, all
// faulty sensors concentrated in one region), runs distributed
// (k,t)-median and (k,t)-center, and shows how the outlier budget
// allocation concentrates on the faulty region.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpc"
)

const (
	gateways    = 10
	sensorsPerG = 300
	k           = 5
	faulty      = 120 // total faulty sensors, all in gateway 0's region
)

func main() {
	r := rand.New(rand.NewSource(7))

	// Gateway i observes a regime around (40*i, 10): temperature x load.
	sites := make([][]dpc.Point, gateways)
	for g := range sites {
		cx, cy := float64(40*g), 10.0
		for s := 0; s < sensorsPerG; s++ {
			sites[g] = append(sites[g], dpc.Point{
				cx + r.NormFloat64()*3,
				cy + r.NormFloat64()*2,
			})
		}
	}
	// Gateway 0 also hosts the faulty batch: readings that are pure noise.
	for f := 0; f < faulty; f++ {
		sites[0] = append(sites[0], dpc.Point{
			r.Float64()*20000 - 10000,
			r.Float64()*20000 - 10000,
		})
	}

	res, err := dpc.Run(sites, dpc.Config{K: k, T: faulty, Objective: dpc.Median})
	if err != nil {
		log.Fatal(err)
	}
	all := dpc.FlattenSites(sites)
	cost := dpc.Evaluate(all, res.Centers, res.OutlierBudget, dpc.Median)

	fmt.Println("distributed (k,t)-median over the sensor fleet")
	fmt.Printf("  gateways: %d, sensors: %d, faulty: %d\n", gateways, len(all), faulty)
	fmt.Printf("  cost: %.1f   communication: %d bytes up\n", cost, res.Report.UpBytes)
	fmt.Printf("  outlier budget per gateway: %v\n", res.SiteBudgets)
	fmt.Println("  (gateway 0 holds every faulty sensor; the allocation finds that out)")

	// The same fleet under the center objective: worst surviving sensor.
	cen, err := dpc.Run(sites, dpc.Config{K: k, T: faulty, Objective: dpc.Center})
	if err != nil {
		log.Fatal(err)
	}
	radius := dpc.Evaluate(all, cen.Centers, cen.OutlierBudget, dpc.Center)
	fmt.Println("distributed (k,t)-center over the same fleet")
	fmt.Printf("  radius: %.2f   communication: %d bytes up\n", radius, cen.Report.UpBytes)

	// What turning off the outlier budget costs: a single faulty reading
	// dominates the center objective.
	noBudget, err := dpc.Run(sites, dpc.Config{K: k, T: 0, Objective: dpc.Center})
	if err != nil {
		log.Fatal(err)
	}
	r0 := dpc.Evaluate(all, noBudget.Centers, 0, dpc.Center)
	fmt.Printf("  with t=0 the radius explodes to %.0f (%.0fx worse)\n", r0, r0/radius)
}
