// Sublinear: the Section 3.1 trick — accelerate a *centralized*
// (k,t)-median solve by simulating the distributed algorithm sequentially.
// The direct Theorem 3.1 engine is quadratic in n; one simulation level
// brings the exponent to ~4/3, two to ~8/7 (Theorem 3.10), trading a
// constant factor of quality.
//
// Run with:
//
//	go run ./examples/sublinear
package main

import (
	"fmt"

	"dpc"
)

func main() {
	fmt.Println("centralized (k,t)-median: direct vs simulated (Theorem 3.10)")
	fmt.Printf("%8s  %10s  %10s  %10s  %8s  %8s\n",
		"n", "direct", "level-1", "level-2", "cost1/0", "cost2/0")
	for _, n := range []int{2000, 4000, 8000} {
		in := dpc.Mixture(dpc.MixtureSpec{
			N: n, K: 4, Dim: 2, OutlierFrac: 0.04, Seed: int64(n),
		})
		t := n / 50
		var sols [3]dpc.CentralSolution
		for lvl := 0; lvl <= 2; lvl++ {
			sols[lvl] = dpc.Centralized(in.Pts, dpc.CentralConfig{
				K: 4, T: t, Levels: lvl,
				Opts: dpc.SolverOptions{MaxIters: 10, Seed: 1},
			})
		}
		fmt.Printf("%8d  %10v  %10v  %10v  %8.2f  %8.2f\n",
			n,
			sols[0].Elapsed.Round(1e6),
			sols[1].Elapsed.Round(1e6),
			sols[2].Elapsed.Round(1e6),
			sols[1].Cost/sols[0].Cost,
			sols[2].Cost/sols[0].Cost)
	}
	fmt.Println("\ndirect time grows ~n^2; the simulated levels grow with smaller")
	fmt.Println("exponents (4/3, 8/7) but carry 8^j-style constants, so level 1")
	fmt.Println("crosses over first and level 2 pays off only at larger n —")
	fmt.Println("exactly the trade Theorem 3.10 describes. Cost stays within a")
	fmt.Println("small constant of the direct solve.")
}
