// Client API tour: one Request, three backends.
//
// Run with:
//
//	go run ./examples/client
//
// The same dpc.Request — first a point (k,t)-median, then an uncertain
// u-median (Section 5) — is answered by:
//
//   - the Local backend (in-process simulated sites),
//   - a Cluster backend (this process hosts the coordinator; two site
//     "daemons" run as goroutines via client.ServeSite — in production
//     they would be dpc-site -persist processes on other machines),
//   - a Remote backend (an embedded dpc-server reached over real HTTP).
//
// All three return byte-identical centers and identical measured
// communication, because where the protocol runs is a deployment choice,
// not an algorithmic one. The example also shows context cancellation:
// a deadline of 1ms aborts a solve mid-run with context.DeadlineExceeded.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"dpc"
	"dpc/client"
)

func main() {
	ctx := context.Background()

	// A planted instance: 1200 points in 4 clusters plus 5% far outliers,
	// and an uncertain instance of 100 distribution-valued nodes.
	in := dpc.Mixture(dpc.MixtureSpec{N: 1200, K: 4, Dim: 2, OutlierFrac: 0.05, Seed: 42})
	uin := dpc.UncertainMixture(dpc.UncertainSpec{N: 100, K: 3, Support: 3, OutlierFrac: 0.05, Seed: 7})

	const sites = 2
	pointReq := dpc.Request{
		Objective: "median", K: 4, T: 60, Sites: sites, Seed: 1,
		Points: in.Pts,
	}
	uncReq := dpc.Request{
		Objective: "u-median", K: 3, T: 8, Sites: sites, Seed: 1,
		Ground: uin.Ground, Nodes: uin.Nodes,
	}

	// --- Backend 1: Local (in-process sites) ---
	local := dpc.NewLocalClient()

	// --- Backend 2: Cluster (coordinator here, sites as daemons) ---
	cl, err := dpc.ListenCluster("127.0.0.1:0", sites)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < sites; i++ {
		// Round-robin shards, exactly how Local and the server shard.
		var shard []dpc.Point
		for j := i; j < len(in.Pts); j += sites {
			shard = append(shard, in.Pts[j])
		}
		var nodeShard []client.Node
		for j := i; j < len(uin.Nodes); j += sites {
			nodeShard = append(nodeShard, uin.Nodes[j])
		}
		go func(i int) {
			err := client.ServeSite(cl.Addr(), client.SiteData{
				Site: i, Points: shard, Ground: uin.Ground, Nodes: nodeShard,
			}, 10*time.Second)
			if err != nil {
				log.Printf("site %d: %v", i, err)
			}
		}(i)
	}
	cluster, err := cl.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// --- Backend 3: Remote (embedded dpc-server over real HTTP) ---
	srv := dpc.NewServer(dpc.ServeConfig{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	remote := dpc.NewRemoteClient("http://"+ln.Addr().String(), dpc.RemoteOptions{})

	backends := []struct {
		name string
		c    dpc.Client
	}{{"local", local}, {"cluster", cluster}, {"remote", remote}}

	for _, req := range []dpc.Request{pointReq, uncReq} {
		fmt.Printf("\n%s  (k=%d, t=%d, %d sites)\n", req.Objective, req.K, req.T, req.Sites)
		var first []dpc.Point
		for _, b := range backends {
			res, err := b.c.Do(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			match := "(reference)"
			if first == nil {
				first = res.Centers
			} else if reflect.DeepEqual(res.Centers, first) {
				match = "byte-identical"
			} else {
				match = "MISMATCH"
			}
			fmt.Printf("  %-8s %d centers  cost %-12.6g %5d B up  %s\n",
				b.name, len(res.Centers), res.Cost, res.UpBytes, match)
		}
	}

	// --- Cancellation: a deadline aborts the solve mid-protocol ---
	short, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	_, err = local.Do(short, pointReq)
	fmt.Printf("\n1ms deadline: err = %v (DeadlineExceeded: %v)\n",
		err, errors.Is(err, context.DeadlineExceeded))
}
