// Uncertain tracking: objects reported by noisy trackers. Each object's
// position is a discrete distribution over possible locations (Section 5's
// uncertain nodes); trackers are sharded over sites. We cluster the fleet
// into k staging areas while ignoring up to t ghost tracks, comparing the
// compressed-graph protocol (Algorithm 3) against the naive one that ships
// whole distributions.
//
// Run with:
//
//	go run ./examples/uncertain-tracking
package main

import (
	"fmt"
	"log"

	"dpc"
)

func main() {
	// 300 tracked objects in 3 convoys, 8 candidate positions per object,
	// 6% ghost tracks far off the map.
	in := dpc.UncertainMixture(dpc.UncertainSpec{
		N: 300, K: 3, Dim: 2, Support: 8, OutlierFrac: 0.06,
		Scatter: 2.0, Seed: 99,
	})
	parts := dpc.PartitionNodes(in, 5, dpc.PartitionUniform, 100)
	sites := dpc.SiteNodes(in, parts)

	cfg := dpc.UncertainConfig{K: 3, T: 18}
	res, err := dpc.RunUncertain(in.Ground, sites, cfg, dpc.UncertainMedian)
	if err != nil {
		log.Fatal(err)
	}
	cost := dpc.EvalUncertainMedian(in.Ground, in.Nodes, res.Centers, res.OutlierBudget)
	fmt.Println("Algorithm 3 (compressed graph):")
	fmt.Printf("  expected-median cost: %.1f\n", cost)
	fmt.Printf("  communication up:     %d bytes\n", res.Report.UpBytes)

	naive, err := dpc.RunUncertain(in.Ground, sites, dpc.UncertainConfig{
		K: 3, T: 18, Variant: dpc.UncertainOneRoundShipDists,
	}, dpc.UncertainMedian)
	if err != nil {
		log.Fatal(err)
	}
	ncost := dpc.EvalUncertainMedian(in.Ground, in.Nodes, naive.Centers, naive.OutlierBudget)
	fmt.Println("naive baseline (ships full distributions):")
	fmt.Printf("  expected-median cost: %.1f\n", ncost)
	fmt.Printf("  communication up:     %d bytes (%.1fx more)\n",
		naive.Report.UpBytes,
		float64(naive.Report.UpBytes)/float64(res.Report.UpBytes))

	// Worst-object view: uncertain (k,t)-center-pp (Eq. 2 of the paper).
	pp, err := dpc.RunUncertain(in.Ground, sites, cfg, dpc.UncertainCenterPP)
	if err != nil {
		log.Fatal(err)
	}
	worst := dpc.EvalUncertainCenterPP(in.Ground, in.Nodes, pp.Centers, pp.OutlierBudget)
	fmt.Println("center-pp (worst surviving object):")
	fmt.Printf("  max expected distance: %.2f\n", worst)
}
