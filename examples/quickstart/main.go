// Quickstart: distributed (k,t)-median over a planted workload.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It samples a 4-cluster instance with 5% far outliers, splits it over 8
// sites, runs the 2-round Algorithm 1, and compares the measured
// communication against the 1-round baseline.
package main

import (
	"fmt"
	"log"

	"dpc"
)

func main() {
	// A planted instance: 2000 points in 4 clusters plus 5% far outliers.
	in := dpc.Mixture(dpc.MixtureSpec{
		N: 2000, K: 4, Dim: 2, OutlierFrac: 0.05, Seed: 42,
	})
	parts := dpc.Partition(in, 8, dpc.PartitionUniform, 43)
	sites := dpc.SitePoints(in, parts)

	// t = 100 matches the planted outlier count.
	cfg := dpc.Config{K: 4, T: 100, Objective: dpc.Median}
	res, err := dpc.Run(sites, cfg)
	if err != nil {
		log.Fatal(err)
	}

	all := dpc.FlattenSites(sites)
	cost := dpc.Evaluate(all, res.Centers, res.OutlierBudget, dpc.Median)
	fmt.Printf("centers found:        %d\n", len(res.Centers))
	fmt.Printf("partial cost:         %.1f (ignoring %.0f points)\n", cost, res.OutlierBudget)
	fmt.Printf("rounds:               %d\n", res.Report.Rounds)
	fmt.Printf("communication up:     %d bytes\n", res.Report.UpBytes)
	fmt.Printf("communication down:   %d bytes\n", res.Report.DownBytes)
	fmt.Printf("per-site budgets t_i: %v (sum <= 3t)\n", res.SiteBudgets)

	// The 1-round strawman ships every site's t outliers: ~s*t points.
	base, err := dpc.Run(sites, dpc.Config{
		K: 4, T: 100, Objective: dpc.Median, Variant: dpc.OneRound,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-round baseline up:  %d bytes (%.1fx more)\n",
		base.Report.UpBytes,
		float64(base.Report.UpBytes)/float64(res.Report.UpBytes))
}
