package client

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"dpc/internal/jobwire"
	"dpc/internal/serve"
)

// BalancedOptions tunes the Balanced backend. The embedded RemoteOptions
// apply to every per-replica connection.
type BalancedOptions struct {
	RemoteOptions
	// Replication is how many replicas hold each dataset (default 2,
	// clamped to the replica count). Registrations fan out to the
	// dataset's holder set; jobs prefer holders and fail over to the
	// rest, re-registering from the client's retained copy on a replica
	// that has never seen the dataset.
	Replication int
}

// Balanced answers requests against a fleet of dpc-server replicas. Each
// dataset hashes (FNV-1a over its name) to a primary replica and
// replicates to the next Replication-1 in ring order; registrations fan
// out to that holder set, and the registration payload is retained
// client-side so any replica can be brought up to date on demand. Job
// submissions try the primary first and walk the ring on connection
// errors and 503s (queue_full after the per-replica retry budget,
// not_ready, shutting_down); jobs whose replica dies mid-flight — the
// poll loop hits a connection error, a job_not_found from a restarted
// process, or a shutting_down drain — are resubmitted to a survivor.
// Quota rejections (429 quota_exceeded) and validation errors are the
// caller's problem and are never retried.
//
// Balanced makes no attempt at distributed consensus: replicas are
// independent dpc-servers (each with its own journal), the client is the
// only coordinator, and determinism does the rest — the same JobSpec
// yields byte-identical centers on every replica, so it does not matter
// which one answers.
type Balanced struct {
	replicas []*Remote
	urls     []string
	repl     int
	opt      BalancedOptions

	mu   sync.Mutex
	regs map[string]*retainedReg
	st   BalancedStats
}

// BalancedStats counts the failover traffic of a Balanced client's life.
type BalancedStats struct {
	// Retries counts submission attempts beyond the first, summed over
	// jobs (each ring step on a down or saturated replica is one retry).
	Retries int64 `json:"retries"`
	// Resubmissions counts jobs that were lost in flight — their replica
	// died or drained after accepting them — and were resubmitted to a
	// survivor.
	Resubmissions int64 `json:"resubmissions"`
	// Reregistrations counts datasets re-registered onto a replica
	// outside their original holder set during failover.
	Reregistrations int64 `json:"reregistrations"`
	// PerReplica counts completed jobs by serving replica base URL.
	PerReplica map[string]int64 `json:"per_replica"`
}

// retainedReg is the client-side copy of one dataset registration: enough
// to replay it (registration plus appends, in order) onto any replica.
type retainedReg struct {
	kind    serve.DatasetKind
	points  []Point
	ground  *Ground
	nodes   []Node
	appends [][]Point
	// present marks the replica indexes known to hold the dataset.
	present map[int]bool
}

// NewBalanced creates a Balanced backend over the replica base URLs.
func NewBalanced(urls []string, opt BalancedOptions) (*Balanced, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("client: balanced backend needs at least one replica URL")
	}
	if opt.Replication == 0 {
		opt.Replication = 2
	}
	if opt.Replication < 1 {
		opt.Replication = 1
	}
	if opt.Replication > len(urls) {
		opt.Replication = len(urls)
	}
	// Share one http.Client across replicas unless the caller provided one.
	if opt.HTTPClient == nil {
		opt.HTTPClient = &http.Client{}
	}
	b := &Balanced{
		urls: append([]string(nil), urls...),
		repl: opt.Replication,
		opt:  opt,
		regs: make(map[string]*retainedReg),
		st:   BalancedStats{PerReplica: make(map[string]int64)},
	}
	b.replicas = make([]*Remote, len(urls))
	for i, u := range urls {
		b.replicas[i] = NewRemote(u, opt.RemoteOptions)
	}
	return b, nil
}

// Close implements Client.
func (b *Balanced) Close() error {
	for _, r := range b.replicas {
		r.Close()
	}
	return nil
}

// Stats returns a snapshot of the failover counters.
func (b *Balanced) Stats() BalancedStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.st
	out.PerReplica = make(map[string]int64, len(b.st.PerReplica))
	for k, v := range b.st.PerReplica {
		out.PerReplica[k] = v
	}
	return out
}

// URLs returns the replica base URLs in ring order.
func (b *Balanced) URLs() []string { return append([]string(nil), b.urls...) }

// primary returns the ring index the dataset name hashes to.
func (b *Balanced) primary(dataset string) int {
	h := fnv.New32a()
	h.Write([]byte(dataset))
	return int(h.Sum32() % uint32(len(b.replicas)))
}

// order returns every replica index, holders of the dataset first
// (primary leading), then the rest of the ring — the submission walk.
func (b *Balanced) order(dataset string) []int {
	n := len(b.replicas)
	p := b.primary(dataset)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, (p+i)%n)
	}
	return out
}

// holders returns the Replication-sized holder set of a dataset.
func (b *Balanced) holders(dataset string) []int {
	return b.order(dataset)[:b.repl]
}

// RegisterDataset registers a named table dataset on the dataset's holder
// replicas and retains the payload for failover re-registration. It
// succeeds if at least one holder accepted; unreachable holders are
// brought up to date lazily when a job lands on them.
func (b *Balanced) RegisterDataset(ctx context.Context, name string, pts []Point) error {
	reg := &retainedReg{kind: serve.KindTable, points: append([]Point(nil), pts...), present: make(map[int]bool)}
	return b.registerOnHolders(ctx, name, reg)
}

// RegisterUncertainDataset registers a named uncertain dataset on the
// holder replicas, retaining the instance for failover.
func (b *Balanced) RegisterUncertainDataset(ctx context.Context, name string, g *Ground, nodes []Node) error {
	reg := &retainedReg{kind: serve.KindUncertain, ground: g, nodes: append([]Node(nil), nodes...), present: make(map[int]bool)}
	return b.registerOnHolders(ctx, name, reg)
}

// registerOnHolders fans a retained registration out to the holder set.
func (b *Balanced) registerOnHolders(ctx context.Context, name string, reg *retainedReg) error {
	var firstErr error
	ok := 0
	for _, idx := range b.holders(name) {
		if err := b.registerOn(ctx, idx, name, reg); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		return firstErr
	}
	b.mu.Lock()
	b.regs[name] = reg
	b.mu.Unlock()
	return nil
}

// registerOn replays one retained registration (and its appends) onto one
// replica and marks it present there.
func (b *Balanced) registerOn(ctx context.Context, idx int, name string, reg *retainedReg) error {
	r := b.replicas[idx]
	var err error
	switch reg.kind {
	case serve.KindUncertain:
		err = r.RegisterUncertainDataset(ctx, name, reg.ground, reg.nodes)
	default:
		err = r.RegisterDataset(ctx, name, reg.points)
	}
	// A replica that already holds the dataset (journal replay after a
	// restart) answers 409; that is presence, not failure.
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict {
		err = nil
	}
	if err != nil {
		return err
	}
	for _, pts := range reg.appends {
		if _, err := r.AppendPoints(ctx, name, pts); err != nil {
			return err
		}
	}
	b.mu.Lock()
	reg.present[idx] = true
	b.mu.Unlock()
	return nil
}

// AppendPoints appends points to the dataset on every holder replica and
// extends the retained copy.
func (b *Balanced) AppendPoints(ctx context.Context, name string, pts []Point) (serve.DatasetInfo, error) {
	b.mu.Lock()
	reg := b.regs[name]
	b.mu.Unlock()
	if reg == nil {
		return serve.DatasetInfo{}, fmt.Errorf("client: balanced append to unknown dataset %q", name)
	}
	cp := append([]Point(nil), pts...)
	var info serve.DatasetInfo
	var firstErr error
	ok := 0
	for _, idx := range b.holders(name) {
		i, err := b.replicas[idx].AppendPoints(ctx, name, cp)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			b.mu.Lock()
			delete(reg.present, idx) // stale until re-registered
			b.mu.Unlock()
			continue
		}
		info = i
		ok++
	}
	if ok == 0 {
		return serve.DatasetInfo{}, firstErr
	}
	b.mu.Lock()
	reg.appends = append(reg.appends, cp)
	b.mu.Unlock()
	return info, nil
}

// DeleteDataset removes the dataset from every replica that might hold it
// and drops the retained copy.
func (b *Balanced) DeleteDataset(ctx context.Context, name string) error {
	b.mu.Lock()
	reg := b.regs[name]
	delete(b.regs, name)
	b.mu.Unlock()
	var firstErr error
	for idx := range b.replicas {
		if reg != nil && !reg.present[idx] && !contains(b.holders(name), idx) {
			continue
		}
		if err := b.replicas[idx].DeleteDataset(ctx, name); err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Do implements Client: submit to the dataset's primary replica, walk the
// ring on failure, resubmit in-flight jobs lost to a dying replica.
func (b *Balanced) Do(ctx context.Context, req Request) (*Response, error) {
	if req.Central {
		return nil, fmt.Errorf("client: Central (the Section 3.1 solver) runs on the Local backend only")
	}
	spec := req.spec()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kind, err := req.kind()
	if err != nil {
		return nil, err
	}
	if spec.Dataset == "" {
		name, cleanup, err := b.registerEphemeral(ctx, req, kind)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		spec.Dataset = name
	}
	done, idx, err := b.solve(ctx, spec)
	if err != nil {
		return nil, err
	}
	res := done.Result
	if res == nil {
		return nil, fmt.Errorf("client: job %s is done but has no result", done.ID)
	}
	centers := make([]Point, len(res.Centers))
	for i, row := range res.Centers {
		centers[i] = Point(row)
	}
	return &Response{
		Centers:       centers,
		Cost:          res.Cost,
		CostKind:      res.CostKind,
		OutlierBudget: res.OutlierBudget,
		SiteBudgets:   res.SiteBudgets,
		Rounds:        res.Rounds,
		UpBytes:       res.UpBytes,
		DownBytes:     res.DownBytes,
		Tau:           res.Tau,
		Backend:       "balanced",
		JobID:         done.ID,
		Replica:       b.urls[idx],
	}, nil
}

// solve runs one spec to completion somewhere in the fleet, returning the
// finished job and the index of the replica that served it.
func (b *Balanced) solve(ctx context.Context, spec serve.JobSpec) (serve.Job, int, error) {
	order := b.order(spec.Dataset)
	// Two passes over the ring: the second catches replicas that were
	// restarting (not_ready) during the first.
	maxAttempts := 2 * len(order)
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		idx := order[attempt%len(order)]
		if attempt > 0 {
			b.mu.Lock()
			b.st.Retries++
			b.mu.Unlock()
			if attempt >= len(order) {
				if err := sleep(ctx, b.opt.RetryBackoff); err != nil {
					return serve.Job{}, 0, err
				}
			}
		}
		done, accepted, err := b.tryReplica(ctx, idx, spec)
		if err == nil {
			b.mu.Lock()
			b.st.PerReplica[b.urls[idx]]++
			b.mu.Unlock()
			return done, idx, nil
		}
		if ctx.Err() != nil {
			return serve.Job{}, 0, ctx.Err()
		}
		if !retryableFailover(err) {
			return serve.Job{}, 0, err
		}
		if accepted {
			// The replica took the job and then lost it — the next attempt
			// is a resubmission of accepted work, not a mere retry.
			b.mu.Lock()
			b.st.Resubmissions++
			b.mu.Unlock()
		}
		lastErr = err
	}
	return serve.Job{}, 0, fmt.Errorf("client: all %d replicas failed: %w", len(order), lastErr)
}

// tryReplica submits the spec to one replica and waits it out, reporting
// whether the replica had accepted the job before any failure. A
// dataset_not_found answer re-registers the retained dataset there (the
// failover path onto a non-holder) and retries once.
func (b *Balanced) tryReplica(ctx context.Context, idx int, spec serve.JobSpec) (done serve.Job, accepted bool, err error) {
	r := b.replicas[idx]
	for pass := 0; ; pass++ {
		job, err := r.Submit(ctx, spec)
		if err != nil {
			var apiErr *APIError
			if pass == 0 && errors.As(err, &apiErr) && apiErr.Code == serve.CodeDatasetNotFound {
				if rerr := b.reregister(ctx, idx, spec.Dataset); rerr == nil {
					continue
				}
			}
			return serve.Job{}, false, err
		}
		done, err := r.Wait(ctx, job.ID)
		return done, true, err
	}
}

// reregister replays the retained registration of a dataset onto a
// replica outside its holder set.
func (b *Balanced) reregister(ctx context.Context, idx int, name string) error {
	b.mu.Lock()
	reg := b.regs[name]
	b.mu.Unlock()
	if reg == nil {
		return fmt.Errorf("client: dataset %q has no retained registration", name)
	}
	if err := b.registerOn(ctx, idx, name, reg); err != nil {
		return err
	}
	b.mu.Lock()
	b.st.Reregistrations++
	b.mu.Unlock()
	return nil
}

// retryableFailover decides whether an error means "try the next
// replica":
//
//   - Connection errors (the process died mid-dial or mid-poll): yes.
//   - 503 queue_full (after Remote's own backoff budget), not_ready,
//     shutting_down: the replica cannot take or keep the job — yes.
//   - job_not_found while polling: the replica restarted without the job
//     (no journal, or the submit never made it to disk) — yes.
//   - JobFailedError shutting_down: the replica drained the queued job
//     on exit — yes.
//   - 429 quota_exceeded, validation errors, real job failures,
//     cancelled contexts: the answer, not an outage — never retried.
func retryableFailover(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Code {
		case serve.CodeQueueFull, serve.CodeNotReady, serve.CodeShuttingDown, serve.CodeJobNotFound:
			return true
		}
		return false
	}
	var jfe *JobFailedError
	if errors.As(err, &jfe) {
		return jfe.Code == serve.CodeShuttingDown
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Anything else is a transport-level failure: connection refused,
	// reset mid-poll, EOF from a killed process.
	return true
}

// registerEphemeral uploads the request's in-memory data under a
// throwaway name via the balanced registration path (holder fan-out plus
// retention), so ephemeral jobs fail over like named ones.
func (b *Balanced) registerEphemeral(ctx context.Context, req Request, kind jobwire.Kind) (string, func(), error) {
	name := ephemeralName()
	var err error
	if kind == jobwire.KindPoint {
		if len(req.Points) == 0 {
			return "", nil, fmt.Errorf("client: balanced %s request needs Dataset or Points", req.Objective)
		}
		err = b.RegisterDataset(ctx, name, req.Points)
	} else {
		if req.Ground == nil || len(req.Nodes) == 0 {
			return "", nil, fmt.Errorf("client: balanced %s request needs Dataset or Ground+Nodes", req.Objective)
		}
		err = b.RegisterUncertainDataset(ctx, name, req.Ground, req.Nodes)
	}
	if err != nil {
		return "", nil, err
	}
	cleanup := func() {
		//dpc:vet-ok ctxflow cleanup must delete the ephemeral dataset even after the request ctx is cancelled
		bg, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		b.DeleteDataset(bg, name)
	}
	return name, cleanup, nil
}
