// Package client is the unified, context-aware entry point to distributed
// partial clustering: one Request describing what to solve — any objective
// of the paper, point or uncertain — executed by a Client, with where it
// runs reduced to a deployment choice:
//
//   - Local: in-process, sharding the request's in-memory data over
//     simulated sites (the exact star network of the paper).
//   - Cluster: a coordinator driving persistent dpc-site daemons over TCP;
//     the data lives at the sites.
//   - Remote: a typed HTTP client for a dpc-server, with retry/backoff on
//     503 backpressure and job polling.
//
// All three return the same Response (centers, cost, outlier budget,
// measured communication), and all three honor context cancellation: a
// cancelled context aborts the solve at its next protocol round and Do
// returns an error satisfying errors.Is(err, context.Canceled).
//
// The same Request — same seed, same shard count — returns byte-identical
// centers on every backend; the round-trip tests in this package assert it.
package client

import (
	"context"
	"fmt"

	"dpc/internal/comm"
	"dpc/internal/engine"
	"dpc/internal/jobwire"
	"dpc/internal/metric"
	"dpc/internal/serve"
	"dpc/internal/tree"
	"dpc/internal/uncertain"
)

// Point is a point in d-dimensional Euclidean space.
type Point = metric.Point

// Node is an uncertain input node: a discrete distribution over the ground
// set.
type Node = uncertain.Node

// Ground is the finite metric ground set shared by uncertain nodes.
type Ground = uncertain.Ground

// Report is the measured communication/time footprint of a distributed run.
type Report = comm.Report

// Objective names accepted by Request.Objective. The u-* values are the
// Section 5 uncertain objectives.
const (
	Median            = "median"
	Means             = "means"
	Center            = "center"
	UncertainMedian   = "u-median"
	UncertainMeans    = "u-means"
	UncertainCenterPP = "u-centerpp"
	UncertainCenterG  = "u-centerg"
)

// Request is one clustering question, independent of where it is answered.
// JSON field names are the /v1 job API's names, and the CLI flags of
// cmd/dpc-cluster are generated from them (see BindFlags) — one vocabulary
// across library, wire and command line. Zero values select the defaults a
// one-shot dpc-cluster run uses, so minimal requests reproduce CLI runs
// bit for bit.
type Request struct {
	// Objective is median (default), means or center for point data, or
	// u-median, u-means, u-centerpp, u-centerg for uncertain data.
	Objective string `json:"objective,omitempty" usage:"objective: median | means | center | u-median | u-means | u-centerpp | u-centerg"`
	// Variant selects the protocol: 2round (default), 1round, or noship
	// (point median/means only). For u-centerg, 1round selects the Table 2
	// single-round variant.
	Variant string `json:"variant,omitempty" usage:"protocol variant: 2round | 1round | noship"`
	K       int    `json:"k" usage:"number of centers"`
	T       int    `json:"t" usage:"outlier budget (points that may be ignored)"`
	// Sites is the shard count when the backend shards in-memory data
	// (Local, Remote table/uncertain jobs). Default 8. Ignored by Cluster,
	// where the connected daemons are the sharding.
	Sites int     `json:"sites,omitempty" usage:"number of simulated sites (default 8)"`
	Eps   float64 `json:"eps,omitempty" usage:"coordinator bicriteria slack (default 1)"`
	Seed  int64   `json:"seed,omitempty" usage:"engine seed (site i derives seed + i*const)"`
	// Workers bounds per-solve goroutines (0 = one per CPU); results are
	// bit-identical for every value.
	//
	// Deprecated: set Engine (workers=N token / Options.Workers). Still
	// honored when Engine leaves it unset.
	Workers int `json:"workers,omitempty" usage:"solver goroutines per solve (0 = one per CPU)"`
	// Engine bundles every solver-engine knob: algorithm choice plus the
	// index, cache, worker and reference toggles. As a flag or JSON string
	// it takes comma-separated tokens ("jv,index,pivots=32"); as JSON it
	// also accepts the structured {"algo": ..., "index": ...} object.
	Engine engine.Spec `json:"engine,omitempty" usage:"engine spec: algo and knobs, e.g. jv,index,workers=4 (tokens: auto|localsearch|jv, index, pivots=N, nocache, workers=N, reference)"`
	// NoCache disables the memoized distance oracles (a measurement knob;
	// results never change).
	//
	// Deprecated: set Engine ("nocache" token / Options.NoCache). Still
	// honored (ORed with the spec).
	NoCache     bool `json:"no_cache,omitempty" usage:"disable memoized distance caches (measurement knob)"`
	LloydPolish bool `json:"lloyd_polish,omitempty" usage:"Lloyd-polish the final centers (means only)"`
	// Transport selects the Local backend's wire: loopback (default) or
	// tcp (real localhost sockets). Other backends ignore it.
	Transport string `json:"transport,omitempty" usage:"local wire backend: loopback | tcp"`
	// Topology selects the coordinator fan-in: star (default) or an
	// aggregation tree with a branching factor ("tree,branch=8"). Centers
	// are byte-identical either way; the tree bounds the coordinator's
	// physical inbox by the branching factor instead of the site count.
	Topology tree.Spec `json:"topology,omitempty" usage:"coordinator fan-in: star | tree | tree,branch=N"`
	// Central switches the Local backend to the Section 3.1 centralized
	// solver (median/means only); Levels is its simulation depth.
	Central bool `json:"central,omitempty" usage:"solve centrally (Section 3.1) instead of the distributed protocol (median/means)"`
	Levels  int  `json:"levels,omitempty" usage:"centralized simulation depth (with -central)"`

	// Dataset names a server-side dataset for the Remote backend. When
	// empty, Remote registers the request's in-memory data as an ephemeral
	// dataset for the duration of the call.
	Dataset string `json:"dataset,omitempty" usage:"named dpc-server dataset (remote backend)"`

	// Admission-control knobs for the server backends (Remote, Balanced);
	// Local and Cluster ignore them. Client names the caller for the
	// server's per-client token quotas; Priority is high | normal | low
	// (default normal); QueueTimeoutMS bounds how long the job may wait in
	// the queue before the server fails it with queue_deadline_exceeded
	// (0 = the server's default).
	Client         string `json:"client,omitempty" usage:"client name for server-side quotas (remote backend)"`
	Priority       string `json:"priority,omitempty" usage:"scheduling class: high | normal | low (remote backend)"`
	QueueTimeoutMS int    `json:"queue_timeout_ms,omitempty" usage:"max queue wait in ms before the server fails the job (remote backend)"`

	// In-memory data sources (Local shards them; Remote uploads them when
	// Dataset is empty; Cluster uses site-held data instead, consulting
	// only Ground/Nodes for coordinator-side knowledge and evaluation).
	Points []Point `json:"-" usage:"-"`
	Ground *Ground `json:"-" usage:"-"`
	Nodes  []Node  `json:"-" usage:"-"`
}

// spec translates the request into the job API's wire spec — the single
// mapping (serve's) every backend shares, so Local, Cluster and Remote
// cannot drift apart.
func (r Request) spec() serve.JobSpec {
	return serve.JobSpec{
		Dataset:        r.Dataset,
		K:              r.K,
		T:              r.T,
		Objective:      r.Objective,
		Variant:        r.Variant,
		Sites:          r.Sites,
		Eps:            r.Eps,
		Seed:           r.Seed,
		Workers:        r.Workers,
		Engine:         r.Engine,
		NoCache:        r.NoCache,
		LloydPolish:    r.LloydPolish,
		Client:         r.Client,
		Priority:       r.Priority,
		QueueTimeoutMS: r.QueueTimeoutMS,
		Topology:       r.Topology,
	}
}

// kind returns the protocol family of the request's objective.
func (r Request) kind() (jobwire.Kind, error) {
	return serve.ObjectiveKind(r.Objective)
}

// Validate checks the request's enums and shape (backends also run it
// inside Do).
func (r Request) Validate() error {
	return r.spec().Validate()
}

// Response is the unified outcome of a Request on any backend.
type Response struct {
	// Centers are the chosen centers (ground-space points for uncertain
	// objectives).
	Centers []Point `json:"centers"`
	// Cost is the solution's objective value; CostKind says against what:
	// "global" (the full dataset), "estimate" (u-centerg's seeded Monte
	// Carlo), "coordinator" (the coordinator's induced instance — a
	// Cluster run without coordinator-side data), or "" (not evaluated).
	Cost     float64 `json:"cost"`
	CostKind string  `json:"cost_kind,omitempty"`
	// OutlierBudget is the number of (weighted) points the solution is
	// entitled to ignore.
	OutlierBudget float64 `json:"outlier_budget"`
	// SiteBudgets are the allocated per-site budgets t_i (nil for 1-round
	// variants and non-distributed solves).
	SiteBudgets []int `json:"site_budgets,omitempty"`
	// Measured communication of the distributed run (zero for central and
	// stream answers; Remote reports the server-measured values).
	Rounds    int   `json:"rounds,omitempty"`
	UpBytes   int64 `json:"up_bytes,omitempty"`
	DownBytes int64 `json:"down_bytes,omitempty"`
	// Tau is u-centerg's chosen truncation threshold (a lower-bound
	// witness; zero otherwise).
	Tau float64 `json:"tau,omitempty"`
	// Backend records which backend produced the response ("local",
	// "cluster", "remote", "balanced"); JobID is the server job for remote
	// runs. Replica is the base URL of the dpc-server replica that served
	// a balanced run (empty elsewhere).
	Backend string `json:"backend,omitempty"`
	JobID   string `json:"job_id,omitempty"`
	Replica string `json:"replica,omitempty"`
}

// Client executes Requests. Implementations: Local (in-process), Cluster
// (TCP site daemons), Remote (dpc-server HTTP API).
type Client interface {
	// Do answers one request. Cancelling ctx aborts the solve at its next
	// protocol round; Do then returns an error satisfying
	// errors.Is(err, ctx.Err()).
	Do(ctx context.Context, req Request) (*Response, error)
	// Close releases backend resources (site connections, ephemeral
	// datasets' HTTP client state). The zero-cost backends no-op.
	Close() error
}

// evalObjective computes the true global cost of centers for any objective
// when the caller holds the data; used by Local always and by Cluster when
// the request carries coordinator-side data.
func evalObjective(req Request, centers []Point, budget float64) (float64, string, error) {
	kind, err := req.kind()
	if err != nil {
		return 0, "", err
	}
	switch kind {
	case jobwire.KindPoint:
		if len(req.Points) == 0 {
			return 0, "", nil
		}
		spec := req.spec()
		cfg, err := spec.CoreConfig()
		if err != nil {
			return 0, "", err
		}
		return evalPoints(req.Points, centers, budget, cfg.Objective), "global", nil
	case jobwire.KindUncertain:
		if req.Ground == nil || len(req.Nodes) == 0 {
			return 0, "", nil
		}
		switch req.Objective {
		case UncertainMeans:
			return uncertain.EvalMeans(req.Ground, req.Nodes, centers, budget), "global", nil
		case UncertainCenterPP:
			return uncertain.EvalCenterPP(req.Ground, req.Nodes, centers, budget), "global", nil
		default:
			return uncertain.EvalMedian(req.Ground, req.Nodes, centers, budget), "global", nil
		}
	case jobwire.KindCenterG:
		if req.Ground == nil || len(req.Nodes) == 0 {
			return 0, "", nil
		}
		// serve.CenterGCostSamples keeps the Monte-Carlo sample count in
		// lockstep with the server, so remote and local costs agree.
		return uncertain.EvalCenterG(req.Ground, req.Nodes, centers, budget, serve.CenterGCostSamples, req.Seed), "estimate", nil
	}
	return 0, "", fmt.Errorf("client: unhandled objective kind")
}
