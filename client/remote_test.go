package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dpc/internal/serve"
)

// fakeServer scripts the /v1 wire surface so the client's failure paths
// run against controlled replies instead of a live solver.
type fakeServer struct {
	submits atomic.Int64
	polls   atomic.Int64
	cancels atomic.Int64

	// onSubmit/onPoll decide the reply for the nth call (1-based).
	onSubmit func(n int64, w http.ResponseWriter)
	onPoll   func(n int64, w http.ResponseWriter)
}

func (f *fakeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.onSubmit(f.submits.Add(1), w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.onPoll(f.polls.Add(1), w)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		f.cancels.Add(1)
		writeBody(w, http.StatusOK, `{"id":"job-1","status":"canceled"}`)
	})
	return mux
}

func writeBody(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprint(w, body)
}

func writeCode(w http.ResponseWriter, status int, code string) {
	raw, _ := json.Marshal(serve.APIErrorBody{Code: code, Error: "scripted " + code})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}

const acceptedJob = `{"id":"job-1","status":"queued"}`
const doneJob = `{"id":"job-1","status":"done","result":{"centers":[[1,2],[3,4]],"outlier_budget":4,"cost":9.5,"cost_kind":"global"}}`
const runningJob = `{"id":"job-1","status":"running"}`

// fastRemote builds a Remote with millisecond retry/poll pacing.
func fastRemote(url string) *Remote {
	return NewRemote(url, RemoteOptions{
		RetryMax:     4,
		RetryBackoff: time.Millisecond,
		PollInterval: time.Millisecond,
	})
}

// namedReq targets a (scripted) named dataset so Do skips registration.
func namedReq() Request {
	return Request{Objective: Median, K: 2, T: 4, Seed: 1, Dataset: "d"}
}

// TestRemoteFailurePaths is the table-driven httptest matrix of the
// client's wire-level behavior: 503 retry-with-backoff, retry exhaustion,
// server restart between submit and poll (job vanishes), job failure, and
// malformed JSON replies.
func TestRemoteFailurePaths(t *testing.T) {
	cases := []struct {
		name     string
		onSubmit func(n int64, w http.ResponseWriter)
		onPoll   func(n int64, w http.ResponseWriter)
		check    func(t *testing.T, f *fakeServer, res *Response, err error)
	}{
		{
			name: "503 queue_full retries with backoff until accepted",
			onSubmit: func(n int64, w http.ResponseWriter) {
				if n <= 2 {
					writeCode(w, http.StatusServiceUnavailable, serve.CodeQueueFull)
					return
				}
				writeBody(w, http.StatusAccepted, acceptedJob)
			},
			onPoll: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusOK, doneJob) },
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				if err != nil {
					t.Fatalf("Do: %v", err)
				}
				if got := f.submits.Load(); got != 3 {
					t.Fatalf("submitted %d times, want 3 (2 rejections + 1 accept)", got)
				}
				if len(res.Centers) != 2 || res.Cost != 9.5 {
					t.Fatalf("result: %+v", res)
				}
			},
		},
		{
			name: "503 queue_full exhausts retries",
			onSubmit: func(n int64, w http.ResponseWriter) {
				writeCode(w, http.StatusServiceUnavailable, serve.CodeQueueFull)
			},
			onPoll: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusOK, doneJob) },
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				var apiErr *APIError
				if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeQueueFull {
					t.Fatalf("Do: %v, want queue_full APIError", err)
				}
				if got := f.submits.Load(); got != 5 {
					t.Fatalf("submitted %d times, want RetryMax+1 = 5", got)
				}
			},
		},
		{
			name: "shutting_down is not retried",
			onSubmit: func(n int64, w http.ResponseWriter) {
				writeCode(w, http.StatusServiceUnavailable, serve.CodeShuttingDown)
			},
			onPoll: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusOK, doneJob) },
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				var apiErr *APIError
				if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeShuttingDown {
					t.Fatalf("Do: %v, want shutting_down APIError", err)
				}
				if got := f.submits.Load(); got != 1 {
					t.Fatalf("submitted %d times, want no retries", got)
				}
			},
		},
		{
			name:     "server restart between submit and poll",
			onSubmit: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusAccepted, acceptedJob) },
			onPoll: func(n int64, w http.ResponseWriter) {
				// The restarted server has no memory of the job.
				writeCode(w, http.StatusNotFound, serve.CodeJobNotFound)
			},
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				var apiErr *APIError
				if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeJobNotFound {
					t.Fatalf("Do: %v, want job_not_found APIError", err)
				}
			},
		},
		{
			name:     "job fails server-side",
			onSubmit: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusAccepted, acceptedJob) },
			onPoll: func(n int64, w http.ResponseWriter) {
				writeBody(w, http.StatusOK, `{"id":"job-1","status":"failed","error":"solver exploded"}`)
			},
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				var jf *JobFailedError
				if !errors.As(err, &jf) || !strings.Contains(jf.Message, "solver exploded") {
					t.Fatalf("Do: %v, want JobFailedError with the server's reason", err)
				}
			},
		},
		{
			name:     "malformed JSON success body",
			onSubmit: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusAccepted, `{"id": "job-1"`) },
			onPoll:   func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusOK, doneJob) },
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				if err == nil || !strings.Contains(err.Error(), "malformed JSON") {
					t.Fatalf("Do: %v, want malformed JSON error", err)
				}
			},
		},
		{
			name:     "malformed error body",
			onSubmit: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusTeapot, `<html>oops</html>`) },
			onPoll:   func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusOK, doneJob) },
			check: func(t *testing.T, f *fakeServer, res *Response, err error) {
				var apiErr *APIError
				if !errors.As(err, &apiErr) || apiErr.Code != "malformed_error" || apiErr.Status != http.StatusTeapot {
					t.Fatalf("Do: %v, want malformed_error APIError with status 418", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &fakeServer{onSubmit: tc.onSubmit, onPoll: tc.onPoll}
			hs := httptest.NewServer(f.handler())
			defer hs.Close()
			res, err := fastRemote(hs.URL).Do(context.Background(), namedReq())
			tc.check(t, f, res, err)
		})
	}
}

// TestRemoteCancelMidPoll proves a context cancelled while the client
// polls returns context.Canceled promptly and best-effort cancels the
// server-side job.
func TestRemoteCancelMidPoll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := &fakeServer{
		onSubmit: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusAccepted, acceptedJob) },
		onPoll: func(n int64, w http.ResponseWriter) {
			// Cancel from inside the poll: the client is then provably
			// mid-poll, with a submitted job to clean up.
			if n == 2 {
				cancel()
			}
			writeBody(w, http.StatusOK, runningJob)
		},
	}
	hs := httptest.NewServer(f.handler())
	defer hs.Close()

	start := time.Now()
	_, err := fastRemote(hs.URL).Do(ctx, namedReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if f.cancels.Load() == 0 {
		t.Fatalf("client never sent the best-effort server-side cancel")
	}
}

// TestRemoteDeadlineMidPoll: a deadline works like a cancellation but
// surfaces context.DeadlineExceeded.
func TestRemoteDeadlineMidPoll(t *testing.T) {
	f := &fakeServer{
		onSubmit: func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusAccepted, acceptedJob) },
		onPoll:   func(n int64, w http.ResponseWriter) { writeBody(w, http.StatusOK, runningJob) },
	}
	hs := httptest.NewServer(f.handler())
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := fastRemote(hs.URL).Do(ctx, namedReq()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do: %v, want context.DeadlineExceeded", err)
	}
}
