package client

import (
	"flag"

	"dpc/internal/flagbind"
)

// BindFlags registers one command-line flag per Request field, named after
// the field's JSON name with underscores turned into dashes (lloyd_polish
// becomes -lloyd-polish) and defaulting to the field's current value. The
// CLI surface of cmd/dpc-cluster is generated through this, so flag names
// and /v1 API field names are the same vocabulary by construction. Data
// fields (Points, Ground, Nodes) are not flags — they arrive as files.
func BindFlags(fs *flag.FlagSet, req *Request) {
	flagbind.Bind(fs, req)
}
