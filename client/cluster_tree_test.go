package client

import (
	"context"
	"sync"
	"testing"
	"time"

	"dpc/internal/dataio"
	"dpc/internal/gen"
	"dpc/internal/transport"
	"dpc/internal/tree"
)

// startAggregatorFleet replicates a tier of `dpc-site -aggregate` daemons
// in-process: each aggregator listens for its children, dials the parent,
// forwards the handshake blob down, and runs tree.Serve — the daemon's
// exact code path. It returns the child listen addresses (index =
// aggregator id) and a join for the serve loops.
func startAggregatorFleet(t *testing.T, parent string, children, branch int) ([]string, func() []error) {
	t.Helper()
	addrs := make([]string, children)
	listeners := make([]*transport.Listener, children)
	for a := 0; a < children; a++ {
		l, err := transport.Listen("127.0.0.1:0", branch)
		if err != nil {
			t.Fatal(err)
		}
		addrs[a] = l.Addr().String()
		listeners[a] = l
	}
	errs := make([]error, children)
	var wg sync.WaitGroup
	for a := 0; a < children; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			l := listeners[a]
			defer l.Close()
			sc, err := transport.Dial(parent, a, 10*time.Second)
			if err != nil {
				errs[a] = err
				return
			}
			defer sc.Close()
			child, err := l.AcceptBase(branch, a*branch, sc.Hello())
			if err != nil {
				errs[a] = err
				return
			}
			l.Close()
			errs[a] = tree.Serve(sc, child, false)
		}(a)
	}
	return addrs, func() []error { wg.Wait(); return errs }
}

// TestListenClusterTree runs a real depth-2 aggregation-tree cluster —
// leaf ServeSite fleets dialing in-process dpc-site -aggregate equivalents
// dialing a ListenClusterTree backend — and asserts the answers are
// byte-identical to the flat ListenCluster star over the same shards, with
// the tree's physical root inbox attributed per level.
func TestListenClusterTree(t *testing.T) {
	const sites, branch = 4, 2
	in := gen.Mixture(gen.MixtureSpec{N: 240, K: 3, OutlierFrac: 0.05, Seed: 21})
	shards := dataio.SplitRoundRobin(in.Pts, sites)
	reqs := []Request{
		{Objective: Median, K: 3, T: 12, Seed: 5, Points: in.Pts},
		{Objective: Center, K: 3, T: 12, Seed: 5, Points: in.Pts},
	}
	ctx := context.Background()

	// Star reference.
	star, starJoin := newCluster(t, shards, nil, nil)
	starResp := make([]*Response, len(reqs))
	for i, req := range reqs {
		r, err := star.Do(ctx, req)
		if err != nil {
			t.Fatalf("star %s: %v", req.Objective, err)
		}
		starResp[i] = r
	}
	star.Close()
	for i, err := range starJoin() {
		if err != nil {
			t.Errorf("star site %d: %v", i, err)
		}
	}

	// Tree cluster: coordinator <- 2 aggregators <- 4 leaf sites.
	cl, err := ListenClusterTree("127.0.0.1:0", sites, branch)
	if err != nil {
		t.Fatal(err)
	}
	aggAddrs, aggJoin := startAggregatorFleet(t, cl.Addr(), sites/branch, branch)
	var leafWG sync.WaitGroup
	leafErrs := make([]error, sites)
	for i := 0; i < sites; i++ {
		leafWG.Add(1)
		go func(i int) {
			defer leafWG.Done()
			leafErrs[i] = ServeSite(aggAddrs[i/branch], SiteData{Site: i, Points: shards[i]}, 10*time.Second)
		}(i)
	}
	cluster, err := cl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Sites() != sites {
		t.Fatalf("tree cluster Sites() = %d, want %d", cluster.Sites(), sites)
	}

	for i, req := range reqs {
		r, err := cluster.Do(ctx, req)
		if err != nil {
			t.Fatalf("tree %s: %v", req.Objective, err)
		}
		assertSameCenters(t, r.Centers, starResp[i].Centers, "tree vs star "+req.Objective)
		if r.Cost != starResp[i].Cost {
			t.Fatalf("%s: tree cost %g, star cost %g", req.Objective, r.Cost, starResp[i].Cost)
		}
		if r.UpBytes != starResp[i].UpBytes || r.DownBytes != starResp[i].DownBytes {
			t.Fatalf("%s: tree logical bytes (%d up, %d down) differ from star (%d up, %d down)",
				req.Objective, r.UpBytes, r.DownBytes, starResp[i].UpBytes, starResp[i].DownBytes)
		}
	}

	cluster.Close()
	leafWG.Wait()
	for i, err := range leafErrs {
		if err != nil {
			t.Errorf("leaf site %d: %v", i, err)
		}
	}
	for a, err := range aggJoin() {
		if err != nil {
			t.Errorf("aggregator %d: %v", a, err)
		}
	}
}

// TestListenClusterTreeDegenerate pins that sites <= branch degenerates to
// the flat star: leaf daemons dial the listener directly.
func TestListenClusterTreeDegenerate(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 120, K: 2, OutlierFrac: 0.05, Seed: 3})
	shards := dataio.SplitRoundRobin(in.Pts, 2)
	cl, err := ListenClusterTree("127.0.0.1:0", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ServeSite(cl.Addr(), SiteData{Site: i, Points: shards[i]}, 10*time.Second)
		}(i)
	}
	cluster, err := cl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Objective: Median, K: 2, T: 6, Seed: 9, Points: in.Pts}
	got, err := cluster.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewLocal().Do(context.Background(), Request{
		Objective: Median, K: 2, T: 6, Seed: 9, Sites: 2, Points: in.Pts,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, got.Centers, want.Centers, "degenerate tree")
	cluster.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("site %d: %v", i, err)
		}
	}
}
