package client

import (
	"context"
	"fmt"

	"dpc/internal/central"
	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/jobwire"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// Local answers requests in-process: the request's Points (or
// Ground+Nodes) are sharded round-robin over req.Sites simulated sites and
// the full distributed protocol runs over the loopback (or, with
// req.Transport = "tcp", real localhost socket) backend. With req.Central
// set, point median/means requests run the Section 3.1 centralized solver
// instead. It subsumes the one-shot Run / RunUncertain / RunCenterG /
// Centralized entrypoints behind the unified Request.
type Local struct{}

// NewLocal creates the in-process backend.
func NewLocal() *Local { return &Local{} }

// Close implements Client (no resources held).
func (l *Local) Close() error { return nil }

// Do implements Client.
func (l *Local) Do(ctx context.Context, req Request) (*Response, error) {
	spec := req.spec()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kind, err := req.kind()
	if err != nil {
		return nil, err
	}
	tkind, err := transport.ParseKind(req.Transport)
	if err != nil {
		return nil, err
	}
	sites := req.Sites
	if sites <= 0 {
		sites = 8
	}

	if kind != jobwire.KindPoint {
		if req.Central {
			return nil, fmt.Errorf("client: the centralized solver handles point median/means only")
		}
		if req.Ground == nil || len(req.Nodes) == 0 {
			return nil, fmt.Errorf("client: local %s request needs Ground and Nodes", req.Objective)
		}
		if req.T >= len(req.Nodes) {
			return nil, fmt.Errorf("client: t = %d out of range [0, %d)", req.T, len(req.Nodes))
		}
		shards := dataio.SplitNodesRoundRobin(req.Nodes, sites)
		if kind == jobwire.KindCenterG {
			cfg, err := spec.CenterGConfig()
			if err != nil {
				return nil, err
			}
			cfg.Transport = tkind
			res, err := uncertain.RunCenterGCtx(ctx, req.Ground, shards, cfg)
			if err != nil {
				return nil, err
			}
			return l.finish(req, res.Centers, res.OutlierBudget, res.SiteBudgets, res.Report, res.Tau)
		}
		cfg, obj, err := spec.UncertainConfig()
		if err != nil {
			return nil, err
		}
		cfg.Transport = tkind
		res, err := uncertain.RunCtx(ctx, req.Ground, shards, cfg, obj)
		if err != nil {
			return nil, err
		}
		return l.finish(req, res.Centers, res.OutlierBudget, res.SiteBudgets, res.Report, 0)
	}

	if len(req.Points) == 0 {
		return nil, fmt.Errorf("client: local %s request needs Points", req.Objective)
	}
	cfg, err := spec.CoreConfig()
	if err != nil {
		return nil, err
	}
	if req.Central {
		if cfg.Objective == core.Center {
			return nil, fmt.Errorf("client: the centralized solver handles median/means only")
		}
		// The centralized solver is one indivisible solve; honor the
		// context at its boundary (a cancelled request never starts it).
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eo := spec.EngineOptions()
		sol := central.PartialMedian(req.Points, central.Config{
			K: req.K, T: req.T, Levels: req.Levels, Eps: req.Eps,
			Objective: cfg.Objective, Engine: cfg.Engine,
			Opts:        kmedian.Options{Seed: req.Seed, Options: eo},
			NoDistCache: eo.NoCache,
		})
		return &Response{
			Centers:       sol.Centers,
			Cost:          sol.Cost,
			CostKind:      "global",
			OutlierBudget: sol.OutlierBudget,
			Backend:       "local",
		}, nil
	}
	if req.T >= len(req.Points) {
		return nil, fmt.Errorf("client: t = %d out of range [0, %d)", req.T, len(req.Points))
	}
	cfg.Transport = tkind
	shards := dataio.SplitRoundRobin(req.Points, sites)
	res, err := core.RunCtx(ctx, shards, cfg)
	if err != nil {
		return nil, err
	}
	return l.finish(req, res.Centers, res.OutlierBudget, res.SiteBudgets, res.Report, 0)
}

// finish assembles the unified response, evaluating the true global cost
// against the request's in-memory data.
func (l *Local) finish(req Request, centers []metric.Point, budget float64, siteBudgets []int, rep Report, tau float64) (*Response, error) {
	cost, costKind, err := evalObjective(req, centers, budget)
	if err != nil {
		return nil, err
	}
	return &Response{
		Centers:       centers,
		Cost:          cost,
		CostKind:      costKind,
		OutlierBudget: budget,
		SiteBudgets:   siteBudgets,
		Rounds:        rep.Rounds,
		UpBytes:       rep.UpBytes,
		DownBytes:     rep.DownBytes,
		Tau:           tau,
		Backend:       "local",
	}, nil
}

// evalPoints is core.Evaluate under the client package's vocabulary.
func evalPoints(pts, centers []Point, budget float64, obj core.Objective) float64 {
	return core.Evaluate(pts, centers, budget, obj)
}
