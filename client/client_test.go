package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"dpc/internal/dataio"
	"dpc/internal/gen"
	"dpc/internal/metric"
	"dpc/internal/serve"
	"dpc/internal/uncertain"
)

// startSiteFleet replicates a `dpc-site -persist` fleet in-process: each
// site runs ServeSite — the daemon's exact code path (multi-job hello
// check, long-lived cache, jobwire handler factory) — over its point
// shard and uncertain node shard. The returned join waits for the serve
// loops to end.
func startSiteFleet(t *testing.T, addr string, shards [][]metric.Point, g *uncertain.Ground, nodeShards [][]uncertain.Node) func() []error {
	t.Helper()
	n := len(shards)
	if nodeShards != nil && len(nodeShards) != n {
		t.Fatalf("fleet shards mismatch: %d point, %d node", n, len(nodeShards))
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := SiteData{Site: i, Points: shards[i], Ground: g}
			if nodeShards != nil {
				d.Nodes = nodeShards[i]
			}
			errs[i] = ServeSite(addr, d, 10*time.Second)
		}(i)
	}
	return func() []error { wg.Wait(); return errs }
}

// newCluster spins up a fleet + cluster backend over the given data.
func newCluster(t *testing.T, shards [][]metric.Point, g *uncertain.Ground, nodeShards [][]uncertain.Node) (*Cluster, func() []error) {
	t.Helper()
	cl, err := ListenCluster("127.0.0.1:0", len(shards))
	if err != nil {
		t.Fatal(err)
	}
	join := startSiteFleet(t, cl.Addr(), shards, g, nodeShards)
	cluster, err := cl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return cluster, join
}

// newRemote spins up an embedded dpc-server + remote backend.
func newRemote(t *testing.T, cfg serve.Config) (*Remote, *serve.Server) {
	t.Helper()
	s := serve.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return NewRemote(hs.URL, RemoteOptions{}), s
}

// assertSameCenters requires byte-identical centers (exact float equality,
// coordinate by coordinate).
func assertSameCenters(t *testing.T, got, want []Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centers, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: center %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestRequestRoundTripAllBackends is the acceptance test of the unified
// API: the same Request — one point objective, one uncertain objective —
// returns byte-identical centers via Local (in-process), Cluster (TCP site
// daemons) and Remote (dpc-server HTTP), and the distributed backends
// report identical payload-byte communication.
func TestRequestRoundTripAllBackends(t *testing.T) {
	const sites = 4
	in := gen.Mixture(gen.MixtureSpec{N: 240, K: 3, OutlierFrac: 0.05, Seed: 42})
	uin := gen.UncertainMixture(gen.UncertainSpec{N: 72, K: 3, Support: 3, OutlierFrac: 0.05, Seed: 7})
	shards := dataio.SplitRoundRobin(in.Pts, sites)
	nodeShards := dataio.SplitNodesRoundRobin(uin.Nodes, sites)

	local := NewLocal()
	cluster, join := newCluster(t, shards, uin.Ground, nodeShards)
	defer func() {
		cluster.Close()
		for i, err := range join() {
			if err != nil {
				t.Errorf("site %d exited with error: %v", i, err)
			}
		}
	}()
	remote, _ := newRemote(t, serve.Config{})

	cases := []Request{
		{Objective: Median, K: 3, T: 12, Sites: sites, Seed: 3,
			Points: in.Pts},
		{Objective: Center, K: 3, T: 12, Sites: sites, Seed: 3,
			Points: in.Pts},
		{Objective: UncertainMedian, K: 3, T: 6, Sites: sites, Seed: 3,
			Ground: uin.Ground, Nodes: uin.Nodes},
		{Objective: UncertainCenterG, K: 3, T: 4, Sites: sites, Seed: 3,
			Ground: uin.Ground, Nodes: uin.Nodes},
	}
	ctx := context.Background()
	for _, req := range cases {
		t.Run(req.Objective, func(t *testing.T) {
			rl, err := local.Do(ctx, req)
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			rc, err := cluster.Do(ctx, req)
			if err != nil {
				t.Fatalf("cluster: %v", err)
			}
			rr, err := remote.Do(ctx, req)
			if err != nil {
				t.Fatalf("remote: %v", err)
			}
			if len(rl.Centers) == 0 {
				t.Fatalf("local returned no centers")
			}
			assertSameCenters(t, rc.Centers, rl.Centers, "cluster vs local")
			assertSameCenters(t, rr.Centers, rl.Centers, "remote vs local")
			if rc.UpBytes != rl.UpBytes || rc.DownBytes != rl.DownBytes {
				t.Fatalf("cluster bytes (%d up, %d down) differ from local (%d up, %d down)",
					rc.UpBytes, rc.DownBytes, rl.UpBytes, rl.DownBytes)
			}
			if rr.UpBytes != rl.UpBytes {
				t.Fatalf("remote up bytes %d, local %d", rr.UpBytes, rl.UpBytes)
			}
			// All backends hold the data here, so all report the true
			// global cost — identically.
			if rc.Cost != rl.Cost || rr.Cost != rl.Cost {
				t.Fatalf("costs diverge: local %g, cluster %g, remote %g", rl.Cost, rc.Cost, rr.Cost)
			}
			if rl.OutlierBudget != rc.OutlierBudget || rl.OutlierBudget != rr.OutlierBudget {
				t.Fatalf("outlier budgets diverge: local %g, cluster %g, remote %g",
					rl.OutlierBudget, rc.OutlierBudget, rr.OutlierBudget)
			}
			if rc.Tau != rl.Tau || rr.Tau != rl.Tau {
				t.Fatalf("taus diverge: local %g, cluster %g, remote %g", rl.Tau, rc.Tau, rr.Tau)
			}
			if req.Objective == UncertainCenterG && rl.Tau == 0 {
				t.Fatalf("u-centerg returned no truncation threshold")
			}
		})
	}
}

// TestNamedDatasetReuse exercises the Remote backend against a registered
// dataset: same request, Dataset instead of Points, identical centers, and
// the second run served from the warm server-side cache.
func TestNamedDatasetReuse(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 200, K: 3, OutlierFrac: 0.05, Seed: 9})
	remote, _ := newRemote(t, serve.Config{})
	ctx := context.Background()
	if err := remote.RegisterDataset(ctx, "named", in.Pts); err != nil {
		t.Fatal(err)
	}
	req := Request{Objective: Median, K: 3, T: 10, Sites: 2, Seed: 1, Dataset: "named"}
	r1, err := remote.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	before, err := remote.Dataset(ctx, "named")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := remote.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	after, err := remote.Dataset(ctx, "named")
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, r2.Centers, r1.Centers, "repeat run")
	if after.CacheMisses != before.CacheMisses {
		t.Fatalf("repeat run recomputed distances (%d -> %d misses)", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits <= before.CacheHits {
		t.Fatalf("repeat run produced no cache hits (%d -> %d)", before.CacheHits, after.CacheHits)
	}

	// The identical request answered locally: same centers.
	local := NewLocal()
	lreq := req
	lreq.Points = in.Pts
	rl, err := local.Do(ctx, lreq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, r1.Centers, rl.Centers, "remote vs local")
}

// TestRemoteUncertainSharedGroundExact pins the exact-instance transport
// of uncertain data: a ground set with support points shared across nodes
// (and a node pinned to a far ground point) must solve identically on the
// Remote backend, which ships the ground explicitly and references it by
// index rather than duplicating per-node support points.
func TestRemoteUncertainSharedGroundExact(t *testing.T) {
	g := &Ground{Pts: []Point{{0, 0}, {1, 0}, {5, 5}, {9, 9}, {0.5, 0.2}, {5.5, 4.5}}}
	nodes := []Node{
		{Support: []int{0, 2}, Prob: []float64{0.5, 0.5}},
		{Support: []int{1, 2}, Prob: []float64{0.25, 0.75}}, // shares ground point 2
		{Support: []int{0, 1, 4}, Prob: []float64{0.25, 0.25, 0.5}},
		{Support: []int{3}, Prob: []float64{1}},
		{Support: []int{2, 5}, Prob: []float64{0.5, 0.5}},
	}
	remote, _ := newRemote(t, serve.Config{})
	local := NewLocal()
	ctx := context.Background()
	for _, objective := range []string{UncertainMedian, UncertainCenterG} {
		req := Request{Objective: objective, K: 2, T: 1, Sites: 2, Seed: 1, Ground: g, Nodes: nodes}
		rl, err := local.Do(ctx, req)
		if err != nil {
			t.Fatalf("local %s: %v", objective, err)
		}
		rr, err := remote.Do(ctx, req)
		if err != nil {
			t.Fatalf("remote %s: %v", objective, err)
		}
		assertSameCenters(t, rr.Centers, rl.Centers, objective+" shared-ground")
		if rr.Cost != rl.Cost || rr.Tau != rl.Tau {
			t.Fatalf("%s: remote (cost %g, tau %g) vs local (cost %g, tau %g)",
				objective, rr.Cost, rr.Tau, rl.Cost, rl.Tau)
		}
	}
}

// cancelInstance is sized so a full solve takes far longer than the cancel
// delay on any plausible machine: cancellation must interrupt it mid-run.
func cancelInstance() gen.Instance {
	return gen.Mixture(gen.MixtureSpec{N: 4000, K: 4, OutlierFrac: 0.05, Seed: 11})
}

func cancelRequest(pts []Point) Request {
	return Request{Objective: Median, K: 4, T: 120, Sites: 2, Seed: 1, Points: pts}
}

// TestCancellationAllBackends proves a context cancelled mid-solve returns
// promptly with context.Canceled on Local, Cluster and Remote.
func TestCancellationAllBackends(t *testing.T) {
	in := cancelInstance()
	req := cancelRequest(in.Pts)
	shards := dataio.SplitRoundRobin(in.Pts, req.Sites)

	backends := []struct {
		name  string
		build func(t *testing.T) Client
	}{
		{"local", func(t *testing.T) Client { return NewLocal() }},
		{"cluster", func(t *testing.T) Client {
			cluster, _ := newCluster(t, shards, nil, nil)
			// Join is not asserted: a cancellation tears the sites down
			// mid-protocol by design.
			return cluster
		}},
		{"remote", func(t *testing.T) Client {
			remote, _ := newRemote(t, serve.Config{})
			return remote
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			c := b.build(t)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(40 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := c.Do(ctx, req)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("cancelled %s run returned a result", b.name)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s returned %v, want context.Canceled", b.name, err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("%s took %v to notice cancellation", b.name, elapsed)
			}
			c.Close()
		})
	}
}

// TestCancelledClusterReconnects pins the lazy-reconnect semantics: a
// mid-protocol cancellation drops the desynchronized site connections, and
// the next Do re-binds the original address, waits for the redialing
// daemons (ServeSiteLoop — dpc-site -persist's loop), and answers with the
// same centers a never-cancelled run produces.
func TestCancelledClusterReconnects(t *testing.T) {
	in := cancelInstance()
	req := cancelRequest(in.Pts)
	shards := dataio.SplitRoundRobin(in.Pts, req.Sites)

	cl, err := ListenCluster("127.0.0.1:0", len(shards))
	if err != nil {
		t.Fatal(err)
	}
	// A redialing fleet: each site dials again when its connection drops
	// without a clean protocol close, exactly like dpc-site -persist.
	var wg sync.WaitGroup
	siteErrs := make([]error, len(shards))
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			siteErrs[i] = ServeSiteLoop(cl.Addr(), SiteData{Site: i, Points: shards[i]}, 10*time.Second)
		}(i)
	}
	cluster, err := cl.Accept()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(40 * time.Millisecond); cancel() }()
	if _, err := cluster.Do(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Do: %v, want context.Canceled", err)
	}

	got, err := cluster.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do after cancellation did not reconnect: %v", err)
	}
	want, err := NewLocal().Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, got.Centers, want.Centers, "post-reconnect")

	cluster.Close()
	wg.Wait()
	for i, err := range siteErrs {
		if err != nil {
			t.Errorf("site %d exited with error: %v", i, err)
		}
	}

	// Closed is terminal: no reconnect attempt, an immediate error.
	if _, err := cluster.Do(context.Background(), req); err == nil {
		t.Fatalf("Do on a closed cluster succeeded")
	}
}

// TestCancelledClusterReconnectHonorsContext pins the other half of the
// contract: when the fleet is gone for good (plain ServeSite, no redial),
// the reconnect wait is bounded by the caller's context instead of hanging.
func TestCancelledClusterReconnectHonorsContext(t *testing.T) {
	in := cancelInstance()
	req := cancelRequest(in.Pts)
	shards := dataio.SplitRoundRobin(in.Pts, req.Sites)
	cluster, _ := newCluster(t, shards, nil, nil)
	defer cluster.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(40 * time.Millisecond); cancel() }()
	if _, err := cluster.Do(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Do: %v, want context.Canceled", err)
	}

	short, stop := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer stop()
	start := time.Now()
	_, err := cluster.Do(short, req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do with a dead fleet: %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("reconnect wait ignored the context deadline (%v)", elapsed)
	}
}

// TestLocalValidation pins the request-validation errors shared by all
// backends.
func TestLocalValidation(t *testing.T) {
	local := NewLocal()
	ctx := context.Background()
	pts := gen.Mixture(gen.MixtureSpec{N: 40, K: 2, Seed: 1}).Pts
	for _, req := range []Request{
		{Objective: "mode", K: 2, Points: pts},
		{Objective: Median, K: 0, Points: pts},
		{Objective: Median, K: 2, T: -1, Points: pts},
		{Objective: Median, K: 2, Points: nil},
		{Objective: UncertainMedian, K: 2, Points: pts}, // no nodes
		{Objective: Median, K: 2, T: 40, Points: pts},   // t >= n
		{Objective: Center, K: 2, Central: true, Points: pts},
	} {
		if _, err := local.Do(ctx, req); err == nil {
			t.Fatalf("request %+v validated", req)
		}
	}
}

// TestLocalCentral covers the Centralized wrap of the Local backend.
func TestLocalCentral(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 160, K: 3, OutlierFrac: 0.05, Seed: 5})
	local := NewLocal()
	res, err := local.Do(context.Background(), Request{
		Objective: Median, K: 3, T: 8, Seed: 1, Central: true, Points: in.Pts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 || res.CostKind != "global" {
		t.Fatalf("central response: %d centers, kind %q", len(res.Centers), res.CostKind)
	}
}
