package client

import (
	"encoding/json"
	"flag"
	"reflect"
	"strings"
	"testing"
)

// TestBindFlagsMatchesJSONNames is the anti-drift guarantee: every flag
// BindFlags registers is a Request JSON field name (underscores dashed),
// every taggable scalar field gets a flag, and the data payload fields do
// not leak into the flag surface.
func TestBindFlagsMatchesJSONNames(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var req Request
	BindFlags(fs, &req)

	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })

	rt := reflect.TypeOf(Request{})
	want := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		usage := f.Tag.Get("usage")
		if name == "" || name == "-" || usage == "" || usage == "-" {
			continue
		}
		want[strings.ReplaceAll(name, "_", "-")] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flag surface %v\ndiffers from Request JSON names %v", got, want)
	}
	for _, banned := range []string{"points", "ground", "nodes"} {
		if got[banned] {
			t.Fatalf("data field %q leaked into the flag surface", banned)
		}
	}

	// Spot-check the underscore mapping and that parsing lands in the
	// struct (the property the generated CLI depends on).
	if err := fs.Parse([]string{"-lloyd-polish", "-k", "7", "-objective", "u-means", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if !req.LloydPolish || req.K != 7 || req.Objective != "u-means" || !req.NoCache {
		t.Fatalf("parsed request %+v", req)
	}

	// And the JSON names really are the wire names the server decodes.
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"lloyd_polish":true`, `"k":7`, `"objective":"u-means"`, `"no_cache":true`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("marshalled request %s lacks %s", raw, key)
		}
	}
}
