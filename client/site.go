package client

import (
	"time"

	"dpc/internal/jobwire"
	"dpc/internal/transport"
)

// SiteData is the data one cluster site holds across jobs: its point shard
// (for point objectives) and/or its uncertain node shard plus the shared
// ground set (for the u-* objectives). Jobs of a kind the site has no data
// for fail that job loudly.
type SiteData struct {
	// Site is this site's 0-based id, unique across the fleet.
	Site int
	// Points is the site's point shard.
	Points []Point
	// Ground and Nodes are the shared ground set and the site's node shard.
	Ground *Ground
	Nodes  []Node
}

// ServeSite is dpc-site -persist as a library call: it dials a cluster
// coordinator (a ClusterListener, or dpc-server -sites-listen) at addr,
// retrying until timeout (0 = one attempt), and serves jobs from d —
// building one long-lived distance cache over the point shard so repeated
// jobs stay warm — until the coordinator closes the connection. It blocks
// for the life of the connection; run it in its own goroutine or process.
func ServeSite(addr string, d SiteData, timeout time.Duration) error {
	sc, err := transport.Dial(addr, d.Site, timeout)
	if err != nil {
		return err
	}
	defer sc.Close()
	return jobwire.ServeJobs(sc, jobwire.SiteData{
		Site: d.Site, Pts: d.Points, G: d.Ground, Nodes: d.Nodes,
	}, nil)
}

// ServeSiteLoop is ServeSite with dpc-site -persist's redial behavior: a
// connection that drops without the coordinator's clean protocol close —
// the fate of a fleet whose request was cancelled mid-round — is dialed
// again, so the site is back for the coordinator's lazy reconnect. It
// returns nil on a clean close, or the dial error once the coordinator
// stays away for timeout.
func ServeSiteLoop(addr string, d SiteData, timeout time.Duration) error {
	for {
		sc, err := transport.Dial(addr, d.Site, timeout)
		if err != nil {
			return err
		}
		err = jobwire.ServeJobs(sc, jobwire.SiteData{
			Site: d.Site, Pts: d.Points, G: d.Ground, Nodes: d.Nodes,
		}, nil)
		sc.Close()
		if err == nil {
			return nil
		}
	}
}
