package client

import (
	"context"
	"fmt"
	"sync"

	"dpc/internal/core"
	"dpc/internal/jobwire"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// Cluster answers requests by driving persistent dpc-site daemons over
// TCP: the coordinator side of the protocol runs in this process, the data
// lives at the sites (their shards and distance caches stay warm across
// requests — connection persistence, exactly dpc-server's remote
// datasets). Point requests need nothing but the connected sites; the
// uncertain objectives additionally need req.Ground (the paper's shared
// ground metric) on the coordinator side.
//
// One Cluster serves one request at a time (the transport round contract);
// concurrent Do calls serialize. A request cancelled mid-protocol leaves
// the site connections desynchronized, so the backend marks itself broken
// and every later Do fails loudly — reconnect the sites to recover.
type Cluster struct {
	mu     sync.Mutex
	coord  *transport.Coordinator
	broken bool
}

// ClusterListener is a bound-but-not-yet-connected Cluster backend: the
// address is known (so site daemons can be pointed at it) before Accept
// blocks for them.
type ClusterListener struct {
	l     *transport.Listener
	sites int
}

// ListenCluster binds addr (e.g. "127.0.0.1:9009", or ":0" for an
// ephemeral port) for `sites` dpc-site daemons running with -persist.
func ListenCluster(addr string, sites int) (*ClusterListener, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return nil, err
	}
	return &ClusterListener{l: l, sites: sites}, nil
}

// Addr returns the bound address sites should dial.
func (cl *ClusterListener) Addr() string { return cl.l.Addr().String() }

// Accept blocks until every site has joined (sites retry dialing, so start
// order does not matter), then returns the connected backend. The listener
// is closed either way.
func (cl *ClusterListener) Accept() (*Cluster, error) {
	defer cl.l.Close()
	coord, err := cl.l.Accept(cl.sites, []byte(transport.JobsHello))
	if err != nil {
		return nil, err
	}
	return &Cluster{coord: coord}, nil
}

// Close implements Client: every site receives the protocol close (ending
// its ServeJobs loop) and the sockets shut.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.coord.Close()
}

// Sites returns the number of connected site daemons.
func (c *Cluster) Sites() int { return c.coord.Sites() }

// Do implements Client: a job frame re-arms every site with this request's
// configuration, then the standard coordinator drive runs over the live
// sockets.
func (c *Cluster) Do(ctx context.Context, req Request) (*Response, error) {
	if req.Central {
		return nil, fmt.Errorf("client: Central (the Section 3.1 solver) runs on the Local backend only")
	}
	spec := req.spec()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kind, err := req.kind()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, fmt.Errorf("client: cluster backend is closed or was cancelled mid-protocol; reconnect the sites")
	}

	var resp *Response
	switch kind {
	case jobwire.KindPoint:
		cfg, err := spec.CoreConfig()
		if err != nil {
			return nil, err
		}
		if err := c.startJob(jobwire.Job{Kind: jobwire.KindPoint, Core: cfg}); err != nil {
			return nil, err
		}
		res, err := core.RunOverCtx(ctx, c.coord, cfg)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		resp = &Response{
			Centers:       res.Centers,
			Cost:          res.CoordinatorCost,
			CostKind:      "coordinator",
			OutlierBudget: res.OutlierBudget,
			SiteBudgets:   res.SiteBudgets,
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
		}
	case jobwire.KindUncertain:
		if req.Ground == nil {
			return nil, fmt.Errorf("client: cluster %s request needs Ground (the shared ground metric)", req.Objective)
		}
		cfg, obj, err := spec.UncertainConfig()
		if err != nil {
			return nil, err
		}
		if err := c.startJob(jobwire.Job{Kind: jobwire.KindUncertain, Obj: obj, Unc: cfg}); err != nil {
			return nil, err
		}
		res, err := uncertain.RunOverCtx(ctx, req.Ground, c.coord, cfg, obj)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		resp = &Response{
			Centers:       res.Centers,
			OutlierBudget: res.OutlierBudget,
			SiteBudgets:   res.SiteBudgets,
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
		}
	case jobwire.KindCenterG:
		if req.Ground == nil {
			return nil, fmt.Errorf("client: cluster %s request needs Ground (the shared ground metric)", req.Objective)
		}
		cfg, err := spec.CenterGConfig()
		if err != nil {
			return nil, err
		}
		if err := c.startJob(jobwire.Job{Kind: jobwire.KindCenterG, CenterG: cfg}); err != nil {
			return nil, err
		}
		res, err := uncertain.RunCenterGOverCtx(ctx, req.Ground, c.coord, cfg)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		resp = &Response{
			Centers:       res.Centers,
			OutlierBudget: res.OutlierBudget,
			SiteBudgets:   res.SiteBudgets,
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
			Tau:           res.Tau,
		}
	default:
		return nil, fmt.Errorf("client: unhandled objective kind %v", kind)
	}

	// When the request carries coordinator-side data, report the true
	// global cost (byte-identical to what Local computes); otherwise the
	// coordinator cost (point) or no cost (uncertain) stands.
	if cost, costKind, err := evalObjective(req, resp.Centers, resp.OutlierBudget); err == nil && costKind != "" {
		resp.Cost, resp.CostKind = cost, costKind
	}
	resp.Backend = "cluster"
	return resp, nil
}

// startJob ships the job frame that re-arms every site for this request.
func (c *Cluster) startJob(j jobwire.Job) error {
	blob, err := jobwire.Encode(j)
	if err != nil {
		return err
	}
	return c.coord.StartJob(blob)
}

// fail handles a protocol error: a context cancellation leaves the
// connections desynchronized mid-round, so the backend closes them and
// refuses further requests.
func (c *Cluster) fail(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		c.broken = true
		c.coord.Close()
	}
	return err
}
