package client

import (
	"context"
	"fmt"
	"sync"

	"dpc/internal/core"
	"dpc/internal/jobwire"
	"dpc/internal/transport"
	"dpc/internal/tree"
	"dpc/internal/uncertain"
)

// Cluster answers requests by driving persistent dpc-site daemons over
// TCP: the coordinator side of the protocol runs in this process, the data
// lives at the sites (their shards and distance caches stay warm across
// requests — connection persistence, exactly dpc-server's remote
// datasets). Point requests need nothing but the connected sites; the
// uncertain objectives additionally need req.Ground (the paper's shared
// ground metric) on the coordinator side.
//
// One Cluster serves one request at a time (the transport round contract);
// concurrent Do calls serialize. A request cancelled mid-protocol leaves
// the site connections desynchronized, so the backend drops them — and the
// next Do reconnects lazily: it re-binds the original address and waits for
// the site daemons to redial (dpc-site -persist retries exactly for this),
// so one cancelled request costs one reconnect, not the backend.
//
// With ListenClusterTree the connected daemons are the top tier of an
// aggregation tree (dpc-site -aggregate) instead of the leaf sites; job
// frames and rounds route through the aggregators and results stay
// byte-identical to the flat cluster.
type Cluster struct {
	mu     sync.Mutex
	coord  clusterTransport
	addr   string // resolved listen address, for lazy reconnects
	direct int    // connections accepted (leaf sites, or the top aggregator tier)
	leaves int    // leaf site count the protocol runs over
	branch int    // aggregation-tree branching factor; 0 = flat star
	broken bool   // connections dropped (cancelled mid-protocol); reconnectable
	closed bool   // Close called; terminal
}

// clusterTransport is what a Cluster drives: a protocol transport that can
// also re-arm the fleet with job frames (*transport.Coordinator for a flat
// cluster, *tree.Root over one for a tree cluster).
type clusterTransport interface {
	transport.Transport
	StartJob(blob []byte) error
}

// ClusterListener is a bound-but-not-yet-connected Cluster backend: the
// address is known (so site daemons can be pointed at it) before Accept
// blocks for them.
type ClusterListener struct {
	l      *transport.Listener
	direct int
	leaves int
	branch int
}

// ListenCluster binds addr (e.g. "127.0.0.1:9009", or ":0" for an
// ephemeral port) for `sites` dpc-site daemons running with -persist.
func ListenCluster(addr string, sites int) (*ClusterListener, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return nil, err
	}
	return &ClusterListener{l: l, direct: sites, leaves: sites}, nil
}

// ListenClusterTree binds addr for an aggregation-tree fleet of `sites`
// leaf daemons under branching factor branch: the processes expected to
// dial in are the tree's top aggregator tier (dpc-site -aggregate, ids
// 0..d-1 per tree.Tiers), each fronting its subtree of leaves. With
// sites <= branch the tree degenerates to ListenCluster.
func ListenClusterTree(addr string, sites, branch int) (*ClusterListener, error) {
	if err := (tree.Spec{Tree: true, Branch: branch}).Validate(); err != nil {
		return nil, err
	}
	branchEff := tree.Spec{Tree: true, Branch: branch}.BranchOrDefault()
	direct := sites
	treeBranch := 0
	if tiers := tree.Tiers(sites, branchEff); len(tiers) > 0 {
		direct = tiers[len(tiers)-1]
		treeBranch = branchEff
	}
	l, err := transport.Listen(addr, direct)
	if err != nil {
		return nil, err
	}
	return &ClusterListener{l: l, direct: direct, leaves: sites, branch: treeBranch}, nil
}

// Addr returns the bound address sites should dial.
func (cl *ClusterListener) Addr() string { return cl.l.Addr().String() }

// Accept blocks until every expected daemon has joined (they retry
// dialing, so start order does not matter), then returns the connected
// backend. The listener is closed either way.
func (cl *ClusterListener) Accept() (*Cluster, error) {
	defer cl.l.Close()
	c := &Cluster{
		addr:   cl.l.Addr().String(),
		direct: cl.direct,
		leaves: cl.leaves,
		branch: cl.branch,
	}
	coord, err := cl.l.Accept(cl.direct, []byte(transport.JobsHello))
	if err != nil {
		return nil, err
	}
	c.coord, err = c.wrap(coord)
	if err != nil {
		coord.Close()
		return nil, err
	}
	return c, nil
}

// wrap builds the cluster's transport over freshly accepted connections.
func (c *Cluster) wrap(coord *transport.Coordinator) (clusterTransport, error) {
	if c.branch == 0 {
		return coord, nil
	}
	return tree.NewRootOver(coord, c.leaves, c.branch)
}

// Close implements Client: every site receives the protocol close (ending
// its ServeJobs loop) and the sockets shut. Closed is terminal; a broken
// backend reconnects, a closed one does not.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.broken || c.coord == nil {
		return nil
	}
	return c.coord.Close()
}

// Sites returns the number of (leaf) site daemons the protocol runs over.
func (c *Cluster) Sites() int { return c.leaves }

// Do implements Client: a job frame re-arms every site with this request's
// configuration, then the standard coordinator drive runs over the live
// sockets.
func (c *Cluster) Do(ctx context.Context, req Request) (*Response, error) {
	if req.Central {
		return nil, fmt.Errorf("client: Central (the Section 3.1 solver) runs on the Local backend only")
	}
	spec := req.spec()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kind, err := req.kind()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("client: cluster backend is closed")
	}
	if c.broken {
		if err := c.reconnect(ctx); err != nil {
			return nil, fmt.Errorf("client: cluster reconnect: %w", err)
		}
	}

	var resp *Response
	switch kind {
	case jobwire.KindPoint:
		cfg, err := spec.CoreConfig()
		if err != nil {
			return nil, err
		}
		if err := c.startJob(jobwire.Job{Kind: jobwire.KindPoint, Core: cfg}); err != nil {
			return nil, err
		}
		res, err := core.RunOverCtx(ctx, c.coord, cfg)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		resp = &Response{
			Centers:       res.Centers,
			Cost:          res.CoordinatorCost,
			CostKind:      "coordinator",
			OutlierBudget: res.OutlierBudget,
			SiteBudgets:   res.SiteBudgets,
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
		}
	case jobwire.KindUncertain:
		if req.Ground == nil {
			return nil, fmt.Errorf("client: cluster %s request needs Ground (the shared ground metric)", req.Objective)
		}
		cfg, obj, err := spec.UncertainConfig()
		if err != nil {
			return nil, err
		}
		if err := c.startJob(jobwire.Job{Kind: jobwire.KindUncertain, Obj: obj, Unc: cfg}); err != nil {
			return nil, err
		}
		res, err := uncertain.RunOverCtx(ctx, req.Ground, c.coord, cfg, obj)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		resp = &Response{
			Centers:       res.Centers,
			OutlierBudget: res.OutlierBudget,
			SiteBudgets:   res.SiteBudgets,
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
		}
	case jobwire.KindCenterG:
		if req.Ground == nil {
			return nil, fmt.Errorf("client: cluster %s request needs Ground (the shared ground metric)", req.Objective)
		}
		cfg, err := spec.CenterGConfig()
		if err != nil {
			return nil, err
		}
		if err := c.startJob(jobwire.Job{Kind: jobwire.KindCenterG, CenterG: cfg}); err != nil {
			return nil, err
		}
		res, err := uncertain.RunCenterGOverCtx(ctx, req.Ground, c.coord, cfg)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		resp = &Response{
			Centers:       res.Centers,
			OutlierBudget: res.OutlierBudget,
			SiteBudgets:   res.SiteBudgets,
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
			Tau:           res.Tau,
		}
	default:
		return nil, fmt.Errorf("client: unhandled objective kind %v", kind)
	}

	// When the request carries coordinator-side data, report the true
	// global cost (byte-identical to what Local computes); otherwise the
	// coordinator cost (point) or no cost (uncertain) stands.
	if cost, costKind, err := evalObjective(req, resp.Centers, resp.OutlierBudget); err == nil && costKind != "" {
		resp.Cost, resp.CostKind = cost, costKind
	}
	resp.Backend = "cluster"
	return resp, nil
}

// startJob ships the job frame that re-arms every site for this request.
func (c *Cluster) startJob(j jobwire.Job) error {
	blob, err := jobwire.Encode(j)
	if err != nil {
		return err
	}
	return c.coord.StartJob(blob)
}

// fail handles a protocol error: a context cancellation leaves the
// connections desynchronized mid-round (site replies for this run are
// still in flight), so the backend drops them — abruptly, without the
// protocol close frame, so persistent daemons treat it as a connection
// loss and redial rather than exiting. The next Do reconnects.
func (c *Cluster) fail(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		c.broken = true
		if ab, ok := c.coord.(interface{ Abort() error }); ok {
			ab.Abort()
		} else {
			c.coord.Close()
		}
	}
	return err
}

// reconnect re-establishes a broken backend: re-bind the original address
// and wait for the expected daemons to redial (dpc-site -persist loops
// back to dialing when its connection drops). Called with c.mu held; ctx
// bounds the wait.
func (c *Cluster) reconnect(ctx context.Context) error {
	l, err := transport.Listen(c.addr, c.direct)
	if err != nil {
		return err
	}
	type accepted struct {
		coord *transport.Coordinator
		err   error
	}
	ch := make(chan accepted, 1)
	go func() {
		coord, err := l.Accept(c.direct, []byte(transport.JobsHello))
		ch <- accepted{coord, err}
	}()
	var a accepted
	select {
	case <-ctx.Done():
		l.Close() // unblocks Accept
		a = <-ch
		if a.coord != nil {
			a.coord.Close()
		}
		return ctx.Err()
	case a = <-ch:
		l.Close()
	}
	if a.err != nil {
		return a.err
	}
	coord, err := c.wrap(a.coord)
	if err != nil {
		a.coord.Close()
		return err
	}
	c.coord = coord
	c.broken = false
	return nil
}
