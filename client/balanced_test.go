package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"dpc/internal/gen"
	"dpc/internal/serve"
)

// replicaFleet is an in-process stand-in for N dpc-server replicas, each
// individually killable (its HTTP listener closes; in-flight solves are
// abandoned, exactly like a kill -9 as seen from the client).
type replicaFleet struct {
	servers []*serve.Server
	https   []*httptest.Server
	urls    []string
}

func newFleet(t *testing.T, n int, cfg serve.Config) *replicaFleet {
	t.Helper()
	f := &replicaFleet{}
	for i := 0; i < n; i++ {
		s := serve.New(cfg)
		hs := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.https = append(f.https, hs)
		f.urls = append(f.urls, hs.URL)
	}
	t.Cleanup(func() {
		for i := range f.https {
			f.https[i].Close()
			f.servers[i].Close()
		}
	})
	return f
}

// kill closes replica i's listener: every subsequent request to it fails
// at the transport level.
func (f *replicaFleet) kill(i int) {
	f.https[i].CloseClientConnections()
	f.https[i].Close()
}

// TestBalancedMatchesLocal is the balanced backend's round-trip test: a
// registered dataset solved through the fleet returns byte-identical
// centers to the Local backend, tagged with the serving replica.
func TestBalancedMatchesLocal(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 240, K: 3, OutlierFrac: 0.05, Seed: 21})
	f := newFleet(t, 3, serve.Config{})
	b, err := NewBalanced(f.urls, BalancedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.RegisterDataset(ctx, "points", in.Pts); err != nil {
		t.Fatal(err)
	}
	req := Request{Objective: Median, K: 3, T: 12, Sites: 4, Seed: 3, Dataset: "points"}
	res, err := b.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	lreq := req
	lreq.Dataset, lreq.Points = "", in.Pts
	rl, err := NewLocal().Do(ctx, lreq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, res.Centers, rl.Centers, "balanced vs local")
	if res.Backend != "balanced" {
		t.Fatalf("backend = %q, want balanced", res.Backend)
	}
	found := false
	for _, u := range f.urls {
		if res.Replica == u {
			found = true
		}
	}
	if !found {
		t.Fatalf("replica %q is not a fleet URL", res.Replica)
	}
	st := b.Stats()
	if st.Retries != 0 || st.Resubmissions != 0 {
		t.Fatalf("healthy fleet produced retries: %+v", st)
	}
	if st.PerReplica[res.Replica] != 1 {
		t.Fatalf("per-replica count = %+v, want 1 for %s", st.PerReplica, res.Replica)
	}
}

// TestBalancedFailsOverToHolder kills the primary replica of a dataset;
// the job must complete on the surviving holder with one ring retry and
// the same centers.
func TestBalancedFailsOverToHolder(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 240, K: 3, OutlierFrac: 0.05, Seed: 22})
	f := newFleet(t, 3, serve.Config{})
	b, err := NewBalanced(f.urls, BalancedOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.RegisterDataset(ctx, "points", in.Pts); err != nil {
		t.Fatal(err)
	}
	primary := b.primary("points")
	f.kill(primary)
	req := Request{Objective: Median, K: 3, T: 12, Sites: 4, Seed: 3, Dataset: "points"}
	res, err := b.Do(ctx, req)
	if err != nil {
		t.Fatalf("failover Do: %v", err)
	}
	if res.Replica == f.urls[primary] {
		t.Fatalf("job reportedly served by the killed primary %s", res.Replica)
	}
	lreq := req
	lreq.Dataset, lreq.Points = "", in.Pts
	rl, err := NewLocal().Do(ctx, lreq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, res.Centers, rl.Centers, "failover vs local")
	if st := b.Stats(); st.Retries < 1 {
		t.Fatalf("failover recorded no retries: %+v", st)
	}
}

// TestBalancedReregistersOnNonHolder kills the dataset's entire holder
// set; the job must land on a replica that never saw the dataset, which
// the client brings up to date from its retained registration.
func TestBalancedReregistersOnNonHolder(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 240, K: 3, OutlierFrac: 0.05, Seed: 23})
	f := newFleet(t, 3, serve.Config{})
	b, err := NewBalanced(f.urls, BalancedOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.RegisterDataset(ctx, "points", in.Pts); err != nil {
		t.Fatal(err)
	}
	holders := b.holders("points")
	for _, idx := range holders {
		f.kill(idx)
	}
	req := Request{Objective: Median, K: 3, T: 12, Sites: 4, Seed: 3, Dataset: "points"}
	res, err := b.Do(ctx, req)
	if err != nil {
		t.Fatalf("non-holder failover Do: %v", err)
	}
	for _, idx := range holders {
		if res.Replica == f.urls[idx] {
			t.Fatalf("job reportedly served by killed holder %s", res.Replica)
		}
	}
	lreq := req
	lreq.Dataset, lreq.Points = "", in.Pts
	rl, err := NewLocal().Do(ctx, lreq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, res.Centers, rl.Centers, "re-registered vs local")
	st := b.Stats()
	if st.Reregistrations < 1 {
		t.Fatalf("no re-registration recorded: %+v", st)
	}
	if st.Retries < 2 {
		t.Fatalf("expected >= 2 ring retries past dead holders: %+v", st)
	}
}

// TestBalancedResubmitsInFlightJob kills the replica that accepted a job
// while the job is still solving; the client must notice the lost poll,
// resubmit to a survivor, and return centers identical to Local.
func TestBalancedResubmitsInFlightJob(t *testing.T) {
	in := cancelInstance() // sized to solve far slower than the kill delay
	f := newFleet(t, 3, serve.Config{})
	b, err := NewBalanced(f.urls, BalancedOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.RegisterDataset(ctx, "big", in.Pts); err != nil {
		t.Fatal(err)
	}
	primary := b.primary("big")
	go func() {
		time.Sleep(150 * time.Millisecond)
		f.kill(primary)
	}()
	req := Request{Objective: Median, K: 4, T: 120, Sites: 2, Seed: 1, Dataset: "big"}
	res, err := b.Do(ctx, req)
	if err != nil {
		t.Fatalf("resubmission Do: %v", err)
	}
	if res.Replica == f.urls[primary] {
		t.Fatalf("job reportedly served by the killed replica %s", res.Replica)
	}
	st := b.Stats()
	if st.Resubmissions != 1 {
		t.Fatalf("resubmissions = %d, want 1 (%+v)", st.Resubmissions, st)
	}
	lreq := req
	lreq.Dataset, lreq.Points = "", in.Pts
	rl, err := NewLocal().Do(ctx, lreq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, res.Centers, rl.Centers, "resubmitted vs local")
}

// TestBalancedNeverRetriesQuota pins the admission-control contract: a
// 429 quota_exceeded is the fleet's answer, not an outage, and must
// surface immediately instead of hammering the next replica.
func TestBalancedNeverRetriesQuota(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 120, K: 2, OutlierFrac: 0.05, Seed: 24})
	f := newFleet(t, 3, serve.Config{QuotaBurst: 1, QuotaPerSec: 0.001})
	b, err := NewBalanced(f.urls, BalancedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.RegisterDataset(ctx, "points", in.Pts); err != nil {
		t.Fatal(err)
	}
	req := Request{Objective: Median, K: 2, T: 6, Sites: 2, Seed: 1, Dataset: "points", Client: "alice"}
	if _, err := b.Do(ctx, req); err != nil {
		t.Fatalf("first job within quota failed: %v", err)
	}
	_, err = b.Do(ctx, req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeQuotaExceeded {
		t.Fatalf("over-quota job returned %v, want code quota_exceeded", err)
	}
	if st := b.Stats(); st.Retries != 0 {
		t.Fatalf("quota rejection was retried: %+v", st)
	}
}
