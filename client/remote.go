package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"dpc/internal/jobwire"
	"dpc/internal/serve"
)

// APIError is a non-2xx reply from a dpc-server, carrying the API's stable
// machine-readable code (serve.Code*) alongside the HTTP status and the
// human-readable message. Callers switch on Code, never on Message.
type APIError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server replied %d (%s): %s", e.Status, e.Code, e.Message)
}

// JobFailedError reports a job that reached a terminal failure state on
// the server. Code carries the server's stable machine-readable error
// code (serve.Code*) when the failure has one — e.g.
// "queue_deadline_exceeded" for a job that aged out of the queue, or
// "shutting_down" for one drained by a server exit. Callers switch on
// Code, never on Message.
type JobFailedError struct {
	JobID   string
	Status  string
	Code    string
	Message string
}

// Error implements error.
func (e *JobFailedError) Error() string {
	return fmt.Sprintf("client: job %s %s: %s", e.JobID, e.Status, e.Message)
}

// RemoteOptions tunes the Remote backend. Zero values select the defaults.
type RemoteOptions struct {
	// HTTPClient overrides the http.Client (default: a fresh client with
	// no global timeout — per-call deadlines come from the context).
	HTTPClient *http.Client
	// RetryMax bounds submission retries on 503 queue_full backpressure
	// (default 8; 0 means the default, negative disables retries).
	RetryMax int
	// RetryBackoff is the initial backoff between retries, doubled per
	// attempt and capped at 2s (default 50ms).
	RetryBackoff time.Duration
	// PollInterval spaces job status polls (default 25ms).
	PollInterval time.Duration
}

// Remote answers requests against a running dpc-server over its /v1 HTTP
// API: submit, retry-with-backoff on 503 backpressure, poll to completion.
// Named datasets (req.Dataset) are used as-is so their server-side caches
// stay warm across requests; a request carrying in-memory data instead is
// served by registering an ephemeral dataset for the duration of the call.
type Remote struct {
	base string
	hc   *http.Client
	opt  RemoteOptions
}

// NewRemote creates a Remote backend for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewRemote(baseURL string, opt RemoteOptions) *Remote {
	if opt.HTTPClient == nil {
		opt.HTTPClient = &http.Client{}
	}
	if opt.RetryMax == 0 {
		opt.RetryMax = 8
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = 50 * time.Millisecond
	}
	if opt.PollInterval <= 0 {
		opt.PollInterval = 25 * time.Millisecond
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Remote{base: baseURL, hc: opt.HTTPClient, opt: opt}
}

// Close implements Client (connections are pooled by net/http).
func (r *Remote) Close() error {
	r.hc.CloseIdleConnections()
	return nil
}

// do performs one JSON round trip. Non-2xx replies decode into *APIError;
// a reply body that is not valid JSON is an error, not a silent zero.
func (r *Remote) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		// Surface the context's own error so callers can errors.Is it.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return fmt.Errorf("client: %s %s: read reply: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var envelope serve.APIErrorBody
		if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Code == "" {
			return &APIError{Status: resp.StatusCode, Code: "malformed_error",
				Message: fmt.Sprintf("undecodable error body: %.200s", raw)}
		}
		return &APIError{Status: resp.StatusCode, Code: envelope.Code, Message: envelope.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: %s %s: malformed JSON reply: %w", method, path, err)
	}
	return nil
}

// sleep waits d or until ctx is done, returning ctx.Err() in that case.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RegisterDataset registers a named table dataset holding pts.
func (r *Remote) RegisterDataset(ctx context.Context, name string, pts []Point) error {
	body := struct {
		Name   string      `json:"name"`
		Points [][]float64 `json:"points"`
	}{Name: name, Points: pointRows(pts)}
	return r.do(ctx, "POST", "/v1/datasets", body, nil)
}

// RegisterDatasetWarm is RegisterDataset with the server's background
// cache warmup explicitly requested (warm=true) or suppressed
// (warm=false), overriding the server's -warm default either way. With
// warmup on, the server prefills the dataset's shard distance caches on
// spare scheduler capacity after registration, so the first job pays
// loads instead of the O(n^2/s) metric.
func (r *Remote) RegisterDatasetWarm(ctx context.Context, name string, pts []Point, warm bool) error {
	body := struct {
		Name   string      `json:"name"`
		Points [][]float64 `json:"points"`
	}{Name: name, Points: pointRows(pts)}
	return r.do(ctx, "POST", fmt.Sprintf("/v1/datasets?warm=%t", warm), body, nil)
}

// AppendPoints appends points to a table dataset (or feeds a stream
// sketch), returning the dataset's post-append summary.
func (r *Remote) AppendPoints(ctx context.Context, name string, pts []Point) (serve.DatasetInfo, error) {
	body := struct {
		Points [][]float64 `json:"points"`
	}{Points: pointRows(pts)}
	var info serve.DatasetInfo
	err := r.do(ctx, "POST", "/v1/datasets/"+name+"/points", body, &info)
	return info, err
}

// RegisterUncertainDataset registers a named uncertain dataset. The
// ground set ships explicitly and nodes reference it by support index, so
// the server reconstructs the exact instance — shared support points stay
// shared, unreferenced ground points survive — and remote solves stay
// byte-identical to local ones.
func (r *Remote) RegisterUncertainDataset(ctx context.Context, name string, g *Ground, nodes []Node) error {
	wire := make([]serve.NodeWire, len(nodes))
	for j, nd := range nodes {
		wire[j] = serve.NodeWire{
			Support: append([]int(nil), nd.Support...),
			Probs:   append([]float64(nil), nd.Prob...),
		}
	}
	body := struct {
		Name   string            `json:"name"`
		Kind   serve.DatasetKind `json:"kind"`
		Ground [][]float64       `json:"ground"`
		Nodes  []serve.NodeWire  `json:"nodes"`
	}{Name: name, Kind: serve.KindUncertain, Ground: pointRows(g.Pts), Nodes: wire}
	return r.do(ctx, "POST", "/v1/datasets", body, nil)
}

// DeleteDataset removes a named dataset.
func (r *Remote) DeleteDataset(ctx context.Context, name string) error {
	return r.do(ctx, "DELETE", "/v1/datasets/"+name, nil, nil)
}

// Dataset fetches a dataset's summary (cache stats, sizes).
func (r *Remote) Dataset(ctx context.Context, name string) (serve.DatasetInfo, error) {
	var info serve.DatasetInfo
	err := r.do(ctx, "GET", "/v1/datasets/"+name, nil, &info)
	return info, err
}

// Submit submits a job spec, retrying with exponential backoff while the
// server applies 503 queue_full backpressure. It returns the queued job.
func (r *Remote) Submit(ctx context.Context, spec serve.JobSpec) (serve.Job, error) {
	backoff := r.opt.RetryBackoff
	for attempt := 0; ; attempt++ {
		var job serve.Job
		err := r.do(ctx, "POST", "/v1/jobs", spec, &job)
		if err == nil {
			return job, nil
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeQueueFull || attempt >= r.opt.RetryMax {
			return serve.Job{}, err
		}
		if err := sleep(ctx, backoff); err != nil {
			return serve.Job{}, err
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// Job fetches one job's state.
func (r *Remote) Job(ctx context.Context, id string) (serve.Job, error) {
	var job serve.Job
	err := r.do(ctx, "GET", "/v1/jobs/"+id, nil, &job)
	return job, err
}

// CancelJob cancels a queued or running job.
func (r *Remote) CancelJob(ctx context.Context, id string) (serve.Job, error) {
	var job serve.Job
	err := r.do(ctx, "POST", "/v1/jobs/"+id+"/cancel", nil, &job)
	return job, err
}

// Wait polls a job until it reaches a terminal state, spacing polls by the
// configured interval. A cancelled ctx returns ctx.Err() promptly after a
// best-effort server-side cancel of the job.
func (r *Remote) Wait(ctx context.Context, id string) (serve.Job, error) {
	for {
		job, err := r.Job(ctx, id)
		if err != nil {
			r.cancelOnCtx(ctx, id, err)
			return serve.Job{}, err
		}
		switch job.Status {
		case serve.StatusDone:
			return job, nil
		case serve.StatusFailed, serve.StatusCanceled:
			return serve.Job{}, &JobFailedError{JobID: id, Status: job.Status, Code: job.ErrorCode, Message: job.Error}
		}
		if err := sleep(ctx, r.opt.PollInterval); err != nil {
			r.cancelOnCtx(ctx, id, err)
			return serve.Job{}, err
		}
	}
}

// cancelOnCtx best-effort cancels the server-side job when the client's
// context died mid-wait, so an abandoned poll does not leave the server
// solving for nobody.
func (r *Remote) cancelOnCtx(ctx context.Context, id string, err error) {
	if ctx.Err() == nil {
		return
	}
	//dpc:vet-ok ctxflow the caller's ctx is already dead here; the cancel RPC needs its own bounded lifetime
	bg, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	r.CancelJob(bg, id)
}

// Do implements Client.
func (r *Remote) Do(ctx context.Context, req Request) (*Response, error) {
	if req.Central {
		return nil, fmt.Errorf("client: Central (the Section 3.1 solver) runs on the Local backend only")
	}
	spec := req.spec()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kind, err := req.kind()
	if err != nil {
		return nil, err
	}
	if spec.Dataset == "" {
		name, cleanup, err := r.registerEphemeral(ctx, req, kind)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		spec.Dataset = name
	}
	job, err := r.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	done, err := r.Wait(ctx, job.ID)
	if err != nil {
		return nil, err
	}
	res := done.Result
	if res == nil {
		return nil, fmt.Errorf("client: job %s is done but has no result", job.ID)
	}
	centers := make([]Point, len(res.Centers))
	for i, row := range res.Centers {
		centers[i] = Point(row)
	}
	return &Response{
		Centers:       centers,
		Cost:          res.Cost,
		CostKind:      res.CostKind,
		OutlierBudget: res.OutlierBudget,
		SiteBudgets:   res.SiteBudgets,
		Rounds:        res.Rounds,
		UpBytes:       res.UpBytes,
		DownBytes:     res.DownBytes,
		Tau:           res.Tau,
		Backend:       "remote",
		JobID:         done.ID,
	}, nil
}

// registerEphemeral uploads the request's in-memory data as a
// throwaway-named dataset; the returned cleanup deletes it best-effort.
func (r *Remote) registerEphemeral(ctx context.Context, req Request, kind jobwire.Kind) (string, func(), error) {
	name := ephemeralName()
	var err error
	if kind == jobwire.KindPoint {
		if len(req.Points) == 0 {
			return "", nil, fmt.Errorf("client: remote %s request needs Dataset or Points", req.Objective)
		}
		err = r.RegisterDataset(ctx, name, req.Points)
	} else {
		if req.Ground == nil || len(req.Nodes) == 0 {
			return "", nil, fmt.Errorf("client: remote %s request needs Dataset or Ground+Nodes", req.Objective)
		}
		err = r.RegisterUncertainDataset(ctx, name, req.Ground, req.Nodes)
	}
	if err != nil {
		return "", nil, err
	}
	cleanup := func() {
		//dpc:vet-ok ctxflow cleanup must delete the ephemeral dataset even after the request ctx is cancelled
		bg, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		r.DeleteDataset(bg, name)
	}
	return name, cleanup, nil
}

// ephemeralName generates a throwaway dataset name.
func ephemeralName() string {
	var suffix [6]byte
	rand.Read(suffix[:])
	return "client-" + hex.EncodeToString(suffix[:])
}

// pointRows converts points to JSON rows.
func pointRows(pts []Point) [][]float64 {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = p
	}
	return rows
}
