package dpc_test

import (
	"fmt"
	"runtime"
	"testing"

	"dpc"
)

// parityWorkload builds the shared instance of the parity matrix.
func parityWorkload(t *testing.T) [][]dpc.Point {
	t.Helper()
	in := dpc.Mixture(dpc.MixtureSpec{N: 900, K: 4, OutlierFrac: 0.06, Seed: 41})
	parts := dpc.Partition(in, 5, dpc.PartitionUniform, 42)
	return dpc.SitePoints(in, parts)
}

func requireSameRun(t *testing.T, label string, ref, got dpc.Result) {
	t.Helper()
	if len(got.Centers) != len(ref.Centers) {
		t.Fatalf("%s: %d centers, want %d", label, len(got.Centers), len(ref.Centers))
	}
	for i := range ref.Centers {
		if !got.Centers[i].Equal(ref.Centers[i]) {
			t.Fatalf("%s: center %d differs: %v vs %v", label, i, got.Centers[i], ref.Centers[i])
		}
	}
	if got.OutlierBudget != ref.OutlierBudget {
		t.Fatalf("%s: outlier budget %v, want %v", label, got.OutlierBudget, ref.OutlierBudget)
	}
	if got.CoordinatorCost != ref.CoordinatorCost {
		t.Fatalf("%s: coordinator cost %v, want %v", label, got.CoordinatorCost, ref.CoordinatorCost)
	}
	if got.Report.UpBytes != ref.Report.UpBytes || got.Report.DownBytes != ref.Report.DownBytes {
		t.Fatalf("%s: bytes (%d up, %d down), want (%d, %d)", label,
			got.Report.UpBytes, got.Report.DownBytes, ref.Report.UpBytes, ref.Report.DownBytes)
	}
}

// TestWorkersParity is the engine's hard invariant as a test matrix:
// identical centers, outlier budgets and wire bytes for Workers=1 and
// Workers=NumCPU (plus a fixed >1 width, so the parallel paths are
// exercised even on single-core machines), across every objective and both
// transports.
func TestWorkersParity(t *testing.T) {
	sites := parityWorkload(t)
	widths := []int{runtime.NumCPU(), 4}
	for _, obj := range []dpc.Objective{dpc.Median, dpc.Means, dpc.Center} {
		for _, tr := range []dpc.TransportKind{dpc.TransportLoopback, dpc.TransportTCP} {
			obj, tr := obj, tr
			t.Run(fmt.Sprintf("%v-%v", obj, tr), func(t *testing.T) {
				ref, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Objective: obj, Transport: tr, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range widths {
					got, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Objective: obj, Transport: tr, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					requireSameRun(t, fmt.Sprintf("%v/%v workers=%d", obj, tr, workers), ref, got)
				}
				// The pivot index joins the matrix: its triangle-inequality
				// pruning is exact, so indexed runs must match the same
				// reference byte for byte.
				ix, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Objective: obj, Transport: tr,
					Options: dpc.EngineOptions{Workers: 4, Index: true}})
				if err != nil {
					t.Fatal(err)
				}
				requireSameRun(t, fmt.Sprintf("%v/%v index", obj, tr), ref, ix)
			})
		}
	}
}

// TestWorkersParityVariants extends the matrix over the protocol variants
// (no-ship, 1-round) on the loopback transport.
func TestWorkersParityVariants(t *testing.T) {
	sites := parityWorkload(t)
	for _, v := range []dpc.Variant{dpc.TwoRoundNoOutliers, dpc.OneRound} {
		v := v
		t.Run(fmt.Sprint(v), func(t *testing.T) {
			ref, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Variant: v, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Variant: v, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, fmt.Sprint(v), ref, got)
		})
	}
}

// TestWorkersParityUncertain covers the Section 5 protocols: Algorithm 3
// per-site solves run over the cached collapsed oracle on the worker pool,
// and must not move a single byte or center.
func TestWorkersParityUncertain(t *testing.T) {
	in := dpc.UncertainMixture(dpc.UncertainSpec{N: 160, K: 3, Support: 4, OutlierFrac: 0.06, Seed: 51})
	parts := dpc.PartitionNodes(in, 4, dpc.PartitionUniform, 52)
	sites := dpc.SiteNodes(in, parts)
	for _, obj := range []dpc.UncertainObjective{dpc.UncertainMedian, dpc.UncertainMeans, dpc.UncertainCenterPP} {
		obj := obj
		t.Run(fmt.Sprint(obj), func(t *testing.T) {
			cfg := dpc.UncertainConfig{K: 3, T: 12}
			cfg.LocalOpts.Workers = 1
			ref, err := dpc.RunUncertain(in.Ground, sites, cfg, obj)
			if err != nil {
				t.Fatal(err)
			}
			cfg.LocalOpts.Workers = 4
			got, err := dpc.RunUncertain(in.Ground, sites, cfg, obj)
			if err != nil {
				t.Fatal(err)
			}
			if got.Report.UpBytes != ref.Report.UpBytes {
				t.Fatalf("%v: bytes %d != %d", obj, got.Report.UpBytes, ref.Report.UpBytes)
			}
			if len(got.Centers) != len(ref.Centers) {
				t.Fatalf("%v: center counts differ", obj)
			}
			for i := range ref.Centers {
				if !got.Centers[i].Equal(ref.Centers[i]) {
					t.Fatalf("%v: center %d differs", obj, i)
				}
			}
		})
	}
}

// TestEngineMatchesReferenceEndToEnd is the distributed half of the
// regression harness: the full fast engine (workers + caches + restructured
// evaluators) against Config.Reference, across objectives and transports —
// same centers, same bytes, same coordinator cost.
func TestEngineMatchesReferenceEndToEnd(t *testing.T) {
	sites := parityWorkload(t)
	for _, obj := range []dpc.Objective{dpc.Median, dpc.Means, dpc.Center} {
		for _, tr := range []dpc.TransportKind{dpc.TransportLoopback, dpc.TransportTCP} {
			obj, tr := obj, tr
			t.Run(fmt.Sprintf("%v-%v", obj, tr), func(t *testing.T) {
				ref, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Objective: obj, Transport: tr, Reference: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := dpc.Run(sites, dpc.Config{K: 4, T: 45, Objective: obj, Transport: tr})
				if err != nil {
					t.Fatal(err)
				}
				requireSameRun(t, fmt.Sprintf("%v/%v fast-vs-reference", obj, tr), ref, got)
			})
		}
	}
}
