// Benchmarks regenerating the paper's evaluation artifacts — one benchmark
// per Table 1/Table 2 row-group and per figure-style claim (experiments
// E1..E12 of DESIGN.md). Each benchmark runs the corresponding experiment
// at reduced ("quick") size; the full-size tables come from
// `go run ./cmd/dpc-tables`. Custom metrics expose the quantity the paper
// bounds (bytes of communication, cost ratios) rather than just ns/op.
package dpc_test

import (
	"testing"

	"dpc"
	"dpc/internal/bench"
)

// runExperiment is the harness adapter: one experiment execution per
// benchmark iteration. Benchmarks always use the reduced ("quick")
// instance sizes and are skipped entirely under -short, so
// `go test -short -bench . ./...` stays fast; the full-size runs live in
// cmd/dpc-tables and the engine comparison in cmd/dpc-bench.
func runExperiment(b *testing.B, id string) {
	if testing.Short() {
		b.Skipf("%s: experiment benchmarks are skipped in -short mode", id)
	}
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.Run(bench.Options{Seed: int64(i) + 1, Quick: true})
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1MedianO1 reproduces Table 1 row 1 — 2-round (k,t)-median,
// communication Otilde((sk+t)B) independent of n (E1).
func BenchmarkTable1MedianO1(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkTable2CommScaling reproduces the Table 1 vs Table 2 comparison —
// (sk+t)B against (sk+st)B as s and t sweep (E2).
func BenchmarkTable2CommScaling(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkTable1BicriteriaEps reproduces Table 1 rows 2-3 — the
// O(1+1/eps) cost shape for median and means with (1+eps)t ignored (E3).
func BenchmarkTable1BicriteriaEps(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkTable1Center reproduces Table 1 row 4 — Algorithm 2 for
// (k,t)-center against the 1-round baseline (E4).
func BenchmarkTable1Center(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkTable1Uncertain reproduces Table 1 row 5 — uncertain
// median via the compressed graph, communication independent of the
// distribution support size (E5).
func BenchmarkTable1Uncertain(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkTable1CenterG reproduces Table 1 row 6 — Algorithm 4 for
// uncertain (k,t)-center-g, comm Otilde(skB + tI + s logDelta) (E6).
func BenchmarkTable1CenterG(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkTheorem310Subquadratic reproduces Section 3.1 — the runtime
// exponents of the simulated centralized solvers (E7).
func BenchmarkTheorem310Subquadratic(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkTable2OneRound reproduces the Table 2 one-round rows —
// measured communication against the (sk+st)B closed form (E8).
func BenchmarkTable2OneRound(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkTable2NoShip reproduces the Theorem 3.8 rows — outlier counts
// only, communication flat in t (E9).
func BenchmarkTable2NoShip(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkFigure1Compression reproduces Figure 1 / Lemmas 5.3-5.4 — the
// compressed graph's two-sided cost preservation (E10).
func BenchmarkFigure1Compression(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkLemma33Allocation reproduces Lemma 3.3 — the rank-pivot budget
// allocation equals the DP optimum (E11).
func BenchmarkLemma33Allocation(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkTheorem36SiteSpeedup reproduces the Theorem 3.6 running-time
// claim — site wall time falls like ~1/s (E12).
func BenchmarkTheorem36SiteSpeedup(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkEndToEndMedian measures one full 2-round (k,t)-median run
// (communication reported as a custom metric). Shrunk under -short.
func BenchmarkEndToEndMedian(b *testing.B) {
	n := 1200
	if testing.Short() {
		n = 300
	}
	in := dpc.Mixture(dpc.MixtureSpec{N: n, K: 4, OutlierFrac: 0.05, Seed: 11})
	parts := dpc.Partition(in, 6, dpc.PartitionUniform, 12)
	sites := dpc.SitePoints(in, parts)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := dpc.Run(sites, dpc.Config{K: 4, T: 60, Objective: dpc.Median})
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Report.TotalBytes()
	}
	b.ReportMetric(float64(bytes), "wire-bytes")
}

// BenchmarkEndToEndCenter measures one full Algorithm 2 run. Shrunk under
// -short.
func BenchmarkEndToEndCenter(b *testing.B) {
	n := 1200
	if testing.Short() {
		n = 300
	}
	in := dpc.Mixture(dpc.MixtureSpec{N: n, K: 4, OutlierFrac: 0.05, Seed: 13})
	parts := dpc.Partition(in, 6, dpc.PartitionUniform, 14)
	sites := dpc.SitePoints(in, parts)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := dpc.Run(sites, dpc.Config{K: 4, T: 60, Objective: dpc.Center})
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Report.TotalBytes()
	}
	b.ReportMetric(float64(bytes), "wire-bytes")
}

// BenchmarkEndToEndUncertain measures one full Algorithm 3 run.
func BenchmarkEndToEndUncertain(b *testing.B) {
	in := dpc.UncertainMixture(dpc.UncertainSpec{N: 200, K: 3, Support: 4, OutlierFrac: 0.05, Seed: 15})
	parts := dpc.PartitionNodes(in, 4, dpc.PartitionUniform, 16)
	sites := dpc.SiteNodes(in, parts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpc.RunUncertain(in.Ground, sites, dpc.UncertainConfig{K: 3, T: 10}, dpc.UncertainMedian); err != nil {
			b.Fatal(err)
		}
	}
}
