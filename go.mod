module dpc

go 1.23.0
