module dpc

go 1.24
