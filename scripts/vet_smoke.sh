#!/usr/bin/env bash
# Vet smoke: proves the dpc-vet analyzers themselves still fire. A silent
# analyzer regression (a refactor that stops the determinism check from
# matching map ranges, say) would leave CI green while the invariant gate
# rusts — so this script builds dpc-vet, generates a throwaway fixture
# module containing exactly one deliberate violation per analyzer, runs the
# suite over it, and asserts every analyzer reports its planted finding
# (and that the run exits nonzero). It then runs the suite over this repo,
# which must be clean. CI runs this in the lint job; it also runs locally:
# ./scripts/vet_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "== build dpc-vet"
go build -o "$workdir/dpc-vet" ./cmd/dpc-vet

echo "== write fixture module (one violation per analyzer)"
fix="$workdir/fixture"
mkdir -p "$fix/metric" "$fix/kmedian" "$fix/serve" "$fix/flow"

cat > "$fix/go.mod" <<'EOF'
module vetfixture

go 1.23
EOF

cat > "$fix/metric/metric.go" <<'EOF'
// Stand-in for the concrete oracle types.
package metric

type DistCache struct{}

func (*DistCache) N() int { return 0 }
EOF

cat > "$fix/kmedian/a.go" <<'EOF'
// Planted violations: determinism (map-range append) and oracleguard
// (concrete *metric.DistCache parameter).
package kmedian

import "vetfixture/metric"

func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Solve(dc *metric.DistCache) int { return dc.N() }
EOF

cat > "$fix/serve/a.go" <<'EOF'
// Planted violations: journalbefore (mutate before journal), errcode
// (literal wire code) and goroutinebound (spawn per loop iteration).
package serve

type Registry struct{}

func (*Registry) Delete(name string) error { return nil }

type Job struct{ ErrorCode string }

type Server struct{ reg *Registry }

func (s *Server) journalAppend(kind int, payload any) error { return nil }

func (s *Server) DeleteThenJournal(name string, j *Job) error {
	if err := s.reg.Delete(name); err != nil {
		return err
	}
	j.ErrorCode = "oops_literal"
	return s.journalAppend(3, name)
}

func (s *Server) FanOut(jobs []*Job) {
	for range jobs {
		go func() {}()
	}
}
EOF

cat > "$fix/flow/a.go" <<'EOF'
// Planted violation: ctxflow (fresh root context handed down).
package flow

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func Leak(ctx context.Context) error {
	return work(context.Background())
}
EOF

echo "== run dpc-vet over the fixture"
out="$workdir/findings.json"
rc=0
"$workdir/dpc-vet" -dir "$fix" -json ./... > "$out" || rc=$?
cat "$out"
if [ "$rc" -ne 1 ]; then
  echo "FAIL: dpc-vet exited $rc on the fixture module, want 1 (findings present)"
  exit 1
fi

for analyzer in determinism ctxflow journalbefore errcode oracleguard goroutinebound; do
  if ! grep -q "\"analyzer\": \"$analyzer\"" "$out"; then
    echo "FAIL: analyzer $analyzer did not fire on its planted violation"
    exit 1
  fi
  echo "ok: $analyzer fired"
done

echo "== run dpc-vet over this repo (must be clean)"
go run ./cmd/dpc-vet ./...

echo "PASS: all 6 analyzers fire and the tree is clean"
