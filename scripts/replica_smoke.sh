#!/usr/bin/env bash
# Replica smoke: the durable-control-plane proof. Three dpc-server
# replicas boot with private write-ahead journals; dpc-loadgen drives
# clustering jobs through the balanced client while one replica is
# kill -9'd mid-run. Every job must still complete with centers
# byte-identical to a Local solve (dpc-benchdiff -serve gates the
# artifact: 100% completion, centers_match_local, >= 1 resubmission,
# >= 2 replicas serving). Then the killed replica restarts from its
# journal: it must replay records, re-serve a finished job's centers
# from the log (the job carries "replayed": true — restored, not
# recomputed), and report the replay in /metrics.
#
# Phase 2 proves compaction: the restarted replica (running on tiny
# 8 KiB segments) is driven until its journal rotates across >= 3
# segments, a snapshot checkpoint is forced via POST /v1/admin/compact
# (superseded segments must leave the disk), suffix traffic lands after
# the snapshot, and the replica is kill -9'd again. The second restart
# must report a snapshot restore, replay strictly fewer records than
# the journal ever held, and re-serve the phase-1 job's centers
# byte-identically through eviction of its original finish record's
# segment. CI runs this as the replica-smoke job; it also runs
# locally: ./scripts/replica_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/dpc-server ./cmd/dpc-loadgen ./cmd/dpc-benchdiff

PORTS=(18081 18082 18083)

# Tiny segments so rotation (and the compaction phase below) is
# exercised under modest traffic; -compact-every covers the cadence
# flag, far enough out that only the explicit admin call compacts.
start_replica() { # idx logfile
  local i=$1 log=${2:-/dev/null}
  "$workdir/bin/dpc-server" -listen "127.0.0.1:${PORTS[$i]}" \
    -journal-dir "$workdir/journal-$i" \
    -journal-segment-bytes 8192 -compact-every 1h 2>"$log" &
  pids[$i]=$!
}

metric() { # port name  -> value (0 when absent)
  curl -sf "http://127.0.0.1:$1/metrics" | awk -v m="$2" '$1 == m {print $2}' | head -1
}

wait_ready() { # port
  for t in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "replica on port $1 never became ready"
  exit 1
}

echo "== start 3 replicas with private journals"
for i in 0 1 2; do start_replica "$i"; done
for p in "${PORTS[@]}"; do wait_ready "$p"; done
echo "   all ready"

URLS="http://127.0.0.1:${PORTS[0]},http://127.0.0.1:${PORTS[1]},http://127.0.0.1:${PORTS[2]}"

echo "== loadgen across the fleet, kill -9 one replica mid-run"
"$workdir/bin/dpc-loadgen" -replicas "$URLS" -scenario killed_replica \
  -min-run 10s -out BENCH_SERVE_REPLICA.json &
lg_pid=$!

sleep 3
victim=1
echo "   kill -9 replica $victim (pid ${pids[$victim]})"
kill -9 "${pids[$victim]}"

if ! wait "$lg_pid"; then
  echo "MISMATCH: loadgen failed — a killed replica lost jobs"
  exit 1
fi
echo "   every job completed despite the kill"

echo "== gate the replica artifact"
"$workdir/bin/dpc-benchdiff" -serve BENCH_SERVE_REPLICA.json

echo "== restart the killed replica from its journal"
start_replica "$victim" "$workdir/victim-restart.log"
wait_ready "${PORTS[$victim]}"
BASE="http://127.0.0.1:${PORTS[$victim]}"

metrics=$(curl -sf "$BASE/metrics")
replayed=$(echo "$metrics" | grep 'dpc_journal_records_total{event="replayed"}' | grep -o '[0-9]*$')
[ "${replayed:-0}" -gt 0 ] || { echo "MISMATCH: restarted replica replayed no journal records"; exit 1; }
grep -q 'journal replayed' "$workdir/victim-restart.log" \
  || { echo "MISMATCH: restart log reports no journal replay"; exit 1; }
echo "   replayed $replayed journal records: $(grep 'journal replayed' "$workdir/victim-restart.log" | sed 's/^dpc-server: //')"

# A job finished in the previous life must be re-servable with zero
# recompute: find a job the new process marked "replayed" (restored from
# the log, not re-solved) that is done, and fetch its centers.
job=""
for id in $(curl -sf "$BASE/v1/jobs" | grep -o '"id": *"job-[0-9]*"' | sed 's/.*"\(job-[0-9]*\)".*/\1/' | sort -u); do
  body=$(curl -sf "$BASE/v1/jobs/$id")
  if echo "$body" | grep -q '"status": *"done"' && echo "$body" | grep -q '"replayed": *true'; then
    job=$id
    break
  fi
done
[ -n "$job" ] || { echo "MISMATCH: restarted replica has no replayed finished job"; exit 1; }
curl -sf "$BASE/v1/jobs/$job/centers.csv" | grep -q ',' \
  || { echo "MISMATCH: replayed job $job serves no centers"; exit 1; }
echo "   job $job re-served from the journal (replayed, zero recompute)"
curl -sf "$BASE/v1/jobs/$job/centers.csv" > "$workdir/centers-prekill.csv"

echo "== compaction: rotate >= 3 segments, snapshot, GC, suffix, kill -9 again"
# Big appends rotate the 8 KiB segments deterministically regardless of
# what phase 1 left behind.
awk 'BEGIN { srand(7); for (i = 0; i < 200; i++) printf "%.6f,%.6f\n", rand()*10, rand()*10 }' \
  > "$workdir/chunk.csv"
curl -sf -X POST -H 'Content-Type: text/csv' --data-binary "@$workdir/chunk.csv" \
  "$BASE/v1/datasets?name=cpt" >/dev/null
for n in 1 2 3 4; do
  curl -sf -X POST -H 'Content-Type: text/csv' --data-binary "@$workdir/chunk.csv" \
    "$BASE/v1/datasets/cpt/points" >/dev/null
done
segs=$(metric "${PORTS[$victim]}" dpc_journal_segments)
[ "${segs:-0}" -ge 3 ] || { echo "MISMATCH: only ${segs:-0} journal segments before compaction, want >= 3"; exit 1; }

compact=$(curl -sf -X POST "$BASE/v1/admin/compact")
removed=$(echo "$compact" | grep -o '"segments_removed": *[0-9]*' | grep -o '[0-9]*$')
[ "${removed:-0}" -ge 3 ] || { echo "MISMATCH: compaction removed ${removed:-0} segments, want >= 3"; exit 1; }
[ -e "$workdir/journal-$victim/journal-000001.dpcj" ] \
  && { echo "MISMATCH: superseded segment journal-000001.dpcj still on disk"; exit 1; }
echo "   snapshot written, $removed superseded segments GC'd from disk"

# Suffix traffic the snapshot has not seen, then the record arithmetic
# for the restart assertion: without compaction the journal would hold
# prekill_replayed + prekill_appended records.
curl -sf -X POST -H 'Content-Type: text/csv' --data-binary "@$workdir/chunk.csv" \
  "$BASE/v1/datasets/cpt/points" >/dev/null
prekill_replayed=$(metric "${PORTS[$victim]}" 'dpc_journal_records_total{event="replayed"}')
prekill_appended=$(metric "${PORTS[$victim]}" 'dpc_journal_records_total{event="appended"}')

echo "   kill -9 replica $victim again (pid ${pids[$victim]})"
kill -9 "${pids[$victim]}"
start_replica "$victim" "$workdir/victim-restart2.log"
wait_ready "${PORTS[$victim]}"

grep -q 'replayed from snapshot (segment' "$workdir/victim-restart2.log" \
  || { echo "MISMATCH: second restart did not report a snapshot restore"; exit 1; }
replayed2=$(metric "${PORTS[$victim]}" 'dpc_journal_records_total{event="replayed"}')
total=$((prekill_replayed + prekill_appended))
[ "${replayed2:-0}" -gt 0 ] || { echo "MISMATCH: snapshot restart replayed no records"; exit 1; }
[ "$replayed2" -lt "$total" ] \
  || { echo "MISMATCH: snapshot restart replayed $replayed2 records, want fewer than the $total the log held"; exit 1; }
echo "   restored from snapshot + suffix: $replayed2 records replayed (full history held $total)"

# The phase-1 job survived compaction inside the snapshot: same centers,
# byte for byte, still zero recompute.
curl -sf "$BASE/v1/jobs/$job/centers.csv" > "$workdir/centers-postcompact.csv"
cmp -s "$workdir/centers-prekill.csv" "$workdir/centers-postcompact.csv" \
  || { echo "MISMATCH: job $job centers differ after snapshot restore"; exit 1; }
curl -sf "$BASE/v1/jobs/$job" | grep -q '"replayed": *true' \
  || { echo "MISMATCH: job $job not marked replayed after snapshot restore"; exit 1; }
echo "   job $job still byte-identical through compaction"

echo "replica smoke: OK"
