#!/usr/bin/env bash
# Replica smoke: the durable-control-plane proof. Three dpc-server
# replicas boot with private write-ahead journals; dpc-loadgen drives
# clustering jobs through the balanced client while one replica is
# kill -9'd mid-run. Every job must still complete with centers
# byte-identical to a Local solve (dpc-benchdiff -serve gates the
# artifact: 100% completion, centers_match_local, >= 1 resubmission,
# >= 2 replicas serving). Then the killed replica restarts from its
# journal: it must replay records, re-serve a finished job's centers
# from the log (the job carries "replayed": true — restored, not
# recomputed), and report the replay in /metrics. CI runs this as the
# replica-smoke job; it also runs locally: ./scripts/replica_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/dpc-server ./cmd/dpc-loadgen ./cmd/dpc-benchdiff

PORTS=(18081 18082 18083)

start_replica() { # idx logfile
  local i=$1 log=${2:-/dev/null}
  "$workdir/bin/dpc-server" -listen "127.0.0.1:${PORTS[$i]}" \
    -journal-dir "$workdir/journal-$i" 2>"$log" &
  pids[$i]=$!
}

wait_ready() { # port
  for t in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "replica on port $1 never became ready"
  exit 1
}

echo "== start 3 replicas with private journals"
for i in 0 1 2; do start_replica "$i"; done
for p in "${PORTS[@]}"; do wait_ready "$p"; done
echo "   all ready"

URLS="http://127.0.0.1:${PORTS[0]},http://127.0.0.1:${PORTS[1]},http://127.0.0.1:${PORTS[2]}"

echo "== loadgen across the fleet, kill -9 one replica mid-run"
"$workdir/bin/dpc-loadgen" -replicas "$URLS" -scenario killed_replica \
  -min-run 10s -out BENCH_SERVE_REPLICA.json &
lg_pid=$!

sleep 3
victim=1
echo "   kill -9 replica $victim (pid ${pids[$victim]})"
kill -9 "${pids[$victim]}"

if ! wait "$lg_pid"; then
  echo "MISMATCH: loadgen failed — a killed replica lost jobs"
  exit 1
fi
echo "   every job completed despite the kill"

echo "== gate the replica artifact"
"$workdir/bin/dpc-benchdiff" -serve BENCH_SERVE_REPLICA.json

echo "== restart the killed replica from its journal"
start_replica "$victim" "$workdir/victim-restart.log"
wait_ready "${PORTS[$victim]}"
BASE="http://127.0.0.1:${PORTS[$victim]}"

metrics=$(curl -sf "$BASE/metrics")
replayed=$(echo "$metrics" | grep 'dpc_journal_records_total{event="replayed"}' | grep -o '[0-9]*$')
[ "${replayed:-0}" -gt 0 ] || { echo "MISMATCH: restarted replica replayed no journal records"; exit 1; }
grep -q 'journal replayed' "$workdir/victim-restart.log" \
  || { echo "MISMATCH: restart log reports no journal replay"; exit 1; }
echo "   replayed $replayed journal records: $(grep 'journal replayed' "$workdir/victim-restart.log" | sed 's/^dpc-server: //')"

# A job finished in the previous life must be re-servable with zero
# recompute: find a job the new process marked "replayed" (restored from
# the log, not re-solved) that is done, and fetch its centers.
job=""
for id in $(curl -sf "$BASE/v1/jobs" | grep -o '"id": *"job-[0-9]*"' | sed 's/.*"\(job-[0-9]*\)".*/\1/' | sort -u); do
  body=$(curl -sf "$BASE/v1/jobs/$id")
  if echo "$body" | grep -q '"status": *"done"' && echo "$body" | grep -q '"replayed": *true'; then
    job=$id
    break
  fi
done
[ -n "$job" ] || { echo "MISMATCH: restarted replica has no replayed finished job"; exit 1; }
curl -sf "$BASE/v1/jobs/$job/centers.csv" | grep -q ',' \
  || { echo "MISMATCH: replayed job $job serves no centers"; exit 1; }
echo "   job $job re-served from the journal (replayed, zero recompute)"

echo "replica smoke: OK"
