#!/usr/bin/env bash
# Tree smoke: runs the same clustering job twice across genuinely separate
# processes — once as the paper's star (8 dpc-site leaves dialing the
# coordinator directly) and once as a depth-3 aggregation tree (8 leaves
# -> 4 dpc-site -aggregate daemons -> 2 -aggregate -inner daemons -> the
# coordinator with -topology tree,branch=2) — and asserts the tree run's
# centers are byte-identical to the star's while the coordinator's
# physical root inbox shrank. The per-level byte attribution must show all
# three link tiers. CI runs this as the tree-smoke job; it also runs
# locally: ./scripts/tree_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

SITES=8
BRANCH=2
RUNFLAGS=(-sites $SITES -k 4 -t 40 -objective median -seed 5)

echo "== build"
go build -o "$workdir/bin/" ./cmd/dpc-coordinator ./cmd/dpc-site ./cmd/dpc-datagen

echo "== generate + shard the workload ($SITES round-robin parts)"
"$workdir/bin/dpc-datagen" -n 800 -k 4 -dim 3 -seed 7 -out "$workdir/points.csv"
for i in $(seq 0 $((SITES - 1))); do
  awk -v s=$SITES -v i="$i" 'NR % s == i' "$workdir/points.csv" > "$workdir/part$i.csv"
done

echo "== star run ($SITES leaves dial the coordinator directly)"
"$workdir/bin/dpc-coordinator" -listen 127.0.0.1:19110 "${RUNFLAGS[@]}" \
  -out "$workdir/star.csv" -report 2> "$workdir/star.log" &
coord=$!
pids+=("$coord")
for i in $(seq 0 $((SITES - 1))); do
  "$workdir/bin/dpc-site" -connect 127.0.0.1:19110 -site "$i" -in "$workdir/part$i.csv" &
  pids+=("$!")
done
wait "$coord"
grep -q "up: " "$workdir/star.log" || { echo "star run produced no report"; cat "$workdir/star.log"; exit 1; }
echo "   star done"

echo "== tree run (leaves -> 4 aggregators -> 2 inner aggregators -> coordinator)"
# The coordinator accepts the top aggregator tier; the tier plan is
# tree.Tiers(8, 2) = [4, 2], the same one -topology derives.
"$workdir/bin/dpc-coordinator" -listen 127.0.0.1:19120 "${RUNFLAGS[@]}" \
  -topology "tree,branch=$BRANCH" -out "$workdir/tree.csv" -report 2> "$workdir/tree.log" &
coord=$!
pids+=("$coord")
# Top tier: 2 aggregators whose children are aggregators (-inner).
for a in 0 1; do
  "$workdir/bin/dpc-site" -aggregate -inner -connect 127.0.0.1:19120 -site "$a" \
    -children-listen "127.0.0.1:1913$a" -children $BRANCH -child-base $((a * BRANCH)) &
  pids+=("$!")
done
# Bottom tier: 4 aggregators whose children are the leaf sites.
for j in 0 1 2 3; do
  "$workdir/bin/dpc-site" -aggregate -connect "127.0.0.1:1913$((j / BRANCH))" -site "$j" \
    -children-listen "127.0.0.1:1914$j" -children $BRANCH -child-base $((j * BRANCH)) &
  pids+=("$!")
done
# Leaves: same shards, same global ids — they dial their bottom aggregator.
for i in $(seq 0 $((SITES - 1))); do
  "$workdir/bin/dpc-site" -connect "127.0.0.1:1914$((i / BRANCH))" -site "$i" -in "$workdir/part$i.csv" &
  pids+=("$!")
done
wait "$coord"
echo "   tree done"

echo "== centers byte-identical to the star"
cmp "$workdir/star.csv" "$workdir/tree.csv" \
  || { echo "MISMATCH: tree centers differ from star centers"; exit 1; }
echo "   identical"

echo "== per-level byte attribution (3 link tiers)"
grep -q "tree (branch $BRANCH):" "$workdir/tree.log" \
  || { echo "MISMATCH: tree report line missing"; cat "$workdir/tree.log"; exit 1; }
grep -q "level 2:" "$workdir/tree.log" \
  || { echo "MISMATCH: expected 3 levels in the tree report"; cat "$workdir/tree.log"; exit 1; }
echo "   all levels reported"

echo "== root inbox below the star's"
# Report line: "tree (branch 2): root inbox <X> B (star would be <Y> B)"
read -r root star <<< "$(awk '/tree \(branch/ {print $6, $11}' "$workdir/tree.log")"
[ -n "$root" ] && [ -n "$star" ] || { echo "MISMATCH: could not parse inbox bytes"; cat "$workdir/tree.log"; exit 1; }
[ "$root" -lt "$star" ] \
  || { echo "MISMATCH: root inbox $root B not below star $star B"; exit 1; }
echo "   root inbox $root B < star $star B"

echo "PASS: tree smoke"
