#!/usr/bin/env bash
# Server smoke: boots a real dpc-server process, drives the dataset/job API
# over HTTP with curl, and asserts that (a) job results are byte-identical
# to direct one-shot dpc-cluster runs on the same data and parameters, and
# (b) the second job against the dataset is served from the shared distance
# cache (miss count frozen, hit count growing). CI runs this as the
# server-smoke job; it also runs locally: ./scripts/server_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/dpc-server ./cmd/dpc-cluster ./cmd/dpc-datagen

ADDR=127.0.0.1:18080
BASE="http://$ADDR"
K=4 T=30 SITES=8 SEED=1 N=800

echo "== generate dataset ($N points)"
"$workdir/bin/dpc-datagen" -n $N -k $K -seed 7 -out "$workdir/points.csv"

echo "== start dpc-server on $ADDR"
"$workdir/bin/dpc-server" -listen "$ADDR" &
server_pid=$!

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never became healthy"; exit 1; }
  sleep 0.1
done
echo "   healthy"

echo "== register dataset over HTTP (CSV upload)"
curl -sf -X POST --data-binary @"$workdir/points.csv" -H 'Content-Type: text/csv' \
  "$BASE/v1/datasets?name=smoke" >/dev/null

# submit_job <objective> -> job id on stdout
submit_job() {
  curl -sf -X POST -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"smoke\",\"k\":$K,\"t\":$T,\"objective\":\"$1\",\"sites\":$SITES,\"seed\":$SEED}" \
    "$BASE/v1/jobs" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"\(job-[0-9]*\)"/\1/'
}

# wait_job <id>
wait_job() {
  for i in $(seq 1 100); do
    status=$(curl -sf "$BASE/v1/jobs/$1")
    echo "$status" | grep -q '"status": "done"' && return 0
    echo "$status" | grep -q '"status": "failed"' && { echo "job $1 failed: $status"; exit 1; }
    sleep 0.2
  done
  echo "job $1 never finished"; exit 1
}

# check_objective <objective>: job centers must equal a direct CLI run.
check_objective() {
  local obj=$1
  echo "== $obj job over HTTP vs one-shot dpc-cluster"
  local id
  id=$(submit_job "$obj")
  [ -n "$id" ] || { echo "no job id returned"; exit 1; }
  wait_job "$id"
  curl -sf "$BASE/v1/jobs/$id/centers.csv" -o "$workdir/server_$obj.csv"
  "$workdir/bin/dpc-cluster" -k $K -t $T -objective "$obj" -sites $SITES -seed $SEED \
    -in "$workdir/points.csv" -out "$workdir/cli_$obj.csv"
  diff "$workdir/server_$obj.csv" "$workdir/cli_$obj.csv" \
    || { echo "MISMATCH: $obj centers differ between server job and dpc-cluster"; exit 1; }
  echo "   identical centers"
}

check_objective median
check_objective center

echo "== cache reuse across jobs"
misses_before=$(curl -sf "$BASE/v1/datasets/smoke" | grep -o '"cache_misses": *[0-9]*' | grep -o '[0-9]*$')
hits_before=$(curl -sf "$BASE/v1/datasets/smoke" | grep -o '"cache_hits": *[0-9]*' | grep -o '[0-9]*$')
id=$(submit_job median)
wait_job "$id"
misses_after=$(curl -sf "$BASE/v1/datasets/smoke" | grep -o '"cache_misses": *[0-9]*' | grep -o '[0-9]*$')
hits_after=$(curl -sf "$BASE/v1/datasets/smoke" | grep -o '"cache_hits": *[0-9]*' | grep -o '[0-9]*$')
[ "$misses_after" = "$misses_before" ] \
  || { echo "MISMATCH: repeated job recomputed distances ($misses_before -> $misses_after misses)"; exit 1; }
[ "$hits_after" -gt "$hits_before" ] \
  || { echo "MISMATCH: repeated job produced no cache hits ($hits_before -> $hits_after)"; exit 1; }
echo "   misses frozen at $misses_after, hits $hits_before -> $hits_after"

echo "== metrics endpoint"
curl -sf "$BASE/metrics" | grep -q 'dpc_jobs_total{status="done"} 3' \
  || { echo "MISMATCH: metrics do not report 3 done jobs"; exit 1; }
curl -sf "$BASE/metrics" | grep -q 'dpc_cache_pool_entries' || { echo "metrics missing pool gauges"; exit 1; }

echo "server smoke: OK"
