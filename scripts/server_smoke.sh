#!/usr/bin/env bash
# Server smoke: boots a real dpc-server process and drives it with the
# typed Go client (cmd/dpc-smoke, built on dpc/client): point jobs and an
# uncertain job must be byte-identical to in-process Local runs on the same
# data, a repeated job must be served from the warm shared distance cache,
# and /metrics must report the job counters. One curl call remains to pin
# the raw wire format (JSON envelope, stable machine-readable error codes)
# independently of the Go client. Finally, SIGTERM must drain the server
# cleanly. CI runs this as the server-smoke job; it also runs locally:
# ./scripts/server_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/dpc-server ./cmd/dpc-smoke

ADDR=127.0.0.1:18080
BASE="http://$ADDR"

echo "== start dpc-server on $ADDR"
"$workdir/bin/dpc-server" -listen "$ADDR" &
server_pid=$!

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never became healthy"; exit 1; }
  sleep 0.1
done
echo "   healthy"

echo "== raw wire format pin (the one curl call)"
# An unknown dataset must return HTTP 404 with the stable machine-readable
# error code — the contract the typed client switches on.
body=$(curl -s -o - -w '\n%{http_code}' "$BASE/v1/datasets/definitely-missing")
code=$(echo "$body" | tail -1)
[ "$code" = "404" ] || { echo "MISMATCH: expected 404, got $code"; exit 1; }
echo "$body" | head -1 | grep -q '"code": *"dataset_not_found"' \
  || { echo "MISMATCH: error envelope lacks code dataset_not_found: $body"; exit 1; }
echo "   404 + dataset_not_found envelope intact"

echo "== typed client smoke (point + uncertain jobs, cache reuse, metrics)"
"$workdir/bin/dpc-smoke" -server "$BASE"

echo "== graceful shutdown on SIGTERM"
kill -TERM "$server_pid"
for i in $(seq 1 50); do
  kill -0 "$server_pid" 2>/dev/null || break
  [ "$i" = 50 ] && { echo "server did not exit after SIGTERM"; exit 1; }
  sleep 0.1
done
wait "$server_pid" 2>/dev/null || rc=$?
[ "${rc:-0}" = "0" ] || { echo "MISMATCH: drain exited with $rc"; exit 1; }
server_pid=""
echo "   drained cleanly"

echo "server smoke: OK"
