#!/usr/bin/env bash
# Server smoke: boots a real dpc-server process and drives it with the
# typed Go client (cmd/dpc-smoke, built on dpc/client): point jobs and an
# uncertain job must be byte-identical to in-process Local runs on the same
# data, a repeated job must be served from the warm shared distance cache,
# and /metrics must report the job counters. One curl call remains to pin
# the raw wire format (JSON envelope, stable machine-readable error codes)
# independently of the Go client. SIGTERM must drain the server cleanly.
# Finally the warm-restore cycle: a server started with -cache-dir spills
# its warm distance triangles on SIGTERM, and after a restart the first job
# against the same data must report nonzero cache hits (restored cells, not
# recomputation). CI runs this as the server-smoke job; it also runs
# locally: ./scripts/server_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/bin/" ./cmd/dpc-server ./cmd/dpc-smoke ./cmd/dpc-datagen

ADDR=127.0.0.1:18080
BASE="http://$ADDR"

echo "== start dpc-server on $ADDR"
"$workdir/bin/dpc-server" -listen "$ADDR" &
server_pid=$!

# Wait on readiness, not liveness: /readyz stays 503 while the server
# replays its journal or restores spilled caches.
for i in $(seq 1 50); do
  curl -sf "$BASE/readyz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never became ready"; exit 1; }
  sleep 0.1
done
echo "   ready"

echo "== raw wire format pin (the one curl call)"
# An unknown dataset must return HTTP 404 with the stable machine-readable
# error code — the contract the typed client switches on.
body=$(curl -s -o - -w '\n%{http_code}' "$BASE/v1/datasets/definitely-missing")
code=$(echo "$body" | tail -1)
[ "$code" = "404" ] || { echo "MISMATCH: expected 404, got $code"; exit 1; }
echo "$body" | head -1 | grep -q '"code": *"dataset_not_found"' \
  || { echo "MISMATCH: error envelope lacks code dataset_not_found: $body"; exit 1; }
echo "   404 + dataset_not_found envelope intact"

echo "== typed client smoke (point + uncertain jobs, cache reuse, metrics)"
"$workdir/bin/dpc-smoke" -server "$BASE"

echo "== graceful shutdown on SIGTERM"
kill -TERM "$server_pid"
for i in $(seq 1 50); do
  kill -0 "$server_pid" 2>/dev/null || break
  [ "$i" = 50 ] && { echo "server did not exit after SIGTERM"; exit 1; }
  sleep 0.1
done
wait "$server_pid" 2>/dev/null || rc=$?
[ "${rc:-0}" = "0" ] || { echo "MISMATCH: drain exited with $rc"; exit 1; }
server_pid=""
echo "   drained cleanly"

# --- warm-restore cycle: spill on shutdown, restore on restart ----------

CACHE_DIR="$workdir/cache"
"$workdir/bin/dpc-datagen" -n 400 -k 3 -seed 9 -out "$workdir/warm.csv"

wait_ready() {
  for i in $(seq 1 50); do
    curl -sf "$BASE/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server never became ready"; exit 1
}

# run_job NAME: submit a k-median job against NAME, poll to completion,
# and print the finished job JSON.
run_job() {
  local id body
  id=$(curl -sf -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"$1\",\"k\":3,\"t\":15,\"seed\":4}" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"\(job[^"]*\)".*/\1/')
  [ -n "$id" ] || { echo "job submission returned no id"; exit 1; }
  for i in $(seq 1 100); do
    body=$(curl -sf "$BASE/v1/jobs/$id")
    case "$body" in
      *'"status": "done"'*) echo "$body"; return 0 ;;
      *'"status": "failed"'*|*'"status": "canceled"'*) echo "job $id failed: $body"; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "job $id never finished"; exit 1
}

echo "== warm-restore: first server life (fills + spills)"
"$workdir/bin/dpc-server" -listen "$ADDR" -cache-dir "$CACHE_DIR" &
server_pid=$!
wait_ready
curl -sf -X POST "$BASE/v1/datasets?name=warmset" -H 'Content-Type: text/csv' \
  --data-binary @"$workdir/warm.csv" >/dev/null
cold_job=$(run_job warmset)
cold_misses=$(echo "$cold_job" | grep -o '"cache_misses": *[0-9]*' | head -1 | grep -o '[0-9]*$')
[ "${cold_misses:-0}" -gt 0 ] || { echo "MISMATCH: cold job computed no distances"; exit 1; }
kill -TERM "$server_pid"; wait "$server_pid" 2>/dev/null || true
server_pid=""
[ -f "$CACHE_DIR/warm-triangles.dpcspill" ] || { echo "MISMATCH: no spill file after SIGTERM"; exit 1; }
echo "   spilled warm triangles ($cold_misses cold misses)"

echo "== warm-restore: second server life (restores)"
"$workdir/bin/dpc-server" -listen "$ADDR" -cache-dir "$CACHE_DIR" &
server_pid=$!
wait_ready
curl -sf -X POST "$BASE/v1/datasets?name=warmset" -H 'Content-Type: text/csv' \
  --data-binary @"$workdir/warm.csv" >/dev/null
warm_job=$(run_job warmset)
warm_hits=$(echo "$warm_job" | grep -o '"cache_hits": *[0-9]*' | head -1 | grep -o '[0-9]*$')
warm_misses=$(echo "$warm_job" | grep -o '"cache_misses": *[0-9]*' | head -1 | grep -o '[0-9]*$')
[ "${warm_hits:-0}" -gt 0 ] || { echo "MISMATCH: first job after restart hit no restored cells"; exit 1; }
[ "${warm_misses:-0}" -lt "$cold_misses" ] || { echo "MISMATCH: restart recomputed as much as cold ($warm_misses vs $cold_misses)"; exit 1; }
restored=$(curl -sf "$BASE/metrics" | grep '^dpc_cache_restored_cells_total' | grep -o '[0-9]*$')
[ "${restored:-0}" -gt 0 ] || { echo "MISMATCH: /metrics reports zero restored cells"; exit 1; }
echo "   restored $restored cells; first job: $warm_hits hits, $warm_misses misses (cold: $cold_misses)"
kill -TERM "$server_pid"; wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "server smoke: OK"
