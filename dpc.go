// Package dpc is a Go implementation of "Distributed Partial Clustering"
// (Guha, Li, Zhang; SPAA 2017): communication-efficient algorithms in the
// coordinator model for clustering with outliers — (k,t)-median, (k,t)-means
// and (k,t)-center, where k centers are chosen and up to t points may be
// ignored — plus their extensions to uncertain (distribution-valued) data
// and the subquadratic centralized solvers obtained by self-simulation.
//
// # The Client API
//
// One Request describes any clustering question the paper answers — point
// objectives (median, means, center) and the Section 5 uncertain
// objectives (u-median, u-means, u-centerpp, u-centerg) — and a Client
// answers it. Where it runs is a deployment choice, not an API choice:
//
//	req := dpc.Request{Objective: "median", K: 5, T: 50, Seed: 1, Points: pts}
//
//	local, _ := dpc.NewLocalClient().Do(ctx, req)            // in-process sites
//	remote, _ := dpc.NewRemoteClient(url, dpc.RemoteOptions{}).Do(ctx, req) // dpc-server
//	cluster, _ := clu.Do(ctx, req)                           // live dpc-site daemons
//
// All three backends return the same Response (centers, cost, outlier
// budget, measured communication) and — same seed, same shard count —
// byte-identical centers. Every Do takes a context.Context: cancelling it
// aborts the solve at its next protocol round, on every backend, with
// errors.Is(err, context.Canceled). See the dpc/client package for the
// backend constructors' details; examples/client runs one request against
// all three.
//
// The paper's model underneath is exact: every message is serialized,
// byte-counted and decoded on the other side; Response carries the
// measured communication footprint (the quantities bounded in Tables 1
// and 2 of the paper).
//
// # Transports and daemons
//
// Distributed runs move bytes over a pluggable transport: the default
// loopback backend keeps the s sites in-process (the exact simulated star
// network), Request.Transport = "tcp" runs the identical protocol over
// real localhost sockets, and the cmd/dpc-coordinator + cmd/dpc-site
// daemons (or a Cluster client over dpc-site -persist fleets) run it
// across genuinely separate processes. Byte accounting counts payload
// bytes only — frame headers are transport overhead — so every backend
// reports identical communication.
//
// # Engine
//
// Local solves run on a multi-core engine with memoized distance oracles.
// Request.Workers (Config.Workers on the legacy surface) bounds the
// per-solve goroutines (0 = one per CPU) with a hard invariant: results
// are bit-identical for Workers=1 and Workers=N on every objective,
// variant and transport. NoCache disables the distance caches (a
// measurement knob — the caches are exact and never change results), and
// Config.Reference runs the seed sequential implementation that
// cmd/dpc-bench benchmarks the engine against.
//
// # Legacy one-shot surface
//
// The pre-Client entrypoints — Run, RunUncertain, RunCenterG, Centralized
// and the NewServer job subsystem — remain fully supported thin wrappers
// over the same internals; existing code and benchmarks reproduce their
// results bit for bit. New code should prefer the Client API: it is the
// only surface with context cancellation and backend portability.
//
// # Package map
//
//   - Request / Response / Client    — the unified context-aware API
//   - NewLocalClient / NewRemoteClient / ListenCluster — its backends
//   - Run / Config / Result          — Algorithms 1 and 2 + variants (legacy)
//   - TransportLoopback/TransportTCP — wire backends for distributed runs
//   - RunUncertain, RunCenterG       — Section 5 (compressed graph, Alg. 3/4)
//   - Centralized                    — Section 3.1 (subquadratic simulation)
//   - NewServer / ServeConfig        — the embeddable job server
//   - Mixture, UncertainMixture, ... — planted workload generators
package dpc

import (
	"dpc/client"
	"dpc/internal/central"
	"dpc/internal/core"
	"dpc/internal/engine"
	"dpc/internal/gen"
	"dpc/internal/kcenter"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/serve"
	"dpc/internal/stream"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// --- Unified client API (package dpc/client re-exported) ---

// Request is one clustering question, independent of where it is answered:
// objective (point or uncertain), K, T, data source and engine knobs.
type Request = client.Request

// Response is the unified outcome of a Request on any backend.
type Response = client.Response

// Client executes Requests; backends: local (in-process), cluster (TCP
// site daemons), remote (dpc-server HTTP API).
type Client = client.Client

// RemoteOptions tunes the remote backend (retries, backoff, polling).
type RemoteOptions = client.RemoteOptions

// BalancedOptions tunes the balanced backend (per-replica RemoteOptions
// plus the dataset replication factor).
type BalancedOptions = client.BalancedOptions

// ClusterListener is a bound-but-not-yet-connected cluster backend.
type ClusterListener = client.ClusterListener

// NewLocalClient returns the in-process backend: the request's data is
// sharded over simulated sites and the full protocol runs loopback (or
// over localhost TCP with Request.Transport = "tcp").
func NewLocalClient() Client { return client.NewLocal() }

// NewRemoteClient returns the dpc-server backend: jobs submit over the
// /v1 HTTP API with retry/backoff on 503 backpressure and poll to
// completion.
func NewRemoteClient(baseURL string, opt RemoteOptions) Client {
	return client.NewRemote(baseURL, opt)
}

// NewBalancedClient returns the multi-replica dpc-server backend: each
// dataset hashes to a primary replica and replicates to the next
// Replication-1 in ring order; job submissions prefer the primary and
// fail over across replicas on connection errors and 503s, resubmitting
// jobs lost to a dying replica. Determinism makes the fleet a unit: the
// same request returns byte-identical centers from every replica.
func NewBalancedClient(urls []string, opt BalancedOptions) (*client.Balanced, error) {
	return client.NewBalanced(urls, opt)
}

// ListenCluster binds addr for `sites` dpc-site -persist daemons; Accept
// on the returned listener yields the cluster backend once all have
// joined.
func ListenCluster(addr string, sites int) (*ClusterListener, error) {
	return client.ListenCluster(addr, sites)
}

// Point is a point in d-dimensional Euclidean space.
type Point = metric.Point

// Objective selects the clustering objective of a distributed run.
type Objective = core.Objective

// Clustering objectives.
const (
	// Median is the (k,t)-median objective: sum of distances, t outliers free.
	Median = core.Median
	// Means is the (k,t)-means objective: sum of squared distances.
	Means = core.Means
	// Center is the (k,t)-center objective: maximum distance.
	Center = core.Center
)

// Variant selects the communication protocol.
type Variant = core.Variant

// Protocol variants.
const (
	// TwoRound is Algorithm 1/2: Otilde((sk+t)B) communication, 2 rounds.
	TwoRound = core.TwoRound
	// TwoRoundNoOutliers is the Theorem 3.8 variant: outlier counts only,
	// Otilde(s/delta + sk*B) communication.
	TwoRoundNoOutliers = core.TwoRoundNoOutliers
	// OneRound is the Otilde((sk+st)B) single-round baseline.
	OneRound = core.OneRound
)

// TransportKind selects the wire backend of a distributed run.
type TransportKind = transport.Kind

// Wire backends.
const (
	// TransportLoopback runs sites in-process (the default; exact
	// simulation of the paper's star network).
	TransportLoopback = transport.KindLoopback
	// TransportTCP runs the identical protocol over real localhost TCP
	// sockets with a length-prefixed framed wire format.
	TransportTCP = transport.KindTCP
)

// Config parameterizes a distributed run; zero values select the paper's
// defaults (rho=2, eps=1, geometric grid base 2, loopback transport).
type Config = core.Config

// Result is the outcome of a distributed run, including the measured
// communication Report.
type Result = core.Result

// Engine selects the k-median optimization engine.
type Engine = kmedian.Engine

// Engines.
const (
	// EngineAuto picks JV for small instances, local search otherwise.
	EngineAuto = kmedian.EngineAuto
	// EngineLocalSearch always uses swap local search.
	EngineLocalSearch = kmedian.EngineLocalSearch
	// EngineJV always uses the Jain-Vazirani primal-dual engine.
	EngineJV = kmedian.EngineJV
)

// EngineOptions is the consolidated engine-knob surface shared by every
// entry point: algorithm choice (Algo), goroutine bound (Workers), the
// memoized-oracle toggle (NoCache), the pivot-index toggle (Index, Pivots)
// and the sequential reference switch (Reference). It embeds into
// SolverOptions, Config.Options, the kcenter options and the job API's
// "engine" object, so one spelling configures the engine everywhere.
type EngineOptions = engine.Options

// EngineSpec is EngineOptions plus its wire forms: a flag.Value taking
// comma-separated tokens ("jv,index,pivots=32,workers=4") and a JSON
// codec accepting both the legacy engine string and the structured object.
type EngineSpec = engine.Spec

// SolverOptions tunes the optimization engines (seed, iteration caps,
// warm starts) around an embedded EngineOptions. It was previously named
// EngineOptions; that name now refers to the engine-knob subset.
type SolverOptions = kmedian.Options

// Run executes distributed partial clustering over the per-site datasets.
//
// Legacy one-shot surface: prefer Client (NewLocalClient) for new code —
// it adds context cancellation and backend portability over the same
// internals, bit for bit.
func Run(sites [][]Point, cfg Config) (Result, error) {
	return core.Run(sites, cfg)
}

// Evaluate computes the true global partial cost of centers on a dataset:
// every point connects to its nearest center, the `budget` largest
// connection costs are free.
func Evaluate(pts []Point, centers []Point, budget float64, obj Objective) float64 {
	return core.Evaluate(pts, centers, budget, obj)
}

// FlattenSites concatenates per-site point slices.
func FlattenSites(sites [][]Point) []Point {
	return core.FlattenSites(sites)
}

// --- Uncertain data (Section 5) ---

// Ground is the finite metric ground set P for uncertain data.
type Ground = uncertain.Ground

// Node is an uncertain input node: a discrete distribution over P.
type Node = uncertain.Node

// UncertainObjective selects the uncertain objective.
type UncertainObjective = uncertain.Objective

// Uncertain objectives.
const (
	// UncertainMedian is Eq. (1): sum of expected assignment distances.
	UncertainMedian = uncertain.Median
	// UncertainMeans is the squared variant.
	UncertainMeans = uncertain.Means
	// UncertainCenterPP is Eq. (2): max of expected assignment distances.
	UncertainCenterPP = uncertain.CenterPP
)

// UncertainVariant selects the uncertain protocol.
type UncertainVariant = uncertain.Variant

// Uncertain protocol variants.
const (
	// UncertainTwoRound is Algorithm 3: only collapsed (y_j, ell_j) pairs
	// cross the wire.
	UncertainTwoRound = uncertain.TwoRound
	// UncertainOneRoundShipDists is the naive baseline that ships full
	// distributions (I bits per outlier node).
	UncertainOneRoundShipDists = uncertain.OneRoundShipDists
)

// UncertainConfig parameterizes a distributed uncertain run.
type UncertainConfig = uncertain.Config

// UncertainResult is the outcome of a distributed uncertain run.
type UncertainResult = uncertain.Result

// RunUncertain executes Algorithm 3 (compressed-graph clustering) for the
// uncertain median/means/center-pp objectives.
//
// Legacy one-shot surface: prefer Client with Objective "u-median",
// "u-means" or "u-centerpp".
func RunUncertain(g *Ground, sites [][]Node, cfg UncertainConfig, obj UncertainObjective) (UncertainResult, error) {
	return uncertain.Run(g, sites, cfg, obj)
}

// CenterGConfig parameterizes Algorithm 4.
type CenterGConfig = uncertain.CenterGConfig

// CenterGResult is the outcome of Algorithm 4.
type CenterGResult = uncertain.CenterGResult

// RunCenterG executes Algorithm 4 for the uncertain (k,t)-center-g
// objective (Eq. 3): parametric search over truncated distances.
//
// Legacy one-shot surface: prefer Client with Objective "u-centerg".
func RunCenterG(g *Ground, sites [][]Node, cfg CenterGConfig) (CenterGResult, error) {
	return uncertain.RunCenterG(g, sites, cfg)
}

// EvalUncertainMedian computes the true uncertain (k,t)-median objective.
func EvalUncertainMedian(g *Ground, nodes []Node, centers []Point, t float64) float64 {
	return uncertain.EvalMedian(g, nodes, centers, t)
}

// EvalUncertainMeans computes the true uncertain (k,t)-means objective.
func EvalUncertainMeans(g *Ground, nodes []Node, centers []Point, t float64) float64 {
	return uncertain.EvalMeans(g, nodes, centers, t)
}

// EvalUncertainCenterPP computes the uncertain (k,t)-center-pp objective.
func EvalUncertainCenterPP(g *Ground, nodes []Node, centers []Point, t float64) float64 {
	return uncertain.EvalCenterPP(g, nodes, centers, t)
}

// EvalUncertainCenterG estimates the (k,t)-center-g objective by seeded
// Monte Carlo over joint realizations.
func EvalUncertainCenterG(g *Ground, nodes []Node, centers []Point, t float64, samples int, seed int64) float64 {
	return uncertain.EvalCenterG(g, nodes, centers, t, samples, seed)
}

// --- Arbitrary metric oracles ---
//
// The paper's model is "clustering over a graph with n nodes and an oracle
// distance function" — anything implementing CostOracle can be clustered
// with the partial solvers below (they are the engines behind Run).

// CostOracle is the client/facility connection-cost interface every solver
// consumes.
type CostOracle = metric.Costs

// Edge is a weighted undirected edge of a graph metric.
type Edge = metric.Edge

// GraphMetric computes the shortest-path closure of a connected weighted
// graph as a cost oracle (and finite metric).
func GraphMetric(n int, edges []Edge) (CostOracle, error) {
	return metric.GraphMetric(n, edges)
}

// AngularSpace wraps feature vectors in the angular (kernelized cosine)
// metric — the "documents and images represented in a feature space"
// setting of the paper's introduction.
type AngularSpace = metric.AngularSpace

// OracleSolution is a (k,t)-median/means solution over a cost oracle.
type OracleSolution = kmedian.Solution

// SolvePartialMedian solves the (k,t)-median problem on an arbitrary cost
// oracle with optional client weights (nil = unit). For (k,t)-means, wrap
// the oracle so Cost returns squared distances.
func SolvePartialMedian(c CostOracle, w []float64, k int, t float64, eng Engine, opts SolverOptions) OracleSolution {
	return kmedian.Solve(c, w, k, t, eng, opts)
}

// CenterSolution is a (k,t)-center solution over a cost oracle.
type CenterSolution = kcenter.Solution

// SolvePartialCenter solves the weighted (k,t)-center problem on an
// arbitrary cost oracle (greedy 3-approximation of Charikar et al.).
func SolvePartialCenter(c CostOracle, w []float64, k int, t float64) CenterSolution {
	return kcenter.Partial(c, w, k, t)
}

// --- Streaming sketch (reference [14], the basis of Theorem 2.1) ---

// StreamConfig tunes the one-pass partial clustering sketch.
type StreamConfig = stream.Config

// StreamSketch summarizes an unbounded point stream in O(chunk+k+t) memory
// while preserving (k,t)-median/means cost up to the Theorem 2.1 constants.
type StreamSketch = stream.Sketch

// StreamResult is the solution extracted from a sketch.
type StreamResult = stream.Result

// NewStream creates a one-pass partial clustering sketch.
func NewStream(cfg StreamConfig) (*StreamSketch, error) {
	return stream.New(cfg)
}

// --- Serving (cmd/dpc-server's job subsystem) ---
//
// The serving layer turns one-shot runs into a long-lived service: named
// datasets stay registered, their memoized distance oracles stay warm
// across jobs, and concurrent (k, t, objective) queries schedule over a
// bounded pool. Embed it with NewServer + Server.Handler, or run the
// dpc-server binary.

// ServeConfig tunes the job server (concurrency, queue depth, cache
// budget, job retention).
type ServeConfig = serve.Config

// Server is the embeddable long-running clustering service.
type Server = serve.Server

// JobSpec is one clustering job: a (k, t, objective) query against a
// registered dataset, with per-job engine knobs (Workers, Engine, Seed)
// mirroring Config's — zero values reproduce a one-shot Run bit for bit.
type JobSpec = serve.JobSpec

// JobResult is a finished job's centers, cost and measured footprint.
type JobResult = serve.JobResult

// NewServer creates a job server; mount its Handler on any http.Server.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// --- Centralized subquadratic solvers (Section 3.1) ---

// CentralConfig parameterizes the centralized solver (Levels = simulation
// depth; 0 is the direct quadratic Theorem 3.1 engine).
type CentralConfig = central.Config

// CentralSolution is a centralized result with wall-clock timing.
type CentralSolution = central.Solution

// Centralized solves (k,t)-median/means centrally, optionally simulating
// the distributed algorithm to break the quadratic barrier (Theorem 3.10).
//
// Legacy one-shot surface: prefer Client with Request.Central set.
func Centralized(pts []Point, cfg CentralConfig) CentralSolution {
	return central.PartialMedian(pts, cfg)
}

// --- Workload generators ---

// MixtureSpec describes a planted Gaussian-mixture-with-outliers workload.
type MixtureSpec = gen.MixtureSpec

// Instance is a planted deterministic instance.
type Instance = gen.Instance

// Mixture samples a planted instance.
func Mixture(spec MixtureSpec) Instance { return gen.Mixture(spec) }

// PartitionMode selects how points spread across sites.
type PartitionMode = gen.PartitionMode

// Partition modes.
const (
	// PartitionUniform spreads points evenly at random.
	PartitionUniform = gen.Uniform
	// PartitionSkewed gives site i a share proportional to i+1.
	PartitionSkewed = gen.Skewed
	// PartitionByCluster routes each planted cluster to one site.
	PartitionByCluster = gen.ByCluster
	// PartitionOutlierHeavy puts all planted outliers on site 0.
	PartitionOutlierHeavy = gen.OutlierHeavy
)

// Partition splits an instance across s sites.
func Partition(in Instance, s int, mode PartitionMode, seed int64) [][]int {
	return gen.Partition(in, s, mode, seed)
}

// SitePoints materializes per-site point slices from a partition.
func SitePoints(in Instance, parts [][]int) [][]Point {
	return gen.SitePoints(in, parts)
}

// UncertainSpec describes a planted uncertain workload.
type UncertainSpec = gen.UncertainSpec

// UncertainInstance is a planted uncertain instance.
type UncertainInstance = gen.UncertainInstance

// UncertainMixture samples a planted uncertain instance.
func UncertainMixture(spec UncertainSpec) UncertainInstance {
	return gen.UncertainMixture(spec)
}

// PartitionNodes splits an uncertain instance across s sites.
func PartitionNodes(in UncertainInstance, s int, mode PartitionMode, seed int64) [][]int {
	return gen.PartitionNodes(in, s, mode, seed)
}

// SiteNodes materializes per-site node slices from a partition.
func SiteNodes(in UncertainInstance, parts [][]int) [][]Node {
	return gen.SiteNodes(in, parts)
}
