package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E42"}, &sb); err == nil || !strings.Contains(err.Error(), "E42") {
		t.Fatalf("unknown experiment: err=%v", err)
	}
}

func TestBenchUnknownPreset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-preset", "enormous"}, &sb); err == nil || !strings.Contains(err.Error(), "enormous") {
		t.Fatalf("unknown preset: err=%v", err)
	}
}

// TestBenchE11QuickArtifact runs the cheapest experiment through the full
// baseline-vs-tuned comparison and validates the JSON artifact schema.
func TestBenchE11QuickArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run([]string{"-exp", "E11", "-preset", "quick", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Experiments) != 1 || art.Experiments[0].ID != "E11" {
		t.Fatalf("unexpected experiments: %+v", art.Experiments)
	}
	e := art.Experiments[0]
	if !e.RowsCompared || !e.RowsIdentical {
		t.Fatalf("E11 rows not compared identical: %+v", e)
	}
	if e.BaselineMS <= 0 || e.TunedMS <= 0 {
		t.Fatalf("non-positive timings: %+v", e)
	}
	if len(e.Rows) == 0 || len(e.Header) == 0 {
		t.Fatal("artifact carries no table")
	}
	if _, ok := art.Summary["E11_speedup"]; !ok {
		t.Fatalf("summary missing E11_speedup: %v", art.Summary)
	}
}

func TestTablesEqual(t *testing.T) {
	a := [][]string{{"1", "2"}, {"3"}}
	if !tablesEqual(a, [][]string{{"1", "2"}, {"3"}}) {
		t.Fatal("equal tables reported unequal")
	}
	if tablesEqual(a, [][]string{{"1", "2"}}) {
		t.Fatal("row-count mismatch missed")
	}
	if tablesEqual(a, [][]string{{"1", "2"}, {"4"}}) {
		t.Fatal("cell mismatch missed")
	}
}

// TestBenchTreeArtifact runs the -tree mode over a shortened curve and
// validates the artifact: identical centers everywhere, degenerate rows
// (s <= branch) reporting the star inbox, real tree rows below it.
func TestBenchTreeArtifact(t *testing.T) {
	saved := treeSiteCurve
	treeSiteCurve = []int{4, 16}
	defer func() { treeSiteCurve = saved }()

	out := filepath.Join(t.TempDir(), "tree.json")
	var sb strings.Builder
	if err := run([]string{"-tree", "-preset", "quick", "-branch", "4", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art treeArtifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Branch != 4 || len(art.Rows) != 4 {
		t.Fatalf("unexpected artifact shape: branch %d, %d rows", art.Branch, len(art.Rows))
	}
	for _, r := range art.Rows {
		if !r.EqualCenters {
			t.Fatalf("%s s=%d: centers diverged", r.Objective, r.Sites)
		}
		switch {
		case r.Sites <= art.Branch:
			if r.Levels != 0 || r.TreeRootUpBytes != r.StarUpBytes {
				t.Fatalf("degenerate row %+v should report the star inbox with 0 levels", r)
			}
		default:
			if r.Levels < 2 || r.TreeRootUpBytes >= r.StarUpBytes {
				t.Fatalf("tree row %+v should beat the star inbox across >= 2 levels", r)
			}
		}
	}
}
