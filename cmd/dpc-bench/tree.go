package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"

	"dpc/internal/core"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
	"dpc/internal/tree"
)

// treeSiteCurve is the site-count sweep of the -tree benchmark. The curve
// is the point: the star's root inbox grows linearly in s while the
// tree's stays bounded by the branching factor, so the gap must widen
// along it. Both presets sweep the same counts (the gate checks the
// relation at every s); quick only shrinks the per-site instance.
var treeSiteCurve = []int{8, 16, 32, 64, 128, 256}

// treeRow is one (objective, site-count) measurement of BENCH_TREE.json.
type treeRow struct {
	Objective string `json:"objective"`
	Sites     int    `json:"sites"`
	// StarUpBytes is the coordinator's physical inbox under the star: the
	// run's logical up bytes, since every site payload lands on a root
	// link. TreeRootUpBytes is the inbox under the tree — bytes arriving
	// on the root's own links only (merged batches from its direct
	// children). Levels is the tree's link-tier count (0 when s <= branch,
	// where the tree degenerates to the star by construction).
	StarUpBytes     int64 `json:"star_up_bytes"`
	TreeRootUpBytes int64 `json:"tree_root_up_bytes"`
	Levels          int   `json:"levels"`
	// EqualCenters asserts the tentpole invariant: the tree run returned
	// byte-identical centers, budgets and logical byte accounting.
	EqualCenters bool `json:"equal_centers"`
}

// treeArtifact is the BENCH_TREE.json schema.
type treeArtifact struct {
	Description   string    `json:"description"`
	Preset        string    `json:"preset"`
	Seed          int64     `json:"seed"`
	Branch        int       `json:"branch"`
	PointsPerSite int       `json:"points_per_site"`
	GoVersion     string    `json:"go_version"`
	Rows          []treeRow `json:"rows"`
}

// runTree sweeps treeSiteCurve for two representative objectives, running
// every instance star-then-tree over the loopback wire, and writes the
// curve artifact. Divergent centers fail the run outright — the artifact
// records measurements of a working tree, not a broken one.
func runTree(out, preset string, quick bool, seed int64, branch int, stdout io.Writer) error {
	if err := (tree.Spec{Tree: true, Branch: branch}).Validate(); err != nil {
		return err
	}
	perSite := 64
	if quick {
		perSite = 24
	}
	art := treeArtifact{
		Description: "Aggregation-tree topology benchmark: the same seeded instance run star and tree " +
			"(internal/tree) at growing site counts. star_up_bytes is the coordinator's physical inbox " +
			"under the star, tree_root_up_bytes under the tree; equal_centers asserts byte-identical " +
			"results. Deterministic given the seed.",
		Preset:        preset,
		Seed:          seed,
		Branch:        branch,
		PointsPerSite: perSite,
		GoVersion:     runtime.Version(),
	}

	objectives := []struct {
		name string
		obj  core.Objective
	}{
		{"median", core.Median},
		{"center", core.Center},
	}
	for _, o := range objectives {
		for _, s := range treeSiteCurve {
			sites := treeSites(s, perSite, 4, seed)
			cfg := core.Config{
				K: 8, T: s, Objective: o.obj, Variant: core.TwoRound,
				LocalOpts: kmedian.Options{Seed: seed},
				Transport: transport.KindLoopback,
			}
			star, err := core.Run(sites, cfg)
			if err != nil {
				return fmt.Errorf("tree bench %s s=%d star: %w", o.name, s, err)
			}
			cfg.Topology = tree.Spec{Tree: true, Branch: branch}
			treed, err := core.Run(sites, cfg)
			if err != nil {
				return fmt.Errorf("tree bench %s s=%d tree: %w", o.name, s, err)
			}

			row := treeRow{
				Objective:   o.name,
				Sites:       s,
				StarUpBytes: star.Report.UpBytes,
				EqualCenters: reflect.DeepEqual(star.Centers, treed.Centers) &&
					reflect.DeepEqual(star.SiteBudgets, treed.SiteBudgets) &&
					star.Report.UpBytes == treed.Report.UpBytes &&
					star.Report.DownBytes == treed.Report.DownBytes,
			}
			if treed.Report.Tree != nil {
				row.TreeRootUpBytes = treed.Report.Tree.RootUpBytes()
				row.Levels = len(treed.Report.Tree.Levels)
			} else {
				// s <= branch: the tree degenerates to the star, so the
				// physical inbox is the star's.
				row.TreeRootUpBytes = treed.Report.UpBytes
			}
			if !row.EqualCenters {
				return fmt.Errorf("tree bench %s s=%d: tree run diverged from the star", o.name, s)
			}
			art.Rows = append(art.Rows, row)
			fmt.Fprintf(stdout, "%-6s s=%-3d star inbox %8d B  tree inbox %8d B  (%.1f%%, %d levels)\n",
				o.name, s, row.StarUpBytes, row.TreeRootUpBytes,
				100*float64(row.TreeRootUpBytes)/float64(row.StarUpBytes), row.Levels)
		}
	}

	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		_, err = stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d rows)\n", out, len(art.Rows))
	return nil
}

// treeSites generates s deterministic site shards of perSite points each
// (three well-separated clusters plus noise, round-robin sharded — the
// transport tests' instance shape, scaled by site count).
func treeSites(s, perSite, dim int, seed int64) [][]metric.Point {
	rng := rand.New(rand.NewSource(seed + int64(s)*1009))
	sites := make([][]metric.Point, s)
	n := s * perSite
	for j := 0; j < n; j++ {
		c := j % 3
		p := make(metric.Point, dim)
		for d := range p {
			p[d] = float64(c*10) + rng.NormFloat64()
		}
		sites[j%s] = append(sites[j%s], p)
	}
	return sites
}
