// Command dpc-bench is the deterministic engine benchmark and regression
// harness: it runs the evaluation experiments (E1..E10 by default) at a
// fixed seed under two engine configurations —
//
//	baseline: the seed sequential engine (Reference mode: Workers=1, no
//	          distance cache — the implementation this repository shipped
//	          before the multi-core engine)
//	tuned:    the fast engine (Workers=NumCPU by default, memoized
//	          distance oracles, restructured swap/coverage evaluation)
//
// — and writes a JSON artifact with per-experiment wall-clock, speedup,
// and the tuned tables (communication bytes and cost ratios). For every
// experiment whose table carries no timing columns, the harness asserts
// that baseline and tuned produced *identical* tables: same centers, same
// bytes on the wire, same costs. A speedup that changes results is a bug,
// and this is the check that catches it.
//
// Usage:
//
//	dpc-bench                         # E1..E10 full-size -> BENCH_PR2.json
//	dpc-bench -preset quick           # reduced sizes (CI smoke)
//	dpc-bench -exp E1,E4 -out e14.json
//	dpc-bench -seed 7 -workers 4
//
// With -tree the harness measures the aggregation-tree topology instead:
// for a curve of site counts it runs the same instance star and tree
// (internal/tree, default branch 8) and records the coordinator's physical
// inbox bytes under each — the star's inbox grows linearly in s, the
// tree's is bounded by the branching factor — plus the byte-identity of
// the centers, into BENCH_TREE.json (gated by dpc-benchdiff -tree):
//
//	dpc-bench -tree                   # s in {8..256} -> BENCH_TREE.json
//	dpc-bench -tree -preset quick -branch 4
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"dpc/internal/bench"
	"dpc/internal/metric"
	"dpc/internal/tree"
)

// timingRowExperiments have wall-clock columns inside their tables, so
// their rows legitimately differ between engine runs and are excluded from
// the identity assertion (speedup is still recorded).
var timingRowExperiments = map[string]bool{"E7": true, "E12": true}

// defaultExperiments is the E1..E10 span the PR-2 artifact covers.
const defaultExperiments = "E1,E2,E3,E4,E5,E6,E7,E8,E9,E10"

// experimentResult is one experiment's entry in the JSON artifact.
type experimentResult struct {
	ID            string  `json:"id"`
	Title         string  `json:"title"`
	Claim         string  `json:"claim"`
	BaselineMS    float64 `json:"baseline_ms"`
	TunedMS       float64 `json:"tuned_ms"`
	Speedup       float64 `json:"speedup"`
	RowsCompared  bool    `json:"rows_compared"`
	RowsIdentical bool    `json:"rows_identical"`
	// Index columns (present with -index): the tuned engine re-run with
	// the pivot metric index layered over its oracles. IndexSpeedup is
	// tuned_ms / index_ms — above 1 the index beat the cache-only engine.
	IndexMS      float64    `json:"index_ms,omitempty"`
	IndexSpeedup float64    `json:"index_speedup,omitempty"`
	Header       []string   `json:"header"`
	Rows         [][]string `json:"rows"`
	Notes        []string   `json:"notes,omitempty"`
}

// artifact is the BENCH_PR2.json schema.
type artifact struct {
	Description  string             `json:"description"`
	Preset       string             `json:"preset"`
	Seed         int64              `json:"seed"`
	NumCPU       int                `json:"num_cpu"`
	TunedWorkers int                `json:"tuned_workers"`
	IndexPivots  int                `json:"index_pivots,omitempty"`
	GoVersion    string             `json:"go_version"`
	Experiments  []experimentResult `json:"experiments"`
	Summary      map[string]float64 `json:"summary"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if _, printed := err.(parsedError); !printed {
			fmt.Fprintln(os.Stderr, "dpc-bench:", err)
		}
		os.Exit(1)
	}
}

// parsedError wraps an error the FlagSet already reported to stderr, so
// main does not print it a second time.
type parsedError struct{ error }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dpc-bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_PR2.json", "output JSON path ('-' for stdout)")
	exp := fs.String("exp", defaultExperiments, "comma-separated experiment IDs")
	seed := fs.Int64("seed", 1, "workload seed (the artifact is deterministic given the seed, up to wall-clock)")
	preset := fs.String("preset", "full", "instance sizes: full or quick")
	workers := fs.Int("workers", 0, "tuned-engine worker count (0 = NumCPU)")
	index := fs.Bool("index", false, "also run the tuned engine with the pivot metric index and record index_ms/index_speedup")
	pivots := fs.Int("pivots", 0, "pivot count for -index (0 = metric default)")
	treeMode := fs.Bool("tree", false, "measure the aggregation-tree topology (comm bytes vs site count) instead of the engine experiments")
	branch := fs.Int("branch", tree.DefaultBranch, "with -tree: aggregation-tree branching factor")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed
		}
		return parsedError{err}
	}
	var quick bool
	switch *preset {
	case "full":
	case "quick":
		quick = true
	default:
		return fmt.Errorf("unknown preset %q (want full or quick)", *preset)
	}
	if *treeMode {
		treeOut := *out
		if treeOut == "BENCH_PR2.json" { // -tree writes its own artifact by default
			treeOut = "BENCH_TREE.json"
		}
		return runTree(treeOut, *preset, quick, *seed, *branch, stdout)
	}

	var selected []bench.Experiment
	for _, id := range strings.Split(*exp, ",") {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		selected = append(selected, e)
	}

	art := artifact{
		Description: "Engine benchmark: seed sequential engine (baseline) vs multi-core engine with " +
			"cached distance oracles (tuned). rows_identical asserts the engines returned " +
			"byte-identical tables (same centers, wire bytes, costs).",
		Preset:       *preset,
		Seed:         *seed,
		NumCPU:       runtime.NumCPU(),
		TunedWorkers: effectiveWorkers(*workers),
		GoVersion:    runtime.Version(),
		Summary:      map[string]float64{},
	}
	if *index {
		art.IndexPivots = *pivots
		if art.IndexPivots == 0 {
			art.IndexPivots = metric.DefaultPivots
		}
	}

	for _, e := range selected {
		baseOpts := bench.Options{Seed: *seed, Quick: quick, Reference: true}
		tunedOpts := bench.Options{Seed: *seed, Quick: quick, Workers: *workers}

		t0 := time.Now()
		baseTable := e.Run(baseOpts)
		baseMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		tunedTable := e.Run(tunedOpts)
		tunedMS := float64(time.Since(t0).Microseconds()) / 1000

		res := experimentResult{
			ID:           e.ID,
			Title:        tunedTable.Title,
			Claim:        tunedTable.Claim,
			BaselineMS:   round2(baseMS),
			TunedMS:      round2(tunedMS),
			Speedup:      round2(baseMS / tunedMS),
			RowsCompared: !timingRowExperiments[e.ID],
			Header:       tunedTable.Header,
			Rows:         tunedTable.Rows,
			Notes:        tunedTable.Notes,
		}
		if res.RowsCompared {
			res.RowsIdentical = tablesEqual(baseTable.Rows, tunedTable.Rows)
			if !res.RowsIdentical {
				return fmt.Errorf("%s: tuned engine diverged from the reference engine\nbaseline:\n%s\ntuned:\n%s",
					e.ID, baseTable.String(), tunedTable.String())
			}
		}
		if *index {
			indexOpts := tunedOpts
			indexOpts.Index, indexOpts.Pivots = true, *pivots
			t0 = time.Now()
			indexTable := e.Run(indexOpts)
			indexMS := float64(time.Since(t0).Microseconds()) / 1000
			res.IndexMS = round2(indexMS)
			res.IndexSpeedup = round2(tunedMS / indexMS)
			// The index prunes with exact lower bounds: its tables must be
			// byte-identical to the cache-only engine's, always — timing
			// experiments included, since their timing rows are excluded by
			// the same rule as the baseline comparison.
			if res.RowsCompared && !tablesEqual(tunedTable.Rows, indexTable.Rows) {
				return fmt.Errorf("%s: indexed engine diverged from the cache-only engine\ncache-only:\n%s\nindexed:\n%s",
					e.ID, tunedTable.String(), indexTable.String())
			}
			art.Summary[e.ID+"_index_speedup"] = res.IndexSpeedup
		}
		art.Experiments = append(art.Experiments, res)
		art.Summary[e.ID+"_speedup"] = res.Speedup
		if *index {
			fmt.Fprintf(stdout, "%-4s baseline %8.1fms  tuned %8.1fms  index %8.1fms  speedup %.2fx  index_speedup %.2fx  rows_identical=%v\n",
				e.ID, res.BaselineMS, res.TunedMS, res.IndexMS, res.Speedup, res.IndexSpeedup, res.RowsIdentical || !res.RowsCompared)
		} else {
			fmt.Fprintf(stdout, "%-4s baseline %8.1fms  tuned %8.1fms  speedup %.2fx  rows_identical=%v\n",
				e.ID, res.BaselineMS, res.TunedMS, res.Speedup, res.RowsIdentical || !res.RowsCompared)
		}
	}
	art.Summary["geomean_speedup"] = round2(geomean(art.Experiments))

	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		_, err = stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d experiments)\n", *out, len(art.Experiments))
	return nil
}

func effectiveWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.NumCPU()
}

func tablesEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func geomean(rs []experimentResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		sum += math.Log(r.Speedup)
	}
	return math.Exp(sum / float64(len(rs)))
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
