// dpc-vet is the repo's invariant checker: a multichecker over the custom
// analyzers in internal/analysis that freeze dpc's determinism, context-
// flow, durability, wire-error-code and oracle-typing rules at compile
// time. CI runs it as a required gate; run it locally with
//
//	go run ./cmd/dpc-vet ./...
//
// Diagnostics print as file:line:col: analyzer: message (or a JSON array
// with -json) and any finding exits 1. Allowlist deliberate violations in
// the source with //dpc:nondeterministic-ok <reason> (determinism) or
// //dpc:vet-ok <analyzer> <reason>; every directive must carry a reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dpc/internal/analysis"
)

func main() {
	var (
		dir      = flag.String("dir", "", "module directory to analyze (default: current directory)")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array")
		names    = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests    = flag.Bool("tests", true, "analyze test files too")
		listOnly = flag.Bool("list", false, "list the analyzers in the suite and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dpc-vet [flags] [package patterns]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	var selected []string
	if *names != "" {
		selected = strings.Split(*names, ",")
	}
	analyzers, err := analysis.Select(selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags, err := analysis.Vet(analysis.LoadOptions{
		Dir:      *dir,
		Patterns: flag.Args(),
		Tests:    *tests,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpc-vet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "dpc-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dpc-vet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
