// Command dpc-server runs the long-running clustering service: a registry
// of named datasets and an HTTP/JSON job API, so many (k, t, objective)
// queries — point and uncertain — run against the same data with warm
// distance caches and live site connections instead of one-shot CLI
// invocations.
//
// Usage:
//
//	dpc-server -listen 127.0.0.1:8080
//	dpc-server -listen :8080 -max-jobs 4 -cache-mb 512
//
//	# fan distributed jobs out to live dpc-site daemons:
//	dpc-server -listen :8080 -sites-listen 127.0.0.1:9009 -remote-sites 2 -remote-name shards
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv -persist
//	dpc-site -connect 127.0.0.1:9009 -site 1 -in part1.csv -persist
//
// API sketch (see the README's Serving section for full reference):
//
//	POST /v1/datasets                  register a dataset (JSON points/nodes, or text/csv body + ?name= [&kind=uncertain])
//	POST /v1/datasets/{name}/points    append points (table extend / stream ingest)
//	GET  /v1/datasets[/{name}]         inspect datasets and cache stats
//	POST /v1/jobs                      submit a clustering job (JSON JobSpec)
//	GET  /v1/jobs/{id}                 job status + result
//	POST /v1/jobs/{id}/cancel          cancel a queued or running job
//	GET  /v1/jobs/{id}/centers.csv     centers in dpc-cluster's CSV format
//	GET  /healthz, /metrics            liveness and Prometheus metrics
//
// SIGTERM/SIGINT drain gracefully: submissions stop, queued jobs fail with
// an explicit reason, and running jobs get -drain-timeout to finish before
// their contexts are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpc/internal/flagbind"
	"dpc/internal/serve"
)

// options is the server's flag surface; like cmd/dpc-cluster, the flags
// are generated from the tagged fields instead of hand-declared, so names
// cannot drift from the documented configuration vocabulary.
type options struct {
	Listen       string `json:"listen" usage:"HTTP listen address"`
	MaxJobs      int    `json:"max_jobs" usage:"max concurrently running jobs (0 = one per CPU)"`
	Queue        int    `json:"queue" usage:"max queued jobs before 503 backpressure"`
	CacheMB      int64  `json:"cache_mb" usage:"shared distance-cache pool budget in MiB"`
	SitesListen  string `json:"sites_listen" usage:"when set, accept persistent dpc-site daemons on this address"`
	RemoteSites  int    `json:"remote_sites" usage:"number of dpc-site daemons to wait for on -sites-listen"`
	RemoteName   string `json:"remote_name" usage:"dataset name for the connected dpc-site daemons"`
	DrainTimeout string `json:"drain_timeout" usage:"how long running jobs may finish after SIGTERM before cancellation"`
}

func main() {
	opt := options{
		Listen: "127.0.0.1:8080", Queue: 256, CacheMB: 256,
		RemoteName: "remote", DrainTimeout: "30s",
	}
	flagbind.Bind(flag.CommandLine, &opt)
	flag.Parse()

	drain, err := time.ParseDuration(opt.DrainTimeout)
	if err != nil {
		fatal(fmt.Errorf("bad -drain-timeout: %w", err))
	}

	srv := serve.New(serve.Config{
		MaxConcurrentJobs: opt.MaxJobs,
		QueueDepth:        opt.Queue,
		MaxCacheBytes:     opt.CacheMB << 20,
	})

	if opt.SitesListen != "" {
		if opt.RemoteSites <= 0 {
			fatal(fmt.Errorf("-sites-listen requires -remote-sites > 0"))
		}
		fmt.Fprintf(os.Stderr, "dpc-server: waiting for %d dpc-site daemon(s) on %s\n", opt.RemoteSites, opt.SitesListen)
		_, addr, err := srv.RegisterRemote(opt.RemoteName, opt.SitesListen, opt.RemoteSites)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dpc-server: %d site(s) connected on %s as dataset %q\n", opt.RemoteSites, addr, opt.RemoteName)
	}

	ln, err := net.Listen("tcp", opt.Listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dpc-server: serving HTTP on %s\n", ln.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-sigCtx.Done():
	}

	fmt.Fprintf(os.Stderr, "dpc-server: shutting down (draining up to %s)\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	hs.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dpc-server: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dpc-server: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-server:", err)
	os.Exit(1)
}
