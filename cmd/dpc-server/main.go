// Command dpc-server runs the long-running clustering service: a registry
// of named datasets and an HTTP/JSON job API, so many (k, t, objective)
// queries — point and uncertain — run against the same data with warm
// distance caches and live site connections instead of one-shot CLI
// invocations.
//
// Usage:
//
//	dpc-server -listen 127.0.0.1:8080
//	dpc-server -listen :8080 -max-jobs 4 -cache-mb 512
//
//	# fan distributed jobs out to live dpc-site daemons:
//	dpc-server -listen :8080 -sites-listen 127.0.0.1:9009 -remote-sites 2 -remote-name shards
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv -persist
//	dpc-site -connect 127.0.0.1:9009 -site 1 -in part1.csv -persist
//
// API sketch (see the README's Serving section for full reference):
//
//	POST /v1/datasets                  register a dataset (JSON points/nodes, or text/csv body + ?name= [&kind=uncertain])
//	POST /v1/datasets/{name}/points    append points (table extend / stream ingest)
//	GET  /v1/datasets[/{name}]         inspect datasets and cache stats
//	POST /v1/jobs                      submit a clustering job (JSON JobSpec)
//	GET  /v1/jobs/{id}                 job status + result
//	POST /v1/jobs/{id}/cancel          cancel a queued or running job
//	GET  /v1/jobs/{id}/centers.csv     centers in dpc-cluster's CSV format
//	GET  /livez, /readyz, /metrics     liveness, readiness and Prometheus metrics
//
// With -journal-dir set, every dataset and job mutation is written ahead
// to an append-only journal and replayed on start: a restarted server
// resumes its queue and re-serves finished results with zero recompute.
// /readyz answers 503 until the replay completes.
//
// SIGTERM/SIGINT drain gracefully: submissions stop, queued jobs fail with
// an explicit reason, and running jobs get -drain-timeout to finish before
// their contexts are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dpc/internal/flagbind"
	"dpc/internal/serve"
)

// options is the server's flag surface; like cmd/dpc-cluster, the flags
// are generated from the tagged fields instead of hand-declared, so names
// cannot drift from the documented configuration vocabulary.
type options struct {
	Listen         string `json:"listen" usage:"HTTP listen address"`
	MaxJobs        int    `json:"max_jobs" usage:"max concurrently running jobs (0 = one per CPU)"`
	Queue          int    `json:"queue" usage:"max queued jobs before 503 backpressure"`
	CacheMB        int64  `json:"cache_mb" usage:"shared distance-cache pool budget in MiB"`
	RegistryShards int    `json:"registry_shards" usage:"dataset-registry hash segments (0 = default; 1 = single-lock namespace)"`
	CacheDir       string `json:"cache_dir" usage:"when set, spill warm distance triangles here on shutdown and restore them on start"`
	Warm           bool   `json:"warm" usage:"prefill every table dataset's shard caches in the background after registration"`
	WarmIndex      bool   `json:"warm_index" usage:"also build pooled pivot indexes during background warmup (with -warm)"`
	WarmPivots     int    `json:"warm_pivots" usage:"pivot count for warmup-built indexes (0 = metric default)"`
	SitesListen    string `json:"sites_listen" usage:"when set, accept persistent dpc-site daemons on this address (comma-separated for several site groups)"`
	RemoteSites    string `json:"remote_sites" usage:"dpc-site daemons to wait for per -sites-listen address (comma-separated to match)"`
	RemoteName     string `json:"remote_name" usage:"dataset name for the connected dpc-site daemons"`
	DrainTimeout   string `json:"drain_timeout" usage:"how long running jobs may finish after SIGTERM before cancellation"`

	JournalDir   string  `json:"journal_dir" usage:"when set, write-ahead journal every dataset and job mutation here and replay it on start"`
	JournalSync  bool    `json:"journal_sync" usage:"fsync the journal after every record (survives power loss, not just crashes)"`
	SegmentBytes int64   `json:"journal_segment_bytes" usage:"journal segment rotation threshold in bytes (0 = 64 MiB)"`
	CompactEvery string  `json:"compact_every" usage:"write a snapshot checkpoint and GC superseded journal segments on this cadence (0 = only on POST /v1/admin/compact)"`
	JobTTL       string  `json:"job_ttl" usage:"evict finished jobs from memory after this long (0 = keep; journaled results stay fetchable)"`
	QuotaBurst   int     `json:"quota_burst" usage:"per-client submission token bucket size (0 = no quotas)"`
	QuotaRate    float64 `json:"quota_rate" usage:"per-client token refill per second (0 = burst per second)"`
	MaxQueueWait string  `json:"max_queue_wait" usage:"fail jobs still queued after this long with queue_deadline_exceeded (0 = no deadline)"`
}

// parseSiteGroups pairs the comma-separated -sites-listen addresses with
// their -remote-sites counts: one count per address, or one count applied
// to every address.
func parseSiteGroups(listens, counts string) ([]string, []int, error) {
	addrs := strings.Split(listens, ",")
	parts := strings.Split(counts, ",")
	if len(parts) != len(addrs) && len(parts) != 1 {
		return nil, nil, fmt.Errorf("-remote-sites has %d entries for %d -sites-listen addresses", len(parts), len(addrs))
	}
	ns := make([]int, len(addrs))
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			return nil, nil, fmt.Errorf("bad -sites-listen: entry %d is empty", i)
		}
		p := parts[0]
		if len(parts) > 1 {
			p = parts[i]
		}
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("bad -remote-sites entry %q (want a positive count)", p)
		}
		ns[i] = n
	}
	return addrs, ns, nil
}

func main() {
	opt := options{
		Listen: "127.0.0.1:8080", Queue: 256, CacheMB: 256,
		RemoteName: "remote", DrainTimeout: "30s",
	}
	flagbind.Bind(flag.CommandLine, &opt)
	flag.Parse()

	drain, err := time.ParseDuration(opt.DrainTimeout)
	if err != nil {
		fatal(fmt.Errorf("bad -drain-timeout: %w", err))
	}
	jobTTL := parseDurationFlag("-job-ttl", opt.JobTTL)
	maxQueueWait := parseDurationFlag("-max-queue-wait", opt.MaxQueueWait)
	compactEvery := parseDurationFlag("-compact-every", opt.CompactEvery)

	// Recovery (journal replay + cache restore) runs after the listener is
	// up: /livez answers immediately while /readyz stays 503 until the
	// replay finishes, so orchestrators see a starting process, not a dead
	// one, even behind a large journal.
	srv, err := serve.NewChecked(serve.Config{
		MaxConcurrentJobs: opt.MaxJobs,
		QueueDepth:        opt.Queue,
		MaxCacheBytes:     opt.CacheMB << 20,
		RegistryShards:    opt.RegistryShards,
		CacheDir:          opt.CacheDir,
		WarmOnRegister:    opt.Warm,
		WarmIndex:         opt.WarmIndex,
		WarmPivots:        opt.WarmPivots,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dpc-server: "+format+"\n", args...)
		},
		JournalDir:    opt.JournalDir,
		JournalSync:   opt.JournalSync,
		SegmentBytes:  opt.SegmentBytes,
		CompactEvery:  compactEvery,
		JobTTL:        jobTTL,
		QuotaBurst:    opt.QuotaBurst,
		QuotaPerSec:   opt.QuotaRate,
		MaxQueueWait:  maxQueueWait,
		DeferRecovery: true,
	})
	if err != nil {
		fatal(err)
	}
	go func() {
		if err := srv.Recover(); err != nil {
			// A corrupt spill or journal starts the server cold, never down.
			fmt.Fprintf(os.Stderr, "dpc-server: recovery degraded (starting cold): %v\n", err)
		}
		if opt.JournalDir != "" {
			rec := srv.Recovery()
			from := "full history"
			if rec.FromSnapshot {
				from = fmt.Sprintf("snapshot (segment %d: %d datasets, %d jobs) + suffix", rec.SnapshotSegment, rec.SnapshotDatasets, rec.SnapshotJobs)
			}
			fmt.Fprintf(os.Stderr, "dpc-server: journal replayed from %s: %d records, %d datasets, %d results re-served, %d jobs resumed (sealed=%t truncated=%t, %d stale records)\n",
				from, rec.Records, rec.Datasets, rec.JobsReplayed, rec.JobsResumed, rec.Sealed, rec.Truncated, len(rec.Errors))
		}
		fmt.Fprintln(os.Stderr, "dpc-server: ready")
	}()

	if opt.SitesListen != "" {
		if opt.RemoteSites == "" {
			fatal(fmt.Errorf("-sites-listen requires -remote-sites"))
		}
		addrs, counts, err := parseSiteGroups(opt.SitesListen, opt.RemoteSites)
		if err != nil {
			fatal(err)
		}
		for g, addr := range addrs {
			fmt.Fprintf(os.Stderr, "dpc-server: waiting for %d dpc-site daemon(s) on %s\n", counts[g], addr)
			if g == 0 {
				_, bound, err := srv.RegisterRemote(opt.RemoteName, addr, counts[g])
				if err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "dpc-server: %d site(s) connected on %s as dataset %q\n", counts[g], bound, opt.RemoteName)
				continue
			}
			bound, err := srv.AddRemoteGroup(opt.RemoteName, addr, counts[g])
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dpc-server: %d more site(s) connected on %s joined dataset %q (group %d)\n", counts[g], bound, opt.RemoteName, g+1)
		}
	}

	ln, err := net.Listen("tcp", opt.Listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dpc-server: serving HTTP on %s\n", ln.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-sigCtx.Done():
	}

	fmt.Fprintf(os.Stderr, "dpc-server: shutting down (draining up to %s)\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	hs.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dpc-server: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dpc-server: drained cleanly")
}

// parseDurationFlag parses an optional duration flag ("" = zero).
func parseDurationFlag(name, v string) time.Duration {
	if v == "" || v == "0" {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		fatal(fmt.Errorf("bad %s: %w", name, err))
	}
	if d < 0 {
		fatal(fmt.Errorf("bad %s: negative duration %q", name, v))
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-server:", err)
	os.Exit(1)
}
