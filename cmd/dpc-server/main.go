// Command dpc-server runs the long-running clustering service: a registry
// of named datasets and an HTTP/JSON job API, so many (k, t, objective)
// queries run against the same data with warm distance caches and live
// site connections instead of one-shot CLI invocations.
//
// Usage:
//
//	dpc-server -listen 127.0.0.1:8080
//	dpc-server -listen :8080 -max-jobs 4 -cache-mb 512
//
//	# fan distributed jobs out to live dpc-site daemons:
//	dpc-server -listen :8080 -sites-listen 127.0.0.1:9009 -remote-sites 2 -remote-name shards
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv -persist
//	dpc-site -connect 127.0.0.1:9009 -site 1 -in part1.csv -persist
//
// API sketch (see the README's Serving section for full reference):
//
//	POST /v1/datasets                  register a dataset (JSON points, or text/csv body + ?name=)
//	POST /v1/datasets/{name}/points    append points (table extend / stream ingest)
//	GET  /v1/datasets[/{name}]         inspect datasets and cache stats
//	POST /v1/jobs                      submit a clustering job (JSON JobSpec)
//	GET  /v1/jobs/{id}                 job status + result
//	GET  /v1/jobs/{id}/centers.csv     centers in dpc-cluster's CSV format
//	GET  /healthz, /metrics            liveness and Prometheus metrics
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"dpc/internal/serve"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		maxJobs     = flag.Int("max-jobs", 0, "max concurrently running jobs (0 = one per CPU)")
		queueDepth  = flag.Int("queue", 256, "max queued jobs before 503 backpressure")
		cacheMB     = flag.Int64("cache-mb", 256, "shared distance-cache pool budget in MiB")
		sitesListen = flag.String("sites-listen", "", "when set, accept persistent dpc-site daemons on this address")
		remoteSites = flag.Int("remote-sites", 0, "number of dpc-site daemons to wait for on -sites-listen")
		remoteName  = flag.String("remote-name", "remote", "dataset name for the connected dpc-site daemons")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxConcurrentJobs: *maxJobs,
		QueueDepth:        *queueDepth,
		MaxCacheBytes:     *cacheMB << 20,
	})
	defer srv.Close()

	if *sitesListen != "" {
		if *remoteSites <= 0 {
			fatal(fmt.Errorf("-sites-listen requires -remote-sites > 0"))
		}
		fmt.Fprintf(os.Stderr, "dpc-server: waiting for %d dpc-site daemon(s) on %s\n", *remoteSites, *sitesListen)
		_, addr, err := srv.RegisterRemote(*remoteName, *sitesListen, *remoteSites)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dpc-server: %d site(s) connected on %s as dataset %q\n", *remoteSites, addr, *remoteName)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dpc-server: serving HTTP on %s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-server:", err)
	os.Exit(1)
}
