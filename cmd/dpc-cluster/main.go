// Command dpc-cluster runs distributed partial clustering on a CSV dataset:
// points in, centers (and optionally a per-point assignment) out. It is the
// "downstream user" entry point: bring your own data, pick k and how many
// points you are willing to write off, and get centers plus the measured
// communication footprint of the simulated deployment.
//
// Usage:
//
//	dpc-cluster -k 5 -t 100 -in points.csv -out centers.csv
//	dpc-cluster -k 3 -t 10 -objective center -sites 16 -assign labels.csv < points.csv
//	dpc-cluster -k 4 -t 50 -variant noship -report
//	dpc-cluster -k 5 -t 100 -transport tcp -report < points.csv   # real localhost sockets
//
// -transport=tcp runs the identical protocol over real localhost TCP
// sockets (one in-process site server per site); for sites in separate
// processes see dpc-coordinator and dpc-site.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpc/internal/comm"
	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

func main() {
	var (
		k         = flag.Int("k", 3, "number of centers")
		t         = flag.Int("t", 0, "outlier budget (points that may be ignored)")
		objective = flag.String("objective", "median", "median | means | center")
		variant   = flag.String("variant", "2round", "2round | 1round | noship")
		sites     = flag.Int("sites", 8, "number of simulated sites")
		eps       = flag.Float64("eps", 1, "coordinator bicriteria slack")
		seed      = flag.Int64("seed", 1, "engine seed")
		inPath    = flag.String("in", "-", "input CSV of points ('-' = stdin)")
		outPath   = flag.String("out", "-", "output CSV of centers ('-' = stdout)")
		assignOut = flag.String("assign", "", "optional output CSV of per-point assignments")
		report    = flag.Bool("report", false, "print the communication report to stderr")
		polish    = flag.Bool("lloyd", false, "Lloyd-polish the final centers (means only)")
		uncFlag   = flag.Bool("uncertain", false, "input rows are uncertain nodes: node_id,prob,coords...")
		transp    = flag.String("transport", "loopback", "wire backend: loopback (in-process) | tcp (real localhost sockets)")
	)
	flag.Parse()

	tkind, err := transport.ParseKind(*transp)
	if err != nil {
		fatal(err)
	}
	in, err := openIn(*inPath)
	if err != nil {
		fatal(err)
	}
	if *uncFlag {
		runUncertainCLI(in, *k, *t, *objective, *sites, *eps, *seed, *outPath, *report, tkind)
		return
	}
	pts, err := dataio.ReadPointsCSV(in)
	in.Close()
	if err != nil {
		fatal(err)
	}

	var obj core.Objective
	switch *objective {
	case "median":
		obj = core.Median
	case "means":
		obj = core.Means
	case "center":
		obj = core.Center
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	var vr core.Variant
	switch *variant {
	case "2round":
		vr = core.TwoRound
	case "1round":
		vr = core.OneRound
	case "noship":
		vr = core.TwoRoundNoOutliers
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}

	siteData := dataio.SplitRoundRobin(pts, *sites)
	res, err := core.Run(siteData, core.Config{
		K: *k, T: *t, Objective: obj, Variant: vr, Eps: *eps,
		LloydPolish: *polish,
		LocalOpts:   kmedian.Options{Seed: *seed},
		Transport:   tkind,
	})
	if err != nil {
		fatal(err)
	}

	out, err := openOut(*outPath)
	if err != nil {
		fatal(err)
	}
	if err := dataio.WritePointsCSV(out, res.Centers); err != nil {
		fatal(err)
	}
	out.Close()

	if *assignOut != "" {
		f, err := os.Create(*assignOut)
		if err != nil {
			fatal(err)
		}
		a := dataio.Assign(pts, res.Centers, res.OutlierBudget, obj == core.Means)
		if err := dataio.WriteAssignmentCSV(f, a); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *report {
		cost := core.Evaluate(pts, res.Centers, res.OutlierBudget, obj)
		fmt.Fprintf(os.Stderr, "points: %d  sites: %d  centers: %d  ignorable: %.0f\n",
			len(pts), len(siteData), len(res.Centers), res.OutlierBudget)
		fmt.Fprintf(os.Stderr, "objective (%s): %.6g\n", obj, cost)
		fmt.Fprintf(os.Stderr, "rounds: %d  up: %d B  down: %d B\n",
			res.Report.Rounds, res.Report.UpBytes, res.Report.DownBytes)
		fmt.Fprintf(os.Stderr, "site budgets t_i: %v\n", res.SiteBudgets)
	}
}

// runUncertainCLI handles -uncertain mode: nodes in, centers out.
func runUncertainCLI(in io.ReadCloser, k, t int, objective string, sites int, eps float64, seed int64, outPath string, report bool, tkind transport.Kind) {
	g, nodes, err := dataio.ReadNodesCSV(in)
	in.Close()
	if err != nil {
		fatal(err)
	}
	siteNodes := dataio.SplitNodesRoundRobin(nodes, sites)
	cfg := uncertain.Config{K: k, T: t, Eps: eps, LocalOpts: kmedian.Options{Seed: seed}, Transport: tkind}
	var (
		centers []metric.Point
		rep     comm.Report
		cost    float64
		label   string
	)
	switch objective {
	case "median", "means", "centerpp":
		var obj uncertain.Objective
		switch objective {
		case "means":
			obj = uncertain.Means
		case "centerpp":
			obj = uncertain.CenterPP
		default:
			obj = uncertain.Median
		}
		res, err := uncertain.Run(g, siteNodes, cfg, obj)
		if err != nil {
			fatal(err)
		}
		centers, rep = res.Centers, res.Report
		switch obj {
		case uncertain.Means:
			cost = uncertain.EvalMeans(g, nodes, centers, res.OutlierBudget)
		case uncertain.CenterPP:
			cost = uncertain.EvalCenterPP(g, nodes, centers, res.OutlierBudget)
		default:
			cost = uncertain.EvalMedian(g, nodes, centers, res.OutlierBudget)
		}
		label = objective
	case "centerg":
		res, err := uncertain.RunCenterG(g, siteNodes, uncertain.CenterGConfig{
			K: k, T: t, Eps: eps, LocalOpts: kmedian.Options{Seed: seed}, Transport: tkind,
		})
		if err != nil {
			fatal(err)
		}
		centers, rep = res.Centers, res.Report
		cost = uncertain.EvalCenterG(g, nodes, centers, res.OutlierBudget, 200, seed)
		label = "centerg (Monte-Carlo estimate)"
	default:
		fatal(fmt.Errorf("uncertain mode supports median|means|centerpp|centerg, got %q", objective))
	}

	out, err := openOut(outPath)
	if err != nil {
		fatal(err)
	}
	if err := dataio.WritePointsCSV(out, centers); err != nil {
		fatal(err)
	}
	out.Close()
	if report {
		fmt.Fprintf(os.Stderr, "nodes: %d  ground points: %d  sites: %d  centers: %d\n",
			len(nodes), g.N(), len(siteNodes), len(centers))
		fmt.Fprintf(os.Stderr, "objective (%s): %.6g\n", label, cost)
		fmt.Fprintf(os.Stderr, "rounds: %d  up: %d B  down: %d B\n",
			rep.Rounds, rep.UpBytes, rep.DownBytes)
	}
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-cluster:", err)
	os.Exit(1)
}
