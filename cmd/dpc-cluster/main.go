// Command dpc-cluster runs distributed partial clustering on a CSV dataset:
// points (or uncertain nodes) in, centers out. It is the "downstream user"
// entry point: bring your own data, pick k and how many points you are
// willing to write off, and get centers plus the measured communication
// footprint of the deployment.
//
// It is a thin shell over the unified client API: every clustering flag is
// generated from dpc/client.Request's JSON field names (see
// client.BindFlags), and -server switches the identical request from the
// in-process Local backend to a running dpc-server without changing
// anything else — one request, any backend.
//
// Usage:
//
//	dpc-cluster -k 5 -t 100 -in points.csv -out centers.csv
//	dpc-cluster -k 3 -t 10 -objective center -sites 16 -assign labels.csv < points.csv
//	dpc-cluster -k 4 -t 50 -variant noship -report
//	dpc-cluster -k 5 -t 100 -transport tcp -report < points.csv      # real localhost sockets
//	dpc-cluster -k 3 -t 8 -uncertain -objective u-median < nodes.csv # Section 5
//	dpc-cluster -k 4 -t 20 -server http://127.0.0.1:8080 < points.csv
//
// For sites in separate processes see dpc-coordinator and dpc-site; for a
// long-running service see dpc-server.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dpc/client"
	"dpc/internal/dataio"
	"dpc/internal/engine"
)

func main() {
	// Flag defaults mirror the historical dpc-cluster defaults; the flag
	// set itself is generated from the Request fields.
	req := client.Request{
		Objective: client.Median, Variant: "2round", K: 3,
		Sites: 8, Eps: 1, Seed: 1, Transport: "loopback",
		Engine: engine.Spec{Options: engine.Options{Algo: "auto"}},
	}
	client.BindFlags(flag.CommandLine, &req)
	var (
		inPath    = flag.String("in", "-", "input CSV ('-' = stdin): points, or nodes with -uncertain")
		outPath   = flag.String("out", "-", "output CSV of centers ('-' = stdout)")
		assignOut = flag.String("assign", "", "optional output CSV of per-point assignments (point objectives)")
		report    = flag.Bool("report", false, "print the communication report to stderr")
		uncFlag   = flag.Bool("uncertain", false, "input rows are uncertain nodes: node_id,prob,coords...")
		server    = flag.String("server", "", "run against this dpc-server base URL instead of in-process")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancel the solve mid-run instead of killing the
	// process between writes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	in, err := openIn(*inPath)
	if err != nil {
		fatal(err)
	}
	if *uncFlag {
		req.Objective, err = uncertainObjective(req.Objective)
		if err != nil {
			fatal(err)
		}
		req.Ground, req.Nodes, err = dataio.ReadNodesCSV(in)
	} else {
		req.Points, err = dataio.ReadPointsCSV(in)
	}
	in.Close()
	if err != nil {
		fatal(err)
	}

	var backend client.Client = client.NewLocal()
	if *server != "" {
		backend = client.NewRemote(*server, client.RemoteOptions{})
	}
	defer backend.Close()

	res, err := backend.Do(ctx, req)
	if err != nil {
		fatal(err)
	}

	out, err := openOut(*outPath)
	if err != nil {
		fatal(err)
	}
	if err := dataio.WritePointsCSV(out, res.Centers); err != nil {
		fatal(err)
	}
	out.Close()

	if *assignOut != "" && !*uncFlag {
		f, err := os.Create(*assignOut)
		if err != nil {
			fatal(err)
		}
		a := dataio.Assign(req.Points, res.Centers, res.OutlierBudget, req.Objective == client.Means)
		if err := dataio.WriteAssignmentCSV(f, a); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *report {
		fmt.Fprintf(os.Stderr, "backend: %s  centers: %d  ignorable: %.0f\n",
			res.Backend, len(res.Centers), res.OutlierBudget)
		if res.CostKind != "" {
			fmt.Fprintf(os.Stderr, "objective (%s, %s): %.6g\n", objectiveLabel(req.Objective), res.CostKind, res.Cost)
		}
		fmt.Fprintf(os.Stderr, "rounds: %d  up: %d B  down: %d B\n",
			res.Rounds, res.UpBytes, res.DownBytes)
		if res.SiteBudgets != nil {
			fmt.Fprintf(os.Stderr, "site budgets t_i: %v\n", res.SiteBudgets)
		}
	}
}

// uncertainObjective maps the legacy -uncertain objective spellings
// (median, means, centerpp, centerg) to the unified u-* names; already
// unified names pass through. Point-only names ("center") are rejected
// here — passed through they would validate as point objectives and fail
// later with a misleading "needs Points" error.
func uncertainObjective(obj string) (string, error) {
	if strings.HasPrefix(obj, "u-") {
		return obj, nil
	}
	switch obj {
	case "", "median":
		return client.UncertainMedian, nil
	case "means":
		return client.UncertainMeans, nil
	case "centerpp":
		return client.UncertainCenterPP, nil
	case "centerg":
		return client.UncertainCenterG, nil
	}
	return "", fmt.Errorf("uncertain mode supports median|means|centerpp|centerg (or the u-* names), got %q", obj)
}

// objectiveLabel normalizes the report label.
func objectiveLabel(obj string) string {
	if obj == "" {
		return client.Median
	}
	return obj
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-cluster:", err)
	os.Exit(1)
}
