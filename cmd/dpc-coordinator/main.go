// Command dpc-coordinator is the coordinator daemon of a real distributed
// deployment: it listens for s dpc-site processes, ships them the run
// configuration in the transport handshake, drives Algorithm 1/2 over the
// framed TCP wire protocol, and writes the chosen centers as CSV.
//
// The per-site solves are seeded deterministically from -seed + site id,
// so a TCP deployment reproduces the equivalent in-process loopback run
// (same centers, same payload-byte accounting; frame headers are excluded
// from the accounting by construction).
//
// Usage:
//
//	dpc-coordinator -listen 127.0.0.1:9009 -sites 4 -k 5 -t 100 -out centers.csv
//	# then, in four other terminals / machines:
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv
//	dpc-site -connect 127.0.0.1:9009 -site 1 -in part1.csv
//	...
//
// With -topology tree,branch=N the processes dialing in are not the leaf
// sites but the top tier of an aggregation tree of dpc-site -aggregate
// daemons (ids 0..d-1 where d is the last entry of the bottom-up tier plan
// — see internal/tree.Tiers); the leaves dial those aggregators instead.
// Centers are byte-identical to the star; -report additionally shows what
// physically crossed each tree level.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/kmedian"
	"dpc/internal/transport"
	"dpc/internal/tree"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9009", "address to listen on for sites")
		sites     = flag.Int("sites", 2, "number of sites that will dial in")
		k         = flag.Int("k", 3, "number of centers")
		t         = flag.Int("t", 0, "outlier budget (points that may be ignored)")
		objective = flag.String("objective", "median", "median | means | center")
		variant   = flag.String("variant", "2round", "2round | 1round | noship")
		eps       = flag.Float64("eps", 1, "coordinator bicriteria slack")
		seed      = flag.Int64("seed", 1, "engine seed (site i uses seed + i*const)")
		polish    = flag.Bool("lloyd", false, "Lloyd-polish the final centers (means only)")
		outPath   = flag.String("out", "-", "output CSV of centers ('-' = stdout)")
		report    = flag.Bool("report", false, "print the communication report to stderr")
		topo      tree.Spec
	)
	flag.Var(&topo, "topology", "coordinator fan-in: star | tree | tree,branch=N (tree accepts dpc-site -aggregate daemons)")
	flag.Parse()

	obj, err := parseObjective(*objective)
	if err != nil {
		fatal(err)
	}
	vr, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		K: *k, T: *t, Objective: obj, Variant: vr, Eps: *eps,
		LloydPolish: *polish,
		LocalOpts:   kmedian.Options{Seed: *seed},
	}

	// Under a tree topology the dialers are the top aggregator tier, not
	// the leaves; the tier plan is the same deterministic one the launch
	// script derives from tree.Tiers.
	direct := *sites
	if topo.Enabled() {
		if tiers := tree.Tiers(*sites, topo.BranchOrDefault()); len(tiers) > 0 {
			direct = tiers[len(tiers)-1]
		}
	}
	l, err := transport.Listen(*listen, direct)
	if err != nil {
		fatal(err)
	}
	defer l.Close()
	what := "site(s)"
	if direct != *sites {
		what = fmt.Sprintf("aggregator(s) for %d site(s)", *sites)
	}
	fmt.Fprintf(os.Stderr, "dpc-coordinator: listening on %s, waiting for %d %s\n", l.Addr(), direct, what)
	var tr transport.Transport
	coord, err := l.Accept(direct, core.EncodeConfig(cfg))
	if err != nil {
		fatal(err)
	}
	tr = coord
	if direct != *sites {
		root, err := tree.NewRootOver(coord, *sites, topo.BranchOrDefault())
		if err != nil {
			coord.Close()
			fatal(err)
		}
		tr = root
	}
	defer tr.Close()
	fmt.Fprintf(os.Stderr, "dpc-coordinator: all %d %s connected, running %s/%s\n", direct, what, obj, vr)

	res, err := core.RunOver(tr, cfg)
	if err != nil {
		fatal(err)
	}
	if err := tr.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dpc-coordinator: close: %v\n", err)
	}

	out, err := openOut(*outPath)
	if err != nil {
		fatal(err)
	}
	if err := dataio.WritePointsCSV(out, res.Centers); err != nil {
		fatal(err)
	}
	out.Close()

	if *report {
		fmt.Fprintf(os.Stderr, "sites: %d  centers: %d  ignorable: %.0f\n",
			res.Report.Sites, len(res.Centers), res.OutlierBudget)
		fmt.Fprintf(os.Stderr, "rounds: %d  up: %d B  down: %d B\n",
			res.Report.Rounds, res.Report.UpBytes, res.Report.DownBytes)
		fmt.Fprintf(os.Stderr, "site budgets t_i: %v\n", res.SiteBudgets)
		if ts := res.Report.Tree; ts != nil {
			fmt.Fprintf(os.Stderr, "tree (branch %d): root inbox %d B (star would be %d B)\n",
				ts.Branch, ts.RootUpBytes(), res.Report.UpBytes)
			for i, lv := range ts.Levels {
				fmt.Fprintf(os.Stderr, "  level %d: down %d B  up %d B\n", i, lv.Down, lv.Up)
			}
		}
	}
}

func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "median":
		return core.Median, nil
	case "means":
		return core.Means, nil
	case "center":
		return core.Center, nil
	}
	return 0, fmt.Errorf("unknown objective %q", s)
}

func parseVariant(s string) (core.Variant, error) {
	switch s {
	case "2round":
		return core.TwoRound, nil
	case "1round":
		return core.OneRound, nil
	case "noship":
		return core.TwoRoundNoOutliers, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-coordinator:", err)
	os.Exit(1)
}
