package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, a artifact) string {
	t.Helper()
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func quickArtifact() artifact {
	return artifact{
		Preset: "quick",
		Seed:   1,
		Experiments: []experiment{
			{
				ID: "E1", RowsCompared: true,
				BaselineMS: 100, TunedMS: 50, Speedup: 2,
				Header: []string{"n", "cost"},
				Rows:   [][]string{{"1000", "0.88"}, {"2000", "0.10"}},
			},
			{
				ID: "E7", RowsCompared: false, // timing table: reported, not gated
				Header: []string{"n", "ms"},
				Rows:   [][]string{{"1000", "123.4"}},
			},
		},
	}
}

func TestBenchdiffIdenticalPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())
	cand := quickArtifact()
	// Wall-clock and timing-table cells may drift freely.
	cand.Experiments[0].BaselineMS = 999
	cand.Experiments[0].TunedMS = 1
	cand.Experiments[0].Speedup = 999
	cand.Experiments[1].Rows[0][1] = "777.7"
	candPath := writeArtifact(t, dir, "cand.json", cand)

	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-candidate", candPath}, &out); err != nil {
		t.Fatalf("identical tables failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: 1 experiment table(s) identical") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
}

func TestBenchdiffCatchesValueDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())
	cand := quickArtifact()
	cand.Experiments[0].Rows[1][1] = "0.11" // objective value moved
	candPath := writeArtifact(t, dir, "cand.json", cand)

	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-candidate", candPath}, &out)
	if err == nil {
		t.Fatalf("value drift passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `DRIFT: E1 row 1 cost: "0.11", baseline "0.10"`) {
		t.Fatalf("drift not localized:\n%s", out.String())
	}
}

func TestBenchdiffCatchesSchemaAndShapeChanges(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())

	missing := quickArtifact()
	missing.Experiments = missing.Experiments[1:]
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "m.json", missing)}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing experiment passed")
	}

	cols := quickArtifact()
	cols.Experiments[0].Header = []string{"n", "s", "cost"}
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "c.json", cols)}, &bytes.Buffer{}); err == nil {
		t.Fatal("schema change passed")
	}

	rows := quickArtifact()
	rows.Experiments[0].Rows = rows.Experiments[0].Rows[:1]
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "r.json", rows)}, &bytes.Buffer{}); err == nil {
		t.Fatal("row-count change passed")
	}
}

func TestBenchdiffRejectsPresetMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())
	full := quickArtifact()
	full.Preset = "full"
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "f.json", full)}, &bytes.Buffer{}); err == nil {
		t.Fatal("preset mismatch passed")
	}
	reseeded := quickArtifact()
	reseeded.Seed = 2
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "s.json", reseeded)}, &bytes.Buffer{}); err == nil {
		t.Fatal("seed mismatch passed")
	}
}

func TestBenchdiffRejectsNonArtifacts(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if err := run([]string{"-baseline", empty, "-candidate", empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty artifact passed")
	}
	if err := run([]string{"-baseline", filepath.Join(dir, "nope.json"), "-candidate", empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file passed")
	}
}

func writeTreeArtifact(t *testing.T, dir, name string, a treeArtifact) string {
	t.Helper()
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodTreeArtifact() treeArtifact {
	var a treeArtifact
	a.Preset, a.Branch = "quick", 8
	for _, r := range []struct {
		sites      int
		star, tree int64
		levels     int
	}{{8, 1000, 1000, 0}, {32, 4000, 3300, 2}, {64, 8000, 6600, 2}, {256, 32000, 26000, 3}} {
		a.Rows = append(a.Rows, struct {
			Objective       string `json:"objective"`
			Sites           int    `json:"sites"`
			StarUpBytes     int64  `json:"star_up_bytes"`
			TreeRootUpBytes int64  `json:"tree_root_up_bytes"`
			Levels          int    `json:"levels"`
			EqualCenters    bool   `json:"equal_centers"`
		}{"median", r.sites, r.star, r.tree, r.levels, true})
	}
	return a
}

// TestBenchdiffTreeGate covers the -tree gate: the relations (identical
// centers, tree inbox below star from s=32 up, widening gap) pass, and
// each violation fails with a pointed message.
func TestBenchdiffTreeGate(t *testing.T) {
	dir := t.TempDir()

	var out bytes.Buffer
	if err := run([]string{"-tree", writeTreeArtifact(t, dir, "ok.json", goodTreeArtifact())}, &out); err != nil {
		t.Fatalf("good tree artifact failed: %v\n%s", err, out.String())
	}

	diverged := goodTreeArtifact()
	diverged.Rows[2].EqualCenters = false
	out.Reset()
	if err := run([]string{"-tree", writeTreeArtifact(t, dir, "d.json", diverged)}, &out); err == nil || !strings.Contains(out.String(), "diverged") {
		t.Fatalf("diverged centers passed: %v\n%s", err, out.String())
	}

	notBelow := goodTreeArtifact()
	notBelow.Rows[1].TreeRootUpBytes = notBelow.Rows[1].StarUpBytes
	out.Reset()
	if err := run([]string{"-tree", writeTreeArtifact(t, dir, "n.json", notBelow)}, &out); err == nil || !strings.Contains(out.String(), "not below") {
		t.Fatalf("tree-not-below-star passed: %v\n%s", err, out.String())
	}

	shrinking := goodTreeArtifact()
	shrinking.Rows[2].TreeRootUpBytes = shrinking.Rows[2].StarUpBytes - 100 // gap 100 < previous 700
	out.Reset()
	if err := run([]string{"-tree", writeTreeArtifact(t, dir, "s.json", shrinking)}, &out); err == nil || !strings.Contains(out.String(), "widen") {
		t.Fatalf("shrinking gap passed: %v\n%s", err, out.String())
	}

	small := goodTreeArtifact()
	small.Rows = small.Rows[:1]
	out.Reset()
	if err := run([]string{"-tree", writeTreeArtifact(t, dir, "sm.json", small)}, &out); err == nil || !strings.Contains(out.String(), "sites >= 32") {
		t.Fatalf("curve without large site counts passed: %v\n%s", err, out.String())
	}

	empty := filepath.Join(dir, "e.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if err := run([]string{"-tree", empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty tree artifact passed")
	}
}
