package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, a artifact) string {
	t.Helper()
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func quickArtifact() artifact {
	return artifact{
		Preset: "quick",
		Seed:   1,
		Experiments: []experiment{
			{
				ID: "E1", RowsCompared: true,
				BaselineMS: 100, TunedMS: 50, Speedup: 2,
				Header: []string{"n", "cost"},
				Rows:   [][]string{{"1000", "0.88"}, {"2000", "0.10"}},
			},
			{
				ID: "E7", RowsCompared: false, // timing table: reported, not gated
				Header: []string{"n", "ms"},
				Rows:   [][]string{{"1000", "123.4"}},
			},
		},
	}
}

func TestBenchdiffIdenticalPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())
	cand := quickArtifact()
	// Wall-clock and timing-table cells may drift freely.
	cand.Experiments[0].BaselineMS = 999
	cand.Experiments[0].TunedMS = 1
	cand.Experiments[0].Speedup = 999
	cand.Experiments[1].Rows[0][1] = "777.7"
	candPath := writeArtifact(t, dir, "cand.json", cand)

	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-candidate", candPath}, &out); err != nil {
		t.Fatalf("identical tables failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: 1 experiment table(s) identical") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
}

func TestBenchdiffCatchesValueDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())
	cand := quickArtifact()
	cand.Experiments[0].Rows[1][1] = "0.11" // objective value moved
	candPath := writeArtifact(t, dir, "cand.json", cand)

	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-candidate", candPath}, &out)
	if err == nil {
		t.Fatalf("value drift passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `DRIFT: E1 row 1 cost: "0.11", baseline "0.10"`) {
		t.Fatalf("drift not localized:\n%s", out.String())
	}
}

func TestBenchdiffCatchesSchemaAndShapeChanges(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())

	missing := quickArtifact()
	missing.Experiments = missing.Experiments[1:]
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "m.json", missing)}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing experiment passed")
	}

	cols := quickArtifact()
	cols.Experiments[0].Header = []string{"n", "s", "cost"}
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "c.json", cols)}, &bytes.Buffer{}); err == nil {
		t.Fatal("schema change passed")
	}

	rows := quickArtifact()
	rows.Experiments[0].Rows = rows.Experiments[0].Rows[:1]
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "r.json", rows)}, &bytes.Buffer{}); err == nil {
		t.Fatal("row-count change passed")
	}
}

func TestBenchdiffRejectsPresetMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", quickArtifact())
	full := quickArtifact()
	full.Preset = "full"
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "f.json", full)}, &bytes.Buffer{}); err == nil {
		t.Fatal("preset mismatch passed")
	}
	reseeded := quickArtifact()
	reseeded.Seed = 2
	if err := run([]string{"-baseline", base, "-candidate", writeArtifact(t, dir, "s.json", reseeded)}, &bytes.Buffer{}); err == nil {
		t.Fatal("seed mismatch passed")
	}
}

func TestBenchdiffRejectsNonArtifacts(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if err := run([]string{"-baseline", empty, "-candidate", empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty artifact passed")
	}
	if err := run([]string{"-baseline", filepath.Join(dir, "nope.json"), "-candidate", empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file passed")
	}
}
