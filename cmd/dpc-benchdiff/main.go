// Command dpc-benchdiff is the CI bench-regression gate: it diffs a fresh
// dpc-bench artifact against a checked-in baseline and fails on any drift
// in the experiment tables — the objective values, communication bytes and
// cost ratios that must be identical run over run because every engine in
// this repository is deterministic at a fixed seed. Wall-clock fields
// (baseline_ms, tuned_ms, speedup) legitimately vary by host; they are
// reported for the record but never gated.
//
// Usage:
//
//	dpc-bench -preset quick -out BENCH_SMOKE.json
//	dpc-benchdiff -baseline BENCH_QUICK.json -candidate BENCH_SMOKE.json
//
// Experiments whose tables embed timing columns (rows_compared=false in the
// artifact, e.g. E7) are skipped for the same reason dpc-bench itself skips
// their identity assertion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// experiment mirrors the dpc-bench artifact entries this tool gates.
type experiment struct {
	ID           string     `json:"id"`
	Title        string     `json:"title"`
	BaselineMS   float64    `json:"baseline_ms"`
	TunedMS      float64    `json:"tuned_ms"`
	Speedup      float64    `json:"speedup"`
	RowsCompared bool       `json:"rows_compared"`
	IndexMS      float64    `json:"index_ms"`
	IndexSpeedup float64    `json:"index_speedup"`
	Header       []string   `json:"header"`
	Rows         [][]string `json:"rows"`
}

// artifact mirrors the dpc-bench JSON schema.
type artifact struct {
	Preset      string       `json:"preset"`
	Seed        int64        `json:"seed"`
	Experiments []experiment `json:"experiments"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dpc-benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dpc-benchdiff", flag.ContinueOnError)
	basePath := fs.String("baseline", "BENCH_QUICK.json", "checked-in baseline artifact")
	candPath := fs.String("candidate", "BENCH_SMOKE.json", "freshly produced artifact")
	servePath := fs.String("serve", "", "gate a dpc-loadgen BENCH_SERVE artifact instead of diffing bench tables")
	minSpeedup := fs.Float64("min-speedup", 1.2, "with -serve: minimum sharded/single-lock storage throughput ratio")
	minIndexSpeedup := fs.Float64("min-index-speedup", 0, "require the candidate's best index-vs-cache speedup to reach this floor (0 = no index gate; the artifact needs dpc-bench -index rows)")
	treePath := fs.String("tree", "", "gate a dpc-bench -tree BENCH_TREE artifact instead of diffing bench tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *servePath != "" {
		return gateServe(*servePath, *minSpeedup, stdout)
	}
	if *treePath != "" {
		return gateTree(*treePath, stdout)
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cand, err := load(*candPath)
	if err != nil {
		return err
	}
	if base.Preset != cand.Preset {
		return fmt.Errorf("preset mismatch: baseline %q vs candidate %q (tables are preset-sized; regenerate the baseline)", base.Preset, cand.Preset)
	}
	if base.Seed != cand.Seed {
		return fmt.Errorf("seed mismatch: baseline %d vs candidate %d", base.Seed, cand.Seed)
	}

	candByID := make(map[string]experiment, len(cand.Experiments))
	for _, e := range cand.Experiments {
		candByID[e.ID] = e
	}

	var drifts []string
	gated, skipped := 0, 0
	indexed, bestIndex := 0, 0.0
	for _, b := range base.Experiments {
		c, ok := candByID[b.ID]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: missing from candidate", b.ID))
			continue
		}
		fmt.Fprintf(stdout, "%-4s baseline %8.1fms -> tuned %8.1fms (%.2fx); candidate %8.1fms -> %8.1fms (%.2fx)\n",
			b.ID, b.BaselineMS, b.TunedMS, b.Speedup, c.BaselineMS, c.TunedMS, c.Speedup)
		if c.IndexMS > 0 {
			indexed++
			if c.IndexSpeedup > bestIndex {
				bestIndex = c.IndexSpeedup
			}
			fmt.Fprintf(stdout, "%-4s index %8.1fms (%.2fx vs cache-only)\n", c.ID, c.IndexMS, c.IndexSpeedup)
		}
		if !b.RowsCompared {
			skipped++
			continue
		}
		gated++
		drifts = append(drifts, diffTables(b, c)...)
	}
	// The index gate checks the relation that must hold on any host, not a
	// host-dependent timing: index rows exist (dpc-bench already failed the
	// run unless they were byte-identical to the cache-only tables) and the
	// index actually beats the cache-only engine on the largest instances.
	if *minIndexSpeedup > 0 {
		switch {
		case indexed == 0:
			drifts = append(drifts, "index gate: candidate has no index rows (run dpc-bench -index)")
		case bestIndex < *minIndexSpeedup:
			drifts = append(drifts, fmt.Sprintf("index gate: best index-vs-cache speedup %.2fx below the %.2fx floor", bestIndex, *minIndexSpeedup))
		default:
			fmt.Fprintf(stdout, "index gate: %d experiment(s) with index rows, best %.2fx >= %.2fx floor\n", indexed, bestIndex, *minIndexSpeedup)
		}
	}
	if len(drifts) > 0 {
		for _, d := range drifts {
			fmt.Fprintln(stdout, "DRIFT:", d)
		}
		return fmt.Errorf("%d drift(s) across %d gated experiment(s) — objective values moved; if intentional, regenerate the baseline with dpc-bench", len(drifts), gated)
	}
	fmt.Fprintf(stdout, "OK: %d experiment table(s) identical to baseline (%d timing-only table(s) reported, not gated)\n", gated, skipped)
	return nil
}

// serveArtifact mirrors cmd/dpc-loadgen's BENCH_SERVE.json. Timing fields
// are machine-dependent, so unlike the bench tables they are never diffed
// against a baseline; the gate checks the relations that must hold on any
// host: the sharded registry out-throughputs the single-lock baseline, the
// shared caches actually get hit, and a warmed first job beats a cold one.
type serveArtifact struct {
	Preset  string `json:"preset"`
	Storage *struct {
		SingleLockOpsPS float64 `json:"single_lock_ops_per_s"`
		ShardedOpsPS    float64 `json:"sharded_ops_per_s"`
		Speedup         float64 `json:"speedup"`
	} `json:"storage"`
	HTTP *struct {
		RegisterOpsPS  float64 `json:"register_ops_per_s"`
		AppendOpsPS    float64 `json:"append_ops_per_s"`
		JobP50MS       float64 `json:"job_p50_ms"`
		JobP99MS       float64 `json:"job_p99_ms"`
		CacheHitRatio  float64 `json:"cache_hit_ratio"`
		ColdFirstJobMS float64 `json:"cold_first_job_ms"`
		WarmJobMS      float64 `json:"warm_job_ms"`
		WarmedFirstMS  float64 `json:"warmed_first_job_ms"`
	} `json:"http"`
	Replica *struct {
		Scenario          string           `json:"scenario"`
		Replicas          int              `json:"replicas"`
		Jobs              int              `json:"jobs"`
		Completed         int              `json:"completed"`
		JobP50MS          float64          `json:"job_p50_ms"`
		JobP99MS          float64          `json:"job_p99_ms"`
		Retries           int64            `json:"retries"`
		Resubmissions     int64            `json:"resubmissions"`
		PerReplicaJobs    map[string]int64 `json:"per_replica_jobs"`
		CentersMatchLocal bool             `json:"centers_match_local"`
	} `json:"replica"`
}

// gateServe enforces the load-benchmark invariants.
func gateServe(path string, minSpeedup float64, stdout io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a serveArtifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if a.Storage == nil && a.HTTP == nil && a.Replica == nil {
		return fmt.Errorf("%s: no benchmark sections (not a dpc-loadgen artifact?)", path)
	}
	var fails []string
	if a.Storage != nil {
		fmt.Fprintf(stdout, "serve[%s]: storage %.0f -> %.0f ops/s (%.2fx)\n",
			a.Preset, a.Storage.SingleLockOpsPS, a.Storage.ShardedOpsPS, a.Storage.Speedup)
		if a.Storage.Speedup < minSpeedup {
			fails = append(fails, fmt.Sprintf("sharded registry speedup %.2fx below the %.2fx floor", a.Storage.Speedup, minSpeedup))
		}
	}
	if a.HTTP != nil {
		fmt.Fprintf(stdout, "serve[%s]: register %.0f ops/s, append %.0f ops/s, job p50/p99 %.2f/%.2f ms\n",
			a.Preset, a.HTTP.RegisterOpsPS, a.HTTP.AppendOpsPS, a.HTTP.JobP50MS, a.HTTP.JobP99MS)
		fmt.Fprintf(stdout, "serve[%s]: hit ratio %.3f; first job cold %.2fms, warm %.2fms, warmed-first %.2fms\n",
			a.Preset, a.HTTP.CacheHitRatio, a.HTTP.ColdFirstJobMS, a.HTTP.WarmJobMS, a.HTTP.WarmedFirstMS)
		if a.HTTP.CacheHitRatio <= 0.5 {
			fails = append(fails, fmt.Sprintf("cache hit ratio %.3f; repeated jobs are not sharing warm caches", a.HTTP.CacheHitRatio))
		}
		if a.HTTP.WarmedFirstMS >= a.HTTP.ColdFirstJobMS {
			fails = append(fails, fmt.Sprintf("warmed first job (%.2fms) not below cold (%.2fms); warmup/restore is not paying", a.HTTP.WarmedFirstMS, a.HTTP.ColdFirstJobMS))
		}
	}
	if r := a.Replica; r != nil {
		fmt.Fprintf(stdout, "serve[%s]: replica scenario %s: %d/%d jobs, p50/p99 %.2f/%.2f ms, %d retries, %d resubmissions\n",
			a.Preset, r.Scenario, r.Completed, r.Jobs, r.JobP50MS, r.JobP99MS, r.Retries, r.Resubmissions)
		if r.Jobs == 0 || r.Completed != r.Jobs {
			fails = append(fails, fmt.Sprintf("replica run completed %d of %d jobs; a lost replica must never lose a job", r.Completed, r.Jobs))
		}
		if !r.CentersMatchLocal {
			fails = append(fails, "replica run returned centers that differ from a Local solve of the same request")
		}
		if r.JobP99MS <= 0 {
			fails = append(fails, "replica run recorded no p99 latency")
		}
		served := 0
		for _, n := range r.PerReplicaJobs {
			if n > 0 {
				served++
			}
		}
		if served < 2 {
			fails = append(fails, fmt.Sprintf("only %d replica(s) served jobs; the balancer is not spreading load", served))
		}
		if r.Scenario == "killed_replica" && r.Resubmissions < 1 {
			fails = append(fails, "killed_replica run recorded no resubmissions; the kill missed every in-flight job (kill earlier or run longer)")
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		return fmt.Errorf("%d serve gate(s) failed", len(fails))
	}
	fmt.Fprintln(stdout, "OK: serve load benchmark within gates")
	return nil
}

// treeArtifact mirrors cmd/dpc-bench's BENCH_TREE.json. Byte counts are
// deterministic at a fixed seed, but like the serve artifact the gate
// checks the relations that must hold on any host rather than diffing
// against a checked-in copy: centers byte-identical at every point of the
// curve, the tree's root inbox strictly below the star's from 32 sites
// up, and the gap widening as the site count grows — the whole point of
// the topology.
type treeArtifact struct {
	Preset string `json:"preset"`
	Branch int    `json:"branch"`
	Rows   []struct {
		Objective       string `json:"objective"`
		Sites           int    `json:"sites"`
		StarUpBytes     int64  `json:"star_up_bytes"`
		TreeRootUpBytes int64  `json:"tree_root_up_bytes"`
		Levels          int    `json:"levels"`
		EqualCenters    bool   `json:"equal_centers"`
	} `json:"rows"`
}

// gateTree enforces the aggregation-tree invariants on a BENCH_TREE
// artifact.
func gateTree(path string, stdout io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a treeArtifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(a.Rows) == 0 {
		return fmt.Errorf("%s: no rows (not a dpc-bench -tree artifact?)", path)
	}
	var fails []string
	lastGap := map[string]int64{}
	gatedGap := 0
	for _, r := range a.Rows {
		fmt.Fprintf(stdout, "tree[%s/%s] s=%-3d star inbox %d B, tree inbox %d B (%d levels), equal_centers=%v\n",
			a.Preset, r.Objective, r.Sites, r.StarUpBytes, r.TreeRootUpBytes, r.Levels, r.EqualCenters)
		if !r.EqualCenters {
			fails = append(fails, fmt.Sprintf("%s s=%d: tree centers diverged from the star", r.Objective, r.Sites))
		}
		if r.Sites < 32 {
			continue
		}
		if r.TreeRootUpBytes >= r.StarUpBytes {
			fails = append(fails, fmt.Sprintf("%s s=%d: tree root inbox %d B not below the star's %d B", r.Objective, r.Sites, r.TreeRootUpBytes, r.StarUpBytes))
			continue
		}
		gap := r.StarUpBytes - r.TreeRootUpBytes
		if prev, ok := lastGap[r.Objective]; ok && gap <= prev {
			fails = append(fails, fmt.Sprintf("%s s=%d: inbox gap %d B not above the previous site count's %d B (the saving must widen with s)", r.Objective, r.Sites, gap, prev))
		}
		lastGap[r.Objective] = gap
		gatedGap++
	}
	if gatedGap == 0 {
		fails = append(fails, "no rows with sites >= 32; the curve cannot show the fan-in win")
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		return fmt.Errorf("%d tree gate(s) failed", len(fails))
	}
	fmt.Fprintf(stdout, "OK: tree topology within gates (%d rows, branch %d)\n", len(a.Rows), a.Branch)
	return nil
}

// diffTables compares one experiment's value table cell by cell.
func diffTables(b, c experiment) []string {
	var drifts []string
	if len(b.Header) != len(c.Header) {
		return []string{fmt.Sprintf("%s: header has %d columns, baseline %d (schema change; regenerate the baseline)", c.ID, len(c.Header), len(b.Header))}
	}
	for i := range b.Header {
		if b.Header[i] != c.Header[i] {
			return []string{fmt.Sprintf("%s: column %d is %q, baseline %q (schema change; regenerate the baseline)", c.ID, i, c.Header[i], b.Header[i])}
		}
	}
	if len(b.Rows) != len(c.Rows) {
		return []string{fmt.Sprintf("%s: %d rows, baseline %d", c.ID, len(c.Rows), len(b.Rows))}
	}
	for r := range b.Rows {
		if len(b.Rows[r]) != len(c.Rows[r]) {
			drifts = append(drifts, fmt.Sprintf("%s row %d: %d cells, baseline %d", c.ID, r, len(c.Rows[r]), len(b.Rows[r])))
			continue
		}
		for col := range b.Rows[r] {
			if b.Rows[r][col] != c.Rows[r][col] {
				drifts = append(drifts, fmt.Sprintf("%s row %d %s: %q, baseline %q",
					c.ID, r, b.Header[col], c.Rows[r][col], b.Rows[r][col]))
			}
		}
	}
	return drifts
}

func load(path string) (artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return artifact{}, err
	}
	defer f.Close()
	var a artifact
	if err := json.NewDecoder(f).Decode(&a); err != nil {
		return artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(a.Experiments) == 0 {
		return artifact{}, fmt.Errorf("%s: no experiments (not a dpc-bench artifact?)", path)
	}
	return a, nil
}
