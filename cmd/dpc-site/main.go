// Command dpc-site is the site daemon of a real distributed deployment:
// it loads its local shard of the dataset from CSV, dials the
// dpc-coordinator, receives the run configuration in the transport
// handshake, and serves Algorithm 1/2's site rounds until the coordinator
// closes the protocol.
//
// The site never sees any other site's data; everything it sends crosses
// the framed TCP wire protocol and is byte-accounted by the coordinator.
//
// Usage:
//
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/transport"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:9009", "coordinator address")
		site    = flag.Int("site", 0, "this site's id (0-based, unique per site)")
		inPath  = flag.String("in", "-", "input CSV of this site's points ('-' = stdin)")
		timeout = flag.Duration("timeout", 30*time.Second, "how long to retry dialing the coordinator")
		verbose = flag.Bool("v", false, "log rounds to stderr")
	)
	flag.Parse()

	in, err := openIn(*inPath)
	if err != nil {
		fatal(err)
	}
	pts, err := dataio.ReadPointsCSV(in)
	in.Close()
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: loaded %d points, dialing %s\n", *site, len(pts), *connect)
	}

	sc, err := transport.Dial(*connect, *site, *timeout)
	if err != nil {
		fatal(err)
	}
	defer sc.Close()
	cfg, err := core.DecodeConfig(sc.Hello())
	if err != nil {
		fatal(fmt.Errorf("bad config from coordinator: %w", err))
	}
	handler, err := core.NewSiteHandler(cfg, *site, pts)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: connected, serving %s/%s (k=%d, t=%d)\n",
			*site, cfg.Objective, cfg.Variant, cfg.K, cfg.T)
		inner := handler
		handler = func(round int, in []byte) ([]byte, error) {
			out, err := inner(round, in)
			fmt.Fprintf(os.Stderr, "dpc-site %d: round %d: %d bytes in, %d bytes out\n",
				*site, round, len(in), len(out))
			return out, err
		}
	}
	if err := sc.Serve(handler); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: protocol complete\n", *site)
	}
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-site:", err)
	os.Exit(1)
}
