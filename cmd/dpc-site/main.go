// Command dpc-site is the site daemon of a real distributed deployment:
// it loads its local shard of the dataset from CSV, dials the coordinator
// (dpc-coordinator, dpc-server, or a client.Cluster backend), and serves
// the site rounds until the coordinator closes the protocol.
//
// The site never sees any other site's data; everything it sends crosses
// the framed TCP wire protocol and is byte-accounted by the coordinator.
//
// Usage:
//
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv -persist
//	dpc-site -connect 127.0.0.1:9009 -site 0 -sites 4 -uncertain -in nodes.csv -persist
//
// With -persist the site serves a multi-job coordinator: the connection
// stays up across jobs, each job frame ships its own run configuration and
// protocol kind (point or uncertain — see internal/jobwire), and the site
// keeps its dataset and memoized distance cache warm from one job to the
// next — the whole point of running a long-lived daemon instead of a
// per-run process.
//
// With -uncertain the input CSV holds the full uncertain dataset in
// dpc-cluster's node format (node_id,prob,coords...); the site derives the
// shared ground set from it and serves its -site'th round-robin shard of
// the nodes out of -sites total, so every daemon of the fleet can be
// started from one file. Uncertain mode requires -persist (the single-run
// dpc-coordinator handshake only carries point configurations).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/jobwire"
	"dpc/internal/transport"
)

func main() {
	var (
		connect   = flag.String("connect", "127.0.0.1:9009", "coordinator address")
		site      = flag.Int("site", 0, "this site's id (0-based, unique per site)")
		inPath    = flag.String("in", "-", "input CSV ('-' = stdin): this site's points, or the full node set with -uncertain")
		timeout   = flag.Duration("timeout", 30*time.Second, "how long to retry dialing the coordinator")
		persist   = flag.Bool("persist", false, "serve many jobs over one connection (dpc-server / client.Cluster mode)")
		uncFlag   = flag.Bool("uncertain", false, "input rows are uncertain nodes: node_id,prob,coords... (requires -persist)")
		siteCount = flag.Int("sites", 0, "total site count, for sharding the -uncertain node set (required with -uncertain)")
		verbose   = flag.Bool("v", false, "log rounds to stderr")
	)
	flag.Parse()

	data := jobwire.SiteData{Site: *site}
	in, err := openIn(*inPath)
	if err != nil {
		fatal(err)
	}
	if *uncFlag {
		if !*persist {
			fatal(fmt.Errorf("-uncertain requires -persist (job frames carry the protocol kind)"))
		}
		if *siteCount <= 0 {
			fatal(fmt.Errorf("-uncertain requires -sites (the fleet size the node set shards over)"))
		}
		g, nodes, err := dataio.ReadNodesCSV(in)
		in.Close()
		if err != nil {
			fatal(err)
		}
		shards := dataio.SplitNodesRoundRobin(nodes, *siteCount)
		if *site >= len(shards) {
			fatal(fmt.Errorf("site %d has no nodes (%d nodes over %d sites)", *site, len(nodes), *siteCount))
		}
		data.G, data.Nodes = g, shards[*site]
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: loaded %d/%d nodes (ground %d points), dialing %s\n",
				*site, len(data.Nodes), len(nodes), g.N(), *connect)
		}
	} else {
		pts, err := dataio.ReadPointsCSV(in)
		in.Close()
		if err != nil {
			fatal(err)
		}
		data.Pts = pts
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: loaded %d points, dialing %s\n", *site, len(pts), *connect)
		}
	}

	sc, err := transport.Dial(*connect, *site, *timeout)
	if err != nil {
		fatal(err)
	}
	defer sc.Close()

	if *persist {
		if err := servePersistent(sc, data, *verbose); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: coordinator closed, exiting\n", *site)
		}
		return
	}

	cfg, err := core.DecodeConfig(sc.Hello())
	if err != nil {
		fatal(fmt.Errorf("bad config from coordinator: %w", err))
	}
	handler, err := core.NewSiteHandler(cfg, *site, data.Pts)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: connected, serving %s/%s (k=%d, t=%d)\n",
			*site, cfg.Objective, cfg.Variant, cfg.K, cfg.T)
		handler = logRounds(*site, handler)
	}
	if err := sc.Serve(handler); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: protocol complete\n", *site)
	}
}

// servePersistent serves the multi-job loop (jobwire.ServeJobs: hello
// marker check, one long-lived distance cache over the point shard, one
// fresh protocol handler per job frame), optionally decorating each job's
// handler with -v logging.
func servePersistent(sc *transport.Site, data jobwire.SiteData, verbose bool) error {
	var wrap func(job int, blob []byte, h transport.Handler) transport.Handler
	if verbose {
		wrap = func(job int, blob []byte, h transport.Handler) transport.Handler {
			if j, err := jobwire.Decode(blob); err == nil {
				fmt.Fprintf(os.Stderr, "dpc-site %d: job %d: %s\n", data.Site, job, describeJob(j))
			}
			return logRounds(data.Site, h)
		}
	}
	return jobwire.ServeJobs(sc, data, wrap)
}

// describeJob renders a one-line job summary for -v logging.
func describeJob(j jobwire.Job) string {
	switch j.Kind {
	case jobwire.KindPoint:
		return fmt.Sprintf("%s/%s (k=%d, t=%d)", j.Core.Objective, j.Core.Variant, j.Core.K, j.Core.T)
	case jobwire.KindUncertain:
		return fmt.Sprintf("%v (k=%d, t=%d)", j.Obj, j.Unc.K, j.Unc.T)
	case jobwire.KindCenterG:
		return fmt.Sprintf("u-centerg (k=%d, t=%d)", j.CenterG.K, j.CenterG.T)
	}
	return j.Kind.String()
}

// logRounds wraps a handler with per-round byte logging.
func logRounds(site int, inner transport.Handler) transport.Handler {
	return func(round int, in []byte) ([]byte, error) {
		out, err := inner(round, in)
		fmt.Fprintf(os.Stderr, "dpc-site %d: round %d: %d bytes in, %d bytes out\n",
			site, round, len(in), len(out))
		return out, err
	}
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-site:", err)
	os.Exit(1)
}
