// Command dpc-site is the site daemon of a real distributed deployment:
// it loads its local shard of the dataset from CSV, dials the coordinator
// (dpc-coordinator, dpc-server, or a client.Cluster backend), and serves
// the site rounds until the coordinator closes the protocol.
//
// The site never sees any other site's data; everything it sends crosses
// the framed TCP wire protocol and is byte-accounted by the coordinator.
//
// Usage:
//
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv -persist
//	dpc-site -connect 127.0.0.1:9009 -site 0 -sites 4 -uncertain -in nodes.csv -persist
//
// With -persist the site serves a multi-job coordinator: the connection
// stays up across jobs, each job frame ships its own run configuration and
// protocol kind (point or uncertain — see internal/jobwire), and the site
// keeps its dataset and memoized distance cache warm from one job to the
// next — the whole point of running a long-lived daemon instead of a
// per-run process.
//
// With -uncertain the input CSV holds the full uncertain dataset in
// dpc-cluster's node format (node_id,prob,coords...); the site derives the
// shared ground set from it and serves its -site'th round-robin shard of
// the nodes out of -sites total, so every daemon of the fleet can be
// started from one file. Uncertain mode requires -persist (the single-run
// dpc-coordinator handshake only carries point configurations).
//
// With -aggregate the daemon is an interior node of an aggregation tree
// instead of a leaf: it holds no data, listens for -children child
// connections (leaf sites dialing with their global ids, starting at
// -child-base, or deeper aggregators with -inner), forwards the
// coordinator's handshake blob down, and merges each round's child replies
// into one batch for its parent (see internal/tree):
//
//	dpc-site -aggregate -connect 127.0.0.1:9009 -site 0 \
//	    -children-listen 127.0.0.1:9101 -children 4 -child-base 0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/jobwire"
	"dpc/internal/transport"
	"dpc/internal/tree"
)

func main() {
	var (
		connect   = flag.String("connect", "127.0.0.1:9009", "coordinator address")
		site      = flag.Int("site", 0, "this site's id (0-based, unique per site)")
		inPath    = flag.String("in", "-", "input CSV ('-' = stdin): this site's points, or the full node set with -uncertain")
		timeout   = flag.Duration("timeout", 30*time.Second, "how long to retry dialing the coordinator")
		persist   = flag.Bool("persist", false, "serve many jobs over one connection (dpc-server / client.Cluster mode)")
		uncFlag   = flag.Bool("uncertain", false, "input rows are uncertain nodes: node_id,prob,coords... (requires -persist)")
		siteCount = flag.Int("sites", 0, "total site count, for sharding the -uncertain node set (required with -uncertain)")
		aggregate = flag.Bool("aggregate", false, "serve as an aggregation-tree interior node instead of a leaf site (no data)")
		childAddr = flag.String("children-listen", "127.0.0.1:0", "with -aggregate: address to accept child connections on")
		children  = flag.Int("children", 0, "with -aggregate: number of direct children (required)")
		childBase = flag.Int("child-base", 0, "with -aggregate: global site id of the first child")
		innerFlag = flag.Bool("inner", false, "with -aggregate: children are aggregators themselves (payloads are batches)")
		verbose   = flag.Bool("v", false, "log rounds to stderr")
	)
	flag.Parse()

	if *aggregate {
		if err := runAggregate(*connect, *site, *timeout, *childAddr, *children, *childBase, *innerFlag, *verbose); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site aggregator %d: coordinator closed, exiting\n", *site)
		}
		return
	}

	data := jobwire.SiteData{Site: *site}
	in, err := openIn(*inPath)
	if err != nil {
		fatal(err)
	}
	if *uncFlag {
		if !*persist {
			fatal(fmt.Errorf("-uncertain requires -persist (job frames carry the protocol kind)"))
		}
		if *siteCount <= 0 {
			fatal(fmt.Errorf("-uncertain requires -sites (the fleet size the node set shards over)"))
		}
		g, nodes, err := dataio.ReadNodesCSV(in)
		in.Close()
		if err != nil {
			fatal(err)
		}
		shards := dataio.SplitNodesRoundRobin(nodes, *siteCount)
		if *site >= len(shards) {
			fatal(fmt.Errorf("site %d has no nodes (%d nodes over %d sites)", *site, len(nodes), *siteCount))
		}
		data.G, data.Nodes = g, shards[*site]
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: loaded %d/%d nodes (ground %d points), dialing %s\n",
				*site, len(data.Nodes), len(nodes), g.N(), *connect)
		}
	} else {
		pts, err := dataio.ReadPointsCSV(in)
		in.Close()
		if err != nil {
			fatal(err)
		}
		data.Pts = pts
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: loaded %d points, dialing %s\n", *site, len(pts), *connect)
		}
	}

	if *persist {
		// The redial loop is what lets a coordinator recover a fleet: a
		// request cancelled mid-protocol drops the connections, the
		// coordinator re-listens, and every daemon lands back here and
		// dials again. Only a clean protocol close (the coordinator's
		// close frame, err == nil) ends the daemon; a dial that exhausts
		// -timeout means the coordinator is really gone.
		for {
			sc, err := transport.Dial(*connect, *site, *timeout)
			if err != nil {
				fatal(err)
			}
			err = servePersistent(sc, data, *verbose)
			sc.Close()
			if err == nil {
				if *verbose {
					fmt.Fprintf(os.Stderr, "dpc-site %d: coordinator closed, exiting\n", *site)
				}
				return
			}
			fmt.Fprintf(os.Stderr, "dpc-site %d: connection lost (%v), redialing %s\n", *site, err, *connect)
		}
	}

	sc, err := transport.Dial(*connect, *site, *timeout)
	if err != nil {
		fatal(err)
	}
	defer sc.Close()

	cfg, err := core.DecodeConfig(sc.Hello())
	if err != nil {
		fatal(fmt.Errorf("bad config from coordinator: %w", err))
	}
	handler, err := core.NewSiteHandler(cfg, *site, data.Pts)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: connected, serving %s/%s (k=%d, t=%d)\n",
			*site, cfg.Objective, cfg.Variant, cfg.K, cfg.T)
		handler = logRounds(*site, handler)
	}
	if err := sc.Serve(handler); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: protocol complete\n", *site)
	}
}

// runAggregate serves one interior tree node: listen for the children
// first (so their dial retries have somewhere to land), join the parent,
// forward the parent's handshake blob down verbatim — leaf sites decode
// their run configuration from it exactly as they would from the
// coordinator itself — and then run the merge role until the parent closes
// the protocol. The children's site ids are the global range
// [base, base+children), which keeps their seeds and pivot comparisons
// fleet-wide correct.
func runAggregate(connect string, site int, timeout time.Duration, listen string, children, base int, inner, verbose bool) error {
	if children <= 0 {
		return fmt.Errorf("-aggregate requires -children > 0 (got %d)", children)
	}
	l, err := transport.Listen(listen, children)
	if err != nil {
		return err
	}
	defer l.Close()
	if verbose {
		fmt.Fprintf(os.Stderr, "dpc-site aggregator %d: accepting %d children (ids %d..%d) on %s, dialing %s\n",
			site, children, base, base+children-1, l.Addr(), connect)
	}
	sc, err := transport.Dial(connect, site, timeout)
	if err != nil {
		return err
	}
	defer sc.Close()
	child, err := l.AcceptBase(children, base, sc.Hello())
	if err != nil {
		return err
	}
	l.Close()
	if verbose {
		fmt.Fprintf(os.Stderr, "dpc-site aggregator %d: subtree connected, serving\n", site)
	}
	return tree.Serve(sc, child, inner)
}

// servePersistent serves the multi-job loop (jobwire.ServeJobs: hello
// marker check, one long-lived distance cache over the point shard, one
// fresh protocol handler per job frame), optionally decorating each job's
// handler with -v logging.
func servePersistent(sc *transport.Site, data jobwire.SiteData, verbose bool) error {
	var wrap func(job int, blob []byte, h transport.Handler) transport.Handler
	if verbose {
		wrap = func(job int, blob []byte, h transport.Handler) transport.Handler {
			if j, err := jobwire.Decode(blob); err == nil {
				fmt.Fprintf(os.Stderr, "dpc-site %d: job %d: %s\n", data.Site, job, describeJob(j))
			}
			return logRounds(data.Site, h)
		}
	}
	return jobwire.ServeJobs(sc, data, wrap)
}

// describeJob renders a one-line job summary for -v logging.
func describeJob(j jobwire.Job) string {
	switch j.Kind {
	case jobwire.KindPoint:
		return fmt.Sprintf("%s/%s (k=%d, t=%d)", j.Core.Objective, j.Core.Variant, j.Core.K, j.Core.T)
	case jobwire.KindUncertain:
		return fmt.Sprintf("%v (k=%d, t=%d)", j.Obj, j.Unc.K, j.Unc.T)
	case jobwire.KindCenterG:
		return fmt.Sprintf("u-centerg (k=%d, t=%d)", j.CenterG.K, j.CenterG.T)
	}
	return j.Kind.String()
}

// logRounds wraps a handler with per-round byte logging.
func logRounds(site int, inner transport.Handler) transport.Handler {
	return func(round int, in []byte) ([]byte, error) {
		out, err := inner(round, in)
		fmt.Fprintf(os.Stderr, "dpc-site %d: round %d: %d bytes in, %d bytes out\n",
			site, round, len(in), len(out))
		return out, err
	}
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-site:", err)
	os.Exit(1)
}
