// Command dpc-site is the site daemon of a real distributed deployment:
// it loads its local shard of the dataset from CSV, dials the
// dpc-coordinator, receives the run configuration in the transport
// handshake, and serves Algorithm 1/2's site rounds until the coordinator
// closes the protocol.
//
// The site never sees any other site's data; everything it sends crosses
// the framed TCP wire protocol and is byte-accounted by the coordinator.
//
// Usage:
//
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv
//	dpc-site -connect 127.0.0.1:9009 -site 0 -in part0.csv -persist
//
// With -persist the site serves a multi-job coordinator (dpc-server): the
// connection stays up across jobs, each job ships its own run configuration
// in a job frame, and the site keeps its dataset and memoized distance
// cache warm from one job to the next — the whole point of running a
// long-lived daemon instead of a per-run process.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/metric"
	"dpc/internal/transport"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:9009", "coordinator address")
		site    = flag.Int("site", 0, "this site's id (0-based, unique per site)")
		inPath  = flag.String("in", "-", "input CSV of this site's points ('-' = stdin)")
		timeout = flag.Duration("timeout", 30*time.Second, "how long to retry dialing the coordinator")
		persist = flag.Bool("persist", false, "serve many jobs over one connection (dpc-server mode)")
		verbose = flag.Bool("v", false, "log rounds to stderr")
	)
	flag.Parse()

	in, err := openIn(*inPath)
	if err != nil {
		fatal(err)
	}
	pts, err := dataio.ReadPointsCSV(in)
	in.Close()
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: loaded %d points, dialing %s\n", *site, len(pts), *connect)
	}

	sc, err := transport.Dial(*connect, *site, *timeout)
	if err != nil {
		fatal(err)
	}
	defer sc.Close()

	if *persist {
		if err := servePersistent(sc, *site, pts, *verbose); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: coordinator closed, exiting\n", *site)
		}
		return
	}

	cfg, err := core.DecodeConfig(sc.Hello())
	if err != nil {
		fatal(fmt.Errorf("bad config from coordinator: %w", err))
	}
	handler, err := core.NewSiteHandler(cfg, *site, pts)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: connected, serving %s/%s (k=%d, t=%d)\n",
			*site, cfg.Objective, cfg.Variant, cfg.K, cfg.T)
		handler = logRounds(*site, handler)
	}
	if err := sc.Serve(handler); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "dpc-site %d: protocol complete\n", *site)
	}
}

// servePersistent serves the multi-job loop: one shared distance cache over
// the site's shard, one fresh protocol handler per job frame. The hello
// blob must carry the multi-job marker so a site is never silently paired
// with a single-run coordinator.
func servePersistent(sc *transport.Site, site int, pts []metric.Point, verbose bool) error {
	if string(sc.Hello()) != transport.JobsHello {
		return fmt.Errorf("coordinator is not multi-job (welcome %q, want %q); drop -persist",
			sc.Hello(), transport.JobsHello)
	}
	// One cache for the life of the daemon: every job's solves hit the same
	// memoized cells. Past the memoization cap the handlers build their
	// usual per-job policy (nil cache).
	var cache *metric.DistCache
	if len(pts) <= metric.MaxCachePoints {
		cache = metric.NewDistCache(metric.NewPoints(pts))
	}
	return sc.ServeJobs(func(job int, blob []byte) (transport.Handler, error) {
		cfg, err := core.DecodeConfig(blob)
		if err != nil {
			return nil, fmt.Errorf("bad config in job %d: %w", job, err)
		}
		h, err := core.NewSiteHandlerCached(cfg, site, pts, cache)
		if err != nil {
			return nil, err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "dpc-site %d: job %d: %s/%s (k=%d, t=%d)\n",
				site, job, cfg.Objective, cfg.Variant, cfg.K, cfg.T)
			h = logRounds(site, h)
		}
		return h, nil
	})
}

// logRounds wraps a handler with per-round byte logging.
func logRounds(site int, inner transport.Handler) transport.Handler {
	return func(round int, in []byte) ([]byte, error) {
		out, err := inner(round, in)
		fmt.Fprintf(os.Stderr, "dpc-site %d: round %d: %d bytes in, %d bytes out\n",
			site, round, len(in), len(out))
		return out, err
	}
}

func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-site:", err)
	os.Exit(1)
}
