// Command dpc-smoke drives a running dpc-server end to end through the
// typed client (dpc/client) and asserts the service answers exactly like
// in-process solves of the same data:
//
//  1. a point dataset registers over HTTP; median and center jobs return
//     centers byte-identical to the Local backend on the same points;
//  2. a repeated job is served from the warm server-side distance cache
//     (miss count frozen, hit count growing);
//  3. an uncertain dataset registers and a u-median job answers Algorithm 3
//     as a service workload, again byte-identical to Local;
//  4. /metrics exposes the job counters.
//
// It replaces the curl choreography that scripts/server_smoke.sh used to
// hand-roll; the script now builds the binaries, boots a real dpc-server
// process, runs this command against it, and keeps exactly one curl call
// to pin the raw wire format.
//
// Usage:
//
//	dpc-smoke -server http://127.0.0.1:18080 [-n 800] [-seed 7]
//
// Exits 0 on success, 1 with a diagnostic on the first mismatch.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"time"

	"dpc/client"
	"dpc/internal/gen"
)

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:18080", "dpc-server base URL")
		n      = flag.Int("n", 800, "points in the generated smoke dataset")
		un     = flag.Int("un", 80, "nodes in the generated uncertain dataset")
		seed   = flag.Int64("seed", 7, "workload seed")
	)
	flag.Parse()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	remote := client.NewRemote(*server, client.RemoteOptions{})
	local := client.NewLocal()

	in := gen.Mixture(gen.MixtureSpec{N: *n, K: 4, OutlierFrac: 0.05, Seed: *seed})
	uin := gen.UncertainMixture(gen.UncertainSpec{N: *un, K: 3, Support: 3, OutlierFrac: 0.05, Seed: *seed})

	step("register point dataset")
	must(remote.RegisterDataset(ctx, "smoke", in.Pts))

	for _, objective := range []string{client.Median, client.Center} {
		step(fmt.Sprintf("%s job over HTTP vs in-process Local", objective))
		req := client.Request{Objective: objective, K: 4, T: 30, Sites: 8, Seed: 1,
			Dataset: "smoke", Points: in.Pts}
		rr := mustDo(remote, ctx, req)
		rl := mustDo(local, ctx, req)
		sameCenters(objective, rr.Centers, rl.Centers)
		if rr.Cost != rl.Cost {
			fail("%s: remote cost %g, local %g", objective, rr.Cost, rl.Cost)
		}
		fmt.Fprintf(os.Stderr, "   identical centers (%d), cost %.6g\n", len(rr.Centers), rr.Cost)
	}

	step("cache reuse across jobs")
	before, err := remote.Dataset(ctx, "smoke")
	must(err)
	mustDo(remote, ctx, client.Request{Objective: client.Median, K: 4, T: 30, Sites: 8, Seed: 1, Dataset: "smoke"})
	after, err := remote.Dataset(ctx, "smoke")
	must(err)
	if after.CacheMisses != before.CacheMisses {
		fail("repeated job recomputed distances (%d -> %d misses)", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits <= before.CacheHits {
		fail("repeated job produced no cache hits (%d -> %d)", before.CacheHits, after.CacheHits)
	}
	fmt.Fprintf(os.Stderr, "   misses frozen at %d, hits %d -> %d\n", after.CacheMisses, before.CacheHits, after.CacheHits)

	step("uncertain dataset + u-median job (Algorithm 3 as a service workload)")
	must(remote.RegisterUncertainDataset(ctx, "smoke-unc", uin.Ground, uin.Nodes))
	ureq := client.Request{Objective: client.UncertainMedian, K: 3, T: 6, Sites: 4, Seed: 1,
		Dataset: "smoke-unc", Ground: uin.Ground, Nodes: uin.Nodes}
	ur := mustDo(remote, ctx, ureq)
	ul := mustDo(local, ctx, ureq)
	sameCenters("u-median", ur.Centers, ul.Centers)
	if ur.CostKind != "global" || ur.Cost != ul.Cost {
		fail("u-median cost (%s %g) differs from local (%s %g)", ur.CostKind, ur.Cost, ul.CostKind, ul.Cost)
	}
	fmt.Fprintf(os.Stderr, "   identical centers (%d), cost %.6g\n", len(ur.Centers), ur.Cost)

	step("metrics endpoint")
	resp, err := http.Get(*server + "/metrics")
	must(err)
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	must(err)
	// 4 server-side jobs ran: median, center, the cache-reuse median, and
	// the uncertain job.
	for _, want := range []string{`dpc_jobs_total{status="done"} 4`, "dpc_cache_pool_entries"} {
		if !strings.Contains(string(raw), want) {
			fail("metrics missing %q", want)
		}
	}

	fmt.Fprintln(os.Stderr, "dpc-smoke: OK")
}

func step(msg string) { fmt.Fprintf(os.Stderr, "== %s\n", msg) }

func must(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func mustDo(c client.Client, ctx context.Context, req client.Request) *client.Response {
	res, err := c.Do(ctx, req)
	must(err)
	return res
}

func sameCenters(label string, got, want []client.Point) {
	if len(got) != len(want) {
		fail("%s: %d centers, local found %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			fail("%s: center %d = %v, local found %v", label, i, got[i], want[i])
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dpc-smoke: MISMATCH: "+format+"\n", args...)
	os.Exit(1)
}
