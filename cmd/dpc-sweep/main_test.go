package main

import (
	"strings"
	"testing"
)

func TestRunUnknownSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-sweep", "bogus"}, &sb)
	if err == nil {
		t.Fatal("unknown sweep did not error")
	}
	if exitCode(err) != 2 {
		t.Fatalf("exit code %d, want 2 (usage error)", exitCode(err))
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error does not name the sweep: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil || exitCode(err) != 2 {
		t.Fatalf("bad flag: err=%v code=%d, want usage error", err, exitCode(err))
	}
}

// TestSweepTQuickGolden smoke-tests the cheapest sweep end to end: correct
// CSV header, one data row per budget, and monotone byte counts for the
// 1-round baseline (its payload carries s*t outliers).
func TestSweepTQuickGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sweep", "t", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,two_round_bytes,one_round_bytes,noship_bytes" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + t in {10, 20, 40}
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	for _, ln := range lines[1:] {
		if cells := strings.Split(ln, ","); len(cells) != 4 {
			t.Fatalf("malformed row %q", ln)
		}
	}
}

// TestSweepEpsQuick checks the quality sweep emits one row per eps with
// parseable positive costs.
func TestSweepEpsQuick(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sweep", "eps", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "eps,median_cost,means_cost" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + eps in {0.5, 1, 2}
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
}

// TestSweepDeterministic: same seed, same CSV — the sweeps must be usable
// as regression artifacts.
func TestSweepDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-sweep", "m", "-quick", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", "m", "-quick", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different CSV:\n%s\nvs\n%s", a.String(), b.String())
	}
}
