// Command dpc-sweep emits CSV series for the figure-style plots behind
// EXPERIMENTS.md: communication and quality as one parameter sweeps while
// the rest stay fixed. Pipe the output into any plotting tool.
//
// Usage:
//
//	dpc-sweep -sweep t          # bytes vs outlier budget, 2-round vs 1-round vs no-ship
//	dpc-sweep -sweep s          # bytes vs number of sites
//	dpc-sweep -sweep n          # bytes vs total input size
//	dpc-sweep -sweep eps        # cost vs coordinator slack
//	dpc-sweep -sweep m          # uncertain: bytes vs support size
//	dpc-sweep -sweep subq       # centralized runtime vs n per level
//	dpc-sweep -quick            # reduced instance sizes (seconds, not minutes)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dpc/internal/central"
	"dpc/internal/core"
	"dpc/internal/gen"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

// sweeper runs one sweep series, writing CSV to w.
type sweeper struct {
	out   io.Writer
	seed  int64
	quick bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if _, printed := err.(parsedError); !printed {
			fmt.Fprintln(os.Stderr, "dpc-sweep:", err)
		}
		os.Exit(exitCode(err))
	}
}

// usageError marks bad invocations (exit 2, like flag parsing).
type usageError struct{ error }

// parsedError wraps an error the FlagSet already reported to stderr, so
// main does not print it a second time.
type parsedError struct{ usageError }

func exitCode(err error) int {
	switch err.(type) {
	case usageError, parsedError:
		return 2
	}
	return 1
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dpc-sweep", flag.ContinueOnError)
	sweep := fs.String("sweep", "t", "one of: t, s, n, eps, m, subq")
	seed := fs.Int64("seed", 1, "workload seed")
	quick := fs.Bool("quick", false, "reduced instance sizes")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed
		}
		// The FlagSet already printed the error and usage to stderr.
		return parsedError{usageError{err}}
	}
	sw := &sweeper{out: stdout, seed: *seed, quick: *quick}
	switch *sweep {
	case "t":
		return sw.sweepT()
	case "s":
		return sw.sweepS()
	case "n":
		return sw.sweepN()
	case "eps":
		return sw.sweepEps()
	case "m":
		return sw.sweepM()
	case "subq":
		return sw.sweepSubq()
	}
	return usageError{fmt.Errorf("unknown sweep %q (want t, s, n, eps, m or subq)", *sweep)}
}

// shrink halves-and-more a full-size parameter in quick mode.
func (sw *sweeper) shrink(full, quick int) int {
	if sw.quick {
		return quick
	}
	return full
}

func (sw *sweeper) sites(n, k, s int) (gen.Instance, [][]metric.Point) {
	in := gen.Mixture(gen.MixtureSpec{N: n, K: k, Dim: 2, OutlierFrac: 0.1, Seed: sw.seed})
	parts := gen.Partition(in, s, gen.Uniform, sw.seed+1)
	return in, gen.SitePoints(in, parts)
}

func (sw *sweeper) sweepT() error {
	fmt.Fprintln(sw.out, "t,two_round_bytes,one_round_bytes,noship_bytes")
	_, sp := sw.sites(sw.shrink(3000, 400), 4, 8)
	tts := []int{10, 20, 40, 80, 160, 320}
	if sw.quick {
		tts = []int{10, 20, 40}
	}
	for _, tt := range tts {
		two, err := core.Run(sp, core.Config{K: 4, T: tt, Objective: core.Median})
		if err != nil {
			return err
		}
		one, err := core.Run(sp, core.Config{K: 4, T: tt, Objective: core.Median, Variant: core.OneRound})
		if err != nil {
			return err
		}
		ns, err := core.Run(sp, core.Config{K: 4, T: tt, Objective: core.Median, Variant: core.TwoRoundNoOutliers})
		if err != nil {
			return err
		}
		fmt.Fprintf(sw.out, "%d,%d,%d,%d\n", tt, two.Report.UpBytes, one.Report.UpBytes, ns.Report.UpBytes)
	}
	return nil
}

func (sw *sweeper) sweepS() error {
	fmt.Fprintln(sw.out, "s,two_round_bytes,one_round_bytes")
	ss := []int{2, 4, 8, 16, 32}
	if sw.quick {
		ss = []int{2, 4}
	}
	for _, s := range ss {
		_, sp := sw.sites(sw.shrink(3200, 400), 4, s)
		two, err := core.Run(sp, core.Config{K: 4, T: sw.shrink(100, 20), Objective: core.Median})
		if err != nil {
			return err
		}
		one, err := core.Run(sp, core.Config{K: 4, T: sw.shrink(100, 20), Objective: core.Median, Variant: core.OneRound})
		if err != nil {
			return err
		}
		fmt.Fprintf(sw.out, "%d,%d,%d\n", s, two.Report.UpBytes, one.Report.UpBytes)
	}
	return nil
}

func (sw *sweeper) sweepN() error {
	fmt.Fprintln(sw.out, "n,two_round_bytes,site_wall_ms")
	ns := []int{500, 1000, 2000, 4000, 8000}
	if sw.quick {
		ns = []int{200, 400}
	}
	for _, n := range ns {
		_, sp := sw.sites(n, 4, 8)
		two, err := core.Run(sp, core.Config{K: 4, T: sw.shrink(60, 15), Objective: core.Median})
		if err != nil {
			return err
		}
		fmt.Fprintf(sw.out, "%d,%d,%d\n", n, two.Report.UpBytes, two.Report.SiteWall.Milliseconds())
	}
	return nil
}

func (sw *sweeper) sweepEps() error {
	fmt.Fprintln(sw.out, "eps,median_cost,means_cost")
	in, sp := sw.sites(sw.shrink(1500, 300), 4, 6)
	tt := sw.shrink(75, 15)
	epss := []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}
	if sw.quick {
		epss = []float64{0.5, 1, 2}
	}
	for _, eps := range epss {
		med, err := core.Run(sp, core.Config{K: 4, T: tt, Objective: core.Median, Eps: eps})
		if err != nil {
			return err
		}
		mea, err := core.Run(sp, core.Config{K: 4, T: tt, Objective: core.Means, Eps: eps})
		if err != nil {
			return err
		}
		cm := core.Evaluate(in.Pts, med.Centers, med.OutlierBudget, core.Median)
		cq := core.Evaluate(in.Pts, mea.Centers, mea.OutlierBudget, core.Means)
		fmt.Fprintf(sw.out, "%g,%g,%g\n", eps, cm, cq)
	}
	return nil
}

func (sw *sweeper) sweepM() error {
	fmt.Fprintln(sw.out, "m,alg3_bytes,naive_bytes")
	ms := []int{2, 4, 8, 16, 32}
	if sw.quick {
		ms = []int{2, 4}
	}
	for _, m := range ms {
		in := gen.UncertainMixture(gen.UncertainSpec{
			N: sw.shrink(400, 100), K: 3, Support: m, OutlierFrac: 0.08, Seed: sw.seed,
		})
		parts := gen.PartitionNodes(in, 4, gen.Uniform, sw.seed+1)
		sn := gen.SiteNodes(in, parts)
		tt := sw.shrink(40, 10)
		smart, err := uncertain.Run(in.Ground, sn, uncertain.Config{K: 3, T: tt}, uncertain.Median)
		if err != nil {
			return err
		}
		naive, err := uncertain.Run(in.Ground, sn, uncertain.Config{K: 3, T: tt, Variant: uncertain.OneRoundShipDists}, uncertain.Median)
		if err != nil {
			return err
		}
		fmt.Fprintf(sw.out, "%d,%d,%d\n", m, smart.Report.UpBytes, naive.Report.UpBytes)
	}
	return nil
}

func (sw *sweeper) sweepSubq() error {
	fmt.Fprintln(sw.out, "n,direct_s,level1_s,level2_s")
	ns := []int{1000, 2000, 4000, 8000}
	if sw.quick {
		ns = []int{300, 600}
	}
	for _, n := range ns {
		in := gen.Mixture(gen.MixtureSpec{N: n, K: 3, OutlierFrac: 0.03, Seed: sw.seed})
		opts := kmedian.Options{MaxIters: 10, Seed: sw.seed}
		var secs [3]float64
		for lvl := 0; lvl <= 2; lvl++ {
			sol := central.PartialMedian(in.Pts, central.Config{K: 3, T: n / 50, Levels: lvl, Opts: opts})
			secs[lvl] = sol.Elapsed.Seconds()
		}
		fmt.Fprintf(sw.out, "%d,%.3f,%.3f,%.3f\n", n, secs[0], secs[1], secs[2])
	}
	return nil
}
