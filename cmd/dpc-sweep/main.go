// Command dpc-sweep emits CSV series for the figure-style plots behind
// EXPERIMENTS.md: communication and quality as one parameter sweeps while
// the rest stay fixed. Pipe the output into any plotting tool.
//
// Usage:
//
//	dpc-sweep -sweep t          # bytes vs outlier budget, 2-round vs 1-round vs no-ship
//	dpc-sweep -sweep s          # bytes vs number of sites
//	dpc-sweep -sweep n          # bytes vs total input size
//	dpc-sweep -sweep eps        # cost vs coordinator slack
//	dpc-sweep -sweep m          # uncertain: bytes vs support size
//	dpc-sweep -sweep subq       # centralized runtime vs n per level
package main

import (
	"flag"
	"fmt"
	"os"

	"dpc/internal/central"
	"dpc/internal/core"
	"dpc/internal/gen"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

func main() {
	sweep := flag.String("sweep", "t", "one of: t, s, n, eps, m, subq")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	switch *sweep {
	case "t":
		sweepT(*seed)
	case "s":
		sweepS(*seed)
	case "n":
		sweepN(*seed)
	case "eps":
		sweepEps(*seed)
	case "m":
		sweepM(*seed)
	case "subq":
		sweepSubq(*seed)
	default:
		fmt.Fprintf(os.Stderr, "dpc-sweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

func sites(n, k, s int, seed int64) (gen.Instance, [][]metric.Point) {
	in := gen.Mixture(gen.MixtureSpec{N: n, K: k, Dim: 2, OutlierFrac: 0.1, Seed: seed})
	parts := gen.Partition(in, s, gen.Uniform, seed+1)
	return in, gen.SitePoints(in, parts)
}

func mustRun(sp [][]metric.Point, cfg core.Config) core.Result {
	res, err := core.Run(sp, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpc-sweep:", err)
		os.Exit(1)
	}
	return res
}

func sweepT(seed int64) {
	fmt.Println("t,two_round_bytes,one_round_bytes,noship_bytes")
	_, sp := sites(3000, 4, 8, seed)
	for _, tt := range []int{10, 20, 40, 80, 160, 320} {
		two := mustRun(sp, core.Config{K: 4, T: tt, Objective: core.Median})
		one := mustRun(sp, core.Config{K: 4, T: tt, Objective: core.Median, Variant: core.OneRound})
		ns := mustRun(sp, core.Config{K: 4, T: tt, Objective: core.Median, Variant: core.TwoRoundNoOutliers})
		fmt.Printf("%d,%d,%d,%d\n", tt, two.Report.UpBytes, one.Report.UpBytes, ns.Report.UpBytes)
	}
}

func sweepS(seed int64) {
	fmt.Println("s,two_round_bytes,one_round_bytes")
	for _, s := range []int{2, 4, 8, 16, 32} {
		_, sp := sites(3200, 4, s, seed)
		two := mustRun(sp, core.Config{K: 4, T: 100, Objective: core.Median})
		one := mustRun(sp, core.Config{K: 4, T: 100, Objective: core.Median, Variant: core.OneRound})
		fmt.Printf("%d,%d,%d\n", s, two.Report.UpBytes, one.Report.UpBytes)
	}
}

func sweepN(seed int64) {
	fmt.Println("n,two_round_bytes,site_wall_ms")
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		_, sp := sites(n, 4, 8, seed)
		two := mustRun(sp, core.Config{K: 4, T: 60, Objective: core.Median})
		fmt.Printf("%d,%d,%d\n", n, two.Report.UpBytes, two.Report.SiteWall.Milliseconds())
	}
}

func sweepEps(seed int64) {
	fmt.Println("eps,median_cost,means_cost")
	in, sp := sites(1500, 4, 6, seed)
	for _, eps := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
		med := mustRun(sp, core.Config{K: 4, T: 75, Objective: core.Median, Eps: eps})
		mea := mustRun(sp, core.Config{K: 4, T: 75, Objective: core.Means, Eps: eps})
		cm := core.Evaluate(in.Pts, med.Centers, med.OutlierBudget, core.Median)
		cq := core.Evaluate(in.Pts, mea.Centers, mea.OutlierBudget, core.Means)
		fmt.Printf("%g,%g,%g\n", eps, cm, cq)
	}
}

func sweepM(seed int64) {
	fmt.Println("m,alg3_bytes,naive_bytes")
	for _, m := range []int{2, 4, 8, 16, 32} {
		in := gen.UncertainMixture(gen.UncertainSpec{N: 400, K: 3, Support: m, OutlierFrac: 0.08, Seed: seed})
		parts := gen.PartitionNodes(in, 4, gen.Uniform, seed+1)
		sn := gen.SiteNodes(in, parts)
		smart, err := uncertain.Run(in.Ground, sn, uncertain.Config{K: 3, T: 40}, uncertain.Median)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpc-sweep:", err)
			os.Exit(1)
		}
		naive, err := uncertain.Run(in.Ground, sn, uncertain.Config{K: 3, T: 40, Variant: uncertain.OneRoundShipDists}, uncertain.Median)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpc-sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("%d,%d,%d\n", m, smart.Report.UpBytes, naive.Report.UpBytes)
	}
}

func sweepSubq(seed int64) {
	fmt.Println("n,direct_s,level1_s,level2_s")
	for _, n := range []int{1000, 2000, 4000, 8000} {
		in := gen.Mixture(gen.MixtureSpec{N: n, K: 3, OutlierFrac: 0.03, Seed: seed})
		opts := kmedian.Options{MaxIters: 10, Seed: seed}
		var secs [3]float64
		for lvl := 0; lvl <= 2; lvl++ {
			sol := central.PartialMedian(in.Pts, central.Config{K: 3, T: n / 50, Levels: lvl, Opts: opts})
			secs[lvl] = sol.Elapsed.Seconds()
		}
		fmt.Printf("%d,%.3f,%.3f,%.3f\n", n, secs[0], secs[1], secs[2])
	}
}
