// Command dpc-loadgen proves the serving hot path scales: it benchmarks
// the sharded dataset registry against the preserved single-lock baseline
// under concurrent register/append/snapshot/delete traffic, then drives a
// real dpc-server over HTTP with concurrent registrations, appends and
// clustering jobs, measuring throughput, job latency percentiles, cache
// hit ratios and the warm-vs-cold first-job gap. Results land in
// BENCH_SERVE.json; CI runs the quick preset against a live server and
// dpc-benchdiff -serve gates the invariants (sharding speedup, warm < cold,
// nonzero cache reuse).
//
// Usage:
//
//	dpc-loadgen -preset quick -out BENCH_SERVE.json              # storage bench + self-hosted HTTP bench
//	dpc-loadgen -preset quick -server http://127.0.0.1:8080 ...  # drive an externally started dpc-server
//	dpc-loadgen -storage-only -out BENCH_SERVE.json              # registry comparison only
//
//	# drive a replica fleet through the balanced client (the CI replica
//	# smoke kill -9s one of these mid-run and gates 100% completion):
//	dpc-loadgen -replicas http://:8081,http://:8082,http://:8083 -scenario killed_replica -min-run 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpc/client"
	"dpc/internal/engine"
	"dpc/internal/gen"
	"dpc/internal/metric"
	"dpc/internal/serve"
)

// Report is the BENCH_SERVE.json schema. Exactly one of the benchmark
// sections may be absent: -replicas runs skip the storage/single-server
// phases and emit Replica instead.
type Report struct {
	Preset     string         `json:"preset"`
	Goroutines int            `json:"goroutines"`
	Storage    *StorageReport `json:"storage,omitempty"`
	HTTP       *HTTPReport    `json:"http,omitempty"`
	Replica    *ReplicaReport `json:"replica,omitempty"`
}

// StorageReport compares the segmented registry against the single-lock
// baseline on the identical in-process workload.
type StorageReport struct {
	Ops              int     `json:"ops"`
	SingleLockOpsPS  float64 `json:"single_lock_ops_per_s"`
	ShardedOpsPS     float64 `json:"sharded_ops_per_s"`
	Speedup          float64 `json:"speedup"`
	SingleLockOpsPS1 float64 `json:"single_lock_ops_per_s_1g"`
	ShardedOpsPS1    float64 `json:"sharded_ops_per_s_1g"`
}

// HTTPReport measures a live dpc-server under concurrent API traffic.
type HTTPReport struct {
	RegisterOpsPS  float64 `json:"register_ops_per_s"`
	AppendOpsPS    float64 `json:"append_ops_per_s"`
	Jobs           int     `json:"jobs"`
	JobP50MS       float64 `json:"job_p50_ms"`
	JobP99MS       float64 `json:"job_p99_ms"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	ColdFirstJobMS float64 `json:"cold_first_job_ms"`
	WarmJobMS      float64 `json:"warm_job_ms"`
	WarmedFirstMS  float64 `json:"warmed_first_job_ms"`
}

// ReplicaReport measures a dpc-server fleet driven through the balanced
// client — including runs where the harness kill -9s a replica mid-way
// (scenario "killed_replica"): every job must still complete, with
// centers byte-identical to a Local solve of the same data.
type ReplicaReport struct {
	Scenario          string           `json:"scenario"` // steady | killed_replica
	Replicas          int              `json:"replicas"`
	Jobs              int              `json:"jobs"`
	Completed         int              `json:"completed"`
	JobP50MS          float64          `json:"job_p50_ms"` // client-observed wall clock, failover included
	JobP99MS          float64          `json:"job_p99_ms"`
	Retries           int64            `json:"retries"`
	Resubmissions     int64            `json:"resubmissions"`
	Reregistrations   int64            `json:"reregistrations"`
	PerReplicaJobs    map[string]int64 `json:"per_replica_jobs"`
	CentersMatchLocal bool             `json:"centers_match_local"`
}

type preset struct {
	storageOps   int // target op count per storage run
	registerSets int // HTTP: datasets registered concurrently
	registerPts  int // points per registered dataset
	appendOps    int // HTTP: append calls
	appendPts    int // points per append
	jobs         int // HTTP: measured jobs
	jobPts       int // points in the job dataset
	warmPts      int // points in the warm-vs-cold dataset
}

var presets = map[string]preset{
	"quick": {storageOps: 24000, registerSets: 48, registerPts: 120,
		appendOps: 192, appendPts: 40, jobs: 16, jobPts: 360, warmPts: 4096},
	"full": {storageOps: 120000, registerSets: 128, registerPts: 240,
		appendOps: 768, appendPts: 60, jobs: 48, jobPts: 600, warmPts: 4096},
}

// warmDim is the dimension of the warm-vs-cold datasets: high enough that
// distance evaluations dominate the first solve, which is the workload
// cache warmth (background warmup, spill/restore) exists for.
const warmDim = 64

// jobEngine is the -engine spec applied to every benchmark job (empty =
// server defaults); with "index" the run measures the pivot-index hot path.
var jobEngine engine.Spec

func main() {
	var (
		presetName  = flag.String("preset", "quick", "workload preset: quick or full")
		out         = flag.String("out", "BENCH_SERVE.json", "output JSON path")
		server      = flag.String("server", "", "base URL of a running dpc-server (empty = self-host one)")
		goroutines  = flag.Int("goroutines", 8, "concurrent workers for every benchmark phase")
		storageOnly = flag.Bool("storage-only", false, "run only the in-process registry comparison")
		replicas    = flag.String("replicas", "", "comma-separated dpc-server base URLs: drive the fleet through the balanced client instead of the single-server phases")
		scenario    = flag.String("scenario", "steady", "replica-run label recorded in the artifact: steady, or killed_replica when the harness kill -9s a replica mid-run")
		minRun      = flag.Duration("min-run", 0, "with -replicas: keep cycling jobs at least this long (a window for the harness to kill a replica in)")
	)
	flag.Var(&jobEngine, "engine", "engine spec for the benchmark jobs, e.g. index,pivots=32 (tokens: auto|localsearch|jv, index, pivots=N, nocache, workers=N)")
	flag.Parse()
	p, ok := presets[*presetName]
	if !ok {
		fatal(fmt.Errorf("unknown preset %q (want quick or full)", *presetName))
	}

	rep := Report{Preset: *presetName, Goroutines: *goroutines}

	if *replicas != "" {
		urls := strings.Split(*replicas, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		fmt.Fprintf(os.Stderr, "dpc-loadgen: replica benchmark (%d replicas, scenario %s, %d goroutines)\n",
			len(urls), *scenario, *goroutines)
		r, err := replicaBench(urls, p, *goroutines, *scenario, *minRun)
		if err != nil {
			fatal(err)
		}
		rep.Replica = r
		fmt.Fprintf(os.Stderr, "  %d/%d jobs completed, p50 %.2fms p99 %.2fms, %d retries, %d resubmissions, centers match local: %t\n",
			r.Completed, r.Jobs, r.JobP50MS, r.JobP99MS, r.Retries, r.Resubmissions, r.CentersMatchLocal)
		writeReport(*out, rep)
		return
	}

	fmt.Fprintf(os.Stderr, "dpc-loadgen: storage benchmark (%d ops, %d goroutines)\n", p.storageOps, *goroutines)
	st := storageBench(p, *goroutines)
	rep.Storage = &st
	fmt.Fprintf(os.Stderr, "  single-lock %.0f ops/s, sharded %.0f ops/s -> %.2fx at %d goroutines\n",
		rep.Storage.SingleLockOpsPS, rep.Storage.ShardedOpsPS, rep.Storage.Speedup, *goroutines)

	if !*storageOnly {
		base := *server
		var stop func()
		if base == "" {
			var err error
			base, stop, err = selfHost()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dpc-loadgen: self-hosted dpc-server on %s\n", base)
		}
		h, err := httpBench(base, p, *goroutines)
		if stop != nil {
			stop()
		}
		if err != nil {
			fatal(err)
		}
		rep.HTTP = h
		fmt.Fprintf(os.Stderr, "  register %.0f ops/s, append %.0f ops/s, job p50 %.2fms p99 %.2fms, hit ratio %.3f\n",
			h.RegisterOpsPS, h.AppendOpsPS, h.JobP50MS, h.JobP99MS, h.CacheHitRatio)
		fmt.Fprintf(os.Stderr, "  first job: cold %.2fms, warm rerun %.2fms, warmed-first %.2fms\n",
			h.ColdFirstJobMS, h.WarmJobMS, h.WarmedFirstMS)
	}

	writeReport(*out, rep)
}

// writeReport marshals the artifact to disk.
func writeReport(path string, rep Report) {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dpc-loadgen: wrote %s\n", path)
}

// storagePoints builds a deterministic batch without touching the gen
// package's mixture machinery (registry ops should dominate, not point
// synthesis).
func storagePoints(n int, seed uint64) []metric.Point {
	pts := make([]metric.Point, n)
	x := seed | 1
	for i := range pts {
		x = x*6364136223846793005 + 1442695040888963407
		pts[i] = metric.Point{float64(x % 4093), float64((x >> 21) % 4093)}
	}
	return pts
}

// runStorage drives the shared workload against one TableStore with G
// goroutines: each owns its dataset names and loops register -> appends
// (with periodic snapshot reads) -> delete, the registry's serving mix.
// Returns ops/second.
func runStorage(store serve.TableStore, g, totalOps int) float64 {
	opsPer := totalOps / g
	var done atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("load-%02d", w)
			ops := 0
			cycle := 0
			for ops < opsPer {
				dn := fmt.Sprintf("%s-%d", name, cycle%4)
				if err := store.StoreRegister(dn, storagePoints(64, uint64(w*1000+cycle))); err == nil {
					ops++
				}
				for a := 0; a < 24 && ops < opsPer; a++ {
					if err := store.StoreAppend(dn, storagePoints(32, uint64(w*100000+cycle*100+a))); err == nil {
						ops++
					}
					if a%6 == 5 {
						if _, err := store.StoreSnapshot(dn); err == nil {
							ops++
						}
					}
				}
				if err := store.StoreDelete(dn); err == nil {
					ops++
				}
				cycle++
			}
			done.Add(int64(ops))
		}(w)
	}
	wg.Wait()
	return float64(done.Load()) / time.Since(start).Seconds()
}

// storageBench runs the workload against both registry implementations at
// 1 and G goroutines. Fresh stores per run; the sharded registry uses its
// default segment count (what serve.New deploys).
func storageBench(p preset, g int) StorageReport {
	rep := StorageReport{Ops: p.storageOps}
	// Interleave implementations to spread thermal/GC drift fairly, and
	// run a small warmup first so neither side pays JIT-like first-touch
	// costs (map growth, allocator warmup).
	runStorage(serve.NewSingleLockRegistry(), g, p.storageOps/8)
	runStorage(serve.NewRegistry(0), g, p.storageOps/8)

	rep.SingleLockOpsPS1 = runStorage(serve.NewSingleLockRegistry(), 1, p.storageOps)
	rep.ShardedOpsPS1 = runStorage(serve.NewRegistry(0), 1, p.storageOps)
	rep.SingleLockOpsPS = runStorage(serve.NewSingleLockRegistry(), g, p.storageOps)
	rep.ShardedOpsPS = runStorage(serve.NewRegistry(0), g, p.storageOps)
	if rep.SingleLockOpsPS > 0 {
		rep.Speedup = rep.ShardedOpsPS / rep.SingleLockOpsPS
	}
	return rep
}

// selfHost boots a real dpc-server (full HTTP stack over a TCP listener,
// not an in-process handler call) for runs without -server.
func selfHost() (string, func(), error) {
	srv := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// mixture builds the job datasets (clustered data, so solves do real
// work).
func mixture(n int, seed int64) []client.Point {
	return mixtureDim(n, 2, seed)
}

// mixtureDim is mixture with an explicit dimension. The warm-vs-cold
// phase uses a high dimension so distance evaluations dominate the solve
// — the regime cache warmth exists for; in 2-D a distance costs less than
// its cache lookup and the warm/cold gap disappears by design (see
// metric.MaxCachePoints's sizing note).
func mixtureDim(n, dim int, seed int64) []client.Point {
	in := gen.Mixture(gen.MixtureSpec{N: n, K: 3, Dim: dim, OutlierFrac: 0.05, Seed: seed})
	out := make([]client.Point, len(in.Pts))
	for i, p := range in.Pts {
		out[i] = client.Point(p)
	}
	return out
}

// fanOut runs n calls of fn across g goroutines, returning ops/second and
// the first error.
func fanOut(g, n int, fn func(i int) error) (float64, error) {
	var wg sync.WaitGroup
	var firstErr atomic.Value
	next := atomic.Int64{}
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(n) / elapsed, nil
}

// percentile returns the pth percentile (0..100) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// distCells returns the total distance-cache cells of a table of n points
// round-robin split over the default job sharding — the fill target the
// warmup poll waits for.
func distCells(n int) int64 {
	per := n / serve.DefaultJobSites
	rem := n % serve.DefaultJobSites
	var cells int64
	for i := 0; i < serve.DefaultJobSites; i++ {
		m := per
		if i < rem {
			m++
		}
		cells += int64(m*(m-1)) / 2
	}
	return cells
}

func httpBench(base string, p preset, g int) (*HTTPReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	rc := client.NewRemote(base, client.RemoteOptions{PollInterval: 2 * time.Millisecond})
	defer rc.Close()
	rep := &HTTPReport{Jobs: p.jobs}

	// Concurrent registrations.
	var err error
	rep.RegisterOpsPS, err = fanOut(g, p.registerSets, func(i int) error {
		return rc.RegisterDataset(ctx, fmt.Sprintf("lg-reg-%03d", i), mixture(p.registerPts, int64(i+1)))
	})
	if err != nil {
		return nil, fmt.Errorf("register phase: %w", err)
	}

	// Concurrent appends across the registered datasets.
	rep.AppendOpsPS, err = fanOut(g, p.appendOps, func(i int) error {
		name := fmt.Sprintf("lg-reg-%03d", i%p.registerSets)
		_, err := rc.AppendPoints(ctx, name, mixture(p.appendPts, int64(1000+i)))
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("append phase: %w", err)
	}

	// Job latency percentiles over one shared dataset (server-side solve
	// durations, so poll cadence does not pollute the numbers).
	if err := rc.RegisterDataset(ctx, "lg-jobs", mixture(p.jobPts, 42)); err != nil {
		return nil, err
	}
	spec := serve.JobSpec{Dataset: "lg-jobs", K: 3, T: 12, Objective: "median", Seed: 11, Engine: jobEngine}
	durs := make([]float64, p.jobs)
	_, err = fanOut(g, p.jobs, func(i int) error {
		s := spec
		s.Seed = int64(11 + i%4) // a few distinct solves, mostly shared cache
		job, err := rc.Submit(ctx, s)
		if err != nil {
			return err
		}
		done, err := rc.Wait(ctx, job.ID)
		if err != nil {
			return err
		}
		if done.Status != serve.StatusDone {
			return fmt.Errorf("job %s: %s (%s)", done.ID, done.Status, done.Error)
		}
		durs[i] = done.Result.DurationMS
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("job phase: %w", err)
	}
	sort.Float64s(durs)
	rep.JobP50MS = percentile(durs, 50)
	rep.JobP99MS = percentile(durs, 99)
	info, err := rc.Dataset(ctx, "lg-jobs")
	if err != nil {
		return nil, err
	}
	if tot := info.CacheHits + info.CacheMisses; tot > 0 {
		rep.CacheHitRatio = float64(info.CacheHits) / float64(tot)
	}

	// Cold first job vs warm rerun on a fresh dataset. High dimension:
	// this is the regime where the metric dominates and warmth pays. The
	// explicit warm=false keeps the measurement cold even against a server
	// started with -warm.
	if err := rc.RegisterDatasetWarm(ctx, "lg-cold", mixtureDim(p.warmPts, warmDim, 77), false); err != nil {
		return nil, err
	}
	coldSpec := serve.JobSpec{Dataset: "lg-cold", K: 3, T: 15, Objective: "median", Seed: 5, Engine: jobEngine}
	cold, err := oneJob(ctx, rc, coldSpec)
	if err != nil {
		return nil, err
	}
	rep.ColdFirstJobMS = cold
	warm, err := oneJob(ctx, rc, coldSpec)
	if err != nil {
		return nil, err
	}
	rep.WarmJobMS = warm

	// Warmed first job: register with background warmup, wait until the
	// shard caches report the full fill (misses reach the cell target),
	// then measure the very first job.
	if err := rc.RegisterDatasetWarm(ctx, "lg-warmed", mixtureDim(p.warmPts, warmDim, 78), true); err != nil {
		return nil, err
	}
	target := distCells(p.warmPts)
	for deadline := time.Now().Add(2 * time.Minute); ; {
		info, err := rc.Dataset(ctx, "lg-warmed")
		if err != nil {
			return nil, err
		}
		if info.CacheMisses >= target {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("warmup never completed (%d / %d cells)", info.CacheMisses, target)
		}
		time.Sleep(20 * time.Millisecond)
	}
	warmedSpec := serve.JobSpec{Dataset: "lg-warmed", K: 3, T: 15, Objective: "median", Seed: 5, Engine: jobEngine}
	warmed, err := oneJob(ctx, rc, warmedSpec)
	if err != nil {
		return nil, err
	}
	rep.WarmedFirstMS = warmed
	return rep, nil
}

// oneJob runs a single job and returns the server-side solve duration.
func oneJob(ctx context.Context, rc *client.Remote, spec serve.JobSpec) (float64, error) {
	job, err := rc.Submit(ctx, spec)
	if err != nil {
		return 0, err
	}
	done, err := rc.Wait(ctx, job.ID)
	if err != nil {
		return 0, err
	}
	if done.Status != serve.StatusDone {
		return 0, fmt.Errorf("job %s: %s (%s)", done.ID, done.Status, done.Error)
	}
	return done.Result.DurationMS, nil
}

// replicaBench drives a dpc-server fleet through the balanced client:
// one shared dataset replicated across holders, then at least p.jobs
// clustering jobs (and at least minRun of wall clock — the window in
// which a harness may kill -9 a replica) from g workers. Latencies are
// client-observed wall clock, so failover costs land in the percentiles.
// Every job's centers are checked byte for byte against a Local solve of
// the identical request — the fleet may lose a member, never an answer.
func replicaBench(urls []string, p preset, g int, scenario string, minRun time.Duration) (*ReplicaReport, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	bc, err := client.NewBalanced(urls, client.BalancedOptions{
		RemoteOptions: client.RemoteOptions{PollInterval: 2 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer bc.Close()

	// Three datasets with identical points: their names hash to distinct
	// primaries on a 3-replica ring, so steady-state load spreads across
	// the fleet while each dataset's cache warmth stays replica-local.
	const datasets = 3
	pts := mixture(p.jobPts, 42)
	for d := 0; d < datasets; d++ {
		if err := bc.RegisterDataset(ctx, fmt.Sprintf("lg-replica-%d", d), pts); err != nil {
			return nil, fmt.Errorf("replica register: %w", err)
		}
	}

	// The fleet's answers must equal a Local solve of the same request —
	// the determinism contract that makes N independent replicas one
	// logical server. A few distinct seeds so the run is not one memoized
	// solve.
	seeds := []int64{11, 12, 13, 14}
	local := client.NewLocal()
	refs := make(map[int64][]client.Point, len(seeds))
	for _, seed := range seeds {
		rl, err := local.Do(ctx, client.Request{
			Objective: client.Median, K: 3, T: 12, Sites: 4, Seed: seed, Points: pts,
		})
		if err != nil {
			return nil, fmt.Errorf("local reference (seed %d): %w", seed, err)
		}
		refs[seed] = rl.Centers
	}

	var (
		mu        sync.Mutex
		latencies []float64
		perJob    = make(map[string]int64)
		match     = true
		next      atomic.Int64
		firstErr  atomic.Value
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= p.jobs && time.Since(start) >= minRun {
					return
				}
				if firstErr.Load() != nil {
					return
				}
				seed := seeds[i%len(seeds)]
				t0 := time.Now()
				res, err := bc.Do(ctx, client.Request{
					Objective: client.Median, K: 3, T: 12, Sites: 4, Seed: seed,
					Dataset: fmt.Sprintf("lg-replica-%d", i%datasets),
				})
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("job %d (seed %d): %w", i, seed, err))
					return
				}
				elapsed := float64(time.Since(t0).Microseconds()) / 1000
				ok := sameCenters(res.Centers, refs[seed])
				mu.Lock()
				latencies = append(latencies, elapsed)
				perJob[res.Replica]++
				match = match && ok
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}

	sort.Float64s(latencies)
	st := bc.Stats()
	return &ReplicaReport{
		Scenario:          scenario,
		Replicas:          len(urls),
		Jobs:              len(latencies),
		Completed:         len(latencies),
		JobP50MS:          percentile(latencies, 50),
		JobP99MS:          percentile(latencies, 99),
		Retries:           st.Retries,
		Resubmissions:     st.Resubmissions,
		Reregistrations:   st.Reregistrations,
		PerReplicaJobs:    perJob,
		CentersMatchLocal: match,
	}, nil
}

// sameCenters is exact (byte-identical) center equality.
func sameCenters(got, want []client.Point) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-loadgen:", err)
	os.Exit(1)
}
