package main

import (
	"strings"
	"testing"
)

// TestListGolden pins the -list output: every registered experiment with
// its brief, in ID order.
func TestListGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 12 {
		t.Fatalf("-list printed %d lines, want 12:\n%s", len(lines), sb.String())
	}
	for i, want := range []string{"E1 ", "E10", "E11", "E12", "E2 "} {
		if !strings.HasPrefix(lines[i], want) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "E99"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown experiment: err=%v", err)
	}
}

func TestBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("bad flag did not error")
	}
}

// TestRunE11QuickSmoke runs the cheapest experiment end to end and checks
// the rendered table reaches the writer.
func TestRunE11QuickSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E11", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== E11", "paper claim", "DP optimum", "finished in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
