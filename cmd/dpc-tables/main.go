// Command dpc-tables regenerates the paper's evaluation artifacts: every
// row-group of Table 1 and Table 2 plus the figure-style claims, as
// measured on this implementation (experiments E1..E12 of DESIGN.md).
//
// Usage:
//
//	dpc-tables                 # run everything at full size
//	dpc-tables -exp E1,E4      # selected experiments
//	dpc-tables -quick          # smaller instances (seconds, not minutes)
//	dpc-tables -seed 7         # different workload seed
//	dpc-tables -workers 4      # bound solver goroutines (0 = NumCPU)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dpc/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if _, printed := err.(parsedError); !printed {
			fmt.Fprintln(os.Stderr, "dpc-tables:", err)
		}
		os.Exit(2)
	}
}

// parsedError wraps an error the FlagSet already reported to stderr, so
// main does not print it a second time.
type parsedError struct{ error }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dpc-tables", flag.ContinueOnError)
	exp := fs.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
	quick := fs.Bool("quick", false, "run reduced-size instances")
	seed := fs.Int64("seed", 1, "workload seed")
	workers := fs.Int("workers", 0, "solver goroutines (0 = one per CPU; tables are identical for every value)")
	index := fs.Bool("index", false, "layer the pivot metric index over the solver oracles (tables are identical; only wall-clock moves)")
	pivots := fs.Int("pivots", 0, "pivot count with -index (0 = metric default)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed
		}
		return parsedError{err}
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Brief)
		}
		return nil
	}

	var selected []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	opts := bench.Options{Seed: *seed, Quick: *quick, Workers: *workers, Index: *index, Pivots: *pivots}
	for _, e := range selected {
		t0 := time.Now()
		table := e.Run(opts)
		fmt.Fprintln(stdout, table.String())
		fmt.Fprintf(stdout, "   (%s finished in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
