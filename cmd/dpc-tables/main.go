// Command dpc-tables regenerates the paper's evaluation artifacts: every
// row-group of Table 1 and Table 2 plus the figure-style claims, as
// measured on this implementation (experiments E1..E12 of DESIGN.md).
//
// Usage:
//
//	dpc-tables                 # run everything at full size
//	dpc-tables -exp E1,E4      # selected experiments
//	dpc-tables -quick          # smaller instances (seconds, not minutes)
//	dpc-tables -seed 7         # different workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dpc/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
	quick := flag.Bool("quick", false, "run reduced-size instances")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Brief)
		}
		return
	}

	var selected []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpc-tables: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := bench.Options{Seed: *seed, Quick: *quick}
	for _, e := range selected {
		t0 := time.Now()
		table := e.Run(opts)
		fmt.Println(table.String())
		fmt.Printf("   (%s finished in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
