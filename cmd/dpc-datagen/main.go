// Command dpc-datagen writes a planted Gaussian-mixture-with-outliers
// workload as CSV — the deterministic dataset source for smoke tests and
// demos (the same generator the benchmarks and experiments use), so shell
// pipelines can exercise dpc-cluster and dpc-server on identical data
// without checking binary datasets into the repository.
//
// Usage:
//
//	dpc-datagen -n 1000 -k 4 -dim 2 -outliers 0.05 -seed 7 -out points.csv
//	dpc-datagen -n 600 | dpc-cluster -k 4 -t 30
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpc/internal/dataio"
	"dpc/internal/gen"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "total points (clusters + outliers)")
		k        = flag.Int("k", 4, "planted clusters")
		dim      = flag.Int("dim", 2, "dimension")
		outliers = flag.Float64("outliers", 0.05, "fraction of points placed as far outliers")
		std      = flag.Float64("std", 0, "within-cluster standard deviation (0 = generator default)")
		seed     = flag.Int64("seed", 1, "generator seed")
		outPath  = flag.String("out", "-", "output CSV ('-' = stdout)")
	)
	flag.Parse()

	in := gen.Mixture(gen.MixtureSpec{
		N: *n, K: *k, Dim: *dim, OutlierFrac: *outliers, ClusterStd: *std, Seed: *seed,
	})
	out, err := openOut(*outPath)
	if err != nil {
		fatal(err)
	}
	if err := dataio.WritePointsCSV(out, in.Pts); err != nil {
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpc-datagen:", err)
	os.Exit(1)
}
