package dpc_test

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dpc"
	"dpc/internal/dataio"
)

// TestDaemonsEndToEnd is the acceptance test of the transport subsystem at
// the process level: it builds dpc-coordinator and dpc-site, runs one
// coordinator plus s site processes over localhost TCP on a seeded
// instance, and demands the same centers and the same payload-byte
// accounting (frame headers excluded) as the in-process loopback run.
func TestDaemonsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	tmp := t.TempDir()

	// Build the two daemons from the module under test.
	coordBin := filepath.Join(tmp, "dpc-coordinator")
	siteBin := filepath.Join(tmp, "dpc-site")
	for bin, pkg := range map[string]string{coordBin: "./cmd/dpc-coordinator", siteBin: "./cmd/dpc-site"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Seeded instance, split round-robin across 3 sites.
	const s, n, k, tt = 3, 180, 3, 12
	rng := rand.New(rand.NewSource(41))
	var all []dpc.Point
	sites := make([][]dpc.Point, s)
	for j := 0; j < n; j++ {
		c := j % k
		p := dpc.Point{float64(12*c) + rng.NormFloat64(), float64(12*c) + rng.NormFloat64()}
		all = append(all, p)
		sites[j%s] = append(sites[j%s], p)
	}
	for i := 0; i < s; i++ {
		f, err := os.Create(filepath.Join(tmp, fmt.Sprintf("part%d.csv", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := dataio.WritePointsCSV(f, sites[i]); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// Reference: the in-process loopback run with the daemons' defaults.
	want, err := dpc.Run(sites, dpc.Config{K: k, T: tt, LocalOpts: dpc.SolverOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator on an ephemeral port; its first stderr line tells us
	// where the sites should dial.
	centersPath := filepath.Join(tmp, "centers.csv")
	coord := exec.Command(coordBin,
		"-listen", "127.0.0.1:0", "-sites", strconv.Itoa(s),
		"-k", strconv.Itoa(k), "-t", strconv.Itoa(tt),
		"-report", "-out", centersPath)
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		re := regexp.MustCompile(`listening on (\S+),`)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
			if m := re.FindStringSubmatch(line); m != nil {
				addrCh <- m[1]
			}
		}
		close(addrCh)
	}()
	addr, ok := <-addrCh
	if !ok {
		coord.Wait()
		t.Fatalf("coordinator never listened; stderr:\n%s", strings.Join(lines, "\n"))
	}

	var wg sync.WaitGroup
	siteErrs := make([]error, s)
	for i := 0; i < s; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(siteBin,
				"-connect", addr, "-site", strconv.Itoa(i),
				"-in", filepath.Join(tmp, fmt.Sprintf("part%d.csv", i)))
			if out, err := cmd.CombinedOutput(); err != nil {
				siteErrs[i] = fmt.Errorf("site %d: %v\n%s", i, err, out)
			}
		}(i)
	}
	wg.Wait()
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\nstderr:\n%s", err, strings.Join(lines, "\n"))
	}
	for _, err := range siteErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Same centers...
	f, err := os.Open(centersPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dataio.ReadPointsCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Centers, got) {
		t.Fatalf("centers differ:\nloopback: %v\ndaemons:  %v", want.Centers, got)
	}

	// ...and the same payload-byte accounting, parsed off the report.
	mu.Lock()
	report := strings.Join(lines, "\n")
	mu.Unlock()
	re := regexp.MustCompile(`rounds: (\d+)  up: (\d+) B  down: (\d+) B`)
	m := re.FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("no report in coordinator stderr:\n%s", report)
	}
	rounds, _ := strconv.Atoi(m[1])
	up, _ := strconv.ParseInt(m[2], 10, 64)
	down, _ := strconv.ParseInt(m[3], 10, 64)
	if rounds != want.Report.Rounds || up != want.Report.UpBytes || down != want.Report.DownBytes {
		t.Fatalf("daemon accounting %d rounds/%d up/%d down, loopback %d/%d/%d",
			rounds, up, down, want.Report.Rounds, want.Report.UpBytes, want.Report.DownBytes)
	}
}
