package dpc_test

import (
	"testing"

	"dpc"
)

// The facade test exercises the full public API surface end to end, the way
// a downstream user would.
func TestFacadeDeterministic(t *testing.T) {
	in := dpc.Mixture(dpc.MixtureSpec{N: 400, K: 3, Dim: 2, OutlierFrac: 0.05, Seed: 1})
	parts := dpc.Partition(in, 4, dpc.PartitionUniform, 2)
	sites := dpc.SitePoints(in, parts)

	for _, obj := range []dpc.Objective{dpc.Median, dpc.Means, dpc.Center} {
		res, err := dpc.Run(sites, dpc.Config{K: 3, T: 20, Objective: obj})
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if len(res.Centers) == 0 {
			t.Fatalf("%v: no centers", obj)
		}
		cost := dpc.Evaluate(dpc.FlattenSites(sites), res.Centers, res.OutlierBudget, obj)
		if cost < 0 {
			t.Fatalf("%v: negative cost", obj)
		}
		if res.Report.Rounds != 2 {
			t.Fatalf("%v: %d rounds", obj, res.Report.Rounds)
		}
		if res.Report.TotalBytes() == 0 {
			t.Fatalf("%v: no communication measured", obj)
		}
	}
}

func TestFacadeVariants(t *testing.T) {
	in := dpc.Mixture(dpc.MixtureSpec{N: 300, K: 2, OutlierFrac: 0.1, Seed: 3})
	parts := dpc.Partition(in, 3, dpc.PartitionOutlierHeavy, 4)
	sites := dpc.SitePoints(in, parts)
	for _, v := range []dpc.Variant{dpc.TwoRound, dpc.TwoRoundNoOutliers, dpc.OneRound} {
		res, err := dpc.Run(sites, dpc.Config{K: 2, T: 30, Objective: dpc.Median, Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Centers) == 0 {
			t.Fatalf("%v: no centers", v)
		}
	}
}

func TestFacadeUncertain(t *testing.T) {
	in := dpc.UncertainMixture(dpc.UncertainSpec{N: 120, K: 2, Support: 3, OutlierFrac: 0.05, Seed: 5})
	parts := dpc.PartitionNodes(in, 3, dpc.PartitionUniform, 6)
	sites := dpc.SiteNodes(in, parts)

	res, err := dpc.RunUncertain(in.Ground, sites, dpc.UncertainConfig{K: 2, T: 6}, dpc.UncertainMedian)
	if err != nil {
		t.Fatal(err)
	}
	cost := dpc.EvalUncertainMedian(in.Ground, in.Nodes, res.Centers, res.OutlierBudget)
	if cost < 0 {
		t.Fatal("negative cost")
	}
	if v := dpc.EvalUncertainMeans(in.Ground, in.Nodes, res.Centers, res.OutlierBudget); v < 0 {
		t.Fatal("negative means cost")
	}
	if v := dpc.EvalUncertainCenterPP(in.Ground, in.Nodes, res.Centers, res.OutlierBudget); v < 0 {
		t.Fatal("negative pp cost")
	}

	cg, err := dpc.RunCenterG(in.Ground, sites, dpc.CenterGConfig{K: 2, T: 6})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Tau <= 0 || len(cg.Centers) == 0 {
		t.Fatal("center-g degenerate result")
	}
	if v := dpc.EvalUncertainCenterG(in.Ground, in.Nodes, cg.Centers, cg.OutlierBudget, 50, 7); v < 0 {
		t.Fatal("negative center-g estimate")
	}
}

func TestFacadeCentralized(t *testing.T) {
	in := dpc.Mixture(dpc.MixtureSpec{N: 500, K: 3, OutlierFrac: 0.05, Seed: 8})
	direct := dpc.Centralized(in.Pts, dpc.CentralConfig{K: 3, T: 25, Levels: 0})
	sim := dpc.Centralized(in.Pts, dpc.CentralConfig{K: 3, T: 25, Levels: 1})
	if direct.Cost <= 0 || sim.Cost <= 0 {
		t.Fatal("degenerate costs")
	}
	if sim.TopChunks < 10 {
		t.Fatalf("level-1 chunks = %d", sim.TopChunks)
	}
	if sim.Cost > 8*direct.Cost {
		t.Fatalf("simulation cost ratio %.2f", sim.Cost/direct.Cost)
	}
}

func TestFacadeStream(t *testing.T) {
	in := dpc.Mixture(dpc.MixtureSpec{N: 1500, K: 3, OutlierFrac: 0.04, Seed: 20})
	sk, err := dpc.NewStream(dpc.StreamConfig{K: 3, T: 60, Chunk: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range in.Pts {
		sk.Add(p)
	}
	if sk.Size() > 300 {
		t.Fatalf("sketch size %d exceeds chunk", sk.Size())
	}
	res := sk.Finish()
	if len(res.Centers) == 0 || len(res.Centers) > 3 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	cost := dpc.Evaluate(in.Pts, res.Centers, 60, dpc.Median)
	batch := dpc.Centralized(in.Pts, dpc.CentralConfig{K: 3, T: 60, Levels: 0, Eps: 0.0001})
	if batch.Cost > 0 && cost > 6*batch.Cost {
		t.Fatalf("stream %g vs batch %g", cost, batch.Cost)
	}
}

func TestFacadeGraphOracle(t *testing.T) {
	g, err := dpc.GraphMetric(4, []dpc.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 50}})
	if err != nil {
		t.Fatal(err)
	}
	sol := dpc.SolvePartialMedian(g, nil, 1, 1, dpc.EngineAuto, dpc.SolverOptions{Seed: 1})
	if got := sol.Outliers(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("outliers = %v, want the far node [3]", got)
	}
	cen := dpc.SolvePartialCenter(g, nil, 1, 1)
	if cen.Radius > 2 {
		t.Fatalf("center radius = %g", cen.Radius)
	}
}

func TestFacadeEngines(t *testing.T) {
	in := dpc.Mixture(dpc.MixtureSpec{N: 90, K: 2, OutlierFrac: 0.05, Seed: 9})
	parts := dpc.Partition(in, 2, dpc.PartitionUniform, 10)
	sites := dpc.SitePoints(in, parts)
	for _, e := range []dpc.Engine{dpc.EngineAuto, dpc.EngineLocalSearch, dpc.EngineJV} {
		res, err := dpc.Run(sites, dpc.Config{
			K: 2, T: 4, Objective: dpc.Median, Engine: e,
			LocalOpts: dpc.SolverOptions{Seed: 11},
		})
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if len(res.Centers) == 0 {
			t.Fatalf("engine %v: no centers", e)
		}
	}
}
