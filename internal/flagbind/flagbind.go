// Package flagbind generates command-line flags from struct fields, so a
// binary's flag surface is derived from the same tagged struct that defines
// its API wire format — CLI names and API field names cannot drift apart.
//
// A field is bound when it has both a `json` tag (the flag takes the JSON
// name, with underscores turned into dashes: "lloyd_polish" becomes
// -lloyd-polish) and a `usage` tag (the help text). Fields with no json
// name, a "-" json name, or a "-" usage tag are skipped; so are field types
// the flag package cannot hold (slices, structs, pointers — data payloads
// travel in files or request bodies, not flags).
package flagbind

import (
	"flag"
	"fmt"
	"reflect"
	"strings"
)

// Bind registers one flag per eligible exported field of *v (a pointer to
// struct), with the field's current value as the default. It panics on a
// non-struct-pointer v — a programming error, not runtime input.
func Bind(fs *flag.FlagSet, v any) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("flagbind: Bind wants a struct pointer, got %T", v))
	}
	rv = rv.Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		usage := f.Tag.Get("usage")
		if name == "" || name == "-" || usage == "" || usage == "-" {
			continue
		}
		flagName := strings.ReplaceAll(name, "_", "-")
		p := rv.Field(i).Addr().Interface()
		// A field implementing flag.Value binds through its own Set/String
		// (e.g. engine.Spec's token syntax) — checked before the basic-type
		// switch so rich fields stay on the CLI instead of panicking below.
		if fv, ok := p.(flag.Value); ok {
			fs.Var(fv, flagName, usage)
			continue
		}
		switch p := p.(type) {
		case *int:
			fs.IntVar(p, flagName, *p, usage)
		case *int64:
			fs.Int64Var(p, flagName, *p, usage)
		case *float64:
			fs.Float64Var(p, flagName, *p, usage)
		case *string:
			fs.StringVar(p, flagName, *p, usage)
		case *bool:
			fs.BoolVar(p, flagName, *p, usage)
		default:
			// A tagged field this switch cannot hold would silently vanish
			// from the CLI — the exact drift this package exists to
			// prevent. Fail loudly at startup instead.
			panic(fmt.Sprintf("flagbind: field %s (%s) has both json and usage tags but an unsupported type %T",
				f.Name, flagName, p))
		}
	}
}
