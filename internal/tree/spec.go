// Package tree arranges a protocol run's s sites under intermediate
// aggregator nodes with a configurable branching factor, so the
// coordinator's fan-in is the branching factor instead of s.
//
// The paper's star network ships every site summary straight to the
// coordinator: total communication is the optimal Õ((sk+t)B), but the
// coordinator's own inbox is O(s·(k+t)) and becomes the bottleneck long
// before the bound does. Following the hierarchical-aggregation line
// (Bendechache et al.), an aggregator merges its subtree's summaries into
// one batch before forwarding upward. The merge here is an associative
// re-grouping of the same summaries — child payloads are carried losslessly
// (compactly re-encoded, see batch.go) and expanded back into per-site
// payloads at the root — so every protocol driver in the repository runs
// unchanged over a tree and returns centers byte-identical to the star.
// What changes is the physical traffic on the root's links, attributed per
// level in comm.TreeStats.
package tree

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// DefaultBranch is the branching factor used when a tree topology is
// selected without an explicit branch=N.
const DefaultBranch = 8

// Spec selects the coordinator fan-in topology. The zero value is the
// paper's star. It implements flag.Value ("star", "tree", "tree,branch=8")
// and marshals to JSON in the same compact string form, mirroring
// engine.Spec's ergonomics so -topology reads like -engine.
type Spec struct {
	// Tree enables the aggregation tree; false is the star.
	Tree bool `json:"tree,omitempty"`
	// Branch is the branching factor (direct children per node);
	// 0 means DefaultBranch.
	Branch int `json:"branch,omitempty"`
}

// Enabled reports whether an aggregation tree was requested.
func (s Spec) Enabled() bool { return s.Tree }

// BranchOrDefault resolves the effective branching factor.
func (s Spec) BranchOrDefault() int {
	if s.Branch <= 0 {
		return DefaultBranch
	}
	return s.Branch
}

// Validate rejects unusable branching factors.
func (s Spec) Validate() error {
	if s.Tree && s.Branch != 0 && s.Branch < 2 {
		return fmt.Errorf("tree: branching factor %d (want >= 2)", s.Branch)
	}
	return nil
}

// String implements flag.Value, rendering the token form Set parses.
func (s *Spec) String() string {
	if s == nil || !s.Tree {
		return "star"
	}
	if s.Branch == 0 {
		return "tree"
	}
	return "tree,branch=" + strconv.Itoa(s.Branch)
}

// Set implements flag.Value: "star" (the default), "tree", or
// "tree,branch=N".
func (s *Spec) Set(v string) error {
	out := Spec{}
	for _, tok := range strings.Split(v, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if val, ok := strings.CutPrefix(tok, "branch="); ok {
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("tree: %s: %w", tok, err)
			}
			out.Branch = n
			continue
		}
		switch tok {
		case "star":
			out = Spec{}
		case "tree":
			out.Tree = true
		default:
			return fmt.Errorf("tree: unknown topology token %q (want star | tree | branch=N)", tok)
		}
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// MarshalJSON emits the compact string form ("star" / "tree,branch=8").
func (s Spec) MarshalJSON() ([]byte, error) {
	sp := s
	return []byte(strconv.Quote(sp.String())), nil
}

// UnmarshalJSON accepts the string form or the object form
// ({"tree":true,"branch":8}).
func (s *Spec) UnmarshalJSON(b []byte) error {
	t := strings.TrimSpace(string(b))
	if t == "null" {
		return nil
	}
	if strings.HasPrefix(t, "\"") {
		str, err := strconv.Unquote(t)
		if err != nil {
			return fmt.Errorf("tree: bad topology string %s: %w", t, err)
		}
		return s.Set(str)
	}
	type alias Spec
	var a alias
	if err := json.Unmarshal(b, &a); err != nil {
		return fmt.Errorf("tree: bad topology object: %w", err)
	}
	if err := Spec(a).Validate(); err != nil {
		return err
	}
	*s = Spec(a)
	return nil
}

// groupSizes splits n leaves into ceil(n/branch) contiguous groups of at
// most branch each, the deterministic plan every layer (in-process trees,
// daemons, the bench and the CI smoke) derives identically: group j owns
// units [j*branch, min((j+1)*branch, n)).
func groupSizes(n, branch int) []int {
	g := (n + branch - 1) / branch
	sizes := make([]int, g)
	for j := range sizes {
		lo := j * branch
		hi := lo + branch
		if hi > n {
			hi = n
		}
		sizes[j] = hi - lo
	}
	return sizes
}

// Groups is the exported plan: the contiguous group sizes for n units under
// branching factor b. Aggregator j of a level owns the units whose indexes
// fall in the half-open range starting at the sum of the sizes before it.
func Groups(n, branch int) []int { return groupSizes(n, branch) }

// Tiers is the bottom-up aggregator plan for n leaves: the node count of
// each successive aggregator tier, repeating until at most branch nodes
// face the root (the exact loop NewLocal builds, so in-process trees,
// daemon launch scripts and the coordinator's accept count all agree).
// Empty means the tree degenerates to a star. The root's direct-children
// count is the last entry (or n when empty).
func Tiers(n, branch int) []int {
	var tiers []int
	for n > branch {
		n = len(groupSizes(n, branch))
		tiers = append(tiers, n)
	}
	return tiers
}
