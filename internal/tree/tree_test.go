package tree

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"dpc/internal/comm"
	"dpc/internal/geom"
	"dpc/internal/metric"
	"dpc/internal/transport"
)

func TestSpecFlagRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		str  string
	}{
		{"star", Spec{}, "star"},
		{"tree", Spec{Tree: true}, "tree"},
		{"tree,branch=4", Spec{Tree: true, Branch: 4}, "tree,branch=4"},
		{" tree , branch=16 ", Spec{Tree: true, Branch: 16}, "tree,branch=16"},
	}
	for _, tc := range cases {
		var s Spec
		if err := s.Set(tc.in); err != nil {
			t.Fatalf("Set(%q): %v", tc.in, err)
		}
		if s != tc.want {
			t.Fatalf("Set(%q) = %+v, want %+v", tc.in, s, tc.want)
		}
		if got := s.String(); got != tc.str {
			t.Fatalf("String() = %q, want %q", got, tc.str)
		}
	}
	for _, bad := range []string{"ring", "tree,branch=1", "tree,branch=x", "branch=-3,tree"} {
		var s Spec
		if err := s.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestSpecJSON(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{`"star"`, Spec{}},
		{`"tree,branch=4"`, Spec{Tree: true, Branch: 4}},
		{`{"tree":true,"branch":6}`, Spec{Tree: true, Branch: 6}},
		{`null`, Spec{}},
	} {
		var s Spec
		if err := json.Unmarshal([]byte(tc.in), &s); err != nil {
			t.Fatalf("unmarshal %s: %v", tc.in, err)
		}
		if s != tc.want {
			t.Fatalf("unmarshal %s = %+v, want %+v", tc.in, s, tc.want)
		}
	}
	b, err := json.Marshal(Spec{Tree: true, Branch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"tree,branch=4"` {
		t.Fatalf("marshal = %s", b)
	}
	var s Spec
	if err := json.Unmarshal([]byte(`{"tree":true,"branch":1}`), &s); err == nil {
		t.Fatal("branch=1 object accepted")
	}
}

func TestGroups(t *testing.T) {
	for _, tc := range []struct {
		n, b int
		want []int
	}{
		{9, 3, []int{3, 3, 3}},
		{10, 3, []int{3, 3, 3, 1}},
		{2, 8, []int{2}},
		{17, 8, []int{8, 8, 1}},
	} {
		if got := Groups(tc.n, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("Groups(%d,%d) = %v, want %v", tc.n, tc.b, got, tc.want)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	bt := batch{
		levels: []comm.TreeLevel{{Down: 120, Up: 4096}, {Down: 360, Up: 9000}},
		secs: []section{
			{method: mRaw, work: 17 * time.Microsecond, data: []byte("payload-a")},
			{method: mHull, work: 0, data: []byte{0}},
			{method: mRaw, data: nil},
		},
	}
	got, err := decodeBatch(encodeBatch(bt))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.levels, bt.levels) {
		t.Fatalf("levels %+v, want %+v", got.levels, bt.levels)
	}
	if len(got.secs) != len(bt.secs) {
		t.Fatalf("%d sections, want %d", len(got.secs), len(bt.secs))
	}
	for i := range bt.secs {
		if got.secs[i].method != bt.secs[i].method || got.secs[i].work != bt.secs[i].work ||
			!bytes.Equal(got.secs[i].data, bt.secs[i].data) {
			t.Fatalf("section %d = %+v, want %+v", i, got.secs[i], bt.secs[i])
		}
	}
}

func TestDecodeBatchHostile(t *testing.T) {
	good := encodeBatch(batch{levels: []comm.TreeLevel{{Up: 5}}, secs: []section{{method: mRaw, data: []byte("x")}}})
	for name, raw := range map[string][]byte{
		"empty":          nil,
		"bad magic":      {0x00, 0x01},
		"bad version":    {batchMagic, 0x7f},
		"zero levels":    {batchMagic, batchVersion, 0x00},
		"huge levels":    append([]byte{batchMagic, batchVersion}, binary.AppendUvarint(nil, 1<<40)...),
		"truncated":      good[:len(good)-1],
		"trailing":       append(append([]byte{}, good...), 0xff),
		"bad method":     {batchMagic, batchVersion, 1, 0, 0, 1, 0xee, 0, 0},
		"section length": {batchMagic, batchVersion, 1, 0, 0, 1, mRaw, 0, 0x7f},
	} {
		if _, err := decodeBatch(raw); err == nil {
			t.Errorf("%s: decoded", name)
		}
	}
}

// marshal builds the star wire bytes of a payload for compaction tests.
func marshal(t *testing.T, p comm.Payload) []byte {
	t.Helper()
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCompactKnownPayloads(t *testing.T) {
	pts := []metric.Point{{1.5, -2.25, 3e9}, {0.125, 4, -5}, {6, 7, 8.5}}
	cases := []struct {
		name   string
		p      []byte
		method byte
	}{
		{"hull", marshal(t, comm.HullMsg{V: []geom.Vertex{{Q: 0, C: 91.5}, {Q: 3, C: 40.25}, {Q: 12, C: 0}}}), mHull},
		{"weighted integral", marshal(t, comm.WeightedPointsMsg{Pts: pts, W: []float64{3, 17, 2000}}), mWeighted},
		{"collapsed integral", marshal(t, comm.CollapsedMsg{Y: pts, Ell: []float64{0.5, 1.25, 9}, W: []float64{1, 2, 3}}), mCollapsed},
		{"multi", marshal(t, comm.Multi{Parts: []comm.Payload{
			comm.WeightedPointsMsg{Pts: pts, W: []float64{4, 5, 6}},
			comm.PointsMsg{Pts: pts},
		}}), mMulti},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := compact(tc.p)
			if s.method != tc.method {
				t.Fatalf("method %d, want %d", s.method, tc.method)
			}
			if len(s.data) >= len(tc.p) {
				t.Fatalf("no shrink: %d -> %d bytes", len(tc.p), len(s.data))
			}
			back, err := expandSection(s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, tc.p) {
				t.Fatal("round trip not byte-identical")
			}
		})
	}
}

func TestCompactFallsBackRaw(t *testing.T) {
	// Non-integral weights still round-trip (raw rows behind a varint
	// header); arbitrary bytes and empty payloads fall back to mRaw.
	frac := marshal(t, comm.WeightedPointsMsg{Pts: []metric.Point{{1, 2}}, W: []float64{0.5}})
	s := compact(frac)
	back, err := expandSection(s)
	if err != nil || !bytes.Equal(back, frac) {
		t.Fatalf("fractional-weight round trip: err %v, equal %v", err, bytes.Equal(back, frac))
	}
	for _, p := range [][]byte{nil, {0x01}, []byte("arbitrary junk bytes"), bytes.Repeat([]byte{0xab}, 37)} {
		s := compact(p)
		back, err := expandSection(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, p) {
			t.Fatalf("junk payload altered: %x -> %x", p, back)
		}
	}
}

func TestExpandHostileSections(t *testing.T) {
	for name, s := range map[string]section{
		"hull huge count":   {method: mHull, data: binary.AppendUvarint(nil, 1<<50)},
		"hull q overflow":   {method: mHull, data: append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), math.MaxUint32+1), make([]byte, 8)...)},
		"block huge count":  {method: mPts, data: append(binary.AppendUvarint(binary.AppendUvarint(nil, 1<<40), 4), 0)},
		"block flag no w":   {method: mPts, data: append(binary.AppendUvarint(binary.AppendUvarint(nil, 0), 2), 1)},
		"weight overflow":   {method: mWeighted, data: append(append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 0), 1), binary.AppendUvarint(nil, 1<<53)...)},
		"multi huge count":  {method: mMulti, data: binary.AppendUvarint(nil, 1<<30)},
		"multi nested":      {method: mMulti, data: append(binary.AppendUvarint(nil, 1), mMulti, 0)},
		"unknown method":    {method: 0x7d, data: nil},
		"block dim too big": {method: mPts, data: append(binary.AppendUvarint(binary.AppendUvarint(nil, 0), 1<<30), 0)},
	} {
		if _, err := expandSection(s); err == nil {
			t.Errorf("%s: expanded", name)
		}
	}
}

// echoHandlers builds n handlers whose replies identify (site, round) so the
// root's reconstruction order is checkable.
func echoHandlers(n int) []transport.Handler {
	hs := make([]transport.Handler, n)
	for i := range hs {
		site := i
		hs[i] = func(round int, in []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("site=%d round=%d in=%s", site, round, in)), nil
		}
	}
	return hs
}

func TestNewLocalTreeOrderAndStats(t *testing.T) {
	const sites, branch = 10, 3
	tr, err := NewLocal(context.Background(), transport.KindLoopback, echoHandlers(sites), true, Spec{Tree: true, Branch: branch})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	root, ok := tr.(*Root)
	if !ok {
		t.Fatalf("got %T, want *Root", tr)
	}
	if tr.Sites() != sites {
		t.Fatalf("Sites() = %d", tr.Sites())
	}
	for round := 0; round < 2; round++ {
		msg := []byte(fmt.Sprintf("cfg%d", round))
		if err := tr.Broadcast(round, msg); err != nil {
			t.Fatal(err)
		}
		res, err := tr.Gather(context.Background(), round)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Payloads) != sites || len(res.Work) != sites {
			t.Fatalf("round %d: %d payloads, %d work entries", round, len(res.Payloads), len(res.Work))
		}
		for i, p := range res.Payloads {
			want := fmt.Sprintf("site=%d round=%d in=%s", i, round, msg)
			if string(p) != want {
				t.Fatalf("payload %d = %q, want %q", i, p, want)
			}
		}
	}
	if err := tr.Send(0, 1, []byte("x")); err == nil {
		t.Fatal("Send accepted over a tree")
	}
	stats, ok := root.TreeStats()
	if !ok {
		t.Fatal("no tree stats")
	}
	// 10 sites at branch 3 builds tiers 10 -> 4 -> 2, so three levels of
	// links: root<->2 aggregators, those<->4 aggregators, those<->10 leaves.
	if stats.Branch != branch || stats.Leaves != sites || len(stats.Levels) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, l := range stats.Levels {
		if l.Down <= 0 || l.Up <= 0 {
			t.Fatalf("unaccounted level %d: %+v", i, stats.Levels)
		}
	}
	// Every leaf saw each broadcast once: the leaf-level down bytes are
	// exactly sites × len(msg) per round.
	if want := int64(sites * len("cfg0") * 2); stats.Levels[2].Down != want {
		t.Fatalf("leaf down bytes = %d, want %d", stats.Levels[2].Down, want)
	}
}

func TestNewLocalDegeneratesToStar(t *testing.T) {
	tr, err := NewLocal(context.Background(), transport.KindLoopback, echoHandlers(3), true, Spec{Tree: true, Branch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, ok := tr.(*Root); ok {
		t.Fatal("3 sites under branch 8 should be a plain star")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	hs := echoHandlers(9)
	hs[4] = func(round int, in []byte) ([]byte, error) {
		return nil, fmt.Errorf("site 4 exploded")
	}
	tr, err := NewLocal(context.Background(), transport.KindLoopback, hs, true, Spec{Tree: true, Branch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Broadcast(0, []byte("go")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Gather(context.Background(), 0); err == nil {
		t.Fatal("gather succeeded past a failing leaf")
	}
}
