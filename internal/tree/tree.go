package tree

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dpc/internal/comm"
	"dpc/internal/transport"
)

// jobStarter is the optional job-frame surface of a child transport
// (transport.Coordinator, transport.Multi, Root). An aggregator forwards
// job frames downward through it so persistent-site fleets work under a
// tree exactly as under a star.
type jobStarter interface {
	StartJob(blob []byte) error
}

// Aggregator is the merge role of one interior tree node: it receives each
// round's downstream bytes from its parent, forwards them verbatim to its
// child transport, gathers the children's replies and merges them into one
// batch for the parent. The same Aggregator runs in-process (its Handle
// bound into a parent transport) and inside a dpc-site -aggregate daemon
// (driven by Serve over a real socket), which is what keeps loopback tests
// and TCP deployments on one code path.
type Aggregator struct {
	ctx   context.Context
	child transport.Transport
	inner bool // children are aggregators (their payloads are batches)
}

// NewAggregator builds the merge role over an already-connected child
// transport. inner declares whether the children are themselves aggregators
// (payloads arrive as batches to merge) or leaf sites (payloads are raw
// protocol messages to compact). ctx bounds the child gathers; nil means
// context.Background().
func NewAggregator(ctx context.Context, child transport.Transport, inner bool) *Aggregator {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Aggregator{ctx: ctx, child: child, inner: inner}
}

// Handle is the aggregator as a transport.Handler: one call per round, in
// strict round order, merging the subtree's replies into a batch.
func (a *Aggregator) Handle(round int, in []byte) ([]byte, error) {
	if err := a.child.Broadcast(round, in); err != nil {
		return nil, fmt.Errorf("tree: aggregator broadcast round %d: %w", round, err)
	}
	res, err := a.child.Gather(a.ctx, round)
	if err != nil {
		return nil, fmt.Errorf("tree: aggregator gather round %d: %w", round, err)
	}
	own := comm.TreeLevel{Down: int64(len(in)) * int64(a.child.Sites())}
	var deeper []comm.TreeLevel
	secs := make([]section, 0, len(res.Payloads))
	for i, p := range res.Payloads {
		own.Up += int64(len(p))
		if a.inner {
			cb, err := decodeBatch(p)
			if err != nil {
				return nil, fmt.Errorf("tree: child %d round %d: %w", i, round, err)
			}
			secs = append(secs, cb.secs...)
			deeper = addLevels(deeper, cb.levels)
		} else {
			s := compact(p)
			s.work = res.Work[i]
			secs = append(secs, s)
		}
	}
	return encodeBatch(batch{levels: append([]comm.TreeLevel{own}, deeper...), secs: secs}), nil
}

// StartJob forwards a job frame to the subtree, re-arming every persistent
// leaf site below this node.
func (a *Aggregator) StartJob(blob []byte) error {
	js, ok := a.child.(jobStarter)
	if !ok {
		return fmt.Errorf("tree: child transport %T cannot start jobs", a.child)
	}
	return js.StartJob(blob)
}

// Close closes the child transport (ending the subtree's protocol).
func (a *Aggregator) Close() error { return a.child.Close() }

// Serve drives an aggregator daemon: sc is the connection to the parent
// (coordinator or a higher aggregator), child the already-accepted
// transport to this node's children. A single-run parent (config in the
// handshake) is served with the plain round loop; a multi-job parent
// (transport.JobsHello) has each job frame forwarded down before the
// rounds, so persistent leaf fleets stay warm under the tree. The child
// transport is closed when the parent ends the protocol. inner declares
// whether the children are aggregators themselves (a tree deeper than two
// levels).
func Serve(sc *transport.Site, child transport.Transport, inner bool) error {
	defer child.Close()
	if string(sc.Hello()) == transport.JobsHello {
		return sc.ServeJobs(func(job int, blob []byte) (transport.Handler, error) {
			a := NewAggregator(context.Background(), child, inner)
			if err := a.StartJob(blob); err != nil {
				return nil, fmt.Errorf("tree: forward job %d: %w", job, err)
			}
			return a.Handle, nil
		})
	}
	return sc.Serve(NewAggregator(context.Background(), child, inner).Handle)
}

// Root is the coordinator end of an aggregation tree. It implements
// transport.Transport over an inner transport whose "sites" are the root's
// direct children (aggregators): Broadcast fans the downstream bytes into
// the tree, and Gather expands the children's merged batches back into the
// s per-site payloads in global site order — byte-identical to what a star
// would have gathered — while recording what physically crossed each level
// of links. Protocol drivers therefore run unchanged; comm.Network picks
// the per-level attribution up through the comm.TreeStatser interface.
type Root struct {
	inner  transport.Transport
	aggs   []*Aggregator // in-process aggregators to close with the tree
	leaves int
	branch int

	mu    sync.Mutex
	stats comm.TreeStats
}

// NewRootOver wraps an inner transport whose sites are aggregator nodes
// (in-process handlers or dpc-site -aggregate daemons) merging `leaves`
// real sites in global order under branching factor branch.
func NewRootOver(inner transport.Transport, leaves, branch int) (*Root, error) {
	if leaves <= 0 {
		return nil, fmt.Errorf("tree: %d leaves", leaves)
	}
	if branch < 2 {
		return nil, fmt.Errorf("tree: branching factor %d (want >= 2)", branch)
	}
	if inner.Sites() > leaves {
		return nil, fmt.Errorf("tree: %d direct children for %d leaves", inner.Sites(), leaves)
	}
	return &Root{
		inner:  inner,
		leaves: leaves,
		branch: branch,
		stats:  comm.TreeStats{Branch: branch, Leaves: leaves, Levels: []comm.TreeLevel{{}}},
	}, nil
}

// Sites implements Transport: the number of real (leaf) sites.
func (r *Root) Sites() int { return r.leaves }

// Broadcast implements Transport, fanning b to every leaf through the
// aggregators and accounting the root's own outbox.
func (r *Root) Broadcast(round int, b []byte) error {
	r.mu.Lock()
	r.stats.Levels[0].Down += int64(len(b)) * int64(r.inner.Sites())
	r.mu.Unlock()
	return r.inner.Broadcast(round, b)
}

// Send implements Transport. Per-site downstream messages would need the
// aggregators to route addressed frames; no protocol driver in the
// repository uses Send, so the tree rejects it loudly rather than carrying
// dead routing code.
func (r *Root) Send(round, site int, b []byte) error {
	return fmt.Errorf("tree: per-site Send is not supported over an aggregation tree (round %d, site %d)", round, site)
}

// Gather implements Transport: the direct children's batches are expanded
// into the per-site payloads of the round, in global site order.
func (r *Root) Gather(ctx context.Context, round int) (transport.RoundResult, error) {
	res, err := r.inner.Gather(ctx, round)
	if err != nil {
		return transport.RoundResult{}, err
	}
	out := transport.RoundResult{
		Payloads: make([][]byte, 0, r.leaves),
		Work:     make([]time.Duration, 0, r.leaves),
	}
	var inbox int64
	var deeper []comm.TreeLevel
	for i, p := range res.Payloads {
		inbox += int64(len(p))
		bt, err := decodeBatch(p)
		if err != nil {
			return transport.RoundResult{}, fmt.Errorf("tree: root child %d round %d: %w", i, round, err)
		}
		deeper = addLevels(deeper, bt.levels)
		for j, s := range bt.secs {
			payload, err := expandSection(s)
			if err != nil {
				return transport.RoundResult{}, fmt.Errorf("tree: root child %d section %d round %d: %w", i, j, round, err)
			}
			out.Payloads = append(out.Payloads, payload)
			out.Work = append(out.Work, s.work)
		}
	}
	if len(out.Payloads) != r.leaves {
		return transport.RoundResult{}, fmt.Errorf("tree: round %d carried %d site payloads, want %d", round, len(out.Payloads), r.leaves)
	}
	r.mu.Lock()
	r.stats.Levels[0].Up += inbox
	rest := r.stats.Levels[1:]
	rest = addLevels(rest, deeper)
	r.stats.Levels = append(r.stats.Levels[:1], rest...)
	r.mu.Unlock()
	return out, nil
}

// StartJob forwards a job frame into the tree (persistent-site fleets).
func (r *Root) StartJob(blob []byte) error {
	js, ok := r.inner.(jobStarter)
	if !ok {
		return fmt.Errorf("tree: inner transport %T cannot start jobs", r.inner)
	}
	return js.StartJob(blob)
}

// Close implements Transport, closing the inner transport first (so close
// frames reach the aggregators) and then every in-process aggregator's
// child transport, top level down.
func (r *Root) Close() error {
	first := r.inner.Close()
	for _, a := range r.aggs {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Abort drops the inner transport's connections without the protocol
// close frame when the inner transport supports it (transport.Coordinator
// does), so persistent daemons behind them redial instead of exiting;
// in-process aggregators are closed normally. Mirrors Coordinator.Abort
// for tree-topology cluster backends.
func (r *Root) Abort() error {
	var first error
	if ab, ok := r.inner.(interface{ Abort() error }); ok {
		first = ab.Abort()
	} else {
		first = r.inner.Close()
	}
	for _, a := range r.aggs {
		if err := a.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TreeStats implements comm.TreeStatser.
func (r *Root) TreeStats() (comm.TreeStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Levels = append([]comm.TreeLevel(nil), r.stats.Levels...)
	return s, true
}

// NewLocal builds the transport for in-process site handlers under the
// requested topology: the plain star when spec is star (or the site count
// does not exceed the branching factor, where a tree degenerates to the
// star), otherwise a bottom-up b-ary aggregation tree — contiguous groups
// of at most branch handlers behind one aggregator per group, repeated
// until at most branch nodes face the root. kind applies to every level:
// with transport.KindTCP each group crosses a real framed localhost socket,
// so the tree is exercised over the same wire bytes a daemon deployment
// ships.
func NewLocal(ctx context.Context, kind transport.Kind, handlers []transport.Handler, parallel bool, spec Spec) (transport.Transport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	branch := spec.BranchOrDefault()
	if !spec.Enabled() || len(handlers) <= branch {
		return transport.NewLocal(kind, handlers, parallel)
	}
	var aggs []*Aggregator
	fail := func(err error) (transport.Transport, error) {
		for _, a := range aggs {
			a.Close()
		}
		return nil, err
	}
	cur := handlers
	inner := false
	for len(cur) > branch {
		sizes := groupSizes(len(cur), branch)
		next := make([]transport.Handler, 0, len(sizes))
		off := 0
		for _, sz := range sizes {
			child, err := transport.NewLocal(kind, cur[off:off+sz], parallel)
			if err != nil {
				return fail(err)
			}
			a := NewAggregator(ctx, child, inner)
			aggs = append(aggs, a)
			next = append(next, a.Handle)
			off += sz
		}
		cur = next
		inner = true
	}
	top, err := transport.NewLocal(kind, cur, parallel)
	if err != nil {
		return fail(err)
	}
	root, err := NewRootOver(top, len(handlers), branch)
	if err != nil {
		top.Close()
		return fail(err)
	}
	root.aggs = aggs
	return root, nil
}
