package tree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"dpc/internal/comm"
)

// An aggregator forwards one batch per round: its subtree's per-site
// payloads in global site order, each compactly re-encoded, plus the
// physical per-level byte counts observed below it. The batch is the
// "merged summary" of the hierarchical-aggregation literature, specialized
// to this repository's invariant that the coordinator must reconstruct the
// exact site payload bytes (centers stay byte-identical to the star).
//
// Wire form (all varints are unsigned LEB128, binary.PutUvarint):
//
//	byte    magic (0xB7)
//	byte    version (1)
//	varint  L — level count
//	L ×     varint down, varint up      (physical bytes this round; entry 0
//	                                     is this aggregator's own links)
//	varint  n — leaf section count
//	n ×     byte method; varint workNanos; varint len; len bytes
//
// Sections are compacted per known payload shape (see compact below) with
// a raw fallback; the compactor proves losslessness by expanding its own
// output and comparing bytes before committing to a method, so an unknown
// or adversarial payload can never be altered, only carried verbatim.
const (
	batchMagic   = 0xB7
	batchVersion = 1

	// Decoder guards against hostile length fields.
	maxLevels   = 64
	maxSections = 1 << 22
)

// Section methods. Raw must stay 0: it is the universal fallback.
const (
	mRaw byte = iota
	mHull
	mPts
	mWeighted  // WeightedPointsMsg: n, dim, n×(dim coords + weight)
	mCollapsed // CollapsedMsg: n, dim, n×(dim coords + ell + weight)
	mMulti
	methodCount
)

// section is one leaf site's payload inside a batch, still compacted.
type section struct {
	method byte
	work   time.Duration
	data   []byte
}

// batch is the decoded form an aggregator merges and the root expands.
type batch struct {
	levels []comm.TreeLevel
	secs   []section
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// encodeBatch serializes a batch.
func encodeBatch(bt batch) []byte {
	n := 2 + 10*(2*len(bt.levels)+1)
	for _, s := range bt.secs {
		n += 1 + 20 + len(s.data)
	}
	out := make([]byte, 0, n)
	out = append(out, batchMagic, batchVersion)
	out = appendUvarint(out, uint64(len(bt.levels)))
	for _, l := range bt.levels {
		out = appendUvarint(out, uint64(l.Down))
		out = appendUvarint(out, uint64(l.Up))
	}
	out = appendUvarint(out, uint64(len(bt.secs)))
	for _, s := range bt.secs {
		out = append(out, s.method)
		out = appendUvarint(out, uint64(s.work))
		out = appendUvarint(out, uint64(len(s.data)))
		out = append(out, s.data...)
	}
	return out
}

// vreader reads the varint-based batch/section encodings with bounds
// checks, the same hostile-input posture as comm's fixed-width reader.
type vreader struct {
	b   []byte
	off int
}

func (r *vreader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("tree: truncated or overlong varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *vreader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("tree: truncated at offset %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *vreader) take(n uint64) ([]byte, error) {
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("tree: length %d exceeds remaining %d bytes", n, len(r.b)-r.off)
	}
	s := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return s, nil
}

func (r *vreader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("tree: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// decodeBatch parses a batch, validating bounds but leaving sections
// compacted (aggregators merge without expanding).
func decodeBatch(raw []byte) (batch, error) {
	r := &vreader{b: raw}
	magic, err := r.byte()
	if err != nil {
		return batch{}, err
	}
	if magic != batchMagic {
		return batch{}, fmt.Errorf("tree: not a batch (leading byte %#x)", magic)
	}
	ver, err := r.byte()
	if err != nil {
		return batch{}, err
	}
	if ver != batchVersion {
		return batch{}, fmt.Errorf("tree: unknown batch version %d", ver)
	}
	nl, err := r.uvarint()
	if err != nil {
		return batch{}, err
	}
	if nl == 0 || nl > maxLevels {
		return batch{}, fmt.Errorf("tree: %d levels (want 1..%d)", nl, maxLevels)
	}
	bt := batch{levels: make([]comm.TreeLevel, nl)}
	for i := range bt.levels {
		d, err := r.uvarint()
		if err != nil {
			return batch{}, err
		}
		u, err := r.uvarint()
		if err != nil {
			return batch{}, err
		}
		bt.levels[i] = comm.TreeLevel{Down: int64(d), Up: int64(u)}
	}
	ns, err := r.uvarint()
	if err != nil {
		return batch{}, err
	}
	if ns > maxSections {
		return batch{}, fmt.Errorf("tree: %d sections (cap %d)", ns, maxSections)
	}
	bt.secs = make([]section, 0, ns)
	for i := uint64(0); i < ns; i++ {
		m, err := r.byte()
		if err != nil {
			return batch{}, err
		}
		if m >= methodCount {
			return batch{}, fmt.Errorf("tree: section %d has unknown method %d", i, m)
		}
		w, err := r.uvarint()
		if err != nil {
			return batch{}, err
		}
		ln, err := r.uvarint()
		if err != nil {
			return batch{}, err
		}
		data, err := r.take(ln)
		if err != nil {
			return batch{}, fmt.Errorf("tree: section %d: %w", i, err)
		}
		bt.secs = append(bt.secs, section{method: m, work: time.Duration(w), data: data})
	}
	if err := r.done(); err != nil {
		return batch{}, err
	}
	return bt, nil
}

// addLevels sums b into a element-wise, growing a as needed (subtrees of
// unequal depth sum where they overlap).
func addLevels(a, b []comm.TreeLevel) []comm.TreeLevel {
	for len(a) < len(b) {
		a = append(a, comm.TreeLevel{})
	}
	for i, l := range b {
		a[i].Down += l.Down
		a[i].Up += l.Up
	}
	return a
}

// --- per-payload compaction -------------------------------------------------
//
// The star's wire formats (internal/comm) spend fixed u32/f64 slots on
// values that are small integers in practice: message counts, hull vertex
// budgets, and precluster weights (which are point counts). A level-1
// aggregator re-encodes those slots as varints; everything float-valued is
// carried bit-exact. Each compactor is paired with an expander that is its
// exact inverse, and compact() verifies the pair on every payload before
// using it, so the worst case is a raw copy, never corruption.

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// compactHull re-encodes a HullMsg (u32 n; n × (u32 q, f64 c)).
func compactHull(p []byte) ([]byte, bool) {
	if len(p) < 4 {
		return nil, false
	}
	n := uint64(le32(p))
	if uint64(len(p)) != 4+12*n {
		return nil, false
	}
	out := make([]byte, 0, len(p))
	out = appendUvarint(out, n)
	for off := 4; off < len(p); off += 12 {
		out = appendUvarint(out, uint64(le32(p[off:])))
		out = append(out, p[off+4:off+12]...)
	}
	return out, true
}

func expandHull(c []byte) ([]byte, error) {
	r := &vreader{b: c}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c)) { // each vertex takes >= 9 compact bytes
		return nil, fmt.Errorf("tree: hull count %d too large", n)
	}
	out := make([]byte, 0, 4+12*n)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for i := uint64(0); i < n; i++ {
		q, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if q > math.MaxUint32 {
			return nil, fmt.Errorf("tree: hull q %d overflows u32", q)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(q))
		cb, err := r.take(8)
		if err != nil {
			return nil, err
		}
		out = append(out, cb...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// compactBlock handles the family (u32 n; u32 dim; n × (stride f64 words))
// where the last word of each row is a weight that is an integral count in
// practice: PointsMsg (no weight), WeightedPointsMsg (1 trailing weight
// after dim coords), CollapsedMsg (ell then weight after dim coords).
// extra is the number of f64 words between the coords and the weight;
// weighted says whether a weight word exists at all.
func compactBlock(p []byte, extra int, weighted bool) ([]byte, bool) {
	if len(p) < 8 {
		return nil, false
	}
	n := uint64(le32(p))
	dim := uint64(le32(p[4:]))
	if dim > 1<<20 {
		return nil, false
	}
	words := dim + uint64(extra)
	if weighted {
		words++
	}
	if uint64(len(p)) != 8+8*n*words || (n > 0 && words == 0) {
		return nil, false
	}
	// One flag byte: varint weights only when every weight is a small
	// non-negative integral float (bit-exactly recoverable); otherwise the
	// rows are copied raw and only the header shrinks.
	intW := weighted
	if weighted {
		for off := 8 + 8*(dim+uint64(extra)); off < uint64(len(p)); off += 8 * words {
			w := math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			if !(w >= 0 && w == math.Trunc(w) && w < 1<<53 && !math.Signbit(w)) {
				intW = false
				break
			}
		}
	}
	out := make([]byte, 0, len(p))
	out = appendUvarint(out, n)
	out = appendUvarint(out, dim)
	flag := byte(0)
	if intW {
		flag = 1
	}
	out = append(out, flag)
	if !intW {
		return append(out, p[8:]...), true
	}
	rawPerRow := 8 * (dim + uint64(extra))
	for off := uint64(8); off < uint64(len(p)); off += 8 * words {
		out = append(out, p[off:off+rawPerRow]...)
		w := math.Float64frombits(binary.LittleEndian.Uint64(p[off+rawPerRow:]))
		out = appendUvarint(out, uint64(w))
	}
	return out, true
}

func expandBlock(c []byte, extra int, weighted bool) ([]byte, error) {
	r := &vreader{b: c}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	dim, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if dim > 1<<20 {
		return nil, fmt.Errorf("tree: block dim %d too large", dim)
	}
	flag, err := r.byte()
	if err != nil {
		return nil, err
	}
	words := dim + uint64(extra)
	if weighted {
		words++
	}
	if n > 0 && words == 0 {
		return nil, fmt.Errorf("tree: zero-width block rows")
	}
	// Allocation guard (comm's need() idiom): bound the claimed row count by
	// the bytes actually present before sizing the output buffer from it.
	// Raw rows cost 8*words compact bytes each; varint-weight rows cost at
	// least 8*(words-1)+1.
	rem := uint64(len(c) - r.off)
	minRow := 8 * words
	if flag != 0 && words > 0 {
		minRow = 8*(words-1) + 1
	}
	if words > 0 && (n > rem || n*minRow > rem) {
		return nil, fmt.Errorf("tree: block count %d exceeds %d remaining bytes", n, rem)
	}
	out := make([]byte, 0, 8+8*n*words)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(dim))
	if flag == 0 {
		rest, err := r.take(8 * n * words)
		if err != nil {
			return nil, err
		}
		out = append(out, rest...)
	} else {
		if !weighted {
			return nil, fmt.Errorf("tree: weight flag on unweighted block")
		}
		rawPerRow := 8 * (dim + uint64(extra))
		for i := uint64(0); i < n; i++ {
			raw, err := r.take(rawPerRow)
			if err != nil {
				return nil, err
			}
			out = append(out, raw...)
			w, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if w >= 1<<53 {
				return nil, fmt.Errorf("tree: weight %d overflows integral float64", w)
			}
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(float64(w)))
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// compactMulti re-encodes a comm.Multi container (u32 count; count ×
// (u32 len, bytes)), compacting each part with the scalar methods.
func compactMulti(p []byte) ([]byte, bool) {
	if len(p) < 4 {
		return nil, false
	}
	n := uint64(le32(p))
	if n > 1<<16 {
		return nil, false
	}
	off := uint64(4)
	parts := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		if off+4 > uint64(len(p)) {
			return nil, false
		}
		sz := uint64(le32(p[off:]))
		off += 4
		if off+sz > uint64(len(p)) {
			return nil, false
		}
		parts = append(parts, p[off:off+sz])
		off += sz
	}
	if off != uint64(len(p)) {
		return nil, false
	}
	out := make([]byte, 0, len(p))
	out = appendUvarint(out, n)
	for _, part := range parts {
		s := compactScalar(part)
		out = append(out, s.method)
		out = appendUvarint(out, uint64(len(s.data)))
		out = append(out, s.data...)
	}
	return out, true
}

func expandMulti(c []byte) ([]byte, error) {
	r := &vreader{b: c}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("tree: multi count %d too large", n)
	}
	out := binary.LittleEndian.AppendUint32(nil, uint32(n))
	for i := uint64(0); i < n; i++ {
		m, err := r.byte()
		if err != nil {
			return nil, err
		}
		if m == mMulti || m >= methodCount {
			return nil, fmt.Errorf("tree: multi part %d has bad method %d", i, m)
		}
		ln, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		data, err := r.take(ln)
		if err != nil {
			return nil, err
		}
		part, err := expandSection(section{method: m, data: data})
		if err != nil {
			return nil, fmt.Errorf("tree: multi part %d: %w", i, err)
		}
		if uint64(len(part)) > math.MaxUint32 {
			return nil, fmt.Errorf("tree: multi part %d too large", i)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(part)))
		out = append(out, part...)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// compactScalar tries the non-container methods on one payload, verifying
// the round trip, and falls back to a raw copy.
func compactScalar(p []byte) section {
	type attempt struct {
		method  byte
		compact func([]byte) ([]byte, bool)
	}
	attempts := []attempt{
		{mHull, compactHull},
		{mWeighted, func(b []byte) ([]byte, bool) { return compactBlock(b, 0, true) }},
		{mCollapsed, func(b []byte) ([]byte, bool) { return compactBlock(b, 1, true) }},
		{mPts, func(b []byte) ([]byte, bool) { return compactBlock(b, 0, false) }},
	}
	for _, a := range attempts {
		c, ok := a.compact(p)
		if !ok || len(c) >= len(p) {
			continue
		}
		back, err := expandSection(section{method: a.method, data: c})
		if err != nil || !bytes.Equal(back, p) {
			continue
		}
		return section{method: a.method, data: c}
	}
	return section{method: mRaw, data: p}
}

// compact re-encodes one leaf payload for a batch, proving losslessness on
// every payload before committing to a non-raw method.
func compact(p []byte) section {
	if c, ok := compactMulti(p); ok && len(c) < len(p) {
		if back, err := expandMulti(c); err == nil && bytes.Equal(back, p) {
			return section{method: mMulti, data: c}
		}
	}
	return compactScalar(p)
}

// expandSection recovers the exact leaf payload bytes of a section.
func expandSection(s section) ([]byte, error) {
	switch s.method {
	case mRaw:
		return s.data, nil
	case mHull:
		return expandHull(s.data)
	case mPts:
		return expandBlock(s.data, 0, false)
	case mWeighted:
		return expandBlock(s.data, 0, true)
	case mCollapsed:
		return expandBlock(s.data, 1, true)
	case mMulti:
		return expandMulti(s.data)
	}
	return nil, fmt.Errorf("tree: unknown section method %d", s.method)
}
