// Package jobwire defines the job frame a multi-job coordinator (the
// dpc-server's remote datasets, or a client.Cluster backend) ships to its
// persistent sites before each protocol run, and the site-side factory
// that turns such a frame into the right transport.Handler.
//
// PR 3 introduced job frames carrying a bare core.EncodeConfig record, which
// could only express the point objectives. The envelope here adds a kind
// byte so one connected site fleet serves every protocol in the repository:
//
//   - KindPoint: Algorithm 1/2 over the site's point shard (the config
//     payload stays the exact core.EncodeConfig record, so the byte-parity
//     guarantees of the handshake encoding carry over).
//   - KindUncertain: Algorithm 3 (uncertain median/means/center-pp) over
//     the site's node shard; the config crosses as JSON (float64 values
//     round-trip exactly through encoding/json).
//   - KindCenterG: Algorithm 4 (uncertain center-g) over the node shard.
//
// A legacy frame (raw core.EncodeConfig, first byte = its version number)
// is still decoded as KindPoint, so an old coordinator can drive a new
// site.
package jobwire

import (
	"encoding/json"
	"fmt"

	"dpc/internal/core"
	"dpc/internal/metric"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// Kind discriminates the protocol a job frame starts.
type Kind byte

// Job kinds.
const (
	// KindPoint runs Algorithm 1/2 over point shards.
	KindPoint Kind = 1
	// KindUncertain runs Algorithm 3 over uncertain node shards.
	KindUncertain Kind = 2
	// KindCenterG runs Algorithm 4 over uncertain node shards.
	KindCenterG Kind = 3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPoint:
		return "point"
	case KindUncertain:
		return "uncertain"
	case KindCenterG:
		return "centerg"
	}
	return fmt.Sprintf("jobwire.Kind(%d)", byte(k))
}

// magic is the first byte of an enveloped job frame. It is chosen to be
// distinguishable from a raw core.EncodeConfig record, whose first byte is
// the (small) config wire version.
const magic = 0xDC

// Job is one decoded job frame.
type Job struct {
	Kind Kind

	// Core is the run configuration for KindPoint.
	Core core.Config
	// Obj / Unc parameterize KindUncertain.
	Obj uncertain.Objective
	Unc uncertain.Config
	// CenterG parameterizes KindCenterG.
	CenterG uncertain.CenterGConfig
}

// uncertainWire is the JSON payload of a KindUncertain frame.
type uncertainWire struct {
	Obj uncertain.Objective `json:"obj"`
	Cfg uncertain.Config    `json:"cfg"`
}

// Encode serializes a job frame.
func Encode(j Job) ([]byte, error) {
	switch j.Kind {
	case KindPoint:
		return append([]byte{magic, byte(KindPoint)}, core.EncodeConfig(j.Core)...), nil
	case KindUncertain:
		body, err := json.Marshal(uncertainWire{Obj: j.Obj, Cfg: j.Unc})
		if err != nil {
			return nil, fmt.Errorf("jobwire: %w", err)
		}
		return append([]byte{magic, byte(KindUncertain)}, body...), nil
	case KindCenterG:
		body, err := json.Marshal(j.CenterG)
		if err != nil {
			return nil, fmt.Errorf("jobwire: %w", err)
		}
		return append([]byte{magic, byte(KindCenterG)}, body...), nil
	}
	return nil, fmt.Errorf("jobwire: unknown job kind %v", j.Kind)
}

// Decode parses a job frame. A frame without the envelope magic is treated
// as a legacy raw core.EncodeConfig record (KindPoint).
func Decode(b []byte) (Job, error) {
	if len(b) == 0 {
		return Job{}, fmt.Errorf("jobwire: empty job frame")
	}
	if b[0] != magic {
		cfg, err := core.DecodeConfig(b)
		if err != nil {
			return Job{}, fmt.Errorf("jobwire: legacy job frame: %w", err)
		}
		return Job{Kind: KindPoint, Core: cfg}, nil
	}
	if len(b) < 2 {
		return Job{}, fmt.Errorf("jobwire: truncated job frame")
	}
	body := b[2:]
	switch Kind(b[1]) {
	case KindPoint:
		cfg, err := core.DecodeConfig(body)
		if err != nil {
			return Job{}, fmt.Errorf("jobwire: point job: %w", err)
		}
		return Job{Kind: KindPoint, Core: cfg}, nil
	case KindUncertain:
		var w uncertainWire
		if err := json.Unmarshal(body, &w); err != nil {
			return Job{}, fmt.Errorf("jobwire: uncertain job: %w", err)
		}
		return Job{Kind: KindUncertain, Obj: w.Obj, Unc: w.Cfg}, nil
	case KindCenterG:
		var cfg uncertain.CenterGConfig
		if err := json.Unmarshal(body, &cfg); err != nil {
			return Job{}, fmt.Errorf("jobwire: center-g job: %w", err)
		}
		return Job{Kind: KindCenterG, CenterG: cfg}, nil
	}
	return Job{}, fmt.Errorf("jobwire: unknown job kind %d", b[1])
}

// SiteData is the state a persistent site holds across jobs: its point
// shard (for point jobs), its uncertain node shard plus the shared ground
// set (for uncertain jobs), and an optional long-lived distance cache over
// the point shard. Any subset may be nil; a job frame of a kind the site
// has no data for fails that job loudly instead of computing on garbage.
type SiteData struct {
	Site  int
	Pts   []metric.Point
	Cache *metric.DistCache
	G     *uncertain.Ground
	Nodes []uncertain.Node
}

// ServeJobs runs the whole persistent-site loop over an established
// connection: it verifies the coordinator's multi-job hello marker (a
// site must never be silently paired with a single-run coordinator),
// builds one long-lived distance cache over the point shard when none was
// provided and the shard fits the memoization cap, and serves one handler
// per job frame via Factory until the coordinator closes. wrap, when
// non-nil, decorates each job's handler (dpc-site -v hangs its logging
// off it). It is the single implementation behind dpc-site -persist and
// client.ServeSite.
func ServeJobs(sc *transport.Site, d SiteData, wrap func(job int, blob []byte, h transport.Handler) transport.Handler) error {
	if string(sc.Hello()) != transport.JobsHello {
		return fmt.Errorf("jobwire: coordinator is not multi-job (welcome %q, want %q)",
			sc.Hello(), transport.JobsHello)
	}
	if d.Cache == nil && len(d.Pts) > 0 && len(d.Pts) <= metric.MaxCachePoints {
		d.Cache = metric.NewDistCache(metric.NewPoints(d.Pts))
	}
	factory := Factory(d)
	return sc.ServeJobs(func(job int, blob []byte) (transport.Handler, error) {
		h, err := factory(job, blob)
		if err != nil || wrap == nil {
			return h, err
		}
		return wrap(job, blob, h), nil
	})
}

// Factory returns the transport.Site.ServeJobs factory for a persistent
// site holding d: each job frame is decoded and turned into the matching
// protocol's site handler, closing over the site-held data so datasets and
// caches stay warm across jobs. It is the single implementation behind
// dpc-site -persist, the client.Cluster tests and the dpc-server remote
// e2e tests.
func Factory(d SiteData) func(job int, blob []byte) (transport.Handler, error) {
	// The site's pivot index is as long-lived as its distance cache: built
	// lazily by the first indexed job, reused (same pivot count) by every
	// later one. Jobs on one connection are served sequentially, so the
	// memo needs no locking.
	var siteIx *metric.Index
	ixPivots := -1
	return func(job int, blob []byte) (transport.Handler, error) {
		j, err := Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", job, err)
		}
		switch j.Kind {
		case KindPoint:
			if len(d.Pts) == 0 {
				return nil, fmt.Errorf("job %d: site %d holds no point shard", job, d.Site)
			}
			var oracle metric.Oracle
			if d.Cache != nil {
				oracle = d.Cache
			}
			if j.Core.Index && !j.Core.NoCache {
				m := j.Core.Pivots
				if m <= 0 {
					m = metric.DefaultPivots
				}
				if m > len(d.Pts) {
					m = len(d.Pts)
				}
				if siteIx == nil || ixPivots != m {
					var sp metric.Space
					if d.Cache != nil {
						sp = d.Cache
					} else {
						sp = metric.NewPoints(d.Pts)
					}
					siteIx = metric.NewIndex(sp, metric.IndexOptions{Pivots: m})
					ixPivots = m
				}
				oracle = siteIx
			}
			return core.NewSiteHandlerOracle(j.Core, d.Site, d.Pts, oracle)
		case KindUncertain:
			if len(d.Nodes) == 0 || d.G == nil {
				return nil, fmt.Errorf("job %d: site %d holds no uncertain shard", job, d.Site)
			}
			return uncertain.NewSiteHandler(d.G, d.Nodes, j.Unc, j.Obj, d.Site)
		case KindCenterG:
			if len(d.Nodes) == 0 || d.G == nil {
				return nil, fmt.Errorf("job %d: site %d holds no uncertain shard", job, d.Site)
			}
			return uncertain.NewCenterGSiteHandler(d.G, d.Nodes, j.CenterG, d.Site)
		}
		return nil, fmt.Errorf("job %d: unhandled kind %v", job, j.Kind)
	}
}
