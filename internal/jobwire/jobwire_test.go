package jobwire

import (
	"reflect"
	"testing"

	"dpc/internal/core"
	"dpc/internal/kmedian"
	"dpc/internal/uncertain"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Job{
		{Kind: KindPoint, Core: core.Config{K: 5, T: 40, Objective: core.Center,
			LocalOpts: kmedian.Options{Seed: 9}, Workers: 3}},
		{Kind: KindUncertain, Obj: uncertain.CenterPP,
			Unc: uncertain.Config{K: 2, T: 7, Eps: 0.5, LocalOpts: kmedian.Options{Seed: -4}}},
		{Kind: KindCenterG, CenterG: uncertain.CenterGConfig{K: 3, T: 11, TauBase: 4, OneRound: true}},
	}
	for _, in := range cases {
		b, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: %v", in.Kind, err)
		}
		out, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", in.Kind, err)
		}
		if out.Kind != in.Kind {
			t.Fatalf("kind %v round-tripped to %v", in.Kind, out.Kind)
		}
		switch in.Kind {
		case KindPoint:
			// The point payload reuses the handshake encoding, which
			// re-applies defaults; compare against that canonical form.
			want, err := core.DecodeConfig(core.EncodeConfig(in.Core))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out.Core, want) {
				t.Fatalf("core config %+v, want %+v", out.Core, want)
			}
		case KindUncertain:
			if out.Obj != in.Obj || !reflect.DeepEqual(out.Unc, in.Unc) {
				t.Fatalf("uncertain job %+v/%+v, want %+v/%+v", out.Obj, out.Unc, in.Obj, in.Unc)
			}
		case KindCenterG:
			if !reflect.DeepEqual(out.CenterG, in.CenterG) {
				t.Fatalf("center-g config %+v, want %+v", out.CenterG, in.CenterG)
			}
		}
	}
}

// TestLegacyFrameDecodesAsPoint: a raw core.EncodeConfig blob (the PR 3
// job-frame format) still decodes, as a point job.
func TestLegacyFrameDecodesAsPoint(t *testing.T) {
	cfg := core.Config{K: 4, T: 9, LocalOpts: kmedian.Options{Seed: 2}}
	j, err := Decode(core.EncodeConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if j.Kind != KindPoint || j.Core.K != 4 || j.Core.T != 9 {
		t.Fatalf("legacy frame decoded to %+v", j)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {magic}, {magic, 99, 1, 2}, {magic, byte(KindUncertain), '{'}, {7, 7, 7}} {
		if _, err := Decode(b); err == nil {
			t.Fatalf("decoded garbage %v", b)
		}
	}
}
