// Package comm implements the paper's coordinator model: s sites and one
// coordinator on a star network, computing in synchronous rounds
// (coordinator -> sites, local computation, sites -> coordinator).
//
// Every message is a Payload with a concrete wire format (encoding/binary,
// little endian). Network is a thin accounting layer over a
// transport.Transport: the transport moves the encoded bytes (in-process
// loopback, or framed TCP between real processes) while Network counts the
// exact payload sizes, so the communication columns of Tables 1 and 2 are
// measured on real bytes, not estimated — and a TCP run reports exactly
// the bytes a loopback run does, because fixed frame headers are transport
// overhead and never counted. Per-round site wall clock is the maximum
// site duration (sites run in parallel in the modeled system) and total
// work is the sum; both are measured on the site side of the transport.
package comm

import (
	"context"
	"encoding"
	"fmt"
	"sync"
	"time"

	"dpc/internal/transport"
)

// Payload is a message body with a concrete wire format.
type Payload interface {
	encoding.BinaryMarshaler
}

// Encode marshals a payload to its wire bytes; a nil payload encodes as
// nil, modeling the paper's "could be an empty message".
func Encode(p Payload) ([]byte, error) {
	if p == nil {
		return nil, nil
	}
	return p.MarshalBinary()
}

// mustEncode panics on marshal failure (payload bugs, not runtime input).
func mustEncode(p Payload) []byte {
	b, err := Encode(p)
	if err != nil {
		panic(fmt.Sprintf("comm: payload failed to marshal: %v", err))
	}
	return b
}

// Network accounts one protocol run over a transport. Not safe for
// concurrent use by multiple algorithm runs.
type Network struct {
	tr  transport.Transport
	ctx context.Context // run lifetime; cancellation aborts rounds promptly

	mu       sync.Mutex
	up       []int64 // payload bytes sites -> coordinator, per round
	down     []int64 // payload bytes coordinator -> sites, per round
	rounds   int
	siteWall time.Duration // sum over rounds of max site duration
	siteWork time.Duration // sum of all site durations
	coord    time.Duration
}

// NewOver wraps a connected transport in an accounting layer with no
// cancellation (context.Background()).
func NewOver(tr transport.Transport) *Network {
	return NewOverCtx(context.Background(), tr)
}

// NewOverCtx wraps a connected transport in an accounting layer whose
// rounds abort with ctx.Err() as soon as ctx is cancelled or its deadline
// passes — the hook that makes every protocol driver in the repository
// cancellable without threading a context through each round call.
func NewOverCtx(ctx context.Context, tr transport.Transport) *Network {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Network{tr: tr, ctx: ctx}
}

// Sites returns the number of sites.
func (nw *Network) Sites() int { return nw.tr.Sites() }

// ensureRound grows the per-round byte slices up to index r.
func (nw *Network) ensureRound(r int) {
	for len(nw.up) <= r {
		nw.up = append(nw.up, 0)
		nw.down = append(nw.down, 0)
	}
}

// Broadcast sends p to every site as the downstream message of the
// upcoming round, accounting len(encoding) bytes per site.
func (nw *Network) Broadcast(p Payload) error {
	if err := nw.ctx.Err(); err != nil {
		return err
	}
	b := mustEncode(p)
	nw.mu.Lock()
	round := nw.rounds
	nw.ensureRound(round)
	nw.down[round] += int64(len(b)) * int64(nw.tr.Sites())
	nw.mu.Unlock()
	return nw.tr.Broadcast(round, b)
}

// Send sends p to one site as its downstream message of the upcoming round.
func (nw *Network) Send(site int, p Payload) error {
	if site < 0 || site >= nw.tr.Sites() {
		panic(fmt.Sprintf("comm: no such site %d", site))
	}
	if err := nw.ctx.Err(); err != nil {
		return err
	}
	b := mustEncode(p)
	nw.mu.Lock()
	round := nw.rounds
	nw.ensureRound(round)
	nw.down[round] += int64(len(b))
	nw.mu.Unlock()
	return nw.tr.Send(round, site, b)
}

// SiteRound closes the round: every site receives its downstream message
// (empty when none was sent), computes, and replies. The per-site reply
// bytes are returned for the coordinator to decode; upstream bytes and
// site durations are accounted.
func (nw *Network) SiteRound() ([][]byte, error) {
	nw.mu.Lock()
	round := nw.rounds
	nw.mu.Unlock()
	res, err := nw.tr.Gather(nw.ctx, round)
	if err != nil {
		return nil, err
	}
	var upBytes int64
	var maxDur, sumDur time.Duration
	for i, b := range res.Payloads {
		upBytes += int64(len(b))
		d := res.Work[i]
		sumDur += d
		if d > maxDur {
			maxDur = d
		}
	}
	nw.mu.Lock()
	nw.ensureRound(round)
	nw.up[round] += upBytes
	nw.rounds++
	nw.siteWall += maxDur
	nw.siteWork += sumDur
	nw.mu.Unlock()
	return res.Payloads, nil
}

// Coordinator times a coordinator-side computation.
func (nw *Network) Coordinator(fn func()) {
	t0 := time.Now()
	fn()
	d := time.Since(t0)
	nw.mu.Lock()
	nw.coord += d
	nw.mu.Unlock()
}

// TreeLevel is the physical traffic crossing one level of an aggregation
// tree: Down is coordinator-side bytes fanning out at that level, Up is the
// bytes arriving from the level below (merged batches, not raw site
// payloads). Level 0 is the root's own links to its direct children — the
// coordinator's real inbox/outbox.
type TreeLevel struct {
	Down int64 `json:"down"`
	Up   int64 `json:"up"`
}

// TreeStats attributes a run's traffic to the levels of an aggregation
// tree (internal/tree). The flat Report numbers stay in star terms — the
// exact payload bytes the sites produced, identical across topologies —
// while Levels carries what physically crossed each tier of links, so the
// fan-in win of a tree deployment is measurable without changing what the
// parity tests compare.
type TreeStats struct {
	// Branch is the configured branching factor.
	Branch int `json:"branch"`
	// Leaves is the number of real (data-holding) sites.
	Leaves int `json:"leaves"`
	// Levels[0] is the root's links; Levels[len-1] the leaf links.
	Levels []TreeLevel `json:"levels"`
}

// RootUpBytes is the coordinator's physical inbox: bytes that arrived on
// the root's own links. Zero-valued stats return 0.
func (t TreeStats) RootUpBytes() int64 {
	if len(t.Levels) == 0 {
		return 0
	}
	return t.Levels[0].Up
}

// TreeStatser is implemented by transports that route through an
// aggregation tree and can attribute traffic per level (tree.Root). Report
// picks the stats up through this interface so Network itself stays
// topology-blind.
type TreeStatser interface {
	TreeStats() (TreeStats, bool)
}

// Report is the measured footprint of a distributed run — the unit of
// comparison for the communication and local-time columns of Tables 1-2.
type Report struct {
	Sites     int
	Rounds    int
	UpBytes   int64
	DownBytes int64
	RoundUp   []int64
	RoundDown []int64
	SiteWall  time.Duration // sum over rounds of the slowest site
	SiteWork  time.Duration // total site CPU work
	CoordWork time.Duration

	// Tree carries per-level physical byte attribution when the transport
	// is an aggregation tree; nil for star runs.
	Tree *TreeStats
}

// TotalBytes is all communication in both directions.
func (r Report) TotalBytes() int64 { return r.UpBytes + r.DownBytes }

// Report snapshots the accounting so far.
func (nw *Network) Report() Report {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := Report{
		Sites:     nw.tr.Sites(),
		Rounds:    nw.rounds,
		RoundUp:   append([]int64(nil), nw.up...),
		RoundDown: append([]int64(nil), nw.down...),
		SiteWall:  nw.siteWall,
		SiteWork:  nw.siteWork,
		CoordWork: nw.coord,
	}
	for _, b := range nw.up {
		r.UpBytes += b
	}
	for _, b := range nw.down {
		r.DownBytes += b
	}
	if ts, ok := nw.tr.(TreeStatser); ok {
		if t, ok := ts.TreeStats(); ok {
			r.Tree = &t
		}
	}
	return r
}
