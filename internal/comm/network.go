// Package comm simulates the paper's coordinator model: s sites and one
// coordinator on a star network, computing in synchronous rounds
// (coordinator -> sites, local computation, sites -> coordinator).
//
// Every message is a Payload with a concrete wire format (encoding/binary,
// little endian); the network accounts the exact encoded size, so the
// communication columns of Tables 1 and 2 are measured on real bytes, not
// estimated. Site computations run on one goroutine per site; the per-round
// wall clock is the maximum site duration (sites run in parallel in the
// modeled system) and the total work is the sum.
package comm

import (
	"encoding"
	"fmt"
	"sync"
	"time"
)

// Payload is a message body with a concrete wire format.
type Payload interface {
	encoding.BinaryMarshaler
}

// sizeOf returns the exact encoded size of p (0 for nil payloads, which
// model the paper's "could be an empty message").
func sizeOf(p Payload) int64 {
	if p == nil {
		return 0
	}
	b, err := p.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("comm: payload failed to marshal: %v", err))
	}
	return int64(len(b))
}

// Network is one simulated star network. Not safe for concurrent use by
// multiple algorithm runs; the per-site goroutines inside a round are
// synchronized internally.
type Network struct {
	s        int
	parallel bool

	mu       sync.Mutex
	up       []int64 // bytes sites -> coordinator, per round
	down     []int64 // bytes coordinator -> sites, per round
	rounds   int
	siteWall time.Duration // sum over rounds of max site duration
	siteWork time.Duration // sum of all site durations
	coord    time.Duration
}

// New creates a network with s sites. parallel selects whether site
// computations of a round run concurrently (they do in the modeled system;
// sequential mode exists for the centralized simulation of Section 3.1,
// where total work is what matters).
func New(s int, parallel bool) *Network {
	return &Network{s: s, parallel: parallel}
}

// Sites returns the number of sites.
func (nw *Network) Sites() int { return nw.s }

// ensureRound grows the per-round byte slices up to index r.
func (nw *Network) ensureRound(r int) {
	for len(nw.up) <= r {
		nw.up = append(nw.up, 0)
		nw.down = append(nw.down, 0)
	}
}

// Broadcast models the coordinator sending p to every site at the start of
// the upcoming round.
func (nw *Network) Broadcast(p Payload) {
	sz := sizeOf(p)
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.ensureRound(nw.rounds)
	nw.down[nw.rounds] += sz * int64(nw.s)
}

// Send models the coordinator sending p to one site at the start of the
// upcoming round.
func (nw *Network) Send(site int, p Payload) {
	if site < 0 || site >= nw.s {
		panic(fmt.Sprintf("comm: no such site %d", site))
	}
	sz := sizeOf(p)
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.ensureRound(nw.rounds)
	nw.down[nw.rounds] += sz
}

// SiteRound runs fn on every site (in parallel when enabled) and collects
// the payload each site sends back to the coordinator, closing the round.
// fn receives the site index; a nil payload models an empty message.
func (nw *Network) SiteRound(fn func(site int) Payload) []Payload {
	out := make([]Payload, nw.s)
	durs := make([]time.Duration, nw.s)
	if nw.parallel {
		var wg sync.WaitGroup
		for i := 0; i < nw.s; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				out[i] = fn(i)
				durs[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < nw.s; i++ {
			t0 := time.Now()
			out[i] = fn(i)
			durs[i] = time.Since(t0)
		}
	}
	var upBytes int64
	var maxDur, sumDur time.Duration
	for i := 0; i < nw.s; i++ {
		upBytes += sizeOf(out[i])
		sumDur += durs[i]
		if durs[i] > maxDur {
			maxDur = durs[i]
		}
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.ensureRound(nw.rounds)
	nw.up[nw.rounds] += upBytes
	nw.rounds++
	nw.siteWall += maxDur
	nw.siteWork += sumDur
	return out
}

// Coordinator times a coordinator-side computation.
func (nw *Network) Coordinator(fn func()) {
	t0 := time.Now()
	fn()
	d := time.Since(t0)
	nw.mu.Lock()
	nw.coord += d
	nw.mu.Unlock()
}

// Report is the measured footprint of a distributed run — the unit of
// comparison for the communication and local-time columns of Tables 1-2.
type Report struct {
	Sites     int
	Rounds    int
	UpBytes   int64
	DownBytes int64
	RoundUp   []int64
	RoundDown []int64
	SiteWall  time.Duration // sum over rounds of the slowest site
	SiteWork  time.Duration // total site CPU work
	CoordWork time.Duration
}

// TotalBytes is all communication in both directions.
func (r Report) TotalBytes() int64 { return r.UpBytes + r.DownBytes }

// Report snapshots the accounting so far.
func (nw *Network) Report() Report {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := Report{
		Sites:     nw.s,
		Rounds:    nw.rounds,
		RoundUp:   append([]int64(nil), nw.up...),
		RoundDown: append([]int64(nil), nw.down...),
		SiteWall:  nw.siteWall,
		SiteWork:  nw.siteWork,
		CoordWork: nw.coord,
	}
	for _, b := range nw.up {
		r.UpBytes += b
	}
	for _, b := range nw.down {
		r.DownBytes += b
	}
	return r
}
