package comm

import (
	"bytes"
	"testing"

	"dpc/internal/geom"
	"dpc/internal/metric"
)

// wireTypes enumerates every payload type with representative and
// degenerate values, plus a decoder that re-encodes — the round-trip
// contract is encode(decode(encode(m))) == encode(m) for every m.
type wireType struct {
	name   string
	msgs   []Payload
	decode func([]byte) (Payload, error)
}

func wireTypes() []wireType {
	return []wireType{
		{
			name: "PointsMsg",
			msgs: []Payload{
				PointsMsg{},
				PointsMsg{Pts: []metric.Point{{1, 2}, {3, 4}, {-5, 0.25}}},
				PointsMsg{Pts: []metric.Point{{7}}},
			},
			decode: func(b []byte) (Payload, error) {
				var m PointsMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "WeightedPointsMsg",
			msgs: []Payload{
				WeightedPointsMsg{},
				WeightedPointsMsg{Pts: []metric.Point{{1, 2, 3}}, W: []float64{42}},
			},
			decode: func(b []byte) (Payload, error) {
				var m WeightedPointsMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "HullMsg",
			msgs: []Payload{
				HullMsg{},
				HullMsg{V: []geom.Vertex{{Q: 0, C: 10}, {Q: 7, C: 0.5}}},
			},
			decode: func(b []byte) (Payload, error) {
				var m HullMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "HullsMsg",
			msgs: []Payload{
				HullsMsg{},
				HullsMsg{Hulls: [][]geom.Vertex{{{Q: 0, C: 3}}, {{Q: 0, C: 9}, {Q: 4, C: 1}}, {}}},
			},
			decode: func(b []byte) (Payload, error) {
				var m HullsMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "PivotMsg",
			msgs: []Payload{
				PivotMsg{},
				PivotMsg{I0: -1, Q0: 9, L0: 2.5, Rank: 14, Exhausted: true, Tau: 0.125},
			},
			decode: func(b []byte) (Payload, error) {
				var m PivotMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "Float64sMsg",
			msgs: []Payload{
				Float64sMsg{},
				Float64sMsg{Vals: []float64{1, -2, 0.5}},
			},
			decode: func(b []byte) (Payload, error) {
				var m Float64sMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "NodesMsg",
			msgs: []Payload{
				NodesMsg{},
				NodesMsg{Nodes: []NodeWire{
					{Support: []uint32{0, 3}, Prob: []float64{0.25, 0.75}},
					{Support: []uint32{1}, Prob: []float64{1}},
					{},
				}},
			},
			decode: func(b []byte) (Payload, error) {
				var m NodesMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
		{
			name: "CollapsedMsg",
			msgs: []Payload{
				CollapsedMsg{},
				CollapsedMsg{Y: []metric.Point{{1, 1}, {2, 2}}, Ell: []float64{0.1, 0.2}, W: []float64{3, 4}},
			},
			decode: func(b []byte) (Payload, error) {
				var m CollapsedMsg
				err := m.UnmarshalBinary(b)
				return m, err
			},
		},
	}
}

// TestPayloadRoundTripAll: MarshalBinary and UnmarshalBinary are inverses
// for every payload type — re-encoding a decoded message reproduces the
// wire bytes exactly (so byte accounting is representation-independent).
func TestPayloadRoundTripAll(t *testing.T) {
	for _, wt := range wireTypes() {
		t.Run(wt.name, func(t *testing.T) {
			for i, msg := range wt.msgs {
				b1, err := msg.MarshalBinary()
				if err != nil {
					t.Fatalf("msg %d: marshal: %v", i, err)
				}
				dec, err := wt.decode(b1)
				if err != nil {
					t.Fatalf("msg %d: unmarshal: %v", i, err)
				}
				b2, err := dec.MarshalBinary()
				if err != nil {
					t.Fatalf("msg %d: re-marshal: %v", i, err)
				}
				if !bytes.Equal(b1, b2) {
					t.Fatalf("msg %d: round trip changed bytes:\n%x\n%x", i, b1, b2)
				}
			}
		})
	}
}

// TestPayloadRejectsTruncationAll: every strict prefix and every one-byte
// extension of a valid encoding must be rejected, for every type.
func TestPayloadRejectsTruncationAll(t *testing.T) {
	for _, wt := range wireTypes() {
		t.Run(wt.name, func(t *testing.T) {
			msg := wt.msgs[len(wt.msgs)-1] // the non-trivial instance
			b, err := msg.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < len(b); cut++ {
				if _, err := wt.decode(b[:cut]); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
			if _, err := wt.decode(append(append([]byte(nil), b...), 0)); err == nil {
				t.Fatal("trailing byte accepted")
			}
		})
	}
}

// TestHostileLengthsRejected: decoders must reject length fields claiming
// more elements than the message can hold, before allocating for them.
func TestHostileLengthsRejected(t *testing.T) {
	// PointsMsg claiming 2^32-1 points of dim 2^32-1.
	hostile := appendU32(appendU32(nil, 0xffffffff), 0xffffffff)
	var pm PointsMsg
	if err := pm.UnmarshalBinary(hostile); err == nil {
		t.Fatal("hostile points count accepted")
	}
	// Multi claiming 2^32-1 parts.
	if _, err := SplitMulti(appendU32(nil, 0xffffffff)); err == nil {
		t.Fatal("hostile multi count accepted")
	}
	// NodesMsg with a huge inner count.
	inner := appendU32(appendU32(nil, 1), 0xffffffff)
	var nm NodesMsg
	if err := nm.UnmarshalBinary(inner); err == nil {
		t.Fatal("hostile node support count accepted")
	}
}

// FuzzPayloadDecode feeds arbitrary bytes to every decoder: decoding must
// never panic or over-allocate, and anything that decodes must re-encode
// and decode again cleanly.
func FuzzPayloadDecode(f *testing.F) {
	for kind, wt := range wireTypes() {
		for _, msg := range wt.msgs {
			b, err := msg.MarshalBinary()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(byte(kind), b)
		}
	}
	multiSeed, _ := Multi{Parts: []Payload{Float64sMsg{Vals: []float64{1}}, PointsMsg{}}}.MarshalBinary()
	f.Add(byte(8), multiSeed)

	types := wireTypes()
	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		k := int(kind) % (len(types) + 1)
		if k == len(types) {
			// SplitMulti has no re-encode; parts are opaque.
			parts, err := SplitMulti(data)
			if err == nil && len(parts) > len(data) {
				t.Fatalf("%d parts out of %d bytes", len(parts), len(data))
			}
			return
		}
		wt := types[k]
		dec, err := wt.decode(data)
		if err != nil {
			return // invalid input rejected: fine
		}
		re, err := dec.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: decoded message failed to re-marshal: %v", wt.name, err)
		}
		if _, err := wt.decode(re); err != nil {
			t.Fatalf("%s: re-encoded message rejected: %v", wt.name, err)
		}
	})
}
