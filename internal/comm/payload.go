package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"dpc/internal/geom"
	"dpc/internal/metric"
)

// Wire helpers (little endian throughout).

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("comm: truncated message at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) f64() (float64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("comm: truncated message at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("comm: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// need guards decoders against hostile length fields: the declared element
// count must fit in the bytes actually present, checked before any
// count-sized allocation happens. Wire input can come off a real socket,
// so a corrupt 4-byte count must not demand gigabytes.
func (r *reader) need(count, bytesPer uint64) error {
	if bytesPer == 0 {
		return nil
	}
	// Division, not multiplication: count and bytesPer are both
	// attacker-controlled, and their product can overflow uint64.
	if rem := uint64(len(r.b) - r.off); count > rem/bytesPer {
		return fmt.Errorf("comm: message declares %d elements of %d bytes but only %d bytes follow",
			count, bytesPer, rem)
	}
	return nil
}

// PointsMsg carries raw points (the B-bit objects of the paper; B = 8*dim
// bytes per point here).
type PointsMsg struct {
	Pts []metric.Point
}

// MarshalBinary implements Payload.
func (m PointsMsg) MarshalBinary() ([]byte, error) {
	dim := 0
	if len(m.Pts) > 0 {
		dim = len(m.Pts[0])
		if dim == 0 {
			// Zero-dim points would make elements free on the wire, which
			// breaks the decoder's allocation guard; they carry no
			// information anyway.
			return nil, fmt.Errorf("comm: zero-dimensional points")
		}
	}
	b := make([]byte, 0, 8+len(m.Pts)*dim*8)
	b = appendU32(b, uint32(len(m.Pts)))
	b = appendU32(b, uint32(dim))
	for _, p := range m.Pts {
		if len(p) != dim {
			return nil, fmt.Errorf("comm: ragged point dims %d vs %d", len(p), dim)
		}
		for _, x := range p {
			b = appendF64(b, x)
		}
	}
	return b, nil
}

// UnmarshalBinary decodes a PointsMsg.
func (m *PointsMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	dim, err := r.u32()
	if err != nil {
		return err
	}
	if n > 0 && dim == 0 {
		return fmt.Errorf("comm: %d zero-dimensional points", n)
	}
	if err := r.need(uint64(n), uint64(dim)*8); err != nil {
		return err
	}
	m.Pts = make([]metric.Point, n)
	for i := range m.Pts {
		p := make(metric.Point, dim)
		for d := range p {
			if p[d], err = r.f64(); err != nil {
				return err
			}
		}
		m.Pts[i] = p
	}
	return r.done()
}

// WeightedPointsMsg carries precluster centers with their attached weights
// (Line 15 of Algorithm 1: "the 2k centers ... the number of points
// attached to each center").
type WeightedPointsMsg struct {
	Pts []metric.Point
	W   []float64
}

// MarshalBinary implements Payload.
func (m WeightedPointsMsg) MarshalBinary() ([]byte, error) {
	if len(m.Pts) != len(m.W) {
		return nil, fmt.Errorf("comm: %d points but %d weights", len(m.Pts), len(m.W))
	}
	dim := 0
	if len(m.Pts) > 0 {
		dim = len(m.Pts[0])
	}
	b := make([]byte, 0, 8+len(m.Pts)*(dim+1)*8)
	b = appendU32(b, uint32(len(m.Pts)))
	b = appendU32(b, uint32(dim))
	for i, p := range m.Pts {
		if len(p) != dim {
			return nil, fmt.Errorf("comm: ragged point dims %d vs %d", len(p), dim)
		}
		for _, x := range p {
			b = appendF64(b, x)
		}
		b = appendF64(b, m.W[i])
	}
	return b, nil
}

// UnmarshalBinary decodes a WeightedPointsMsg.
func (m *WeightedPointsMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	dim, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(uint64(n), (uint64(dim)+1)*8); err != nil {
		return err
	}
	m.Pts = make([]metric.Point, n)
	m.W = make([]float64, n)
	for i := range m.Pts {
		p := make(metric.Point, dim)
		for d := range p {
			if p[d], err = r.f64(); err != nil {
				return err
			}
		}
		m.Pts[i] = p
		if m.W[i], err = r.f64(); err != nil {
			return err
		}
	}
	return r.done()
}

// HullMsg carries the lower convex hull a site ships in Round 1 of
// Algorithm 1 (Line 5: "Send the function f_i to the coordinator").
type HullMsg struct {
	V []geom.Vertex
}

// MarshalBinary implements Payload.
func (m HullMsg) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 4+len(m.V)*12)
	b = appendU32(b, uint32(len(m.V)))
	for _, v := range m.V {
		b = appendU32(b, uint32(v.Q))
		b = appendF64(b, v.C)
	}
	return b, nil
}

// UnmarshalBinary decodes a HullMsg.
func (m *HullMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(uint64(n), 12); err != nil {
		return err
	}
	m.V = make([]geom.Vertex, n)
	for i := range m.V {
		q, err := r.u32()
		if err != nil {
			return err
		}
		c, err := r.f64()
		if err != nil {
			return err
		}
		m.V[i] = geom.Vertex{Q: int(q), C: c}
	}
	return r.done()
}

// HullsMsg carries several hulls (Algorithm 4 ships one hull per tau).
type HullsMsg struct {
	Hulls [][]geom.Vertex
}

// MarshalBinary implements Payload.
func (m HullsMsg) MarshalBinary() ([]byte, error) {
	b := appendU32(nil, uint32(len(m.Hulls)))
	for _, h := range m.Hulls {
		sub, err := HullMsg{V: h}.MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = append(b, sub...)
	}
	return b, nil
}

// UnmarshalBinary decodes a HullsMsg.
func (m *HullsMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(uint64(n), 4); err != nil {
		return err
	}
	m.Hulls = make([][]geom.Vertex, n)
	for i := range m.Hulls {
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		if err := r.need(uint64(cnt), 12); err != nil {
			return err
		}
		hull := make([]geom.Vertex, cnt)
		for j := range hull {
			q, err := r.u32()
			if err != nil {
				return err
			}
			c, err := r.f64()
			if err != nil {
				return err
			}
			hull[j] = geom.Vertex{Q: int(q), C: c}
		}
		m.Hulls[i] = hull
	}
	return r.done()
}

// PivotMsg is the coordinator's Round-2 broadcast (Step 9 of Algorithm 1):
// the rank-rho*t slope entry. Tau carries the truncation threshold chosen
// by Algorithm 4 (zero otherwise).
type PivotMsg struct {
	I0, Q0    int
	L0        float64
	Rank      int
	Exhausted bool
	Tau       float64
}

// MarshalBinary implements Payload.
func (m PivotMsg) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 29)
	b = appendU32(b, uint32(int32(m.I0)))
	b = appendU32(b, uint32(m.Q0))
	b = appendF64(b, m.L0)
	b = appendU32(b, uint32(m.Rank))
	if m.Exhausted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendF64(b, m.Tau)
	return b, nil
}

// UnmarshalBinary decodes a PivotMsg.
func (m *PivotMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	i0, err := r.u32()
	if err != nil {
		return err
	}
	m.I0 = int(int32(i0))
	q0, err := r.u32()
	if err != nil {
		return err
	}
	m.Q0 = int(q0)
	if m.L0, err = r.f64(); err != nil {
		return err
	}
	rank, err := r.u32()
	if err != nil {
		return err
	}
	m.Rank = int(rank)
	if r.off >= len(r.b) {
		return fmt.Errorf("comm: truncated pivot")
	}
	m.Exhausted = r.b[r.off] == 1
	r.off++
	if m.Tau, err = r.f64(); err != nil {
		return err
	}
	return r.done()
}

// Float64sMsg carries a vector of scalars.
type Float64sMsg struct {
	Vals []float64
}

// MarshalBinary implements Payload.
func (m Float64sMsg) MarshalBinary() ([]byte, error) {
	b := appendU32(nil, uint32(len(m.Vals)))
	for _, v := range m.Vals {
		b = appendF64(b, v)
	}
	return b, nil
}

// UnmarshalBinary decodes a Float64sMsg.
func (m *Float64sMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(uint64(n), 8); err != nil {
		return err
	}
	m.Vals = make([]float64, n)
	for i := range m.Vals {
		if m.Vals[i], err = r.f64(); err != nil {
			return err
		}
	}
	return r.done()
}

// NodeWire is one uncertain node's full distribution: support indices into
// the shared ground set and their probabilities. Its encoded size is the
// paper's I (the information needed to encode a node).
type NodeWire struct {
	Support []uint32
	Prob    []float64
}

// NodesMsg carries whole uncertain nodes — the expensive payload
// Algorithm 3 avoids and Algorithm 4 pays only for the t outliers
// (the t*I term of Theorem 5.14).
type NodesMsg struct {
	Nodes []NodeWire
}

// MarshalBinary implements Payload.
func (m NodesMsg) MarshalBinary() ([]byte, error) {
	b := appendU32(nil, uint32(len(m.Nodes)))
	for _, nd := range m.Nodes {
		if len(nd.Support) != len(nd.Prob) {
			return nil, fmt.Errorf("comm: node support/prob mismatch")
		}
		b = appendU32(b, uint32(len(nd.Support)))
		for i := range nd.Support {
			b = appendU32(b, nd.Support[i])
			b = appendF64(b, nd.Prob[i])
		}
	}
	return b, nil
}

// UnmarshalBinary decodes a NodesMsg.
func (m *NodesMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(uint64(n), 4); err != nil {
		return err
	}
	m.Nodes = make([]NodeWire, n)
	for i := range m.Nodes {
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		if err := r.need(uint64(cnt), 12); err != nil {
			return err
		}
		nd := NodeWire{Support: make([]uint32, cnt), Prob: make([]float64, cnt)}
		for j := 0; j < int(cnt); j++ {
			if nd.Support[j], err = r.u32(); err != nil {
				return err
			}
			if nd.Prob[j], err = r.f64(); err != nil {
				return err
			}
		}
		m.Nodes[i] = nd
	}
	return r.done()
}

// CollapsedMsg carries the compressed representation of uncertain nodes
// from Algorithm 3: the 1-median y_j (a point, B bytes) and the collapse
// cost ell_j = E[d(sigma(j), y_j)] — 8 extra bytes instead of I.
type CollapsedMsg struct {
	Y   []metric.Point
	Ell []float64
	W   []float64 // attached weight (for precluster centers)
}

// MarshalBinary implements Payload.
func (m CollapsedMsg) MarshalBinary() ([]byte, error) {
	if len(m.Y) != len(m.Ell) || len(m.Y) != len(m.W) {
		return nil, fmt.Errorf("comm: collapsed lengths mismatch")
	}
	dim := 0
	if len(m.Y) > 0 {
		dim = len(m.Y[0])
	}
	b := appendU32(nil, uint32(len(m.Y)))
	b = appendU32(b, uint32(dim))
	for i, p := range m.Y {
		if len(p) != dim {
			return nil, fmt.Errorf("comm: ragged point dims")
		}
		for _, x := range p {
			b = appendF64(b, x)
		}
		b = appendF64(b, m.Ell[i])
		b = appendF64(b, m.W[i])
	}
	return b, nil
}

// UnmarshalBinary decodes a CollapsedMsg.
func (m *CollapsedMsg) UnmarshalBinary(b []byte) error {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return err
	}
	dim, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(uint64(n), (uint64(dim)+2)*8); err != nil {
		return err
	}
	m.Y = make([]metric.Point, n)
	m.Ell = make([]float64, n)
	m.W = make([]float64, n)
	for i := range m.Y {
		p := make(metric.Point, dim)
		for d := range p {
			if p[d], err = r.f64(); err != nil {
				return err
			}
		}
		m.Y[i] = p
		if m.Ell[i], err = r.f64(); err != nil {
			return err
		}
		if m.W[i], err = r.f64(); err != nil {
			return err
		}
	}
	return r.done()
}

// Multi bundles several payloads into one site message (e.g. centers +
// outliers in Round 2 of Algorithm 1). The wire form carries a length
// prefix per part, so the receiver splits it back with SplitMulti and
// decodes each part with the matching message type.
type Multi struct {
	Parts []Payload
}

// MarshalBinary implements Payload.
func (m Multi) MarshalBinary() ([]byte, error) {
	b := appendU32(nil, uint32(len(m.Parts)))
	for _, p := range m.Parts {
		sub, err := p.MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = appendU32(b, uint32(len(sub)))
		b = append(b, sub...)
	}
	return b, nil
}

// SplitMulti splits the wire form of a Multi back into its parts' bytes
// (the inverse of Multi.MarshalBinary, up to decoding the parts).
func SplitMulti(b []byte) ([][]byte, error) {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(uint64(n), 4); err != nil {
		return nil, err
	}
	parts := make([][]byte, 0, n)
	for i := 0; i < int(n); i++ {
		sz, err := r.u32()
		if err != nil {
			return nil, err
		}
		if r.off+int(sz) > len(r.b) {
			return nil, fmt.Errorf("comm: truncated multi part %d", i)
		}
		parts = append(parts, r.b[r.off:r.off+int(sz)])
		r.off += int(sz)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return parts, nil
}
