package comm

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"dpc/internal/geom"
	"dpc/internal/metric"
	"dpc/internal/transport"
)

func TestPointsMsgRoundTrip(t *testing.T) {
	in := PointsMsg{Pts: []metric.Point{{1, 2}, {3, 4}, {-5, 0.25}}}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 8+3*2*8 {
		t.Fatalf("encoded size = %d, want %d", len(b), 8+48)
	}
	var out PointsMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v != %v", in, out)
	}
}

func TestPointsMsgEmpty(t *testing.T) {
	b, err := PointsMsg{}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out PointsMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if len(out.Pts) != 0 {
		t.Fatal("expected empty")
	}
}

func TestPointsMsgRagged(t *testing.T) {
	if _, err := (PointsMsg{Pts: []metric.Point{{1}, {1, 2}}}).MarshalBinary(); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestWeightedPointsMsgRoundTrip(t *testing.T) {
	in := WeightedPointsMsg{Pts: []metric.Point{{1, 2, 3}}, W: []float64{42}}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 8+(3+1)*8 {
		t.Fatalf("encoded size = %d", len(b))
	}
	var out WeightedPointsMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round trip mismatch")
	}
	if _, err := (WeightedPointsMsg{Pts: []metric.Point{{1}}, W: nil}).MarshalBinary(); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestHullMsgRoundTrip(t *testing.T) {
	in := HullMsg{V: []geom.Vertex{{Q: 0, C: 10}, {Q: 7, C: 0.5}}}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4+2*12 {
		t.Fatalf("encoded size = %d", len(b))
	}
	var out HullMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round trip mismatch")
	}
}

func TestHullsMsgRoundTrip(t *testing.T) {
	in := HullsMsg{Hulls: [][]geom.Vertex{
		{{Q: 0, C: 3}},
		{{Q: 0, C: 9}, {Q: 4, C: 1}},
		{},
	}}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out HullsMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if len(out.Hulls) != 3 || len(out.Hulls[1]) != 2 || out.Hulls[1][1].Q != 4 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestPivotMsgRoundTrip(t *testing.T) {
	in := PivotMsg{I0: -1, Q0: 9, L0: 2.5, Rank: 14, Exhausted: true, Tau: 0.125}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out PivotMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFloat64sMsgRoundTrip(t *testing.T) {
	in := Float64sMsg{Vals: []float64{1, -2, 0.5}}
	b, _ := in.MarshalBinary()
	var out Float64sMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round trip mismatch")
	}
}

func TestNodesMsgRoundTrip(t *testing.T) {
	in := NodesMsg{Nodes: []NodeWire{
		{Support: []uint32{0, 3}, Prob: []float64{0.25, 0.75}},
		{Support: []uint32{1}, Prob: []float64{1}},
	}}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// 4 + (4 + 2*12) + (4 + 12)
	if len(b) != 4+4+24+4+12 {
		t.Fatalf("encoded size = %d", len(b))
	}
	var out NodesMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round trip mismatch")
	}
	if _, err := (NodesMsg{Nodes: []NodeWire{{Support: []uint32{1}, Prob: nil}}}).MarshalBinary(); err == nil {
		t.Fatal("mismatched node accepted")
	}
}

func TestCollapsedMsgRoundTrip(t *testing.T) {
	in := CollapsedMsg{
		Y:   []metric.Point{{1, 1}, {2, 2}},
		Ell: []float64{0.1, 0.2},
		W:   []float64{3, 4},
	}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out CollapsedMsg
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round trip mismatch")
	}
}

func TestTruncatedMessagesRejected(t *testing.T) {
	in := PointsMsg{Pts: []metric.Point{{1, 2}}}
	b, _ := in.MarshalBinary()
	for cut := 1; cut < len(b); cut++ {
		var out PointsMsg
		if err := out.UnmarshalBinary(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	var out PointsMsg
	if err := out.UnmarshalBinary(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: Float64sMsg round-trips arbitrary vectors.
func TestFloat64sQuick(t *testing.T) {
	f := func(vals []float64) bool {
		in := Float64sMsg{Vals: vals}
		b, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Float64sMsg
		if err := out.UnmarshalBinary(b); err != nil {
			return false
		}
		if len(out.Vals) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN != NaN; compare bit patterns via encoding again.
			a, b := in.Vals[i], out.Vals[i]
			if a != b && !(a != a && b != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// sitePayloads builds a loopback transport whose site i answers round r
// with fn(i, r)'s encoding.
func sitePayloads(t *testing.T, s int, parallel bool, fn func(site, round int) Payload) *Network {
	t.Helper()
	handlers := make([]transport.Handler, s)
	for i := 0; i < s; i++ {
		i := i
		handlers[i] = func(round int, in []byte) ([]byte, error) {
			return Encode(fn(i, round))
		}
	}
	return NewOver(transport.NewLoopback(handlers, parallel))
}

func TestNetworkAccounting(t *testing.T) {
	payload := PointsMsg{Pts: []metric.Point{{1, 2}}} // 24 bytes
	nw := sitePayloads(t, 3, true, func(site, round int) Payload {
		if round == 0 {
			return payload
		}
		if site == 0 {
			return nil // empty message
		}
		return Float64sMsg{Vals: []float64{3}} // 12 bytes
	})
	if err := nw.Broadcast(Float64sMsg{Vals: []float64{1}}); err != nil { // 12 bytes x 3 sites
		t.Fatal(err)
	}
	if _, err := nw.SiteRound(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Send(1, Float64sMsg{Vals: []float64{1, 2}}); err != nil { // 20 bytes
		t.Fatal(err)
	}
	up, err := nw.SiteRound()
	if err != nil {
		t.Fatal(err)
	}
	if up[0] != nil {
		t.Fatalf("site 0 reply = %v, want nil", up[0])
	}
	r := nw.Report()
	if r.Rounds != 2 {
		t.Fatalf("rounds = %d", r.Rounds)
	}
	if r.DownBytes != 12*3+20 {
		t.Fatalf("down = %d, want %d", r.DownBytes, 12*3+20)
	}
	if r.UpBytes != 24*3+12*2 {
		t.Fatalf("up = %d, want %d", r.UpBytes, 24*3+24)
	}
	if r.RoundUp[0] != 72 || r.RoundUp[1] != 24 {
		t.Fatalf("per-round up = %v", r.RoundUp)
	}
	if r.RoundDown[0] != 36 || r.RoundDown[1] != 20 {
		t.Fatalf("per-round down = %v", r.RoundDown)
	}
	if r.TotalBytes() != r.UpBytes+r.DownBytes {
		t.Fatal("TotalBytes mismatch")
	}
	if r.Sites != 3 {
		t.Fatalf("sites = %d", r.Sites)
	}
}

// TestNetworkAccountingBackendInvariant: the byte accounting must not
// depend on the wire — loopback and real TCP sockets report identically.
func TestNetworkAccountingBackendInvariant(t *testing.T) {
	const s = 3
	newHandlers := func() []transport.Handler {
		handlers := make([]transport.Handler, s)
		for i := 0; i < s; i++ {
			i := i
			handlers[i] = func(round int, in []byte) ([]byte, error) {
				if round == 0 {
					return Encode(PointsMsg{Pts: []metric.Point{{float64(i), 2}, {3, 4}}})
				}
				// Echo-size reply: proves the downstream arrived intact.
				return Encode(Float64sMsg{Vals: make([]float64, len(in))})
			}
		}
		return handlers
	}
	run := func(tr transport.Transport) Report {
		nw := NewOver(tr)
		if _, err := nw.SiteRound(); err != nil {
			t.Fatal(err)
		}
		if err := nw.Broadcast(PivotMsg{I0: 1, Q0: 2, L0: 3, Rank: 4}); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.SiteRound(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return nw.Report()
	}
	loop := run(transport.NewLoopback(newHandlers(), true))
	tcpTr, err := transport.NewLocalTCP(newHandlers())
	if err != nil {
		t.Fatal(err)
	}
	tcp := run(tcpTr)
	if loop.UpBytes != tcp.UpBytes || loop.DownBytes != tcp.DownBytes || loop.Rounds != tcp.Rounds {
		t.Fatalf("loopback (%d up, %d down, %d rounds) != tcp (%d up, %d down, %d rounds)",
			loop.UpBytes, loop.DownBytes, loop.Rounds, tcp.UpBytes, tcp.DownBytes, tcp.Rounds)
	}
	if !reflect.DeepEqual(loop.RoundUp, tcp.RoundUp) || !reflect.DeepEqual(loop.RoundDown, tcp.RoundDown) {
		t.Fatalf("per-round accounting differs: %v/%v vs %v/%v",
			loop.RoundUp, loop.RoundDown, tcp.RoundUp, tcp.RoundDown)
	}
}

func TestNetworkParallelExecution(t *testing.T) {
	var counter int64
	handlers := make([]transport.Handler, 8)
	for i := range handlers {
		handlers[i] = func(round int, in []byte) ([]byte, error) {
			atomic.AddInt64(&counter, 1)
			return nil, nil
		}
	}
	nw := NewOver(transport.NewLoopback(handlers, true))
	if _, err := nw.SiteRound(); err != nil {
		t.Fatal(err)
	}
	if counter != 8 {
		t.Fatalf("ran %d sites", counter)
	}
	if nw.Report().UpBytes != 0 {
		t.Fatal("nil payloads should cost nothing")
	}
}

func TestNetworkSequentialMode(t *testing.T) {
	order := make([]int, 0, 4)
	handlers := make([]transport.Handler, 4)
	for i := range handlers {
		i := i
		handlers[i] = func(round int, in []byte) ([]byte, error) {
			order = append(order, i) // safe: sequential mode
			return nil, nil
		}
	}
	nw := NewOver(transport.NewLoopback(handlers, false))
	if _, err := nw.SiteRound(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
}

func TestSendPanicsOnBadSite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw := NewOver(transport.NewLoopback(make([]transport.Handler, 2), false))
	nw.Send(5, nil)
}

func TestSplitMulti(t *testing.T) {
	a := Float64sMsg{Vals: []float64{1}}
	b := PointsMsg{Pts: []metric.Point{{1, 2}}}
	enc, err := (Multi{Parts: []Payload{a, b}}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	parts, err := SplitMulti(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	var a2 Float64sMsg
	if err := a2.UnmarshalBinary(parts[0]); err != nil {
		t.Fatal(err)
	}
	var b2 PointsMsg
	if err := b2.UnmarshalBinary(parts[1]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, a2) || !reflect.DeepEqual(b, b2) {
		t.Fatal("split round trip mismatch")
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, err := SplitMulti(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMultiPayloadSize(t *testing.T) {
	a := Float64sMsg{Vals: []float64{1}}      // 12
	bm := PointsMsg{Pts: []metric.Point{{1}}} // 16
	m := Multi{Parts: []Payload{a, bm}}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4+4+12+4+16 {
		t.Fatalf("multi size = %d", len(b))
	}
}
