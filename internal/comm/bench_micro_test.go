package comm

import (
	"testing"

	"dpc/internal/metric"
)

func BenchmarkMarshalPoints(b *testing.B) {
	pts := make([]metric.Point, 1000)
	for i := range pts {
		pts[i] = metric.Point{float64(i), float64(i) * 2}
	}
	msg := PointsMsg{Pts: pts}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msg.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripWeighted(b *testing.B) {
	msg := WeightedPointsMsg{
		Pts: make([]metric.Point, 200),
		W:   make([]float64, 200),
	}
	for i := range msg.Pts {
		msg.Pts[i] = metric.Point{float64(i), 1}
		msg.W[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := msg.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out WeightedPointsMsg
		if err := out.UnmarshalBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}
