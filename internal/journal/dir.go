package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DirLog is the segmented, compactable journal store: a directory of
// fixed-format segment files (journal-000001.dpcj, journal-000002.dpcj,
// …, each an independent FileLog-format stream) plus a MANIFEST.json
// naming the live segments in replay order. Appends go to the final
// (active) segment and rotate to a fresh one when it fills; Checkpoint
// rotates unconditionally and writes the caller's snapshot as the new
// segment's first record, after which DropBefore deletes the superseded
// chain. Only the manifest decides liveness: a crash between "create
// segment" and "update manifest" leaves an orphan file that the next
// open deletes, and a crash between Checkpoint and DropBefore replays
// the old chain plus the snapshot — never less than was acknowledged.
type DirLog struct {
	mu     sync.Mutex
	dir    string
	opts   DirOptions
	f      *os.File // active (final) segment, positioned at off
	seg    int      // active segment number
	segs   []int    // live segments in manifest order; segs[len-1] == seg
	seq    uint64
	off    int64 // next append offset within the active segment
	closed bool
}

// DirOptions configures a DirLog.
type DirOptions struct {
	// Sync fsyncs the active segment after every record (power-loss
	// durability, matching FileLog's sync mode).
	Sync bool
	// SegmentBytes is the rotation threshold: an append that would push
	// the active segment past this size rotates first. 0 means the
	// 64 MiB default. A single record larger than the threshold still
	// fits (in its own segment) — rotation never rejects a record the
	// format accepts.
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation threshold when DirOptions leaves
// SegmentBytes zero.
const DefaultSegmentBytes int64 = 64 << 20

// manifestName is the file naming the live segments, updated atomically
// via write-to-temp + rename.
const manifestName = "MANIFEST.json"

// legacyWAL is the pre-segmentation single-file journal name; a
// directory holding one (and no manifest) is migrated in place to
// segment 1 so PR 6 journals replay unchanged.
const legacyWAL = "dpc.wal"

type manifest struct {
	Version  int   `json:"version"`
	Segments []int `json:"segments"`
}

// SegmentPath returns the path of segment n inside dir.
func SegmentPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%06d.dpcj", n))
}

// segmentNumber parses a segment file name, returning 0 for non-segment
// names.
func segmentNumber(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "journal-%06d.dpcj", &n); err != nil || n <= 0 {
		return 0
	}
	if name != fmt.Sprintf("journal-%06d.dpcj", n) {
		return 0
	}
	return n
}

func writeManifest(dir string, segs []int) error {
	data, err := json.Marshal(manifest{Version: 1, Segments: segs})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	// Persist the rename itself; a directory that cannot be fsynced
	// (some filesystems) still works, just with a smaller crash window.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func readManifest(dir string) ([]int, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false, fmt.Errorf("journal: bad manifest: %w", err)
	}
	if m.Version != 1 || len(m.Segments) == 0 {
		return nil, false, fmt.Errorf("journal: bad manifest: version %d, %d segments", m.Version, len(m.Segments))
	}
	for i, s := range m.Segments {
		if s <= 0 || (i > 0 && s <= m.Segments[i-1]) {
			return nil, false, fmt.Errorf("journal: bad manifest: segments %v not strictly increasing", m.Segments)
		}
	}
	return m.Segments, true, nil
}

// createSegment makes a fresh segment file holding only the header and
// fsyncs it, so the file is a valid empty journal before the manifest
// ever names it.
func createSegment(dir string, n int) (*os.File, error) {
	f, err := os.OpenFile(SegmentPath(dir, n), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [12]byte
	copy(hdr[:8], Magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// OpenDir opens (creating if needed) the segmented journal in dir,
// replays every live segment in manifest order, and returns the log
// positioned for appending plus the combined replay result. Records
// carry their RecordRef (segment + offset). A torn tail on the final
// segment is repaired in place, like OpenFile; a short or corrupt
// non-final segment is real corruption (those files are immutable once
// rotated past) and returns the recovered prefix alongside ErrCorrupt.
// A directory holding only a legacy dpc.wal is migrated to segment 1.
func OpenDir(dir string, opts DirOptions) (*DirLog, ReplayResult, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ReplayResult{}, err
	}
	segs, haveManifest, err := readManifest(dir)
	if err != nil {
		return nil, ReplayResult{}, err
	}
	if !haveManifest {
		// No manifest: adopt whatever segments exist (a crash between
		// creating segment 1 and writing the first manifest), after
		// migrating a legacy single-file journal to segment 1.
		if _, err := os.Stat(filepath.Join(dir, legacyWAL)); err == nil {
			if _, err := os.Stat(SegmentPath(dir, 1)); err == nil {
				return nil, ReplayResult{}, fmt.Errorf("journal: %s holds both %s and segment 1 — refusing to guess", dir, legacyWAL)
			}
			if err := os.Rename(filepath.Join(dir, legacyWAL), SegmentPath(dir, 1)); err != nil {
				return nil, ReplayResult{}, err
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, ReplayResult{}, err
		}
		for _, e := range entries {
			if n := segmentNumber(e.Name()); n > 0 {
				segs = append(segs, n)
			}
		}
		sort.Ints(segs)
		if len(segs) == 0 {
			f, err := createSegment(dir, 1)
			if err != nil {
				return nil, ReplayResult{}, err
			}
			f.Close()
			segs = []int{1}
		}
		if err := writeManifest(dir, segs); err != nil {
			return nil, ReplayResult{}, err
		}
	} else {
		// Delete orphan segment files the manifest does not name: either
		// GC'd segments whose unlink crashed mid-way, or a rotation that
		// died before its manifest update.
		live := make(map[int]bool, len(segs))
		for _, s := range segs {
			live[s] = true
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, ReplayResult{}, err
		}
		for _, e := range entries {
			if n := segmentNumber(e.Name()); n > 0 && !live[n] {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}

	var combined ReplayResult
	for i, s := range segs {
		final := i == len(segs)-1
		path := SegmentPath(dir, s)
		res, err := replaySegment(path)
		if err != nil {
			combined.Records = append(combined.Records, stampSeg(res.Records, s)...)
			return nil, combined, fmt.Errorf("%s: %w", path, err)
		}
		if !final && res.Truncated {
			// A rotated-past segment is immutable; a tear there is lost
			// bytes in the middle of the chain, not a crash tail.
			combined.Records = append(combined.Records, stampSeg(res.Records, s)...)
			return nil, combined, fmt.Errorf("%s: %w: non-final segment ends mid-record", path, ErrCorrupt)
		}
		combined.Records = append(combined.Records, stampSeg(res.Records, s)...)
		if final {
			combined.Sealed = res.Sealed
			combined.Truncated = res.Truncated
			combined.GoodBytes = res.GoodBytes
		}
	}

	active := segs[len(segs)-1]
	f, err := os.OpenFile(SegmentPath(dir, active), os.O_RDWR, 0o644)
	if err != nil {
		return nil, combined, err
	}
	if combined.Truncated {
		if err := f.Truncate(combined.GoodBytes); err != nil {
			f.Close()
			return nil, combined, err
		}
	}
	if _, err := f.Seek(combined.GoodBytes, 0); err != nil {
		f.Close()
		return nil, combined, err
	}
	l := &DirLog{dir: dir, opts: opts, f: f, seg: active, segs: segs, off: combined.GoodBytes}
	for _, rec := range combined.Records {
		if rec.Seq > l.seq {
			l.seq = rec.Seq
		}
	}
	return l, combined, nil
}

// replaySegment replays one segment file.
func replaySegment(path string) (ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayResult{}, err
	}
	defer f.Close()
	return Replay(f)
}

func stampSeg(recs []Record, seg int) []Record {
	for i := range recs {
		recs[i].Seg = seg
	}
	return recs
}

// Append implements Log, rotating to a fresh segment first when the
// active one would grow past SegmentBytes.
func (l *DirLog) Append(kind Kind, payload []byte) (RecordRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return RecordRef{}, ErrClosed
	}
	frame, err := frameRecord(kind, l.seq+1, payload)
	if err != nil {
		return RecordRef{}, err
	}
	if l.off > 12 && l.off+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return RecordRef{}, err
		}
		// Re-frame under the same seq (rotation does not consume one).
		frame, err = frameRecord(kind, l.seq+1, payload)
		if err != nil {
			return RecordRef{}, err
		}
	}
	return l.writeFrameLocked(frame)
}

// writeFrameLocked appends one pre-built frame to the active segment.
func (l *DirLog) writeFrameLocked(frame []byte) (RecordRef, error) {
	if _, err := l.f.Write(frame); err != nil {
		return RecordRef{}, fmt.Errorf("journal: append: %w", err)
	}
	l.seq++
	ref := RecordRef{Seg: l.seg, Off: l.off}
	l.off += int64(len(frame))
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return RecordRef{}, err
		}
	}
	return ref, nil
}

// rotateLocked creates segment seg+1, fsyncs it, publishes it in the
// manifest, and makes it the active segment. The old segment file is
// synced and closed first so everything rotated past is durable before
// the manifest names its successor.
func (l *DirLog) rotateLocked() error {
	next := l.seg + 1
	if err := l.f.Sync(); err != nil {
		return err
	}
	nf, err := createSegment(l.dir, next)
	if err != nil {
		return err
	}
	segs := append(append([]int(nil), l.segs...), next)
	if err := writeManifest(l.dir, segs); err != nil {
		nf.Close()
		os.Remove(SegmentPath(l.dir, next))
		return err
	}
	l.f.Close()
	l.f, l.seg, l.segs, l.off = nf, next, segs, 12
	return nil
}

// Checkpoint implements Compactor: rotate unconditionally and write
// payload as the first record of the fresh segment. On return the
// record is durable (fsynced regardless of Sync mode) and addressable;
// the caller may then DropBefore its segment.
func (l *DirLog) Checkpoint(kind Kind, payload []byte) (RecordRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return RecordRef{}, ErrClosed
	}
	frame, err := frameRecord(kind, l.seq+1, payload)
	if err != nil {
		return RecordRef{}, err
	}
	if err := l.rotateLocked(); err != nil {
		return RecordRef{}, err
	}
	ref, err := l.writeFrameLocked(frame)
	if err != nil {
		return ref, err
	}
	if !l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return ref, err
		}
	}
	return ref, nil
}

// DropBefore implements Compactor: removes every segment numbered below
// seg — manifest first (the commit point), then the files. A crash
// between the two leaves orphans the next open deletes.
func (l *DirLog) DropBefore(seg int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	var keep, drop []int
	for _, s := range l.segs {
		if s < seg && s != l.seg {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	if len(drop) == 0 {
		return 0, nil
	}
	if err := writeManifest(l.dir, keep); err != nil {
		return 0, err
	}
	l.segs = keep
	for _, s := range drop {
		os.Remove(SegmentPath(l.dir, s))
	}
	return len(drop), nil
}

// Segments implements Compactor.
func (l *DirLog) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Seal implements Log: appends the clean-shutdown marker to the active
// segment, syncs, and closes.
func (l *DirLog) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.seq++
	if _, err := writeRecord(l.f, KindSeal, l.seq, nil); err != nil {
		l.f.Close()
		return fmt.Errorf("journal: seal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Close implements Log (no seal — the crash path).
func (l *DirLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// ReadRecordAt reads the single record at ref from the segment store in
// dir — O(record), no replay. It verifies the segment header and the
// record checksum, so a stale ref (pointing into a GC'd or rewritten
// segment) fails loudly instead of returning bytes from the wrong
// record. Safe concurrently with an appending DirLog: records are
// immutable once written and frames land in one write.
func ReadRecordAt(dir string, ref RecordRef) (Record, error) {
	if ref.Seg <= 0 {
		return Record{}, fmt.Errorf("journal: ReadRecordAt: ref %+v has no durable segment", ref)
	}
	f, err := os.Open(SegmentPath(dir, ref.Seg))
	if err != nil {
		return Record{}, err
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return Record{}, fmt.Errorf("%w: missing header: %v", ErrNotJournal, err)
	}
	if [8]byte(hdr[:8]) != Magic {
		return Record{}, fmt.Errorf("%w (magic %q)", ErrNotJournal, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return Record{}, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersion, v, Version)
	}
	if ref.Off < 12 {
		return Record{}, fmt.Errorf("journal: ReadRecordAt: offset %d inside header", ref.Off)
	}
	var rh [13]byte
	if _, err := f.ReadAt(rh[:], ref.Off); err != nil {
		return Record{}, fmt.Errorf("%w: record header at %d: %v", ErrCorrupt, ref.Off, err)
	}
	plen := binary.LittleEndian.Uint32(rh[9:13])
	if plen > maxPayload {
		return Record{}, fmt.Errorf("%w: record at %d declares a %d-byte payload (cap %d)", ErrCorrupt, ref.Off, plen, maxPayload)
	}
	buf := make([]byte, int(plen)+8)
	if _, err := f.ReadAt(buf, ref.Off+13); err != nil {
		return Record{}, fmt.Errorf("%w: record body at %d: %v", ErrCorrupt, ref.Off, err)
	}
	sum := fnv.New64a()
	sum.Write(rh[:])
	sum.Write(buf[:plen])
	if got := binary.LittleEndian.Uint64(buf[plen:]); got != sum.Sum64() {
		return Record{}, fmt.Errorf("%w: record at %d checksum mismatch (file %x, computed %x)", ErrCorrupt, ref.Off, got, sum.Sum64())
	}
	return Record{
		Kind:    Kind(rh[0]),
		Seq:     binary.LittleEndian.Uint64(rh[1:9]),
		Payload: buf[:plen:plen],
		Seg:     ref.Seg,
		Off:     ref.Off,
	}, nil
}
