package journal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedLog builds a valid journal stream from (kind, payload) pairs.
func fuzzSeedLog(seal bool, payloads ...string) []byte {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(Version))
	seq := uint64(0)
	for i, p := range payloads {
		seq++
		writeRecord(&buf, Kind(1+i%6), seq, []byte(p))
	}
	if seal {
		seq++
		writeRecord(&buf, KindSeal, seq, nil)
	}
	return buf.Bytes()
}

// FuzzReplay hammers the replayer with random truncations and bit flips
// over valid multi-record (and snapshot-bearing) logs. Invariants under
// any input: no panic; crash semantics are exclusive (never Sealed and
// Truncated together); GoodBytes never exceeds the input; and replay is
// prefix-deterministic — re-replaying exactly the bytes Replay accepted
// yields the same records with no truncation and no error, so no record
// past a corruption is ever returned.
func FuzzReplay(f *testing.F) {
	f.Add(fuzzSeedLog(false))
	f.Add(fuzzSeedLog(true))
	f.Add(fuzzSeedLog(false, "alpha", "beta", "gamma", "delta"))
	f.Add(fuzzSeedLog(true, "one", "two", "three"))
	// A snapshot-shaped log: big first record (checkpoint) + suffix.
	f.Add(fuzzSeedLog(false, string(bytes.Repeat([]byte("snapshot"), 200)), "suffix-a", "suffix-b"))
	// Mid-stream seal cleared by later records.
	sealMid := fuzzSeedLog(true, "pre")
	sealMid = append(sealMid, fuzzSeedLog(false, "post")[12:]...)
	f.Add(sealMid)
	f.Add([]byte{})
	f.Add(Magic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Replay(bytes.NewReader(data))
		if res.Sealed && res.Truncated {
			t.Fatalf("Sealed and Truncated both set (records=%d)", len(res.Records))
		}
		if res.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d exceeds input %d", res.GoodBytes, len(data))
		}
		if err != nil {
			return
		}
		if res.GoodBytes < 12 {
			t.Fatalf("successful replay with GoodBytes %d < header size", res.GoodBytes)
		}
		// Prefix determinism: the accepted prefix must replay to the same
		// records, cleanly. This is what guarantees no record past a
		// truncation/corruption ever leaks into Records.
		res2, err2 := Replay(bytes.NewReader(data[:res.GoodBytes]))
		if err2 != nil {
			t.Fatalf("replaying the accepted prefix failed: %v", err2)
		}
		if res2.Truncated {
			t.Fatal("accepted prefix replays as truncated")
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("prefix replay: %d records vs %d", len(res2.Records), len(res.Records))
		}
		for i := range res.Records {
			a, b := res.Records[i], res2.Records[i]
			if a.Kind != b.Kind || a.Seq != b.Seq || a.Off != b.Off || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("prefix replay diverges at record %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
