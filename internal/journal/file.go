package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileLog is the durable file-backed Log. One file holds the whole
// journal; OpenFile replays it (recovering a crash-truncated tail by
// cutting the file back to the last complete record) and then appends in
// place. Appends serialize under a mutex and hit the file directly — no
// cross-record buffering — so a record handed to the OS survives a
// process kill; Sync additionally fsyncs every record for power-loss
// durability.
type FileLog struct {
	mu     sync.Mutex
	f      *os.File
	seq    uint64
	off    int64 // file offset of the next append (record-boundary aligned)
	sync   bool
	closed bool
}

// OpenFile opens (creating if needed) the journal at path, replays its
// records, and returns the log positioned for appending plus the replay
// result. A truncated tail is repaired in place; a corrupt mid-file
// record returns the recovered prefix alongside ErrCorrupt with no log
// (refusing to append after untrustworthy bytes). With sync set, every
// Append fsyncs.
func OpenFile(path string, sync bool) (*FileLog, ReplayResult, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, ReplayResult{}, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayResult{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, ReplayResult{}, err
	}
	var res ReplayResult
	if st.Size() == 0 {
		// Fresh journal: write the header now, so a file that exists is
		// always a valid (possibly empty) journal.
		var hdr [12]byte
		copy(hdr[:8], Magic[:])
		binary.LittleEndian.PutUint32(hdr[8:], Version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, res, err
		}
		res.GoodBytes = 12
	} else {
		res, err = Replay(f)
		if err != nil {
			f.Close()
			return nil, res, fmt.Errorf("%s: %w", path, err)
		}
		if res.Truncated || res.GoodBytes < st.Size() {
			// Cut the torn tail (or a trailing seal that the next life
			// supersedes anyway is kept — GoodBytes includes seals) so the
			// next append starts on a record boundary.
			if err := f.Truncate(res.GoodBytes); err != nil {
				f.Close()
				return nil, res, err
			}
		}
	}
	if _, err := f.Seek(res.GoodBytes, 0); err != nil {
		f.Close()
		return nil, res, err
	}
	l := &FileLog{f: f, off: res.GoodBytes, sync: sync}
	for i := range res.Records {
		res.Records[i].Seg = 1
		if res.Records[i].Seq > l.seq {
			l.seq = res.Records[i].Seq
		}
	}
	return l, res, nil
}

// Append implements Log. A single-file log is its own segment 1, so refs
// stay meaningful if the file is later migrated into a DirLog.
func (l *FileLog) Append(kind Kind, payload []byte) (RecordRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return RecordRef{}, ErrClosed
	}
	l.seq++
	n, err := writeRecord(l.f, kind, l.seq, payload)
	if err != nil {
		l.seq--
		return RecordRef{}, fmt.Errorf("journal: append: %w", err)
	}
	ref := RecordRef{Seg: 1, Off: l.off}
	l.off += int64(n)
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return RecordRef{}, err
		}
	}
	return ref, nil
}

// Seal implements Log: appends the clean-shutdown marker, syncs, and
// closes. Idempotent with Close.
func (l *FileLog) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.seq++
	if _, err := writeRecord(l.f, KindSeal, l.seq, nil); err != nil {
		l.f.Close()
		return fmt.Errorf("journal: seal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Close implements Log (no seal — the crash path).
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// MemLog is an in-memory Log for tests and journal-less embedding: it
// records appends and loses them with the process, which is exactly what
// a test asserting replay semantics wants to simulate.
type MemLog struct {
	mu      sync.Mutex
	seq     uint64
	records []Record
	sealed  bool
	closed  bool
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log. Refs index into the in-memory slice (Seg stays
// 0 — a MemLog has no durable address space).
func (m *MemLog) Append(kind Kind, payload []byte) (RecordRef, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return RecordRef{}, ErrClosed
	}
	m.seq++
	m.records = append(m.records, Record{Kind: kind, Seq: m.seq, Payload: append([]byte(nil), payload...), Off: int64(len(m.records))})
	return RecordRef{Seg: 0, Off: int64(len(m.records) - 1)}, nil
}

// Seal implements Log.
func (m *MemLog) Seal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed, m.sealed = true, true
	return nil
}

// Close implements Log.
func (m *MemLog) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Records snapshots the appended records (tests).
func (m *MemLog) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.records...)
}

// Sealed reports whether Seal ran (tests).
func (m *MemLog) Sealed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sealed
}
