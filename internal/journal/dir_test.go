package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestSealThenTornTailIsNotSealed pins satellite-bug semantics: a stream
// whose last intact record is a seal but which ends mid-record (crash
// during a post-restart append) is a crash, not a clean shutdown —
// Sealed must be false whenever Truncated is true.
func TestSealThenTornTailIsNotSealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dpc.wal")
	l, _, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 0)
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// Simulate a next life appending past the seal and dying mid-record:
	// hand-frame a record and write only part of it.
	frame, err := frameRecord(3, 99, []byte("torn-after-seal"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, res, err := OpenFile(path, false)
	if err != nil {
		t.Fatalf("open seal+torn journal: %v", err)
	}
	if !res.Truncated {
		t.Error("torn tail after seal not reported truncated")
	}
	if res.Sealed {
		t.Error("Sealed=true on a stream ending torn: crash semantics must win")
	}
	if len(res.Records) != 2 {
		t.Errorf("recovered %d records, want 2", len(res.Records))
	}
}

func TestDirLogRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: "payload-%03d" records are 13+11+8 = 32 bytes, so a
	// 100-byte threshold rotates every third append or so.
	l, res, err := OpenDir(dir, DirOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatalf("open fresh dir: %v", err)
	}
	if len(res.Records) != 0 || res.Sealed || res.Truncated {
		t.Fatalf("fresh dir replayed %+v", res)
	}
	refs := make([]RecordRef, 0, 10)
	for i := 0; i < 10; i++ {
		ref, err := l.Append(Kind(1+i%3), fmt.Appendf(nil, "payload-%03d", i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		refs = append(refs, ref)
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("10 x 32-byte records across 100-byte segments: %d segments, want >= 3", got)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}

	l2, res2, err := OpenDir(dir, DirOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !res2.Sealed {
		t.Error("sealed dir log not reported sealed")
	}
	if len(res2.Records) != 10 {
		t.Fatalf("replayed %d records, want 10", len(res2.Records))
	}
	for i, rec := range res2.Records {
		if want := fmt.Sprintf("payload-%03d", i); string(rec.Payload) != want {
			t.Errorf("record %d payload %q, want %q", i, rec.Payload, want)
		}
		if rec.Ref() != refs[i] {
			t.Errorf("record %d replayed ref %+v, appended ref %+v", i, rec.Ref(), refs[i])
		}
		if i > 0 && rec.Seq <= res2.Records[i-1].Seq {
			t.Errorf("record %d seq not increasing", i)
		}
	}
	// Every appended ref must read back the exact record, concurrently
	// with the live appender.
	for i, ref := range refs {
		rec, err := ReadRecordAt(dir, ref)
		if err != nil {
			t.Fatalf("ReadRecordAt(%+v): %v", ref, err)
		}
		if want := fmt.Sprintf("payload-%03d", i); string(rec.Payload) != want {
			t.Errorf("ref %d read back %q, want %q", i, rec.Payload, want)
		}
	}
	l2.Close()
}

func TestDirLogCheckpointAndDrop(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir, DirOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, fmt.Appendf(nil, "payload-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	ref, err := l.Checkpoint(7, []byte("snapshot-state"))
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ref.Seg <= before {
		t.Fatalf("checkpoint landed in segment %d, want a fresh one past %d", ref.Seg, before)
	}
	if ref.Off != 12 {
		t.Errorf("checkpoint record at offset %d, want 12 (first record of its segment)", ref.Off)
	}
	// Post-snapshot suffix.
	if _, err := l.Append(1, []byte("suffix-record")); err != nil {
		t.Fatal(err)
	}
	dropped, err := l.DropBefore(ref.Seg)
	if err != nil {
		t.Fatalf("drop: %v", err)
	}
	if dropped != before {
		t.Errorf("dropped %d segments, want %d", dropped, before)
	}
	for s := 1; s <= before; s++ {
		if _, err := os.Stat(SegmentPath(dir, s)); !os.IsNotExist(err) {
			t.Errorf("superseded segment %d still on disk (err=%v)", s, err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}

	// Replay is snapshot + suffix only.
	_, res, err := OpenDir(dir, DirOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("replayed %d records after compaction, want 2 (snapshot + suffix)", len(res.Records))
	}
	if res.Records[0].Kind != 7 || string(res.Records[0].Payload) != "snapshot-state" {
		t.Errorf("first replayed record is not the snapshot: %+v", res.Records[0])
	}
	if string(res.Records[1].Payload) != "suffix-record" {
		t.Errorf("second replayed record is not the suffix: %+v", res.Records[1])
	}
	if res.Records[0].Ref() != ref {
		t.Errorf("snapshot replayed at %+v, checkpointed at %+v", res.Records[0].Ref(), ref)
	}
	// A stale ref into a dropped segment fails loudly, never silently
	// returns wrong bytes.
	if _, err := ReadRecordAt(dir, RecordRef{Seg: 1, Off: 12}); err == nil {
		t.Error("ReadRecordAt on a GC'd segment succeeded")
	}
}

// TestDirLogMigratesLegacyWAL: a PR 6 single-file journal becomes
// segment 1 on first DirLog open, replaying identically.
func TestDirLogMigratesLegacyWAL(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := OpenFile(filepath.Join(dir, legacyWAL), false)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, fl, 5, 0)
	if err := fl.Seal(); err != nil {
		t.Fatal(err)
	}

	l, res, err := OpenDir(dir, DirOptions{})
	if err != nil {
		t.Fatalf("open dir over legacy wal: %v", err)
	}
	defer l.Close()
	if len(res.Records) != 5 || !res.Sealed {
		t.Fatalf("migrated replay: %d records sealed=%t, want 5 sealed", len(res.Records), res.Sealed)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyWAL)); !os.IsNotExist(err) {
		t.Errorf("legacy wal still present after migration (err=%v)", err)
	}
	if _, err := os.Stat(SegmentPath(dir, 1)); err != nil {
		t.Errorf("segment 1 missing after migration: %v", err)
	}
	// Appends continue with climbing seqs.
	ref, err := l.Append(2, []byte("post-migration"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Seg != 1 {
		t.Errorf("post-migration append landed in segment %d, want 1", ref.Seg)
	}
	rec, err := ReadRecordAt(dir, ref)
	if err != nil || string(rec.Payload) != "post-migration" {
		t.Errorf("read back post-migration record: %v, %+v", err, rec)
	}
}

// TestDirLogOrphanSegmentsDeleted: segment files the manifest does not
// name (a rotation or GC that crashed mid-way) are removed at open.
func TestDirLogOrphanSegmentsDeleted(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir, DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	l.Close()
	// Plant an orphan: a valid-looking segment 9 no manifest names.
	f, err := createSegment(dir, 9)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, res, err := OpenDir(dir, DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(res.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(res.Records))
	}
	if _, err := os.Stat(SegmentPath(dir, 9)); !os.IsNotExist(err) {
		t.Errorf("orphan segment survived open (err=%v)", err)
	}
}

// TestDirLogTornFinalSegmentRepairs: the crash tail repairs exactly like
// FileLog's, but only on the final segment — a torn middle segment is
// corruption.
func TestDirLogTornTailSemantics(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenDir(dir, DirOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, fmt.Appendf(nil, "payload-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if segs < 3 {
		t.Fatalf("want >= 3 segments, got %d", segs)
	}
	l.Close()

	// Tear the final segment's tail: recovered, truncated, appendable.
	last := SegmentPath(dir, segs)
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, res, err := OpenDir(dir, DirOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatalf("open with torn final segment: %v", err)
	}
	if !res.Truncated || res.Sealed {
		t.Errorf("torn final segment: truncated=%t sealed=%t, want true/false", res.Truncated, res.Sealed)
	}
	if len(res.Records) != 9 {
		t.Errorf("recovered %d records, want 9", len(res.Records))
	}
	if _, err := l2.Append(1, []byte("after-repair")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l2.Close()

	// Tear a middle segment: corruption, recovered prefix + ErrCorrupt.
	mid := SegmentPath(dir, 1)
	raw, err = os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir, DirOptions{SegmentBytes: 100}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn middle segment: err = %v, want ErrCorrupt", err)
	}
}
