package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends n records with distinguishable payloads.
func appendN(t *testing.T, l Log, n, base int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(Kind(1+i%3), fmt.Appendf(nil, "payload-%03d", base+i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j", "dpc.wal")
	l, res, err := OpenFile(path, false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(res.Records) != 0 || res.Sealed || res.Truncated {
		t.Fatalf("fresh journal replayed %+v", res)
	}
	appendN(t, l, 7, 0)
	if err := l.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}

	l2, res2, err := OpenFile(path, false)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !res2.Sealed {
		t.Errorf("sealed journal not reported sealed")
	}
	if len(res2.Records) != 7 {
		t.Fatalf("replayed %d records, want 7", len(res2.Records))
	}
	for i, rec := range res2.Records {
		if want := fmt.Sprintf("payload-%03d", i); string(rec.Payload) != want {
			t.Errorf("record %d payload %q, want %q", i, rec.Payload, want)
		}
		if rec.Kind != Kind(1+i%3) {
			t.Errorf("record %d kind %d, want %d", i, rec.Kind, 1+i%3)
		}
		if i > 0 && rec.Seq <= res2.Records[i-1].Seq {
			t.Errorf("record %d seq %d not increasing past %d", i, rec.Seq, res2.Records[i-1].Seq)
		}
	}
	// Sequence numbers keep climbing across lives: a third life must see
	// strictly larger seqs on the appended records.
	appendN(t, l2, 2, 7)
	if err := l2.Close(); err != nil { // crash path: no seal
		t.Fatalf("close: %v", err)
	}
	_, res3, err := OpenFile(path, false)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if res3.Sealed {
		t.Errorf("unsealed (crashed) journal reported sealed")
	}
	if len(res3.Records) != 9 {
		t.Fatalf("replayed %d records after append life, want 9", len(res3.Records))
	}
	if res3.Records[8].Seq <= res3.Records[6].Seq {
		t.Errorf("seq did not advance across lives: %d then %d", res3.Records[6].Seq, res3.Records[8].Seq)
	}
}

// TestTruncatedTailRecovers mirrors the spill reader's corruption tests
// for the WAL's crash signature: chopping bytes off the tail at every
// possible offset of the final record must recover exactly the records
// before it, and the repaired file must accept appends again.
func TestTruncatedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	l, _, err := OpenFile(full, false)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// The last record is 13 (header) + 11 (payload "payload-004") + 8
	// (check) bytes. Cut at every offset inside it.
	recBytes := 13 + 11 + 8
	for cut := 1; cut < recBytes; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%02d.wal", cut))
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, res, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if !res.Truncated {
			t.Errorf("cut %d: truncation not reported", cut)
		}
		if len(res.Records) != 4 {
			t.Fatalf("cut %d: recovered %d records, want 4", cut, len(res.Records))
		}
		// The repaired journal must keep working: append and re-replay.
		if _, err := l2.Append(9, []byte("after-repair")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, res2, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("cut %d: reopen after repair: %v", cut, err)
		}
		if len(res2.Records) != 5 || string(res2.Records[4].Payload) != "after-repair" {
			t.Fatalf("cut %d: post-repair replay got %d records", cut, len(res2.Records))
		}
	}
}

// TestFlippedChecksumRejected: a record that is fully present but fails
// its checksum is corruption, not a crash — replay must surface the typed
// error, and OpenFile must refuse to append after it.
func TestFlippedChecksumRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dpc.wal")
	l, _, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle record's payload (past the header and
	// first record).
	rec := 13 + 11 + 8
	raw[12+rec+13+4] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Replay(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of flipped record: err = %v, want ErrCorrupt", err)
	}
	if len(res.Records) != 1 {
		t.Errorf("replay recovered %d records before the corruption, want 1", len(res.Records))
	}
	if _, _, err := OpenFile(path, false); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenFile on corrupt journal: err = %v, want ErrCorrupt", err)
	}
}

// TestMixedVersionRejected: files from a different format version fail
// with the typed version error, never a partial parse.
func TestMixedVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dpc.wal")
	l, _, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[8:12], Version+1)
	if _, err := Replay(bytes.NewReader(raw)); !errors.Is(err, ErrVersion) {
		t.Fatalf("replay of v%d file: err = %v, want ErrVersion", Version+1, err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(path, false); !errors.Is(err, ErrVersion) {
		t.Fatalf("OpenFile on v%d file: err = %v, want ErrVersion", Version+1, err)
	}

	// Not a journal at all.
	if err := os.WriteFile(path, []byte("definitely not a journal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(path, false); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("OpenFile on garbage: err = %v, want ErrNotJournal", err)
	}
}

// TestOversizedPayloadRejected: hostile length fields fail cleanly.
func TestOversizedPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(Version))
	var hdr [13]byte
	hdr[0] = 1
	binary.LittleEndian.PutUint32(hdr[9:13], maxPayload+1)
	buf.Write(hdr[:])
	if _, err := Replay(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized payload: err = %v, want ErrCorrupt", err)
	}
}

func TestMemLog(t *testing.T) {
	m := NewMemLog()
	appendN(t, m, 3, 0)
	if err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if !m.Sealed() {
		t.Error("seal not recorded")
	}
	if _, err := m.Append(1, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("append after seal: %v, want ErrClosed", err)
	}
	if got := m.Records(); len(got) != 3 || string(got[1].Payload) != "payload-001" {
		t.Errorf("records = %v", got)
	}
}
