// Package journal is the durable control plane's write-ahead log: an
// append-only, versioned, per-record-checksummed record stream that the
// serving layer writes dataset mutations, job submissions, state
// transitions and finished results into, and replays on start so a
// restarted server resumes its queue and re-serves completed results
// without recomputing anything.
//
// The format borrows the versioned/checksummed idiom of
// internal/metric/spill.go, but checksums every record individually
// instead of the whole file: a write-ahead log's tail is cut mid-record
// whenever the process dies between write and close, and the reader must
// recover everything before the cut rather than rejecting the file.
// The two corruption classes are therefore distinguished deliberately:
//
//   - a truncated tail (the file ends before a record completes) is the
//     expected crash signature — Replay returns every record before the
//     cut and reports Truncated, and OpenFile additionally truncates the
//     file back to the last good record so appends continue cleanly;
//   - a record that is fully present but fails its checksum (bit rot,
//     concurrent writers, hostile edit) is real corruption — Replay stops
//     there and returns ErrCorrupt, because records after a corrupt one
//     can no longer be trusted to be the records that were written.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte  "DPCJRNL\x00"
//	version  uint32   format version (currently 1)
//	records:
//	  kind   uint8    caller-defined record kind (see serve's vocabulary)
//	  seq    uint64   writer-assigned sequence number, strictly increasing
//	  plen   uint32   payload length in bytes
//	  payload[plen]
//	  check  uint64   FNV-1a over kind, seq, plen and payload bytes
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Magic prefixes every journal file.
var Magic = [8]byte{'D', 'P', 'C', 'J', 'R', 'N', 'L', 0}

// Version is the current format version; readers reject others with
// ErrVersion (a mixed-version file fails at open, not mid-replay).
const Version = 1

// maxPayload bounds one record's payload: journals are written by the
// server itself, but a corrupt or hostile length field must fail cleanly
// instead of allocating the process to death.
const maxPayload = 256 << 20

// Typed error classes replay callers switch on.
var (
	// ErrCorrupt marks a record that is fully present but fails its
	// checksum, or structurally impossible geometry (payload beyond the
	// format cap). Records before it are trustworthy; records after it
	// are not.
	ErrCorrupt = errors.New("journal: corrupt record")
	// ErrVersion marks a file whose header declares a format version this
	// build does not read.
	ErrVersion = errors.New("journal: unsupported format version")
	// ErrNotJournal marks a file that does not start with the magic.
	ErrNotJournal = errors.New("journal: not a journal file")
	// ErrClosed is returned by Append after Close or Seal.
	ErrClosed = errors.New("journal: log closed")
)

// Kind is a caller-defined record discriminator. The journal itself is
// payload-agnostic; the serving layer defines the vocabulary.
type Kind uint8

// KindSeal is the one kind the journal owns: a zero-payload record
// appended by Seal marking a clean shutdown. Replayers use its presence
// (as the final record) to distinguish a graceful close from a crash.
const KindSeal Kind = 0xFF

// RecordRef addresses one record durably: the segment it lives in and
// the byte offset of its frame within that segment file. Refs survive a
// restart (segments are immutable once written past), so a caller can
// keep an index of interesting records and read any one of them back in
// O(record) via ReadRecordAt instead of replaying the whole log. The
// zero ref (Seg 0) means "not durably addressed" — segment numbering
// starts at 1.
type RecordRef struct {
	Seg int
	Off int64
}

// Record is one replayed journal entry. Seg and Off form its RecordRef
// (Seg is 0 when the record was replayed from a bare stream rather than
// a segment store).
type Record struct {
	Kind    Kind
	Seq     uint64
	Payload []byte
	Seg     int
	Off     int64
}

// Ref returns the record's durable address.
func (r Record) Ref() RecordRef { return RecordRef{Seg: r.Seg, Off: r.Off} }

// Log is the pluggable write-ahead log surface the serving layer journals
// through. Implementations: DirLog (segmented, compactable — the
// production store), FileLog (single-file, the pre-segmentation format)
// and MemLog (in-memory, for tests and journal-less embedding).
type Log interface {
	// Append durably adds one record and returns its durable address.
	// Sequence numbers are assigned by the log, strictly increasing
	// across Open/replay boundaries.
	Append(kind Kind, payload []byte) (RecordRef, error)
	// Seal appends the clean-shutdown marker and closes the log.
	Seal() error
	// Close closes the log without sealing (the crash path, and the
	// default on error).
	Close() error
}

// Compactor is the optional Log extension a segmented store provides:
// checkpointing folds the caller's state into one record at the head of
// a fresh segment, after which the segments before it are garbage.
type Compactor interface {
	// Checkpoint rotates to a new segment and writes payload (under kind)
	// as its first record, returning the record's address. Older segments
	// stay on disk until DropBefore removes them, so a crash between the
	// two replays the old chain plus the snapshot — never less.
	Checkpoint(kind Kind, payload []byte) (RecordRef, error)
	// DropBefore removes every segment numbered below seg, returning how
	// many were deleted.
	DropBefore(seg int) (int, error)
	// Segments reports how many live segments the log currently holds.
	Segments() int
}

// frameRecord builds one record's on-disk frame. Appenders write the
// whole frame in a single Write call, so a concurrent replayer (a GetJob
// falling back to the journal while the server keeps appending) sees
// either the complete record or none of it — never a torn middle.
func frameRecord(kind Kind, seq uint64, payload []byte) ([]byte, error) {
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("journal: payload of %d bytes exceeds the format cap %d", len(payload), maxPayload)
	}
	frame := make([]byte, 13+len(payload)+8)
	frame[0] = byte(kind)
	binary.LittleEndian.PutUint64(frame[1:9], seq)
	binary.LittleEndian.PutUint32(frame[9:13], uint32(len(payload)))
	copy(frame[13:], payload)
	sum := fnv.New64a()
	sum.Write(frame[:13+len(payload)])
	binary.LittleEndian.PutUint64(frame[13+len(payload):], sum.Sum64())
	return frame, nil
}

// writeRecord frames one record onto w, returning the bytes written.
func writeRecord(w io.Writer, kind Kind, seq uint64, payload []byte) (int, error) {
	frame, err := frameRecord(kind, seq, payload)
	if err != nil {
		return 0, err
	}
	return w.Write(frame)
}

// ReplayResult is what a replay recovered and how the stream ended.
type ReplayResult struct {
	Records []Record
	// Sealed reports whether the final record was a clean-shutdown seal
	// (seal records are consumed, never returned in Records). A stream
	// that ends torn is never Sealed, even when the last intact record is
	// a seal: a torn record after a seal means the process came back,
	// appended, and crashed — crash semantics win.
	Sealed bool
	// Truncated reports that the stream ended mid-record — the crash
	// signature. The records before the cut are complete and valid.
	Truncated bool
	// GoodBytes is the stream offset just past the last valid record
	// (including the header); OpenFile truncates the file here.
	GoodBytes int64
}

// Replay reads a journal stream. A missing or short header is
// ErrNotJournal/ErrVersion; a truncated tail record recovers everything
// before it (Truncated set, no error); a fully-present record with a bad
// checksum returns the records before it alongside ErrCorrupt.
func Replay(r io.Reader) (ReplayResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var res ReplayResult
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return res, fmt.Errorf("%w: missing header: %v", ErrNotJournal, err)
	}
	if magic != Magic {
		return res, fmt.Errorf("%w (magic %q)", ErrNotJournal, magic[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return res, fmt.Errorf("%w: missing version: %v", ErrNotJournal, err)
	}
	if version != Version {
		return res, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersion, version, Version)
	}
	res.GoodBytes = 12 // magic + version
	// torn marks the stream as ending mid-record. A trailing seal does
	// not survive a torn tail after it: the tear proves a later life
	// appended past the seal and crashed, so the stream as a whole ended
	// in a crash, not a clean shutdown.
	torn := func() (ReplayResult, error) {
		res.Truncated = true
		res.Sealed = false
		return res, nil
	}
	for {
		off := res.GoodBytes
		var hdr [13]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				return torn()
			}
			return res, nil
		}
		kind := Kind(hdr[0])
		seq := binary.LittleEndian.Uint64(hdr[1:9])
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			return res, fmt.Errorf("%w: record %d declares a %d-byte payload (cap %d)", ErrCorrupt, len(res.Records), plen, maxPayload)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return torn()
		}
		var check [8]byte
		if _, err := io.ReadFull(br, check[:]); err != nil {
			return torn()
		}
		sum := fnv.New64a()
		sum.Write(hdr[:])
		sum.Write(payload)
		if got := binary.LittleEndian.Uint64(check[:]); got != sum.Sum64() {
			return res, fmt.Errorf("%w: record %d checksum mismatch (file %x, computed %x)", ErrCorrupt, len(res.Records), got, sum.Sum64())
		}
		res.GoodBytes += int64(13 + len(payload) + 8)
		if kind == KindSeal {
			// A seal mid-file (server sealed, restarted, appended more)
			// clears on the next record; only a trailing seal means clean.
			res.Sealed = true
			continue
		}
		res.Sealed = false
		res.Records = append(res.Records, Record{Kind: kind, Seq: seq, Payload: payload, Off: off})
	}
}
