package kmedian

import (
	"math"
	"sort"

	"dpc/internal/metric"
)

// LloydPolish refines a (k,t)-means solution with *unrestricted* Euclidean
// centers, in the k-means-- style (assign, drop the t units of weight with
// the largest squared distances, recompute weighted centroids). The paper
// restricts centers to input points and notes the restriction costs at most
// a factor 2 in Euclidean space (Definition 1.1); this is the other side of
// that trade, available as a final polish when the data is Euclidean.
//
// Returns the polished centers and the weighted partial means cost. The
// cost is non-increasing across iterations and the loop stops at
// convergence or maxIters.
func LloydPolish(pts []metric.Point, w []float64, centers []metric.Point, t float64, maxIters int) ([]metric.Point, float64) {
	if len(pts) == 0 || len(centers) == 0 {
		return centers, 0
	}
	if maxIters <= 0 {
		maxIters = 32
	}
	cur := make([]metric.Point, len(centers))
	for i, c := range centers {
		cur[i] = c.Clone()
	}
	dim := len(pts[0])
	weightOf := func(j int) float64 {
		if w == nil {
			return 1
		}
		return w[j]
	}
	prevCost := math.Inf(1)
	var cost float64
	for iter := 0; iter < maxIters; iter++ {
		// Assign and compute per-point squared distances.
		assign := make([]int, len(pts))
		d := make([]float64, len(pts))
		order := make([]int, len(pts))
		for j, p := range pts {
			best, bd := -1, math.Inf(1)
			for c, cp := range cur {
				if x := metric.SqL2(p, cp); x < bd {
					bd, best = x, c
				}
			}
			assign[j] = best
			d[j] = bd
			order[j] = j
		}
		// Drop the largest t units of weight (fractionally).
		sort.Slice(order, func(a, b int) bool { return d[order[a]] > d[order[b]] })
		inW := make([]float64, len(pts))
		budget := t
		cost = 0
		for _, j := range order {
			wj := weightOf(j)
			if wj <= budget {
				budget -= wj
				continue
			}
			keep := wj - budget
			budget = 0
			inW[j] = keep
			cost += keep * d[j]
		}
		if cost >= prevCost-1e-12*(1+prevCost) {
			break
		}
		prevCost = cost
		// Update centroids on the surviving weight.
		sums := make([][]float64, len(cur))
		wsum := make([]float64, len(cur))
		for c := range cur {
			sums[c] = make([]float64, dim)
		}
		for j, p := range pts {
			if inW[j] <= 0 {
				continue
			}
			c := assign[j]
			wsum[c] += inW[j]
			for dd := 0; dd < dim; dd++ {
				sums[c][dd] += inW[j] * p[dd]
			}
		}
		for c := range cur {
			if wsum[c] <= 0 {
				continue // empty cluster keeps its position
			}
			nc := make(metric.Point, dim)
			for dd := 0; dd < dim; dd++ {
				nc[dd] = sums[c][dd] / wsum[c]
			}
			cur[c] = nc
		}
	}
	return cur, cost
}

// EvalPointsMeans computes the weighted partial means cost of arbitrary
// (not necessarily input) centers on a Euclidean point set.
func EvalPointsMeans(pts []metric.Point, w []float64, centers []metric.Point, t float64) float64 {
	if len(centers) == 0 {
		return math.Inf(1)
	}
	type cd struct{ d, w float64 }
	ds := make([]cd, len(pts))
	for j, p := range pts {
		bd := math.Inf(1)
		for _, c := range centers {
			if x := metric.SqL2(p, c); x < bd {
				bd = x
			}
		}
		wj := 1.0
		if w != nil {
			wj = w[j]
		}
		ds[j] = cd{d: bd, w: wj}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	budget := t
	var cost float64
	for _, x := range ds {
		if x.w <= budget {
			budget -= x.w
			continue
		}
		keep := x.w
		if budget > 0 {
			keep -= budget
			budget = 0
		}
		cost += keep * x.d
	}
	return cost
}
