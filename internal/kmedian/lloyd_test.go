package kmedian

import (
	"math"
	"math/rand"
	"testing"

	"dpc/internal/metric"
)

func TestLloydPolishImprovesDiscreteSolution(t *testing.T) {
	// Two clusters; a discrete solution must pick input points as centers,
	// Lloyd moves them to the centroids and cannot be worse.
	r := rand.New(rand.NewSource(4))
	var pts []metric.Point
	for i := 0; i < 40; i++ {
		cx := 0.0
		if i%2 == 1 {
			cx = 50
		}
		pts = append(pts, metric.Point{cx + r.NormFloat64(), r.NormFloat64()})
	}
	sp := metric.NewPoints(pts)
	sq := metric.Squared{C: sp}
	disc := LocalSearch(sq, nil, 2, 0, Options{Seed: 1, Restarts: 2})
	discCenters := make([]metric.Point, len(disc.Centers))
	for i, f := range disc.Centers {
		discCenters[i] = pts[f]
	}
	polished, cost := LloydPolish(pts, nil, discCenters, 0, 32)
	if cost > disc.Cost+1e-9 {
		t.Fatalf("Lloyd worsened the cost: %g vs %g", cost, disc.Cost)
	}
	if len(polished) != 2 {
		t.Fatalf("polished centers = %d", len(polished))
	}
	// The polished cost matches the independent evaluator.
	if got := EvalPointsMeans(pts, nil, polished, 0); math.Abs(got-cost) > 1e-9*(1+cost) {
		t.Fatalf("eval mismatch: %g vs %g", got, cost)
	}
}

func TestLloydPolishExcludesOutliers(t *testing.T) {
	pts := []metric.Point{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, // cluster
		{1000, 1000}, // outlier
	}
	centers, cost := LloydPolish(pts, nil, []metric.Point{{0.2, 0.2}}, 1, 32)
	if cost > 2.1 {
		t.Fatalf("cost = %g; outlier not excluded", cost)
	}
	// Center converges to the cluster centroid (0.5, 0.5).
	if metric.L2(centers[0], metric.Point{0.5, 0.5}) > 1e-6 {
		t.Fatalf("center = %v, want (0.5,0.5)", centers[0])
	}
}

func TestLloydPolishWeighted(t *testing.T) {
	pts := []metric.Point{{0}, {10}}
	w := []float64{3, 1}
	centers, _ := LloydPolish(pts, w, []metric.Point{{5}}, 0, 32)
	// Weighted centroid: (3*0 + 1*10)/4 = 2.5.
	if math.Abs(centers[0][0]-2.5) > 1e-9 {
		t.Fatalf("weighted centroid = %v, want 2.5", centers[0])
	}
}

func TestLloydPolishDegenerate(t *testing.T) {
	if c, cost := LloydPolish(nil, nil, []metric.Point{{0}}, 0, 5); cost != 0 || len(c) != 1 {
		t.Fatal("empty points should be free")
	}
	if c, _ := LloydPolish([]metric.Point{{1}}, nil, nil, 0, 5); len(c) != 0 {
		t.Fatal("no centers should stay empty")
	}
	// Empty cluster keeps its position.
	centers, _ := LloydPolish([]metric.Point{{0}, {1}}, nil, []metric.Point{{0.5}, {999}}, 0, 5)
	if centers[1][0] != 999 {
		t.Fatalf("empty cluster moved: %v", centers[1])
	}
}

func TestEvalPointsMeansNoCenters(t *testing.T) {
	if !math.IsInf(EvalPointsMeans([]metric.Point{{1}}, nil, nil, 0), 1) {
		t.Fatal("no centers should be inf")
	}
}
