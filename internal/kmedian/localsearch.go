package kmedian

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"dpc/internal/engine"
	"dpc/internal/metric"
	"dpc/internal/par"
)

// Options tunes the local-search engine.
type Options struct {
	// Seed drives all randomness (D^2 seeding, facility sampling).
	Seed int64
	// Ctx, when non-nil, preempts the solver: local-search descent stops at
	// the next swap round and JV's Lagrangian search at the next probe once
	// the context is cancelled, returning the best solution found so far.
	// Callers that propagate the cancellation (the protocol round loops do)
	// discard that partial answer with ctx.Err(); the point of the early
	// return is that a cancelled job stops burning CPU mid-solve instead of
	// finishing a doomed computation. A nil or never-cancelled Ctx changes
	// nothing — the checks never influence a live solve's decisions. The
	// field never crosses the wire: job frames carry configurations, and a
	// context is process-local by nature.
	Ctx context.Context `json:"-"`
	// MaxIters caps the number of swap rounds (default 40).
	MaxIters int
	// SampleFacilities bounds the number of candidate facilities examined
	// per round (default 128; 0 means "use the default"; negative means
	// "examine all facilities").
	SampleFacilities int
	// Restarts runs the search from multiple seeds and keeps the best
	// (default 1).
	Restarts int
	// Warm, when non-empty, seeds the first restart with these facility
	// indices instead of D^2 sampling — used by Algorithm 1's grid of
	// budget solves, where the solution for the previous budget is an
	// excellent starting point for the next.
	Warm []int
	// Options are the consolidated engine knobs (see engine.Options):
	// Workers bounds the goroutines of the parallel engine paths (0 = one
	// per CPU, bit-identical at every width) and Reference switches every
	// solver to the pre-engine sequential implementation — the regression
	// baseline of cmd/dpc-bench and the parity tests. The Index/Pivots
	// knobs are honored by the layers that construct the cost oracle; the
	// solvers prune through whatever metric.CostPruner the oracle
	// implements and never build indexes themselves.
	engine.Options
}

// canceled reports whether the solve's context has been cancelled — the
// preemption probe of every solver loop. Nil contexts never cancel.
func (o Options) canceled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.SampleFacilities == 0 {
		o.SampleFacilities = 128
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	return o
}

// LocalSearch solves the weighted (k,t)-median problem on c with a
// swap-based local search: D^2-weighted greedy seeding (k-means++ style)
// followed by single-swap descent. Outliers are handled by evaluating every
// accepted configuration with the true partial cost (largest t units of
// connection weight free), and swap gains are estimated on the current
// inlier set — the standard partial-clustering local-search scheme.
//
// The engine is objective-agnostic: pass metric.Squared costs for
// (k,t)-means. Each round is O(nf * nc) plus one O(nc log nc) exact
// re-evaluation.
func LocalSearch(c metric.Costs, w []float64, k int, t float64, opt Options) Solution {
	opt = opt.withDefaults()
	nc, nf := c.Clients(), c.Facilities()
	if nc == 0 || nf == 0 || k <= 0 {
		return Eval(c, w, nil, t)
	}
	if TotalWeight(c, w) <= t {
		return Eval(c, w, nil, t)
	}
	if opt.canceled() {
		// Preempted before the first seeding: don't start O(k * nc * nf)
		// work for an answer the caller will discard with ctx.Err().
		return Eval(c, w, nil, t)
	}
	if k > nf {
		k = nf
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	best := Solution{Cost: math.Inf(1)}
	for restart := 0; restart < opt.Restarts; restart++ {
		if restart > 0 && opt.canceled() {
			break // keep the best finished restart; the caller sees ctx.Err()
		}
		var centers []int
		if restart == 0 && len(opt.Warm) > 0 {
			centers = warmCenters(opt.Warm, k, nf)
		} else {
			centers = seedDSquared(c, w, k, rng)
		}
		sol := descend(c, w, centers, t, opt, rng)
		if sol.Cost < best.Cost {
			best = sol
		}
	}
	return best
}

// warmCenters sanitizes a warm-start center list: in-range, deduplicated,
// truncated or padded to k facilities.
func warmCenters(warm []int, k, nf int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for _, f := range warm {
		if f >= 0 && f < nf && !seen[f] && len(out) < k {
			seen[f] = true
			out = append(out, f)
		}
	}
	for f := 0; f < nf && len(out) < k; f++ {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// seedDSquared picks k facilities by D^2 sampling: the first uniformly at
// random, each next with probability proportional to the weighted distance
// of clients to the current set (sampling a client, then using its cheapest
// facility as the new center).
func seedDSquared(c metric.Costs, w []float64, k int, rng *rand.Rand) []int {
	nc, nf := c.Clients(), c.Facilities()
	cp := metric.CostPrunerOf(c)
	centers := make([]int, 0, k)
	centers = append(centers, rng.Intn(nf))
	d := make([]float64, nc)
	for j := range d {
		d[j] = c.Cost(j, centers[0])
	}
	inSet := map[int]bool{centers[0]: true}
	for len(centers) < k {
		var total float64
		for j := 0; j < nc; j++ {
			total += weight(w, j) * d[j]
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(nc)
		} else {
			x := rng.Float64() * total
			for j := 0; j < nc; j++ {
				x -= weight(w, j) * d[j]
				if x <= 0 {
					pick = j
					break
				}
			}
		}
		// Use the picked client's cheapest *unused* facility as the center.
		bestF, bd := -1, math.Inf(1)
		for f := 0; f < nf; f++ {
			if inSet[f] {
				continue
			}
			// A facility provably no cheaper than the current best cannot
			// win the strict comparison; skipping it is result-identical.
			if cp != nil && cp.PruneCost(pick, f, bd) {
				continue
			}
			if x := c.Cost(pick, f); x < bd {
				bd, bestF = x, f
			}
		}
		if bestF < 0 { // all facilities used
			break
		}
		centers = append(centers, bestF)
		inSet[bestF] = true
		for j := 0; j < nc; j++ {
			if cp != nil && cp.PruneCost(j, bestF, d[j]) {
				continue
			}
			if x := c.Cost(j, bestF); x < d[j] {
				d[j] = x
			}
		}
	}
	return centers
}

// relTol is the relative improvement below which descent stops.
const relTol = 1e-6

// topE is the number of candidate facilities exactly evaluated per round.
const topE = 12

// descend runs single-swap descent from the given centers. Each round ranks
// candidate facilities by their "add potential" on the current inlier set
// (the saving from adding the facility without removing anything), then
// exactly re-evaluates the swaps of the top facilities against every
// current center — crucially with the outlier set re-selected, so the
// budget can migrate to newly-far points (e.g. off a point that used to be
// a center).
//
// This is the fast engine: candidate distance columns are computed once per
// round (instead of once per swap), the d1/d2 nearest/second-nearest
// bookkeeping turns each of the k swaps per candidate into a merge instead
// of a fresh k-way scan, and the independent work runs on opt.Workers
// goroutines. Every decision (swap chosen, stop condition, RNG stream) is
// bit-identical to descendReference — TestEngineMatchesReference and the
// cmd/dpc-bench harness enforce it.
func descend(c metric.Costs, w []float64, centers []int, t float64, opt Options, rng *rand.Rand) Solution {
	if opt.Reference {
		return descendReference(c, w, centers, t, opt, rng)
	}
	nc, nf := c.Clients(), c.Facilities()
	workers := opt.Workers
	cp := metric.CostPrunerOf(c)
	ccp := metric.CostColumnPrunerOf(c)
	// One skip mask per concurrent potential-scan worker: the column pruner
	// bounds a whole facility in one call, so the scan pays a few loads per
	// (client, facility) pair instead of a per-pair pruner call chain.
	var colSkip chan []bool
	if ccp != nil {
		wk := par.Resolve(workers)
		colSkip = make(chan []bool, wk)
		for i := 0; i < wk; i++ {
			colSkip <- make([]bool, nc)
		}
	}
	cur := EvalP(c, w, centers, t, workers)
	k := len(cur.Centers)
	// One reusable distance column per top candidate and one newd buffer
	// per (candidate, position) evaluation slot.
	cols := make([][]float64, topE)
	for i := range cols {
		cols[i] = make([]float64, nc)
	}
	bufs := make([][]float64, topE*k)
	for i := range bufs {
		bufs[i] = make([]float64, nc)
	}
	d1 := make([]float64, nc)  // distance to nearest current center
	a1 := make([]int, nc)      // position of that center in cur.Centers
	d2 := make([]float64, nc)  // distance to second-nearest current center
	inW := make([]float64, nc) // inlier weight under the current solution
	for iter := 0; iter < opt.MaxIters; iter++ {
		if opt.canceled() {
			break // preempted mid-descent: stop burning rounds
		}
		pos := make(map[int]int, k) // facility -> position in centers
		for p, f := range cur.Centers {
			pos[f] = p
		}
		par.For(workers, nc, func(j int) {
			b1, b2 := math.Inf(1), math.Inf(1)
			bp := -1
			for p, f := range cur.Centers {
				// b1 <= b2, so a center proven no nearer than the current
				// second-nearest can update neither slot: skip its exact
				// distance. The surviving comparisons fire exactly as the
				// full scan's would — d1/a1/d2 come out bit-identical.
				if cp != nil && cp.PruneCost(j, f, b2) {
					continue
				}
				x := c.Cost(j, f)
				if x < b1 {
					b1, b2, bp = x, b1, p
				} else if x < b2 {
					b2 = x
				}
			}
			d1[j], a1[j], d2[j] = b1, bp, b2
			inW[j] = weight(w, j) - cur.DroppedWeight[j]
		})
		cands := facilityCandidates(nf, pos, opt, rng)
		pots := make([]float64, len(cands))
		par.For(workers, len(cands), func(ci int) {
			f := cands[ci]
			// A client whose cost to f provably stays >= d1[j] would
			// contribute max(0, d1[j]-cost) = 0: skip the evaluation
			// without touching the sum. The bulk column form proves the
			// whole facility in one pass; the per-pair pruner is the
			// fallback when no bulk pruner is wired (or it declines).
			var skip []bool
			if ccp != nil {
				b := <-colSkip
				if ccp.PruneCostColumn(f, d1, b) {
					skip = b
				} else {
					colSkip <- b
				}
			}
			var pot float64
			for j := 0; j < nc; j++ {
				if inW[j] <= 0 {
					continue
				}
				if skip != nil {
					if skip[j] {
						continue
					}
				} else if cp != nil && cp.PruneCost(j, f, d1[j]) {
					continue
				}
				if s := d1[j] - c.Cost(j, f); s > 0 {
					pot += inW[j] * s
				}
			}
			if skip != nil {
				colSkip <- skip
			}
			pots[ci] = pot
		})
		type scored struct {
			f   int
			pot float64
		}
		top := make([]scored, 0, len(cands))
		for ci, f := range cands {
			if pots[ci] > 0 {
				top = append(top, scored{f: f, pot: pots[ci]})
			}
		}
		sort.Slice(top, func(a, b int) bool { return top[a].pot > top[b].pot })
		if len(top) > topE {
			top = top[:topE]
		}
		// Distance columns of the surviving candidates, once per round.
		par.For(workers, nc, func(j int) {
			for si := range top {
				cols[si][j] = c.Cost(j, top[si].f)
			}
		})
		// Exact evaluation of every (candidate, removed position) swap into
		// per-slot cost cells; the fold below replays the sequential
		// first-strict-win scan, so ties resolve exactly as in the
		// reference engine.
		costs := make([]float64, len(top)*k)
		par.For(workers, len(top)*k, func(slot int) {
			si, p := slot/k, slot%k
			costs[slot] = swapCost(cols[si], d1, a1, d2, w, p, t, bufs[slot])
		})
		bestCost := cur.Cost
		bestSwap := [2]int{-1, -1} // (center position, facility)
		for si := range top {
			for p := 0; p < k; p++ {
				if cost := costs[si*k+p]; cost < bestCost {
					bestCost = cost
					bestSwap = [2]int{p, top[si].f}
				}
			}
		}
		if bestSwap[0] < 0 || bestCost >= cur.Cost*(1-relTol) {
			break
		}
		trial := append([]int(nil), cur.Centers...)
		trial[bestSwap[0]] = bestSwap[1]
		cur = EvalP(c, w, trial, t, workers)
	}
	return cur
}

// swapCost evaluates the exact partial cost of swapping the center at
// position p for the facility whose distance column is col: client j's new
// connection cost is min(col[j], d2[j]) when its nearest center is the one
// removed, min(col[j], d1[j]) otherwise. buf receives the per-client
// distances (len nc, overwritten). The result is bit-identical to
// EvalSum on the swapped center set.
func swapCost(col, d1 []float64, a1 []int, d2, w []float64, p int, t float64, buf []float64) float64 {
	nc := len(col)
	for j := 0; j < nc; j++ {
		dj := d1[j]
		if a1[j] == p {
			dj = d2[j]
		}
		if col[j] < dj {
			dj = col[j]
		}
		buf[j] = dj
	}
	if w == nil {
		return partialCostUnit(buf, t)
	}
	ds := make([]cd, nc)
	for j := 0; j < nc; j++ {
		ds[j] = cd{d: buf[j], w: w[j]}
	}
	return partialCostPairs(ds, t)
}

// descendReference is the seed implementation of descend, kept verbatim as
// the regression baseline: Options.Reference routes here, and the harness
// asserts the fast engine matches it bit-for-bit.
func descendReference(c metric.Costs, w []float64, centers []int, t float64, opt Options, rng *rand.Rand) Solution {
	nc, nf := c.Clients(), c.Facilities()
	cur := Eval(c, w, centers, t)
	for iter := 0; iter < opt.MaxIters; iter++ {
		if opt.canceled() {
			break // same preemption point as the fast engine's descent
		}
		k := len(cur.Centers)
		pos := make(map[int]int, k) // facility -> position in centers
		for p, f := range cur.Centers {
			pos[f] = p
		}
		d1 := make([]float64, nc)
		inW := make([]float64, nc)
		for j := 0; j < nc; j++ {
			d1[j] = math.Inf(1)
			for _, f := range cur.Centers {
				if x := c.Cost(j, f); x < d1[j] {
					d1[j] = x
				}
			}
			inW[j] = weight(w, j) - cur.DroppedWeight[j]
		}
		cands := facilityCandidates(nf, pos, opt, rng)
		type scored struct {
			f   int
			pot float64
		}
		top := make([]scored, 0, len(cands))
		for _, f := range cands {
			var pot float64
			for j := 0; j < nc; j++ {
				if inW[j] <= 0 {
					continue
				}
				if s := d1[j] - c.Cost(j, f); s > 0 {
					pot += inW[j] * s
				}
			}
			if pot > 0 {
				top = append(top, scored{f: f, pot: pot})
			}
		}
		sort.Slice(top, func(a, b int) bool { return top[a].pot > top[b].pot })
		if len(top) > topE {
			top = top[:topE]
		}
		bestCost := cur.Cost
		bestSwap := [2]int{-1, -1} // (center position, facility)
		trial := append([]int(nil), cur.Centers...)
		for _, s := range top {
			for p := 0; p < k; p++ {
				old := trial[p]
				trial[p] = s.f
				if cost := EvalSum(c, w, trial, t); cost < bestCost {
					bestCost = cost
					bestSwap = [2]int{p, s.f}
				}
				trial[p] = old
			}
		}
		if bestSwap[0] < 0 || bestCost >= cur.Cost*(1-relTol) {
			break
		}
		trial[bestSwap[0]] = bestSwap[1]
		cur = Eval(c, w, trial, t)
	}
	return cur
}

// facilityCandidates returns the facilities to try swapping in, excluding
// current centers; sampled without replacement when the facility set is
// large.
func facilityCandidates(nf int, pos map[int]int, opt Options, rng *rand.Rand) []int {
	limit := opt.SampleFacilities
	if limit < 0 || nf <= limit {
		out := make([]int, 0, nf)
		for f := 0; f < nf; f++ {
			if _, used := pos[f]; !used {
				out = append(out, f)
			}
		}
		return out
	}
	seen := make(map[int]bool, limit)
	out := make([]int, 0, limit)
	for len(out) < limit && len(seen) < nf {
		f := rng.Intn(nf)
		if seen[f] {
			continue
		}
		seen[f] = true
		if _, used := pos[f]; !used {
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}
