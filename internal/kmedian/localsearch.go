package kmedian

import (
	"math"
	"math/rand"
	"sort"

	"dpc/internal/metric"
)

// Options tunes the local-search engine.
type Options struct {
	// Seed drives all randomness (D^2 seeding, facility sampling).
	Seed int64
	// MaxIters caps the number of swap rounds (default 40).
	MaxIters int
	// SampleFacilities bounds the number of candidate facilities examined
	// per round (default 128; 0 means "use the default"; negative means
	// "examine all facilities").
	SampleFacilities int
	// Restarts runs the search from multiple seeds and keeps the best
	// (default 1).
	Restarts int
	// Warm, when non-empty, seeds the first restart with these facility
	// indices instead of D^2 sampling — used by Algorithm 1's grid of
	// budget solves, where the solution for the previous budget is an
	// excellent starting point for the next.
	Warm []int
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.SampleFacilities == 0 {
		o.SampleFacilities = 128
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	return o
}

// LocalSearch solves the weighted (k,t)-median problem on c with a
// swap-based local search: D^2-weighted greedy seeding (k-means++ style)
// followed by single-swap descent. Outliers are handled by evaluating every
// accepted configuration with the true partial cost (largest t units of
// connection weight free), and swap gains are estimated on the current
// inlier set — the standard partial-clustering local-search scheme.
//
// The engine is objective-agnostic: pass metric.Squared costs for
// (k,t)-means. Each round is O(nf * nc) plus one O(nc log nc) exact
// re-evaluation.
func LocalSearch(c metric.Costs, w []float64, k int, t float64, opt Options) Solution {
	opt = opt.withDefaults()
	nc, nf := c.Clients(), c.Facilities()
	if nc == 0 || nf == 0 || k <= 0 {
		return Eval(c, w, nil, t)
	}
	if TotalWeight(c, w) <= t {
		return Eval(c, w, nil, t)
	}
	if k > nf {
		k = nf
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	best := Solution{Cost: math.Inf(1)}
	for restart := 0; restart < opt.Restarts; restart++ {
		var centers []int
		if restart == 0 && len(opt.Warm) > 0 {
			centers = warmCenters(opt.Warm, k, nf)
		} else {
			centers = seedDSquared(c, w, k, rng)
		}
		sol := descend(c, w, centers, t, opt, rng)
		if sol.Cost < best.Cost {
			best = sol
		}
	}
	return best
}

// warmCenters sanitizes a warm-start center list: in-range, deduplicated,
// truncated or padded to k facilities.
func warmCenters(warm []int, k, nf int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for _, f := range warm {
		if f >= 0 && f < nf && !seen[f] && len(out) < k {
			seen[f] = true
			out = append(out, f)
		}
	}
	for f := 0; f < nf && len(out) < k; f++ {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// seedDSquared picks k facilities by D^2 sampling: the first uniformly at
// random, each next with probability proportional to the weighted distance
// of clients to the current set (sampling a client, then using its cheapest
// facility as the new center).
func seedDSquared(c metric.Costs, w []float64, k int, rng *rand.Rand) []int {
	nc, nf := c.Clients(), c.Facilities()
	centers := make([]int, 0, k)
	centers = append(centers, rng.Intn(nf))
	d := make([]float64, nc)
	for j := range d {
		d[j] = c.Cost(j, centers[0])
	}
	inSet := map[int]bool{centers[0]: true}
	for len(centers) < k {
		var total float64
		for j := 0; j < nc; j++ {
			total += weight(w, j) * d[j]
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(nc)
		} else {
			x := rng.Float64() * total
			for j := 0; j < nc; j++ {
				x -= weight(w, j) * d[j]
				if x <= 0 {
					pick = j
					break
				}
			}
		}
		// Use the picked client's cheapest *unused* facility as the center.
		bestF, bd := -1, math.Inf(1)
		for f := 0; f < nf; f++ {
			if inSet[f] {
				continue
			}
			if x := c.Cost(pick, f); x < bd {
				bd, bestF = x, f
			}
		}
		if bestF < 0 { // all facilities used
			break
		}
		centers = append(centers, bestF)
		inSet[bestF] = true
		for j := 0; j < nc; j++ {
			if x := c.Cost(j, bestF); x < d[j] {
				d[j] = x
			}
		}
	}
	return centers
}

// descend runs single-swap descent from the given centers. Each round ranks
// candidate facilities by their "add potential" on the current inlier set
// (the saving from adding the facility without removing anything), then
// exactly re-evaluates the swaps of the top facilities against every
// current center — crucially with the outlier set re-selected, so the
// budget can migrate to newly-far points (e.g. off a point that used to be
// a center).
func descend(c metric.Costs, w []float64, centers []int, t float64, opt Options, rng *rand.Rand) Solution {
	nc, nf := c.Clients(), c.Facilities()
	cur := Eval(c, w, centers, t)
	const relTol = 1e-6
	const topE = 12 // facilities exactly evaluated per round
	for iter := 0; iter < opt.MaxIters; iter++ {
		k := len(cur.Centers)
		pos := make(map[int]int, k) // facility -> position in centers
		for p, f := range cur.Centers {
			pos[f] = p
		}
		d1 := make([]float64, nc)
		inW := make([]float64, nc)
		for j := 0; j < nc; j++ {
			d1[j] = math.Inf(1)
			for _, f := range cur.Centers {
				if x := c.Cost(j, f); x < d1[j] {
					d1[j] = x
				}
			}
			inW[j] = weight(w, j) - cur.DroppedWeight[j]
		}
		cands := facilityCandidates(nf, pos, opt, rng)
		type scored struct {
			f   int
			pot float64
		}
		top := make([]scored, 0, len(cands))
		for _, f := range cands {
			var pot float64
			for j := 0; j < nc; j++ {
				if inW[j] <= 0 {
					continue
				}
				if s := d1[j] - c.Cost(j, f); s > 0 {
					pot += inW[j] * s
				}
			}
			if pot > 0 {
				top = append(top, scored{f: f, pot: pot})
			}
		}
		sort.Slice(top, func(a, b int) bool { return top[a].pot > top[b].pot })
		if len(top) > topE {
			top = top[:topE]
		}
		bestCost := cur.Cost
		bestSwap := [2]int{-1, -1} // (center position, facility)
		trial := append([]int(nil), cur.Centers...)
		for _, s := range top {
			for p := 0; p < k; p++ {
				old := trial[p]
				trial[p] = s.f
				if cost := EvalSum(c, w, trial, t); cost < bestCost {
					bestCost = cost
					bestSwap = [2]int{p, s.f}
				}
				trial[p] = old
			}
		}
		if bestSwap[0] < 0 || bestCost >= cur.Cost*(1-relTol) {
			break
		}
		trial[bestSwap[0]] = bestSwap[1]
		cur = Eval(c, w, trial, t)
	}
	return cur
}

// facilityCandidates returns the facilities to try swapping in, excluding
// current centers; sampled without replacement when the facility set is
// large.
func facilityCandidates(nf int, pos map[int]int, opt Options, rng *rand.Rand) []int {
	limit := opt.SampleFacilities
	if limit < 0 || nf <= limit {
		out := make([]int, 0, nf)
		for f := 0; f < nf; f++ {
			if _, used := pos[f]; !used {
				out = append(out, f)
			}
		}
		return out
	}
	seen := make(map[int]bool, limit)
	out := make([]int, 0, limit)
	for len(out) < limit && len(seen) < nf {
		f := rng.Intn(nf)
		if seen[f] {
			continue
		}
		seen[f] = true
		if _, used := pos[f]; !used {
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}
