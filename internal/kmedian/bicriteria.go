package kmedian

import (
	"math"

	"dpc/internal/metric"
)

// Engine selects the optimization engine behind the Theorem 3.1 interface.
type Engine int

const (
	// EngineAuto uses JV on small instances (where its O(n^2 log n) events
	// are cheap) and local search otherwise.
	EngineAuto Engine = iota
	// EngineLocalSearch always uses the swap local search.
	EngineLocalSearch
	// EngineJV always uses the primal-dual Lagrangian engine.
	EngineJV
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineLocalSearch:
		return "localsearch"
	case EngineJV:
		return "jv"
	default:
		return "auto"
	}
}

// Relax selects which criterion Theorem 3.1 relaxes.
type Relax int

const (
	// RelaxOutliers returns sol(Z, k, (1+eps)t).
	RelaxOutliers Relax = iota
	// RelaxCenters returns sol(Z, (1+eps)k, t).
	RelaxCenters
)

// autoJVLimit is the instance size up to which EngineAuto picks JV.
const autoJVLimit = 140

// Solve dispatches a plain (k,t) solve (unicriterion budget) to the chosen
// engine — the "Compute sol(A_i, 2k, q)" of Algorithm 1 Line 3.
func Solve(c metric.Costs, w []float64, k int, t float64, engine Engine, opt Options) Solution {
	if engine == EngineJV || (engine == EngineAuto && c.Clients() <= autoJVLimit) {
		return JV(c, w, k, t, 0, opt)
	}
	return LocalSearch(c, w, k, t, opt)
}

// Bicriteria is the Theorem 3.1 solver: it computes sol(Z,k,(1+eps)t) or
// sol(Z,(1+eps)k,t) for the (k,t)-median problem (means when c is a
// metric.Squared oracle) with constant-factor quality in the O(1/eps)
// regime. eps <= 0 is treated as 0 (unicriterion evaluation budget).
func Bicriteria(c metric.Costs, w []float64, k int, t float64, eps float64, relax Relax, engine Engine, opt Options) Solution {
	if eps < 0 {
		eps = 0
	}
	useJV := engine == EngineJV || (engine == EngineAuto && c.Clients() <= autoJVLimit)
	switch relax {
	case RelaxCenters:
		kk := int(math.Ceil(float64(k) * (1 + eps)))
		if kk < k {
			kk = k
		}
		if useJV {
			return JV(c, w, kk, t, 0, opt)
		}
		return LocalSearch(c, w, kk, t, opt)
	default: // RelaxOutliers
		if useJV {
			return JV(c, w, k, t, eps, opt)
		}
		return LocalSearch(c, w, k, t*(1+eps), opt)
	}
}
