package kmedian

import (
	"math"
	"testing"

	"dpc/internal/engine"
	"dpc/internal/metric"
)

// jvRun unit tests: the dual-ascent internals that JV() builds on.

func TestJVRunFreeFacilitiesOpenEverywhere(t *testing.T) {
	// lambda = 0: every point pays for its own facility instantly; after
	// pruning each client is served at distance 0.
	sp := metric.NewPoints([]metric.Point{{0}, {5}, {9}})
	r := jvRun(sp, nil, 0, 0, Options{Options: engine.Options{Workers: 1}}, nil)
	if r.outlierW > 1e-9 {
		t.Fatalf("outlier weight = %g", r.outlierW)
	}
	sol := Eval(sp, nil, r.open, 0)
	if sol.Cost > 1e-9 {
		t.Fatalf("free facilities should give zero cost, got %g", sol.Cost)
	}
}

func TestJVRunHugeLambdaOpensOne(t *testing.T) {
	sp := metric.NewPoints([]metric.Point{{0}, {1}, {2}, {3}})
	r := jvRun(sp, nil, 1e6, 0, Options{Options: engine.Options{Workers: 1}}, nil)
	if r.numOpen != 1 {
		t.Fatalf("open = %d, want 1", r.numOpen)
	}
	if r.outlierW > 1e-9 {
		t.Fatal("no outliers expected with stopW=0")
	}
}

func TestJVRunOutlierStop(t *testing.T) {
	// One extremely remote point: with stopW = 1 the ascent must stop
	// before freezing it (it is the last to connect).
	sp := metric.NewPoints([]metric.Point{{0}, {0.1}, {0.2}, {1e9}})
	r := jvRun(sp, nil, 0.5, 1, Options{Options: engine.Options{Workers: 1}}, nil)
	if !r.outlier[3] {
		t.Fatalf("remote point not left active: %+v", r.outlier)
	}
	if r.outlierW > 1+1e-9 {
		t.Fatalf("outlier weight %g exceeds stop budget", r.outlierW)
	}
	// Theta must have stopped far below the remote distance.
	if r.stopTheta > 1e6 {
		t.Fatalf("ascent ran to theta = %g", r.stopTheta)
	}
}

func TestJVRunPrunedFacilitiesAreIndependent(t *testing.T) {
	// Two tight pairs: pruning must never keep two facilities that share a
	// positively-contributing client.
	sp := metric.NewPoints([]metric.Point{{0}, {0.01}, {10}, {10.01}})
	r := jvRun(sp, nil, 0.1, 0, Options{Options: engine.Options{Workers: 1}}, nil)
	if r.numOpen < 1 || r.numOpen > 2 {
		t.Fatalf("open = %d", r.numOpen)
	}
	// With this lambda the two clusters should each get one facility.
	if r.numOpen == 2 {
		d := math.Abs(sp.Pts[r.open[0]][0] - sp.Pts[r.open[1]][0])
		if d < 5 {
			t.Fatalf("pruned facilities too close: %v", r.open)
		}
	}
}

func TestJVRunWeightedStop(t *testing.T) {
	// Weighted clients: stop budget counts weight, not cardinality.
	m := metric.Matrix{
		{0, 1, 100},
		{1, 0, 100},
		{100, 100, 0},
	}
	w := []float64{1, 1, 5} // the far client is heavy
	r := jvRun(m, w, 10, 2, Options{Options: engine.Options{Workers: 1}}, nil)
	// The heavy client (weight 5 > stop 2) cannot be the outlier wholesale;
	// the ascent must connect it eventually or stop with light actives.
	if r.outlierW > 2+1e-9 {
		t.Fatalf("outlier weight %g > stop budget", r.outlierW)
	}
}

func TestPairAndFillRespectsK(t *testing.T) {
	sp := metric.NewPoints([]metric.Point{{0}, {1}, {2}, {10}, {11}, {12}})
	small := []int{0, 4}
	large := []int{1, 2, 3, 5}
	out := pairAndFill(sp, nil, small, large, 3, 0)
	if len(out) > 3 {
		t.Fatalf("pairAndFill returned %d > k", len(out))
	}
	for _, f := range out {
		found := false
		for _, g := range large {
			if f == g {
				found = true
			}
		}
		if !found {
			t.Fatalf("facility %d not from the large solution", f)
		}
	}
}

func TestTopKByServedWeight(t *testing.T) {
	sp := metric.NewPoints([]metric.Point{{0}, {0.1}, {0.2}, {50}})
	open := []int{0, 3}
	// All three cluster points are served by facility 0; facility 3 serves
	// itself only.
	top := topKByServedWeight(sp, nil, open, 1, 0)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("top = %v, want [0]", top)
	}
	// k >= len(open) passes through.
	if got := topKByServedWeight(sp, nil, open, 5, 0); len(got) != 2 {
		t.Fatalf("passthrough = %v", got)
	}
}
