// Package kmedian implements the k-median/k-means machinery of the paper:
// weighted partial-cost evaluation (outliers dropped greedily by distance),
// a swap-based local-search engine for (k,t)-median with outliers, the
// Jain-Vazirani primal-dual facility-location algorithm with an outlier stop
// (Appendix B), and the Theorem 3.1 bicriteria solver built from them.
//
// All engines consume the metric.Costs oracle, so they serve the plain
// Euclidean case, the (k,t)-means case (squared costs), the compressed
// graph of Section 5 and the truncated rho_tau costs of Definition 5.7.
package kmedian

import (
	"math"
	"sort"

	"dpc/internal/metric"
	"dpc/internal/par"
)

// Solution is a (k,t)-median/means solution over a Costs oracle.
type Solution struct {
	// Centers are facility indices, at most k of them.
	Centers []int
	// Cost is the partial connection cost: the weighted sum of client
	// connection costs after discarding up to the outlier budget of weight.
	Cost float64
	// Budget is the outlier budget the solution was evaluated with.
	Budget float64
	// DroppedWeight[j], when non-nil, is the amount of client j's weight
	// discarded as outlier (fractional for weighted clients).
	DroppedWeight []float64
	// Assign[j] is the facility serving client j (its nearest center), or
	// -1 when the instance has no centers.
	Assign []int
}

// Outliers returns the indices of clients with any dropped weight, in
// decreasing order of connection cost.
func (s Solution) Outliers() []int {
	var out []int
	for j, w := range s.DroppedWeight {
		if w > 0 {
			out = append(out, j)
		}
	}
	return out
}

// weight returns client j's weight under w (nil = unit weights).
func weight(w []float64, j int) float64 {
	if w == nil {
		return 1
	}
	return w[j]
}

// TotalWeight sums client weights.
func TotalWeight(c metric.Costs, w []float64) float64 {
	if w == nil {
		return float64(c.Clients())
	}
	var s float64
	for _, x := range w {
		s += x
	}
	return s
}

// Eval computes the full evaluation of centers on (c, w) with outlier
// budget t: each client connects to its cheapest center; the t units of
// weight with the largest connection costs are discarded (fractionally for
// weighted clients, per Remark 1(ii) — the coordinator may exclude only
// some copies of an aggregated point).
func Eval(c metric.Costs, w []float64, centers []int, t float64) Solution {
	return EvalP(c, w, centers, t, 1)
}

// EvalP is Eval with the per-client assignment loop spread over at most
// `workers` goroutines. Each client's nearest-center scan is self-contained
// and writes only its own slots, so the result is bit-identical to Eval for
// every worker count.
func EvalP(c metric.Costs, w []float64, centers []int, t float64, workers int) Solution {
	n := c.Clients()
	sol := Solution{
		Centers:       append([]int(nil), centers...),
		Budget:        t,
		Assign:        make([]int, n),
		DroppedWeight: make([]float64, n),
	}
	d := make([]float64, n)
	order := make([]int, n)
	cp := metric.CostPrunerOf(c)
	par.For(workers, n, func(j int) {
		best, bd := -1, math.Inf(1)
		for _, f := range centers {
			// A center proven no cheaper than the current best cannot win
			// the strict comparison; skipping it is result-identical.
			if cp != nil && cp.PruneCost(j, f, bd) {
				continue
			}
			if x := c.Cost(j, f); x < bd {
				bd, best = x, f
			}
		}
		sol.Assign[j] = best
		d[j] = bd
		order[j] = j
	})
	if len(centers) == 0 {
		// Degenerate: cost is defined only if everything fits in the budget.
		if TotalWeight(c, w) <= t {
			for j := 0; j < n; j++ {
				sol.DroppedWeight[j] = weight(w, j)
			}
			return sol
		}
		sol.Cost = math.Inf(1)
		return sol
	}
	sort.Slice(order, func(a, b int) bool { return d[order[a]] > d[order[b]] })
	budget := t
	var cost float64
	for _, j := range order {
		wj := weight(w, j)
		if wj <= budget {
			budget -= wj
			sol.DroppedWeight[j] = wj
			continue
		}
		if budget > 0 {
			sol.DroppedWeight[j] = budget
			wj -= budget
			budget = 0
		}
		cost += wj * d[j]
	}
	sol.Cost = cost
	return sol
}

// EvalSum is Eval returning only the cost (avoids the slices). It is the
// reference partial-cost evaluator: the fast engine's swap evaluation
// (descend) must agree with it bit-for-bit, and the regression harness
// (cmd/dpc-bench, TestEngineMatchesReference) holds it to that.
func EvalSum(c metric.Costs, w []float64, centers []int, t float64) float64 {
	n := c.Clients()
	ds := make([]cd, n)
	for j := 0; j < n; j++ {
		bd := math.Inf(1)
		for _, f := range centers {
			if x := c.Cost(j, f); x < bd {
				bd = x
			}
		}
		ds[j] = cd{d: bd, w: weight(w, j)}
	}
	if len(centers) == 0 {
		if TotalWeight(c, w) <= t {
			return 0
		}
		return math.Inf(1)
	}
	return partialCostPairs(ds, t)
}

// cd is a (connection cost, client weight) pair of the partial-cost walk.
type cd struct{ d, w float64 }

// partialCostPairs drops the t largest units of weight greedily and sums
// the rest — the tail of EvalSum, shared with the fast swap evaluator so
// weighted instances follow the exact same sort and summation order.
func partialCostPairs(ds []cd, t float64) float64 {
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	budget := t
	var cost float64
	for _, x := range ds {
		if x.w <= budget {
			budget -= x.w
			continue
		}
		keep := x.w
		if budget > 0 {
			keep -= budget
			budget = 0
		}
		cost += keep * x.d
	}
	return cost
}

// partialCostUnit is partialCostPairs for unit weights, on a plain distance
// slice (sorted in place). With every weight equal the descending walk adds
// the same value sequence whatever order ties land in, so a plain float
// sort is bit-identical to the reference pair sort — and several times
// faster, which is why the fast swap evaluator uses it for w == nil.
func partialCostUnit(d []float64, t float64) float64 {
	sort.Float64s(d)
	budget := t
	var cost float64
	for i := len(d) - 1; i >= 0; i-- {
		if budget >= 1 {
			budget--
			continue
		}
		keep := 1.0
		if budget > 0 {
			keep -= budget
			budget = 0
		}
		cost += keep * d[i]
	}
	return cost
}
