package kmedian

import (
	"math/rand"
	"testing"

	"dpc/internal/metric"
)

func benchPoints(n int) *metric.Points {
	r := rand.New(rand.NewSource(1))
	pts := make([]metric.Point, n)
	for i := range pts {
		pts[i] = metric.Point{r.Float64() * 100, r.Float64() * 100}
	}
	return metric.NewPoints(pts)
}

func BenchmarkLocalSearch(b *testing.B) {
	sp := benchPoints(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalSearch(sp, nil, 8, 25, Options{Seed: int64(i)})
	}
}

func BenchmarkLocalSearchQuadraticEngine(b *testing.B) {
	// The faithful Theorem 3.1 engine: all facilities scanned per round.
	sp := benchPoints(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalSearch(sp, nil, 8, 25, Options{Seed: int64(i), SampleFacilities: -1})
	}
}

func BenchmarkJV(b *testing.B) {
	sp := benchPoints(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JV(sp, nil, 5, 5, 0, Options{})
	}
}

func BenchmarkEvalSum(b *testing.B) {
	sp := benchPoints(2000)
	centers := []int{1, 100, 500, 900, 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalSum(sp, nil, centers, 50)
	}
}
