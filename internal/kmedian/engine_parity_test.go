package kmedian

import (
	"math/rand"
	"testing"

	"dpc/internal/engine"
	"dpc/internal/metric"
)

func parityPoints(seed int64, n, dim int) []metric.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]metric.Point, n)
	for i := range pts {
		p := make(metric.Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		pts[i] = p
	}
	return pts
}

func sameSolution(t *testing.T, label string, ref, got Solution) {
	t.Helper()
	if got.Cost != ref.Cost {
		t.Fatalf("%s: cost %v != reference %v", label, got.Cost, ref.Cost)
	}
	if len(got.Centers) != len(ref.Centers) {
		t.Fatalf("%s: %d centers != reference %d", label, len(got.Centers), len(ref.Centers))
	}
	for i := range ref.Centers {
		if got.Centers[i] != ref.Centers[i] {
			t.Fatalf("%s: centers %v != reference %v", label, got.Centers, ref.Centers)
		}
	}
	for j := range ref.DroppedWeight {
		if got.DroppedWeight[j] != ref.DroppedWeight[j] {
			t.Fatalf("%s: dropped weight differs at client %d", label, j)
		}
	}
}

// TestEngineMatchesReference is the core engine contract: the fast local
// search must return bit-identical solutions to the seed sequential
// implementation, for every worker count, with and without the distance
// cache, weighted and unweighted.
func TestEngineMatchesReference(t *testing.T) {
	for _, n := range []int{40, 300, 900} {
		for _, weighted := range []bool{false, true} {
			pts := parityPoints(int64(n)+3, n, 2)
			var w []float64
			if weighted {
				rng := rand.New(rand.NewSource(int64(n)))
				w = make([]float64, n)
				for i := range w {
					w[i] = 0.5 + rng.Float64()*3
				}
			}
			base := metric.NewPoints(pts)
			tt := float64(n / 15)
			ref := LocalSearch(base, w, 6, tt, Options{Seed: 9, Options: engine.Options{Reference: true}})
			for _, workers := range []int{1, 3, 8} {
				for _, cached := range []bool{false, true} {
					var c metric.Costs = base
					if cached {
						c = metric.NewDistCache(base)
					}
					got := LocalSearch(c, w, 6, tt, Options{Seed: 9, Options: engine.Options{Workers: workers}})
					label := "localsearch"
					if cached {
						label += "+cache"
					}
					sameSolution(t, label, ref, got)
				}
			}
		}
	}
}

// TestJVMatchesReference pins the primal-dual engine: the precomputed
// shared edge orders and the parallel event reductions must not change any
// probe of the lambda binary search.
func TestJVMatchesReference(t *testing.T) {
	for _, n := range []int{30, 90, 140} {
		pts := parityPoints(int64(n)+11, n, 2)
		base := metric.NewPoints(pts)
		tt := float64(n / 10)
		ref := JV(base, nil, 4, tt, 0.5, Options{Seed: 5, Options: engine.Options{Reference: true}})
		for _, workers := range []int{1, 4} {
			got := JV(metric.NewDistCache(base), nil, 4, tt, 0.5, Options{Seed: 5, Options: engine.Options{Workers: workers}})
			sameSolution(t, "jv", ref, got)
		}
	}
}

// TestEvalPMatchesEval pins the parallel assignment loop.
func TestEvalPMatchesEval(t *testing.T) {
	pts := parityPoints(21, 700, 3)
	base := metric.NewPoints(pts)
	centers := []int{3, 99, 250, 600}
	ref := Eval(base, nil, centers, 31)
	for _, workers := range []int{2, 5} {
		got := EvalP(base, nil, centers, 31, workers)
		sameSolution(t, "evalp", ref, got)
		for j := range ref.Assign {
			if got.Assign[j] != ref.Assign[j] {
				t.Fatalf("assignment differs at client %d", j)
			}
		}
	}
}

// TestPartialCostUnitMatchesPairs pins the unit-weight fast walk against
// the reference pair walk on adversarial tie patterns.
func TestPartialCostUnitMatchesPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		d := make([]float64, n)
		for i := range d {
			d[i] = float64(rng.Intn(8)) / 4 // many exact ties, incl. zeros
		}
		tt := rng.Float64() * float64(n)
		ds := make([]cd, n)
		for i := range d {
			ds[i] = cd{d: d[i], w: 1}
		}
		want := partialCostPairs(ds, tt)
		got := partialCostUnit(append([]float64(nil), d...), tt)
		if got != want {
			t.Fatalf("trial %d: partialCostUnit = %v, partialCostPairs = %v (d=%v t=%v)", trial, got, want, d, tt)
		}
	}
}
