package kmedian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpc/internal/exact"
	"dpc/internal/metric"
)

// Property: Eval and EvalSum agree on random weighted instances, and
// neither ever reports less than the exact optimum for the same (k,t).
func TestEvalPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		pts := make([]metric.Point, n)
		w := make([]float64, n)
		for i := range pts {
			pts[i] = metric.Point{r.Float64() * 20, r.Float64() * 20}
			w[i] = 0.5 + 2*r.Float64()
		}
		sp := metric.NewPoints(pts)
		k := 1 + r.Intn(2)
		tt := r.Float64() * 2
		centers := []int{r.Intn(n)}
		if k == 2 {
			centers = append(centers, r.Intn(n))
		}
		sol := Eval(sp, w, centers, tt)
		if math.Abs(sol.Cost-EvalSum(sp, w, centers, tt)) > 1e-9*(1+sol.Cost) {
			return false
		}
		// Dropped weight never exceeds the budget.
		var dropped float64
		for _, dw := range sol.DroppedWeight {
			dropped += dw
		}
		if dropped > tt+1e-9 {
			return false
		}
		// The exact optimum over all center subsets can only be cheaper.
		opt := exact.Solve(sp, w, k, tt, exact.Sum)
		return opt.Cost <= sol.Cost+1e-9*(1+sol.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: local search and JV never report a cost below the exact
// optimum and always respect the center budget.
func TestEnginesSoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(6)
		pts := make([]metric.Point, n)
		for i := range pts {
			pts[i] = metric.Point{r.Float64() * 50}
		}
		sp := metric.NewPoints(pts)
		k := 1 + r.Intn(2)
		tt := float64(r.Intn(3))
		opt := exact.Solve(sp, nil, k, tt, exact.Sum)
		ls := LocalSearch(sp, nil, k, tt, Options{Seed: seed})
		if len(ls.Centers) > k || ls.Cost < opt.Cost-1e-9*(1+opt.Cost) {
			return false
		}
		jv := JV(sp, nil, k, tt, 0, Options{})
		return len(jv.Centers) <= k && jv.Cost >= opt.Cost-1e-9*(1+opt.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: cost is monotone non-increasing in the outlier budget.
func TestEvalMonotoneInBudgetQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		pts := make([]metric.Point, n)
		for i := range pts {
			pts[i] = metric.Point{r.Float64() * 100}
		}
		sp := metric.NewPoints(pts)
		centers := []int{r.Intn(n)}
		prev := math.Inf(1)
		for tt := 0; tt <= n; tt++ {
			c := EvalSum(sp, nil, centers, float64(tt))
			if c > prev+1e-9 {
				return false
			}
			prev = c
		}
		return prev == 0 // all dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Warm starts must never hurt determinism or validity.
func TestWarmStartSanity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([]metric.Point, 40)
	for i := range pts {
		pts[i] = metric.Point{r.Float64() * 100, r.Float64() * 100}
	}
	sp := metric.NewPoints(pts)
	cold := LocalSearch(sp, nil, 3, 2, Options{Seed: 5})
	warm := LocalSearch(sp, nil, 3, 2, Options{Seed: 5, Warm: cold.Centers})
	if warm.Cost > cold.Cost+1e-9 {
		t.Fatalf("warm start worsened the solution: %g vs %g", warm.Cost, cold.Cost)
	}
	// Bogus warm lists are sanitized.
	junk := LocalSearch(sp, nil, 3, 2, Options{Seed: 5, Warm: []int{-5, 999, 0, 0, 0}})
	if len(junk.Centers) > 3 {
		t.Fatalf("junk warm start produced %d centers", len(junk.Centers))
	}
}
