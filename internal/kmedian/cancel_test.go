package kmedian

import (
	"context"
	"sync/atomic"
	"testing"

	"dpc/internal/engine"
	"dpc/internal/metric"
)

// countingCosts counts oracle calls and can fire a cancel once the count
// crosses a threshold — a deterministic way to cancel "mid-solve" without
// timers.
type countingCosts struct {
	c      metric.Costs
	calls  atomic.Int64
	cancel context.CancelFunc
	after  int64
}

func (cc *countingCosts) Clients() int    { return cc.c.Clients() }
func (cc *countingCosts) Facilities() int { return cc.c.Facilities() }
func (cc *countingCosts) Cost(i, f int) float64 {
	if n := cc.calls.Add(1); cc.cancel != nil && n == cc.after {
		cc.cancel()
	}
	return cc.c.Cost(i, f)
}

func cancelTestPoints(n int) []metric.Point {
	pts := make([]metric.Point, n)
	x := uint64(99)
	for i := range pts {
		x = x*6364136223846793005 + 1442695040888963407
		pts[i] = metric.Point{float64(x % 977), float64((x >> 20) % 977)}
	}
	return pts
}

// TestLocalSearchCancelMidSolve cancels the context after a fixed number
// of oracle calls and asserts the solver stops doing work shortly after,
// instead of finishing all remaining descent rounds and restarts.
func TestLocalSearchCancelMidSolve(t *testing.T) {
	pts := cancelTestPoints(400)
	base := metric.NewPoints(pts)
	opts := Options{Seed: 3, Restarts: 4, SampleFacilities: -1}

	full := &countingCosts{c: base}
	LocalSearch(full, nil, 8, 20, opts)
	fullCalls := full.calls.Load()

	ctx, cancel := context.WithCancel(context.Background())
	cut := &countingCosts{c: base, cancel: cancel, after: fullCalls / 20}
	o := opts
	o.Ctx = ctx
	LocalSearch(cut, nil, 8, 20, o)
	if got := cut.calls.Load(); got > fullCalls/4 {
		t.Fatalf("cancelled solve still made %d oracle calls (full solve: %d); preemption is not cutting work", got, fullCalls)
	}

	// Already-cancelled context: near-zero work.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	o.Ctx = pre
	dead := &countingCosts{c: base}
	LocalSearch(dead, nil, 8, 20, o)
	if got := dead.calls.Load(); got > int64(len(pts)) {
		t.Fatalf("pre-cancelled solve made %d oracle calls", got)
	}
}

// TestJVCancelMidSolve does the same for the Lagrangian engine: cancelling
// mid-binary-search must stop further probes and the in-flight ascent.
func TestJVCancelMidSolve(t *testing.T) {
	pts := cancelTestPoints(130)
	base := metric.NewPoints(pts)
	opts := Options{Seed: 3, Options: engine.Options{Workers: 1}}

	full := &countingCosts{c: base}
	JV(full, nil, 6, 10, 0, opts)
	fullCalls := full.calls.Load()

	ctx, cancel := context.WithCancel(context.Background())
	cut := &countingCosts{c: base, cancel: cancel, after: fullCalls / 20}
	o := opts
	o.Ctx = ctx
	JV(cut, nil, 6, 10, 0, o)
	if got := cut.calls.Load(); got > fullCalls/2 {
		t.Fatalf("cancelled JV still made %d oracle calls (full solve: %d)", got, fullCalls)
	}
}

// TestCancelNeverChangesLiveResults pins the invariant that makes Ctx safe
// to thread everywhere: a context that is never cancelled must leave every
// decision bit-identical to a no-context solve.
func TestCancelNeverChangesLiveResults(t *testing.T) {
	pts := cancelTestPoints(200)
	base := metric.NewPoints(pts)
	for _, engine := range []Engine{EngineLocalSearch, EngineJV} {
		plain := Solve(base, nil, 5, 12, engine, Options{Seed: 7})
		ctxed := Solve(base, nil, 5, 12, engine, Options{Seed: 7, Ctx: context.Background()})
		if plain.Cost != ctxed.Cost || len(plain.Centers) != len(ctxed.Centers) {
			t.Fatalf("%v: live context changed the solution (%v vs %v)", engine, plain.Cost, ctxed.Cost)
		}
		for i := range plain.Centers {
			if plain.Centers[i] != ctxed.Centers[i] {
				t.Fatalf("%v: center %d differs under a live context", engine, i)
			}
		}
	}
}
