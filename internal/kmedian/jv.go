package kmedian

import (
	"math"
	"sort"

	"dpc/internal/metric"
	"dpc/internal/par"
)

// jvOrders is the lambda-independent edge structure of the dual ascent:
// every facility's connection-cost column and its clients sorted by that
// cost. JV's binary search probes dozens of facility prices on the same
// instance, so the fast engine computes this once and shares it across
// every probe (the columns and sorts are per-facility independent and
// spread over the worker pool); the reference engine rebuilds it per probe,
// as the seed implementation did.
type jvOrders struct {
	byCost [][]int
	costs  [][]float64
}

// jvPrecompute builds the per-facility sorted client orders. A cancelled
// opt.Ctx skips the remaining facility columns (leaving them nil); jvRun
// never touches those rows because its event loop breaks on the same
// cancelled context before any event fires.
func jvPrecompute(c metric.Costs, opt Options) *jvOrders {
	nc, nf := c.Clients(), c.Facilities()
	ord := &jvOrders{byCost: make([][]int, nf), costs: make([][]float64, nf)}
	par.For(opt.Workers, nf, func(f int) {
		if opt.canceled() {
			return
		}
		idx := make([]int, nc)
		cf := make([]float64, nc)
		for j := 0; j < nc; j++ {
			idx[j] = j
			cf[j] = c.Cost(j, f)
		}
		sort.Slice(idx, func(a, b int) bool { return cf[idx[a]] < cf[idx[b]] })
		ord.byCost[f] = idx
		ord.costs[f] = cf
	})
	return ord
}

// jvResult is the outcome of one primal-dual run at a fixed facility price.
type jvResult struct {
	open      []int   // facilities surviving the pruning, in opening order
	outlier   []bool  // clients still active (unfrozen) when the ascent stopped
	numOpen   int     // len(open)
	outlierW  float64 // total active weight at stop
	stopTheta float64 // dual time at stop
}

// jvRun performs the Jain-Vazirani dual ascent [17] with uniform facility
// opening cost lambda, stopping early once the remaining active (unfrozen)
// client weight is at most stopW — the outlier adaptation observed in [4]
// and used by Theorem 3.1: "we can simply stop the algorithm when there are
// t points unprocessed". The unfrozen clients become the outliers.
//
// All active clients raise their dual alpha_j at unit rate (so alpha_j =
// theta for active j). A facility opens when its collected surplus
// sum_j w_j * max(0, alpha_j - c_jf) reaches lambda; opening freezes every
// active client with a tight edge. After the ascent, temporarily open
// facilities are pruned to a maximal independent set of the conflict graph
// (two facilities conflict when some client contributes positively to
// both), greedily in opening order.
func jvRun(c metric.Costs, w []float64, lambda, stopW float64, opt Options, ord *jvOrders) jvResult {
	workers := opt.Workers
	nc, nf := c.Clients(), c.Facilities()
	active := make([]bool, nc)
	alpha := make([]float64, nc)
	activeW := 0.0
	for j := 0; j < nc; j++ {
		active[j] = true
		activeW += weight(w, j)
	}
	if ord == nil {
		ord = jvPrecompute(c, opt)
	}
	byCost, costs := ord.byCost, ord.costs
	frozenContrib := make([]float64, nf) // locked surplus from frozen clients
	isOpen := make([]bool, nf)
	var openOrder []int
	theta := 0.0

	freeze := func(j int, a float64) {
		active[j] = false
		alpha[j] = a
		activeW -= weight(w, j)
		par.For(workers, nf, func(f int) {
			if costs[f] == nil {
				return // column skipped by a cancelled precompute
			}
			if s := a - costs[f][j]; s > 0 {
				frozenContrib[f] += weight(w, j) * s
			}
		})
	}

	// nextFacilityEvent returns the earliest time >= theta at which an
	// unopened facility becomes fully paid, or +Inf. The per-facility
	// breakpoint walks are independent; the reduction breaks ties toward
	// the lowest facility index, like the sequential scan.
	facilityTime := func(f int) float64 {
		if isOpen[f] {
			return math.Inf(1)
		}
		// Walk breakpoints of P_f(th) = frozenContrib + sum over active
		// clients with c <= th of w*(th - c).
		W, S := 0.0, 0.0
		tf := math.Inf(1)
		order := byCost[f]
		for i := 0; i <= len(order); i++ {
			segEnd := math.Inf(1)
			if i < len(order) {
				segEnd = costs[f][order[i]]
			}
			if W > 0 {
				th := (lambda - frozenContrib[f] + S) / W
				if th < theta {
					th = theta
				}
				if th <= segEnd {
					tf = th
					break
				}
			} else if frozenContrib[f] >= lambda {
				tf = theta
				break
			}
			if i < len(order) {
				j := order[i]
				if active[j] {
					W += weight(w, j)
					S += weight(w, j) * costs[f][j]
				}
			}
		}
		return tf
	}
	nextFacilityEvent := func() (float64, int) {
		f, tf := par.MinIndex(workers, nf, facilityTime)
		if math.IsInf(tf, 1) {
			return tf, -1
		}
		return tf, f
	}

	// nextClientEvent returns the earliest time >= theta at which an active
	// client reaches a tight edge to an open facility, or +Inf; ties break
	// toward the lowest client index, like the sequential scan.
	clientTime := func(j int) float64 {
		if !active[j] {
			return math.Inf(1)
		}
		bestT := math.Inf(1)
		for f := 0; f < nf; f++ {
			if !isOpen[f] {
				continue
			}
			t := costs[f][j]
			if t < theta {
				t = theta
			}
			if t < bestT {
				bestT = t
			}
		}
		return bestT
	}
	nextClientEvent := func() (float64, int) {
		j, tc := par.MinIndex(workers, nc, clientTime)
		if math.IsInf(tc, 1) {
			return tc, -1
		}
		return tc, j
	}

	const eps = 1e-12
	for activeW > stopW+eps {
		if opt.canceled() {
			break // preempted mid-ascent: prune what opened so far and exit
		}
		tf, f := nextFacilityEvent()
		tc, j := nextClientEvent()
		if math.IsInf(tf, 1) && math.IsInf(tc, 1) {
			break // no facilities at all
		}
		if tf <= tc {
			theta = tf
			isOpen[f] = true
			openOrder = append(openOrder, f)
			for jj := 0; jj < nc; jj++ {
				if active[jj] && costs[f][jj] <= theta+eps {
					freeze(jj, theta)
					if activeW <= stopW+eps {
						break
					}
				}
			}
		} else {
			theta = tc
			freeze(j, theta)
		}
	}

	// Pruning: greedy maximal independent set in opening order. Client j's
	// effective dual is alpha_j if frozen, theta if still active.
	effAlpha := func(j int) float64 {
		if active[j] {
			return theta
		}
		return alpha[j]
	}
	conflicts := func(f, g int) bool {
		for j := 0; j < nc; j++ {
			a := effAlpha(j)
			if a > costs[f][j]+eps && a > costs[g][j]+eps {
				return true
			}
		}
		return false
	}
	var open []int
	for _, f := range openOrder {
		ok := true
		for _, g := range open {
			if conflicts(f, g) {
				ok = false
				break
			}
		}
		if ok {
			open = append(open, f)
		}
	}
	out := make([]bool, nc)
	copy(out, active)
	return jvResult{open: open, outlier: out, numOpen: len(open), outlierW: activeW, stopTheta: theta}
}

// JV solves the (k,t)-median problem with the Lagrangian relaxation: binary
// search on the uniform facility price lambda until the pruned primal-dual
// solution brackets k facilities, then round per Appendix B. The rounding
// here is derandomized: the convex-combination argument of the paper proves
// one of a small family of candidate center sets is good, so we evaluate
// all of them and keep the cheapest feasible one.
//
// Returned solution has at most k centers; its Cost is evaluated with
// outlier budget (1+eps)t (set eps = 0 for the unicriterion evaluation).
func JV(c metric.Costs, w []float64, k int, t float64, eps float64, opt Options) Solution {
	if opt.Reference {
		// The reference baseline is sequential: without this, Workers=0
		// would resolve to NumCPU inside the parallel loops.
		opt.Workers = 1
	}
	nc, nf := c.Clients(), c.Facilities()
	if nc == 0 || nf == 0 || k <= 0 {
		return Eval(c, w, nil, t)
	}
	if TotalWeight(c, w) <= t {
		return Eval(c, w, nil, t)
	}
	if k >= nf {
		all := make([]int, nf)
		for f := range all {
			all[f] = f
		}
		return Eval(c, w, all, t*(1+eps))
	}
	budget := t * (1 + eps)

	// lambda = 0 opens ~one facility per client; very large lambda opens one.
	var maxCost float64
	for j := 0; j < nc; j++ {
		if opt.canceled() {
			break // preempted: any finite bracket works for a doomed search
		}
		for f := 0; f < nf; f++ {
			if x := c.Cost(j, f); x > maxCost {
				maxCost = x
			}
		}
	}
	lo, hi := 0.0, (TotalWeight(c, w)+1)*(maxCost+1)

	var small, large *jvResult // small: <= k facilities; large: > k
	var ord *jvOrders
	if !opt.Reference {
		ord = jvPrecompute(c, opt)
	}
	run := func(lambda float64) jvResult { return jvRun(c, w, lambda, t, opt, ord) }

	rLo := run(lo)
	if rLo.numOpen <= k { // even free facilities give <= k: done
		return Eval(c, w, rLo.open, budget)
	}
	large = &rLo
	rHi := run(hi)
	small = &rHi
	for iter := 0; iter < 60 && hi-lo > 1e-9*(1+hi); iter++ {
		if opt.canceled() {
			break // preempted: round with the brackets probed so far
		}
		mid := (lo + hi) / 2
		r := run(mid)
		if r.numOpen == k {
			return Eval(c, w, r.open, budget)
		}
		if r.numOpen > k {
			large, lo = &r, mid
		} else {
			small, hi = &r, mid
		}
	}

	// Round: candidates per Appendix B's convex combination.
	var cands [][]int
	if small != nil {
		cands = append(cands, small.open)
	}
	if large != nil {
		// (a) top-k large facilities by served inlier weight;
		cands = append(cands, topKByServedWeight(c, w, large.open, k, t))
		if small != nil && len(small.open) > 0 {
			// (b) pair each small center with its closest large center and
			// top up to k with the heaviest unpaired large centers.
			cands = append(cands, pairAndFill(c, w, small.open, large.open, k, t))
		}
	}
	best := Solution{Cost: math.Inf(1)}
	for _, centers := range cands {
		if len(centers) == 0 || len(centers) > k {
			continue
		}
		if s := Eval(c, w, centers, budget); s.Cost < best.Cost {
			best = s
		}
	}
	if math.IsInf(best.Cost, 1) {
		return Eval(c, w, nil, budget)
	}
	return best
}

// orderByServedWeight returns the facilities of `open` sorted by the inlier
// weight they serve under the (|open|, t)-evaluation, heaviest first.
func orderByServedWeight(c metric.Costs, w []float64, open []int, t float64) []int {
	sol := Eval(c, w, open, t)
	served := make(map[int]float64, len(open))
	for j, f := range sol.Assign {
		if f >= 0 {
			served[f] += weight(w, j) - sol.DroppedWeight[j]
		}
	}
	order := append([]int(nil), open...)
	sort.Slice(order, func(a, b int) bool {
		if served[order[a]] != served[order[b]] {
			return served[order[a]] > served[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// topKByServedWeight keeps the k facilities of `open` serving the most
// inlier weight under the (|open|, t)-evaluation.
func topKByServedWeight(c metric.Costs, w []float64, open []int, k int, t float64) []int {
	if len(open) <= k {
		return open
	}
	order := orderByServedWeight(c, w, open, t)
	out := append([]int(nil), order[:k]...)
	sort.Ints(out)
	return out
}

// pairAndFill pairs every small-solution center with its closest
// large-solution center (closeness via the cheapest two-hop client path,
// since Costs has no facility-facility oracle) and fills up to k centers
// with the heaviest remaining large centers.
func pairAndFill(c metric.Costs, w []float64, small, large []int, k int, t float64) []int {
	nc := c.Clients()
	cp := metric.CostPrunerOf(c)
	pairDist := func(f, g int) float64 {
		best := math.Inf(1)
		for j := 0; j < nc; j++ {
			// Either term alone proving >= best bounds the nonnegative sum
			// away from a strict improvement; skip both evaluations.
			if cp != nil && (cp.PruneCost(j, f, best) || cp.PruneCost(j, g, best)) {
				continue
			}
			if d := c.Cost(j, f) + c.Cost(j, g); d < best {
				best = d
			}
		}
		return best
	}
	chosen := make(map[int]bool)
	for _, f := range small {
		bestG, bd := -1, math.Inf(1)
		for _, g := range large {
			if d := pairDist(f, g); d < bd {
				bd, bestG = d, g
			}
		}
		if bestG >= 0 {
			chosen[bestG] = true
		}
	}
	for _, g := range orderByServedWeight(c, w, large, t) {
		if len(chosen) >= k {
			break
		}
		chosen[g] = true
	}
	out := make([]int, 0, len(chosen))
	for g := range chosen {
		out = append(out, g)
	}
	sort.Ints(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
