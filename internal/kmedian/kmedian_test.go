package kmedian

import (
	"math"
	"math/rand"
	"testing"

	"dpc/internal/exact"
	"dpc/internal/metric"
)

func line(xs ...float64) *metric.Points {
	pts := make([]metric.Point, len(xs))
	for i, x := range xs {
		pts[i] = metric.Point{x}
	}
	return metric.NewPoints(pts)
}

func randPoints(r *rand.Rand, n, dim int, scale float64) *metric.Points {
	pts := make([]metric.Point, n)
	for i := range pts {
		p := make(metric.Point, dim)
		for d := range p {
			p[d] = r.Float64() * scale
		}
		pts[i] = p
	}
	return metric.NewPoints(pts)
}

func TestEvalBasics(t *testing.T) {
	sp := line(0, 1, 2, 100)
	sol := Eval(sp, nil, []int{1}, 0)
	if math.Abs(sol.Cost-(1+0+1+99)) > 1e-12 {
		t.Fatalf("cost = %g, want 101", sol.Cost)
	}
	sol = Eval(sp, nil, []int{1}, 1)
	if math.Abs(sol.Cost-2) > 1e-12 {
		t.Fatalf("cost = %g, want 2", sol.Cost)
	}
	if got := sol.Outliers(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("outliers = %v, want [3]", got)
	}
	if sol.Assign[0] != 1 {
		t.Fatalf("assign = %v", sol.Assign)
	}
	if EvalSum(sp, nil, []int{1}, 1) != sol.Cost {
		t.Fatal("EvalSum disagrees with Eval")
	}
}

func TestEvalWeightedFractionalDrop(t *testing.T) {
	m := metric.Matrix{{0, 10}, {10, 0}}
	w := []float64{1, 4}
	// Center 0; t = 1.5 drops 1.5 units of the weight-4 client at cost 10.
	sol := Eval(m, w, []int{0}, 1.5)
	if math.Abs(sol.Cost-25) > 1e-12 {
		t.Fatalf("cost = %g, want 25", sol.Cost)
	}
	if math.Abs(sol.DroppedWeight[1]-1.5) > 1e-12 {
		t.Fatalf("dropped = %v", sol.DroppedWeight)
	}
}

func TestEvalNoCenters(t *testing.T) {
	sp := line(0, 1)
	if got := EvalSum(sp, nil, nil, 5); got != 0 {
		t.Fatalf("t>=n no centers should cost 0, got %g", got)
	}
	if got := EvalSum(sp, nil, nil, 1); !math.IsInf(got, 1) {
		t.Fatalf("t<n no centers should be +Inf, got %g", got)
	}
	sol := Eval(sp, nil, nil, 5)
	if sol.DroppedWeight[0] != 1 || sol.DroppedWeight[1] != 1 {
		t.Fatal("all weight should be dropped")
	}
}

func TestLocalSearchSeparatedClusters(t *testing.T) {
	// Two clusters + far outlier; k=2 t=1 should find near-zero cost.
	sp := line(0, 0.1, 0.2, 50, 50.1, 50.2, 1000)
	sol := LocalSearch(sp, nil, 2, 1, Options{Seed: 1})
	if sol.Cost > 1 {
		t.Fatalf("cost = %g, want small", sol.Cost)
	}
	if len(sol.Centers) != 2 {
		t.Fatalf("centers = %v", sol.Centers)
	}
	if got := sol.Outliers(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("outliers = %v, want [6]", got)
	}
}

func TestLocalSearchNearOptimalOnSmall(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	worst := 1.0
	for trial := 0; trial < 20; trial++ {
		sp := randPoints(r, 12, 2, 10)
		k := 1 + r.Intn(3)
		tt := float64(r.Intn(3))
		sol := LocalSearch(sp, nil, k, tt, Options{Seed: int64(trial), Restarts: 3})
		opt := exact.Solve(sp, nil, k, tt, exact.Sum)
		if opt.Cost == 0 {
			if sol.Cost > 1e-9 {
				t.Fatalf("trial %d: opt 0 but got %g", trial, sol.Cost)
			}
			continue
		}
		ratio := sol.Cost / opt.Cost
		if ratio > worst {
			worst = ratio
		}
		if ratio > 3.0 {
			t.Fatalf("trial %d (k=%d,t=%g): local search ratio %.3f too large (%g vs %g)",
				trial, k, tt, ratio, sol.Cost, opt.Cost)
		}
	}
	t.Logf("worst local-search ratio over 20 small instances: %.3f", worst)
}

func TestLocalSearchDeterministicGivenSeed(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	sp := randPoints(r, 60, 3, 100)
	a := LocalSearch(sp, nil, 4, 3, Options{Seed: 42})
	b := LocalSearch(sp, nil, 4, 3, Options{Seed: 42})
	if a.Cost != b.Cost {
		t.Fatalf("non-deterministic: %g vs %g", a.Cost, b.Cost)
	}
	if len(a.Centers) != len(b.Centers) {
		t.Fatal("center sets differ")
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			t.Fatal("center sets differ")
		}
	}
}

func TestLocalSearchDegenerate(t *testing.T) {
	sp := line(0, 1)
	if sol := LocalSearch(sp, nil, 0, 0, Options{}); !math.IsInf(sol.Cost, 1) {
		t.Fatal("k=0, t<n should be infeasible")
	}
	if sol := LocalSearch(sp, nil, 1, 5, Options{}); sol.Cost != 0 {
		t.Fatal("t>=n should cost 0")
	}
	empty := metric.NewPoints(nil)
	if sol := LocalSearch(empty, nil, 1, 0, Options{}); sol.Cost != 0 {
		t.Fatal("empty instance should cost 0")
	}
	// k larger than facility count.
	if sol := LocalSearch(sp, nil, 5, 0, Options{}); sol.Cost > 1e-12 {
		t.Fatalf("k>=n should cost 0, got %g", sol.Cost)
	}
}

func TestLocalSearchWeightedMatchesUnitExpansion(t *testing.T) {
	// A weighted instance must behave like its unit-weight expansion.
	r := rand.New(rand.NewSource(12))
	base := randPoints(r, 8, 2, 10)
	wts := make([]float64, 8)
	var expanded []metric.Point
	for i := range wts {
		wts[i] = float64(1 + r.Intn(3))
		for c := 0; c < int(wts[i]); c++ {
			expanded = append(expanded, base.Pts[i])
		}
	}
	expSp := metric.NewPoints(expanded)
	for k := 1; k <= 2; k++ {
		for tt := 0; tt <= 2; tt++ {
			wOpt := exact.Solve(base, wts, k, float64(tt), exact.Sum)
			uOpt := exact.Solve(expSp, nil, k, float64(tt), exact.Sum)
			if math.Abs(wOpt.Cost-uOpt.Cost) > 1e-9*(1+uOpt.Cost) {
				t.Fatalf("weighted exact %g != unit expansion exact %g (k=%d t=%d)",
					wOpt.Cost, uOpt.Cost, k, tt)
			}
			sol := LocalSearch(base, wts, k, float64(tt), Options{Seed: 5, Restarts: 3})
			if sol.Cost < wOpt.Cost-1e-9 {
				t.Fatalf("local search beat the exact optimum: %g < %g", sol.Cost, wOpt.Cost)
			}
		}
	}
}

func TestJVFindsClusters(t *testing.T) {
	sp := line(0, 0.5, 1, 100, 100.5, 101, 5000)
	sol := JV(sp, nil, 2, 1, 0, Options{})
	if len(sol.Centers) > 2 {
		t.Fatalf("too many centers: %v", sol.Centers)
	}
	if sol.Cost > 2.1 {
		t.Fatalf("cost = %g, want ~2 (outlier dropped)", sol.Cost)
	}
}

func TestJVApproximationOnSmallInstances(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	worst := 1.0
	for trial := 0; trial < 15; trial++ {
		sp := randPoints(r, 11, 2, 10)
		k := 1 + r.Intn(3)
		tt := float64(r.Intn(3))
		sol := JV(sp, nil, k, tt, 0, Options{})
		if len(sol.Centers) > k {
			t.Fatalf("trial %d: %d centers > k=%d", trial, len(sol.Centers), k)
		}
		opt := exact.Solve(sp, nil, k, tt, exact.Sum)
		if opt.Cost == 0 {
			continue
		}
		ratio := sol.Cost / opt.Cost
		if ratio > worst {
			worst = ratio
		}
		if ratio > 6.0 {
			t.Fatalf("trial %d (k=%d,t=%g): JV ratio %.3f (%g vs %g)",
				trial, k, tt, ratio, sol.Cost, opt.Cost)
		}
	}
	t.Logf("worst JV ratio over 15 small instances: %.3f", worst)
}

func TestJVWeighted(t *testing.T) {
	m := metric.Matrix{
		{0, 1, 40},
		{1, 0, 40},
		{40, 40, 0},
	}
	w := []float64{5, 5, 1}
	sol := JV(m, w, 1, 1, 0, Options{})
	if len(sol.Centers) != 1 {
		t.Fatalf("centers = %v", sol.Centers)
	}
	// Best: center 0 or 1, drop the far light client: cost 5.
	if math.Abs(sol.Cost-5) > 1e-9 {
		t.Fatalf("cost = %g, want 5", sol.Cost)
	}
}

func TestJVDegenerate(t *testing.T) {
	sp := line(0, 1)
	if sol := JV(sp, nil, 1, 5, 0, Options{}); sol.Cost != 0 {
		t.Fatal("t >= n should cost 0")
	}
	if sol := JV(sp, nil, 3, 0, 0, Options{}); sol.Cost != 0 {
		t.Fatal("k >= n should cost 0")
	}
	empty := metric.NewPoints(nil)
	if sol := JV(empty, nil, 1, 0, 0, Options{}); sol.Cost != 0 {
		t.Fatal("empty should cost 0")
	}
}

func TestBicriteriaRelaxModes(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	sp := randPoints(r, 40, 2, 100)
	k, tt, eps := 3, 2.0, 1.0
	for _, engine := range []Engine{EngineLocalSearch, EngineJV, EngineAuto} {
		so := Bicriteria(sp, nil, k, tt, eps, RelaxOutliers, engine, Options{Seed: 1})
		if len(so.Centers) > k {
			t.Fatalf("%v RelaxOutliers: %d centers > k", engine, len(so.Centers))
		}
		if so.Budget > tt*(1+eps)+1e-9 {
			t.Fatalf("%v RelaxOutliers: budget %g > (1+eps)t", engine, so.Budget)
		}
		sc := Bicriteria(sp, nil, k, tt, eps, RelaxCenters, engine, Options{Seed: 1})
		if len(sc.Centers) > int(math.Ceil(float64(k)*(1+eps))) {
			t.Fatalf("%v RelaxCenters: %d centers", engine, len(sc.Centers))
		}
		if sc.Budget > tt+1e-9 {
			t.Fatalf("%v RelaxCenters: budget %g > t", engine, sc.Budget)
		}
	}
}

// Theorem 3.1 quality shape: the (k,(1+eps)t) solution should not be worse
// than O(1/eps) * OPT(k, t). We verify a generous constant on small cases.
func TestBicriteriaQuality(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		sp := randPoints(r, 12, 2, 10)
		k, tt := 2, 2.0
		opt := exact.Solve(sp, nil, k, tt, exact.Sum)
		for _, eps := range []float64{0.5, 1, 2} {
			sol := Bicriteria(sp, nil, k, tt, eps, RelaxOutliers, EngineAuto, Options{Seed: int64(trial)})
			bound := math.Max(6, 6/eps) * opt.Cost
			if opt.Cost > 0 && sol.Cost > bound+1e-9 {
				t.Fatalf("trial %d eps=%g: cost %g > %g (opt %g)", trial, eps, sol.Cost, bound, opt.Cost)
			}
		}
	}
}

func TestMeansViaSquaredCosts(t *testing.T) {
	sp := line(0, 1, 2, 30, 31, 32, 500)
	sq := metric.Squared{C: sp}
	sol := LocalSearch(sq, nil, 2, 1, Options{Seed: 2, Restarts: 2})
	// Clusters {0,1,2} and {30,31,32} with centers at the middles: cost
	// 1+0+1 + 1+0+1 = 4 (squared); outlier 500 dropped.
	if sol.Cost > 6 {
		t.Fatalf("means cost = %g, want <= 6", sol.Cost)
	}
	if got := sol.Outliers(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("outliers = %v", got)
	}
}
