package dataio

import (
	"math"
	"strings"
	"testing"
)

func TestReadNodesCSVBasic(t *testing.T) {
	in := `a,0.5,0,0
a,0.5,1,0
b,1,10,10
`
	g, nodes, err := ReadNodesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || g.N() != 3 {
		t.Fatalf("nodes=%d ground=%d", len(nodes), g.N())
	}
	if len(nodes[0].Support) != 2 || len(nodes[1].Support) != 1 {
		t.Fatalf("supports: %v %v", nodes[0].Support, nodes[1].Support)
	}
	if math.Abs(nodes[0].Prob[0]-0.5) > 1e-12 {
		t.Fatalf("prob = %v", nodes[0].Prob)
	}
}

func TestReadNodesCSVNormalizes(t *testing.T) {
	in := "a,2,0,0\na,6,1,1\n"
	_, nodes, err := ReadNodesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nodes[0].Prob[0]-0.25) > 1e-12 || math.Abs(nodes[0].Prob[1]-0.75) > 1e-12 {
		t.Fatalf("probs = %v", nodes[0].Prob)
	}
}

func TestReadNodesCSVHeader(t *testing.T) {
	in := "id,prob,x,y\na,1,0,0\n"
	_, nodes, err := ReadNodesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("nodes = %d", len(nodes))
	}
}

func TestReadNodesCSVErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"a,1\n",                // too few columns
		"a,1,0,0\na,bad,1,1\n", // bad prob after data
		"a,-1,0,0\n",           // negative prob
		"a,1,x,0\n",            // bad coordinate
		"a,1,0,0\nb,1,1,1,2\n", // ragged dims
		"id,prob,x\n",          // header only
	}
	for i, c := range cases {
		if _, _, err := ReadNodesCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestSplitNodesRoundRobin(t *testing.T) {
	in := "a,1,0,0\nb,1,1,1\nc,1,2,2\n"
	_, nodes, err := ReadNodesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sites := SplitNodesRoundRobin(nodes, 2)
	if len(sites) != 2 || len(sites[0]) != 2 || len(sites[1]) != 1 {
		t.Fatalf("split = %d/%d", len(sites[0]), len(sites[1]))
	}
	if len(SplitNodesRoundRobin(nodes, 0)) != 1 {
		t.Fatal("s=0 should clamp")
	}
	if got := SplitNodesRoundRobin(nodes[:1], 9); len(got) != 1 {
		t.Fatal("empty tails should drop")
	}
}
