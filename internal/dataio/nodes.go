package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

// ReadNodesCSV parses uncertain nodes from CSV rows of the form
//
//	node_id, probability, coord_1, ..., coord_d
//
// Rows sharing a node_id form that node's support; the ground set is the
// union of all support points. Probabilities must be positive and are
// normalized per node. A single leading non-numeric-probability row is
// treated as a header.
func ReadNodesCSV(r io.Reader) (*uncertain.Ground, []uncertain.Node, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	g := &uncertain.Ground{}
	var nodes []uncertain.Node
	order := map[string]int{}
	dim := -1
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dataio: row %d: %w", row+1, err)
		}
		row++
		if len(rec) < 3 {
			return nil, nil, fmt.Errorf("dataio: row %d: need id, prob and coordinates", row)
		}
		prob, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			if row == 1 && len(nodes) == 0 {
				continue // header
			}
			return nil, nil, fmt.Errorf("dataio: row %d: bad probability %q", row, rec[1])
		}
		if prob <= 0 || math.IsNaN(prob) || math.IsInf(prob, 0) {
			return nil, nil, fmt.Errorf("dataio: row %d: probability %g out of range", row, prob)
		}
		p := make(metric.Point, len(rec)-2)
		for i, cell := range rec[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("dataio: row %d: bad coordinate %q", row, cell)
			}
			p[i] = v
		}
		if dim == -1 {
			dim = len(p)
		} else if len(p) != dim {
			return nil, nil, fmt.Errorf("dataio: row %d has dim %d, want %d", row, len(p), dim)
		}
		id := rec[0]
		j, ok := order[id]
		if !ok {
			j = len(nodes)
			order[id] = j
			nodes = append(nodes, uncertain.Node{})
		}
		nodes[j].Support = append(nodes[j].Support, len(g.Pts))
		nodes[j].Prob = append(nodes[j].Prob, prob)
		g.Pts = append(g.Pts, p)
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("dataio: no nodes")
	}
	for j := range nodes {
		var tot float64
		for _, p := range nodes[j].Prob {
			tot += p
		}
		for q := range nodes[j].Prob {
			nodes[j].Prob[q] /= tot
		}
		if err := nodes[j].Validate(g); err != nil {
			return nil, nil, fmt.Errorf("dataio: node %d: %w", j, err)
		}
	}
	return g, nodes, nil
}

// SplitNodesRoundRobin partitions nodes across s sites deterministically.
func SplitNodesRoundRobin(nodes []uncertain.Node, s int) [][]uncertain.Node {
	if s < 1 {
		s = 1
	}
	sites := make([][]uncertain.Node, s)
	for i, nd := range nodes {
		sites[i%s] = append(sites[i%s], nd)
	}
	out := sites[:0]
	for _, site := range sites {
		if len(site) > 0 {
			out = append(out, site)
		}
	}
	return out
}
