package dataio

import (
	"bytes"
	"strings"
	"testing"

	"dpc/internal/metric"
)

func TestReadPointsCSVBasic(t *testing.T) {
	pts, err := ReadPointsCSV(strings.NewReader("1,2\n3,4\n5,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || !pts[1].Equal(metric.Point{3, 4}) {
		t.Fatalf("pts = %v", pts)
	}
}

func TestReadPointsCSVHeader(t *testing.T) {
	pts, err := ReadPointsCSV(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("pts = %v", pts)
	}
}

func TestReadPointsCSVErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"x,y\n",         // header only
		"1,2\nfoo,4\n",  // non-numeric after data
		"1,2\n3\n",      // ragged
		"1,2\nNaN,4\n",  // NaN
		"1,2\n+Inf,4\n", // Inf
	}
	for i, c := range cases {
		if _, err := ReadPointsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []metric.Point{{1.5, -2}, {0.25, 1e9}}
	var buf bytes.Buffer
	if err := WritePointsCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPointsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !out[0].Equal(in[0]) || !out[1].Equal(in[1]) {
		t.Fatalf("round trip: %v", out)
	}
}

func TestSplitRoundRobin(t *testing.T) {
	pts := []metric.Point{{0}, {1}, {2}, {3}, {4}}
	sites := SplitRoundRobin(pts, 2)
	if len(sites) != 2 || len(sites[0]) != 3 || len(sites[1]) != 2 {
		t.Fatalf("split = %v", sites)
	}
	// More sites than points: empty tails dropped.
	sites = SplitRoundRobin(pts[:2], 5)
	if len(sites) != 2 {
		t.Fatalf("split = %v", sites)
	}
	if len(SplitRoundRobin(pts, 0)) != 1 {
		t.Fatal("s=0 should clamp to 1")
	}
}

func TestAssign(t *testing.T) {
	pts := []metric.Point{{0}, {1}, {10}, {100}}
	centers := []metric.Point{{0}, {10}}
	a := Assign(pts, centers, 1, false)
	if a.Center[0] != 0 || a.Center[1] != 0 || a.Center[2] != 1 {
		t.Fatalf("assign = %v", a.Center)
	}
	if a.Center[3] != -1 {
		t.Fatalf("far point should be outlier: %v", a.Center)
	}
	if a.Dropped != 1 {
		t.Fatalf("dropped = %d", a.Dropped)
	}
	// Squared mode changes distances but not this assignment.
	sq := Assign(pts, centers, 0, true)
	if sq.Dist[1] != 1 { // squared distance of point 1 to center 0
		t.Fatalf("squared dist = %g", sq.Dist[1])
	}
}

func TestWriteAssignmentCSV(t *testing.T) {
	a := Assign([]metric.Point{{0}, {5}}, []metric.Point{{0}}, 1, false)
	var buf bytes.Buffer
	if err := WriteAssignmentCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "index,center,distance\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1,-1,5") {
		t.Fatalf("outlier row missing: %q", out)
	}
}
