// Package dataio reads and writes point datasets as CSV so the command-line
// tools can run on real data (one point per row, one float per column; an
// optional non-numeric header row is skipped).
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"dpc/internal/metric"
)

// ReadPointsCSV parses a CSV stream of points. All rows must have the same
// number of numeric columns; a single leading non-numeric row is treated as
// a header and skipped.
func ReadPointsCSV(r io.Reader) ([]metric.Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate ourselves for better errors
	var pts []metric.Point
	dim := -1
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: row %d: %w", row+1, err)
		}
		row++
		p := make(metric.Point, len(rec))
		ok := true
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
			p[i] = v
		}
		if !ok {
			if row == 1 && len(pts) == 0 {
				continue // header
			}
			return nil, fmt.Errorf("dataio: row %d: non-numeric cell", row)
		}
		if dim == -1 {
			dim = len(p)
		} else if len(p) != dim {
			return nil, fmt.Errorf("dataio: row %d has %d columns, want %d", row, len(p), dim)
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("dataio: no points")
	}
	return pts, nil
}

// WritePointsCSV writes points as CSV rows.
func WritePointsCSV(w io.Writer, pts []metric.Point) error {
	cw := csv.NewWriter(w)
	for _, p := range pts {
		rec := make([]string, len(p))
		for i, v := range p {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SplitRoundRobin partitions points across s sites deterministically.
func SplitRoundRobin(pts []metric.Point, s int) [][]metric.Point {
	if s < 1 {
		s = 1
	}
	sites := make([][]metric.Point, s)
	for i, p := range pts {
		sites[i%s] = append(sites[i%s], p)
	}
	// Drop empty tails when s > n.
	out := sites[:0]
	for _, site := range sites {
		if len(site) > 0 {
			out = append(out, site)
		}
	}
	return out
}

// Assignment labels every point with its nearest center and marks the
// `budget` largest connection costs as outliers (center index -1).
type Assignment struct {
	Center  []int // per point; -1 for outliers
	Dist    []float64
	Dropped int
}

// Assign computes the assignment of points to centers under the given
// objective ("means" squares distances) and outlier budget.
func Assign(pts []metric.Point, centers []metric.Point, budget float64, squared bool) Assignment {
	n := len(pts)
	a := Assignment{Center: make([]int, n), Dist: make([]float64, n)}
	order := make([]int, n)
	for j, p := range pts {
		best, bd := -1, math.Inf(1)
		for c, cp := range centers {
			x := metric.L2(p, cp)
			if squared {
				x = metric.SqL2(p, cp)
			}
			if x < bd {
				bd, best = x, c
			}
		}
		a.Center[j] = best
		a.Dist[j] = bd
		order[j] = j
	}
	sort.Slice(order, func(x, y int) bool { return a.Dist[order[x]] > a.Dist[order[y]] })
	drop := int(budget)
	if drop > n {
		drop = n
	}
	for i := 0; i < drop; i++ {
		a.Center[order[i]] = -1
	}
	a.Dropped = drop
	return a
}

// WriteAssignmentCSV writes "index,center,distance" rows (center -1 marks
// an outlier).
func WriteAssignmentCSV(w io.Writer, a Assignment) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "center", "distance"}); err != nil {
		return err
	}
	for j := range a.Center {
		rec := []string{
			strconv.Itoa(j),
			strconv.Itoa(a.Center[j]),
			strconv.FormatFloat(a.Dist[j], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
