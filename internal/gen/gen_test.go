package gen

import (
	"testing"

	"dpc/internal/metric"
)

func TestMixtureShape(t *testing.T) {
	in := Mixture(MixtureSpec{N: 200, K: 4, Dim: 3, OutlierFrac: 0.1, Seed: 1})
	if len(in.Pts) != 200 || len(in.Label) != 200 {
		t.Fatalf("sizes: %d %d", len(in.Pts), len(in.Label))
	}
	if in.NumOutliers != 20 {
		t.Fatalf("outliers = %d, want 20", in.NumOutliers)
	}
	if len(in.TrueCenters) != 4 {
		t.Fatalf("centers = %d", len(in.TrueCenters))
	}
	counts := map[int]int{}
	for _, l := range in.Label {
		counts[l]++
	}
	if counts[-1] != 20 {
		t.Fatalf("labeled outliers = %d", counts[-1])
	}
	for c := 0; c < 4; c++ {
		if counts[c] == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
	if in.Pts[0].Dim() != 3 {
		t.Fatal("dim wrong")
	}
}

func TestMixtureDeterministic(t *testing.T) {
	a := Mixture(MixtureSpec{N: 50, K: 2, Seed: 7})
	b := Mixture(MixtureSpec{N: 50, K: 2, Seed: 7})
	for i := range a.Pts {
		if !a.Pts[i].Equal(b.Pts[i]) {
			t.Fatal("same seed, different instance")
		}
	}
	c := Mixture(MixtureSpec{N: 50, K: 2, Seed: 8})
	same := true
	for i := range a.Pts {
		if !a.Pts[i].Equal(c.Pts[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestMixtureOutliersAreFar(t *testing.T) {
	in := Mixture(MixtureSpec{N: 300, K: 3, OutlierFrac: 0.1, Box: 10, OutlierBox: 1000, Seed: 3})
	// Average outlier distance to nearest true center should dwarf the
	// average inlier distance.
	var inSum, outSum float64
	var inN, outN int
	for i, p := range in.Pts {
		d := nearestCenterDist(p, in.TrueCenters)
		if in.Label[i] < 0 {
			outSum += d
			outN++
		} else {
			inSum += d
			inN++
		}
	}
	if outSum/float64(outN) < 10*inSum/float64(inN) {
		t.Fatalf("outliers not far: avg out %g vs avg in %g", outSum/float64(outN), inSum/float64(inN))
	}
}

func nearestCenterDist(p metric.Point, centers []metric.Point) float64 {
	best := -1.0
	for _, c := range centers {
		d := metric.L2(p, c)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

func partitionInvariants(t *testing.T, in Instance, parts [][]int, s int) {
	t.Helper()
	if len(parts) != s {
		t.Fatalf("parts = %d, want %d", len(parts), s)
	}
	seen := make([]bool, len(in.Pts))
	for site, idxs := range parts {
		if len(idxs) == 0 {
			t.Fatalf("site %d empty", site)
		}
		for _, g := range idxs {
			if g < 0 || g >= len(in.Pts) {
				t.Fatalf("bad index %d", g)
			}
			if seen[g] {
				t.Fatalf("point %d assigned twice", g)
			}
			seen[g] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("point %d unassigned", i)
		}
	}
}

func TestPartitionModes(t *testing.T) {
	in := Mixture(MixtureSpec{N: 200, K: 5, OutlierFrac: 0.1, Seed: 2})
	for _, mode := range []PartitionMode{Uniform, Skewed, ByCluster, OutlierHeavy} {
		parts := Partition(in, 7, mode, 11)
		partitionInvariants(t, in, parts, 7)
	}
}

func TestPartitionUniformBalanced(t *testing.T) {
	in := Mixture(MixtureSpec{N: 210, K: 3, Seed: 4})
	parts := Partition(in, 7, Uniform, 5)
	for site, idxs := range parts {
		if len(idxs) != 30 {
			t.Fatalf("site %d has %d points, want 30", site, len(idxs))
		}
	}
}

func TestPartitionSkewedIsSkewed(t *testing.T) {
	in := Mixture(MixtureSpec{N: 400, K: 3, Seed: 4})
	parts := Partition(in, 4, Skewed, 5)
	if len(parts[3]) <= len(parts[0]) {
		t.Fatalf("skew missing: %d vs %d", len(parts[3]), len(parts[0]))
	}
}

func TestPartitionOutlierHeavy(t *testing.T) {
	in := Mixture(MixtureSpec{N: 300, K: 3, OutlierFrac: 0.2, Seed: 6})
	parts := Partition(in, 5, OutlierHeavy, 1)
	for site, idxs := range parts {
		for _, g := range idxs {
			if in.Label[g] < 0 && site != 0 {
				t.Fatalf("outlier %d on site %d", g, site)
			}
		}
	}
}

func TestPartitionByClusterRoutesClusters(t *testing.T) {
	in := Mixture(MixtureSpec{N: 300, K: 4, OutlierFrac: 0, Seed: 6})
	parts := Partition(in, 2, ByCluster, 1)
	for site, idxs := range parts {
		for _, g := range idxs {
			if lab := in.Label[g]; lab >= 0 && lab%2 != site {
				t.Fatalf("cluster %d point on site %d", lab, site)
			}
		}
	}
}

func TestSitePoints(t *testing.T) {
	in := Mixture(MixtureSpec{N: 40, K: 2, Seed: 9})
	parts := Partition(in, 4, Uniform, 3)
	sp := SitePoints(in, parts)
	for i := range sp {
		if len(sp[i]) != len(parts[i]) {
			t.Fatal("length mismatch")
		}
		for j := range sp[i] {
			if !sp[i][j].Equal(in.Pts[parts[i][j]]) {
				t.Fatal("point mismatch")
			}
		}
	}
}

func TestPartitionModeString(t *testing.T) {
	if Uniform.String() != "uniform" || PartitionMode(99).String() != "unknown" {
		t.Fatal("String() wrong")
	}
}
