// Package gen builds the synthetic workloads every experiment runs on:
// planted Gaussian mixtures with far uniform outliers (the ground truth
// against which partial clustering quality is judged) and the site
// partitions of the coordinator model, including the adversarial layouts
// that stress the outlier-budget allocation.
package gen

import (
	"math/rand"

	"dpc/internal/metric"
)

// MixtureSpec describes a planted instance.
type MixtureSpec struct {
	N           int     // total number of points (clusters + outliers)
	K           int     // number of planted clusters
	Dim         int     // dimension
	OutlierFrac float64 // fraction of N placed as far outliers
	ClusterStd  float64 // within-cluster standard deviation
	Box         float64 // cluster centers are uniform in [0, Box]^Dim
	OutlierBox  float64 // outliers are uniform in [-OutlierBox, OutlierBox]^Dim (choose >> Box)
	Seed        int64
}

// WithDefaults fills zero fields with sane values.
func (s MixtureSpec) WithDefaults() MixtureSpec {
	if s.N == 0 {
		s.N = 1000
	}
	if s.K == 0 {
		s.K = 5
	}
	if s.Dim == 0 {
		s.Dim = 2
	}
	if s.ClusterStd == 0 {
		s.ClusterStd = 1
	}
	if s.Box == 0 {
		s.Box = 100
	}
	if s.OutlierBox == 0 {
		s.OutlierBox = 10 * s.Box
	}
	return s
}

// Instance is a planted clustering instance.
type Instance struct {
	Pts         []metric.Point
	Label       []int // cluster id in [0,K), or -1 for planted outliers
	TrueCenters []metric.Point
	NumOutliers int
}

// Points wraps the instance's points in a metric space.
func (in Instance) Points() *metric.Points { return metric.NewPoints(in.Pts) }

// Mixture samples a planted Gaussian mixture with far uniform outliers.
// Points are shuffled so index order carries no information.
func Mixture(spec MixtureSpec) Instance {
	spec = spec.WithDefaults()
	r := rand.New(rand.NewSource(spec.Seed))
	numOut := int(float64(spec.N) * spec.OutlierFrac)
	numIn := spec.N - numOut

	centers := make([]metric.Point, spec.K)
	for c := range centers {
		p := make(metric.Point, spec.Dim)
		for d := range p {
			p[d] = r.Float64() * spec.Box
		}
		centers[c] = p
	}
	pts := make([]metric.Point, 0, spec.N)
	labels := make([]int, 0, spec.N)
	for i := 0; i < numIn; i++ {
		c := i % spec.K
		p := make(metric.Point, spec.Dim)
		for d := range p {
			p[d] = centers[c][d] + r.NormFloat64()*spec.ClusterStd
		}
		pts = append(pts, p)
		labels = append(labels, c)
	}
	for i := 0; i < numOut; i++ {
		p := make(metric.Point, spec.Dim)
		for d := range p {
			p[d] = (r.Float64()*2 - 1) * spec.OutlierBox
		}
		pts = append(pts, p)
		labels = append(labels, -1)
	}
	perm := r.Perm(spec.N)
	shufPts := make([]metric.Point, spec.N)
	shufLab := make([]int, spec.N)
	for i, j := range perm {
		shufPts[j] = pts[i]
		shufLab[j] = labels[i]
	}
	return Instance{Pts: shufPts, Label: shufLab, TrueCenters: centers, NumOutliers: numOut}
}

// PartitionMode selects how points are spread across sites.
type PartitionMode int

const (
	// Uniform spreads a random shuffle evenly (balanced n_i = n/s).
	Uniform PartitionMode = iota
	// Skewed gives site i a share proportional to i+1 (imbalanced n_i).
	Skewed
	// ByCluster routes each planted cluster to one site (site = cluster mod
	// s) and spreads outliers round-robin — each site sees a biased slice
	// of the space, the hard case for preclustering.
	ByCluster
	// OutlierHeavy puts every planted outlier on site 0 — the adversarial
	// case for the outlier-budget allocation: a uniform t_i = t/s split
	// starves site 0 while Algorithm 1's allocation concentrates there.
	OutlierHeavy
)

// String implements fmt.Stringer.
func (m PartitionMode) String() string {
	switch m {
	case Uniform:
		return "uniform"
	case Skewed:
		return "skewed"
	case ByCluster:
		return "bycluster"
	case OutlierHeavy:
		return "outlierheavy"
	}
	return "unknown"
}

// Partition assigns each point of the instance to a site, returning per-site
// global index lists. Every point is assigned to exactly one site and no
// site is left empty (provided n >= s).
func Partition(in Instance, s int, mode PartitionMode, seed int64) [][]int {
	return PartitionLabels(len(in.Pts), in.Label, s, mode, seed)
}

// PartitionLabels is Partition over any labeled collection of n items
// (labels < 0 mark outliers); it also serves the uncertain-node instances.
func PartitionLabels(n int, labels []int, s int, mode PartitionMode, seed int64) [][]int {
	r := rand.New(rand.NewSource(seed))
	sites := make([][]int, s)
	assign := func(i, site int) {
		sites[site] = append(sites[site], i)
	}
	switch mode {
	case Skewed:
		// Share of site i proportional to (i+1); assign by weighted draw of
		// a shuffled order, then fix empties.
		perm := r.Perm(n)
		total := s * (s + 1) / 2
		idx := 0
		for site := 0; site < s; site++ {
			cnt := n * (site + 1) / total
			if site == s-1 {
				cnt = n - idx
			}
			for c := 0; c < cnt && idx < n; c++ {
				assign(perm[idx], site)
				idx++
			}
		}
		for idx < n {
			assign(perm[idx], s-1)
			idx++
		}
	case ByCluster:
		rr := 0
		for i, lab := range labels {
			if lab < 0 {
				assign(i, rr%s)
				rr++
			} else {
				assign(i, lab%s)
			}
		}
	case OutlierHeavy:
		rr := 0
		for i, lab := range labels {
			if lab < 0 {
				assign(i, 0)
			} else {
				assign(i, rr%s)
				rr++
			}
		}
	default: // Uniform
		perm := r.Perm(n)
		for pos, i := range perm {
			assign(i, pos%s)
		}
	}
	// Guarantee no empty site by stealing from the largest.
	for site := 0; site < s; site++ {
		if len(sites[site]) > 0 {
			continue
		}
		big := 0
		for j := range sites {
			if len(sites[j]) > len(sites[big]) {
				big = j
			}
		}
		if len(sites[big]) > 1 {
			last := sites[big][len(sites[big])-1]
			sites[big] = sites[big][:len(sites[big])-1]
			sites[site] = append(sites[site], last)
		}
	}
	return sites
}

// SitePoints materializes the per-site point slices from a partition.
func SitePoints(in Instance, parts [][]int) [][]metric.Point {
	out := make([][]metric.Point, len(parts))
	for i, idxs := range parts {
		pts := make([]metric.Point, len(idxs))
		for j, g := range idxs {
			pts[j] = in.Pts[g]
		}
		out[i] = pts
	}
	return out
}
