package gen

import (
	"math/rand"

	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

// NodeShape selects how a node's support is laid out around its nominal
// position.
type NodeShape int

const (
	// ShapeScatter is an isotropic Gaussian scatter (default).
	ShapeScatter NodeShape = iota
	// ShapeBimodal splits the support between the nominal position and a
	// second mode BimodalGap away — the "wide node" case where the
	// collapse cost ell_j is large and the compressed graph's tentacles
	// (Figure 1) carry real information.
	ShapeBimodal
)

// UncertainSpec describes a planted uncertain instance: nodes are
// distributions whose support scatters around a nominal position drawn from
// the same mixture-plus-outliers process as the deterministic workloads.
type UncertainSpec struct {
	N           int     // number of nodes
	K           int     // planted clusters
	Dim         int     // dimension
	Support     int     // support size m per node (the I knob)
	OutlierFrac float64 // fraction of nodes whose nominal position is a far outlier
	ClusterStd  float64 // spread of nominal positions within a cluster
	Box         float64 // cluster centers in [0, Box]^Dim
	OutlierBox  float64 // outlier nominals in [-OutlierBox, OutlierBox]^Dim
	Scatter     float64 // spread of a node's support around its nominal position
	Seed        int64

	// Shape selects the node layout; BimodalFrac of nodes get the bimodal
	// shape when Shape is ShapeBimodal (default 1.0), with the second mode
	// BimodalGap away (default Box/2).
	Shape       NodeShape
	BimodalFrac float64
	BimodalGap  float64
}

// WithDefaults fills zero fields.
func (s UncertainSpec) WithDefaults() UncertainSpec {
	if s.N == 0 {
		s.N = 200
	}
	if s.K == 0 {
		s.K = 3
	}
	if s.Dim == 0 {
		s.Dim = 2
	}
	if s.Support == 0 {
		s.Support = 4
	}
	if s.ClusterStd == 0 {
		s.ClusterStd = 1
	}
	if s.Box == 0 {
		s.Box = 100
	}
	if s.OutlierBox == 0 {
		s.OutlierBox = 10 * s.Box
	}
	if s.Scatter == 0 {
		s.Scatter = 0.5
	}
	if s.BimodalFrac == 0 {
		s.BimodalFrac = 1
	}
	if s.BimodalGap == 0 {
		s.BimodalGap = s.Box / 2
	}
	return s
}

// UncertainInstance is a planted uncertain clustering instance. The ground
// set P is the union of all node supports.
type UncertainInstance struct {
	Ground      *uncertain.Ground
	Nodes       []uncertain.Node
	Label       []int // cluster id or -1 for outlier nominals
	TrueCenters []metric.Point
	NumOutliers int
}

// UncertainMixture samples a planted uncertain instance.
func UncertainMixture(spec UncertainSpec) UncertainInstance {
	spec = spec.WithDefaults()
	r := rand.New(rand.NewSource(spec.Seed))
	numOut := int(float64(spec.N) * spec.OutlierFrac)
	numIn := spec.N - numOut

	centers := make([]metric.Point, spec.K)
	for c := range centers {
		p := make(metric.Point, spec.Dim)
		for d := range p {
			p[d] = r.Float64() * spec.Box
		}
		centers[c] = p
	}
	nominal := make([]metric.Point, 0, spec.N)
	labels := make([]int, 0, spec.N)
	for i := 0; i < numIn; i++ {
		c := i % spec.K
		p := make(metric.Point, spec.Dim)
		for d := range p {
			p[d] = centers[c][d] + r.NormFloat64()*spec.ClusterStd
		}
		nominal = append(nominal, p)
		labels = append(labels, c)
	}
	for i := 0; i < numOut; i++ {
		p := make(metric.Point, spec.Dim)
		for d := range p {
			p[d] = (r.Float64()*2 - 1) * spec.OutlierBox
		}
		nominal = append(nominal, p)
		labels = append(labels, -1)
	}

	g := &uncertain.Ground{}
	nodes := make([]uncertain.Node, spec.N)
	for j := range nodes {
		nd := uncertain.Node{
			Support: make([]int, spec.Support),
			Prob:    make([]float64, spec.Support),
		}
		bimodal := spec.Shape == ShapeBimodal && r.Float64() < spec.BimodalFrac
		var tot float64
		for q := 0; q < spec.Support; q++ {
			p := make(metric.Point, spec.Dim)
			for d := range p {
				p[d] = nominal[j][d] + r.NormFloat64()*spec.Scatter
			}
			if bimodal && q >= spec.Support/2 {
				p[0] += spec.BimodalGap // second mode offset along axis 0
			}
			nd.Support[q] = len(g.Pts)
			g.Pts = append(g.Pts, p)
			w := 0.25 + r.Float64()
			nd.Prob[q] = w
			tot += w
		}
		for q := range nd.Prob {
			nd.Prob[q] /= tot
		}
		nodes[j] = nd
	}
	return UncertainInstance{
		Ground:      g,
		Nodes:       nodes,
		Label:       labels,
		TrueCenters: centers,
		NumOutliers: numOut,
	}
}

// PartitionNodes splits nodes across sites with the usual partition modes.
func PartitionNodes(in UncertainInstance, s int, mode PartitionMode, seed int64) [][]int {
	return PartitionLabels(len(in.Nodes), in.Label, s, mode, seed)
}

// SiteNodes materializes per-site node slices from a partition.
func SiteNodes(in UncertainInstance, parts [][]int) [][]uncertain.Node {
	out := make([][]uncertain.Node, len(parts))
	for i, idxs := range parts {
		nds := make([]uncertain.Node, len(idxs))
		for j, g := range idxs {
			nds[j] = in.Nodes[g]
		}
		out[i] = nds
	}
	return out
}
