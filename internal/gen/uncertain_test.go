package gen

import (
	"testing"

	"dpc/internal/uncertain"
)

func TestUncertainMixtureShape(t *testing.T) {
	in := UncertainMixture(UncertainSpec{N: 100, K: 3, Support: 4, OutlierFrac: 0.1, Seed: 1})
	if len(in.Nodes) != 100 || len(in.Label) != 100 {
		t.Fatalf("sizes %d %d", len(in.Nodes), len(in.Label))
	}
	if in.NumOutliers != 10 {
		t.Fatalf("outliers = %d", in.NumOutliers)
	}
	if in.Ground.N() != 400 {
		t.Fatalf("ground = %d, want n*m = 400", in.Ground.N())
	}
	for j, nd := range in.Nodes {
		if err := nd.Validate(in.Ground); err != nil {
			t.Fatalf("node %d invalid: %v", j, err)
		}
	}
}

func TestUncertainMixtureDeterministic(t *testing.T) {
	a := UncertainMixture(UncertainSpec{N: 30, K: 2, Support: 3, Seed: 5})
	b := UncertainMixture(UncertainSpec{N: 30, K: 2, Support: 3, Seed: 5})
	for j := range a.Nodes {
		for q := range a.Nodes[j].Prob {
			if a.Nodes[j].Prob[q] != b.Nodes[j].Prob[q] {
				t.Fatal("same seed, different nodes")
			}
		}
	}
}

// Bimodal nodes must have a much larger collapse cost than scattered ones —
// that is exactly the signal the compressed graph's tentacles carry.
func TestBimodalNodesAreWide(t *testing.T) {
	scatter := UncertainMixture(UncertainSpec{N: 60, K: 2, Support: 4, Seed: 7})
	bimodal := UncertainMixture(UncertainSpec{
		N: 60, K: 2, Support: 4, Seed: 7, Shape: ShapeBimodal, BimodalGap: 80,
	})
	avgEll := func(in UncertainInstance) float64 {
		col := uncertain.Collapse(in.Ground, in.Nodes, false, uncertain.OwnSupport)
		var s float64
		for _, e := range col.Ell {
			s += e
		}
		return s / float64(len(col.Ell))
	}
	es, eb := avgEll(scatter), avgEll(bimodal)
	if eb < 5*es {
		t.Fatalf("bimodal ell %g not much larger than scatter ell %g", eb, es)
	}
}

func TestBimodalFracPartial(t *testing.T) {
	in := UncertainMixture(UncertainSpec{
		N: 200, K: 2, Support: 4, Seed: 9, Shape: ShapeBimodal, BimodalFrac: 0.3, BimodalGap: 90,
	})
	col := uncertain.Collapse(in.Ground, in.Nodes, false, uncertain.OwnSupport)
	wide := 0
	for _, e := range col.Ell {
		if e > 10 {
			wide++
		}
	}
	if wide < 30 || wide > 100 {
		t.Fatalf("wide nodes = %d, want roughly 30%% of 200", wide)
	}
}

func TestPartitionNodesInvariants(t *testing.T) {
	in := UncertainMixture(UncertainSpec{N: 90, K: 3, Support: 2, OutlierFrac: 0.1, Seed: 11})
	parts := PartitionNodes(in, 5, OutlierHeavy, 12)
	seen := make([]bool, len(in.Nodes))
	for site, idxs := range parts {
		for _, g := range idxs {
			if seen[g] {
				t.Fatal("node assigned twice")
			}
			seen[g] = true
			if in.Label[g] < 0 && site != 0 {
				t.Fatal("outlier node off site 0")
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			t.Fatal("node unassigned")
		}
	}
	sn := SiteNodes(in, parts)
	total := 0
	for _, nds := range sn {
		total += len(nds)
	}
	if total != 90 {
		t.Fatalf("site nodes total %d", total)
	}
}
