// Package bench is the experiment harness behind EXPERIMENTS.md: one
// function per experiment ID (E1..E12 in DESIGN.md), each reproducing one
// row-group of Table 1/Table 2 or one figure-style claim of the paper and
// returning a formatted table of measurements.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks instance sizes (used by the go-test benchmarks; the
	// full sizes are for cmd/dpc-tables).
	Quick bool
	// Workers bounds solver goroutines (0 = one per CPU). Any value
	// produces identical tables; it only moves wall-clock.
	Workers int
	// NoDistCache disables the memoized distance oracles (identical
	// tables, different wall-clock).
	NoDistCache bool
	// Reference runs every solver through the seed sequential engine —
	// the baseline half of cmd/dpc-bench's engine comparison. Implies
	// Workers=1 and NoDistCache.
	Reference bool
	// Index layers the pivot-based metric index over the solver oracles
	// (identical tables — pruning is exact; different wall-clock). Pivots
	// is its anchor count (0 = metric.DefaultPivots).
	Index  bool
	Pivots int
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim under test
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form observation.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "   paper claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID    string
	Brief string
	Run   func(Options) Table
}

// All returns the registry of experiments in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Table 1 median: comm is Otilde((sk+t)B), independent of n", E1MedianCommVsN},
		{"E2", "Table 1/2 median: 2-round (sk+t) vs 1-round (sk+st) scaling", E2MedianCommVsST},
		{"E3", "Table 1 median/means: (1+eps)t bicriteria cost vs eps", E3EpsSweep},
		{"E4", "Table 1 center: Algorithm 2 vs 1-round baseline", E4Center},
		{"E5", "Table 1 uncertain: compressed graph removes the I factor", E5Uncertain},
		{"E6", "Table 1 center-g: comm Otilde(skB + tI + s logDelta)", E6CenterG},
		{"E7", "Theorem 3.10: subquadratic centralized scaling", E7Subquadratic},
		{"E8", "Table 2 one-round rows: measured comm vs formula", E8OneRoundFormula},
		{"E9", "Theorem 3.8: no-ship variant comm flat in t", E9NoShip},
		{"E10", "Figure 1 / Lemmas 5.3-5.4: compression sandwich", E10Compression},
		{"E11", "Lemma 3.3: allocation optimality", E11Allocation},
		{"E12", "Theorem 3.6: site wall-time scales ~1/s", E12SiteSpeedup},
	}
	sort.Slice(exps, func(a, b int) bool { return exps[a].ID < exps[b].ID })
	return exps
}

// Lookup finds an experiment by ID (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// kb formats bytes as KiB with 1 decimal.
func kb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/1024) }

// f2 formats a float with 2 decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f3 formats a float with 3 decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
