package bench

import (
	"math"
	"math/rand"

	"dpc/internal/geom"
	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randomCurve builds a random decreasing convex-ish cost curve on [0, t].
func randomCurve(r *rand.Rand, t int) geom.ConvexFn {
	grid := geom.Grid(t, 2)
	samples := make([]geom.Vertex, 0, len(grid))
	c := 100 + r.Float64()*900
	for _, q := range grid {
		samples = append(samples, geom.Vertex{Q: q, C: c})
		c *= r.Float64()
	}
	f, err := geom.NewConvexFn(samples)
	if err != nil {
		panic(err)
	}
	return f
}

// dpOptimum solves min sum f_i(t_i) s.t. sum t_i <= R exactly.
func dpOptimum(fns []geom.ConvexFn, R int) float64 {
	cur := make([]float64, R+1)
	next := make([]float64, R+1)
	for i := len(fns) - 1; i >= 0; i-- {
		f := fns[i]
		for r := 0; r <= R; r++ {
			best := math.Inf(1)
			maxQ := f.T()
			if maxQ > r {
				maxQ = r
			}
			for q := 0; q <= maxQ; q++ {
				if v := f.Eval(q) + cur[r-q]; v < best {
					best = v
				}
			}
			next[r] = best
		}
		cur, next = next, cur
	}
	return cur[R]
}

// bruteCollapsed enumerates k-subsets of compressed-graph facilities with t
// outliers dropped.
func bruteCollapsed(col *uncertain.Collapsed, k, t int) float64 {
	n := col.Len()
	best := math.Inf(1)
	var centers []int
	var rec func(start int)
	rec = func(start int) {
		if len(centers) == k {
			ds := make([]float64, n)
			for j := 0; j < n; j++ {
				d := math.Inf(1)
				for _, f := range centers {
					if x := col.Cost(j, f); x < d {
						d = x
					}
				}
				ds[j] = d
			}
			if c := sumDropTop(ds, t); c < best {
				best = c
			}
			return
		}
		for f := start; f < n; f++ {
			centers = append(centers, f)
			rec(f + 1)
			centers = centers[:len(centers)-1]
		}
	}
	rec(0)
	return best
}

// bruteUncertain enumerates k-subsets of a center pool under the true
// expected-distance objective.
func bruteUncertain(g *uncertain.Ground, nodes []uncertain.Node, pool []metric.Point, k, t int) float64 {
	best := math.Inf(1)
	var centers []metric.Point
	var rec func(start int)
	rec = func(start int) {
		if len(centers) == k {
			ds := make([]float64, len(nodes))
			for j, nd := range nodes {
				d := math.Inf(1)
				for _, c := range centers {
					if x := uncertain.ExpectedDist(g, nd, c); x < d {
						d = x
					}
				}
				ds[j] = d
			}
			if c := sumDropTop(ds, t); c < best {
				best = c
			}
			return
		}
		for f := start; f < len(pool); f++ {
			centers = append(centers, pool[f])
			rec(f + 1)
			centers = centers[:len(centers)-1]
		}
	}
	rec(0)
	return best
}

func sumDropTop(ds []float64, t int) float64 {
	sorted := append([]float64(nil), ds...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var s float64
	for i := t; i < len(sorted); i++ {
		s += sorted[i]
	}
	return s
}
