package bench

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := Table{ID: "X", Title: "demo", Claim: "c", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== X: demo", "paper claim: c", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Brief == "" {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("e11"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

// Every experiment must run in quick mode and produce a non-empty table.
// This is the integration test for the whole harness; the full-size runs
// live in cmd/dpc-tables and the root benchmarks.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb := e.Run(Options{Seed: 1, Quick: true})
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tb.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", tb.ID, e.ID)
			}
			t.Logf("\n%s", tb.String())
		})
	}
}

func TestHelperSumDropTop(t *testing.T) {
	if got := sumDropTop([]float64{5, 1, 9, 3}, 1); got != 9 { // drop the 9 -> 5+1+3
		t.Fatalf("sumDropTop = %g, want 9", got)
	}
	if got := sumDropTop([]float64{5, 1}, 5); got != 0 {
		t.Fatalf("sumDropTop over-drop = %g, want 0", got)
	}
}

func TestHelperRandomCurveDomain(t *testing.T) {
	r := newRand(3)
	for trial := 0; trial < 10; trial++ {
		f := randomCurve(r, 10)
		if f.T() > 10 || f.T() < 1 {
			t.Fatalf("curve domain T=%d", f.T())
		}
		if f.Eval(0) < f.Eval(f.T()) {
			t.Fatal("curve not decreasing")
		}
	}
}
