package bench

import (
	"fmt"
	"math"

	"dpc/internal/alloc"
	"dpc/internal/central"
	"dpc/internal/core"
	"dpc/internal/engine"
	"dpc/internal/gen"
	"dpc/internal/geom"
	"dpc/internal/kcenter"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

// mkSites builds a planted instance split across s sites.
func mkSites(n, k, s int, outFrac float64, mode gen.PartitionMode, seed int64) (gen.Instance, [][]metric.Point) {
	in := gen.Mixture(gen.MixtureSpec{N: n, K: k, Dim: 2, OutlierFrac: outFrac, Seed: seed})
	parts := gen.Partition(in, s, mode, seed+1)
	return in, gen.SitePoints(in, parts)
}

// coreCfg applies the harness engine knobs to a distributed run config, so
// cmd/dpc-bench can run every experiment against the reference and the
// fast engine. The knobs never change a table's contents, only wall-clock.
func (o Options) coreCfg(cfg core.Config) core.Config {
	cfg.Options = o.eng()
	return cfg
}

// eng is the harness knobs as the consolidated engine-option struct.
func (o Options) eng() engine.Options {
	return engine.Options{
		Workers: o.Workers, NoCache: o.NoDistCache, Reference: o.Reference,
		Index: o.Index, Pivots: o.Pivots,
	}
}

// solverOpts applies the engine knobs to direct solver options.
func (o Options) solverOpts(opts kmedian.Options) kmedian.Options {
	ref := opts.Reference || o.Reference
	opts.Options = o.eng()
	opts.Reference = ref
	return opts
}

// uncCfg applies the engine knobs to an uncertain run config.
func (o Options) uncCfg(cfg uncertain.Config) uncertain.Config {
	cfg.LocalOpts = o.solverOpts(cfg.LocalOpts)
	cfg.NoDistCache = o.NoDistCache
	return cfg
}

// cgCfg applies the engine knobs to an Algorithm 4 config.
func (o Options) cgCfg(cfg uncertain.CenterGConfig) uncertain.CenterGConfig {
	cfg.LocalOpts = o.solverOpts(cfg.LocalOpts)
	cfg.NoDistCache = o.NoDistCache
	return cfg
}

// kcOpt applies the engine knobs to the kcenter solvers.
func (o Options) kcOpt() kcenter.Opt {
	return o.eng()
}

// centralMedianCost is the centralized reference: the same engine on the
// full data with the unicriterion budget t (the Copt(A,k,t) stand-in of
// Lemma 3.5).
func centralMedianCost(in gen.Instance, k, t int, squared bool, seed int64, o Options) float64 {
	var sp metric.Space = in.Points()
	if !o.Reference && !o.NoDistCache {
		sp = metric.CacheSpace(sp)
	}
	sp = metric.IndexSpace(sp, o.Index && !o.Reference, o.Pivots)
	costs := metric.Costs(metric.SelfCosts{S: sp})
	if squared {
		costs = metric.Squared{C: costs}
	}
	sol := kmedian.LocalSearch(costs, nil, k, float64(t), o.solverOpts(kmedian.Options{Seed: seed, Restarts: 3}))
	return sol.Cost
}

// E1MedianCommVsN: sweep n at fixed (s,k,t); communication must stay flat
// while the 1-round baseline is also flat but ~s*t/B heavier; quality stays
// O(1) of the centralized reference.
func E1MedianCommVsN(o Options) Table {
	t := Table{
		ID:     "E1",
		Title:  "(k,t)-median communication vs n",
		Claim:  "Table 1 row 1: total comm Otilde((sk+t)B) — no dependence on n",
		Header: []string{"n", "s", "k", "t", "2rnd-up(KB)", "1rnd-up(KB)", "gap", "cost/central", "sum(t_i)"},
	}
	ns := []int{1000, 2000, 4000}
	if o.Quick {
		ns = []int{600, 1200}
	}
	s, k, tt := 8, 4, 60
	for _, n := range ns {
		in, sites := mkSites(n, k, s, 0.05, gen.Uniform, o.Seed)
		two, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median}))
		if err != nil {
			panic(err)
		}
		one, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median, Variant: core.OneRound}))
		if err != nil {
			panic(err)
		}
		ref := centralMedianCost(in, k, tt, false, o.Seed+5, o)
		cost := core.Evaluate(in.Pts, two.Centers, two.OutlierBudget, core.Median)
		sum := 0
		for _, b := range two.SiteBudgets {
			sum += b
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(s), fmt.Sprint(k), fmt.Sprint(tt),
			kb(two.Report.UpBytes), kb(one.Report.UpBytes),
			f2(float64(one.Report.UpBytes)/float64(two.Report.UpBytes)),
			f2(cost/ref), fmt.Sprint(sum))
	}
	t.Note("2-round bytes should be ~constant across rows; gap ~ (sk+st)/(sk+t); sum(t_i) <= 3t = %d", 3*tt)
	return t
}

// E2MedianCommVsST: sweep s and t; the 2-round protocol scales like sk+t,
// the 1-round baseline like sk+st.
func E2MedianCommVsST(o Options) Table {
	t := Table{
		ID:     "E2",
		Title:  "(k,t)-median communication vs s and t",
		Claim:  "Table 1 vs Table 2: Otilde((sk+t)B) against Otilde((sk+st)B)",
		Header: []string{"s", "t", "2rnd-up(KB)", "1rnd-up(KB)", "(sk+t)B(KB)", "(sk+st)B(KB)"},
	}
	n, k := 3000, 4
	if o.Quick {
		n = 1200
	}
	const bytesPerPoint = 2 * 8 // B: dim 2 float64
	ss := []int{4, 8, 16}
	tts := []int{40, 160}
	if o.Quick {
		ss = []int{4, 8}
		tts = []int{40}
	}
	for _, s := range ss {
		for _, tt := range tts {
			_, sites := mkSites(n, k, s, 0.05, gen.Uniform, o.Seed+int64(s*1000+tt))
			two, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median}))
			if err != nil {
				panic(err)
			}
			one, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median, Variant: core.OneRound}))
			if err != nil {
				panic(err)
			}
			predTwo := int64((s*k + tt) * bytesPerPoint)
			predOne := int64((s*k + s*tt) * bytesPerPoint)
			t.AddRow(fmt.Sprint(s), fmt.Sprint(tt),
				kb(two.Report.UpBytes), kb(one.Report.UpBytes), kb(predTwo), kb(predOne))
		}
	}
	t.Note("measured columns should track the prediction columns up to small constants")
	return t
}

// E3EpsSweep: the (1+eps)t bicriteria cost should decay toward the
// centralized reference as eps grows — the O(1+1/eps) shape of Theorem 3.6.
func E3EpsSweep(o Options) Table {
	t := Table{
		ID:     "E3",
		Title:  "median/means bicriteria cost vs eps",
		Claim:  "Table 1 rows 2-3: O(1+1/eps)-approx with (1+eps)t ignored",
		Header: []string{"objective", "eps", "cost/central", "up(KB)"},
	}
	n, s, k, tt := 1500, 6, 4, 75
	if o.Quick {
		n, tt = 800, 40
	}
	for _, obj := range []core.Objective{core.Median, core.Means} {
		in, sites := mkSites(n, k, s, 0.05, gen.Uniform, o.Seed+int64(obj))
		ref := centralMedianCost(in, k, tt, obj == core.Means, o.Seed+9, o)
		for _, eps := range []float64{0.25, 0.5, 1, 2, 4} {
			res, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: obj, Eps: eps}))
			if err != nil {
				panic(err)
			}
			cost := core.Evaluate(in.Pts, res.Centers, res.OutlierBudget, obj)
			t.AddRow(obj.String(), f2(eps), f3(cost/ref), kb(res.Report.UpBytes))
		}
	}
	t.Note("cost/central should not increase with eps (more ignorable points help)")
	return t
}

// E4Center: Algorithm 2 against the 1-round baseline and a centralized
// Charikar solve.
func E4Center(o Options) Table {
	t := Table{
		ID:     "E4",
		Title:  "(k,t)-center: Algorithm 2",
		Claim:  "Table 1 row 4: O(1)-approx, comm Otilde((sk+t)B), site time O((k+t)n_i)",
		Header: []string{"s", "2rnd-up(KB)", "1rnd-up(KB)", "gap", "radius/central", "coord-pts"},
	}
	n, k, tt := 2000, 4, 100
	if o.Quick {
		n, tt = 800, 50
	}
	ss := []int{4, 8, 16}
	if o.Quick {
		ss = []int{4, 8}
	}
	for _, s := range ss {
		in, sites := mkSites(n, k, s, 0.05, gen.Uniform, o.Seed+int64(s))
		two, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Center}))
		if err != nil {
			panic(err)
		}
		one, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Center, Variant: core.OneRound}))
		if err != nil {
			panic(err)
		}
		central := kcenter.PartialOpt(in.Points(), nil, k, float64(tt), o.kcOpt())
		radius := core.Evaluate(in.Pts, two.Centers, two.OutlierBudget, core.Center)
		ratio := math.Inf(1)
		if central.Radius > 0 {
			ratio = radius / central.Radius
		}
		t.AddRow(fmt.Sprint(s), kb(two.Report.UpBytes), kb(one.Report.UpBytes),
			f2(float64(one.Report.UpBytes)/float64(two.Report.UpBytes)),
			f2(ratio), fmt.Sprint(two.CoordinatorClients))
	}
	t.Note("gap grows with s (the st term); radius ratio stays O(1)")
	return t
}

// E5Uncertain: Algorithm 3's communication is independent of the node
// support size m; the ship-distributions baseline pays t*I.
func E5Uncertain(o Options) Table {
	t := Table{
		ID:     "E5",
		Title:  "uncertain median: compressed graph vs shipping distributions",
		Claim:  "Table 1 row 5: comm as in the deterministic case (B+8 per node, not I)",
		Header: []string{"m", "alg3-up(KB)", "naive-up(KB)", "gap", "alg3-cost", "naive-cost"},
	}
	n, s, k, tt := 400, 4, 3, 40
	if o.Quick {
		n, tt = 200, 20
	}
	ms := []int{2, 4, 8, 16}
	if o.Quick {
		ms = []int{2, 8}
	}
	for _, m := range ms {
		in := gen.UncertainMixture(gen.UncertainSpec{N: n, K: k, Support: m, OutlierFrac: 0.08, Seed: o.Seed + int64(m)})
		parts := gen.PartitionNodes(in, s, gen.Uniform, o.Seed+1)
		sites := gen.SiteNodes(in, parts)
		smart, err := uncertain.Run(in.Ground, sites, o.uncCfg(uncertain.Config{K: k, T: tt}), uncertain.Median)
		if err != nil {
			panic(err)
		}
		naive, err := uncertain.Run(in.Ground, sites, o.uncCfg(uncertain.Config{K: k, T: tt, Variant: uncertain.OneRoundShipDists}), uncertain.Median)
		if err != nil {
			panic(err)
		}
		cs := uncertain.EvalMedian(in.Ground, in.Nodes, smart.Centers, smart.OutlierBudget)
		cn := uncertain.EvalMedian(in.Ground, in.Nodes, naive.Centers, naive.OutlierBudget)
		t.AddRow(fmt.Sprint(m), kb(smart.Report.UpBytes), kb(naive.Report.UpBytes),
			f2(float64(naive.Report.UpBytes)/float64(smart.Report.UpBytes)), f2(cs), f2(cn))
	}
	t.Note("alg3 bytes flat in m; naive bytes grow ~linearly in m (I = m*(4+8) bytes)")
	return t
}

// E6CenterG: Algorithm 4's communication components — skB + tI + s logDelta.
func E6CenterG(o Options) Table {
	t := Table{
		ID:     "E6",
		Title:  "uncertain center-g: Algorithm 4",
		Claim:  "Theorem 5.14: comm Otilde(skB + tI + s logDelta); tau grid O(logDelta)",
		Header: []string{"outlierBox", "logDelta~", "tauGrid", "up(KB)", "tau-hat", "MC objective"},
	}
	n, s, k, tt, m := 120, 3, 3, 8, 3
	if o.Quick {
		n = 60
	}
	boxes := []float64{1e3, 1e4, 1e5}
	if o.Quick {
		boxes = []float64{1e3, 1e5}
	}
	for _, box := range boxes {
		in := gen.UncertainMixture(gen.UncertainSpec{
			N: n, K: k, Support: m, OutlierFrac: 0.07, OutlierBox: box, Seed: o.Seed,
		})
		parts := gen.PartitionNodes(in, s, gen.Uniform, o.Seed+2)
		sites := gen.SiteNodes(in, parts)
		res, err := uncertain.RunCenterG(in.Ground, sites, o.cgCfg(uncertain.CenterGConfig{K: k, T: tt}))
		if err != nil {
			panic(err)
		}
		dmin, dmax := in.Ground.MinMax()
		obj := uncertain.EvalCenterG(in.Ground, in.Nodes, res.Centers, res.OutlierBudget, 100, o.Seed)
		t.AddRow(fmt.Sprintf("%.0e", box), f2(math.Log2(dmax/dmin)),
			fmt.Sprint(len(res.TauGrid)), kb(res.Report.UpBytes), f2(res.Tau), f2(obj))
	}
	t.Note("tauGrid (and round-1 bytes) grow with logDelta; round-2 bytes carry t*I")
	return t
}

// E7Subquadratic: runtime scaling of direct vs simulated solvers.
func E7Subquadratic(o Options) Table {
	t := Table{
		ID:     "E7",
		Title:  "centralized (k,t)-median runtime scaling",
		Claim:  "Theorem 3.10: simulation reduces the runtime exponent (2 -> 4/3 -> 8/7)",
		Header: []string{"n", "direct(s)", "lvl1(s)", "lvl2(s)", "lvl1 cost/direct", "lvl2 cost/direct"},
	}
	// The top row is deliberately past metric.MaxCachePoints: the direct
	// solver recomputes distances there, which is exactly the regime the
	// pivot index prunes (cached sizes only save a memoized read per skip).
	// Dim 16 keeps the per-distance cost representative of real feature
	// vectors — the exponents in the claim are dimension-independent, but a
	// metric that costs a handful of flops would mis-measure any engine
	// whose win is avoided distance evaluations.
	ns := []int{1000, 2000, 4000, 8000}
	if o.Quick {
		ns = []int{800, 1600}
	}
	k := 3
	var prev [3]float64
	var prevN int
	for _, n := range ns {
		in := gen.Mixture(gen.MixtureSpec{N: n, K: k, Dim: 16, OutlierFrac: 0.03, Seed: o.Seed})
		tt := n / 50
		opts := o.solverOpts(kmedian.Options{MaxIters: 10, Seed: o.Seed})
		var secs [3]float64
		var costs [3]float64
		for lvl := 0; lvl <= 2; lvl++ {
			sol := central.PartialMedian(in.Pts, central.Config{K: k, T: tt, Levels: lvl, Opts: opts, NoDistCache: o.NoDistCache})
			secs[lvl] = sol.Elapsed.Seconds()
			costs[lvl] = sol.Cost
		}
		t.AddRow(fmt.Sprint(n), f3(secs[0]), f3(secs[1]), f3(secs[2]),
			f2(costs[1]/costs[0]), f2(costs[2]/costs[0]))
		if prevN > 0 {
			lg := math.Log(float64(n) / float64(prevN))
			t.Note("empirical exponents %d->%d: direct %.2f, lvl1 %.2f, lvl2 %.2f",
				prevN, n,
				math.Log(secs[0]/prev[0])/lg,
				math.Log(secs[1]/prev[1])/lg,
				math.Log(secs[2]/prev[2])/lg)
		}
		prev, prevN = secs, n
	}
	return t
}

// E8OneRoundFormula: measured one-round communication against the
// closed-form (sk+st)B prediction across objectives.
func E8OneRoundFormula(o Options) Table {
	t := Table{
		ID:     "E8",
		Title:  "Table 2 one-round rows: measured vs formula",
		Claim:  "1-round comm Otilde((sk+st)B) for median/means/center",
		Header: []string{"objective", "s", "t", "up(KB)", "(sk+st)B(KB)", "measured/pred"},
	}
	n, k := 2000, 4
	if o.Quick {
		n = 900
	}
	const bytesPerPoint = 16
	for _, obj := range []core.Objective{core.Median, core.Means, core.Center} {
		for _, s := range []int{4, 12} {
			tt := 80
			_, sites := mkSites(n, k, s, 0.05, gen.Uniform, o.Seed+int64(obj)*31+int64(s))
			res, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: obj, Variant: core.OneRound}))
			if err != nil {
				panic(err)
			}
			pred := int64((s*k + s*tt) * bytesPerPoint)
			t.AddRow(obj.String(), fmt.Sprint(s), fmt.Sprint(tt),
				kb(res.Report.UpBytes), kb(pred),
				f2(float64(res.Report.UpBytes)/float64(pred)))
		}
	}
	t.Note("measured/pred should be a stable O(1) constant (weights+framing overhead)")
	return t
}

// E9NoShip: the Theorem 3.8 variant's communication stays flat as t grows.
func E9NoShip(o Options) Table {
	t := Table{
		ID:     "E9",
		Title:  "Theorem 3.8: outlier counts instead of outlier points",
		Claim:  "comm Otilde(s/delta + sk B) — no t*B term; ignores (2+eps+delta)t",
		Header: []string{"t", "noship-up(KB)", "2rnd-up(KB)", "noship cost/central", "2rnd cost/central"},
	}
	n, s, k := 2500, 6, 4
	if o.Quick {
		n = 1000
	}
	tts := []int{20, 80, 320}
	if o.Quick {
		tts = []int{20, 160}
	}
	for _, tt := range tts {
		in, sites := mkSites(n, k, s, 0.15, gen.Uniform, o.Seed+int64(tt))
		ref := centralMedianCost(in, k, tt, false, o.Seed+3, o)
		noship, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median, Variant: core.TwoRoundNoOutliers}))
		if err != nil {
			panic(err)
		}
		ship, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median}))
		if err != nil {
			panic(err)
		}
		cn := core.Evaluate(in.Pts, noship.Centers, noship.OutlierBudget, core.Median)
		cs := core.Evaluate(in.Pts, ship.Centers, ship.OutlierBudget, core.Median)
		t.AddRow(fmt.Sprint(tt), kb(noship.Report.UpBytes), kb(ship.Report.UpBytes),
			f3(cn/ref), f3(cs/ref))
	}
	t.Note("noship bytes ~flat in t; shipping bytes grow ~linearly in t")
	return t
}

// E10Compression: Figure 1's compressed graph preserves optimal cost within
// the Lemma 5.3/5.4 constants.
func E10Compression(o Options) Table {
	t := Table{
		ID:     "E10",
		Title:  "compressed graph cost sandwich",
		Claim:  "Lemma 5.3: C_G <= 5 C_A; Lemma 5.4: C_A <= 2 C_G",
		Header: []string{"trial", "C_A(collapsed centers)", "C_G", "C_G/C_A", "within [1/2, 5]"},
	}
	trials := 8
	if o.Quick {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		in := gen.UncertainMixture(gen.UncertainSpec{
			N: 9, K: 2, Support: 3, Scatter: 2, Seed: o.Seed + int64(trial),
		})
		col := uncertain.Collapse(in.Ground, in.Nodes, false, uncertain.FullGround)
		cg := bruteCollapsed(col, 2, 1)
		ca := bruteUncertain(in.Ground, in.Nodes, col.Y, 2, 1)
		ratio := cg / ca
		ok := ratio >= 0.5-1e-9 && ratio <= 5+1e-9
		t.AddRow(fmt.Sprint(trial), f3(ca), f3(cg), f3(ratio), fmt.Sprint(ok))
	}
	return t
}

// E11Allocation: the rank-pivot allocation exactly matches the DP optimum.
func E11Allocation(o Options) Table {
	t := Table{
		ID:     "E11",
		Title:  "outlier budget allocation optimality",
		Claim:  "Lemma 3.3: t_i minimize sum f_i(t_i) s.t. sum t_i <= rho t",
		Header: []string{"trial", "sites", "rank", "greedy", "DP optimum", "equal", "sum(t_i)"},
	}
	trials := 10
	if o.Quick {
		trials = 5
	}
	rng := newRand(o.Seed)
	for trial := 0; trial < trials; trial++ {
		s := 2 + rng.Intn(5)
		fns := make([]geom.ConvexFn, s)
		for i := range fns {
			fns[i] = randomCurve(rng, 5+rng.Intn(40))
		}
		R := 5 + rng.Intn(60)
		_, ts := alloc.Allocate(fns, R)
		var got float64
		sum := 0
		for i, f := range fns {
			got += f.Eval(ts[i])
			sum += ts[i]
		}
		want := dpOptimum(fns, R)
		t.AddRow(fmt.Sprint(trial), fmt.Sprint(s), fmt.Sprint(R),
			f3(got), f3(want), fmt.Sprint(math.Abs(got-want) <= 1e-6*(1+want)), fmt.Sprint(sum))
	}
	return t
}

// E12SiteSpeedup: with balanced partitions, site wall time drops ~1/s.
func E12SiteSpeedup(o Options) Table {
	t := Table{
		ID:     "E12",
		Title:  "site phase wall time vs s",
		Claim:  "Theorem 3.6: total running time Otilde(n^2/s) with balanced partitions",
		Header: []string{"s", "siteWall(ms)", "siteWork(ms)", "coord(ms)", "up(KB)"},
	}
	n, k, tt := 4000, 4, 60
	if o.Quick {
		n = 1500
	}
	for _, s := range []int{2, 4, 8, 16} {
		_, sites := mkSites(n, k, s, 0.05, gen.Uniform, o.Seed+int64(s))
		res, err := core.Run(sites, o.coreCfg(core.Config{K: k, T: tt, Objective: core.Median}))
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(s),
			fmt.Sprint(res.Report.SiteWall.Milliseconds()),
			fmt.Sprint(res.Report.SiteWork.Milliseconds()),
			fmt.Sprint(res.Report.CoordWork.Milliseconds()),
			kb(res.Report.UpBytes))
	}
	t.Note("siteWall should fall as s grows (n_i = n/s and site solves are ~quadratic in n_i)")
	return t
}
