package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/gen"
	"dpc/internal/jobwire"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
)

// startSiteGroup boots persistent in-process site daemons for one group,
// with globally unique site ids starting at idBase (the multi-group
// numbering contract: per-site solver seeds derive from the id, so parity
// with a single-fleet run requires global uniqueness).
func startSiteGroup(t *testing.T, addr string, shards [][]metric.Point, idBase int) func() []error {
	t.Helper()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := transport.Dial(addr, i, 10*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer sc.Close()
			if string(sc.Hello()) != transport.JobsHello {
				errs[i] = fmt.Errorf("welcome %q, want jobs marker", sc.Hello())
				return
			}
			cache := metric.NewDistCache(metric.NewPoints(shards[i]))
			errs[i] = sc.ServeJobs(jobwire.Factory(jobwire.SiteData{
				Site: idBase + i, Pts: shards[i], Cache: cache,
			}))
		}(i)
	}
	return func() []error { wg.Wait(); return errs }
}

// TestRemoteDatasetSpansSiteGroups registers a remote dataset over one
// site group, attaches a second group, and asserts jobs fan out over both
// fleets with results byte-identical to a loopback run over the union of
// the shards.
func TestRemoteDatasetSpansSiteGroups(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 320, K: 3, OutlierFrac: 0.05, Seed: 77})
	allShards := dataio.SplitRoundRobin(in.Pts, 4)
	groupA, groupB := allShards[:2], allShards[2:]

	s := New(Config{})
	defer s.Close()

	lA, err := transport.Listen("127.0.0.1:0", len(groupA))
	if err != nil {
		t.Fatal(err)
	}
	defer lA.Close()
	joinA := startSiteGroup(t, lA.Addr().String(), groupA, 0)
	if _, err := s.RegisterRemoteListener("spanning", lA, len(groupA)); err != nil {
		t.Fatalf("RegisterRemoteListener: %v", err)
	}

	lB, err := transport.Listen("127.0.0.1:0", len(groupB))
	if err != nil {
		t.Fatal(err)
	}
	defer lB.Close()
	joinB := startSiteGroup(t, lB.Addr().String(), groupB, len(groupA))
	coordB, err := lB.Accept(len(groupB), []byte(transport.JobsHello))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().AddRemoteGroup("spanning", coordB); err != nil {
		t.Fatalf("AddRemoteGroup: %v", err)
	}

	d, err := s.Registry().Get("spanning")
	if err != nil {
		t.Fatal(err)
	}
	info := d.Info()
	if info.Sites != 4 || info.Groups != 2 {
		t.Fatalf("info reports %d sites in %d groups, want 4 in 2", info.Sites, info.Groups)
	}

	want, err := core.Run(allShards, core.Config{
		K: 3, T: 12, Objective: core.Median, LocalOpts: kmedian.Options{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		j, err := s.Submit(JobSpec{Dataset: "spanning", K: 3, T: 12, Objective: "median", Seed: 9})
		if err != nil {
			t.Fatalf("submit job %d: %v", n, err)
		}
		done := waitServerJob(t, s, j.ID)
		if done.Status != StatusDone {
			t.Fatalf("job %d failed: %s", n, done.Error)
		}
		assertCentersEqual(t, done.Result.Centers, want.Centers, fmt.Sprintf("multi-group job %d", n))
		if done.Result.UpBytes != want.Report.UpBytes {
			t.Fatalf("job %d up bytes %d, loopback %d", n, done.Result.UpBytes, want.Report.UpBytes)
		}
	}

	if err := d.CloseRemote(); err != nil {
		t.Fatalf("closing spanning transport: %v", err)
	}
	for g, join := range []func() []error{joinA, joinB} {
		for i, err := range join() {
			if err != nil {
				t.Fatalf("group %d site %d exited with error: %v", g, i, err)
			}
		}
	}
}
