package serve

import (
	"encoding/json"
	"testing"

	"dpc/internal/engine"
)

// The deprecated flat Workers/NoCache fields merge into the engine object
// with a fixed precedence: a structured non-zero value wins over the flat
// alias, and the cache-off booleans OR (either side can force the
// measurement mode, neither can silently re-enable caches the other
// disabled). These are the negative cases — a client sending BOTH forms
// with conflicting values — that the merge path must resolve the same way
// on every replica and every journal replay.
func TestJobSpecMergeConflictingFlatAndStructured(t *testing.T) {
	cases := []struct {
		name string
		body string
		want engine.Options
	}{
		{
			name: "structured workers wins over flat",
			body: `{"dataset":"d","k":2,"t":1,"workers":8,"engine":{"workers":2}}`,
			want: engine.Options{Workers: 2},
		},
		{
			name: "flat workers fills a zero structured field",
			body: `{"dataset":"d","k":2,"t":1,"workers":8,"engine":{"algo":"jv"}}`,
			want: engine.Options{Algo: "jv", Workers: 8},
		},
		{
			name: "flat no_cache forces caches off despite structured false",
			body: `{"dataset":"d","k":2,"t":1,"no_cache":true,"engine":{"algo":"jv","no_cache":false}}`,
			want: engine.Options{Algo: "jv", NoCache: true},
		},
		{
			name: "structured no_cache holds without the flat alias",
			body: `{"dataset":"d","k":2,"t":1,"engine":{"no_cache":true}}`,
			want: engine.Options{NoCache: true},
		},
		{
			name: "legacy string engine plus flat knobs",
			body: `{"dataset":"d","k":2,"t":1,"workers":3,"no_cache":true,"engine":"localsearch"}`,
			want: engine.Options{Algo: "localsearch", Workers: 3, NoCache: true},
		},
		{
			name: "reference normalization overrides a conflicting flat workers",
			body: `{"dataset":"d","k":2,"t":1,"workers":8,"engine":{"reference":true,"index":true}}`,
			want: engine.Options{Reference: true, Workers: 1, NoCache: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var spec JobSpec
			if err := json.Unmarshal([]byte(tc.body), &spec); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if got := spec.EngineOptions(); got != tc.want {
				t.Fatalf("EngineOptions() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// A merged spec must survive the wire round-trip: re-marshaling a JobSpec
// whose engine object came from conflicting inputs and decoding it again
// (the journal replay path) yields the same merged engine options.
func TestJobSpecMergeRoundTripStable(t *testing.T) {
	var spec JobSpec
	body := `{"dataset":"d","k":2,"t":1,"workers":8,"no_cache":true,"engine":{"workers":2}}`
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	first := spec.EngineOptions()

	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var replayed JobSpec
	if err := json.Unmarshal(wire, &replayed); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	if second := replayed.EngineOptions(); second != first {
		t.Fatalf("merge drifted across the wire: %+v then %+v", first, second)
	}
}
