package serve

import (
	"fmt"
	"sync"

	"dpc/internal/metric"
)

// SingleLockRegistry preserves the pre-sharding registry as a measured
// baseline, the same way the solver engines keep their Reference
// implementations: one map behind one RWMutex, a mutex-guarded global
// version counter, and copy-on-append table storage (every append copied
// the whole table to protect running snapshots). cmd/dpc-loadgen drives
// it and the segmented Registry through the same TableStore interface and
// reports the throughput ratio in BENCH_SERVE.json — the regression gate
// that proves the sharding pays.
//
// It intentionally supports only the table surface the storage benchmark
// exercises; the serving path always uses Registry.
type SingleLockRegistry struct {
	mu       sync.RWMutex
	ds       map[string]*lockedDataset
	versions int
}

type lockedDataset struct {
	mu      sync.RWMutex
	pts     []metric.Point
	version int
	dim     int
}

// NewSingleLockRegistry creates the baseline registry.
func NewSingleLockRegistry() *SingleLockRegistry {
	return &SingleLockRegistry{ds: make(map[string]*lockedDataset)}
}

// nextVersion replicates the seed behavior: every version draw takes the
// registry-wide write lock — the contention point the segmented registry
// replaces with one atomic add.
func (r *SingleLockRegistry) nextVersion() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions++
	return r.versions
}

// TableStore is the registry surface cmd/dpc-loadgen's storage benchmark
// drives, implemented by both the segmented Registry and the single-lock
// baseline so the identical workload measures both.
type TableStore interface {
	// StoreRegister registers a table dataset.
	StoreRegister(name string, pts []metric.Point) error
	// StoreAppend appends points to a table dataset.
	StoreAppend(name string, pts []metric.Point) error
	// StoreSnapshot takes a consistent read snapshot, returning its size.
	StoreSnapshot(name string) (int, error)
	// StoreDelete removes a dataset.
	StoreDelete(name string) error
}

// StoreRegister implements TableStore.
func (r *SingleLockRegistry) StoreRegister(name string, pts []metric.Point) error {
	if err := validateName(name); err != nil {
		return err
	}
	if len(pts) == 0 {
		return fmt.Errorf("serve: dataset %q has no points", name)
	}
	if err := validatePoints(pts, pts[0].Dim()); err != nil {
		return err
	}
	d := &lockedDataset{pts: pts, version: r.nextVersion(), dim: pts[0].Dim()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ds[name]; ok {
		return fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetExists)
	}
	r.ds[name] = d
	return nil
}

// StoreAppend implements TableStore with the seed's copy-on-append.
func (r *SingleLockRegistry) StoreAppend(name string, pts []metric.Point) error {
	r.mu.RLock()
	d, ok := r.ds[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := validatePoints(pts, d.dim); err != nil {
		return err
	}
	grown := make([]metric.Point, 0, len(d.pts)+len(pts))
	grown = append(grown, d.pts...)
	grown = append(grown, pts...)
	d.pts = grown
	d.version = r.nextVersion()
	return nil
}

// StoreSnapshot implements TableStore.
func (r *SingleLockRegistry) StoreSnapshot(name string) (int, error) {
	r.mu.RLock()
	d, ok := r.ds[name]
	r.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	snap := d.pts[:len(d.pts):len(d.pts)]
	return len(snap), nil
}

// StoreDelete implements TableStore.
func (r *SingleLockRegistry) StoreDelete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ds[name]; !ok {
		return fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	delete(r.ds, name)
	return nil
}

// TableStore adapters on the segmented Registry.

// StoreRegister implements TableStore.
func (r *Registry) StoreRegister(name string, pts []metric.Point) error {
	_, err := r.RegisterTable(name, pts)
	return err
}

// StoreAppend implements TableStore.
func (r *Registry) StoreAppend(name string, pts []metric.Point) error {
	d, err := r.Get(name)
	if err != nil {
		return err
	}
	return r.appendLocked(d, pts, nil)
}

// StoreSnapshot implements TableStore.
func (r *Registry) StoreSnapshot(name string) (int, error) {
	d, err := r.Get(name)
	if err != nil {
		return 0, err
	}
	view, _ := d.snapshotTable()
	return view.Len(), nil
}

// StoreDelete implements TableStore.
func (r *Registry) StoreDelete(name string) error {
	return r.Delete(name)
}
