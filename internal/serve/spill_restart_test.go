package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dpc/internal/engine"
	"dpc/internal/gen"
	"dpc/internal/metric"
)

func mixturePoints(t *testing.T, n int, seed int64) []metric.Point {
	t.Helper()
	return gen.Mixture(gen.MixtureSpec{N: n, K: 3, OutlierFrac: 0.05, Seed: seed}).Pts
}

func runJobOK(t *testing.T, s *Server, spec JobSpec) Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := waitServerJob(t, s, j.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	return done
}

// TestSpillRestartRestore is the warm-restart round trip: run jobs, shut
// the server down (spilling warm triangles), start a fresh server on the
// same cache directory, re-register the same data, and assert the first
// job (a) returns byte-identical results and (b) is served from restored
// cells — nonzero restored count, nonzero cache hits, and zero new misses.
func TestSpillRestartRestore(t *testing.T) {
	dir := t.TempDir()
	pts := mixturePoints(t, 420, 31)
	spec := JobSpec{Dataset: "warmme", K: 3, T: 20, Objective: "median", Seed: 7}

	s1 := New(Config{CacheDir: dir})
	if _, err := s1.Registry().RegisterTable("warmme", pts); err != nil {
		t.Fatal(err)
	}
	first := runJobOK(t, s1, spec)
	if first.Result.CacheMisses == 0 {
		t.Fatal("cold job computed no distances; the test premise is broken")
	}
	s1.Close() // spills

	if _, err := os.Stat(filepath.Join(dir, SpillFile)); err != nil {
		t.Fatalf("no spill file after shutdown: %v", err)
	}

	s2, err := NewChecked(Config{CacheDir: dir})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer s2.Close()
	// Same content, different name: restore is content-addressed, so the
	// rename must not matter.
	if _, err := s2.Registry().RegisterTable("renamed", append([]metric.Point(nil), pts...)); err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Dataset = "renamed"
	second := runJobOK(t, s2, spec2)

	// Byte-identical results across the restart.
	if len(first.Result.Centers) != len(second.Result.Centers) {
		t.Fatalf("center count changed across restart: %d vs %d", len(first.Result.Centers), len(second.Result.Centers))
	}
	for i := range first.Result.Centers {
		for j := range first.Result.Centers[i] {
			if first.Result.Centers[i][j] != second.Result.Centers[i][j] {
				t.Fatalf("center %d differs across restart", i)
			}
		}
	}
	if first.Result.Cost != second.Result.Cost {
		t.Fatalf("cost changed across restart: %v vs %v", first.Result.Cost, second.Result.Cost)
	}

	if restored := s2.Registry().RestoredCells(); restored == 0 {
		t.Fatal("restart restored zero cells")
	}
	if second.Result.CacheHits == 0 {
		t.Fatal("first job after restart reported zero cache hits")
	}
	// The warm job must not recompute what the spill carried: site-side
	// distance work (the dominant share of cold misses) is all hits now.
	if second.Result.CacheMisses >= first.Result.CacheMisses {
		t.Fatalf("warm job recomputed as much as cold (%d >= %d misses)",
			second.Result.CacheMisses, first.Result.CacheMisses)
	}
}

// TestSpillSurvivesIdleRestart: triangles staged at load but not adopted
// during a run are carried forward by the next spill, so warmth is not
// lost when a dataset sits out one server life.
func TestSpillSurvivesIdleRestart(t *testing.T) {
	dir := t.TempDir()
	pts := mixturePoints(t, 200, 5)
	spec := JobSpec{Dataset: "d", K: 2, T: 8, Objective: "median", Seed: 3}

	s1 := New(Config{CacheDir: dir})
	if _, err := s1.Registry().RegisterTable("d", pts); err != nil {
		t.Fatal(err)
	}
	runJobOK(t, s1, spec)
	s1.Close()

	// An idle server life: restore happens, nothing registers, spill again.
	s2 := New(Config{CacheDir: dir})
	s2.Close()

	s3 := New(Config{CacheDir: dir})
	defer s3.Close()
	if _, err := s3.Registry().RegisterTable("d", append([]metric.Point(nil), pts...)); err != nil {
		t.Fatal(err)
	}
	runJobOK(t, s3, spec)
	if s3.Registry().RestoredCells() == 0 {
		t.Fatal("warmth was lost across the idle restart")
	}
}

// TestSpillExpiresUnusedTriangles: a triangle nobody re-adopts is carried
// for at most maxSpillCarry idle server lives, then dropped — the spill
// file cannot accumulate dead datasets' warmth forever.
func TestSpillExpiresUnusedTriangles(t *testing.T) {
	dir := t.TempDir()
	pts := mixturePoints(t, 160, 8)
	s := New(Config{CacheDir: dir})
	if _, err := s.Registry().RegisterTable("dead", pts); err != nil {
		t.Fatal(err)
	}
	runJobOK(t, s, JobSpec{Dataset: "dead", K: 2, T: 5, Objective: "median", Seed: 1})
	s.Close()

	// Idle lives: the triangle is staged and re-saved with its age bumped
	// until it crosses the carry bound and vanishes.
	for life := 0; life <= maxSpillCarry; life++ {
		idle := New(Config{CacheDir: dir})
		idle.Close()
	}
	f, err := os.Open(filepath.Join(dir, SpillFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := metric.ReadSpill(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill still carries %d entries after %d idle lives (first age %d)",
			len(entries), maxSpillCarry+1, entries[0].Age)
	}
}

// TestWarmupFillsCachesBeforeFirstJob registers with server-wide warmup
// enabled, waits for the background fill, and asserts the first job runs
// entirely on warm cells (zero new misses at the sites).
func TestWarmupFillsCachesBeforeFirstJob(t *testing.T) {
	s := New(Config{WarmOnRegister: true})
	defer s.Close()
	pts := mixturePoints(t, 360, 13)
	if _, err := s.Registry().RegisterTable("w", pts); err != nil {
		t.Fatal(err)
	}
	// The HTTP layer triggers warmup; the library Register does not, so
	// drive the same entry point the handler uses.
	s.warmDataset("w")

	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := s.WarmupStats()
		if ws.Done >= 1 && ws.CellsDone >= ws.CellsTotal && ws.CellsTotal > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warmup never finished: %+v", ws)
		}
		time.Sleep(10 * time.Millisecond)
	}

	d, _ := s.Registry().Get("w")
	_, missesBefore := d.CacheStats()
	done := runJobOK(t, s, JobSpec{Dataset: "w", K: 3, T: 15, Objective: "median", Seed: 2})
	if done.Result.CacheHits == 0 {
		t.Fatal("post-warmup job hit no cache cells")
	}
	_, missesAfter := d.CacheStats()
	if missesAfter != missesBefore {
		t.Fatalf("post-warmup job computed %d distances at the sites; warmup should have filled them all",
			missesAfter-missesBefore)
	}
}

// waitWarmupDone polls WarmupStats until at least one warmup task has
// finished its whole body — cache prefill and, when armed, index builds.
func waitWarmupDone(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := s.WarmupStats()
		if ws.Done >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("warmup never finished: %+v", ws)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIndexWarmupSpillRestore is the pivot-index side of the warm-restart
// round trip: warmup with -warm-index builds pooled indexes, shutdown
// spills them next to the warm triangles, and the next server life restores
// them (RestoredIndexes > 0) instead of recomputing pivot columns — with
// indexed job results byte-identical throughout.
func TestIndexWarmupSpillRestore(t *testing.T) {
	dir := t.TempDir()
	pts := mixturePoints(t, 360, 23)
	base := JobSpec{Dataset: "ix", K: 3, T: 18, Objective: "median", Seed: 9}
	indexed := base
	indexed.Engine = engine.Spec{Options: engine.Options{Index: true}}

	s1 := New(Config{CacheDir: dir, WarmOnRegister: true, WarmIndex: true})
	if _, err := s1.Registry().RegisterTable("ix", pts); err != nil {
		t.Fatal(err)
	}
	s1.warmDataset("ix")
	waitWarmupDone(t, s1)
	plain := runJobOK(t, s1, base)
	fast := runJobOK(t, s1, indexed)
	if fast.Result.Cost != plain.Result.Cost || len(fast.Result.Centers) != len(plain.Result.Centers) {
		t.Fatalf("indexed job diverged from cache-only: cost %v vs %v", fast.Result.Cost, plain.Result.Cost)
	}
	s1.Close() // spills triangles and indexes

	f, err := os.Open(filepath.Join(dir, SpillFile))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := metric.ReadSpill(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	ixEntries := 0
	for _, e := range entries {
		if e.Kind == metric.SpillIndex {
			ixEntries++
		}
	}
	if ixEntries == 0 {
		t.Fatalf("shutdown spilled %d entries, none of them indexes", len(entries))
	}

	s2 := New(Config{CacheDir: dir, WarmOnRegister: true, WarmIndex: true})
	defer s2.Close()
	// New name, same content: index restore is content-addressed too.
	if _, err := s2.Registry().RegisterTable("renamed", append([]metric.Point(nil), pts...)); err != nil {
		t.Fatal(err)
	}
	s2.warmDataset("renamed")
	waitWarmupDone(t, s2)
	if s2.Registry().RestoredIndexes() == 0 {
		t.Fatal("warmup rebuilt every index from scratch; spilled indexes were not adopted")
	}
	spec2 := indexed
	spec2.Dataset = "renamed"
	second := runJobOK(t, s2, spec2)
	if second.Result.Cost != fast.Result.Cost {
		t.Fatalf("indexed job changed across restart: cost %v vs %v", second.Result.Cost, fast.Result.Cost)
	}
	for i := range fast.Result.Centers {
		for j := range fast.Result.Centers[i] {
			if fast.Result.Centers[i][j] != second.Result.Centers[i][j] {
				t.Fatalf("center %d differs across index restore", i)
			}
		}
	}
}

// TestWarmupPreemptedByDrain: a shutdown racing a warmup must preempt the
// fill instead of waiting behind the full O(n^2) metric.
func TestWarmupPreemptedByDrain(t *testing.T) {
	s := New(Config{})
	pts := mixturePoints(t, 512, 17)
	if _, err := s.Registry().RegisterTable("big", pts); err != nil {
		t.Fatal(err)
	}
	s.warmDataset("big")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain waited %v behind a warmup; preemption is broken", elapsed)
	}
}
