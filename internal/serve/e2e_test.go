package serve

import (
	"net/http"
	"testing"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/gen"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
)

// oneShot reproduces exactly what `dpc-cluster -k -t -objective -sites
// -seed` does: round-robin sharding plus core.Run with the CLI's config
// mapping. It is the measuring stick the server must match bit for bit.
func oneShot(t *testing.T, pts []metric.Point, spec JobSpec) core.Result {
	t.Helper()
	obj, err := parseObjective(spec.Objective)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := parseVariant(spec.Variant)
	if err != nil {
		t.Fatal(err)
	}
	sites := spec.Sites
	if sites <= 0 {
		sites = 8
	}
	res, err := core.Run(dataio.SplitRoundRobin(pts, sites), core.Config{
		K: spec.K, T: spec.T, Objective: obj, Variant: vr, Eps: spec.Eps,
		LocalOpts: kmedian.Options{Seed: spec.Seed},
	})
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}
	return res
}

// assertCentersEqual requires bit-identical center sets.
func assertCentersEqual(t *testing.T, got [][]float64, want []metric.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centers, one-shot run found %d", label, len(got), len(want))
	}
	for i := range got {
		if !metric.Point(got[i]).Equal(want[i]) {
			t.Fatalf("%s: center %d = %v, one-shot run found %v", label, i, got[i], want[i])
		}
	}
}

// TestServerEndToEnd is the PR acceptance test: two jobs against one
// registered dataset must reuse the same shared DistCache (verified by a
// hit-count assertion) and return results identical to one-shot
// dpc-cluster-equivalent runs for the same (k, t, objective).
func TestServerEndToEnd(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 500, K: 4, OutlierFrac: 0.05, Seed: 11})
	a, s := newAPI(t, Config{})

	var info DatasetInfo
	rows := make([][]float64, len(in.Pts))
	for i, p := range in.Pts {
		rows[i] = p
	}
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "e2e", Points: rows},
		http.StatusCreated, &info)

	median := JobSpec{Dataset: "e2e", K: 4, T: 25, Objective: "median", Sites: 4, Seed: 1}
	center := JobSpec{Dataset: "e2e", K: 4, T: 25, Objective: "center", Sites: 4, Seed: 1}

	// Job 1: cold caches — every lookup that fills a cell is a miss.
	var job1 Job
	a.do("POST", "/v1/jobs", median, http.StatusAccepted, &job1)
	j1 := waitJob(t, a, job1.ID)
	if j1.Status != StatusDone {
		t.Fatalf("job 1 failed: %s", j1.Error)
	}
	if j1.Result.CacheMisses == 0 {
		t.Fatalf("job 1 reported no cache misses; shared caches not in play")
	}
	missesAfter1 := j1.Result.CacheMisses

	// Job 2, identical query: same pooled caches, so the distance work is
	// already memoized — hits must grow while misses stay exactly put.
	var job2 Job
	a.do("POST", "/v1/jobs", median, http.StatusAccepted, &job2)
	j2 := waitJob(t, a, job2.ID)
	if j2.Status != StatusDone {
		t.Fatalf("job 2 failed: %s", j2.Error)
	}
	if j2.Result.CacheMisses != missesAfter1 {
		t.Fatalf("job 2 recomputed distances: misses %d -> %d (cache not shared)",
			missesAfter1, j2.Result.CacheMisses)
	}
	if j2.Result.CacheHits <= j1.Result.CacheHits {
		t.Fatalf("job 2 hit count did not grow (%d -> %d); cache reuse unproven",
			j1.Result.CacheHits, j2.Result.CacheHits)
	}
	// One pooled cache per shard, built exactly once across both jobs.
	pool := s.Registry().Pool().Stats()
	if pool.Builds != 4 {
		t.Fatalf("pool built %d caches, want 4 (one per shard)", pool.Builds)
	}

	// A center job over the same dataset shares the same per-shard caches
	// (they memoize raw distances; objectives wrap on top).
	var job3 Job
	a.do("POST", "/v1/jobs", center, http.StatusAccepted, &job3)
	j3 := waitJob(t, a, job3.ID)
	if j3.Status != StatusDone {
		t.Fatalf("center job failed: %s", j3.Error)
	}
	if got := s.Registry().Pool().Stats().Builds; got != 4 {
		t.Fatalf("center job built new caches (%d total), want the shared 4", got)
	}

	// Parity: every job's centers match the one-shot CLI-equivalent run.
	wantMedian := oneShot(t, in.Pts, median)
	assertCentersEqual(t, j1.Result.Centers, wantMedian.Centers, "median job 1")
	assertCentersEqual(t, j2.Result.Centers, wantMedian.Centers, "median job 2")
	wantCenter := oneShot(t, in.Pts, center)
	assertCentersEqual(t, j3.Result.Centers, wantCenter.Centers, "center job")

	// And the reported communication footprint matches the simulation.
	if j1.Result.UpBytes != wantMedian.Report.UpBytes || j1.Result.DownBytes != wantMedian.Report.DownBytes {
		t.Fatalf("job bytes (%d up, %d down) differ from one-shot (%d up, %d down)",
			j1.Result.UpBytes, j1.Result.DownBytes, wantMedian.Report.UpBytes, wantMedian.Report.DownBytes)
	}
	if j1.Result.Cost != core.Evaluate(in.Pts, wantMedian.Centers, wantMedian.OutlierBudget, core.Median) {
		t.Fatalf("job cost %v differs from one-shot evaluation", j1.Result.Cost)
	}
}

// TestMeansAndVariantsMatchOneShot covers the remaining objective/variant
// grid at small scale: server jobs must track one-shot runs everywhere.
func TestMeansAndVariantsMatchOneShot(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 300, K: 3, OutlierFrac: 0.04, Seed: 21})
	a, _ := newAPI(t, Config{})
	rows := make([][]float64, len(in.Pts))
	for i, p := range in.Pts {
		rows[i] = p
	}
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "grid", Points: rows},
		http.StatusCreated, nil)
	specs := []JobSpec{
		{Dataset: "grid", K: 3, T: 12, Objective: "means", Sites: 3, Seed: 2},
		{Dataset: "grid", K: 3, T: 12, Objective: "median", Variant: "1round", Sites: 3, Seed: 2},
		{Dataset: "grid", K: 3, T: 12, Objective: "median", Variant: "noship", Sites: 3, Seed: 2},
		{Dataset: "grid", K: 3, T: 12, Objective: "center", Variant: "1round", Sites: 3, Seed: 2},
	}
	for _, spec := range specs {
		var job Job
		a.do("POST", "/v1/jobs", spec, http.StatusAccepted, &job)
		j := waitJob(t, a, job.ID)
		if j.Status != StatusDone {
			t.Fatalf("%s/%s job failed: %s", spec.Objective, spec.Variant, j.Error)
		}
		want := oneShot(t, in.Pts, spec)
		assertCentersEqual(t, j.Result.Centers, want.Centers, spec.Objective+"/"+spec.Variant)
	}
}

// TestAppendInvalidatesSharding: after an append, jobs see the grown table
// (new version, fresh caches) and still match a one-shot run on the grown
// data.
func TestAppendGrowsDatasetForNewJobs(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 200, K: 2, OutlierFrac: 0.03, Seed: 31})
	more := gen.Mixture(gen.MixtureSpec{N: 100, K: 2, OutlierFrac: 0.03, Seed: 32})
	a, _ := newAPI(t, Config{})
	rows := make([][]float64, len(in.Pts))
	for i, p := range in.Pts {
		rows[i] = p
	}
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "growing", Points: rows},
		http.StatusCreated, nil)
	spec := JobSpec{Dataset: "growing", K: 2, T: 10, Sites: 2, Seed: 3}

	var job Job
	a.do("POST", "/v1/jobs", spec, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusDone {
		t.Fatalf("pre-append job failed: %s", j.Error)
	}

	moreRows := make([][]float64, len(more.Pts))
	for i, p := range more.Pts {
		moreRows[i] = p
	}
	a.do("POST", "/v1/datasets/growing/points", appendPointsRequest{Points: moreRows},
		http.StatusOK, nil)

	a.do("POST", "/v1/jobs", spec, http.StatusAccepted, &job)
	j := waitJob(t, a, job.ID)
	if j.Status != StatusDone {
		t.Fatalf("post-append job failed: %s", j.Error)
	}
	grown := append(append([]metric.Point(nil), in.Pts...), more.Pts...)
	want := oneShot(t, grown, spec)
	assertCentersEqual(t, j.Result.Centers, want.Centers, "post-append job")
}
