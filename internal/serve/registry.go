// Package serve implements the long-running clustering service behind
// cmd/dpc-server: a registry of named datasets, an HTTP/JSON job API, and a
// bounded scheduler that runs many (k, t, objective) queries against the
// same site-held data — the "repeated service over distributed data"
// reading of Guha–Li–Zhang, where the expensive state (datasets, memoized
// distance oracles, site connections) stays warm across queries instead of
// being rebuilt per CLI invocation.
//
// Four dataset kinds cover the paper's deployment modes:
//
//   - table: points held in server memory, jobs run the full distributed
//     protocol over in-process loopback shards; every job that queries the
//     same (dataset, sharding) reuses one shared metric.DistCache per
//     shard, drawn from an LRU-bounded metric.CachePool.
//   - stream: an internal/stream sketch absorbs incremental ingest in
//     O(chunk + k + t) memory; jobs answer (k, t) queries on the summary.
//   - remote: the data lives in dpc-site daemons holding persistent TCP
//     connections — possibly several independent site groups serving one
//     dataset at once; jobs fan the coordinator protocol out over the
//     existing transport, and the sites keep their own caches warm.
//   - uncertain: Section 5 distribution-valued nodes over a shared ground
//     set; jobs run Algorithm 3/4 over loopback node shards.
//
// The registry itself is sharded: dataset names hash onto fixed segments,
// each owning its slice of the namespace behind its own lock, so
// concurrent register/append/lookup/delete traffic scales with cores
// instead of serializing on one registry-wide mutex (cmd/dpc-loadgen
// measures the difference against the preserved single-lock baseline).
// Table points live in append-friendly chunks: every append adds sealed
// chunks instead of copying the table, and snapshots are O(1) header
// copies that stay consistent while ingest continues.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"dpc/internal/metric"
	"dpc/internal/stream"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// ErrDatasetExists marks duplicate-name registrations (HTTP 409, where
// plain validation failures are 400).
var ErrDatasetExists = errors.New("dataset already exists")

// ErrDatasetNotFound marks lookups of unregistered dataset names; the HTTP
// layer maps it to 404 with the stable code "dataset_not_found".
var ErrDatasetNotFound = errors.New("no such dataset")

// DatasetKind names a dataset's storage/execution mode.
type DatasetKind string

// Dataset kinds.
const (
	// KindTable holds points in server memory; jobs run the distributed
	// protocol over loopback shards with pooled shared distance caches.
	KindTable DatasetKind = "table"
	// KindStream holds an internal/stream sketch; points append
	// incrementally and jobs query the summary.
	KindStream DatasetKind = "stream"
	// KindRemote holds persistent connections to dpc-site daemons; jobs
	// run the protocol over TCP against data the server never sees.
	KindRemote DatasetKind = "remote"
	// KindUncertain holds Section 5 uncertain data — a shared ground set
	// and distribution-valued nodes; jobs run Algorithm 3/4 over loopback
	// node shards.
	KindUncertain DatasetKind = "uncertain"
)

// RemoteTransport is the transport surface a remote dataset drives per
// job: the protocol rounds plus the per-job re-arm frame. Satisfied by a
// single *transport.Coordinator group and by *transport.Multi when the
// dataset spans several site groups.
type RemoteTransport interface {
	transport.Transport
	StartJob(blob []byte) error
}

// TableView is a consistent point-in-time view of a table dataset: the
// sealed storage chunks as of one version. Taking a view is copy-free
// (chunk headers only, O(1) — the chunk list is append-only and chunks
// are immutable once registered), and the view stays stable while appends
// continue underneath it.
type TableView struct {
	chunks [][]metric.Point
	n      int
}

// Len returns the number of points in the view.
func (v TableView) Len() int { return v.n }

// Flatten materializes the view as one flat point slice (header copies;
// the coordinates themselves are shared with the registry). Jobs flatten
// once to shard and evaluate; callers must not mutate the points.
func (v TableView) Flatten() []metric.Point {
	out := make([]metric.Point, 0, v.n)
	for _, c := range v.chunks {
		out = append(out, c...)
	}
	return out
}

// Dataset is one named dataset in the registry.
type Dataset struct {
	mu   sync.RWMutex
	name string
	kind DatasetKind

	// table state: append-only sealed chunks plus the running point count;
	// version is registry-global and bumps on every append, so cache-pool
	// keys of stale shardings — including those of a deleted and
	// re-registered dataset under the same name — can never collide with
	// live ones, and go cold via LRU.
	chunks  [][]metric.Point
	n       int
	version int
	// dim pins the point dimension (table and stream) from registration /
	// first append on, so a mismatched append fails cleanly instead of
	// panicking inside a distance computation later.
	dim int

	// uncertain state: the shared ground set and the registered nodes.
	// Both are immutable after registration (uncertain datasets do not
	// support append — the collapse caches at the sites key on node
	// identity), so jobs read them without taking the dataset lock.
	ground *uncertain.Ground
	nodes  []uncertain.Node

	// stream state. streamMeans records the registration-time objective:
	// the sketch's summary is built for exactly one of median/means, so
	// queries for the other are rejected rather than silently answered
	// with the wrong costs.
	sketch      *stream.Sketch
	streamMeans bool

	// remote state. jobMu serializes protocol runs and group membership
	// changes: one transport serves one run at a time (connection
	// persistence, not multiplexing). remoteGroups keeps the individual
	// coordinator groups so more can join via AddRemoteGroup.
	remote       RemoteTransport
	remoteGroups []*transport.Coordinator
	remoteSites  int
	jobMu        sync.Mutex

	// stats aggregates hit/miss traffic over every shard cache of this
	// dataset — the observable the e2e test asserts cache reuse with.
	stats metric.CacheStats

	// metricReport is the sampled metric self-check run once at table
	// registration: indexed jobs are gated on its TriangleOK, and the
	// server logs it so a metric that would defeat pruning is visible the
	// moment the data arrives rather than at first query.
	metricReport metric.CheckReport
}

// MetricReport returns the registration-time sampled metric check (zero
// for dataset kinds that do not run one).
func (d *Dataset) MetricReport() metric.CheckReport { return d.metricReport }

// MetricCheckTriples caps the sample size of the registration-time
// triangle check: large enough to catch systematically broken metrics,
// small enough to be free next to the registration body decode. Small
// tables sample proportionally fewer (metricCheckTriplesFor), so
// registration stays O(n) and a register-heavy workload is not taxed a
// constant 4096 triples per tiny dataset.
const MetricCheckTriples = 4096

// metricCheckTriplesFor returns the triangle sample size for an n-point
// table: about one triple per point (never fewer than 64) up to the cap,
// mirroring how the check's cost should track the O(n·dim) decode the
// registration already paid. A systematically broken metric trips an O(n)
// sample with overwhelming probability; per-pair glitches are caught by
// the index's own exhaustive (point, pivot, pivot) self-check at build.
func metricCheckTriplesFor(n int) int {
	t := n
	if t < 64 {
		t = 64
	}
	if t > MetricCheckTriples {
		t = MetricCheckTriples
	}
	return t
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Kind returns the dataset kind.
func (d *Dataset) Kind() DatasetKind { return d.kind }

// CacheStats snapshots the dataset's aggregate distance-cache traffic.
func (d *Dataset) CacheStats() (hits, misses int64) {
	return d.stats.Snapshot()
}

// CloseRemote shuts a remote dataset's site connections (sending every
// site the protocol close, ending its ServeJobs loop). No-op for local
// datasets. Jobs in flight finish first: the close takes the job lock.
func (d *Dataset) CloseRemote() error {
	if d.kind != KindRemote || d.remote == nil {
		return nil
	}
	d.jobMu.Lock()
	defer d.jobMu.Unlock()
	return d.remote.Close()
}

// snapshotTable returns a stable view of the current points and the
// version it represents. Appends add chunks past the view's horizon and
// never mutate sealed chunks, so a running job keeps a consistent dataset
// while ingest continues — without copying a single point.
func (d *Dataset) snapshotTable() (TableView, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return TableView{chunks: d.chunks[:len(d.chunks):len(d.chunks)], n: d.n}, d.version
}

// DatasetInfo is the JSON summary of a dataset.
type DatasetInfo struct {
	Name    string      `json:"name"`
	Kind    DatasetKind `json:"kind"`
	Points  int         `json:"points"`
	Dim     int         `json:"dim,omitempty"`
	Version int         `json:"version"`
	// Stream-only: points consumed and summary size after compression.
	Ingested     int `json:"ingested,omitempty"`
	SummarySize  int `json:"summary_size,omitempty"`
	Compressions int `json:"compressions,omitempty"`
	// Remote-only: connected site daemons and independent site groups.
	Sites  int `json:"sites,omitempty"`
	Groups int `json:"groups,omitempty"`
	// Uncertain-only: registered nodes and ground-set size.
	Nodes        int `json:"nodes,omitempty"`
	GroundPoints int `json:"ground_points,omitempty"`
	// Aggregate distance-cache traffic across this dataset's shard caches.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// Info snapshots a dataset summary.
func (d *Dataset) Info() DatasetInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info := DatasetInfo{Name: d.name, Kind: d.kind, Version: d.version}
	info.CacheHits, info.CacheMisses = d.stats.Snapshot()
	switch d.kind {
	case KindTable:
		info.Points = d.n
		info.Dim = d.dim
	case KindStream:
		info.Ingested = d.sketch.N()
		info.SummarySize = d.sketch.Size()
		info.Compressions = d.sketch.Compressions()
		info.Points = d.sketch.N()
		info.Dim = d.dim
	case KindRemote:
		info.Sites = d.remoteSites
		info.Groups = len(d.remoteGroups)
	case KindUncertain:
		// Points stays zero: nodes are not points, and the ground-set
		// size is reported unambiguously as GroundPoints.
		info.Nodes = len(d.nodes)
		info.GroundPoints = d.ground.N()
		info.Dim = d.dim
	}
	return info
}

// segment is one goroutine-contended slice of the registry namespace: the
// datasets whose names hash here, behind this segment's own lock.
type segment struct {
	mu sync.RWMutex
	ds map[string]*Dataset
}

// DefaultRegistrySegments is the segment count NewRegistry uses. Sixteen
// segments keep cross-core cache-line traffic low at the concurrency the
// scheduler actually produces; the loadgen storage benchmark measures the
// return of more.
const DefaultRegistrySegments = 16

// Registry holds the named datasets across hash segments, plus the shared
// cache pool and the spill/restore state for warm triangles.
type Registry struct {
	segs     []*segment
	pool     *metric.CachePool
	versions atomic.Int64 // monotonic dataset-version source

	// spill state: triangles loaded from disk waiting for a matching shard
	// (keyed by content hash), the key→hash record of caches built this
	// process life (what SaveSpill walks), and the restored-cell counter
	// /metrics exposes. All of it is inert until spillOn — a registry
	// without a cache directory neither hashes shards nor records keys.
	spillMu  sync.Mutex
	spillOn  bool
	spilled  map[spillKey]spilledCells
	hashes   map[string]uint64 // pool key -> content hash of its shard
	restored atomic.Int64

	// pivot-index pool: built shard indexes shared across jobs, keyed by
	// shard cache-pool key plus pivot count, with spilled indexes staged
	// for restore exactly like warm triangles. warmIx arms index builds
	// during background warmup.
	ixMu         sync.Mutex
	ixes         map[string]shardIndexEntry
	spilledIx    map[ixSpillKey]stagedIndex
	restoredIx   atomic.Int64
	warmIx       bool
	warmIxPivots int
}

// shardIndexEntry is one pooled shard index: the index plus the base
// cache-pool key of the shard it covers (spill attribution) and the space
// it was built over (identity — a rebuilt pooled cache gets a fresh index
// so warmth and stats flow to the live cache).
type shardIndexEntry struct {
	base string
	sp   metric.Space
	ix   *metric.Index
}

// ixSpillKey identifies a spilled index by shard content, size and pivot
// count — the triple that makes a restored index interchangeable with a
// rebuild (pivot selection is deterministic).
type ixSpillKey struct {
	hash uint64
	n    int
	nc   int
}

// stagedIndex is one index spill entry waiting for a matching shard, plus
// its carry age (same expiry policy as warm triangles).
type stagedIndex struct {
	e   metric.SpillEntry
	age uint32
}

// maxShardIndexes bounds the index pool; past it, entries whose base cache
// key has left the pool are pruned first, then arbitrary entries (they
// rebuild on demand).
const maxShardIndexes = 256

// spillKey identifies a spilled triangle by content, not by name: names
// and registry versions do not survive a restart, identical shard bytes
// do.
type spillKey struct {
	hash uint64
	n    int
}

// spilledCells is one staged triangle plus how many server lives it has
// been carried through without being re-adopted (expiry input).
type spilledCells struct {
	cells []uint64
	age   uint32
}

// nextVersion hands out a registry-unique dataset version.
func (r *Registry) nextVersion() int {
	return int(r.versions.Add(1))
}

// NewRegistry creates an empty registry whose cache pool is bounded by
// maxCacheBytes (<= 0 means the pool default), with the default segment
// count.
func NewRegistry(maxCacheBytes int64) *Registry {
	return NewRegistrySharded(maxCacheBytes, 0)
}

// NewRegistrySharded is NewRegistry with an explicit segment count
// (<= 0 means DefaultRegistrySegments). More segments admit more
// concurrent registry mutations before lock contention shows; the
// per-dataset locks below the segment are unaffected.
func NewRegistrySharded(maxCacheBytes int64, segments int) *Registry {
	if segments <= 0 {
		segments = DefaultRegistrySegments
	}
	segs := make([]*segment, segments)
	for i := range segs {
		segs[i] = &segment{ds: make(map[string]*Dataset)}
	}
	return &Registry{
		segs:      segs,
		pool:      metric.NewCachePool(maxCacheBytes),
		spilled:   make(map[spillKey]spilledCells),
		hashes:    make(map[string]uint64),
		ixes:      make(map[string]shardIndexEntry),
		spilledIx: make(map[ixSpillKey]stagedIndex),
	}
}

// SetIndexWarmup arms (or disarms) pivot-index builds during background
// warmup: WarmTable then builds one pooled index per warmed shard with the
// given pivot count (0 = metric.DefaultPivots), so the first indexed job
// finds its bounds precomputed.
func (r *Registry) SetIndexWarmup(enable bool, pivots int) {
	r.ixMu.Lock()
	r.warmIx, r.warmIxPivots = enable, pivots
	r.ixMu.Unlock()
}

// RestoredIndexes reports how many pivot indexes have been restored from
// spill this process life.
func (r *Registry) RestoredIndexes() int64 { return r.restoredIx.Load() }

// Segments returns the segment count (metrics/testing).
func (r *Registry) Segments() int { return len(r.segs) }

// seg returns the segment owning name.
func (r *Registry) seg(name string) *segment {
	h := fnv.New32a()
	h.Write([]byte(name))
	return r.segs[h.Sum32()%uint32(len(r.segs))]
}

// Pool returns the shared cache pool (metrics/testing).
func (r *Registry) Pool() *metric.CachePool { return r.pool }

// RestoredCells reports how many distance-cache cells have been restored
// from spilled warm triangles this process life.
func (r *Registry) RestoredCells() int64 { return r.restored.Load() }

// Get returns the named dataset.
func (r *Registry) Get(name string) (*Dataset, error) {
	s := r.seg(name)
	s.mu.RLock()
	d, ok := s.ds[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	return d, nil
}

// List returns summaries of every dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	var all []*Dataset
	for _, s := range r.segs {
		s.mu.RLock()
		for _, d := range s.ds {
			all = append(all, d)
		}
		s.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	infos := make([]DatasetInfo, len(all))
	for i, d := range all {
		infos[i] = d.Info()
	}
	return infos
}

// All returns every dataset sorted by name (the snapshot writer walks
// them; List returns summaries instead).
func (r *Registry) All() []*Dataset {
	var all []*Dataset
	for _, s := range r.segs {
		s.mu.RLock()
		for _, d := range s.ds {
			all = append(all, d)
		}
		s.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	return all
}

// Count returns the number of registered datasets (metrics).
func (r *Registry) Count() int {
	n := 0
	for _, s := range r.segs {
		s.mu.RLock()
		n += len(s.ds)
		s.mu.RUnlock()
	}
	return n
}

// Delete removes the named dataset and reclaims its pooled shard caches
// right away (jobs still holding one keep using it safely). Remote
// datasets are not deletable over the API (their connections belong to the
// server process).
func (r *Registry) Delete(name string) error {
	s := r.seg(name)
	s.mu.Lock()
	d, ok := s.ds[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	if d.kind == KindRemote {
		s.mu.Unlock()
		return fmt.Errorf("serve: dataset %q is remote and cannot be deleted over the API", name)
	}
	delete(s.ds, name)
	s.mu.Unlock()
	r.pool.InvalidatePrefix(name + "@v")
	r.forgetHashes(name + "@v")
	r.forgetIndexes(name + "@v")
	return nil
}

// register inserts d, rejecting duplicate names.
func (r *Registry) register(d *Dataset) error {
	s := r.seg(d.name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ds[d.name]; ok {
		return fmt.Errorf("serve: dataset %q: %w", d.name, ErrDatasetExists)
	}
	s.ds[d.name] = d
	return nil
}

// RegisterTable registers a table dataset holding pts. The registry takes
// ownership of pts (it becomes the first storage chunk; no copy).
func (r *Registry) RegisterTable(name string, pts []metric.Point) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("serve: dataset %q has no points", name)
	}
	if err := validatePoints(pts, pts[0].Dim()); err != nil {
		return nil, err
	}
	d := &Dataset{name: name, kind: KindTable,
		chunks: [][]metric.Point{pts[:len(pts):len(pts)]}, n: len(pts),
		version: r.nextVersion(), dim: pts[0].Dim()}
	// One sampled metric self-check per registration (satisfied trivially
	// by Euclidean points, but the report is what gates index pruning and
	// what the server logs — the check is the observable, not the surprise).
	d.metricReport = metric.CheckSampled(metric.NewPoints(pts), metricCheckTriplesFor(len(pts)), int64(d.version))
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// RegisterStream registers a stream dataset: a sketch for k centers and t
// outliers with the given chunk size (0 = stream default), means switching
// connection costs to squared distances.
func (r *Registry) RegisterStream(name string, k, t, chunk int, means bool, seed int64) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	sk, err := stream.New(stream.Config{K: k, T: t, Chunk: chunk, Means: means,
		Opts: streamOpts(seed)})
	if err != nil {
		return nil, fmt.Errorf("serve: dataset %q: %w", name, err)
	}
	d := &Dataset{name: name, kind: KindStream, sketch: sk, streamMeans: means, version: r.nextVersion()}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// RegisterUncertain registers an uncertain dataset: a shared ground set g
// and the distribution-valued nodes over it. Jobs with the u-* objectives
// run Algorithm 3/4 over loopback shards of the nodes.
func (r *Registry) RegisterUncertain(name string, g *uncertain.Ground, nodes []uncertain.Node) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("serve: uncertain dataset %q has an empty ground set", name)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: uncertain dataset %q has no nodes", name)
	}
	dim := g.Pts[0].Dim()
	if err := validatePoints(g.Pts, dim); err != nil {
		return nil, fmt.Errorf("serve: uncertain dataset %q: %w", name, err)
	}
	for j := range nodes {
		if err := nodes[j].Validate(g); err != nil {
			return nil, fmt.Errorf("serve: uncertain dataset %q: node %d: %w", name, j, err)
		}
	}
	d := &Dataset{name: name, kind: KindUncertain, ground: g, nodes: nodes,
		version: r.nextVersion(), dim: dim}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// RegisterRemote registers a remote dataset served by sites connected on
// coord — its first (and possibly only) site group. The server (not the
// HTTP API) owns the connections; the registry serializes jobs over them.
// AddRemoteGroup attaches further groups later.
func (r *Registry) RegisterRemote(name string, coord *transport.Coordinator) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if coord == nil || coord.Sites() == 0 {
		return nil, fmt.Errorf("serve: remote dataset %q has no sites", name)
	}
	d := &Dataset{name: name, kind: KindRemote, remote: coord,
		remoteGroups: []*transport.Coordinator{coord},
		remoteSites:  coord.Sites(), version: r.nextVersion()}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// AddRemoteGroup attaches another connected site group to an existing
// remote dataset, so one dataset's jobs fan out over several independent
// site fleets at once. Global site numbering concatenates the groups in
// attachment order; for bit-parity with a single-fleet run of the same
// shards, the daemons' -site ids must be globally unique across groups
// (per-site solver seeds derive from them). The swap takes the job lock,
// so a protocol run in flight finishes on the old group set.
func (r *Registry) AddRemoteGroup(name string, coord *transport.Coordinator) error {
	if coord == nil || coord.Sites() == 0 {
		return fmt.Errorf("serve: remote group for %q has no sites", name)
	}
	d, err := r.Get(name)
	if err != nil {
		return err
	}
	if d.kind != KindRemote {
		return fmt.Errorf("serve: dataset %q is %s, not remote", name, d.kind)
	}
	d.jobMu.Lock()
	defer d.jobMu.Unlock()
	groups := append(append([]*transport.Coordinator(nil), d.remoteGroups...), coord)
	multi, err := transport.NewMulti(groups...)
	if err != nil {
		return fmt.Errorf("serve: dataset %q: %w", name, err)
	}
	d.mu.Lock()
	d.remoteGroups = groups
	d.remote = multi
	d.remoteSites = multi.Sites()
	d.version = r.nextVersion()
	d.mu.Unlock()
	return nil
}

// Append adds points to a table (sealing them as a new storage chunk and
// bumping the version, so future jobs see the grown dataset and stale
// shard caches age out) or feeds them to a stream sketch. Remote datasets
// ingest at the sites, not through the server.
func (r *Registry) Append(name string, pts []metric.Point) (DatasetInfo, error) {
	return r.AppendJournaled(name, pts, nil)
}

// AppendJournaled is Append with a write-ahead hook: after validation and
// before any state changes, journal (when non-nil) runs under the dataset
// lock. If it fails, nothing is applied — the journaled log and the
// in-memory state never diverge in either direction. Holding the dataset
// lock across the hook also pins journal order to apply order: two
// concurrent appends to one stream sketch journal in exactly the order
// their points entered the sketch, so replay reproduces the summary bit
// for bit.
func (r *Registry) AppendJournaled(name string, pts []metric.Point, journal func() error) (DatasetInfo, error) {
	d, err := r.Get(name)
	if err != nil {
		return DatasetInfo{}, err
	}
	if len(pts) == 0 {
		return DatasetInfo{}, fmt.Errorf("serve: append to %q: no points", name)
	}
	if err := r.appendLocked(d, pts, journal); err != nil {
		return DatasetInfo{}, err
	}
	return d.Info(), nil
}

// appendLocked performs the append under the dataset lock (deferred, so a
// panicking solver path can never wedge the mutex): validate, journal,
// then apply — a record is never written for points that fail validation,
// and points are never applied that the journal did not accept.
func (r *Registry) appendLocked(d *Dataset, pts []metric.Point, journal func() error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.kind {
	case KindTable:
		if err := validatePoints(pts, d.dim); err != nil {
			return fmt.Errorf("serve: append to %q: %w", d.name, err)
		}
	case KindStream:
		// The sketch distance code assumes one dimension; pin it on first
		// append and reject mismatches here, where they fail cleanly.
		dim := d.dim
		if dim == 0 {
			if len(pts[0]) == 0 {
				return fmt.Errorf("serve: append to %q: point 0 is empty", d.name)
			}
			dim = pts[0].Dim()
		}
		if err := validatePoints(pts, dim); err != nil {
			return fmt.Errorf("serve: append to %q: %w", d.name, err)
		}
	case KindUncertain:
		return fmt.Errorf("serve: dataset %q is uncertain; nodes are fixed at registration (register a new dataset to change them)", d.name)
	default:
		return fmt.Errorf("serve: dataset %q is %s; append its data at the sites", d.name, d.kind)
	}
	if journal != nil {
		if err := journal(); err != nil {
			return err
		}
	}
	switch d.kind {
	case KindTable:
		// Seal the appended points as one new chunk: sealed chunks are
		// immutable, running jobs hold chunk-list snapshots capped at their
		// length, and nothing is ever copied — append cost is O(appended),
		// not O(table).
		d.chunks = append(d.chunks, pts[:len(pts):len(pts)])
		d.n += len(pts)
		d.version = r.nextVersion()
	case KindStream:
		if d.dim == 0 {
			d.dim = pts[0].Dim()
		}
		for _, p := range pts {
			d.sketch.Add(p)
		}
	}
	return nil
}

// validateName rejects empty or path-hostile dataset names.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty dataset name")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: dataset name longer than 128 bytes")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("serve: dataset name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return nil
}

// validatePoints checks dimension consistency against dim.
func validatePoints(pts []metric.Point, dim int) error {
	for i, p := range pts {
		if len(p) == 0 {
			return fmt.Errorf("serve: point %d is empty", i)
		}
		if p.Dim() != dim {
			return fmt.Errorf("serve: point %d has dim %d, want %d", i, p.Dim(), dim)
		}
	}
	return nil
}
