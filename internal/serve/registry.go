// Package serve implements the long-running clustering service behind
// cmd/dpc-server: a registry of named datasets, an HTTP/JSON job API, and a
// bounded scheduler that runs many (k, t, objective) queries against the
// same site-held data — the "repeated service over distributed data"
// reading of Guha–Li–Zhang, where the expensive state (datasets, memoized
// distance oracles, site connections) stays warm across queries instead of
// being rebuilt per CLI invocation.
//
// Three dataset kinds cover the paper's deployment modes:
//
//   - table: points held in server memory, jobs run the full distributed
//     protocol over in-process loopback shards; every job that queries the
//     same (dataset, sharding) reuses one shared metric.DistCache per
//     shard, drawn from an LRU-bounded metric.CachePool.
//   - stream: an internal/stream sketch absorbs incremental ingest in
//     O(chunk + k + t) memory; jobs answer (k, t) queries on the summary.
//   - remote: the data lives in dpc-site daemons holding persistent TCP
//     connections; jobs fan the coordinator protocol out over the existing
//     transport, and the sites keep their own caches warm across jobs.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dpc/internal/metric"
	"dpc/internal/stream"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// ErrDatasetExists marks duplicate-name registrations (HTTP 409, where
// plain validation failures are 400).
var ErrDatasetExists = errors.New("dataset already exists")

// ErrDatasetNotFound marks lookups of unregistered dataset names; the HTTP
// layer maps it to 404 with the stable code "dataset_not_found".
var ErrDatasetNotFound = errors.New("no such dataset")

// DatasetKind names a dataset's storage/execution mode.
type DatasetKind string

// Dataset kinds.
const (
	// KindTable holds points in server memory; jobs run the distributed
	// protocol over loopback shards with pooled shared distance caches.
	KindTable DatasetKind = "table"
	// KindStream holds an internal/stream sketch; points append
	// incrementally and jobs query the summary.
	KindStream DatasetKind = "stream"
	// KindRemote holds persistent connections to dpc-site daemons; jobs
	// run the protocol over TCP against data the server never sees.
	KindRemote DatasetKind = "remote"
	// KindUncertain holds Section 5 uncertain data — a shared ground set
	// and distribution-valued nodes; jobs run Algorithm 3/4 over loopback
	// node shards.
	KindUncertain DatasetKind = "uncertain"
)

// Dataset is one named dataset in the registry.
type Dataset struct {
	mu   sync.RWMutex
	name string
	kind DatasetKind

	// table state; version is registry-global and bumps on every append,
	// so cache-pool keys of stale shardings — including those of a deleted
	// and re-registered dataset under the same name — can never collide
	// with live ones, and go cold via LRU.
	pts     []metric.Point
	version int
	// dim pins the point dimension (table and stream) from registration /
	// first append on, so a mismatched append fails cleanly instead of
	// panicking inside a distance computation later.
	dim int

	// uncertain state: the shared ground set and the registered nodes.
	// Both are immutable after registration (uncertain datasets do not
	// support append — the collapse caches at the sites key on node
	// identity), so jobs read them without taking the dataset lock.
	ground *uncertain.Ground
	nodes  []uncertain.Node

	// stream state. streamMeans records the registration-time objective:
	// the sketch's summary is built for exactly one of median/means, so
	// queries for the other are rejected rather than silently answered
	// with the wrong costs.
	sketch      *stream.Sketch
	streamMeans bool

	// remote state. jobMu serializes protocol runs: one Coordinator serves
	// one run at a time (connection persistence, not multiplexing).
	remote      *transport.Coordinator
	remoteSites int
	jobMu       sync.Mutex

	// stats aggregates hit/miss traffic over every shard cache of this
	// dataset — the observable the e2e test asserts cache reuse with.
	stats metric.CacheStats
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Kind returns the dataset kind.
func (d *Dataset) Kind() DatasetKind { return d.kind }

// CacheStats snapshots the dataset's aggregate distance-cache traffic.
func (d *Dataset) CacheStats() (hits, misses int64) {
	return d.stats.Snapshot()
}

// CloseRemote shuts a remote dataset's site connections (sending every
// site the protocol close, ending its ServeJobs loop). No-op for local
// datasets. Jobs in flight finish first: the close takes the job lock.
func (d *Dataset) CloseRemote() error {
	if d.kind != KindRemote || d.remote == nil {
		return nil
	}
	d.jobMu.Lock()
	defer d.jobMu.Unlock()
	return d.remote.Close()
}

// snapshotTable returns the current points and version. The returned slice
// is a stable prefix view: appends never mutate already-registered points,
// so a running job keeps a consistent dataset while ingest continues.
func (d *Dataset) snapshotTable() ([]metric.Point, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pts[:len(d.pts):len(d.pts)], d.version
}

// DatasetInfo is the JSON summary of a dataset.
type DatasetInfo struct {
	Name    string      `json:"name"`
	Kind    DatasetKind `json:"kind"`
	Points  int         `json:"points"`
	Dim     int         `json:"dim,omitempty"`
	Version int         `json:"version"`
	// Stream-only: points consumed and summary size after compression.
	Ingested     int `json:"ingested,omitempty"`
	SummarySize  int `json:"summary_size,omitempty"`
	Compressions int `json:"compressions,omitempty"`
	// Remote-only: connected site daemons.
	Sites int `json:"sites,omitempty"`
	// Uncertain-only: registered nodes and ground-set size.
	Nodes        int `json:"nodes,omitempty"`
	GroundPoints int `json:"ground_points,omitempty"`
	// Aggregate distance-cache traffic across this dataset's shard caches.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// Info snapshots a dataset summary.
func (d *Dataset) Info() DatasetInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info := DatasetInfo{Name: d.name, Kind: d.kind, Version: d.version}
	info.CacheHits, info.CacheMisses = d.stats.Snapshot()
	switch d.kind {
	case KindTable:
		info.Points = len(d.pts)
		if len(d.pts) > 0 {
			info.Dim = d.pts[0].Dim()
		}
	case KindStream:
		info.Ingested = d.sketch.N()
		info.SummarySize = d.sketch.Size()
		info.Compressions = d.sketch.Compressions()
		info.Points = d.sketch.N()
		info.Dim = d.dim
	case KindRemote:
		info.Sites = d.remoteSites
	case KindUncertain:
		// Points stays zero: nodes are not points, and the ground-set
		// size is reported unambiguously as GroundPoints.
		info.Nodes = len(d.nodes)
		info.GroundPoints = d.ground.N()
		info.Dim = d.dim
	}
	return info
}

// Registry holds the named datasets and the shared cache pool.
type Registry struct {
	mu       sync.RWMutex
	ds       map[string]*Dataset
	pool     *metric.CachePool
	versions int // monotonic dataset-version source (guarded by mu)
}

// nextVersion hands out a registry-unique dataset version.
func (r *Registry) nextVersion() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions++
	return r.versions
}

// NewRegistry creates an empty registry whose cache pool is bounded by
// maxCacheBytes (<= 0 means the pool default).
func NewRegistry(maxCacheBytes int64) *Registry {
	return &Registry{
		ds:   make(map[string]*Dataset),
		pool: metric.NewCachePool(maxCacheBytes),
	}
}

// Pool returns the shared cache pool (metrics/testing).
func (r *Registry) Pool() *metric.CachePool { return r.pool }

// Get returns the named dataset.
func (r *Registry) Get(name string) (*Dataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.ds[name]
	if !ok {
		return nil, fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	return d, nil
}

// List returns summaries of every dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	names := make([]string, 0, len(r.ds))
	for n := range r.ds {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	infos := make([]DatasetInfo, 0, len(names))
	for _, n := range names {
		if d, err := r.Get(n); err == nil {
			infos = append(infos, d.Info())
		}
	}
	return infos
}

// Delete removes the named dataset and reclaims its pooled shard caches
// right away (jobs still holding one keep using it safely). Remote
// datasets are not deletable over the API (their connections belong to the
// server process).
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	d, ok := r.ds[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("serve: dataset %q: %w", name, ErrDatasetNotFound)
	}
	if d.kind == KindRemote {
		r.mu.Unlock()
		return fmt.Errorf("serve: dataset %q is remote and cannot be deleted over the API", name)
	}
	delete(r.ds, name)
	r.mu.Unlock()
	r.pool.InvalidatePrefix(name + "@v")
	return nil
}

// register inserts d, rejecting duplicate names.
func (r *Registry) register(d *Dataset) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ds[d.name]; ok {
		return fmt.Errorf("serve: dataset %q: %w", d.name, ErrDatasetExists)
	}
	r.ds[d.name] = d
	return nil
}

// RegisterTable registers a table dataset holding pts.
func (r *Registry) RegisterTable(name string, pts []metric.Point) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("serve: dataset %q has no points", name)
	}
	if err := validatePoints(pts, pts[0].Dim()); err != nil {
		return nil, err
	}
	d := &Dataset{name: name, kind: KindTable, pts: pts, version: r.nextVersion(), dim: pts[0].Dim()}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// RegisterStream registers a stream dataset: a sketch for k centers and t
// outliers with the given chunk size (0 = stream default), means switching
// connection costs to squared distances.
func (r *Registry) RegisterStream(name string, k, t, chunk int, means bool, seed int64) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	sk, err := stream.New(stream.Config{K: k, T: t, Chunk: chunk, Means: means,
		Opts: streamOpts(seed)})
	if err != nil {
		return nil, fmt.Errorf("serve: dataset %q: %w", name, err)
	}
	d := &Dataset{name: name, kind: KindStream, sketch: sk, streamMeans: means, version: r.nextVersion()}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// RegisterUncertain registers an uncertain dataset: a shared ground set g
// and the distribution-valued nodes over it. Jobs with the u-* objectives
// run Algorithm 3/4 over loopback shards of the nodes.
func (r *Registry) RegisterUncertain(name string, g *uncertain.Ground, nodes []uncertain.Node) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("serve: uncertain dataset %q has an empty ground set", name)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: uncertain dataset %q has no nodes", name)
	}
	dim := g.Pts[0].Dim()
	if err := validatePoints(g.Pts, dim); err != nil {
		return nil, fmt.Errorf("serve: uncertain dataset %q: %w", name, err)
	}
	for j := range nodes {
		if err := nodes[j].Validate(g); err != nil {
			return nil, fmt.Errorf("serve: uncertain dataset %q: node %d: %w", name, j, err)
		}
	}
	d := &Dataset{name: name, kind: KindUncertain, ground: g, nodes: nodes,
		version: r.nextVersion(), dim: dim}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// RegisterRemote registers a remote dataset served by sites connected on
// coord. The server (not the HTTP API) owns the connections; the registry
// serializes jobs over them.
func (r *Registry) RegisterRemote(name string, coord *transport.Coordinator) (*Dataset, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if coord == nil || coord.Sites() == 0 {
		return nil, fmt.Errorf("serve: remote dataset %q has no sites", name)
	}
	d := &Dataset{name: name, kind: KindRemote, remote: coord, remoteSites: coord.Sites(), version: r.nextVersion()}
	if err := r.register(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Append adds points to a table (extending it and bumping the version, so
// future jobs see the grown dataset and stale shard caches age out) or
// feeds them to a stream sketch. Remote datasets ingest at the sites, not
// through the server.
func (r *Registry) Append(name string, pts []metric.Point) (DatasetInfo, error) {
	d, err := r.Get(name)
	if err != nil {
		return DatasetInfo{}, err
	}
	if len(pts) == 0 {
		return DatasetInfo{}, fmt.Errorf("serve: append to %q: no points", name)
	}
	if err := r.appendLocked(d, pts); err != nil {
		return DatasetInfo{}, err
	}
	return d.Info(), nil
}

// appendLocked performs the append under the dataset lock (deferred, so a
// panicking solver path can never wedge the mutex).
func (r *Registry) appendLocked(d *Dataset, pts []metric.Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.kind {
	case KindTable:
		if err := validatePoints(pts, d.dim); err != nil {
			return fmt.Errorf("serve: append to %q: %w", d.name, err)
		}
		// Copy-on-append: running jobs hold snapshots of the old backing
		// array; never grow it in place beyond their view.
		grown := make([]metric.Point, 0, len(d.pts)+len(pts))
		grown = append(grown, d.pts...)
		grown = append(grown, pts...)
		d.pts = grown
		d.version = r.nextVersion()
	case KindStream:
		// The sketch distance code assumes one dimension; pin it on first
		// append and reject mismatches here, where they fail cleanly.
		if d.dim == 0 {
			if len(pts[0]) == 0 {
				return fmt.Errorf("serve: append to %q: point 0 is empty", d.name)
			}
			d.dim = pts[0].Dim()
		}
		if err := validatePoints(pts, d.dim); err != nil {
			return fmt.Errorf("serve: append to %q: %w", d.name, err)
		}
		for _, p := range pts {
			d.sketch.Add(p)
		}
	case KindUncertain:
		return fmt.Errorf("serve: dataset %q is uncertain; nodes are fixed at registration (register a new dataset to change them)", d.name)
	default:
		return fmt.Errorf("serve: dataset %q is %s; append its data at the sites", d.name, d.kind)
	}
	return nil
}

// validateName rejects empty or path-hostile dataset names.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty dataset name")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: dataset name longer than 128 bytes")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("serve: dataset name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return nil
}

// validatePoints checks dimension consistency against dim.
func validatePoints(pts []metric.Point, dim int) error {
	for i, p := range pts {
		if len(p) == 0 {
			return fmt.Errorf("serve: point %d is empty", i)
		}
		if p.Dim() != dim {
			return fmt.Errorf("serve: point %d has dim %d, want %d", i, p.Dim(), dim)
		}
	}
	return nil
}
