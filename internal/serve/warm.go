package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"dpc/internal/dataio"
	"dpc/internal/metric"
)

// Warm triangles: background cache warmup and the spill/restore cycle.
//
// Warmup prefetches the pooled shard caches of a table dataset on the
// scheduler's spare capacity, so the first job against fresh data no
// longer pays the full O(n^2/s) metric cost inline. Spill persists every
// filled triangle on shutdown and restore adopts them on the next start —
// keyed by shard content hash, so the warmth survives renames, version
// renumbering and re-registration, and never leaks across different data
// (metric.HashPoints is exact).

// SpillFile is the file name the registry reads and writes inside the
// configured cache directory.
const SpillFile = "warm-triangles.dpcspill"

// maxSpillCarry bounds how many server lives a staged triangle survives
// without being re-adopted before the spill cycle drops it: warmth should
// outlast a couple of idle restarts, not accumulate dead datasets'
// triangles forever.
const maxSpillCarry = 3

// maxHashRecords bounds the key→hash record: past it, keys whose caches
// have left the pool (version churn, evictions) are pruned on the next
// build, so a long server life with steady appends cannot grow the map
// without bound.
const maxHashRecords = 1024

// adoptSpilled merges a spilled triangle into a freshly built shard cache
// when the shard's content hash matches, and records the key→hash mapping
// so SaveSpill can attribute the cache later. Called from the pool's build
// path; the shard is hashed exactly once per cache build, and not at all
// on a registry without a cache directory (spill disabled: nothing to
// restore, nothing to save).
func (r *Registry) adoptSpilled(key string, shard []metric.Point, dc *metric.DistCache) {
	r.spillMu.Lock()
	if !r.spillOn {
		r.spillMu.Unlock()
		return
	}
	r.spillMu.Unlock()

	hash := metric.HashPoints(shard)
	r.spillMu.Lock()
	if len(r.hashes) >= maxHashRecords {
		for k := range r.hashes {
			if !r.pool.Has(k) {
				delete(r.hashes, k)
			}
		}
	}
	r.hashes[key] = hash
	sk := spillKey{hash: hash, n: len(shard)}
	staged, ok := r.spilled[sk]
	if ok {
		// Adopt once: the cells now live in the pooled cache. A second
		// build of the same content (after an eviction) rebuilds cold, like
		// any other evicted cache.
		delete(r.spilled, sk)
	}
	r.spillMu.Unlock()
	if !ok {
		return
	}
	if adopted, err := dc.AdoptCells(staged.cells); err == nil {
		r.restored.Add(int64(adopted))
	}
}

// forgetHashes drops key→hash records under a deleted dataset's key
// prefix (the spill-side sibling of CachePool.InvalidatePrefix).
func (r *Registry) forgetHashes(prefix string) {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	for k := range r.hashes {
		if strings.HasPrefix(k, prefix) {
			delete(r.hashes, k)
		}
	}
}

// LoadSpill reads the spill file under dir (if present) and stages its
// triangles for adoption by future shard-cache builds; it also arms the
// whole spill cycle (hashing, key records, SaveSpill) for this registry.
// Returns the number of staged entries; a missing file is not an error
// (the cycle still arms), a corrupt one is.
func (r *Registry) LoadSpill(dir string) (int, error) {
	r.spillMu.Lock()
	r.spillOn = true
	r.spillMu.Unlock()
	f, err := os.Open(filepath.Join(dir, SpillFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	entries, err := metric.ReadSpill(f)
	if err != nil {
		return 0, fmt.Errorf("serve: loading spill: %w", err)
	}
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	staged := 0
	for _, e := range entries {
		switch e.Kind {
		case metric.SpillDist:
			r.spilled[spillKey{hash: e.Hash, n: e.N}] = spilledCells{cells: e.Cells, age: e.Age}
			staged++
		case metric.SpillIndex:
			r.spilledIx[ixSpillKey{hash: e.Hash, n: e.N, nc: e.NC}] = stagedIndex{e: e, age: e.Age}
			staged++
		}
	}
	return staged, nil
}

// SaveSpill writes every pooled shard cache with at least one filled cell
// to the spill file under dir (atomically: temp file + rename). Triangles
// staged at load but never re-adopted are carried forward with their age
// bumped, so a dataset that sits out a few server runs keeps its warmth —
// but past maxSpillCarry idle lives they expire, so the file and the
// staged memory cannot accumulate dead data forever. Returns the number
// of entries written.
func (r *Registry) SaveSpill(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var entries []metric.SpillEntry
	seen := make(map[spillKey]bool)
	for _, pe := range r.pool.Entries() {
		r.spillMu.Lock()
		hash, ok := r.hashes[pe.Key]
		r.spillMu.Unlock()
		if !ok || pe.DC.Filled() == 0 {
			continue
		}
		k := spillKey{hash: hash, n: pe.DC.N()}
		if seen[k] {
			continue // identical content pooled under two keys: spill once
		}
		seen[k] = true
		entries = append(entries, metric.SpillDistCache(pe.DC, hash))
	}
	r.spillMu.Lock()
	for k, staged := range r.spilled {
		if seen[k] || staged.age+1 > maxSpillCarry {
			continue
		}
		seen[k] = true
		entries = append(entries, metric.SpillEntry{
			Kind: metric.SpillDist, Hash: k.hash, Age: staged.age + 1, N: k.n, Cells: staged.cells})
	}
	r.spillMu.Unlock()

	// Pivot indexes spill alongside the triangles they were built over,
	// keyed by the same content hash (plus size and pivot count). Only
	// self-checked indexes are worth keeping — a degraded one is just a
	// full-scan shim the next process can rebuild for free.
	seenIx := make(map[ixSpillKey]bool)
	r.ixMu.Lock()
	ixes := make([]shardIndexEntry, 0, len(r.ixes))
	for _, e := range r.ixes {
		ixes = append(ixes, e)
	}
	r.ixMu.Unlock()
	for _, e := range ixes {
		if !e.ix.Ok() || len(e.ix.Pivots()) == 0 {
			continue
		}
		r.spillMu.Lock()
		hash, ok := r.hashes[e.base]
		r.spillMu.Unlock()
		if !ok {
			continue
		}
		k := ixSpillKey{hash: hash, n: e.ix.N(), nc: len(e.ix.Pivots())}
		if seenIx[k] {
			continue
		}
		seenIx[k] = true
		entries = append(entries, metric.SpillIndexEntry(e.ix, hash))
	}
	r.spillMu.Lock()
	for k, staged := range r.spilledIx {
		if seenIx[k] || staged.age+1 > maxSpillCarry {
			continue
		}
		seenIx[k] = true
		e := staged.e
		e.Age = staged.age + 1
		entries = append(entries, e)
	}
	r.spillMu.Unlock()

	tmp, err := os.CreateTemp(dir, SpillFile+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if err := metric.WriteSpill(tmp, entries); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, SpillFile)); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// WarmupStats is the background-warmup progress /metrics exposes.
type WarmupStats struct {
	Started    int64 // warmup tasks started
	Done       int64 // warmup tasks finished (complete or preempted)
	Skipped    int64 // warmups dropped because the scheduler queue was full
	CellsDone  int64 // cells filled by warmups so far
	CellsTotal int64 // cells targeted by warmups started so far
}

// warmupState is the server-side accounting behind WarmupStats.
type warmupState struct {
	started, done, skipped atomic.Int64
	cellsDone, cellsTotal  atomic.Int64
}

func (w *warmupState) snapshot() WarmupStats {
	return WarmupStats{
		Started:    w.started.Load(),
		Done:       w.done.Load(),
		Skipped:    w.skipped.Load(),
		CellsDone:  w.cellsDone.Load(),
		CellsTotal: w.cellsTotal.Load(),
	}
}

// WarmTable prefills the pooled shard caches of a table dataset at the
// default job sharding, on at most `workers` goroutines. It stops early
// when ctx is cancelled (server drain) or a shard's cache leaves the pool
// (LRU eviction or dataset delete — no point warming an orphan). progress
// and total, when non-nil, receive cells-filled / cells-targeted
// accounting. Returns the number of cells filled by this call.
func (r *Registry) WarmTable(ctx context.Context, name string, workers int, progress, total *atomic.Int64) (int, error) {
	d, err := r.Get(name)
	if err != nil {
		return 0, err
	}
	if d.kind != KindTable {
		return 0, fmt.Errorf("serve: dataset %q is %s; warmup applies to table datasets", name, d.kind)
	}
	view, version := d.snapshotTable()
	shards := dataio.SplitRoundRobin(view.Flatten(), DefaultJobSites)
	caches := r.shardCaches(d, version, shards)
	filled := 0
	for i, dc := range caches {
		if dc == nil {
			continue // shard above the memoization limit
		}
		if total != nil {
			// Target only the cells actually left to compute: a restored or
			// already-queried cache contributes its remainder, so the
			// done/total gauges converge instead of undercounting forever.
			total.Add(dc.Bytes()/8 - int64(dc.Filled()))
		}
		key := shardKey(d.name, version, len(shards), i)
		filled += dc.PrefillCtx(ctx, workers, func() bool { return r.pool.Has(key) }, progress)
	}

	// With index warmup armed, build one pooled pivot index per shard after
	// the prefill: the point→pivot columns read straight out of the warm
	// triangle, and the first indexed job finds its bounds precomputed.
	// Shards above the memoization cap index over the raw points.
	r.ixMu.Lock()
	warmIx, warmPivots := r.warmIx, r.warmIxPivots
	r.ixMu.Unlock()
	if warmIx && d.metricReport.TriangleOK {
		for i, dc := range caches {
			if ctx.Err() != nil {
				break
			}
			key := shardKey(d.name, version, len(shards), i)
			var sp metric.Space
			switch {
			case dc != nil && r.pool.Has(key):
				sp = dc
			case dc != nil:
				continue // evicted mid-warm: no point indexing an orphan
			default:
				sp = metric.NewPoints(shards[i])
			}
			r.shardIndex(key, sp, shards[i], warmPivots)
		}
	}
	return filled, nil
}
