package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpc/internal/gen"
	"dpc/internal/metric"
)

// waitServerJob polls the server directly (no HTTP) until the job settles.
func waitServerJob(t *testing.T, s *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.GetJob(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusCanceled {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

// TestConcurrentJobsShareOneCacheAndMatchSequential hammers one dataset
// with N concurrent submissions: every job must be served from the same
// per-shard caches (exactly `sites` pool builds — no duplicate caches under
// race) and return bit-identical results to a sequential run. Run under
// -race in CI, this is the concurrency acceptance test.
func TestConcurrentJobsShareOneCacheAndMatchSequential(t *testing.T) {
	const (
		goroutines = 8
		sites      = 4
	)
	in := gen.Mixture(gen.MixtureSpec{N: 400, K: 3, OutlierFrac: 0.05, Seed: 41})

	// Sequential reference on a fresh server.
	seq := New(Config{MaxConcurrentJobs: 1})
	defer seq.Close()
	if _, err := seq.Registry().RegisterTable("ds", in.Pts); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Dataset: "ds", K: 3, T: 20, Sites: sites, Seed: 7}
	sj, err := seq.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	seqJob := waitServerJob(t, seq, sj.ID)
	if seqJob.Status != StatusDone {
		t.Fatalf("sequential job failed: %s", seqJob.Error)
	}

	// Concurrent run on another server: N goroutines, one shared dataset.
	con := New(Config{MaxConcurrentJobs: goroutines, QueueDepth: goroutines * 2})
	defer con.Close()
	if _, err := con.Registry().RegisterTable("ds", in.Pts); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, goroutines)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			j, err := con.Submit(spec)
			if err != nil {
				errs[g] = err
				return
			}
			ids[g] = j.ID
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d submit: %v", g, err)
		}
	}

	for g, id := range ids {
		j := waitServerJob(t, con, id)
		if j.Status != StatusDone {
			t.Fatalf("concurrent job %d failed: %s", g, j.Error)
		}
		// Bit-identical to the sequential run: same centers, same cost,
		// same wire bytes.
		if len(j.Result.Centers) != len(seqJob.Result.Centers) {
			t.Fatalf("job %d: %d centers, sequential found %d", g, len(j.Result.Centers), len(seqJob.Result.Centers))
		}
		for i := range j.Result.Centers {
			if !metric.Point(j.Result.Centers[i]).Equal(metric.Point(seqJob.Result.Centers[i])) {
				t.Fatalf("job %d center %d = %v, sequential %v", g, i, j.Result.Centers[i], seqJob.Result.Centers[i])
			}
		}
		if j.Result.Cost != seqJob.Result.Cost {
			t.Fatalf("job %d cost %v, sequential %v", g, j.Result.Cost, seqJob.Result.Cost)
		}
		if j.Result.UpBytes != seqJob.Result.UpBytes {
			t.Fatalf("job %d up bytes %d, sequential %d", g, j.Result.UpBytes, seqJob.Result.UpBytes)
		}
	}

	// The cache-stats assertion: all N jobs were served by exactly `sites`
	// shared caches — the pool deduplicated every racing Get.
	pool := con.Registry().Pool().Stats()
	if pool.Builds != sites {
		t.Fatalf("concurrent jobs built %d caches, want %d (one per shard)", pool.Builds, sites)
	}
	if pool.Hits < int64((goroutines-1)*sites) {
		t.Fatalf("pool hits %d, want >= %d (every later job reuses every shard cache)",
			pool.Hits, (goroutines-1)*sites)
	}
	d, err := con.Registry().Get("ds")
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := d.CacheStats()
	if hits == 0 {
		t.Fatalf("no shared-cache hits across %d concurrent jobs", goroutines)
	}
	// Misses are bounded by goroutines * cells (concurrent first readers of
	// one cell may each compute it — benign by design), but sharing must
	// keep them well under "every job fills its own cache".
	seqHits, seqMisses := func() (int64, int64) {
		sd, _ := seq.Registry().Get("ds")
		return sd.CacheStats()
	}()
	if misses >= seqMisses*int64(goroutines) {
		t.Fatalf("misses %d suggest per-job private caches (sequential job: %d misses)", misses, seqMisses)
	}
	_ = seqHits
	if hits+misses < seqHits+seqMisses {
		t.Fatalf("total traffic %d below a single job's %d: stats missing", hits+misses, seqHits+seqMisses)
	}
}

// TestManyDatasetsConcurrently exercises the scheduler across datasets:
// jobs against different datasets run independently and each dataset keeps
// its own cache accounting.
func TestManyDatasetsConcurrently(t *testing.T) {
	s := New(Config{MaxConcurrentJobs: 4})
	defer s.Close()
	const datasets = 5
	for d := 0; d < datasets; d++ {
		in := gen.Mixture(gen.MixtureSpec{N: 150 + 30*d, K: 2, OutlierFrac: 0.02, Seed: int64(50 + d)})
		if _, err := s.Registry().RegisterTable(fmt.Sprintf("ds%d", d), in.Pts); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]string, datasets*3)
	for i := range ids {
		j, err := s.Submit(JobSpec{Dataset: fmt.Sprintf("ds%d", i%datasets), K: 2, T: 8, Sites: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		if j := waitServerJob(t, s, id); j.Status != StatusDone {
			t.Fatalf("job %s failed: %s", id, j.Error)
		}
	}
	if pool := s.Registry().Pool().Stats(); pool.Builds != datasets*2 {
		t.Fatalf("pool built %d caches, want %d (2 shards x %d datasets)", pool.Builds, datasets*2, datasets)
	}
}
