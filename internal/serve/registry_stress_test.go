package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dpc/internal/metric"
)

func stressPoints(n int, seed uint64) []metric.Point {
	pts := make([]metric.Point, n)
	x := seed
	for i := range pts {
		x = x*6364136223846793005 + 1442695040888963407
		pts[i] = metric.Point{float64(x % 997), float64((x >> 17) % 997)}
	}
	return pts
}

// TestRegistryConcurrentStress hammers the segmented registry from many
// goroutines at once — register/append/get/list/delete across segment
// boundaries, with snapshot reads racing appends — and then verifies the
// surviving datasets are intact. Run under -race in CI, this is the memory
// model proof of the segment/chunk design.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistrySharded(0, 8)
	const (
		workers  = 8
		datasets = 24
		rounds   = 60
	)
	name := func(d int) string { return fmt.Sprintf("stress-%02d", d) }
	// Pre-register half the namespace so gets and appends have targets.
	for d := 0; d < datasets; d += 2 {
		if _, err := r.RegisterTable(name(d), stressPoints(16, uint64(d+1))); err != nil {
			t.Fatal(err)
		}
	}

	var snapshots atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := uint64(w + 101)
			for i := 0; i < rounds; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				d := int(x % datasets)
				switch x % 5 {
				case 0:
					// Register (duplicates expected and fine).
					r.RegisterTable(name(d), stressPoints(16, x))
				case 1:
					// Append; the dataset may be deleted concurrently.
					r.Append(name(d), stressPoints(8, x))
				case 2:
					// Snapshot during appends: the view must be internally
					// consistent (every chunk fully visible, count exact).
					if ds, err := r.Get(name(d)); err == nil && ds.Kind() == KindTable {
						view, _ := ds.snapshotTable()
						flat := view.Flatten()
						if len(flat) != view.Len() {
							t.Errorf("snapshot flattens to %d points, Len says %d", len(flat), view.Len())
							return
						}
						for _, p := range flat {
							if p.Dim() != 2 {
								t.Errorf("snapshot exposed a torn point (dim %d)", p.Dim())
								return
							}
						}
						snapshots.Add(1)
					}
				case 3:
					r.List()
				case 4:
					if i%7 == 0 {
						r.Delete(name(d))
					} else if ds, err := r.Get(name(d)); err == nil {
						ds.Info()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if snapshots.Load() == 0 {
		t.Fatal("stress schedule took no snapshots; the race coverage is gone")
	}
	// Post-conditions: every surviving dataset is structurally sound and
	// point counts equal the sum of chunk lengths.
	for _, info := range r.List() {
		ds, err := r.Get(info.Name)
		if err != nil {
			t.Fatalf("listed dataset %q vanished: %v", info.Name, err)
		}
		view, _ := ds.snapshotTable()
		if got := len(view.Flatten()); got != view.Len() {
			t.Fatalf("dataset %q: flatten %d != len %d", info.Name, got, view.Len())
		}
		if view.Len()%8 != 0 {
			t.Fatalf("dataset %q holds %d points; appends are multiples of 8 over a 16-point base", info.Name, view.Len())
		}
	}
}

// TestRegistrySnapshotStableUnderAppend pins the copy-free snapshot
// contract: a view taken before appends neither grows nor changes, while
// the registry advances underneath it.
func TestRegistrySnapshotStableUnderAppend(t *testing.T) {
	r := NewRegistry(0)
	base := stressPoints(10, 3)
	if _, err := r.RegisterTable("snap", base); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Get("snap")
	view, v1 := d.snapshotTable()
	before := view.Flatten()

	for i := 0; i < 5; i++ {
		if _, err := r.Append("snap", stressPoints(7, uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if view.Len() != 10 || len(view.Flatten()) != 10 {
		t.Fatalf("old view grew to %d points", view.Len())
	}
	after := view.Flatten()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("point %d changed under the snapshot", i)
			}
		}
	}
	view2, v2 := d.snapshotTable()
	if view2.Len() != 10+5*7 {
		t.Fatalf("new view has %d points, want %d", view2.Len(), 10+5*7)
	}
	if v2 <= v1 {
		t.Fatalf("version did not advance across appends (%d -> %d)", v1, v2)
	}
}

// TestRegistrySegmentsCoverNamespace sanity-checks the hash placement:
// many names spread across more than one segment, and every one remains
// reachable by Get.
func TestRegistrySegmentsCoverNamespace(t *testing.T) {
	r := NewRegistrySharded(0, 8)
	touched := make(map[*segment]bool)
	for i := 0; i < 64; i++ {
		n := fmt.Sprintf("cover-%d", i)
		if _, err := r.RegisterTable(n, stressPoints(4, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		touched[r.seg(n)] = true
		if _, err := r.Get(n); err != nil {
			t.Fatalf("Get(%q) after register: %v", n, err)
		}
	}
	if len(touched) < 2 {
		t.Fatalf("64 names landed on %d segment(s); hashing is broken", len(touched))
	}
	if got := r.Count(); got != 64 {
		t.Fatalf("Count() = %d, want 64", got)
	}
}
