package serve

import (
	"fmt"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
)

// JobSpec is the JSON body of POST /v1/jobs: one (k, t, objective) query
// against a registered dataset. Zero values select the same defaults
// dpc-cluster uses, so a job with only {dataset, k, t, seed} set reproduces
// a one-shot CLI run bit for bit.
type JobSpec struct {
	Dataset   string `json:"dataset"`
	K         int    `json:"k"`
	T         int    `json:"t"`
	Objective string `json:"objective,omitempty"` // median (default) | means | center
	Variant   string `json:"variant,omitempty"`   // 2round (default) | 1round | noship
	// Sites is the loopback shard count for table datasets (default 8,
	// matching dpc-cluster; capped at MaxJobSites). Ignored for stream
	// (no sharding) and remote (the connected daemons are the sharding)
	// datasets.
	Sites int     `json:"sites,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// Workers bounds the solver goroutines of this job (0 = one per CPU);
	// any value returns bit-identical results — the engine invariant.
	Workers int    `json:"workers,omitempty"`
	Engine  string `json:"engine,omitempty"` // auto (default) | localsearch | jv
	// NoCache disables shared and private distance caches for this job (a
	// measurement knob; results never change).
	NoCache     bool `json:"no_cache,omitempty"`
	LloydPolish bool `json:"lloyd_polish,omitempty"`
}

// MaxJobSites caps JobSpec.Sites: each simulated site costs a goroutine
// and per-shard state, so an unbounded request could allocate the server
// to death. Real deployments in the paper's regime run tens of sites.
const MaxJobSites = 4096

// Job statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Job is one submitted job and its lifecycle. Fields are guarded by the
// owning Server's job lock; handlers read snapshots via view().
type Job struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	Status    string     `json:"status"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// JobResult is a finished job's payload.
type JobResult struct {
	Centers [][]float64 `json:"centers"`
	// OutlierBudget is how many (weighted) points the solution may ignore.
	OutlierBudget float64 `json:"outlier_budget"`
	// Cost is the solution's objective value; CostKind says against what:
	// "global" (the full table, the measuring stick of core.Evaluate),
	// "summary" (the stream sketch's weighted summary), or "coordinator"
	// (the coordinator's induced instance — remote data never reaches the
	// server, so the true global cost is evaluated site-side if at all).
	Cost     float64 `json:"cost"`
	CostKind string  `json:"cost_kind"`
	// Communication footprint (distributed jobs only).
	Rounds      int    `json:"rounds,omitempty"`
	UpBytes     int64  `json:"up_bytes,omitempty"`
	DownBytes   int64  `json:"down_bytes,omitempty"`
	SiteBudgets []int  `json:"site_budgets,omitempty"`
	Transport   string `json:"transport,omitempty"`
	// Dataset cache traffic after this job (aggregate over the dataset's
	// shard caches — reuse shows up as hits growing while misses stay put).
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	DurationMS  float64 `json:"duration_ms"`
}

// parseObjective maps the API objective string to core's enum.
func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "", "median":
		return core.Median, nil
	case "means":
		return core.Means, nil
	case "center":
		return core.Center, nil
	}
	return 0, fmt.Errorf("serve: unknown objective %q (want median, means or center)", s)
}

// parseVariant maps the API variant string to core's enum.
func parseVariant(s string) (core.Variant, error) {
	switch s {
	case "", "2round":
		return core.TwoRound, nil
	case "1round":
		return core.OneRound, nil
	case "noship":
		return core.TwoRoundNoOutliers, nil
	}
	return 0, fmt.Errorf("serve: unknown variant %q (want 2round, 1round or noship)", s)
}

// parseEngine maps the API engine string to the kmedian enum.
func parseEngine(s string) (kmedian.Engine, error) {
	switch s {
	case "", "auto":
		return kmedian.EngineAuto, nil
	case "localsearch":
		return kmedian.EngineLocalSearch, nil
	case "jv":
		return kmedian.EngineJV, nil
	}
	return 0, fmt.Errorf("serve: unknown engine %q (want auto, localsearch or jv)", s)
}

// coreConfig translates a JobSpec into the distributed run configuration —
// exactly the mapping cmd/dpc-cluster performs, so server jobs and CLI runs
// agree bit for bit.
func (s JobSpec) coreConfig() (core.Config, error) {
	obj, err := parseObjective(s.Objective)
	if err != nil {
		return core.Config{}, err
	}
	vr, err := parseVariant(s.Variant)
	if err != nil {
		return core.Config{}, err
	}
	eng, err := parseEngine(s.Engine)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		K: s.K, T: s.T, Objective: obj, Variant: vr, Eps: s.Eps,
		LloydPolish: s.LloydPolish,
		Engine:      eng,
		LocalOpts:   kmedian.Options{Seed: s.Seed},
		Workers:     s.Workers,
		NoDistCache: s.NoCache,
	}, nil
}

// streamOpts is the solver option set stream datasets use; seed-threaded so
// sketch compressions are deterministic per dataset.
func streamOpts(seed int64) kmedian.Options {
	return kmedian.Options{Seed: seed}
}

// run executes spec against the registry and returns the result. It is
// called on a pool worker; everything it touches is either job-local or
// concurrency-safe (shared caches, dataset snapshots).
func (r *Registry) run(spec JobSpec) (*JobResult, error) {
	d, err := r.Get(spec.Dataset)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	var res *JobResult
	switch d.kind {
	case KindTable:
		res, err = r.runTable(d, spec)
	case KindStream:
		res, err = r.runStream(d, spec)
	case KindRemote:
		res, err = r.runRemote(d, spec)
	default:
		err = fmt.Errorf("serve: dataset %q has unknown kind %q", d.name, d.kind)
	}
	if err != nil {
		return nil, err
	}
	res.CacheHits, res.CacheMisses = d.stats.Snapshot()
	res.DurationMS = float64(time.Since(t0).Microseconds()) / 1000
	return res, nil
}

// shardCaches returns the shared distance cache for every shard of a table
// dataset at a given version and site count, building missing ones through
// the pool. Shards beyond metric.MaxCachePoints get nil (the handler falls
// back to the same uncached policy a one-shot run uses).
func (r *Registry) shardCaches(d *Dataset, version int, shards [][]metric.Point) []*metric.DistCache {
	caches := make([]*metric.DistCache, len(shards))
	for i, shard := range shards {
		if len(shard) > metric.MaxCachePoints {
			continue
		}
		shard := shard
		key := fmt.Sprintf("%s@v%d/s%d/%d", d.name, version, len(shards), i)
		caches[i] = r.pool.Get(key, func() *metric.DistCache {
			dc := metric.NewDistCache(metric.NewPoints(shard))
			dc.Stats = &d.stats
			return dc
		})
	}
	return caches
}

// runTable executes the full distributed protocol over in-process loopback
// shards — the same SplitRoundRobin sharding and core configuration as
// dpc-cluster, plus shared shard caches drawn from the pool.
func (r *Registry) runTable(d *Dataset, spec JobSpec) (*JobResult, error) {
	cfg, err := spec.coreConfig()
	if err != nil {
		return nil, err
	}
	pts, version := d.snapshotTable()
	// The same range check core.Run applies: a budget covering the whole
	// dataset would "succeed" with zero centers.
	if spec.T >= len(pts) {
		return nil, fmt.Errorf("serve: t = %d out of range [0, %d) for dataset %q", spec.T, len(pts), d.name)
	}
	sites := spec.Sites
	if sites <= 0 {
		sites = 8
	}
	shards := dataio.SplitRoundRobin(pts, sites)
	var caches []*metric.DistCache
	if !spec.NoCache {
		caches = r.shardCaches(d, version, shards)
	} else {
		caches = make([]*metric.DistCache, len(shards))
	}
	handlers := make([]transport.Handler, len(shards))
	for i := range shards {
		h, err := core.NewSiteHandlerCached(cfg, i, shards[i], caches[i])
		if err != nil {
			return nil, err
		}
		handlers[i] = h
	}
	tr := transport.NewLoopback(handlers, true)
	defer tr.Close()
	res, err := core.RunOver(tr, cfg)
	if err != nil {
		return nil, err
	}
	obj, _ := parseObjective(spec.Objective)
	return &JobResult{
		Centers:       pointsToRows(res.Centers),
		OutlierBudget: res.OutlierBudget,
		Cost:          core.Evaluate(pts, res.Centers, res.OutlierBudget, obj),
		CostKind:      "global",
		Rounds:        res.Report.Rounds,
		UpBytes:       res.Report.UpBytes,
		DownBytes:     res.Report.DownBytes,
		SiteBudgets:   res.SiteBudgets,
		Transport:     string(transport.KindLoopback),
	}, nil
}

// runStream answers a (k, t) query on the dataset's sketch summary. The
// sketch's objective is fixed at registration (its compressions already
// folded the stream under that objective), so a query for the other one is
// an error, not a silent wrong answer; per-job engine knobs (Engine, Seed,
// Workers) are likewise registration-time properties of the sketch.
//
// Query only reads sketch state, so it takes the read lock: concurrent
// queries, Info() and /metrics proceed; only appends (the single writer)
// serialize against it.
func (r *Registry) runStream(d *Dataset, spec JobSpec) (*JobResult, error) {
	switch spec.Objective {
	case "", "median":
		if d.streamMeans {
			return nil, fmt.Errorf("serve: dataset %q sketches the means objective; this job asks for median", d.name)
		}
	case "means":
		if !d.streamMeans {
			return nil, fmt.Errorf("serve: dataset %q sketches the median objective; register with \"means\":true to answer means queries", d.name)
		}
	default:
		return nil, fmt.Errorf("serve: stream datasets answer median/means queries, not %q", spec.Objective)
	}
	d.mu.RLock()
	sres := d.sketch.Query(spec.K, spec.T)
	d.mu.RUnlock()
	return &JobResult{
		Centers:       pointsToRows(sres.Centers),
		OutlierBudget: float64(spec.T),
		Cost:          sres.SummaryCost,
		CostKind:      "summary",
	}, nil
}

// runRemote fans the protocol out to the dataset's persistent dpc-site
// connections: a job frame re-arms every site with this job's config, then
// the standard coordinator drive runs over the live sockets. Jobs against
// one remote dataset serialize (the transport round contract); jobs against
// different datasets still run concurrently.
func (r *Registry) runRemote(d *Dataset, spec JobSpec) (*JobResult, error) {
	cfg, err := spec.coreConfig()
	if err != nil {
		return nil, err
	}
	d.jobMu.Lock()
	defer d.jobMu.Unlock()
	if err := d.remote.StartJob(core.EncodeConfig(cfg)); err != nil {
		return nil, err
	}
	res, err := core.RunOver(d.remote, cfg)
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Centers:       pointsToRows(res.Centers),
		OutlierBudget: res.OutlierBudget,
		Cost:          res.CoordinatorCost,
		CostKind:      "coordinator",
		Rounds:        res.Report.Rounds,
		UpBytes:       res.Report.UpBytes,
		DownBytes:     res.Report.DownBytes,
		SiteBudgets:   res.SiteBudgets,
		Transport:     string(transport.KindTCP),
	}, nil
}

// pointsToRows converts points to JSON-friendly rows.
func pointsToRows(pts []metric.Point) [][]float64 {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = append([]float64(nil), p...)
	}
	return rows
}
