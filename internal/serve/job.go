package serve

import (
	"context"
	"fmt"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/engine"
	"dpc/internal/jobwire"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
	"dpc/internal/tree"
	"dpc/internal/uncertain"
)

// JobSpec is the JSON body of POST /v1/jobs: one (k, t, objective) query
// against a registered dataset. Zero values select the same defaults
// dpc-cluster uses, so a job with only {dataset, k, t, seed} set reproduces
// a one-shot CLI run bit for bit.
type JobSpec struct {
	Dataset string `json:"dataset"`
	K       int    `json:"k"`
	T       int    `json:"t"`
	// Objective is median (default), means or center for point datasets,
	// or one of the Section 5 uncertain objectives — u-median, u-means,
	// u-centerpp, u-centerg — for uncertain datasets.
	Objective string `json:"objective,omitempty"`
	Variant   string `json:"variant,omitempty"` // 2round (default) | 1round | noship
	// Sites is the loopback shard count for table datasets (default 8,
	// matching dpc-cluster; capped at MaxJobSites). Ignored for stream
	// (no sharding) and remote (the connected daemons are the sharding)
	// datasets.
	Sites int     `json:"sites,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// Workers bounds the solver goroutines of this job (0 = one per CPU);
	// any value returns bit-identical results — the engine invariant.
	//
	// Deprecated: set Engine.Workers; this flat alias is merged into the
	// engine object by EngineOptions and kept for old clients and journals.
	Workers int `json:"workers,omitempty"`
	// Engine is the unified engine knob object: algorithm, workers, caches,
	// and the pivot metric index. It unmarshals from the legacy string form
	// ("jv") as well as the object form ({"algo":"jv","index":true}), so
	// pre-index clients and journal records replay unchanged.
	Engine engine.Spec `json:"engine,omitempty"`
	// NoCache disables shared and private distance caches for this job (a
	// measurement knob; results never change).
	//
	// Deprecated: set Engine.NoCache; this flat alias is merged into the
	// engine object by EngineOptions and kept for old clients and journals.
	NoCache     bool `json:"no_cache,omitempty"`
	LloydPolish bool `json:"lloyd_polish,omitempty"`
	// Client names the submitting client for per-client admission quotas
	// (empty falls back to the X-DPC-Client header, then to "anonymous").
	// Identity only — results never depend on it.
	Client string `json:"client,omitempty"`
	// Priority picks the scheduling class: high | normal (default) | low.
	// Higher classes dequeue first; FIFO within a class.
	Priority string `json:"priority,omitempty"`
	// QueueTimeoutMS expires the job if it is still queued after this many
	// milliseconds (stable error code "queue_deadline_exceeded"). Zero
	// means the server-wide default, if any.
	QueueTimeoutMS int `json:"queue_timeout_ms,omitempty"`
	// Topology selects the coordinator fan-in of the in-process protocols:
	// star (default) or an aggregation tree ("tree,branch=8" or
	// {"tree":true,"branch":8}). Centers are byte-identical either way; the
	// tree changes only the physical per-level traffic.
	Topology tree.Spec `json:"topology,omitempty"`
}

// MaxJobSites caps JobSpec.Sites: each simulated site costs a goroutine
// and per-shard state, so an unbounded request could allocate the server
// to death. Real deployments in the paper's regime run tens of sites.
const MaxJobSites = 4096

// DefaultJobSites is the loopback shard count when JobSpec.Sites is zero —
// the same default dpc-cluster uses, and the sharding background warmup
// prefills.
const DefaultJobSites = 8

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Job is one submitted job and its lifecycle. Fields are guarded by the
// owning Server's job lock; handlers read snapshots via view().
type Job struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	// ErrorCode is the stable machine-readable class of a failure
	// (e.g. "queue_deadline_exceeded"); clients switch on it, never on
	// Error's wording.
	ErrorCode string     `json:"error_code,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Replayed marks a job restored from the journal after a restart —
	// its result (if any) was re-served with zero recompute.
	Replayed bool `json:"replayed,omitempty"`

	// cancel aborts the running solve (set while the job executes; guarded
	// by the server's job lock; unexported, so never serialized).
	cancel context.CancelFunc
	// deadline is the queue-time expiry instant (zero = none); guarded by
	// the server's job lock.
	deadline time.Time
}

// JobResult is a finished job's payload.
type JobResult struct {
	Centers [][]float64 `json:"centers"`
	// OutlierBudget is how many (weighted) points the solution may ignore.
	OutlierBudget float64 `json:"outlier_budget"`
	// Cost is the solution's objective value; CostKind says against what:
	// "global" (the full table, the measuring stick of core.Evaluate),
	// "summary" (the stream sketch's weighted summary), or "coordinator"
	// (the coordinator's induced instance — remote data never reaches the
	// server, so the true global cost is evaluated site-side if at all).
	Cost     float64 `json:"cost"`
	CostKind string  `json:"cost_kind"`
	// Communication footprint (distributed jobs only).
	Rounds      int    `json:"rounds,omitempty"`
	UpBytes     int64  `json:"up_bytes,omitempty"`
	DownBytes   int64  `json:"down_bytes,omitempty"`
	SiteBudgets []int  `json:"site_budgets,omitempty"`
	Transport   string `json:"transport,omitempty"`
	// Tau is u-centerg's chosen truncation threshold (a lower-bound
	// witness; zero for every other objective).
	Tau float64 `json:"tau,omitempty"`
	// Dataset cache traffic after this job (aggregate over the dataset's
	// shard caches — reuse shows up as hits growing while misses stay put).
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	DurationMS  float64 `json:"duration_ms"`
}

// ObjectiveKind maps an API objective string to the protocol family it
// runs: point (Algorithm 1/2), uncertain (Algorithm 3) or center-g
// (Algorithm 4). It is the single source of truth shared by the HTTP
// layer, the client package and the CLI flag surface.
func ObjectiveKind(objective string) (jobwire.Kind, error) {
	switch objective {
	case "", "median", "means", "center":
		return jobwire.KindPoint, nil
	case "u-median", "u-means", "u-centerpp":
		return jobwire.KindUncertain, nil
	case "u-centerg":
		return jobwire.KindCenterG, nil
	}
	return 0, fmt.Errorf("serve: unknown objective %q (want median, means, center, u-median, u-means, u-centerpp or u-centerg)", objective)
}

// parseObjective maps the API objective string to core's enum.
func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "", "median":
		return core.Median, nil
	case "means":
		return core.Means, nil
	case "center":
		return core.Center, nil
	}
	return 0, fmt.Errorf("serve: unknown objective %q (want median, means or center)", s)
}

// parseUncertainObjective maps the API u-* objective to uncertain's enum.
func parseUncertainObjective(s string) (uncertain.Objective, error) {
	switch s {
	case "u-median":
		return uncertain.Median, nil
	case "u-means":
		return uncertain.Means, nil
	case "u-centerpp":
		return uncertain.CenterPP, nil
	}
	return 0, fmt.Errorf("serve: unknown uncertain objective %q (want u-median, u-means or u-centerpp)", s)
}

// parseUncertainVariant maps the API variant string to uncertain's enum.
func parseUncertainVariant(s string) (uncertain.Variant, error) {
	switch s {
	case "", "2round":
		return uncertain.TwoRound, nil
	case "1round":
		return uncertain.OneRoundShipDists, nil
	}
	return 0, fmt.Errorf("serve: unknown uncertain variant %q (want 2round or 1round)", s)
}

// parseVariant maps the API variant string to core's enum.
func parseVariant(s string) (core.Variant, error) {
	switch s {
	case "", "2round":
		return core.TwoRound, nil
	case "1round":
		return core.OneRound, nil
	case "noship":
		return core.TwoRoundNoOutliers, nil
	}
	return 0, fmt.Errorf("serve: unknown variant %q (want 2round, 1round or noship)", s)
}

// parseEngine maps the API engine algorithm string to the kmedian enum.
func parseEngine(s string) (kmedian.Engine, error) {
	switch s {
	case "", "auto":
		return kmedian.EngineAuto, nil
	case "localsearch":
		return kmedian.EngineLocalSearch, nil
	case "jv":
		return kmedian.EngineJV, nil
	}
	return 0, fmt.Errorf("serve: unknown engine %q (want auto, localsearch or jv)", s)
}

// EngineOptions returns the job's merged engine knobs: the engine object
// overlaid on the deprecated flat Workers/NoCache aliases, normalized
// (Reference implies sequential, uncached, unindexed).
func (s JobSpec) EngineOptions() engine.Options {
	return s.Engine.Options.Merge(s.Workers, s.NoCache, false).Normalize()
}

// CoreConfig translates a point-objective JobSpec into the distributed run
// configuration — exactly the mapping cmd/dpc-cluster performs, so server
// jobs, client backends and CLI runs agree bit for bit.
func (s JobSpec) CoreConfig() (core.Config, error) {
	obj, err := parseObjective(s.Objective)
	if err != nil {
		return core.Config{}, err
	}
	vr, err := parseVariant(s.Variant)
	if err != nil {
		return core.Config{}, err
	}
	eng, err := parseEngine(s.Engine.Algo)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		K: s.K, T: s.T, Objective: obj, Variant: vr, Eps: s.Eps,
		LloydPolish: s.LloydPolish,
		Engine:      eng,
		LocalOpts:   kmedian.Options{Seed: s.Seed},
		Options:     s.EngineOptions(),
		Topology:    s.Topology,
	}, nil
}

// UncertainConfig translates a u-median/u-means/u-centerpp JobSpec into
// Algorithm 3's configuration and objective.
func (s JobSpec) UncertainConfig() (uncertain.Config, uncertain.Objective, error) {
	obj, err := parseUncertainObjective(s.Objective)
	if err != nil {
		return uncertain.Config{}, 0, err
	}
	vr, err := parseUncertainVariant(s.Variant)
	if err != nil {
		return uncertain.Config{}, 0, err
	}
	eng, err := parseEngine(s.Engine.Algo)
	if err != nil {
		return uncertain.Config{}, 0, err
	}
	eo := s.EngineOptions()
	return uncertain.Config{
		K: s.K, T: s.T, Variant: vr, Eps: s.Eps,
		Engine:      eng,
		LocalOpts:   kmedian.Options{Seed: s.Seed, Options: eo},
		NoDistCache: eo.NoCache,
		Topology:    s.Topology,
	}, obj, nil
}

// CenterGConfig translates a u-centerg JobSpec into Algorithm 4's
// configuration.
func (s JobSpec) CenterGConfig() (uncertain.CenterGConfig, error) {
	if s.Objective != "u-centerg" {
		return uncertain.CenterGConfig{}, fmt.Errorf("serve: objective %q is not u-centerg", s.Objective)
	}
	vr, err := parseUncertainVariant(s.Variant)
	if err != nil {
		return uncertain.CenterGConfig{}, err
	}
	eng, err := parseEngine(s.Engine.Algo)
	if err != nil {
		return uncertain.CenterGConfig{}, err
	}
	eo := s.EngineOptions()
	return uncertain.CenterGConfig{
		K: s.K, T: s.T, Eps: s.Eps,
		OneRound:    vr == uncertain.OneRoundShipDists,
		Engine:      eng,
		LocalOpts:   kmedian.Options{Seed: s.Seed, Options: eo},
		NoDistCache: eo.NoCache,
		Topology:    s.Topology,
	}, nil
}

// Validate checks the spec's enums and shape without touching a registry —
// the synchronous half of Submit, shared with the client package.
func (s JobSpec) Validate() error {
	kind, err := ObjectiveKind(s.Objective)
	if err != nil {
		return err
	}
	switch kind {
	case jobwire.KindPoint:
		_, err = s.CoreConfig()
	case jobwire.KindUncertain:
		_, _, err = s.UncertainConfig()
	case jobwire.KindCenterG:
		_, err = s.CenterGConfig()
	}
	if err != nil {
		return err
	}
	if s.K <= 0 {
		return fmt.Errorf("serve: job k = %d, must be positive", s.K)
	}
	if s.T < 0 {
		return fmt.Errorf("serve: job t = %d, must be non-negative", s.T)
	}
	if s.Sites < 0 || s.Sites > MaxJobSites {
		return fmt.Errorf("serve: job sites = %d, must be in [0, %d]", s.Sites, MaxJobSites)
	}
	if _, err := priorityRank(s.Priority); err != nil {
		return err
	}
	if s.QueueTimeoutMS < 0 {
		return fmt.Errorf("serve: job queue_timeout_ms = %d, must be non-negative", s.QueueTimeoutMS)
	}
	if err := s.Topology.Validate(); err != nil {
		return err
	}
	if len(s.Client) > 128 {
		return fmt.Errorf("serve: job client name longer than 128 bytes")
	}
	return nil
}

// streamOpts is the solver option set stream datasets use; seed-threaded so
// sketch compressions are deterministic per dataset.
func streamOpts(seed int64) kmedian.Options {
	return kmedian.Options{Seed: seed}
}

// run executes spec against the registry and returns the result. It is
// called on a pool worker; everything it touches is either job-local or
// concurrency-safe (shared caches, dataset snapshots). Cancelling ctx
// aborts the solve between site rounds with ctx.Err().
func (r *Registry) run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	d, err := r.Get(spec.Dataset)
	if err != nil {
		return nil, err
	}
	kind, err := ObjectiveKind(spec.Objective)
	if err != nil {
		return nil, err
	}
	if (kind != jobwire.KindPoint) != (d.kind == KindUncertain) {
		return nil, fmt.Errorf("serve: objective %q does not apply to %s dataset %q",
			spec.Objective, d.kind, d.name)
	}
	t0 := time.Now()
	var res *JobResult
	switch d.kind {
	case KindTable:
		res, err = r.runTable(ctx, d, spec)
	case KindStream:
		res, err = r.runStream(ctx, d, spec)
	case KindRemote:
		res, err = r.runRemote(ctx, d, spec)
	case KindUncertain:
		res, err = r.runUncertain(ctx, d, spec)
	default:
		err = fmt.Errorf("serve: dataset %q has unknown kind %q", d.name, d.kind)
	}
	if err != nil {
		return nil, err
	}
	res.CacheHits, res.CacheMisses = d.stats.Snapshot()
	res.DurationMS = float64(time.Since(t0).Microseconds()) / 1000
	return res, nil
}

// shardKey is the cache-pool key of one shard of a table dataset at a
// version and site count — the sharing granularity of warm triangles.
func shardKey(name string, version, shards, i int) string {
	return fmt.Sprintf("%s@v%d/s%d/%d", name, version, shards, i)
}

// shardCaches returns the shared distance cache for every shard of a table
// dataset at a given version and site count, building missing ones through
// the pool. Shards beyond metric.MaxCachePoints get nil (the handler falls
// back to the same uncached policy a one-shot run uses). Freshly built
// caches adopt any spilled warm triangle whose content hash matches the
// shard, so the first job after a restart starts from the previous
// process's filled cells.
func (r *Registry) shardCaches(d *Dataset, version int, shards [][]metric.Point) []*metric.DistCache {
	caches := make([]*metric.DistCache, len(shards))
	for i, shard := range shards {
		if len(shard) > metric.MaxCachePoints {
			continue
		}
		shard := shard
		key := shardKey(d.name, version, len(shards), i)
		caches[i] = r.pool.Get(key, func() *metric.DistCache {
			dc := metric.NewDistCache(metric.NewPoints(shard))
			dc.Counters = &d.stats
			r.adoptSpilled(key, shard, dc)
			return dc
		})
	}
	return caches
}

// runTable executes the full distributed protocol over in-process loopback
// shards — the same SplitRoundRobin sharding and core configuration as
// dpc-cluster, plus shared shard caches drawn from the pool.
func (r *Registry) runTable(ctx context.Context, d *Dataset, spec JobSpec) (*JobResult, error) {
	cfg, err := spec.CoreConfig()
	if err != nil {
		return nil, err
	}
	// The loopback site handlers below solve outside RunOverCtx's reach;
	// hand them the job context directly so CancelJob and Shutdown preempt
	// their solver inner loops, not just the round boundaries.
	cfg.LocalOpts.Ctx = ctx
	view, version := d.snapshotTable()
	// The same range check core.Run applies: a budget covering the whole
	// dataset would "succeed" with zero centers.
	if spec.T >= view.Len() {
		return nil, fmt.Errorf("serve: t = %d out of range [0, %d) for dataset %q", spec.T, view.Len(), d.name)
	}
	pts := view.Flatten()
	sites := spec.Sites
	if sites <= 0 {
		sites = DefaultJobSites
	}
	shards := dataio.SplitRoundRobin(pts, sites)
	// Registration-time metric gate: a dataset whose sampled triangle check
	// failed gets full scans even when the job asks for the index (the
	// per-shard self-check would catch it too — this avoids paying the
	// build just to have it degrade).
	if cfg.Index && !d.MetricReport().TriangleOK {
		cfg.Options.Index = false
	}
	oracles := r.shardOracles(d, version, shards, cfg.Options)
	handlers := make([]transport.Handler, len(shards))
	for i := range shards {
		h, err := core.NewSiteHandlerOracle(cfg, i, shards[i], oracles[i])
		if err != nil {
			return nil, err
		}
		handlers[i] = h
	}
	tr, err := tree.NewLocal(ctx, transport.KindLoopback, handlers, true, spec.Topology)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	res, err := core.RunOverCtx(ctx, tr, cfg)
	if err != nil {
		return nil, err
	}
	obj, _ := parseObjective(spec.Objective)
	return &JobResult{
		Centers:       pointsToRows(res.Centers),
		OutlierBudget: res.OutlierBudget,
		Cost:          core.Evaluate(pts, res.Centers, res.OutlierBudget, obj),
		CostKind:      "global",
		Rounds:        res.Report.Rounds,
		UpBytes:       res.Report.UpBytes,
		DownBytes:     res.Report.DownBytes,
		SiteBudgets:   res.SiteBudgets,
		Transport:     string(transport.KindLoopback),
	}, nil
}

// runStream answers a (k, t) query on the dataset's sketch summary. The
// sketch's objective is fixed at registration (its compressions already
// folded the stream under that objective), so a query for the other one is
// an error, not a silent wrong answer; per-job engine knobs (Engine, Seed,
// Workers) are likewise registration-time properties of the sketch.
//
// Query only reads sketch state, so it takes the read lock: concurrent
// queries, Info() and /metrics proceed; only appends (the single writer)
// serialize against it. The query itself is one indivisible summary-sized
// solve, so cancellation is honored at its boundary (a canceled job never
// starts the solve) rather than inside it.
func (r *Registry) runStream(ctx context.Context, d *Dataset, spec JobSpec) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch spec.Objective {
	case "", "median":
		if d.streamMeans {
			return nil, fmt.Errorf("serve: dataset %q sketches the means objective; this job asks for median", d.name)
		}
	case "means":
		if !d.streamMeans {
			return nil, fmt.Errorf("serve: dataset %q sketches the median objective; register with \"means\":true to answer means queries", d.name)
		}
	default:
		return nil, fmt.Errorf("serve: stream datasets answer median/means queries, not %q", spec.Objective)
	}
	d.mu.RLock()
	sres := d.sketch.Query(spec.K, spec.T)
	d.mu.RUnlock()
	return &JobResult{
		Centers:       pointsToRows(sres.Centers),
		OutlierBudget: float64(spec.T),
		Cost:          sres.SummaryCost,
		CostKind:      "summary",
	}, nil
}

// runRemote fans the protocol out to the dataset's persistent dpc-site
// connections: a job frame re-arms every site with this job's config, then
// the standard coordinator drive runs over the live sockets. Jobs against
// one remote dataset serialize (the transport round contract); jobs against
// different datasets still run concurrently.
func (r *Registry) runRemote(ctx context.Context, d *Dataset, spec JobSpec) (*JobResult, error) {
	cfg, err := spec.CoreConfig()
	if err != nil {
		return nil, err
	}
	blob, err := jobwire.Encode(jobwire.Job{Kind: jobwire.KindPoint, Core: cfg})
	if err != nil {
		return nil, err
	}
	d.jobMu.Lock()
	defer d.jobMu.Unlock()
	if err := d.remote.StartJob(blob); err != nil {
		return nil, err
	}
	res, err := core.RunOverCtx(ctx, d.remote, cfg)
	if err != nil {
		// A cancellation mid-protocol leaves the persistent connections
		// desynchronized (site replies for this run are still in flight).
		// Close them so later jobs fail loudly instead of decoding another
		// job's frames.
		if ctx.Err() != nil {
			d.remote.Close()
		}
		return nil, err
	}
	return &JobResult{
		Centers:       pointsToRows(res.Centers),
		OutlierBudget: res.OutlierBudget,
		Cost:          res.CoordinatorCost,
		CostKind:      "coordinator",
		Rounds:        res.Report.Rounds,
		UpBytes:       res.Report.UpBytes,
		DownBytes:     res.Report.DownBytes,
		SiteBudgets:   res.SiteBudgets,
		Transport:     string(transport.KindTCP),
	}, nil
}

// runUncertain executes the Section 5 protocols over loopback shards of an
// uncertain dataset's nodes: Algorithm 3 for u-median/u-means/u-centerpp,
// Algorithm 4 for u-centerg. The cost reported is the true global objective
// over all registered nodes (the server holds the ground set, so unlike
// remote datasets there is no reason to settle for the coordinator's
// induced cost); u-centerg costs are seeded Monte Carlo estimates.
func (r *Registry) runUncertain(ctx context.Context, d *Dataset, spec JobSpec) (*JobResult, error) {
	sites := spec.Sites
	if sites <= 0 {
		sites = DefaultJobSites
	}
	if spec.T >= len(d.nodes) {
		return nil, fmt.Errorf("serve: t = %d out of range [0, %d) for dataset %q", spec.T, len(d.nodes), d.name)
	}
	shards := dataio.SplitNodesRoundRobin(d.nodes, sites)

	if spec.Objective == "u-centerg" {
		cfg, err := spec.CenterGConfig()
		if err != nil {
			return nil, err
		}
		res, err := uncertain.RunCenterGCtx(ctx, d.ground, shards, cfg)
		if err != nil {
			return nil, err
		}
		return &JobResult{
			Centers:       pointsToRows(res.Centers),
			OutlierBudget: res.OutlierBudget,
			Cost:          uncertain.EvalCenterG(d.ground, d.nodes, res.Centers, res.OutlierBudget, CenterGCostSamples, spec.Seed),
			CostKind:      "estimate",
			Rounds:        res.Report.Rounds,
			UpBytes:       res.Report.UpBytes,
			DownBytes:     res.Report.DownBytes,
			SiteBudgets:   res.SiteBudgets,
			Transport:     string(transport.KindLoopback),
			Tau:           res.Tau,
		}, nil
	}

	cfg, obj, err := spec.UncertainConfig()
	if err != nil {
		return nil, err
	}
	res, err := uncertain.RunCtx(ctx, d.ground, shards, cfg, obj)
	if err != nil {
		return nil, err
	}
	var cost float64
	switch obj {
	case uncertain.Means:
		cost = uncertain.EvalMeans(d.ground, d.nodes, res.Centers, res.OutlierBudget)
	case uncertain.CenterPP:
		cost = uncertain.EvalCenterPP(d.ground, d.nodes, res.Centers, res.OutlierBudget)
	default:
		cost = uncertain.EvalMedian(d.ground, d.nodes, res.Centers, res.OutlierBudget)
	}
	return &JobResult{
		Centers:       pointsToRows(res.Centers),
		OutlierBudget: res.OutlierBudget,
		Cost:          cost,
		CostKind:      "global",
		Rounds:        res.Report.Rounds,
		UpBytes:       res.Report.UpBytes,
		DownBytes:     res.Report.DownBytes,
		SiteBudgets:   res.SiteBudgets,
		Transport:     string(transport.KindLoopback),
	}, nil
}

// CenterGCostSamples is the Monte-Carlo sample count behind u-centerg job
// costs. Exported so the client package evaluates with the identical
// sample count — remote and local u-centerg costs must agree exactly.
const CenterGCostSamples = 200

// pointsToRows converts points to JSON-friendly rows.
func pointsToRows(pts []metric.Point) [][]float64 {
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = append([]float64(nil), p...)
	}
	return rows
}
