package serve

import (
	"strconv"
	"strings"

	"dpc/internal/engine"
	"dpc/internal/metric"
)

// Pooled pivot indexes. A shard's index is as shareable as its warm
// triangle: pivot selection is deterministic and the bounds depend only on
// the shard content, so every indexed job against one (dataset, version,
// sharding, pivot count) reuses one build. Indexes ride the spill cycle
// too (SpillIndex entries next to the SpillDist triangles), so a restart
// restores both the memoized distances and the bounds over them.

// resolvePivots maps the request knob to the effective anchor count the
// index will actually hold (NewIndex's own defaulting and capping, applied
// early so pool keys and spill keys agree with the built index).
func resolvePivots(pivots, n int) int {
	m := pivots
	if m <= 0 {
		m = metric.DefaultPivots
	}
	if m > n {
		m = n
	}
	return m
}

// indexKey is the index-pool key: the shard's cache-pool key plus the
// effective pivot count.
func indexKey(base string, m int) string { return base + "/ix" + strconv.Itoa(m) }

// shardOracles returns the shared per-shard oracle for a table job: the
// pooled distance cache, with a pooled pivot index layered on top when the
// engine asks for one. Shards above the memoization cap still get an index
// (over the raw points — exactly where pruning pays most); with the index
// off they get nil, the same uncached policy a one-shot run uses.
func (r *Registry) shardOracles(d *Dataset, version int, shards [][]metric.Point, eng engine.Options) []metric.Oracle {
	oracles := make([]metric.Oracle, len(shards))
	if eng.NoCache {
		return oracles
	}
	caches := r.shardCaches(d, version, shards)
	for i := range shards {
		if caches[i] != nil {
			oracles[i] = caches[i]
		}
		if !eng.Index || len(shards[i]) == 0 {
			continue
		}
		var sp metric.Space
		if caches[i] != nil {
			sp = caches[i]
		} else {
			sp = metric.NewPoints(shards[i])
		}
		key := shardKey(d.name, version, len(shards), i)
		oracles[i] = r.shardIndex(key, sp, shards[i], eng.Pivots)
	}
	return oracles
}

// shardIndex returns the pooled pivot index for one shard, building (or
// restoring from spill) on first use. base is the shard's cache-pool key;
// sp is the exact oracle to build over (the pooled cache when one exists,
// so index construction warms it and later bound misses hit it).
func (r *Registry) shardIndex(base string, sp metric.Space, shard []metric.Point, pivots int) *metric.Index {
	m := resolvePivots(pivots, len(shard))
	key := indexKey(base, m)
	_, cached := sp.(*metric.DistCache)
	r.ixMu.Lock()
	if e, ok := r.ixes[key]; ok {
		// A cache-backed entry must still point at the live pooled cache
		// (an evicted-and-rebuilt cache gets a fresh index so warmth and
		// stats flow to the pooled one); a cacheless entry is content-
		// addressed by key alone — the shard at this key is immutable.
		if !cached || e.sp == sp {
			r.ixMu.Unlock()
			return e.ix
		}
	}
	r.ixMu.Unlock()

	ix := r.buildIndex(base, sp, shard, m)

	r.ixMu.Lock()
	if len(r.ixes) >= maxShardIndexes {
		for k, e := range r.ixes {
			if !r.pool.Has(e.base) {
				delete(r.ixes, k)
			}
		}
		for k := range r.ixes {
			if len(r.ixes) < maxShardIndexes {
				break
			}
			delete(r.ixes, k)
		}
	}
	r.ixes[key] = shardIndexEntry{base: base, sp: sp, ix: ix}
	r.ixMu.Unlock()
	return ix
}

// buildIndex restores a spilled index whose (content hash, size, pivots)
// triple matches the shard, or builds one fresh. Mirrors adoptSpilled:
// the shard is hashed at most once per build and not at all on a registry
// without a cache directory.
func (r *Registry) buildIndex(base string, sp metric.Space, shard []metric.Point, m int) *metric.Index {
	r.spillMu.Lock()
	on := r.spillOn
	var staged stagedIndex
	var ok bool
	if on {
		hash, seen := r.hashes[base]
		if !seen {
			r.spillMu.Unlock()
			hash = metric.HashPoints(shard)
			r.spillMu.Lock()
			r.hashes[base] = hash
		}
		k := ixSpillKey{hash: hash, n: len(shard), nc: m}
		staged, ok = r.spilledIx[k]
		if ok {
			// Adopt once, like warm triangles: a later rebuild of the same
			// content starts fresh.
			delete(r.spilledIx, k)
		}
	}
	r.spillMu.Unlock()
	if ok {
		if ix, err := metric.IndexFromSpill(sp, staged.e); err == nil {
			r.restoredIx.Add(1)
			return ix
		}
	}
	return metric.NewIndex(sp, metric.IndexOptions{Pivots: m})
}

// forgetIndexes drops pooled indexes whose shard key falls under a deleted
// dataset's prefix (the index-pool sibling of CachePool.InvalidatePrefix).
func (r *Registry) forgetIndexes(prefix string) {
	r.ixMu.Lock()
	defer r.ixMu.Unlock()
	for k, e := range r.ixes {
		if strings.HasPrefix(e.base, prefix) {
			delete(r.ixes, k)
		}
	}
}
