package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"dpc/internal/journal"
)

// counters are the server's monotonic job counters.
type counters struct {
	jobsSubmitted     atomic.Int64
	jobsDone          atomic.Int64
	jobsFailed        atomic.Int64
	jobsCanceled      atomic.Int64
	jobsRejected      atomic.Int64
	jobsQuotaRejected atomic.Int64 // submissions bounced by per-client quotas
	jobsExpired       atomic.Int64 // queued jobs past their queue deadline
	jobsEvicted       atomic.Int64 // finished jobs dropped by the TTL GC
	journalAppended   atomic.Int64 // records written to the WAL
	journalReplayed   atomic.Int64 // records replayed at the last Recover
	journalReads      atomic.Int64 // point reads of journaled records (evicted-job fetches)
	snapshots         atomic.Int64 // snapshot checkpoints written by Compact
	segmentsGCd       atomic.Int64 // superseded journal segments deleted
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (hand-rolled — the repository takes no dependencies). Gauges are
// computed from live state; counters are monotonic over the process life.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var queued, running int
	s.mu.Lock()
	for _, id := range s.order {
		switch s.jobs[id].Status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		}
	}
	retained := len(s.order)
	s.mu.Unlock()

	pool := s.reg.Pool().Stats()
	datasets := s.reg.List()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP dpc_uptime_seconds Seconds since the server started.\n")
	p("# TYPE dpc_uptime_seconds gauge\n")
	p("dpc_uptime_seconds %g\n", s.uptime())

	p("# HELP dpc_jobs_total Jobs by terminal disposition.\n")
	p("# TYPE dpc_jobs_total counter\n")
	p("dpc_jobs_total{status=\"submitted\"} %d\n", s.counters.jobsSubmitted.Load())
	p("dpc_jobs_total{status=\"done\"} %d\n", s.counters.jobsDone.Load())
	p("dpc_jobs_total{status=\"failed\"} %d\n", s.counters.jobsFailed.Load())
	p("dpc_jobs_total{status=\"canceled\"} %d\n", s.counters.jobsCanceled.Load())
	p("dpc_jobs_total{status=\"rejected\"} %d\n", s.counters.jobsRejected.Load())
	p("dpc_jobs_total{status=\"quota_rejected\"} %d\n", s.counters.jobsQuotaRejected.Load())
	p("dpc_jobs_total{status=\"expired\"} %d\n", s.counters.jobsExpired.Load())

	p("# HELP dpc_jobs_evicted_total Finished jobs evicted from the in-memory store by the TTL GC (journaled results remain fetchable).\n")
	p("# TYPE dpc_jobs_evicted_total counter\n")
	p("dpc_jobs_evicted_total %d\n", s.counters.jobsEvicted.Load())

	p("# HELP dpc_ready Whether the server accepts mutations (1) or is recovering/draining (0).\n")
	p("# TYPE dpc_ready gauge\n")
	ready := 0
	if s.Ready() {
		ready = 1
	}
	p("dpc_ready %d\n", ready)

	p("# HELP dpc_journal_records_total Write-ahead journal traffic: records appended this life, records replayed at start.\n")
	p("# TYPE dpc_journal_records_total counter\n")
	p("dpc_journal_records_total{event=\"appended\"} %d\n", s.counters.journalAppended.Load())
	p("dpc_journal_records_total{event=\"replayed\"} %d\n", s.counters.journalReplayed.Load())

	p("# HELP dpc_journal_record_reads_total Point reads of journaled records (fetches of TTL-evicted finished jobs).\n")
	p("# TYPE dpc_journal_record_reads_total counter\n")
	p("dpc_journal_record_reads_total %d\n", s.counters.journalReads.Load())

	p("# HELP dpc_snapshot_writes_total Snapshot checkpoints written by compaction.\n")
	p("# TYPE dpc_snapshot_writes_total counter\n")
	p("dpc_snapshot_writes_total %d\n", s.counters.snapshots.Load())

	p("# HELP dpc_snapshot_segments_gcd_total Superseded journal segments deleted by compaction GC.\n")
	p("# TYPE dpc_snapshot_segments_gcd_total counter\n")
	p("dpc_snapshot_segments_gcd_total %d\n", s.counters.segmentsGCd.Load())

	s.mu.Lock()
	jnl := s.jnl
	s.mu.Unlock()
	if comp, ok := jnl.(journal.Compactor); ok {
		p("# HELP dpc_journal_segments Journal segment files currently on disk.\n")
		p("# TYPE dpc_journal_segments gauge\n")
		p("dpc_journal_segments %d\n", comp.Segments())
	}

	p("# HELP dpc_jobs_queued Jobs waiting for a scheduler slot.\n")
	p("# TYPE dpc_jobs_queued gauge\n")
	p("dpc_jobs_queued %d\n", queued)
	p("# HELP dpc_jobs_running Jobs currently solving.\n")
	p("# TYPE dpc_jobs_running gauge\n")
	p("dpc_jobs_running %d\n", running)
	p("# HELP dpc_jobs_retained Jobs retained for GET /v1/jobs.\n")
	p("# TYPE dpc_jobs_retained gauge\n")
	p("dpc_jobs_retained %d\n", retained)

	p("# HELP dpc_datasets Registered datasets.\n")
	p("# TYPE dpc_datasets gauge\n")
	p("dpc_datasets %d\n", len(datasets))

	p("# HELP dpc_registry_segments Hash segments the dataset registry shards its namespace over.\n")
	p("# TYPE dpc_registry_segments gauge\n")
	p("dpc_registry_segments %d\n", s.reg.Segments())

	p("# HELP dpc_cache_pool_bytes Cell bytes held by the shared distance-cache pool.\n")
	p("# TYPE dpc_cache_pool_bytes gauge\n")
	p("dpc_cache_pool_bytes %d\n", pool.Bytes)
	p("# HELP dpc_cache_pool_entries Caches held by the pool.\n")
	p("# TYPE dpc_cache_pool_entries gauge\n")
	p("dpc_cache_pool_entries %d\n", pool.Entries)
	p("# HELP dpc_cache_pool_events_total Pool traffic: get hits, fresh builds, LRU evictions.\n")
	p("# TYPE dpc_cache_pool_events_total counter\n")
	p("dpc_cache_pool_events_total{event=\"hit\"} %d\n", pool.Hits)
	p("dpc_cache_pool_events_total{event=\"build\"} %d\n", pool.Builds)
	p("dpc_cache_pool_events_total{event=\"evict\"} %d\n", pool.Evictions)

	p("# HELP dpc_cache_restored_cells_total Distance-cache cells restored from spilled warm triangles.\n")
	p("# TYPE dpc_cache_restored_cells_total counter\n")
	p("dpc_cache_restored_cells_total %d\n", s.reg.RestoredCells())

	warm := s.warm.snapshot()
	p("# HELP dpc_warmup_tasks_total Background cache-warmup tasks by disposition.\n")
	p("# TYPE dpc_warmup_tasks_total counter\n")
	p("dpc_warmup_tasks_total{state=\"started\"} %d\n", warm.Started)
	p("dpc_warmup_tasks_total{state=\"done\"} %d\n", warm.Done)
	p("dpc_warmup_tasks_total{state=\"skipped\"} %d\n", warm.Skipped)
	p("# HELP dpc_warmup_cells Background cache-warmup progress: cells filled vs targeted.\n")
	p("# TYPE dpc_warmup_cells gauge\n")
	p("dpc_warmup_cells{kind=\"done\"} %d\n", warm.CellsDone)
	p("dpc_warmup_cells{kind=\"total\"} %d\n", warm.CellsTotal)

	p("# HELP dpc_dataset_cache_lookups_total Distance-cache traffic per dataset.\n")
	p("# TYPE dpc_dataset_cache_lookups_total counter\n")
	for _, d := range datasets {
		p("dpc_dataset_cache_lookups_total{dataset=%q,kind=\"hit\"} %d\n", d.Name, d.CacheHits)
		p("dpc_dataset_cache_lookups_total{dataset=%q,kind=\"miss\"} %d\n", d.Name, d.CacheMisses)
	}
}
