package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dpc/internal/core"
	"dpc/internal/dataio"
	"dpc/internal/gen"
	"dpc/internal/jobwire"
	"dpc/internal/kmedian"
	"dpc/internal/metric"
	"dpc/internal/transport"
)

// startPersistentSites replicates `dpc-site -persist` in-process: each site
// dials the server's site listener, verifies the multi-job marker, builds
// one shared distance cache over its shard for the life of the connection,
// and serves a fresh core handler per job frame.
func startPersistentSites(t *testing.T, addr string, shards [][]metric.Point) func() []error {
	t.Helper()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := transport.Dial(addr, i, 10*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer sc.Close()
			if string(sc.Hello()) != transport.JobsHello {
				errs[i] = fmt.Errorf("welcome %q, want jobs marker", sc.Hello())
				return
			}
			cache := metric.NewDistCache(metric.NewPoints(shards[i]))
			errs[i] = sc.ServeJobs(jobwire.Factory(jobwire.SiteData{
				Site: i, Pts: shards[i], Cache: cache,
			}))
		}(i)
	}
	return func() []error { wg.Wait(); return errs }
}

// TestRemoteDatasetJobs runs the full server path against live TCP site
// daemons: persistent connections, several jobs over one socket set, and
// results identical to the in-process loopback simulation of the same
// shards.
func TestRemoteDatasetJobs(t *testing.T) {
	in := gen.Mixture(gen.MixtureSpec{N: 360, K: 3, OutlierFrac: 0.04, Seed: 61})
	const sites = 3
	shards := dataio.SplitRoundRobin(in.Pts, sites)

	s := New(Config{})
	defer s.Close()

	l, err := transport.Listen("127.0.0.1:0", sites)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	join := startPersistentSites(t, l.Addr().String(), shards)
	if _, err := s.RegisterRemoteListener("remote", l, sites); err != nil {
		t.Fatalf("RegisterRemoteListener: %v", err)
	}

	spec := JobSpec{Dataset: "remote", K: 3, T: 15, Objective: "median", Seed: 5}
	want, err := core.Run(shards, core.Config{
		K: 3, T: 15, Objective: core.Median, LocalOpts: kmedian.Options{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three jobs over the same persistent connections.
	for n := 0; n < 3; n++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit remote job %d: %v", n, err)
		}
		done := waitServerJob(t, s, j.ID)
		if done.Status != StatusDone {
			t.Fatalf("remote job %d failed: %s", n, done.Error)
		}
		assertCentersEqual(t, done.Result.Centers, want.Centers, fmt.Sprintf("remote job %d", n))
		if done.Result.UpBytes != want.Report.UpBytes {
			t.Fatalf("remote job %d up bytes %d, loopback %d", n, done.Result.UpBytes, want.Report.UpBytes)
		}
		if done.Result.Transport != string(transport.KindTCP) {
			t.Fatalf("remote job reported transport %q", done.Result.Transport)
		}
	}

	// A center job over the same live sites (config changes per job frame).
	cwant, err := core.Run(shards, core.Config{
		K: 3, T: 15, Objective: core.Center, LocalOpts: kmedian.Options{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(JobSpec{Dataset: "remote", K: 3, T: 15, Objective: "center", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	done := waitServerJob(t, s, j.ID)
	if done.Status != StatusDone {
		t.Fatalf("remote center job failed: %s", done.Error)
	}
	assertCentersEqual(t, done.Result.Centers, cwant.Centers, "remote center job")

	// Remote datasets cannot be deleted over the API, and appends route to
	// the sites, not the server.
	if err := s.Registry().Delete("remote"); err == nil {
		t.Fatalf("remote dataset deleted over the API")
	}
	if _, err := s.Registry().Append("remote", shards[0][:1]); err == nil {
		t.Fatalf("append to a remote dataset succeeded")
	}

	// Orderly shutdown: the registry's coordinator closes with the remote
	// sites still healthy.
	d, err := s.Registry().Get("remote")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CloseRemote(); err != nil {
		t.Fatalf("closing remote transport: %v", err)
	}
	for i, err := range join() {
		if err != nil {
			t.Fatalf("site %d exited with error: %v", i, err)
		}
	}
}
