package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"dpc/internal/dataio"
	"dpc/internal/gen"
	"dpc/internal/kmedian"
	"dpc/internal/uncertain"
)

// wireNodes converts a planted uncertain instance to the JSON node format.
func wireNodes(in gen.UncertainInstance) []NodeWire {
	wire := make([]NodeWire, len(in.Nodes))
	for j, nd := range in.Nodes {
		w := NodeWire{Points: make([][]float64, len(nd.Support)), Probs: append([]float64(nil), nd.Prob...)}
		for i, u := range nd.Support {
			w.Points[i] = in.Ground.Pts[u]
		}
		wire[j] = w
	}
	return wire
}

// TestUncertainDatasetJobsHTTP is the "uncertain jobs as a service
// workload" acceptance: register distribution-valued nodes over the API,
// run Algorithm 3 and Algorithm 4 as jobs, and get results bit-identical
// to the equivalent in-process uncertain.Run.
func TestUncertainDatasetJobsHTTP(t *testing.T) {
	in := gen.UncertainMixture(gen.UncertainSpec{N: 60, K: 3, Support: 3, OutlierFrac: 0.05, Seed: 19})
	a, _ := newAPI(t, Config{})

	var info DatasetInfo
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "unc", Kind: KindUncertain, Nodes: wireNodes(in)},
		http.StatusCreated, &info)
	if info.Kind != KindUncertain || info.Nodes != 60 || info.GroundPoints != in.Ground.N() {
		t.Fatalf("registered %+v", info)
	}

	// u-median job == in-process Algorithm 3 on the same sharding.
	const sites, k, tt = 4, 3, 6
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "unc", K: k, T: tt, Objective: "u-median", Sites: sites, Seed: 2},
		http.StatusAccepted, &job)
	j := waitJob(t, a, job.ID)
	if j.Status != StatusDone {
		t.Fatalf("u-median job failed: %s", j.Error)
	}
	want, err := uncertain.Run(in.Ground, dataio.SplitNodesRoundRobin(in.Nodes, sites),
		uncertain.Config{K: k, T: tt, LocalOpts: kmedian.Options{Seed: 2}}, uncertain.Median)
	if err != nil {
		t.Fatal(err)
	}
	assertCentersEqual(t, j.Result.Centers, want.Centers, "u-median job")
	if j.Result.CostKind != "global" {
		t.Fatalf("u-median cost kind %q, want global", j.Result.CostKind)
	}
	if j.Result.UpBytes != want.Report.UpBytes {
		t.Fatalf("u-median job up bytes %d, in-process %d", j.Result.UpBytes, want.Report.UpBytes)
	}

	// u-centerg runs Algorithm 4 and reports tau-search metadata via the
	// Monte-Carlo cost estimate.
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "unc", K: k, T: 4, Objective: "u-centerg", Sites: sites, Seed: 2},
		http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusDone {
		t.Fatalf("u-centerg job failed: %s", j.Error)
	} else if j.Result.CostKind != "estimate" || len(j.Result.Centers) == 0 {
		t.Fatalf("u-centerg result: kind %q, %d centers", j.Result.CostKind, len(j.Result.Centers))
	}

	// Objective/dataset-kind mismatches fail loudly, both directions.
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "unc", K: 2, T: 2, Objective: "median"}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusFailed || !strings.Contains(j.Error, "does not apply") {
		t.Fatalf("point objective on uncertain dataset: %s (%s)", j.Status, j.Error)
	}
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(50, 2, 3)},
		http.StatusCreated, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 2, T: 2, Objective: "u-median"}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusFailed {
		t.Fatalf("u-median on a table dataset succeeded")
	}

	// Uncertain datasets are append-free by design.
	a.do("POST", "/v1/datasets/unc/points", appendPointsRequest{Points: [][]float64{{1, 2}}},
		http.StatusBadRequest, nil)
	// Bad node payloads are rejected.
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "bad", Kind: KindUncertain,
		Nodes: []NodeWire{{Points: [][]float64{{1, 2}}, Probs: []float64{0.5, 0.5}}}},
		http.StatusBadRequest, nil)
}

// TestUncertainCSVUpload registers an uncertain dataset from the CSV node
// format (?kind=uncertain) and answers a job from it.
func TestUncertainCSVUpload(t *testing.T) {
	a, _ := newAPI(t, Config{})
	csv := "n0,0.5,0,0\nn0,0.5,1,0\nn1,1,4,4\nn2,0.7,8,8\nn2,0.3,9,8\nn3,1,0,1\n"
	var info DatasetInfo
	a.do("POST", "/v1/datasets?name=ucsv&kind=uncertain", csv, http.StatusCreated, &info)
	if info.Kind != KindUncertain || info.Nodes != 4 || info.GroundPoints != 6 {
		t.Fatalf("csv uncertain dataset: %+v", info)
	}
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "ucsv", K: 2, T: 1, Objective: "u-median", Sites: 2},
		http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusDone {
		t.Fatalf("csv-registered uncertain job failed: %s", j.Error)
	}
}

// slowDataset registers a dataset big enough that a job against it runs
// long enough to be cancelled/drained deterministically.
func slowDataset(t *testing.T, s *Server, name string) JobSpec {
	t.Helper()
	if _, err := s.Registry().RegisterTable(name, rowsToPoints(testPoints(4000, 4, 23))); err != nil {
		t.Fatal(err)
	}
	return JobSpec{Dataset: name, K: 4, T: 120, Sites: 2, Seed: 1}
}

// TestCancelRunningJobHTTP cancels a job mid-solve over the API and sees
// the canceled terminal status.
func TestCancelRunningJobHTTP(t *testing.T) {
	a, s := newAPI(t, Config{})
	spec := slowDataset(t, s, "slow")
	var job Job
	a.do("POST", "/v1/jobs", spec, http.StatusAccepted, &job)
	a.do("POST", "/v1/jobs/"+job.ID+"/cancel", nil, http.StatusOK, nil)
	j := waitJob(t, a, job.ID)
	if j.Status != StatusCanceled {
		t.Fatalf("cancelled job ended %s (%s), want canceled", j.Status, j.Error)
	}
	if j.Result != nil {
		t.Fatalf("cancelled job kept a result")
	}
	// Cancelling a finished job is a no-op, and unknown jobs 404.
	a.do("POST", "/v1/jobs/"+job.ID+"/cancel", nil, http.StatusOK, nil)
	a.do("POST", "/v1/jobs/job-999999/cancel", nil, http.StatusNotFound, nil)
}

// TestShutdownDrainsQueue is the graceful-shutdown acceptance: a drain
// marks still-queued jobs failed with an explicit reason (instead of
// abandoning or silently running them), lets the running job finish, and
// rejects new submissions.
func TestShutdownDrainsQueue(t *testing.T) {
	s := New(Config{MaxConcurrentJobs: 1, QueueDepth: 8})
	spec := slowDataset(t, s, "drain")

	running, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick the first job up, then queue more.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, _ := s.GetJob(running.ID)
		if j.Status != StatusQueued || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var queued []Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, q := range queued {
		j, err := s.GetJob(q.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status != StatusFailed || !strings.Contains(j.Error, "shutting down") {
			t.Fatalf("queued job %s ended %s (%q), want failed with a shutdown reason", q.ID, j.Status, j.Error)
		}
	}
	if j, _ := s.GetJob(running.ID); j.Status != StatusDone {
		t.Fatalf("running job ended %s (%s), want done (no-deadline drain lets it finish)", j.Status, j.Error)
	}
	if _, err := s.Submit(spec); err == nil {
		t.Fatalf("submit after drain succeeded")
	}
}

// TestShutdownDeadlineCancelsRunning: an expired drain deadline cancels
// the running solve instead of waiting forever.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	s := New(Config{MaxConcurrentJobs: 1})
	spec := slowDataset(t, s, "hard")
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is genuinely running so the cancel has a target.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, _ := s.GetJob(job.ID)
		if j.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (status %s)", j.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if err == nil {
		// The solve may legitimately beat a 10ms deadline only on absurdly
		// fast hardware; treat that as a skip rather than a failure.
		t.Skipf("solve finished inside the drain deadline (%v)", time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline drain took %v", elapsed)
	}
	j, err := s.GetJob(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != StatusCanceled {
		t.Fatalf("drained job ended %s (%s), want canceled", j.Status, j.Error)
	}
}
