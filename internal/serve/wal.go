package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dpc/internal/journal"
	"dpc/internal/metric"
	"dpc/internal/stream"
	"dpc/internal/uncertain"
)

// The serve layer's journal vocabulary. Every control-plane mutation the
// server cannot recompute — dataset registrations, appends, deletes, job
// submissions, state transitions and finished results — appends one
// record here, and Recover replays them on start so a restarted server
// resumes its queue and re-serves completed results with no re-ingest and
// no recompute. Remote datasets are the one exception: they are live TCP
// connections owned by the server process, re-established by dpc-site's
// redial loop rather than by replay.
const (
	recDatasetPut    journal.Kind = 1
	recDatasetAppend journal.Kind = 2
	recDatasetDelete journal.Kind = 3
	recJobSubmit     journal.Kind = 4
	recJobStart      journal.Kind = 5
	recJobFinish     journal.Kind = 6
	// recSnapshot is a checkpoint: the complete registry + job state as of
	// one instant, written as the first record of a fresh segment by
	// Server.Compact. Replay restores from the last snapshot and applies
	// only the records after it; segments before it are garbage.
	recSnapshot journal.Kind = 7
)

// walNode is one uncertain node in canonical journal form: support
// indices into the dataset's journaled ground set plus (already
// normalized) probabilities. Replaying through RegisterUncertain with
// these exact slices reproduces the registered instance bit for bit.
type walNode struct {
	Support []int     `json:"support"`
	Probs   []float64 `json:"probs"`
}

// walDataset is a dataset registration record: the union of the three
// journalable kinds (table points, stream sketch shape, uncertain
// ground + nodes). Inside a snapshot the same shape carries the full
// current state instead of the registration-time one: table Points are
// the whole grown table, and the stream fields below capture the
// sketch's exact internal state so a restore skips re-ingesting (and
// re-compressing) the absorbed appends.
type walDataset struct {
	Name   string      `json:"name"`
	Kind   DatasetKind `json:"kind"`
	Points [][]float64 `json:"points,omitempty"`
	Ground [][]float64 `json:"ground,omitempty"`
	Nodes  []walNode   `json:"nodes,omitempty"`
	K      int         `json:"k,omitempty"`
	T      int         `json:"t,omitempty"`
	Chunk  int         `json:"chunk,omitempty"`
	Means  bool        `json:"means,omitempty"`
	Seed   int64       `json:"seed,omitempty"`

	// Snapshot-only stream sketch state: the weighted summary buffer plus
	// the counters that keep future compressions deterministic
	// (stream.State). A registration record leaves them empty.
	Summary      [][]float64 `json:"summary,omitempty"`
	Weights      []float64   `json:"weights,omitempty"`
	Compressions int         `json:"compressions,omitempty"`
	Ingested     int         `json:"ingested,omitempty"`
	Dim          int         `json:"dim,omitempty"`
}

// walSnapshot is a checkpoint record's payload: every dataset's full
// state (remote datasets excepted — they are live TCP connections
// re-established by dpc-site's redial loop), every finished job still
// retained in memory, every queued-or-running job (replay requeues
// running jobs — their work died with the process), and the job-id
// sequence floor so compaction can never cause an id to be reissued.
type walSnapshot struct {
	Datasets []walDataset `json:"datasets,omitempty"`
	Jobs     []walFinish  `json:"jobs,omitempty"`
	Queued   []walSubmit  `json:"queued,omitempty"`
	Seq      int          `json:"seq"`
}

// walAppend is a dataset append record.
type walAppend struct {
	Name   string      `json:"name"`
	Points [][]float64 `json:"points"`
}

// walDelete is a dataset delete record.
type walDelete struct {
	Name string `json:"name"`
}

// walSubmit is a job submission record.
type walSubmit struct {
	ID        string    `json:"id"`
	Spec      JobSpec   `json:"spec"`
	Submitted time.Time `json:"submitted"`
}

// walStart is a job state transition to running.
type walStart struct {
	ID      string    `json:"id"`
	Started time.Time `json:"started"`
}

// walFinish is a job's terminal record. It embeds the spec alongside the
// outcome so one record reconstructs the whole job — the lookup path for
// results whose in-memory job was evicted by the TTL GC.
type walFinish struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	Status    string     `json:"status"`
	Error     string     `json:"error,omitempty"`
	ErrorCode string     `json:"error_code,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  time.Time  `json:"finished"`
}

// journalAppend marshals v and appends it under kind, returning the
// record's durable address. A nil journal is a no-op (journaling is
// opt-in; the zero ref means "not journaled"); an append error is
// returned so callers decide whether to roll the mutation back or
// degrade. Callers that mutate-then-journal (or journal-then-mutate)
// around a ref-addressable record hold s.snapMu.RLock across the pair so
// a concurrent snapshot never splits them; journalAppend itself takes no
// barrier, which keeps the read-lock non-reentrant.
func (s *Server) journalAppend(kind journal.Kind, v any) (journal.RecordRef, error) {
	s.mu.Lock()
	jnl := s.jnl
	s.mu.Unlock()
	if jnl == nil {
		return journal.RecordRef{}, nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return journal.RecordRef{}, fmt.Errorf("serve: journal encode: %w", err)
	}
	ref, err := jnl.Append(kind, payload)
	if err != nil {
		return journal.RecordRef{}, fmt.Errorf("serve: journal append: %w", err)
	}
	s.counters.journalAppended.Add(1)
	return ref, nil
}

// journalDataset records a successful registration. The canonical forms
// replay through the same Register* entry points, so a replayed registry
// is bit-identical to the one that journaled: tables keep point order,
// uncertain datasets keep their exact ground set and node probabilities
// (already normalized by the original request path).
func (s *Server) journalDataset(d *Dataset, wd walDataset) error {
	wd.Name = d.Name()
	wd.Kind = d.Kind()
	_, err := s.journalAppend(recDatasetPut, wd)
	return err
}

// walTablePoints converts registered points to journal rows.
func walTablePoints(pts []metric.Point) [][]float64 {
	return pointsToRows(pts)
}

// walUncertain converts a built uncertain instance to canonical journal
// form.
func walUncertain(g *uncertain.Ground, nodes []uncertain.Node) ([][]float64, []walNode) {
	wn := make([]walNode, len(nodes))
	for i, nd := range nodes {
		wn[i] = walNode{Support: nd.Support, Probs: nd.Prob}
	}
	return pointsToRows(g.Pts), wn
}

// RecoveryStats summarizes one journal replay.
type RecoveryStats struct {
	// Records is how many journal records were applied: the snapshot (if
	// any) counts as one, plus every record after it. Records before the
	// last snapshot are superseded and not counted (after compaction GC
	// they are not even on disk).
	Records int
	// FromSnapshot reports that replay restored from a checkpoint record
	// plus the suffix after it, rather than the whole history.
	FromSnapshot bool
	// SnapshotSegment is the segment holding the snapshot restored from
	// (0 without one); segments below it are garbage.
	SnapshotSegment int
	// SnapshotDatasets and SnapshotJobs count what the snapshot itself
	// restored (suffix records may add more).
	SnapshotDatasets int
	SnapshotJobs     int
	// Datasets is how many datasets exist after replay (registrations
	// minus deletes).
	Datasets int
	// JobsReplayed is how many finished jobs were restored with their
	// results — re-servable with zero recompute.
	JobsReplayed int
	// JobsResumed is how many journaled-but-unfinished jobs were requeued.
	JobsResumed int
	// Sealed reports whether the journal ended with a clean-shutdown seal.
	Sealed bool
	// Truncated reports that a torn tail record was cut (the crash
	// signature; everything before it was recovered).
	Truncated bool
	// Errors collects records that no longer apply (e.g. an append to a
	// dataset deleted later in the log). Replay continues past them.
	Errors []string
}

// walJob is replay's in-flight picture of one journaled job.
type walJob struct {
	submit walSubmit
	finish *walFinish
	ref    journal.RecordRef // durable address of the finish record (or the snapshot carrying it)
}

// restoreDataset re-registers one journaled dataset. For a snapshot's
// walDataset the stream sketch state is restored exactly (summary,
// weights, compression and ingest counters), so the replayed sketch
// answers every future Add/Query bit-identically to the one that
// checkpointed; registration records leave those fields empty and
// restore the empty sketch the original registration created.
func (s *Server) restoreDataset(wd walDataset) error {
	switch wd.Kind {
	case KindTable:
		_, err := s.reg.RegisterTable(wd.Name, rowsToPoints(wd.Points))
		return err
	case KindStream:
		d, err := s.reg.RegisterStream(wd.Name, wd.K, wd.T, wd.Chunk, wd.Means, wd.Seed)
		if err != nil {
			return err
		}
		if wd.Ingested > 0 || len(wd.Summary) > 0 {
			d.mu.Lock()
			d.sketch.LoadState(stream.State{
				Points: rowsToPoints(wd.Summary), Weights: wd.Weights,
				Compressions: wd.Compressions, N: wd.Ingested,
			})
			d.dim = wd.Dim
			d.mu.Unlock()
		}
		return nil
	case KindUncertain:
		g := &uncertain.Ground{Pts: rowsToPoints(wd.Ground)}
		nodes := make([]uncertain.Node, len(wd.Nodes))
		for i, wn := range wd.Nodes {
			nodes[i] = uncertain.Node{Support: wn.Support, Prob: wn.Probs}
		}
		_, err := s.reg.RegisterUncertain(wd.Name, g, nodes)
		return err
	default:
		return fmt.Errorf("unreplayable kind %q", wd.Kind)
	}
}

// applyWAL replays journal records into the registry and job store. It
// runs before the server is ready (no API traffic, no journaling of the
// mutations it applies — they are already in the log). When the records
// contain a snapshot checkpoint, state restores from the latest one and
// only the records after it apply — restart cost is O(state + suffix),
// not O(history). Unfinished jobs are requeued through the scheduler
// exactly as a fresh submission, except that no new submit record is
// written.
func (s *Server) applyWAL(records []journal.Record) RecoveryStats {
	var stats RecoveryStats
	jobs := make(map[string]*walJob)
	var order []string
	oops := func(format string, args ...any) {
		stats.Errors = append(stats.Errors, fmt.Sprintf(format, args...))
	}

	// Restore from the latest decodable snapshot; everything before it is
	// superseded (normally already GC'd from disk — a crash between
	// Checkpoint and DropBefore leaves the old chain, which replay skips).
	var snapSeq int
	snapAt := -1
	for i := len(records) - 1; i >= 0; i-- {
		if records[i].Kind != recSnapshot {
			continue
		}
		var snap walSnapshot
		if err := json.Unmarshal(records[i].Payload, &snap); err != nil {
			oops("snapshot record seq %d: %v", records[i].Seq, err)
			continue
		}
		snapAt = i
		stats.FromSnapshot = true
		stats.SnapshotSegment = records[i].Seg
		snapSeq = snap.Seq
		for _, wd := range snap.Datasets {
			if err := s.restoreDataset(wd); err != nil {
				oops("snapshot dataset %q: %v", wd.Name, err)
			}
		}
		stats.SnapshotDatasets = len(snap.Datasets)
		for _, wf := range snap.Jobs {
			wf := wf
			jobs[wf.ID] = &walJob{
				submit: walSubmit{ID: wf.ID, Spec: wf.Spec, Submitted: wf.Submitted},
				finish: &wf,
				ref:    records[i].Ref(),
			}
			order = append(order, wf.ID)
		}
		stats.SnapshotJobs = len(snap.Jobs)
		for _, ws := range snap.Queued {
			if _, ok := jobs[ws.ID]; !ok {
				jobs[ws.ID] = &walJob{submit: ws}
				order = append(order, ws.ID)
			}
		}
		break
	}
	stats.Records = len(records) - (snapAt + 1)
	if snapAt >= 0 {
		stats.Records++ // the snapshot itself counts as one applied record
	}

	for _, rec := range records[snapAt+1:] {
		switch rec.Kind {
		case recDatasetPut:
			var wd walDataset
			if err := json.Unmarshal(rec.Payload, &wd); err != nil {
				oops("dataset record seq %d: %v", rec.Seq, err)
				continue
			}
			if err := s.restoreDataset(wd); err != nil {
				oops("dataset %q: %v", wd.Name, err)
			}
		case recDatasetAppend:
			var wa walAppend
			if err := json.Unmarshal(rec.Payload, &wa); err != nil {
				oops("append record seq %d: %v", rec.Seq, err)
				continue
			}
			if _, err := s.reg.Append(wa.Name, rowsToPoints(wa.Points)); err != nil {
				oops("append to %q: %v", wa.Name, err)
			}
		case recDatasetDelete:
			var wd walDelete
			if err := json.Unmarshal(rec.Payload, &wd); err != nil {
				oops("delete record seq %d: %v", rec.Seq, err)
				continue
			}
			if err := s.reg.Delete(wd.Name); err != nil {
				oops("delete %q: %v", wd.Name, err)
			}
		case recJobSubmit:
			var ws walSubmit
			if err := json.Unmarshal(rec.Payload, &ws); err != nil {
				oops("submit record seq %d: %v", rec.Seq, err)
				continue
			}
			if wj, ok := jobs[ws.ID]; ok {
				// Already known (the snapshot captured the job between its
				// in-memory creation and this record landing); keep any
				// finish state, refresh the submission detail.
				wj.submit = ws
			} else {
				order = append(order, ws.ID)
				jobs[ws.ID] = &walJob{submit: ws}
			}
		case recJobStart:
			// Present for the record (operators reading the log see the
			// transition); replay treats started-unfinished like queued —
			// the work was lost with the process and must rerun.
		case recJobFinish:
			var wf walFinish
			if err := json.Unmarshal(rec.Payload, &wf); err != nil {
				oops("finish record seq %d: %v", rec.Seq, err)
				continue
			}
			wj, ok := jobs[wf.ID]
			if !ok {
				// Finish can land before its submit record under concurrent
				// submission; the spec embedded in it suffices.
				wj = &walJob{submit: walSubmit{ID: wf.ID, Spec: wf.Spec, Submitted: wf.Submitted}}
				jobs[wf.ID] = wj
				order = append(order, wf.ID)
			}
			wj.finish = &wf
			wj.ref = rec.Ref()
		}
	}

	s.mu.Lock()
	// The snapshot's sequence floor guards against id reuse: compaction
	// drops evicted jobs' records, so without it a restarted server could
	// count only the surviving ids and reissue one a client still holds.
	if snapSeq > s.seq {
		s.seq = snapSeq
	}
	for _, id := range order {
		wj := jobs[id]
		if n := jobNumber(id); n > s.seq {
			s.seq = n
		}
		if wj.finish != nil {
			wf := wj.finish
			fin := wf.Finished
			s.jobs[id] = &Job{
				ID: id, Spec: wf.Spec, Status: wf.Status,
				Error: wf.Error, ErrorCode: wf.ErrorCode, Result: wf.Result,
				Submitted: wf.Submitted, Started: wf.Started, Finished: &fin,
				Replayed: true,
			}
			if wj.ref.Seg > 0 {
				s.finishIdx[id] = wj.ref
			}
			s.order = append(s.order, id)
			stats.JobsReplayed++
			continue
		}
		job := &Job{
			ID: id, Spec: wj.submit.Spec, Status: StatusQueued,
			Submitted: wj.submit.Submitted, Replayed: true,
		}
		s.jobs[id] = job
		s.order = append(s.order, id)
		s.enqueueLocked(job)
		stats.JobsResumed++
	}
	s.pruneLocked()
	s.mu.Unlock()
	stats.Datasets = s.reg.Count()
	s.counters.journalReplayed.Add(int64(stats.Records))
	return stats
}

// jobNumber parses the numeric suffix of a job-%06d id (0 when foreign).
func jobNumber(id string) int {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return n
}

// jobFromJournal looks a job up in the journal — the fetch path for
// results whose in-memory entry was evicted by the TTL GC. The finish
// index maps the id straight to its terminal record's durable address
// (or to the snapshot carrying it), so one fetch costs one record read,
// never a replay of the log — O(record), not O(history), no matter how
// long the server has been up or how often clients poll.
//
// A concurrent Compact can GC the referenced segment between the index
// read and the record read; the index is refreshed before the GC, so one
// retry with a fresh ref resolves the race.
func (s *Server) jobFromJournal(id string) (Job, bool) {
	for attempt := 0; attempt < 2; attempt++ {
		s.mu.Lock()
		ref, ok := s.finishIdx[id]
		dir := s.jnlDir
		s.mu.Unlock()
		if !ok || dir == "" {
			return Job{}, false
		}
		rec, err := journal.ReadRecordAt(dir, ref)
		if err != nil {
			continue
		}
		s.counters.journalReads.Add(1)
		var found *walFinish
		switch rec.Kind {
		case recJobFinish:
			var wf walFinish
			if json.Unmarshal(rec.Payload, &wf) == nil && wf.ID == id {
				found = &wf
			}
		case recSnapshot:
			var snap walSnapshot
			if json.Unmarshal(rec.Payload, &snap) == nil {
				for i := range snap.Jobs {
					if snap.Jobs[i].ID == id {
						found = &snap.Jobs[i]
						break
					}
				}
			}
		}
		if found == nil {
			return Job{}, false
		}
		fin := found.Finished
		return Job{
			ID: found.ID, Spec: found.Spec, Status: found.Status,
			Error: found.Error, ErrorCode: found.ErrorCode, Result: found.Result,
			Submitted: found.Submitted, Started: found.Started, Finished: &fin,
			Replayed: true,
		}, true
	}
	return Job{}, false
}

// jobToWalFinish converts a terminal job snapshot to its journal form.
func jobToWalFinish(j *Job) walFinish {
	return walFinish{
		ID: j.ID, Spec: j.Spec, Status: j.Status,
		Error: j.Error, ErrorCode: j.ErrorCode, Result: j.Result,
		Submitted: j.Submitted, Started: j.Started, Finished: *j.Finished,
	}
}

// buildSnapshot captures the server's complete journalable state: every
// dataset's current contents (remote kinds excluded — their site
// connections are re-established out of band, not replayed), finished
// jobs still in memory, queued and running jobs (replay requeues running
// ones — their work dies with the process either way), and the job-id
// sequence floor. Called with s.snapMu held exclusively, so no
// journal+apply pair is in flight while the state is read.
func (s *Server) buildSnapshot() walSnapshot {
	var snap walSnapshot
	for _, d := range s.reg.All() {
		wd := walDataset{Name: d.name, Kind: d.kind}
		switch d.kind {
		case KindTable:
			view, _ := d.snapshotTable()
			d.mu.RLock()
			wd.Dim = d.dim
			d.mu.RUnlock()
			wd.Points = pointsToRows(view.Flatten())
		case KindStream:
			d.mu.RLock()
			cfg := d.sketch.Config()
			st := d.sketch.State()
			wd.K, wd.T, wd.Chunk, wd.Means, wd.Seed = cfg.K, cfg.T, cfg.Chunk, d.streamMeans, cfg.Opts.Seed
			wd.Summary = pointsToRows(st.Points)
			wd.Weights = st.Weights
			wd.Compressions = st.Compressions
			wd.Ingested = st.N
			wd.Dim = d.dim
			d.mu.RUnlock()
		case KindUncertain:
			wd.Ground, wd.Nodes = walUncertain(d.ground, d.nodes)
		default:
			continue
		}
		snap.Datasets = append(snap.Datasets, wd)
	}
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.Finished != nil {
			snap.Jobs = append(snap.Jobs, jobToWalFinish(j))
			continue
		}
		snap.Queued = append(snap.Queued, walSubmit{ID: j.ID, Spec: j.Spec, Submitted: j.Submitted})
	}
	snap.Seq = s.seq
	s.mu.Unlock()
	return snap
}
