package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dpc/internal/journal"
	"dpc/internal/metric"
	"dpc/internal/uncertain"
)

// The serve layer's journal vocabulary. Every control-plane mutation the
// server cannot recompute — dataset registrations, appends, deletes, job
// submissions, state transitions and finished results — appends one
// record here, and Recover replays them on start so a restarted server
// resumes its queue and re-serves completed results with no re-ingest and
// no recompute. Remote datasets are the one exception: they are live TCP
// connections owned by the server process, re-established by dpc-site's
// redial loop rather than by replay.
const (
	recDatasetPut    journal.Kind = 1
	recDatasetAppend journal.Kind = 2
	recDatasetDelete journal.Kind = 3
	recJobSubmit     journal.Kind = 4
	recJobStart      journal.Kind = 5
	recJobFinish     journal.Kind = 6
)

// walNode is one uncertain node in canonical journal form: support
// indices into the dataset's journaled ground set plus (already
// normalized) probabilities. Replaying through RegisterUncertain with
// these exact slices reproduces the registered instance bit for bit.
type walNode struct {
	Support []int     `json:"support"`
	Probs   []float64 `json:"probs"`
}

// walDataset is a dataset registration record: the union of the three
// journalable kinds (table points, stream sketch shape, uncertain
// ground + nodes).
type walDataset struct {
	Name   string      `json:"name"`
	Kind   DatasetKind `json:"kind"`
	Points [][]float64 `json:"points,omitempty"`
	Ground [][]float64 `json:"ground,omitempty"`
	Nodes  []walNode   `json:"nodes,omitempty"`
	K      int         `json:"k,omitempty"`
	T      int         `json:"t,omitempty"`
	Chunk  int         `json:"chunk,omitempty"`
	Means  bool        `json:"means,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
}

// walAppend is a dataset append record.
type walAppend struct {
	Name   string      `json:"name"`
	Points [][]float64 `json:"points"`
}

// walDelete is a dataset delete record.
type walDelete struct {
	Name string `json:"name"`
}

// walSubmit is a job submission record.
type walSubmit struct {
	ID        string    `json:"id"`
	Spec      JobSpec   `json:"spec"`
	Submitted time.Time `json:"submitted"`
}

// walStart is a job state transition to running.
type walStart struct {
	ID      string    `json:"id"`
	Started time.Time `json:"started"`
}

// walFinish is a job's terminal record. It embeds the spec alongside the
// outcome so one record reconstructs the whole job — the lookup path for
// results whose in-memory job was evicted by the TTL GC.
type walFinish struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	Status    string     `json:"status"`
	Error     string     `json:"error,omitempty"`
	ErrorCode string     `json:"error_code,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  time.Time  `json:"finished"`
}

// journalAppend marshals v and appends it under kind. A nil journal is a
// no-op (journaling is opt-in); an append error is returned so callers
// decide whether to roll the mutation back or degrade.
func (s *Server) journalAppend(kind journal.Kind, v any) error {
	s.mu.Lock()
	jnl := s.jnl
	s.mu.Unlock()
	if jnl == nil {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	if err := jnl.Append(kind, payload); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	s.counters.journalAppended.Add(1)
	return nil
}

// journalDataset records a successful registration. The canonical forms
// replay through the same Register* entry points, so a replayed registry
// is bit-identical to the one that journaled: tables keep point order,
// uncertain datasets keep their exact ground set and node probabilities
// (already normalized by the original request path).
func (s *Server) journalDataset(d *Dataset, wd walDataset) error {
	wd.Name = d.Name()
	wd.Kind = d.Kind()
	return s.journalAppend(recDatasetPut, wd)
}

// walTablePoints converts registered points to journal rows.
func walTablePoints(pts []metric.Point) [][]float64 {
	return pointsToRows(pts)
}

// walUncertain converts a built uncertain instance to canonical journal
// form.
func walUncertain(g *uncertain.Ground, nodes []uncertain.Node) ([][]float64, []walNode) {
	wn := make([]walNode, len(nodes))
	for i, nd := range nodes {
		wn[i] = walNode{Support: nd.Support, Probs: nd.Prob}
	}
	return pointsToRows(g.Pts), wn
}

// RecoveryStats summarizes one journal replay.
type RecoveryStats struct {
	// Records is how many journal records were replayed.
	Records int
	// Datasets is how many datasets exist after replay (registrations
	// minus deletes).
	Datasets int
	// JobsReplayed is how many finished jobs were restored with their
	// results — re-servable with zero recompute.
	JobsReplayed int
	// JobsResumed is how many journaled-but-unfinished jobs were requeued.
	JobsResumed int
	// Sealed reports whether the journal ended with a clean-shutdown seal.
	Sealed bool
	// Truncated reports that a torn tail record was cut (the crash
	// signature; everything before it was recovered).
	Truncated bool
	// Errors collects records that no longer apply (e.g. an append to a
	// dataset deleted later in the log). Replay continues past them.
	Errors []string
}

// walJob is replay's in-flight picture of one journaled job.
type walJob struct {
	submit walSubmit
	finish *walFinish
}

// applyWAL replays journal records into the registry and job store. It
// runs before the server is ready (no API traffic, no journaling of the
// mutations it applies — they are already in the log). Unfinished jobs
// are requeued through the scheduler exactly as a fresh submission,
// except that no new submit record is written.
func (s *Server) applyWAL(records []journal.Record) RecoveryStats {
	var stats RecoveryStats
	stats.Records = len(records)
	jobs := make(map[string]*walJob)
	var order []string
	oops := func(format string, args ...any) {
		stats.Errors = append(stats.Errors, fmt.Sprintf(format, args...))
	}
	for _, rec := range records {
		switch rec.Kind {
		case recDatasetPut:
			var wd walDataset
			if err := json.Unmarshal(rec.Payload, &wd); err != nil {
				oops("dataset record seq %d: %v", rec.Seq, err)
				continue
			}
			var err error
			switch wd.Kind {
			case KindTable:
				_, err = s.reg.RegisterTable(wd.Name, rowsToPoints(wd.Points))
			case KindStream:
				_, err = s.reg.RegisterStream(wd.Name, wd.K, wd.T, wd.Chunk, wd.Means, wd.Seed)
			case KindUncertain:
				g := &uncertain.Ground{Pts: rowsToPoints(wd.Ground)}
				nodes := make([]uncertain.Node, len(wd.Nodes))
				for i, wn := range wd.Nodes {
					nodes[i] = uncertain.Node{Support: wn.Support, Prob: wn.Probs}
				}
				_, err = s.reg.RegisterUncertain(wd.Name, g, nodes)
			default:
				err = fmt.Errorf("unreplayable kind %q", wd.Kind)
			}
			if err != nil {
				oops("dataset %q: %v", wd.Name, err)
			}
		case recDatasetAppend:
			var wa walAppend
			if err := json.Unmarshal(rec.Payload, &wa); err != nil {
				oops("append record seq %d: %v", rec.Seq, err)
				continue
			}
			if _, err := s.reg.Append(wa.Name, rowsToPoints(wa.Points)); err != nil {
				oops("append to %q: %v", wa.Name, err)
			}
		case recDatasetDelete:
			var wd walDelete
			if err := json.Unmarshal(rec.Payload, &wd); err != nil {
				oops("delete record seq %d: %v", rec.Seq, err)
				continue
			}
			if err := s.reg.Delete(wd.Name); err != nil {
				oops("delete %q: %v", wd.Name, err)
			}
		case recJobSubmit:
			var ws walSubmit
			if err := json.Unmarshal(rec.Payload, &ws); err != nil {
				oops("submit record seq %d: %v", rec.Seq, err)
				continue
			}
			if _, ok := jobs[ws.ID]; !ok {
				order = append(order, ws.ID)
			}
			jobs[ws.ID] = &walJob{submit: ws}
		case recJobStart:
			// Present for the record (operators reading the log see the
			// transition); replay treats started-unfinished like queued —
			// the work was lost with the process and must rerun.
		case recJobFinish:
			var wf walFinish
			if err := json.Unmarshal(rec.Payload, &wf); err != nil {
				oops("finish record seq %d: %v", rec.Seq, err)
				continue
			}
			wj, ok := jobs[wf.ID]
			if !ok {
				// Finish can land before its submit record under concurrent
				// submission; the spec embedded in it suffices.
				wj = &walJob{submit: walSubmit{ID: wf.ID, Spec: wf.Spec, Submitted: wf.Submitted}}
				jobs[wf.ID] = wj
				order = append(order, wf.ID)
			}
			wj.finish = &wf
		}
	}

	s.mu.Lock()
	for _, id := range order {
		wj := jobs[id]
		if n := jobNumber(id); n > s.seq {
			s.seq = n
		}
		if wj.finish != nil {
			wf := wj.finish
			fin := wf.Finished
			s.jobs[id] = &Job{
				ID: id, Spec: wf.Spec, Status: wf.Status,
				Error: wf.Error, ErrorCode: wf.ErrorCode, Result: wf.Result,
				Submitted: wf.Submitted, Started: wf.Started, Finished: &fin,
				Replayed: true,
			}
			s.order = append(s.order, id)
			stats.JobsReplayed++
			continue
		}
		job := &Job{
			ID: id, Spec: wj.submit.Spec, Status: StatusQueued,
			Submitted: wj.submit.Submitted, Replayed: true,
		}
		s.jobs[id] = job
		s.order = append(s.order, id)
		s.enqueueLocked(job)
		stats.JobsResumed++
	}
	s.pruneLocked()
	s.mu.Unlock()
	stats.Datasets = s.reg.Count()
	s.counters.journalReplayed.Add(int64(stats.Records))
	return stats
}

// jobNumber parses the numeric suffix of a job-%06d id (0 when foreign).
func jobNumber(id string) int {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return n
}

// jobFromJournal looks a job up in the journal file — the fetch path for
// results whose in-memory entry was evicted by the TTL GC. It reads the
// log from disk (concurrent appends are safe: records are written with
// single atomic writes, and a torn tail simply ends the scan) and
// reconstructs the job from its terminal record.
func (s *Server) jobFromJournal(id string) (Job, bool) {
	s.mu.Lock()
	path := s.jnlPath
	s.mu.Unlock()
	if path == "" {
		return Job{}, false
	}
	f, err := os.Open(path)
	if err != nil {
		return Job{}, false
	}
	defer f.Close()
	res, err := journal.Replay(f)
	// A corrupt mid-file record still yields the trustworthy prefix;
	// scanning it is strictly better than refusing an eviction lookup.
	_ = err
	var found *walFinish
	for _, rec := range res.Records {
		if rec.Kind != recJobFinish {
			continue
		}
		var wf walFinish
		if json.Unmarshal(rec.Payload, &wf) == nil && wf.ID == id {
			found = &wf
		}
	}
	if found == nil {
		return Job{}, false
	}
	fin := found.Finished
	return Job{
		ID: found.ID, Spec: found.Spec, Status: found.Status,
		Error: found.Error, ErrorCode: found.ErrorCode, Result: found.Result,
		Submitted: found.Submitted, Started: found.Started, Finished: &fin,
		Replayed: true,
	}, true
}
