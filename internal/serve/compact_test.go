package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"reflect"
	"testing"
	"time"

	"dpc/internal/journal"
)

// TestCompactSnapshotRoundTrip is the compaction round trip: a server
// forced onto tiny segments journals enough to rotate several times, a
// snapshot checkpoint supersedes and GCs the old segments, and the next
// life restores from snapshot + suffix — fewer records replayed than were
// written, finished results byte-identical, and the stream sketch's exact
// state (not its re-ingested approximation) back in memory.
func TestCompactSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JournalDir: dir, SegmentBytes: 4096}
	a, s1 := newAPI(t, cfg)

	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(300, 3, 7)},
		http.StatusCreated, nil)
	a.do("POST", "/v1/datasets", createDatasetRequest{
		Name: "str", Kind: KindStream, K: 3, T: 2, Chunk: 64, Seed: 9,
		Points: testPoints(150, 3, 11),
	}, http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 3, T: 5, Seed: 42}, http.StatusAccepted, &job)
	done := waitJob(t, a, job.ID)
	if done.Status != StatusDone {
		t.Fatalf("job: %+v", done)
	}

	appended := s1.counters.journalAppended.Load()
	comp := s1.jnl.(journal.Compactor)
	if comp.Segments() < 3 {
		t.Fatalf("only %d segments before compaction; SegmentBytes did not force rotation", comp.Segments())
	}

	var stats CompactStats
	a.do("POST", "/v1/admin/compact", nil, http.StatusOK, &stats)
	if stats.SegmentsRemoved < 2 || stats.Datasets != 2 || stats.Jobs != 1 {
		t.Fatalf("compact stats: %+v", stats)
	}
	if _, err := os.Stat(journal.SegmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("segment 1 still on disk after GC (err=%v)", err)
	}

	// Suffix traffic after the checkpoint: an append the snapshot has not
	// seen must still replay.
	a.do("POST", "/v1/datasets/tbl/points", appendPointsRequest{Points: testPoints(50, 3, 8)},
		http.StatusOK, nil)
	// The stream's post-restart behavior baseline, from this life.
	var sjob Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "str", K: 3, T: 2, Seed: 5}, http.StatusAccepted, &sjob)
	sdone := waitJob(t, a, sjob.ID)
	if sdone.Status != StatusDone {
		t.Fatalf("stream job: %+v", sdone)
	}
	s1.Close()

	b, s2 := newAPI(t, cfg)
	rec := s2.Recovery()
	if !rec.FromSnapshot || rec.SnapshotSegment != stats.Segment {
		t.Fatalf("recovery did not restore from the snapshot: %+v", rec)
	}
	if int64(rec.Records) >= appended {
		t.Fatalf("replayed %d records, want fewer than the %d appended before compaction", rec.Records, appended)
	}
	var info DatasetInfo
	b.do("GET", "/v1/datasets/tbl", nil, http.StatusOK, &info)
	if info.Points != 350 {
		t.Fatalf("table after snapshot+suffix replay: %+v", info)
	}
	// Finished result byte-identical, zero recompute.
	var again Job
	b.do("GET", "/v1/jobs/"+job.ID, nil, http.StatusOK, &again)
	if !again.Replayed || !reflect.DeepEqual(again.Result.Centers, done.Result.Centers) {
		t.Fatalf("replayed job diverged (replayed=%v)", again.Replayed)
	}
	if got := s2.counters.jobsDone.Load(); got != 0 {
		t.Fatalf("jobsDone = %d after replay, want 0", got)
	}
	// The restored sketch answers the same query identically: snapshot
	// state capture is exact, not a re-ingest.
	var sjob2 Job
	b.do("POST", "/v1/jobs", JobSpec{Dataset: "str", K: 3, T: 2, Seed: 5}, http.StatusAccepted, &sjob2)
	if sredo := waitJob(t, b, sjob2.ID); !reflect.DeepEqual(sredo.Result.Centers, sdone.Result.Centers) {
		t.Fatalf("stream query diverged after snapshot restore")
	}
}

// TestCompactCrashBeforeGC: a crash between Checkpoint and DropBefore
// leaves superseded segments on disk; the next Recover restores from the
// snapshot anyway and finishes the interrupted GC itself.
func TestCompactCrashBeforeGC(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JournalDir: dir, SegmentBytes: 4096}
	a, s1 := newAPI(t, cfg)
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(300, 3, 7)},
		http.StatusCreated, nil)

	// Checkpoint without the GC — the crash window.
	s1.snapMu.Lock()
	snap := s1.buildSnapshot()
	s1.snapMu.Unlock()
	payload, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s1.jnl.(journal.Compactor).Checkpoint(recSnapshot, payload)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Seg < 2 {
		t.Fatalf("checkpoint landed in segment %d, want a fresh one", ref.Seg)
	}
	s1.Close()

	_, s2 := newAPI(t, cfg)
	rec := s2.Recovery()
	if !rec.FromSnapshot || rec.SnapshotSegment != ref.Seg {
		t.Fatalf("recovery: %+v", rec)
	}
	if got := s2.counters.segmentsGCd.Load(); got < 1 {
		t.Fatalf("recover did not finish the interrupted GC (segmentsGCd=%d)", got)
	}
	if _, err := os.Stat(journal.SegmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("superseded segment survived recovery (err=%v)", err)
	}
	if n := s2.reg.Count(); n != 1 {
		t.Fatalf("datasets after recovery: %d", n)
	}
}

// TestEvictedJobFetchIsOneRead is the O(history) regression guard: a
// fetch of a TTL-evicted finished job costs exactly one journal record
// read via the finish index — never a replay of the log, no matter how
// much unrelated history sits in it.
func TestEvictedJobFetchIsOneRead(t *testing.T) {
	dir := t.TempDir()
	a, s := newAPI(t, Config{JournalDir: dir, JobTTL: time.Millisecond})

	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(200, 3, 3)},
		http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 3, T: 2, Seed: 1}, http.StatusAccepted, &job)
	done := waitJob(t, a, job.ID)
	if done.Status != StatusDone {
		t.Fatalf("job: %+v", done)
	}
	// Pad the log with history the fetch must not touch.
	for i := 0; i < 25; i++ {
		a.do("POST", "/v1/datasets/tbl/points", appendPointsRequest{Points: testPoints(20, 2, int64(i))},
			http.StatusOK, nil)
	}

	// Evict the finished job (sweep far in the future beats waiting).
	s.sweep(time.Now().Add(time.Hour))
	s.mu.Lock()
	_, inMemory := s.jobs[job.ID]
	s.mu.Unlock()
	if inMemory {
		t.Fatal("job not evicted by the sweep")
	}

	var again Job
	a.do("GET", "/v1/jobs/"+job.ID, nil, http.StatusOK, &again)
	if !again.Replayed || !reflect.DeepEqual(again.Result.Centers, done.Result.Centers) {
		t.Fatalf("evicted job fetch diverged (replayed=%v)", again.Replayed)
	}
	if reads := s.counters.journalReads.Load(); reads != 1 {
		t.Fatalf("evicted fetch cost %d record reads, want exactly 1", reads)
	}
	// Each further fetch costs one more read, not a growing replay.
	a.do("GET", "/v1/jobs/"+job.ID, nil, http.StatusOK, &again)
	if reads := s.counters.journalReads.Load(); reads != 2 {
		t.Fatalf("second fetch brought total reads to %d, want 2", reads)
	}
}

// TestEvictedJobFetchAfterCompaction: compaction folds retained finished
// jobs into the snapshot; a job evicted AFTER the snapshot still fetches
// (one read, via the checkpoint record) even though its original finish
// record's segment is gone.
func TestEvictedJobFetchAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	a, s := newAPI(t, Config{JournalDir: dir, SegmentBytes: 4096, JobTTL: time.Millisecond})

	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(200, 3, 3)},
		http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 3, T: 2, Seed: 1}, http.StatusAccepted, &job)
	done := waitJob(t, a, job.ID)

	var stats CompactStats
	a.do("POST", "/v1/admin/compact", nil, http.StatusOK, &stats)
	if stats.Jobs != 1 {
		t.Fatalf("compact stats: %+v", stats)
	}
	s.sweep(time.Now().Add(time.Hour))

	var again Job
	a.do("GET", "/v1/jobs/"+job.ID, nil, http.StatusOK, &again)
	if !again.Replayed || !reflect.DeepEqual(again.Result.Centers, done.Result.Centers) {
		t.Fatalf("post-compaction evicted fetch diverged (replayed=%v)", again.Replayed)
	}
	if reads := s.counters.journalReads.Load(); reads != 1 {
		t.Fatalf("post-compaction fetch cost %d reads, want 1", reads)
	}
}

// failLog wraps a real journal and fails every Append — the fault
// injection behind the ordering tests below.
type failLog struct{ journal.Log }

func (failLog) Append(journal.Kind, []byte) (journal.RecordRef, error) {
	return journal.RecordRef{}, errors.New("injected journal failure")
}

// TestAppendJournalFailureLeavesMemoryClean pins the append handler's
// journal-before-apply order: when the journal write fails, the request
// fails 500 AND the points never become visible — before this ordering, a
// failed journal left the points readable in memory but absent from the
// log, so a restart silently shrank the dataset. The create path uses the
// opposite order (apply, journal, roll back on failure); both orders must
// leave memory and log agreeing.
func TestAppendJournalFailureLeavesMemoryClean(t *testing.T) {
	dir := t.TempDir()
	a, s := newAPI(t, Config{JournalDir: dir})

	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(100, 3, 3)},
		http.StatusCreated, nil)
	var before DatasetInfo
	a.do("GET", "/v1/datasets/tbl", nil, http.StatusOK, &before)

	s.mu.Lock()
	real := s.jnl
	s.jnl = failLog{real}
	s.mu.Unlock()

	// Journal-before-apply: the failed append must not mutate the dataset.
	a.do("POST", "/v1/datasets/tbl/points", appendPointsRequest{Points: testPoints(50, 2, 4)},
		http.StatusInternalServerError, nil)
	var after DatasetInfo
	a.do("GET", "/v1/datasets/tbl", nil, http.StatusOK, &after)
	if after.Points != before.Points || after.Version != before.Version {
		t.Fatalf("failed append mutated the dataset: %+v -> %+v", before, after)
	}

	// Apply-then-rollback on the create path: the failed registration must
	// not leave a dataset squatting on the name.
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl2", Points: testPoints(50, 2, 5)},
		http.StatusInternalServerError, nil)
	a.do("GET", "/v1/datasets/tbl2", nil, http.StatusNotFound, nil)

	s.mu.Lock()
	s.jnl = real
	s.mu.Unlock()

	// With the journal healthy again both paths work, and a restart agrees
	// with what clients were told: 100 + 50 points, one dataset.
	a.do("POST", "/v1/datasets/tbl/points", appendPointsRequest{Points: testPoints(50, 2, 4)},
		http.StatusOK, nil)
	s.Close()

	b, _ := newAPI(t, Config{JournalDir: dir})
	var replayed DatasetInfo
	b.do("GET", "/v1/datasets/tbl", nil, http.StatusOK, &replayed)
	if replayed.Points != 150 {
		t.Fatalf("replayed dataset: %+v", replayed)
	}
	b.do("GET", "/v1/datasets/tbl2", nil, http.StatusNotFound, nil)
}
