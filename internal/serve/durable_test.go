package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dpc/internal/journal"
)

// TestJournalReplayReServesResults: a server journals its datasets and
// finished jobs; a second server on the same journal dir re-serves the
// finished result bit for bit with zero recompute (the job arrives
// already done, marked Replayed).
func TestJournalReplayReServesResults(t *testing.T) {
	dir := t.TempDir()
	a, s1 := newAPI(t, Config{JournalDir: dir})

	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(300, 3, 7)},
		http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 3, T: 5, Seed: 42}, http.StatusAccepted, &job)
	done := waitJob(t, a, job.ID)
	if done.Status != StatusDone {
		t.Fatalf("job: %+v", done)
	}

	// Clean shutdown seals the journal before the next life opens it.
	s1.Close()

	b, s2 := newAPI(t, Config{JournalDir: dir})
	rec := s2.Recovery()
	if rec.Records == 0 || rec.JobsReplayed != 1 || !rec.Sealed || len(rec.Errors) != 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	// The dataset is back without re-ingest.
	var info DatasetInfo
	b.do("GET", "/v1/datasets/tbl", nil, http.StatusOK, &info)
	if info.Points != 300 {
		t.Fatalf("replayed dataset: %+v", info)
	}
	// The finished job is back, marked replayed, result identical.
	var again Job
	b.do("GET", "/v1/jobs/"+job.ID, nil, http.StatusOK, &again)
	if again.Status != StatusDone || !again.Replayed {
		t.Fatalf("replayed job: status %s, replayed %v", again.Status, again.Replayed)
	}
	if !reflect.DeepEqual(again.Result.Centers, done.Result.Centers) {
		t.Fatalf("replayed centers differ:\n  was %v\n  now %v", done.Result.Centers, again.Result.Centers)
	}
	// Zero recompute: the done counter counts this life's solves only.
	if got := s2.counters.jobsDone.Load(); got != 0 {
		t.Fatalf("jobsDone = %d after replay, want 0 (result must be re-served, not re-solved)", got)
	}
	// A fresh identical submission on the replayed registry still solves
	// to the same centers (the dataset really is bit-identical).
	var job2 Job
	b.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 3, T: 5, Seed: 42}, http.StatusAccepted, &job2)
	if redo := waitJob(t, b, job2.ID); !reflect.DeepEqual(redo.Result.Centers, done.Result.Centers) {
		t.Fatalf("re-solve on replayed dataset diverged")
	}
}

// TestJournalResumesQueuedJobs: a journal holding a submission without a
// finish (the crash signature — the process died before the job ran)
// replays into a queued job that then executes to completion.
func TestJournalResumesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	// Fabricate the crashed life's journal directly: dataset + submitted
	// job, no finish record, no seal.
	jl, _, err := journal.OpenFile(filepath.Join(dir, "dpc.wal"), false)
	if err != nil {
		t.Fatal(err)
	}
	put, _ := json.Marshal(walDataset{Name: "tbl", Kind: KindTable, Points: testPoints(200, 3, 3)})
	sub, _ := json.Marshal(walSubmit{ID: "job-000007", Spec: JobSpec{Dataset: "tbl", K: 3, T: 2, Seed: 1}, Submitted: time.Now()})
	if _, err := jl.Append(recDatasetPut, put); err != nil {
		t.Fatal(err)
	}
	if _, err := jl.Append(recJobSubmit, sub); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil { // crash: no seal
		t.Fatal(err)
	}

	a, s := newAPI(t, Config{JournalDir: dir})
	rec := s.Recovery()
	if rec.JobsResumed != 1 || rec.Sealed {
		t.Fatalf("recovery stats: %+v", rec)
	}
	job := waitJob(t, a, "job-000007")
	if job.Status != StatusDone || !job.Replayed {
		t.Fatalf("resumed job: %+v", job)
	}
	// The resumed id seeds the sequence: the next job must not collide.
	var next Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 2, T: 0}, http.StatusAccepted, &next)
	if next.ID <= "job-000007" {
		t.Fatalf("id %s did not advance past the resumed job", next.ID)
	}
}

// TestJournalCorruptionDegrades: a corrupt journal surfaces a typed error
// from NewChecked, but the server still comes up ready (journal-less) —
// serving beats not serving.
func TestJournalCorruptionDegrades(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "dpc.wal"), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewChecked(Config{JournalDir: dir})
	t.Cleanup(s.Close)
	if err == nil {
		t.Fatal("corrupt journal produced no error")
	}
	if !s.Ready() {
		t.Fatal("server not ready after degraded recovery")
	}
}

// TestJobTTLEvictsButJournalServes: the GC evicts finished jobs past the
// TTL from memory, and GetJob falls back to the journal so the result
// stays fetchable.
func TestJobTTLEvictsButJournalServes(t *testing.T) {
	dir := t.TempDir()
	a, s := newAPI(t, Config{JournalDir: dir, JobTTL: 50 * time.Millisecond})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(150, 2, 5)},
		http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tbl", K: 2, T: 1, Seed: 9}, http.StatusAccepted, &job)
	done := waitJob(t, a, job.ID)

	// Force the sweep deterministically instead of racing the ticker.
	s.sweep(time.Now().Add(time.Minute))
	if got := s.counters.jobsEvicted.Load(); got != 1 {
		t.Fatalf("jobsEvicted = %d, want 1", got)
	}
	s.mu.Lock()
	_, inMemory := s.jobs[job.ID]
	s.mu.Unlock()
	if inMemory {
		t.Fatal("job still in the in-memory store after eviction")
	}
	var again Job
	a.do("GET", "/v1/jobs/"+job.ID, nil, http.StatusOK, &again)
	if again.Status != StatusDone || !again.Replayed || !reflect.DeepEqual(again.Result.Centers, done.Result.Centers) {
		t.Fatalf("journal-served job: %+v", again)
	}
	// centers.csv flows through the same fallback.
	a.do("GET", "/v1/jobs/"+job.ID+"/centers.csv", nil, http.StatusOK, nil)
}

// TestQuotaRejects: per-client token buckets bounce the over-quota client
// with the stable 429 code while other clients sail through.
func TestQuotaRejects(t *testing.T) {
	a, s := newAPI(t, Config{QuotaBurst: 2, QuotaPerSec: 0.001})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(100, 2, 2)},
		http.StatusCreated, nil)
	spec := JobSpec{Dataset: "tbl", K: 2, T: 0, Client: "hog"}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(spec); err != ErrQuotaExceeded {
		t.Fatalf("third submit: %v, want ErrQuotaExceeded", err)
	}
	// Another client is unaffected by the hog's empty bucket.
	spec.Client = "quiet"
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("other client: %v", err)
	}
	// Over HTTP: 429 with the stable code; X-DPC-Client is the fallback
	// identity when the spec carries none.
	body, _ := json.Marshal(JobSpec{Dataset: "tbl", K: 2})
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest("POST", a.srv.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-DPC-Client", "hog")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e APIErrorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests || e.Code != CodeQuotaExceeded {
			t.Fatalf("hog request %d: status %d code %q, want 429 %q", i, resp.StatusCode, e.Code, CodeQuotaExceeded)
		}
	}
	if got := s.counters.jobsQuotaRejected.Load(); got < 4 {
		t.Fatalf("jobsQuotaRejected = %d, want >= 4", got)
	}
}

// TestPriorityClassesOrderDequeue: with one worker pinned by a running
// job, later submissions dequeue high before normal before low regardless
// of submission order.
func TestPriorityClassesOrderDequeue(t *testing.T) {
	a, s := newAPI(t, Config{MaxConcurrentJobs: 1})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "small", Points: testPoints(60, 2, 12)},
		http.StatusCreated, nil)

	// Pin the single worker deterministically (in-package tests may talk
	// to the pool directly).
	block := make(chan struct{})
	if err := s.pool.Submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}()

	// Queue low, then normal, then high while the worker is busy.
	ids := map[string]string{}
	for _, prio := range []string{PriorityLow, PriorityNormal, PriorityHigh} {
		var j Job
		a.do("POST", "/v1/jobs", JobSpec{Dataset: "small", K: 2, T: 0, Priority: prio}, http.StatusAccepted, &j)
		ids[prio] = j.ID
	}
	close(block)
	var started = map[string]time.Time{}
	for prio, id := range ids {
		j := waitJob(t, a, id)
		if j.Status != StatusDone || j.Started == nil {
			t.Fatalf("%s job: %+v", prio, j)
		}
		started[prio] = *j.Started
	}
	if !started[PriorityHigh].Before(started[PriorityNormal]) || !started[PriorityNormal].Before(started[PriorityLow]) {
		t.Fatalf("dequeue order wrong: high %v, normal %v, low %v",
			started[PriorityHigh], started[PriorityNormal], started[PriorityLow])
	}
}

// TestQueueDeadlineExpires: a queued job whose deadline passes while the
// only worker is busy fails with the stable code instead of running
// stale.
func TestQueueDeadlineExpires(t *testing.T) {
	a, s := newAPI(t, Config{MaxConcurrentJobs: 1})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "small", Points: testPoints(60, 2, 22)},
		http.StatusCreated, nil)
	block := make(chan struct{})
	if err := s.pool.Submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}

	var j Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "small", K: 2, T: 0, QueueTimeoutMS: 1}, http.StatusAccepted, &j)
	time.Sleep(10 * time.Millisecond) // let the 1ms deadline lapse while queued
	close(block)
	done := waitJob(t, a, j.ID)
	if done.Status != StatusFailed || done.ErrorCode != CodeQueueDeadline {
		t.Fatalf("expired job: status %s, code %q, want failed/%s", done.Status, done.ErrorCode, CodeQueueDeadline)
	}
	if got := s.counters.jobsExpired.Load(); got != 1 {
		t.Fatalf("jobsExpired = %d, want 1", got)
	}
}

// TestReadinessLifecycle: /livez answers from birth; /readyz (and every
// mutation) waits for Recover and flips off again at Shutdown.
func TestReadinessLifecycle(t *testing.T) {
	a, s := newAPI(t, Config{DeferRecovery: true})
	a.do("GET", "/livez", nil, http.StatusOK, nil)
	a.do("GET", "/readyz", nil, http.StatusServiceUnavailable, nil)
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(50, 2, 1)},
		http.StatusServiceUnavailable, nil)
	if _, err := s.Submit(JobSpec{Dataset: "tbl", K: 2}); err != ErrNotReady {
		t.Fatalf("submit before recovery: %v, want ErrNotReady", err)
	}

	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	a.do("GET", "/readyz", nil, http.StatusOK, nil)
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(50, 2, 1)},
		http.StatusCreated, nil)

	s.Close()
	if s.Ready() {
		t.Fatal("ready after shutdown")
	}
	a.do("GET", "/readyz", nil, http.StatusServiceUnavailable, nil)
	a.do("GET", "/livez", nil, http.StatusOK, nil)
}

// TestPriorityHeapOrder exercises the dispatch heap directly: rank
// ordering across classes, FIFO within one.
func TestPriorityHeapOrder(t *testing.T) {
	var q jobQueue
	q.push(queueEntry{id: "n1", rank: 1, seq: 1})
	q.push(queueEntry{id: "l1", rank: 0, seq: 2})
	q.push(queueEntry{id: "h1", rank: 2, seq: 3})
	q.push(queueEntry{id: "h2", rank: 2, seq: 4})
	q.push(queueEntry{id: "n2", rank: 1, seq: 5})
	q.remove("n2")
	want := []string{"h1", "h2", "n1", "l1"}
	for _, id := range want {
		e, ok := q.pop()
		if !ok || e.id != id {
			t.Fatalf("pop = %v %v, want %s", e, ok, id)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("heap not empty")
	}
}
