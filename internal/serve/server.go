package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpc/internal/dataio"
	"dpc/internal/journal"
	"dpc/internal/metric"
	"dpc/internal/par"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrentJobs bounds how many jobs solve at once (the rest wait
	// queued, FIFO). 0 means one per CPU.
	MaxConcurrentJobs int
	// QueueDepth bounds the waiting queue; a full queue rejects new jobs
	// with HTTP 503 (backpressure). 0 means 256.
	QueueDepth int
	// MaxCacheBytes bounds the shared distance-cache pool (LRU eviction).
	// 0 means 256 MiB.
	MaxCacheBytes int64
	// MaxBodyBytes bounds one HTTP request body. 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxJobs bounds how many finished jobs are retained for GET (oldest
	// finished jobs are pruned first). 0 means 4096.
	MaxJobs int
	// RegistryShards sets the dataset registry's segment count (0 means
	// serve.DefaultRegistrySegments; 1 degenerates to a single-lock
	// namespace — the measured baseline of cmd/dpc-loadgen).
	RegistryShards int
	// CacheDir, when set, enables warm-triangle spill/restore: filled
	// distance-cache cells persist there on Shutdown and are restored
	// (bit-identical, content-addressed) on the next start.
	CacheDir string
	// WarmOnRegister prefills every table dataset's shard caches in the
	// background after registration, on the scheduler's spare capacity.
	// Individual registrations can opt in with ?warm=true regardless.
	WarmOnRegister bool
	// WarmIndex additionally builds a pooled pivot index per shard during
	// background warmup, so the first indexed job finds its triangle bounds
	// precomputed. Datasets whose registration-time metric check found a
	// triangle violation are skipped (the index would degrade to full scans
	// anyway).
	WarmIndex bool
	// WarmPivots is the anchor count for warmup-built indexes (0 means
	// metric.DefaultPivots).
	WarmPivots int
	// Logf, when set, receives one-line server diagnostics (Printf-style):
	// the registration-time metric check report per dataset, for example.
	// Nil discards them.
	Logf func(format string, args ...any)
	// JournalDir, when set, enables the write-ahead journal: dataset
	// mutations, job submissions, transitions and finished results append
	// to rotating segment files (journal-000001.dpcj, …) under JournalDir,
	// and Recover replays them so a restarted server resumes its queue and
	// re-serves finished results with zero recompute. A directory holding
	// a pre-segmentation dpc.wal is migrated in place. Shutdown seals the
	// journal (clean-shutdown marker).
	JournalDir string
	// JournalSync fsyncs every journal append (power-loss durability). Off
	// by default: a process kill never loses acknowledged records either
	// way, only the machine dying can.
	JournalSync bool
	// SegmentBytes is the journal's segment-rotation threshold (0 = the
	// journal package's 64 MiB default). Smaller segments mean finer-
	// grained GC after a snapshot; the replica smoke uses tiny ones to
	// force multi-segment logs quickly.
	SegmentBytes int64
	// CompactEvery, when positive (and JournalDir is set), writes a
	// snapshot checkpoint on this cadence and GCs the segments it
	// supersedes, bounding both journal size and restart replay time.
	// Server.Compact (POST /v1/admin/compact) triggers one on demand
	// regardless.
	CompactEvery time.Duration
	// DeferRecovery skips replay inside NewChecked: the server starts
	// not-ready (mutations rejected with code "not_ready") until the
	// caller runs Recover — how cmd/dpc-server serves /livez while a large
	// journal replays in the background.
	DeferRecovery bool
	// JobTTL evicts finished jobs from the in-memory store this long after
	// they finish (0 = keep until the MaxJobs cap prunes them). Journaled
	// results remain fetchable after eviction via the journal.
	JobTTL time.Duration
	// QuotaBurst enables per-client admission quotas: each client may have
	// this many submissions in flight ahead of its refill budget before
	// Submit rejects with ErrQuotaExceeded (HTTP 429, code
	// "quota_exceeded"). 0 disables quotas.
	QuotaBurst int
	// QuotaPerSec is the per-client token refill rate when QuotaBurst is
	// set (0 means QuotaBurst tokens per second).
	QuotaPerSec float64
	// MaxQueueWait expires jobs still queued after this long with the
	// stable code "queue_deadline_exceeded" (0 = no server-wide deadline;
	// per-job QueueTimeoutMS still applies, and the tighter one wins).
	MaxQueueWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Server is the long-running clustering service: dataset registry, job
// store, bounded scheduler and HTTP API. Create with New, mount Handler on
// any http server, Shutdown (or Close) to drain.
type Server struct {
	cfg   Config
	reg   *Registry
	pool  *par.Pool
	mux   *http.ServeMux
	start time.Time

	// warm is the background-warmup accounting; warmCtx parents every
	// warmup task so a drain preempts them before the pool closes.
	warm       warmupState
	warmCtx    context.Context
	warmCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing and pruning
	seq      int
	draining bool
	queue    jobQueue // queued jobs in dispatch (priority) order
	qseq     int      // FIFO tiebreaker within a priority class
	quotas   *quotas  // per-client admission buckets (guarded by mu)

	// jnl is the write-ahead journal (nil when journaling is off);
	// jnlDir is its segment directory for read-side record lookups.
	// finishIdx maps finished job ids to the durable address of their
	// terminal record (or of the snapshot carrying them), so a fetch of a
	// TTL-evicted result reads one record instead of replaying the log;
	// compaction prunes entries whose records it GC'd. Guarded by mu.
	jnl       journal.Log
	jnlDir    string
	finishIdx map[string]journal.RecordRef
	ready     atomic.Bool
	recovery  RecoveryStats

	// snapMu is the snapshot barrier: dataset mutators hold it shared
	// across their {journal, apply} pair (never nested — journalAppend
	// itself does not take it), and Compact holds it exclusively across
	// {capture state, checkpoint}, so a snapshot plus its suffix always
	// replays to exactly the acknowledged state. Lock order: snapMu
	// before mu or any dataset lock.
	snapMu sync.RWMutex
	// compactedAt is the journalAppended count at the last snapshot; the
	// compaction loop skips a tick when nothing was appended since.
	compactedAt atomic.Int64

	spillOnce sync.Once
	sealOnce  sync.Once

	counters counters
}

// New creates a Server ready to accept requests. A configured CacheDir is
// read eagerly: spilled warm triangles stage for adoption before the first
// dataset registers (a missing file is fine; a corrupt one logs via the
// returned server's metrics as zero restores rather than failing startup —
// use NewChecked when the caller wants the error).
func New(cfg Config) *Server {
	s, _ := NewChecked(cfg)
	return s
}

// NewChecked is New, surfacing recovery errors (spill restore, journal
// replay). The server is usable even when the error is non-nil (it simply
// starts cold, and with a broken journal it runs journal-less). With
// DeferRecovery set, NewChecked returns a not-ready server immediately
// and the caller drives Recover itself.
func NewChecked(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		reg:       NewRegistrySharded(cfg.MaxCacheBytes, cfg.RegistryShards),
		pool:      par.NewPool(cfg.MaxConcurrentJobs, cfg.QueueDepth),
		jobs:      make(map[string]*Job),
		finishIdx: make(map[string]journal.RecordRef),
		quotas:    newQuotas(cfg.QuotaBurst, cfg.QuotaPerSec),
		start:     time.Now(),
	}
	s.reg.SetIndexWarmup(cfg.WarmIndex, cfg.WarmPivots)
	s.warmCtx, s.warmCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	if cfg.JobTTL > 0 || cfg.MaxQueueWait > 0 {
		go s.gcLoop()
	}
	if cfg.CompactEvery > 0 && cfg.JournalDir != "" {
		go s.compactLoop()
	}
	if cfg.DeferRecovery {
		return s, nil
	}
	return s, s.Recover()
}

// Recover stages the server's durable state — spilled warm triangles and
// the write-ahead journal — and flips the server ready. Until it returns,
// readiness reports false and every mutating call is rejected with
// ErrNotReady; liveness is unaffected, which is the point: a server
// replaying a big journal answers /livez while /readyz says "not yet".
//
// Journal replay re-registers datasets, restores finished jobs (results
// re-servable with zero recompute) and requeues journaled-but-unfinished
// jobs through the scheduler. A truncated tail is the expected crash
// signature and is repaired; a corrupt or unreadable journal is returned
// as an error and the server comes up ready but journal-less (serving is
// better than not serving, and the operator sees the error).
func (s *Server) Recover() error {
	var firstErr error
	if s.cfg.CacheDir != "" {
		if _, err := s.reg.LoadSpill(s.cfg.CacheDir); err != nil {
			firstErr = err
		}
	}
	if s.cfg.JournalDir != "" {
		jl, res, err := journal.OpenDir(s.cfg.JournalDir, journal.DirOptions{
			Sync:         s.cfg.JournalSync,
			SegmentBytes: s.cfg.SegmentBytes,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			// Install the log before replay: requeued jobs may start
			// executing immediately, and their start/finish transitions
			// must journal. Replay itself never journals (its records are
			// already in the log).
			s.mu.Lock()
			s.jnl, s.jnlDir = jl, s.cfg.JournalDir
			s.mu.Unlock()
			stats := s.applyWAL(res.Records)
			stats.Sealed = res.Sealed
			stats.Truncated = res.Truncated
			s.mu.Lock()
			s.recovery = stats
			s.mu.Unlock()
			// Finish an interrupted GC: a crash between Checkpoint and
			// DropBefore leaves superseded segments on disk; replay skipped
			// them, so drop them now.
			if stats.SnapshotSegment > 0 {
				if n, err := jl.DropBefore(stats.SnapshotSegment); err == nil {
					s.counters.segmentsGCd.Add(int64(n))
				}
			}
		}
	}
	s.ready.Store(true)
	return firstErr
}

// Ready reports whether the server accepts mutations (recovery finished,
// not draining).
func (s *Server) Ready() bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return s.ready.Load() && !draining
}

// Recovery returns the last journal replay's summary (zero before
// Recover, or without a journal).
func (s *Server) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Registry exposes the dataset registry (cmd/dpc-server registers remote
// datasets through it; tests inspect cache stats).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server with no deadline: new submissions are rejected,
// still-queued jobs are failed with a reason, and running jobs finish
// naturally. Use Shutdown to bound the drain with a deadline.
func (s *Server) Close() { s.Shutdown(context.Background()) }

// shutdownGrace bounds how long Shutdown waits for cancelled solves to
// notice their dead contexts after the drain deadline has already fired.
const shutdownGrace = 5 * time.Second

// Shutdown drains the server: it stops accepting submissions, marks every
// still-queued job failed with an explicit reason (instead of abandoning
// it or silently running it during shutdown), and waits for the running
// jobs. When ctx expires before they finish, their contexts are cancelled
// — each solve aborts at its next protocol round with ctx.Err() — and
// Shutdown returns ctx.Err() once they wind down (bounded by a short
// grace: a solve stuck in a non-preemptible section is abandoned to the
// process exit rather than blocking the shutdown indefinitely).
func (s *Server) Shutdown(ctx context.Context) error {
	// Readiness drops first so balancers stop routing here before the
	// drain starts rejecting.
	s.ready.Store(false)
	// Preempt background warmups first: they run on the same pool the
	// drain below waits for, and their half-filled caches spill just fine.
	s.warmCancel()
	// Whatever else happens, filled triangles spill exactly once on the
	// way out (SnapshotCells is atomic, so even an overstaying solve
	// cannot corrupt the spill), and the journal is sealed exactly once —
	// after the drain, so finishing jobs get their terminal records in
	// before the clean-shutdown marker.
	defer s.spillOnce.Do(s.spillCaches)
	defer s.sealOnce.Do(s.sealJournal)
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	var failed []*Job
	if !alreadyDraining {
		now := time.Now()
		for _, id := range s.order {
			j := s.jobs[id]
			if j.Status == StatusQueued {
				j.Status = StatusFailed
				j.Error = "serve: server shutting down before the job started"
				j.ErrorCode = CodeShuttingDown
				fin := now
				j.Finished = &fin
				s.counters.jobsFailed.Add(1)
				failed = append(failed, j)
			}
		}
		s.queue = nil // their heap entries are dead; drop them wholesale
	}
	s.mu.Unlock()
	// Journal the drain-failures: the sealed log must replay to the state
	// clients observed, not resurrect jobs they were told failed.
	for _, j := range failed {
		s.journalFinish(j)
	}

	// The queued pool tasks for the jobs failed above drain instantly
	// (execute refuses jobs that are no longer queued), so pool.Close
	// blocks only on genuinely running solves.
	drained := make(chan struct{})
	go func() {
		s.pool.Close()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	var swept []string
	s.mu.Lock()
	for _, id := range s.order {
		if j := s.jobs[id]; j.Status == StatusRunning && j.cancel != nil {
			j.cancel()
			swept = append(swept, id)
		}
	}
	s.mu.Unlock()
	// Cancelled solves abort at their next protocol round; a solve inside
	// a non-preemptible section (one coordinator-side solve, a stream
	// query) can overstay. Give the cancellations a bounded grace instead
	// of holding the shutdown hostage — the caller asked to be out by the
	// deadline, and the worker goroutines die with the process anyway.
	select {
	case <-drained:
	case <-time.After(shutdownGrace):
		return ctx.Err()
	}
	// The deadline fired, but the drain may still have completed cleanly
	// (the last job finished right at the deadline, or the cancel sweep
	// found nothing running). Report an incomplete drain only when the
	// sweep actually cut a job short.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range swept {
		if j, ok := s.jobs[id]; ok && j.Status == StatusCanceled {
			return ctx.Err()
		}
	}
	return nil
}

// spillCaches persists the registry's warm triangles to the configured
// cache directory (no-op without one). Failures are recorded as a skipped
// spill rather than failing the shutdown: the server is exiting either way
// and the next start simply runs cold.
func (s *Server) spillCaches() {
	if s.cfg.CacheDir == "" {
		return
	}
	s.reg.SaveSpill(s.cfg.CacheDir)
}

// WarmupStats snapshots the background-warmup progress (metrics/tests).
func (s *Server) WarmupStats() WarmupStats { return s.warm.snapshot() }

// warmDataset schedules a background prefill of a table dataset's shard
// caches on the job scheduler. Best effort by design: a full queue skips
// the warmup (jobs always win the capacity race), and a drain or eviction
// preempts it mid-fill.
func (s *Server) warmDataset(name string) {
	err := s.pool.Submit(func() {
		s.warm.started.Add(1)
		defer s.warm.done.Add(1)
		s.reg.WarmTable(s.warmCtx, name, 0, &s.warm.cellsDone, &s.warm.cellsTotal)
	})
	if err != nil {
		s.warm.skipped.Add(1)
	}
}

// wantWarm reports whether a successful table registration should kick a
// background warmup: the per-request ?warm=true opt-in, or the server-wide
// WarmOnRegister default (which ?warm=false overrides).
func (s *Server) wantWarm(r *http.Request) bool {
	switch r.URL.Query().Get("warm") {
	case "true", "1":
		return true
	case "false", "0":
		return false
	}
	return s.cfg.WarmOnRegister
}

// CancelJob cancels one job: a queued job fails immediately without
// running, a running job's context is cancelled so its solve aborts at the
// next protocol round. Finished jobs are left untouched (no error — cancel
// is idempotent against races with completion).
func (s *Server) CancelJob(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("serve: no job %q", id)
	}
	var finished bool
	switch j.Status {
	case StatusQueued:
		j.Status = StatusCanceled
		j.Error = "serve: canceled before the job started"
		now := time.Now()
		j.Finished = &now
		s.counters.jobsCanceled.Add(1)
		finished = true
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	view := *j
	s.mu.Unlock()
	if finished {
		// Terminal without passing through execute: journal it here so a
		// replay does not resurrect a job the client canceled.
		s.journalFinish(&view)
	}
	return view, nil
}

// routes wires the API surface.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	s.mux.HandleFunc("POST /v1/datasets/{name}/points", s.handleAppendPoints)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/centers.csv", s.handleJobCentersCSV)
	s.mux.HandleFunc("POST /v1/admin/compact", s.handleCompact)
}

// Stable machine-readable error codes of the /v1 API. Clients switch on
// the code, never on the human-readable message (which may change freely).
const (
	CodeBadRequest      = "bad_request"
	CodeDatasetNotFound = "dataset_not_found"
	CodeDatasetExists   = "dataset_exists"
	CodeJobNotFound     = "job_not_found"
	CodeJobNotReady     = "job_not_ready"
	CodeQueueFull       = "queue_full"
	CodeShuttingDown    = "shutting_down"
	// CodeNotReady marks a mutation rejected while the server is still
	// recovering (journal replay, cache staging); balancers retry another
	// replica, then this one once /readyz flips.
	CodeNotReady = "not_ready"
	// CodeQuotaExceeded marks a submission rejected by the per-client
	// admission quota (HTTP 429). Per-client, so not retried elsewhere.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeQueueDeadline marks a job that expired in the queue before a
	// worker picked it up.
	CodeQueueDeadline = "queue_deadline_exceeded"
	// CodeInternal marks a server-side fault (journal write failure) that
	// is neither the client's doing nor retryable elsewhere with different
	// expectations.
	CodeInternal = "internal"
)

// APIErrorBody is the JSON error envelope of every non-2xx response:
// a stable machine-readable code plus a human-readable message.
type APIErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// apiError writes the JSON error envelope.
func apiError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(APIErrorBody{Code: code, Error: err.Error()})
}

// registerError maps registration/lookup errors to (status, code):
// duplicate names are conflicts, unknown names are 404s, everything else
// is a bad request.
func registerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDatasetExists):
		apiError(w, http.StatusConflict, CodeDatasetExists, err)
	case errors.Is(err, ErrDatasetNotFound):
		apiError(w, http.StatusNotFound, CodeDatasetNotFound, err)
	default:
		apiError(w, http.StatusBadRequest, CodeBadRequest, err)
	}
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleHealthz is the legacy combined probe, kept for old scripts: alive
// plus a ready field. New deployments probe /livez and /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"ready":    s.Ready(),
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleLivez reports process liveness: it answers 200 the moment the
// HTTP listener is up, including while a large journal replays.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleReadyz reports readiness to take traffic: false (503) while
// recovery is staging and once a drain begins, so balancers and smoke
// scripts wait on state instead of sleeping.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		apiError(w, http.StatusServiceUnavailable, CodeNotReady, errors.New("serve: recovering or draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// notReady rejects a mutation on a not-ready server (503, code
// "not_ready"); reads stay available throughout recovery.
func (s *Server) notReady(w http.ResponseWriter) bool {
	if s.ready.Load() {
		return false
	}
	apiError(w, http.StatusServiceUnavailable, CodeNotReady, errors.New("serve: server recovering, retry shortly"))
	return true
}

// createDatasetRequest is the JSON body of POST /v1/datasets. A text/csv
// body registers a table dataset instead (or, with ?kind=uncertain, an
// uncertain dataset in dataio.ReadNodesCSV's row format), with the name
// taken from the ?name= query parameter.
type createDatasetRequest struct {
	Name   string      `json:"name"`
	Kind   DatasetKind `json:"kind,omitempty"` // table (default) | stream | uncertain
	Points [][]float64 `json:"points,omitempty"`
	// Uncertain-only: the distribution-valued nodes. Without Ground, each
	// node carries its own support Points and the ground set is their
	// concatenation, exactly as dataio.ReadNodesCSV builds it. With
	// Ground, nodes reference it by Support index instead — the exact
	// ground set is preserved (shared support points stay shared), which
	// is what the typed client sends so remote solves are byte-identical
	// to local ones on any instance.
	Ground [][]float64 `json:"ground,omitempty"`
	Nodes  []NodeWire  `json:"nodes,omitempty"`
	// Stream-only sketch shape.
	K     int   `json:"k,omitempty"`
	T     int   `json:"t,omitempty"`
	Chunk int   `json:"chunk,omitempty"`
	Means bool  `json:"means,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
}

// NodeWire is one uncertain node on the JSON API: probabilities paired
// with either inline support Points (coordinates; the ground set becomes
// their concatenation) or Support indices into the request's shared
// Ground. Probabilities are normalized server-side like the CSV reader's,
// except that already-normalized distributions pass through bit-identical.
type NodeWire struct {
	Points  [][]float64 `json:"points,omitempty"`
	Support []int       `json:"support,omitempty"`
	Probs   []float64   `json:"probs"`
}

// buildUncertain assembles a ground set and nodes from wire nodes. With
// an explicit ground, nodes must reference it by Support index and the
// set is preserved exactly; without one, each node's inline Points are
// appended in order (the CSV reader's semantics).
func buildUncertain(ground [][]float64, wire []NodeWire) (*uncertain.Ground, []uncertain.Node, error) {
	g := &uncertain.Ground{Pts: rowsToPoints(ground)}
	explicit := len(ground) > 0
	nodes := make([]uncertain.Node, 0, len(wire))
	for j, wn := range wire {
		var nd uncertain.Node
		switch {
		case explicit:
			if len(wn.Points) > 0 {
				return nil, nil, fmt.Errorf("serve: node %d carries inline points, but the request has an explicit ground set (use support indices)", j)
			}
			if len(wn.Support) == 0 || len(wn.Support) != len(wn.Probs) {
				return nil, nil, fmt.Errorf("serve: node %d has %d support indices and %d probabilities", j, len(wn.Support), len(wn.Probs))
			}
			nd.Support = append([]int(nil), wn.Support...)
			nd.Prob = append([]float64(nil), wn.Probs...)
		default:
			if len(wn.Support) > 0 {
				return nil, nil, fmt.Errorf("serve: node %d uses support indices, but the request has no ground set", j)
			}
			if len(wn.Points) == 0 || len(wn.Points) != len(wn.Probs) {
				return nil, nil, fmt.Errorf("serve: node %d has %d support points and %d probabilities", j, len(wn.Points), len(wn.Probs))
			}
			for _, row := range wn.Points {
				nd.Support = append(nd.Support, len(g.Pts))
				g.Pts = append(g.Pts, metric.Point(row))
			}
			nd.Prob = append([]float64(nil), wn.Probs...)
		}
		var tot float64
		for _, p := range nd.Prob {
			if p <= 0 {
				return nil, nil, fmt.Errorf("serve: node %d: probability %g out of range", j, p)
			}
			tot += p
		}
		// Normalize like the CSV reader — but only when actually needed:
		// probabilities that already sum to 1 pass through bit-identical,
		// so a client uploading normalized nodes gets byte-identical
		// results to solving them locally.
		if math.Abs(tot-1) > 1e-9 {
			for i := range nd.Prob {
				nd.Prob[i] /= tot
			}
		}
		nodes = append(nodes, nd)
	}
	return g, nodes, nil
}

func rowsToPoints(rows [][]float64) []metric.Point {
	pts := make([]metric.Point, len(rows))
	for i, row := range rows {
		pts[i] = metric.Point(row)
	}
	return pts
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	// Snapshot barrier: hold the registration and its journal records
	// together so a concurrent checkpoint never captures one without the
	// other (a dataset present in the snapshot AND re-registered by a
	// suffix record would fail replay as a duplicate).
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()

	// wd accumulates the registration's canonical journal form alongside
	// the registration itself; seed is a stream dataset's inline first
	// append (its own record, like any later append).
	var wd walDataset
	var seed [][]float64

	// CSV fast path: dataset lifecycle straight from a file upload.
	// ?kind=uncertain parses the node CSV format instead.
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		name := r.URL.Query().Get("name")
		var (
			d   *Dataset
			err error
		)
		switch kind := r.URL.Query().Get("kind"); kind {
		case "", string(KindTable):
			var pts []metric.Point
			if pts, err = dataio.ReadPointsCSV(body); err == nil {
				wd.Points = walTablePoints(pts)
				d, err = s.reg.RegisterTable(name, pts)
			}
		case string(KindUncertain):
			var g *uncertain.Ground
			var nodes []uncertain.Node
			if g, nodes, err = dataio.ReadNodesCSV(body); err == nil {
				wd.Ground, wd.Nodes = walUncertain(g, nodes)
				d, err = s.reg.RegisterUncertain(name, g, nodes)
			}
		default:
			err = fmt.Errorf("serve: CSV upload supports kind table or uncertain, not %q", kind)
		}
		if err != nil {
			registerError(w, err)
			return
		}
		s.finishCreateDataset(w, r, d, wd, nil)
		return
	}

	var req createDatasetRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("serve: bad dataset body: %w", err))
		return
	}
	var (
		d   *Dataset
		err error
	)
	switch req.Kind {
	case "", KindTable:
		wd.Points = req.Points
		d, err = s.reg.RegisterTable(req.Name, rowsToPoints(req.Points))
	case KindStream:
		wd.K, wd.T, wd.Chunk, wd.Means, wd.Seed = req.K, req.T, req.Chunk, req.Means, req.Seed
		d, err = s.reg.RegisterStream(req.Name, req.K, req.T, req.Chunk, req.Means, req.Seed)
		if err == nil && len(req.Points) > 0 {
			seed = req.Points
			if _, err = s.reg.Append(req.Name, rowsToPoints(req.Points)); err != nil {
				// Roll the registration back: a failed inline seed must not
				// leave an empty dataset squatting on the name.
				s.reg.Delete(req.Name)
			}
		}
	case KindUncertain:
		var g *uncertain.Ground
		var nodes []uncertain.Node
		if g, nodes, err = buildUncertain(req.Ground, req.Nodes); err == nil {
			wd.Ground, wd.Nodes = walUncertain(g, nodes)
			d, err = s.reg.RegisterUncertain(req.Name, g, nodes)
		}
	case KindRemote:
		err = errors.New("serve: remote datasets are registered by the server process (see dpc-server -sites-listen), not over the API")
	default:
		err = fmt.Errorf("serve: unknown dataset kind %q", req.Kind)
	}
	if err != nil {
		registerError(w, err)
		return
	}
	s.finishCreateDataset(w, r, d, wd, seed)
}

// finishCreateDataset journals a successful registration (rolling it back
// if the journal write fails — an unjournaled dataset would silently
// vanish on restart, which is worse than a loud 500 now), then kicks the
// optional warmup and answers 201.
func (s *Server) finishCreateDataset(w http.ResponseWriter, r *http.Request, d *Dataset, wd walDataset, seed [][]float64) {
	if err := s.journalDataset(d, wd); err != nil {
		s.reg.Delete(d.Name())
		apiError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	if len(seed) > 0 {
		if _, err := s.journalAppend(recDatasetAppend, walAppend{Name: d.Name(), Points: seed}); err != nil {
			s.reg.Delete(d.Name())
			apiError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
	}
	if d.Kind() == KindTable {
		// Surface the registration-time metric check once per dataset: a
		// triangle violation here is the signal that index pruning will be
		// disabled for jobs against this data.
		s.logf("dataset %s: %s", d.Name(), d.MetricReport())
		if s.wantWarm(r) {
			s.warmDataset(d.Name())
		}
	}
	writeJSON(w, http.StatusCreated, d.Info())
}

// logf forwards a diagnostic line to Config.Logf, or discards it.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d.Info())
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	// Snapshot barrier: the delete and its record stay on the same side of
	// any checkpoint (see handleCreateDataset).
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	name := r.PathValue("name")
	// Journal-before-apply: validate the target, land the delete record,
	// then drop the dataset. The old order (delete, then journal) left a
	// hole — a journal failure meant replay resurrected a dataset the
	// client was told is gone. If the apply races a concurrent delete the
	// journal holds a redundant record; replay tolerates delete-of-missing.
	if _, err := s.reg.Get(name); err != nil {
		registerError(w, err)
		return
	}
	if _, err := s.journalAppend(recDatasetDelete, walDelete{Name: name}); err != nil {
		apiError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	if err := s.reg.Delete(name); err != nil {
		registerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// appendPointsRequest is the JSON body of POST /v1/datasets/{name}/points;
// a text/csv body appends parsed CSV rows instead.
type appendPointsRequest struct {
	Points [][]float64 `json:"points"`
}

func (s *Server) handleAppendPoints(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	name := r.PathValue("name")

	var pts []metric.Point
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		parsed, err := dataio.ReadPointsCSV(body)
		if err != nil {
			apiError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		pts = parsed
	} else {
		var req appendPointsRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			apiError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("serve: bad points body: %w", err))
			return
		}
		pts = rowsToPoints(req.Points)
	}
	// Journal-before-apply under the snapshot barrier: the record lands
	// only after validation but before the points become visible, so a
	// journal failure leaves memory untouched (no acknowledged-but-
	// undurable append, and no unjournaled points squatting in the
	// dataset — appends have no rollback). AppendJournaled runs the hook
	// under the dataset lock, so record order equals apply order.
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	var jerr error
	info, err := s.reg.AppendJournaled(name, pts, func() error {
		_, jerr = s.journalAppend(recDatasetAppend, walAppend{Name: name, Points: pointsToRows(pts)})
		return jerr
	})
	if err != nil {
		if jerr != nil {
			apiError(w, http.StatusInternalServerError, CodeInternal, jerr)
			return
		}
		registerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Submit enqueues a job (the library entry point behind POST /v1/jobs).
// It validates the spec up front — bad specs and unknown datasets fail
// synchronously, a not-ready server returns ErrNotReady, an exhausted
// client quota ErrQuotaExceeded, a full queue par.ErrPoolFull — and
// returns the queued job's view.
func (s *Server) Submit(spec JobSpec) (Job, error) {
	if !s.ready.Load() {
		return Job{}, ErrNotReady
	}
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	if _, err := s.reg.Get(spec.Dataset); err != nil {
		return Job{}, err
	}

	now := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Job{}, par.ErrPoolClosed
	}
	if !s.quotas.take(spec.Client, now) {
		s.counters.jobsQuotaRejected.Add(1)
		s.mu.Unlock()
		return Job{}, ErrQuotaExceeded
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Spec:      spec,
		Status:    StatusQueued,
		Submitted: now,
		deadline:  queueDeadline(spec, now, s.cfg.MaxQueueWait),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.pruneLocked()
	s.mu.Unlock()

	// Journal the submission before the job becomes runnable: once a
	// worker can pick it up, its start/finish records may race ahead of
	// this one, and the log should read submit → start → finish.
	if _, err := s.journalAppend(recJobSubmit, walSubmit{ID: job.ID, Spec: spec, Submitted: now}); err != nil {
		s.mu.Lock()
		job.Status = StatusFailed
		job.Error = err.Error()
		job.ErrorCode = CodeInternal
		fin := time.Now()
		job.Finished = &fin
		s.counters.jobsRejected.Add(1)
		view := *job
		s.mu.Unlock()
		return view, err
	}

	s.mu.Lock()
	err := s.enqueueLocked(job)
	if err != nil {
		// A Shutdown racing this submission may have failed the queued job
		// already; keep that disposition (and its counter) instead of
		// double-counting it as rejected.
		if job.Status == StatusQueued {
			job.Status = StatusFailed
			job.Error = err.Error()
			fin := time.Now()
			job.Finished = &fin
			s.counters.jobsRejected.Add(1)
		}
		view := *job
		s.mu.Unlock()
		s.journalFinish(&view)
		return view, err
	}
	s.counters.jobsSubmitted.Add(1)
	view := *job
	s.mu.Unlock()
	return view, nil
}

// enqueueLocked makes a queued job runnable: its entry joins the priority
// heap and one dispatch task joins the pool (the 1:1 correspondence that
// keeps the pool's QueueDepth bounding the real queue). Called with s.mu
// held.
func (s *Server) enqueueLocked(job *Job) error {
	rank, _ := priorityRank(job.Spec.Priority) // validated at submit
	s.qseq++
	s.queue.push(queueEntry{id: job.ID, rank: rank, seq: s.qseq})
	if err := s.pool.Submit(s.runNext); err != nil {
		s.queue.remove(job.ID)
		return err
	}
	return nil
}

// runNext is the pool task behind every queued job: it pops the
// highest-priority runnable entry and executes it. Entries whose job was
// canceled, drained or expired while queued are skipped (some other
// entry's task already ran, or nothing remains); expired jobs fail here
// with the stable deadline code.
func (s *Server) runNext() {
	for {
		s.mu.Lock()
		e, ok := s.queue.pop()
		if !ok {
			s.mu.Unlock()
			return
		}
		job := s.jobs[e.id]
		if job == nil || job.Status != StatusQueued {
			s.mu.Unlock()
			continue
		}
		if s.expireLocked(job, time.Now()) {
			view := *job
			s.mu.Unlock()
			s.journalFinish(&view)
			continue
		}
		s.mu.Unlock()
		s.execute(job)
		return
	}
}

// expireLocked fails a queued job whose queue deadline has passed.
// Returns whether it expired. Called with s.mu held.
func (s *Server) expireLocked(job *Job, now time.Time) bool {
	if job.Status != StatusQueued || job.deadline.IsZero() || now.Before(job.deadline) {
		return false
	}
	job.Status = StatusFailed
	job.Error = fmt.Sprintf("serve: job %s expired after %v in queue", job.ID, now.Sub(job.Submitted).Round(time.Millisecond))
	job.ErrorCode = CodeQueueDeadline
	fin := now
	job.Finished = &fin
	s.counters.jobsFailed.Add(1)
	s.counters.jobsExpired.Add(1)
	return true
}

// execute runs one job on a pool worker and records the outcome. A panic
// anywhere in the solve fails that one job; a server absorbing arbitrary
// client-submitted work must never let one query kill the process. Each
// job runs under its own cancellable context so CancelJob and Shutdown can
// abort it between protocol rounds.
func (s *Server) execute(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if job.Status != StatusQueued {
		// Failed by a drain or cancelled while still queued; nothing to run.
		s.mu.Unlock()
		return
	}
	now := time.Now()
	job.Status = StatusRunning
	job.Started = &now
	job.cancel = cancel
	s.mu.Unlock()
	s.journalAppend(recJobStart, walStart{ID: job.ID, Started: now})

	res, err := func() (res *JobResult, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("serve: job panicked: %v", p)
			}
		}()
		return s.reg.run(ctx, job.Spec)
	}()

	s.mu.Lock()
	end := time.Now()
	job.Finished = &end
	job.cancel = nil
	canceled := err != nil && ctx.Err() != nil
	switch {
	case canceled:
		job.Status = StatusCanceled
		job.Error = fmt.Sprintf("serve: job canceled: %v", err)
	case err != nil:
		job.Status = StatusFailed
		job.Error = err.Error()
	default:
		job.Status = StatusDone
		job.Result = res
	}
	view := *job
	s.mu.Unlock()
	s.journalFinish(&view)
	switch {
	case canceled:
		s.counters.jobsCanceled.Add(1)
	case err != nil:
		s.counters.jobsFailed.Add(1)
	default:
		s.counters.jobsDone.Add(1)
	}
}

// journalFinish records a job's terminal state (no-op without a journal).
// The spec rides along so the finish record alone reconstructs the job
// after its in-memory entry is evicted; the record's durable address goes
// into the finish index so that lookup costs one record read.
func (s *Server) journalFinish(j *Job) {
	if j.Finished == nil {
		return
	}
	ref, err := s.journalAppend(recJobFinish, jobToWalFinish(j))
	if err == nil && ref.Seg > 0 {
		s.mu.Lock()
		s.finishIdx[j.ID] = ref
		s.mu.Unlock()
	}
}

// CompactStats summarizes one compaction pass (the POST /v1/admin/compact
// response body).
type CompactStats struct {
	// Segment is the fresh segment the snapshot checkpoint opened;
	// everything below it was superseded.
	Segment int `json:"segment"`
	// Datasets, Jobs and Queued count what the snapshot captured.
	Datasets int `json:"datasets"`
	Jobs     int `json:"jobs"`
	Queued   int `json:"queued"`
	// SegmentsRemoved is how many superseded segments this pass deleted;
	// Segments is how many remain on disk.
	SegmentsRemoved int `json:"segments_removed"`
	Segments        int `json:"segments"`
}

// Compact writes a snapshot checkpoint — the complete registry and job
// state as one record opening a fresh segment — and deletes the segments
// it supersedes. Replay after it restores from the snapshot plus the
// suffix behind it, so journal size and restart time stay bounded by live
// state, not by history. Requires a directory journal (ErrNoJournal-ish
// error otherwise); safe to call concurrently with serving traffic.
func (s *Server) Compact() (CompactStats, error) {
	s.mu.Lock()
	jnl := s.jnl
	s.mu.Unlock()
	comp, ok := jnl.(journal.Compactor)
	if !ok {
		return CompactStats{}, errors.New("serve: compaction requires a segmented journal (start with -journal-dir)")
	}
	// Read the append count before the snapshot: appends that land while
	// it is built count as new work for the next cadence check.
	appended := s.counters.journalAppended.Load()

	// Exclusive barrier: no {journal, apply} pair is in flight while the
	// state is captured and the checkpoint written, so snapshot + suffix
	// replays to exactly the acknowledged state. Job transitions don't
	// take the barrier — they apply before journaling, so the snapshot's
	// memory view is always a superset of any job record it supersedes,
	// and replay dedupes by job id.
	s.snapMu.Lock()
	snap := s.buildSnapshot()
	payload, err := json.Marshal(snap)
	if err != nil {
		s.snapMu.Unlock()
		return CompactStats{}, fmt.Errorf("serve: snapshot encode: %w", err)
	}
	ref, err := comp.Checkpoint(recSnapshot, payload)
	s.snapMu.Unlock()
	if err != nil {
		return CompactStats{}, fmt.Errorf("serve: snapshot checkpoint: %w", err)
	}
	s.counters.snapshots.Add(1)
	s.compactedAt.Store(appended)

	// Re-point the finish index before the GC: snapshot-carried jobs now
	// resolve via the checkpoint record; entries still referencing
	// soon-to-be-deleted segments are dropped (their jobs were TTL-evicted
	// before this snapshot, so their results leave the log with the
	// segments that held them).
	s.mu.Lock()
	for i := range snap.Jobs {
		s.finishIdx[snap.Jobs[i].ID] = ref
	}
	for id, r := range s.finishIdx {
		if r.Seg < ref.Seg {
			delete(s.finishIdx, id)
		}
	}
	s.mu.Unlock()

	removed, err := comp.DropBefore(ref.Seg)
	if err != nil {
		return CompactStats{}, fmt.Errorf("serve: segment GC: %w", err)
	}
	s.counters.segmentsGCd.Add(int64(removed))
	return CompactStats{
		Segment:  ref.Seg,
		Datasets: len(snap.Datasets),
		Jobs:     len(snap.Jobs),
		Queued:   len(snap.Queued),

		SegmentsRemoved: removed,
		Segments:        comp.Segments(),
	}, nil
}

// compactLoop drives the CompactEvery cadence: one compaction per tick,
// skipped while the server is still recovering or when nothing was
// journaled since the last snapshot (an idle server does not rewrite its
// checkpoint forever). Exits with warmCtx on Shutdown.
func (s *Server) compactLoop() {
	tick := time.NewTicker(s.cfg.CompactEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.warmCtx.Done():
			return
		case <-tick.C:
			if !s.ready.Load() {
				continue
			}
			if s.counters.journalAppended.Load() == s.compactedAt.Load() {
				continue
			}
			s.Compact()
		}
	}
}

// handleCompact triggers one on-demand compaction (POST /v1/admin/compact).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	stats, err := s.Compact()
	if err != nil {
		apiError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// sealJournal writes the clean-shutdown marker and closes the log.
func (s *Server) sealJournal() {
	s.mu.Lock()
	jnl := s.jnl
	s.mu.Unlock()
	if jnl != nil {
		jnl.Seal()
	}
}

// gcLoop is the store's maintenance sweep: it evicts finished jobs past
// their TTL (journaled results remain fetchable via jobFromJournal) and
// expires queued jobs past their deadline, so waiters see the terminal
// state promptly instead of at dequeue time. It exits with warmCtx on
// Shutdown.
func (s *Server) gcLoop() {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.warmCtx.Done():
			return
		case now := <-tick.C:
			s.sweep(now)
		}
	}
}

// sweep runs one GC pass at time now.
func (s *Server) sweep(now time.Time) {
	var expired []*Job
	s.mu.Lock()
	if s.cfg.JobTTL > 0 {
		keep := s.order[:0]
		for _, id := range s.order {
			j := s.jobs[id]
			if j.Finished != nil && now.Sub(*j.Finished) > s.cfg.JobTTL {
				delete(s.jobs, id)
				s.counters.jobsEvicted.Add(1)
				continue
			}
			keep = append(keep, id)
		}
		s.order = keep
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j.Status == StatusQueued && s.expireLocked(j, now) {
			view := *j
			expired = append(expired, &view)
		}
	}
	s.mu.Unlock()
	for _, j := range expired {
		s.journalFinish(j)
	}
}

// pruneLocked drops the oldest finished jobs above the retention cap.
func (s *Server) pruneLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusCanceled {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything retained is still queued or running
		}
	}
}

// GetJob returns a snapshot of the job by id. Jobs evicted from the
// in-memory store by the TTL GC are looked up in the journal — a
// journaled finished result stays fetchable for the log's lifetime.
func (s *Server) GetJob(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if ok {
		view := *j
		s.mu.Unlock()
		return view, nil
	}
	s.mu.Unlock()
	if j, ok := s.jobFromJournal(id); ok {
		return j, nil
	}
	return Job{}, fmt.Errorf("serve: no job %q", id)
}

// ListJobs returns snapshots of retained jobs in submission order.
func (s *Server) ListJobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	var spec JobSpec
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("serve: bad job body: %w", err))
		return
	}
	if spec.Client == "" {
		spec.Client = r.Header.Get("X-DPC-Client")
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrNotReady):
		apiError(w, http.StatusServiceUnavailable, CodeNotReady, errors.New("serve: server recovering, retry shortly"))
	case errors.Is(err, ErrQuotaExceeded):
		apiError(w, http.StatusTooManyRequests, CodeQuotaExceeded, fmt.Errorf("serve: client %q over its submission quota, retry later", spec.Client))
	case errors.Is(err, par.ErrPoolFull):
		apiError(w, http.StatusServiceUnavailable, CodeQueueFull, errors.New("serve: job queue full, retry later"))
	case errors.Is(err, par.ErrPoolClosed):
		apiError(w, http.StatusServiceUnavailable, CodeShuttingDown, errors.New("serve: server shutting down"))
	case errors.Is(err, ErrDatasetNotFound):
		apiError(w, http.StatusNotFound, CodeDatasetNotFound, err)
	case err != nil:
		apiError(w, http.StatusBadRequest, CodeBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.ListJobs()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.GetJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleCancelJob cancels a queued or running job; finished jobs are
// returned unchanged (cancel is idempotent).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.CancelJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobCentersCSV serves a finished job's centers in exactly the CSV
// format dpc-cluster writes, so `diff` against a CLI run is byte-exact.
func (s *Server) handleJobCentersCSV(w http.ResponseWriter, r *http.Request) {
	job, err := s.GetJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	if job.Status != StatusDone {
		apiError(w, http.StatusConflict, CodeJobNotReady, fmt.Errorf("serve: job %s is %s", job.ID, job.Status))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	dataio.WritePointsCSV(w, rowsToPoints(job.Result.Centers))
}

// RegisterRemote accepts `sites` persistent dpc-site connections on a TCP
// listener bound to addr and registers them as a remote dataset. It blocks
// until every site has joined (dpc-site retries dialing, so start order
// does not matter). The welcome blob is the persistent-mode marker; a
// non-persistent dpc-site pointed here fails its config decode loudly
// instead of hanging.
func (s *Server) RegisterRemote(name, addr string, sites int) (*Dataset, string, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return nil, "", err
	}
	defer l.Close()
	d, err := s.RegisterRemoteListener(name, l, sites)
	if err != nil {
		return nil, "", err
	}
	return d, l.Addr().String(), nil
}

// RegisterRemoteListener is RegisterRemote over an already-bound listener
// (tests bind to an ephemeral port first so the sites know where to dial
// before the accept loop starts). The caller owns closing l.
func (s *Server) RegisterRemoteListener(name string, l *transport.Listener, sites int) (*Dataset, error) {
	coord, err := l.Accept(sites, []byte(transport.JobsHello))
	if err != nil {
		return nil, err
	}
	d, err := s.reg.RegisterRemote(name, coord)
	if err != nil {
		coord.Close()
		return nil, err
	}
	return d, nil
}

// AddRemoteGroup accepts `sites` more persistent dpc-site connections on a
// TCP listener bound to addr and attaches them to the named remote dataset
// as an additional site group, so one dataset's jobs fan out over several
// independent fleets (see Registry.AddRemoteGroup for the site-numbering
// contract). Returns the bound listener address.
func (s *Server) AddRemoteGroup(name, addr string, sites int) (string, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return "", err
	}
	defer l.Close()
	coord, err := l.Accept(sites, []byte(transport.JobsHello))
	if err != nil {
		return "", err
	}
	if err := s.reg.AddRemoteGroup(name, coord); err != nil {
		coord.Close()
		return "", err
	}
	return l.Addr().String(), nil
}

// uptime reports seconds since start (metrics).
func (s *Server) uptime() float64 { return time.Since(s.start).Seconds() }
