package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"dpc/internal/dataio"
	"dpc/internal/metric"
	"dpc/internal/par"
	"dpc/internal/transport"
	"dpc/internal/uncertain"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrentJobs bounds how many jobs solve at once (the rest wait
	// queued, FIFO). 0 means one per CPU.
	MaxConcurrentJobs int
	// QueueDepth bounds the waiting queue; a full queue rejects new jobs
	// with HTTP 503 (backpressure). 0 means 256.
	QueueDepth int
	// MaxCacheBytes bounds the shared distance-cache pool (LRU eviction).
	// 0 means 256 MiB.
	MaxCacheBytes int64
	// MaxBodyBytes bounds one HTTP request body. 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxJobs bounds how many finished jobs are retained for GET (oldest
	// finished jobs are pruned first). 0 means 4096.
	MaxJobs int
	// RegistryShards sets the dataset registry's segment count (0 means
	// serve.DefaultRegistrySegments; 1 degenerates to a single-lock
	// namespace — the measured baseline of cmd/dpc-loadgen).
	RegistryShards int
	// CacheDir, when set, enables warm-triangle spill/restore: filled
	// distance-cache cells persist there on Shutdown and are restored
	// (bit-identical, content-addressed) on the next start.
	CacheDir string
	// WarmOnRegister prefills every table dataset's shard caches in the
	// background after registration, on the scheduler's spare capacity.
	// Individual registrations can opt in with ?warm=true regardless.
	WarmOnRegister bool
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Server is the long-running clustering service: dataset registry, job
// store, bounded scheduler and HTTP API. Create with New, mount Handler on
// any http server, Shutdown (or Close) to drain.
type Server struct {
	cfg   Config
	reg   *Registry
	pool  *par.Pool
	mux   *http.ServeMux
	start time.Time

	// warm is the background-warmup accounting; warmCtx parents every
	// warmup task so a drain preempts them before the pool closes.
	warm       warmupState
	warmCtx    context.Context
	warmCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing and pruning
	seq      int
	draining bool

	spillOnce sync.Once

	counters counters
}

// New creates a Server ready to accept requests. A configured CacheDir is
// read eagerly: spilled warm triangles stage for adoption before the first
// dataset registers (a missing file is fine; a corrupt one logs via the
// returned server's metrics as zero restores rather than failing startup —
// use NewChecked when the caller wants the error).
func New(cfg Config) *Server {
	s, _ := NewChecked(cfg)
	return s
}

// NewChecked is New, surfacing spill-restore errors. The server is usable
// even when the error is non-nil (it simply starts cold).
func NewChecked(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   NewRegistrySharded(cfg.MaxCacheBytes, cfg.RegistryShards),
		pool:  par.NewPool(cfg.MaxConcurrentJobs, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
		start: time.Now(),
	}
	s.warmCtx, s.warmCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	var err error
	if cfg.CacheDir != "" {
		_, err = s.reg.LoadSpill(cfg.CacheDir)
	}
	return s, err
}

// Registry exposes the dataset registry (cmd/dpc-server registers remote
// datasets through it; tests inspect cache stats).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server with no deadline: new submissions are rejected,
// still-queued jobs are failed with a reason, and running jobs finish
// naturally. Use Shutdown to bound the drain with a deadline.
func (s *Server) Close() { s.Shutdown(context.Background()) }

// shutdownGrace bounds how long Shutdown waits for cancelled solves to
// notice their dead contexts after the drain deadline has already fired.
const shutdownGrace = 5 * time.Second

// Shutdown drains the server: it stops accepting submissions, marks every
// still-queued job failed with an explicit reason (instead of abandoning
// it or silently running it during shutdown), and waits for the running
// jobs. When ctx expires before they finish, their contexts are cancelled
// — each solve aborts at its next protocol round with ctx.Err() — and
// Shutdown returns ctx.Err() once they wind down (bounded by a short
// grace: a solve stuck in a non-preemptible section is abandoned to the
// process exit rather than blocking the shutdown indefinitely).
func (s *Server) Shutdown(ctx context.Context) error {
	// Preempt background warmups first: they run on the same pool the
	// drain below waits for, and their half-filled caches spill just fine.
	s.warmCancel()
	// Whatever else happens, filled triangles spill exactly once on the
	// way out (SnapshotCells is atomic, so even an overstaying solve
	// cannot corrupt the spill).
	defer s.spillOnce.Do(s.spillCaches)
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	if !alreadyDraining {
		now := time.Now()
		for _, id := range s.order {
			j := s.jobs[id]
			if j.Status == StatusQueued {
				j.Status = StatusFailed
				j.Error = "serve: server shutting down before the job started"
				fin := now
				j.Finished = &fin
				s.counters.jobsFailed.Add(1)
			}
		}
	}
	s.mu.Unlock()

	// The queued pool tasks for the jobs failed above drain instantly
	// (execute refuses jobs that are no longer queued), so pool.Close
	// blocks only on genuinely running solves.
	drained := make(chan struct{})
	go func() {
		s.pool.Close()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	var swept []string
	s.mu.Lock()
	for _, id := range s.order {
		if j := s.jobs[id]; j.Status == StatusRunning && j.cancel != nil {
			j.cancel()
			swept = append(swept, id)
		}
	}
	s.mu.Unlock()
	// Cancelled solves abort at their next protocol round; a solve inside
	// a non-preemptible section (one coordinator-side solve, a stream
	// query) can overstay. Give the cancellations a bounded grace instead
	// of holding the shutdown hostage — the caller asked to be out by the
	// deadline, and the worker goroutines die with the process anyway.
	select {
	case <-drained:
	case <-time.After(shutdownGrace):
		return ctx.Err()
	}
	// The deadline fired, but the drain may still have completed cleanly
	// (the last job finished right at the deadline, or the cancel sweep
	// found nothing running). Report an incomplete drain only when the
	// sweep actually cut a job short.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range swept {
		if j, ok := s.jobs[id]; ok && j.Status == StatusCanceled {
			return ctx.Err()
		}
	}
	return nil
}

// spillCaches persists the registry's warm triangles to the configured
// cache directory (no-op without one). Failures are recorded as a skipped
// spill rather than failing the shutdown: the server is exiting either way
// and the next start simply runs cold.
func (s *Server) spillCaches() {
	if s.cfg.CacheDir == "" {
		return
	}
	s.reg.SaveSpill(s.cfg.CacheDir)
}

// WarmupStats snapshots the background-warmup progress (metrics/tests).
func (s *Server) WarmupStats() WarmupStats { return s.warm.snapshot() }

// warmDataset schedules a background prefill of a table dataset's shard
// caches on the job scheduler. Best effort by design: a full queue skips
// the warmup (jobs always win the capacity race), and a drain or eviction
// preempts it mid-fill.
func (s *Server) warmDataset(name string) {
	err := s.pool.Submit(func() {
		s.warm.started.Add(1)
		defer s.warm.done.Add(1)
		s.reg.WarmTable(s.warmCtx, name, 0, &s.warm.cellsDone, &s.warm.cellsTotal)
	})
	if err != nil {
		s.warm.skipped.Add(1)
	}
}

// wantWarm reports whether a successful table registration should kick a
// background warmup: the per-request ?warm=true opt-in, or the server-wide
// WarmOnRegister default (which ?warm=false overrides).
func (s *Server) wantWarm(r *http.Request) bool {
	switch r.URL.Query().Get("warm") {
	case "true", "1":
		return true
	case "false", "0":
		return false
	}
	return s.cfg.WarmOnRegister
}

// CancelJob cancels one job: a queued job fails immediately without
// running, a running job's context is cancelled so its solve aborts at the
// next protocol round. Finished jobs are left untouched (no error — cancel
// is idempotent against races with completion).
func (s *Server) CancelJob(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("serve: no job %q", id)
	}
	switch j.Status {
	case StatusQueued:
		j.Status = StatusCanceled
		j.Error = "serve: canceled before the job started"
		now := time.Now()
		j.Finished = &now
		s.counters.jobsCanceled.Add(1)
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return *j, nil
}

// routes wires the API surface.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	s.mux.HandleFunc("POST /v1/datasets/{name}/points", s.handleAppendPoints)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/centers.csv", s.handleJobCentersCSV)
}

// Stable machine-readable error codes of the /v1 API. Clients switch on
// the code, never on the human-readable message (which may change freely).
const (
	CodeBadRequest      = "bad_request"
	CodeDatasetNotFound = "dataset_not_found"
	CodeDatasetExists   = "dataset_exists"
	CodeJobNotFound     = "job_not_found"
	CodeJobNotReady     = "job_not_ready"
	CodeQueueFull       = "queue_full"
	CodeShuttingDown    = "shutting_down"
)

// APIErrorBody is the JSON error envelope of every non-2xx response:
// a stable machine-readable code plus a human-readable message.
type APIErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// apiError writes the JSON error envelope.
func apiError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(APIErrorBody{Code: code, Error: err.Error()})
}

// registerError maps registration/lookup errors to (status, code):
// duplicate names are conflicts, unknown names are 404s, everything else
// is a bad request.
func registerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDatasetExists):
		apiError(w, http.StatusConflict, CodeDatasetExists, err)
	case errors.Is(err, ErrDatasetNotFound):
		apiError(w, http.StatusNotFound, CodeDatasetNotFound, err)
	default:
		apiError(w, http.StatusBadRequest, CodeBadRequest, err)
	}
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// createDatasetRequest is the JSON body of POST /v1/datasets. A text/csv
// body registers a table dataset instead (or, with ?kind=uncertain, an
// uncertain dataset in dataio.ReadNodesCSV's row format), with the name
// taken from the ?name= query parameter.
type createDatasetRequest struct {
	Name   string      `json:"name"`
	Kind   DatasetKind `json:"kind,omitempty"` // table (default) | stream | uncertain
	Points [][]float64 `json:"points,omitempty"`
	// Uncertain-only: the distribution-valued nodes. Without Ground, each
	// node carries its own support Points and the ground set is their
	// concatenation, exactly as dataio.ReadNodesCSV builds it. With
	// Ground, nodes reference it by Support index instead — the exact
	// ground set is preserved (shared support points stay shared), which
	// is what the typed client sends so remote solves are byte-identical
	// to local ones on any instance.
	Ground [][]float64 `json:"ground,omitempty"`
	Nodes  []NodeWire  `json:"nodes,omitempty"`
	// Stream-only sketch shape.
	K     int   `json:"k,omitempty"`
	T     int   `json:"t,omitempty"`
	Chunk int   `json:"chunk,omitempty"`
	Means bool  `json:"means,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
}

// NodeWire is one uncertain node on the JSON API: probabilities paired
// with either inline support Points (coordinates; the ground set becomes
// their concatenation) or Support indices into the request's shared
// Ground. Probabilities are normalized server-side like the CSV reader's,
// except that already-normalized distributions pass through bit-identical.
type NodeWire struct {
	Points  [][]float64 `json:"points,omitempty"`
	Support []int       `json:"support,omitempty"`
	Probs   []float64   `json:"probs"`
}

// buildUncertain assembles a ground set and nodes from wire nodes. With
// an explicit ground, nodes must reference it by Support index and the
// set is preserved exactly; without one, each node's inline Points are
// appended in order (the CSV reader's semantics).
func buildUncertain(ground [][]float64, wire []NodeWire) (*uncertain.Ground, []uncertain.Node, error) {
	g := &uncertain.Ground{Pts: rowsToPoints(ground)}
	explicit := len(ground) > 0
	nodes := make([]uncertain.Node, 0, len(wire))
	for j, wn := range wire {
		var nd uncertain.Node
		switch {
		case explicit:
			if len(wn.Points) > 0 {
				return nil, nil, fmt.Errorf("serve: node %d carries inline points, but the request has an explicit ground set (use support indices)", j)
			}
			if len(wn.Support) == 0 || len(wn.Support) != len(wn.Probs) {
				return nil, nil, fmt.Errorf("serve: node %d has %d support indices and %d probabilities", j, len(wn.Support), len(wn.Probs))
			}
			nd.Support = append([]int(nil), wn.Support...)
			nd.Prob = append([]float64(nil), wn.Probs...)
		default:
			if len(wn.Support) > 0 {
				return nil, nil, fmt.Errorf("serve: node %d uses support indices, but the request has no ground set", j)
			}
			if len(wn.Points) == 0 || len(wn.Points) != len(wn.Probs) {
				return nil, nil, fmt.Errorf("serve: node %d has %d support points and %d probabilities", j, len(wn.Points), len(wn.Probs))
			}
			for _, row := range wn.Points {
				nd.Support = append(nd.Support, len(g.Pts))
				g.Pts = append(g.Pts, metric.Point(row))
			}
			nd.Prob = append([]float64(nil), wn.Probs...)
		}
		var tot float64
		for _, p := range nd.Prob {
			if p <= 0 {
				return nil, nil, fmt.Errorf("serve: node %d: probability %g out of range", j, p)
			}
			tot += p
		}
		// Normalize like the CSV reader — but only when actually needed:
		// probabilities that already sum to 1 pass through bit-identical,
		// so a client uploading normalized nodes gets byte-identical
		// results to solving them locally.
		if math.Abs(tot-1) > 1e-9 {
			for i := range nd.Prob {
				nd.Prob[i] /= tot
			}
		}
		nodes = append(nodes, nd)
	}
	return g, nodes, nil
}

func rowsToPoints(rows [][]float64) []metric.Point {
	pts := make([]metric.Point, len(rows))
	for i, row := range rows {
		pts[i] = metric.Point(row)
	}
	return pts
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()

	// CSV fast path: dataset lifecycle straight from a file upload.
	// ?kind=uncertain parses the node CSV format instead.
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		name := r.URL.Query().Get("name")
		var (
			d   *Dataset
			err error
		)
		switch kind := r.URL.Query().Get("kind"); kind {
		case "", string(KindTable):
			var pts []metric.Point
			if pts, err = dataio.ReadPointsCSV(body); err == nil {
				d, err = s.reg.RegisterTable(name, pts)
			}
		case string(KindUncertain):
			var g *uncertain.Ground
			var nodes []uncertain.Node
			if g, nodes, err = dataio.ReadNodesCSV(body); err == nil {
				d, err = s.reg.RegisterUncertain(name, g, nodes)
			}
		default:
			err = fmt.Errorf("serve: CSV upload supports kind table or uncertain, not %q", kind)
		}
		if err != nil {
			registerError(w, err)
			return
		}
		if d.Kind() == KindTable && s.wantWarm(r) {
			s.warmDataset(d.Name())
		}
		writeJSON(w, http.StatusCreated, d.Info())
		return
	}

	var req createDatasetRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("serve: bad dataset body: %w", err))
		return
	}
	var (
		d   *Dataset
		err error
	)
	switch req.Kind {
	case "", KindTable:
		d, err = s.reg.RegisterTable(req.Name, rowsToPoints(req.Points))
	case KindStream:
		d, err = s.reg.RegisterStream(req.Name, req.K, req.T, req.Chunk, req.Means, req.Seed)
		if err == nil && len(req.Points) > 0 {
			if _, err = s.reg.Append(req.Name, rowsToPoints(req.Points)); err != nil {
				// Roll the registration back: a failed inline seed must not
				// leave an empty dataset squatting on the name.
				s.reg.Delete(req.Name)
			}
		}
	case KindUncertain:
		var g *uncertain.Ground
		var nodes []uncertain.Node
		if g, nodes, err = buildUncertain(req.Ground, req.Nodes); err == nil {
			d, err = s.reg.RegisterUncertain(req.Name, g, nodes)
		}
	case KindRemote:
		err = errors.New("serve: remote datasets are registered by the server process (see dpc-server -sites-listen), not over the API")
	default:
		err = fmt.Errorf("serve: unknown dataset kind %q", req.Kind)
	}
	if err != nil {
		registerError(w, err)
		return
	}
	if d.Kind() == KindTable && s.wantWarm(r) {
		s.warmDataset(d.Name())
	}
	writeJSON(w, http.StatusCreated, d.Info())
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d.Info())
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("name")); err != nil {
		registerError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// appendPointsRequest is the JSON body of POST /v1/datasets/{name}/points;
// a text/csv body appends parsed CSV rows instead.
type appendPointsRequest struct {
	Points [][]float64 `json:"points"`
}

func (s *Server) handleAppendPoints(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	name := r.PathValue("name")

	var pts []metric.Point
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		parsed, err := dataio.ReadPointsCSV(body)
		if err != nil {
			apiError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
		pts = parsed
	} else {
		var req appendPointsRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			apiError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("serve: bad points body: %w", err))
			return
		}
		pts = rowsToPoints(req.Points)
	}
	info, err := s.reg.Append(name, pts)
	if err != nil {
		registerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Submit enqueues a job (the library entry point behind POST /v1/jobs).
// It validates the spec up front — bad specs and unknown datasets fail
// synchronously, a full queue returns par.ErrPoolFull — and returns the
// queued job's view.
func (s *Server) Submit(spec JobSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	if _, err := s.reg.Get(spec.Dataset); err != nil {
		return Job{}, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Job{}, par.ErrPoolClosed
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Spec:      spec,
		Status:    StatusQueued,
		Submitted: time.Now(),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.pruneLocked()
	s.mu.Unlock()

	err := s.pool.Submit(func() { s.execute(job) })
	if err != nil {
		s.mu.Lock()
		// A Shutdown racing this submission may have failed the queued job
		// already; keep that disposition (and its counter) instead of
		// double-counting it as rejected.
		if job.Status == StatusQueued {
			job.Status = StatusFailed
			job.Error = err.Error()
			now := time.Now()
			job.Finished = &now
			s.counters.jobsRejected.Add(1)
		}
		view := *job
		s.mu.Unlock()
		return view, err
	}
	s.counters.jobsSubmitted.Add(1)
	s.mu.Lock()
	view := *job
	s.mu.Unlock()
	return view, nil
}

// execute runs one job on a pool worker and records the outcome. A panic
// anywhere in the solve fails that one job; a server absorbing arbitrary
// client-submitted work must never let one query kill the process. Each
// job runs under its own cancellable context so CancelJob and Shutdown can
// abort it between protocol rounds.
func (s *Server) execute(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if job.Status != StatusQueued {
		// Failed by a drain or cancelled while still queued; nothing to run.
		s.mu.Unlock()
		return
	}
	now := time.Now()
	job.Status = StatusRunning
	job.Started = &now
	job.cancel = cancel
	s.mu.Unlock()

	res, err := func() (res *JobResult, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("serve: job panicked: %v", p)
			}
		}()
		return s.reg.run(ctx, job.Spec)
	}()

	s.mu.Lock()
	end := time.Now()
	job.Finished = &end
	job.cancel = nil
	canceled := err != nil && ctx.Err() != nil
	switch {
	case canceled:
		job.Status = StatusCanceled
		job.Error = fmt.Sprintf("serve: job canceled: %v", err)
	case err != nil:
		job.Status = StatusFailed
		job.Error = err.Error()
	default:
		job.Status = StatusDone
		job.Result = res
	}
	s.mu.Unlock()
	switch {
	case canceled:
		s.counters.jobsCanceled.Add(1)
	case err != nil:
		s.counters.jobsFailed.Add(1)
	default:
		s.counters.jobsDone.Add(1)
	}
}

// pruneLocked drops the oldest finished jobs above the retention cap.
func (s *Server) pruneLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusCanceled {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything retained is still queued or running
		}
	}
}

// GetJob returns a snapshot of the job by id.
func (s *Server) GetJob(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("serve: no job %q", id)
	}
	return *j, nil
}

// ListJobs returns snapshots of retained jobs in submission order.
func (s *Server) ListJobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	var spec JobSpec
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("serve: bad job body: %w", err))
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, par.ErrPoolFull):
		apiError(w, http.StatusServiceUnavailable, CodeQueueFull, errors.New("serve: job queue full, retry later"))
	case errors.Is(err, par.ErrPoolClosed):
		apiError(w, http.StatusServiceUnavailable, CodeShuttingDown, errors.New("serve: server shutting down"))
	case errors.Is(err, ErrDatasetNotFound):
		apiError(w, http.StatusNotFound, CodeDatasetNotFound, err)
	case err != nil:
		apiError(w, http.StatusBadRequest, CodeBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.ListJobs()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.GetJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleCancelJob cancels a queued or running job; finished jobs are
// returned unchanged (cancel is idempotent).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.CancelJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobCentersCSV serves a finished job's centers in exactly the CSV
// format dpc-cluster writes, so `diff` against a CLI run is byte-exact.
func (s *Server) handleJobCentersCSV(w http.ResponseWriter, r *http.Request) {
	job, err := s.GetJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	if job.Status != StatusDone {
		apiError(w, http.StatusConflict, CodeJobNotReady, fmt.Errorf("serve: job %s is %s", job.ID, job.Status))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	dataio.WritePointsCSV(w, rowsToPoints(job.Result.Centers))
}

// RegisterRemote accepts `sites` persistent dpc-site connections on a TCP
// listener bound to addr and registers them as a remote dataset. It blocks
// until every site has joined (dpc-site retries dialing, so start order
// does not matter). The welcome blob is the persistent-mode marker; a
// non-persistent dpc-site pointed here fails its config decode loudly
// instead of hanging.
func (s *Server) RegisterRemote(name, addr string, sites int) (*Dataset, string, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return nil, "", err
	}
	defer l.Close()
	d, err := s.RegisterRemoteListener(name, l, sites)
	if err != nil {
		return nil, "", err
	}
	return d, l.Addr().String(), nil
}

// RegisterRemoteListener is RegisterRemote over an already-bound listener
// (tests bind to an ephemeral port first so the sites know where to dial
// before the accept loop starts). The caller owns closing l.
func (s *Server) RegisterRemoteListener(name string, l *transport.Listener, sites int) (*Dataset, error) {
	coord, err := l.Accept(sites, []byte(transport.JobsHello))
	if err != nil {
		return nil, err
	}
	d, err := s.reg.RegisterRemote(name, coord)
	if err != nil {
		coord.Close()
		return nil, err
	}
	return d, nil
}

// AddRemoteGroup accepts `sites` more persistent dpc-site connections on a
// TCP listener bound to addr and attaches them to the named remote dataset
// as an additional site group, so one dataset's jobs fan out over several
// independent fleets (see Registry.AddRemoteGroup for the site-numbering
// contract). Returns the bound listener address.
func (s *Server) AddRemoteGroup(name, addr string, sites int) (string, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return "", err
	}
	defer l.Close()
	coord, err := l.Accept(sites, []byte(transport.JobsHello))
	if err != nil {
		return "", err
	}
	if err := s.reg.AddRemoteGroup(name, coord); err != nil {
		coord.Close()
		return "", err
	}
	return l.Addr().String(), nil
}

// uptime reports seconds since start (metrics).
func (s *Server) uptime() float64 { return time.Since(s.start).Seconds() }
