package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"dpc/internal/dataio"
	"dpc/internal/metric"
	"dpc/internal/par"
	"dpc/internal/transport"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrentJobs bounds how many jobs solve at once (the rest wait
	// queued, FIFO). 0 means one per CPU.
	MaxConcurrentJobs int
	// QueueDepth bounds the waiting queue; a full queue rejects new jobs
	// with HTTP 503 (backpressure). 0 means 256.
	QueueDepth int
	// MaxCacheBytes bounds the shared distance-cache pool (LRU eviction).
	// 0 means 256 MiB.
	MaxCacheBytes int64
	// MaxBodyBytes bounds one HTTP request body. 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxJobs bounds how many finished jobs are retained for GET (oldest
	// finished jobs are pruned first). 0 means 4096.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Server is the long-running clustering service: dataset registry, job
// store, bounded scheduler and HTTP API. Create with New, mount Handler on
// any http server, Close to drain.
type Server struct {
	cfg   Config
	reg   *Registry
	pool  *par.Pool
	mux   *http.ServeMux
	start time.Time

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing and pruning
	seq   int

	counters counters
}

// New creates a Server ready to accept requests.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   NewRegistry(cfg.MaxCacheBytes),
		pool:  par.NewPool(cfg.MaxConcurrentJobs, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
		start: time.Now(),
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Registry exposes the dataset registry (cmd/dpc-server registers remote
// datasets through it; tests inspect cache stats).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the scheduler after draining queued and running jobs.
func (s *Server) Close() { s.pool.Close() }

// routes wires the API surface.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	s.mux.HandleFunc("POST /v1/datasets/{name}/points", s.handleAppendPoints)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/centers.csv", s.handleJobCentersCSV)
}

// apiError is the JSON error envelope.
func apiError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// createDatasetRequest is the JSON body of POST /v1/datasets. A text/csv
// body registers a table dataset instead, with the name taken from the
// ?name= query parameter.
type createDatasetRequest struct {
	Name   string      `json:"name"`
	Kind   DatasetKind `json:"kind,omitempty"` // table (default) | stream
	Points [][]float64 `json:"points,omitempty"`
	// Stream-only sketch shape.
	K     int   `json:"k,omitempty"`
	T     int   `json:"t,omitempty"`
	Chunk int   `json:"chunk,omitempty"`
	Means bool  `json:"means,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
}

func rowsToPoints(rows [][]float64) []metric.Point {
	pts := make([]metric.Point, len(rows))
	for i, row := range rows {
		pts[i] = metric.Point(row)
	}
	return pts
}

func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()

	// CSV fast path: dataset lifecycle straight from a file upload.
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		name := r.URL.Query().Get("name")
		pts, err := dataio.ReadPointsCSV(body)
		if err != nil {
			apiError(w, http.StatusBadRequest, err)
			return
		}
		d, err := s.reg.RegisterTable(name, pts)
		if err != nil {
			apiError(w, registerStatus(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, d.Info())
		return
	}

	var req createDatasetRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("serve: bad dataset body: %w", err))
		return
	}
	var (
		d   *Dataset
		err error
	)
	switch req.Kind {
	case "", KindTable:
		d, err = s.reg.RegisterTable(req.Name, rowsToPoints(req.Points))
	case KindStream:
		d, err = s.reg.RegisterStream(req.Name, req.K, req.T, req.Chunk, req.Means, req.Seed)
		if err == nil && len(req.Points) > 0 {
			if _, err = s.reg.Append(req.Name, rowsToPoints(req.Points)); err != nil {
				// Roll the registration back: a failed inline seed must not
				// leave an empty dataset squatting on the name.
				s.reg.Delete(req.Name)
			}
		}
	case KindRemote:
		err = errors.New("serve: remote datasets are registered by the server process (see dpc-server -sites-listen), not over the API")
	default:
		err = fmt.Errorf("serve: unknown dataset kind %q", req.Kind)
	}
	if err != nil {
		apiError(w, registerStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, d.Info())
}

// registerStatus maps registration errors to status codes: duplicate names
// are conflicts, everything else is a bad request.
func registerStatus(err error) int {
	if errors.Is(err, ErrDatasetExists) {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		apiError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, d.Info())
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("name")); err != nil {
		apiError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// appendPointsRequest is the JSON body of POST /v1/datasets/{name}/points;
// a text/csv body appends parsed CSV rows instead.
type appendPointsRequest struct {
	Points [][]float64 `json:"points"`
}

func (s *Server) handleAppendPoints(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	name := r.PathValue("name")

	var pts []metric.Point
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		parsed, err := dataio.ReadPointsCSV(body)
		if err != nil {
			apiError(w, http.StatusBadRequest, err)
			return
		}
		pts = parsed
	} else {
		var req appendPointsRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			apiError(w, http.StatusBadRequest, fmt.Errorf("serve: bad points body: %w", err))
			return
		}
		pts = rowsToPoints(req.Points)
	}
	info, err := s.reg.Append(name, pts)
	if err != nil {
		apiError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Submit enqueues a job (the library entry point behind POST /v1/jobs).
// It validates the spec up front — bad specs and unknown datasets fail
// synchronously, a full queue returns par.ErrPoolFull — and returns the
// queued job's view.
func (s *Server) Submit(spec JobSpec) (Job, error) {
	if _, err := spec.coreConfig(); err != nil {
		return Job{}, err
	}
	if spec.K <= 0 {
		return Job{}, fmt.Errorf("serve: job k = %d, must be positive", spec.K)
	}
	if spec.T < 0 {
		return Job{}, fmt.Errorf("serve: job t = %d, must be non-negative", spec.T)
	}
	if spec.Sites < 0 || spec.Sites > MaxJobSites {
		return Job{}, fmt.Errorf("serve: job sites = %d, must be in [0, %d]", spec.Sites, MaxJobSites)
	}
	if _, err := s.reg.Get(spec.Dataset); err != nil {
		return Job{}, err
	}

	s.mu.Lock()
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Spec:      spec,
		Status:    StatusQueued,
		Submitted: time.Now(),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.pruneLocked()
	s.mu.Unlock()

	err := s.pool.Submit(func() { s.execute(job) })
	if err != nil {
		s.mu.Lock()
		job.Status = StatusFailed
		job.Error = err.Error()
		now := time.Now()
		job.Finished = &now
		view := *job
		s.mu.Unlock()
		s.counters.jobsRejected.Add(1)
		return view, err
	}
	s.counters.jobsSubmitted.Add(1)
	s.mu.Lock()
	view := *job
	s.mu.Unlock()
	return view, nil
}

// execute runs one job on a pool worker and records the outcome. A panic
// anywhere in the solve fails that one job; a server absorbing arbitrary
// client-submitted work must never let one query kill the process.
func (s *Server) execute(job *Job) {
	s.mu.Lock()
	now := time.Now()
	job.Status = StatusRunning
	job.Started = &now
	s.mu.Unlock()

	res, err := func() (res *JobResult, err error) {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("serve: job panicked: %v", p)
			}
		}()
		return s.reg.run(job.Spec)
	}()

	s.mu.Lock()
	end := time.Now()
	job.Finished = &end
	if err != nil {
		job.Status = StatusFailed
		job.Error = err.Error()
	} else {
		job.Status = StatusDone
		job.Result = res
	}
	s.mu.Unlock()
	if err != nil {
		s.counters.jobsFailed.Add(1)
	} else {
		s.counters.jobsDone.Add(1)
	}
}

// pruneLocked drops the oldest finished jobs above the retention cap.
func (s *Server) pruneLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j.Status == StatusDone || j.Status == StatusFailed {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything retained is still queued or running
		}
	}
}

// GetJob returns a snapshot of the job by id.
func (s *Server) GetJob(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("serve: no job %q", id)
	}
	return *j, nil
}

// ListJobs returns snapshots of retained jobs in submission order.
func (s *Server) ListJobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	var spec JobSpec
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job body: %w", err))
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, par.ErrPoolFull):
		apiError(w, http.StatusServiceUnavailable, errors.New("serve: job queue full, retry later"))
	case errors.Is(err, par.ErrPoolClosed):
		apiError(w, http.StatusServiceUnavailable, errors.New("serve: server shutting down"))
	case err != nil:
		apiError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, job)
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.ListJobs()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.GetJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobCentersCSV serves a finished job's centers in exactly the CSV
// format dpc-cluster writes, so `diff` against a CLI run is byte-exact.
func (s *Server) handleJobCentersCSV(w http.ResponseWriter, r *http.Request) {
	job, err := s.GetJob(r.PathValue("id"))
	if err != nil {
		apiError(w, http.StatusNotFound, err)
		return
	}
	if job.Status != StatusDone {
		apiError(w, http.StatusConflict, fmt.Errorf("serve: job %s is %s", job.ID, job.Status))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	dataio.WritePointsCSV(w, rowsToPoints(job.Result.Centers))
}

// RegisterRemote accepts `sites` persistent dpc-site connections on a TCP
// listener bound to addr and registers them as a remote dataset. It blocks
// until every site has joined (dpc-site retries dialing, so start order
// does not matter). The welcome blob is the persistent-mode marker; a
// non-persistent dpc-site pointed here fails its config decode loudly
// instead of hanging.
func (s *Server) RegisterRemote(name, addr string, sites int) (*Dataset, string, error) {
	l, err := transport.Listen(addr, sites)
	if err != nil {
		return nil, "", err
	}
	defer l.Close()
	d, err := s.RegisterRemoteListener(name, l, sites)
	if err != nil {
		return nil, "", err
	}
	return d, l.Addr().String(), nil
}

// RegisterRemoteListener is RegisterRemote over an already-bound listener
// (tests bind to an ephemeral port first so the sites know where to dial
// before the accept loop starts). The caller owns closing l.
func (s *Server) RegisterRemoteListener(name string, l *transport.Listener, sites int) (*Dataset, error) {
	coord, err := l.Accept(sites, []byte(transport.JobsHello))
	if err != nil {
		return nil, err
	}
	d, err := s.reg.RegisterRemote(name, coord)
	if err != nil {
		coord.Close()
		return nil, err
	}
	return d, nil
}

// uptime reports seconds since start (metrics).
func (s *Server) uptime() float64 { return time.Since(s.start).Seconds() }
