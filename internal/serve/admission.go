package serve

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Admission control: real backpressure beyond the blanket 503. Three
// mechanisms keep one hot client from starving a million quiet ones:
//
//   - per-client token quotas: each client (JobSpec.Client, or the
//     X-DPC-Client header) draws submission tokens from its own bucket —
//     burst capacity QuotaBurst, refilled at QuotaPerSec — and an empty
//     bucket rejects with HTTP 429 / code "quota_exceeded" instead of
//     letting the flood consume the shared queue;
//   - queue-time deadlines: a job that waits longer than its (or the
//     server's) queue deadline expires with the stable code
//     "queue_deadline_exceeded" instead of running long after its caller
//     stopped caring — expiry happens both when a worker would pick it up
//     and on the GC sweep, so waiters see it promptly;
//   - priority classes: the scheduler dequeues high before normal before
//     low (FIFO within a class), so latency-sensitive work overtakes bulk
//     backfill even when the queue is deep.

// ErrNotReady is returned by mutating calls while the server is still
// recovering (journal replay, cache staging) or draining. The HTTP layer
// maps it to 503 with the stable code "not_ready"; balancers retry
// another replica.
var ErrNotReady = errors.New("serve: server not ready")

// ErrQuotaExceeded is returned by Submit when the client's token bucket
// is empty. HTTP 429 with the stable code "quota_exceeded"; unlike
// queue_full this is a per-client verdict, so balancers do not retry it
// elsewhere.
var ErrQuotaExceeded = errors.New("serve: client submission quota exceeded")

// Priority classes of JobSpec.Priority. The zero value is PriorityNormal.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// priorityRank maps the class to its dequeue rank (higher first), or an
// error for unknown classes.
func priorityRank(p string) (int, error) {
	switch p {
	case PriorityHigh:
		return 2, nil
	case "", PriorityNormal:
		return 1, nil
	case PriorityLow:
		return 0, nil
	}
	return 0, fmt.Errorf("serve: unknown priority %q (want high, normal or low)", p)
}

// quotaBucket is one client's token bucket.
type quotaBucket struct {
	tokens float64
	last   time.Time
}

// quotas is the per-client token-bucket table. Zero burst disables the
// whole mechanism (take always admits).
type quotas struct {
	burst float64
	rate  float64 // tokens per second
	// buckets is guarded by the server's job mutex (quota decisions are
	// taken inside Submit's critical section anyway).
	buckets map[string]*quotaBucket
}

// maxQuotaClients bounds the bucket table; past it, idle clients (full
// buckets) are pruned before a new one is added. A client set larger than
// this with zero idle members would mean the quota knob is misconfigured
// for the deployment, so the newest client is admitted unmetered rather
// than growing without bound.
const maxQuotaClients = 4096

func newQuotas(burst int, perSec float64) *quotas {
	if burst <= 0 {
		return &quotas{}
	}
	if perSec <= 0 {
		perSec = float64(burst) // default: refill the burst every second
	}
	return &quotas{burst: float64(burst), rate: perSec, buckets: make(map[string]*quotaBucket)}
}

// take consumes one token from client's bucket, reporting whether the
// submission is admitted. Buckets refill continuously at rate up to
// burst.
func (q *quotas) take(client string, now time.Time) bool {
	if q.burst <= 0 {
		return true
	}
	if client == "" {
		client = "anonymous"
	}
	b, ok := q.buckets[client]
	if !ok {
		if len(q.buckets) >= maxQuotaClients {
			for k, old := range q.buckets {
				if old.tokens >= q.burst {
					delete(q.buckets, k)
				}
			}
			if len(q.buckets) >= maxQuotaClients {
				return true // table saturated with active clients; admit unmetered
			}
		}
		b = &quotaBucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// queueEntry is one queued job in the priority heap.
type queueEntry struct {
	id   string
	rank int // priority class rank, higher dequeues first
	seq  int // submission order, lower first within a class
}

// jobQueue is the scheduler's dispatch order: a priority heap the pool
// workers pop from. The pool still bounds concurrency and total queue
// depth (one pool task per heap entry); the heap only decides which
// queued job the next free worker runs.
type jobQueue []queueEntry

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].rank != q[j].rank {
		return q[i].rank > q[j].rank
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)        { *q = append(*q, x.(queueEntry)) }
func (q *jobQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *jobQueue) push(e queueEntry) { heap.Push(q, e) }

// pop removes and returns the highest-priority entry, or false when
// empty.
func (q *jobQueue) pop() (queueEntry, bool) {
	if q.Len() == 0 {
		return queueEntry{}, false
	}
	return heap.Pop(q).(queueEntry), true
}

// remove deletes the entry for id (the rollback when the pool rejects the
// task that was meant to run it).
func (q *jobQueue) remove(id string) {
	for i, e := range *q {
		if e.id == id {
			heap.Remove(q, i)
			return
		}
	}
}

// queueDeadline returns the moment a queued job expires: the tighter of
// the job's own queue timeout and the server-wide default. Zero means no
// deadline.
func queueDeadline(spec JobSpec, submitted time.Time, serverDefault time.Duration) time.Time {
	var dl time.Time
	if serverDefault > 0 {
		dl = submitted.Add(serverDefault)
	}
	if spec.QueueTimeoutMS > 0 {
		own := submitted.Add(time.Duration(spec.QueueTimeoutMS) * time.Millisecond)
		if dl.IsZero() || own.Before(dl) {
			dl = own
		}
	}
	return dl
}
