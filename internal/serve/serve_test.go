package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpc/internal/engine"
	"dpc/internal/gen"
)

// testPoints returns a small deterministic planted workload as JSON rows.
func testPoints(n, k int, seed int64) [][]float64 {
	in := gen.Mixture(gen.MixtureSpec{N: n, K: k, OutlierFrac: 0.05, Seed: seed})
	rows := make([][]float64, len(in.Pts))
	for i, p := range in.Pts {
		rows[i] = p
	}
	return rows
}

// api wraps an httptest server for terse request helpers.
type api struct {
	t   *testing.T
	srv *httptest.Server
}

func newAPI(t *testing.T, cfg Config) (*api, *Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return &api{t: t, srv: hs}, s
}

// do performs a request and decodes the JSON reply into out (skipped when
// out is nil), asserting the status code.
func (a *api) do(method, path string, body any, wantCode int, out any) {
	a.t.Helper()
	var rd *bytes.Reader
	ct := "application/json"
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string: // raw CSV
		rd = bytes.NewReader([]byte(b))
		ct = "text/csv"
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			a.t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, a.srv.URL+path, rd)
	if err != nil {
		a.t.Fatalf("%s %s: %v", method, path, err)
	}
	req.Header.Set("Content-Type", ct)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		a.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		a.t.Fatalf("%s %s: status %d, want %d (%v)", method, path, resp.StatusCode, wantCode, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			a.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

// waitJob polls until the job leaves the queued/running states.
func waitJob(t *testing.T, a *api, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var j Job
		a.do("GET", "/v1/jobs/"+id, nil, http.StatusOK, &j)
		if j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusCanceled {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func TestDatasetLifecycleHTTP(t *testing.T) {
	a, _ := newAPI(t, Config{})

	// JSON registration.
	var info DatasetInfo
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(200, 3, 1)},
		http.StatusCreated, &info)
	if info.Kind != KindTable || info.Points != 200 || info.Dim != 2 {
		t.Fatalf("registered %+v", info)
	}
	versionAtCreate := info.Version
	// Duplicate name rejected as a conflict.
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tbl", Points: testPoints(10, 2, 1)},
		http.StatusConflict, nil)
	// CSV registration via query-param name.
	a.do("POST", "/v1/datasets?name=csvds", "0.5,1.5\n2.5,3.5\n4.5,5.5\n", http.StatusCreated, &info)
	if info.Points != 3 {
		t.Fatalf("csv dataset: %+v", info)
	}
	// Append: table grows, version bumps (versions are registry-global and
	// monotonic, so stale cache keys can never be reused).
	a.do("POST", "/v1/datasets/tbl/points", appendPointsRequest{Points: testPoints(50, 2, 9)},
		http.StatusOK, &info)
	if info.Points != 250 || info.Version <= versionAtCreate {
		t.Fatalf("after append: %+v (version at create %d)", info, versionAtCreate)
	}
	// Dimension mismatch rejected.
	a.do("POST", "/v1/datasets/tbl/points", appendPointsRequest{Points: [][]float64{{1, 2, 3}}},
		http.StatusBadRequest, nil)
	// List and get.
	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	a.do("GET", "/v1/datasets", nil, http.StatusOK, &list)
	if len(list.Datasets) != 2 {
		t.Fatalf("listed %d datasets, want 2", len(list.Datasets))
	}
	a.do("GET", "/v1/datasets/nope", nil, http.StatusNotFound, nil)
	// Delete.
	a.do("DELETE", "/v1/datasets/csvds", nil, http.StatusNoContent, nil)
	a.do("GET", "/v1/datasets/csvds", nil, http.StatusNotFound, nil)

	// Hostile names rejected.
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "../etc", Points: testPoints(5, 1, 1)},
		http.StatusBadRequest, nil)
}

func TestStreamDatasetHTTP(t *testing.T) {
	a, _ := newAPI(t, Config{})
	var info DatasetInfo
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "st", Kind: KindStream, K: 3, T: 10, Chunk: 128},
		http.StatusCreated, &info)
	// Incremental ingest in batches; the sketch keeps memory bounded.
	pts := testPoints(1000, 3, 4)
	for i := 0; i < len(pts); i += 250 {
		a.do("POST", "/v1/datasets/st/points", appendPointsRequest{Points: pts[i : i+250]},
			http.StatusOK, &info)
	}
	if info.Ingested != 1000 {
		t.Fatalf("ingested %d, want 1000", info.Ingested)
	}
	if info.SummarySize > 128 {
		t.Fatalf("summary size %d exceeds chunk", info.SummarySize)
	}
	if info.Compressions == 0 {
		t.Fatalf("no compressions after 1000 points with chunk 128")
	}
	// Query the live sketch.
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "st", K: 3, T: 10}, http.StatusAccepted, &job)
	j := waitJob(t, a, job.ID)
	if j.Status != StatusDone {
		t.Fatalf("stream job failed: %s", j.Error)
	}
	if len(j.Result.Centers) != 3 || j.Result.CostKind != "summary" {
		t.Fatalf("stream result: %d centers, kind %q", len(j.Result.Centers), j.Result.CostKind)
	}
	// Center objective is not answerable from a median sketch.
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "st", K: 3, T: 10, Objective: "center"}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusFailed {
		t.Fatalf("center query on a stream dataset succeeded")
	}
}

func TestJobValidationHTTP(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "d", Points: testPoints(100, 2, 2)},
		http.StatusCreated, nil)
	// Unknown dataset (404 + stable code) and bad enums fail synchronously.
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "nope", K: 2}, http.StatusNotFound, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "d", K: 2, Objective: "mode"}, http.StatusBadRequest, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "d", K: 2, Variant: "3round"}, http.StatusBadRequest, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "d", K: 2, Engine: engine.Spec{Options: engine.Options{Algo: "warp"}}}, http.StatusBadRequest, nil)
	a.do("GET", "/v1/jobs/job-999999", nil, http.StatusNotFound, nil)
	// Degenerate shapes fail synchronously too.
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "d", K: 0}, http.StatusBadRequest, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "d", K: 2, T: -1}, http.StatusBadRequest, nil)
}

func TestHealthzAndMetricsHTTP(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "m", Points: testPoints(150, 2, 3)},
		http.StatusCreated, nil)
	var h map[string]any
	a.do("GET", "/healthz", nil, http.StatusOK, &h)
	if h["status"] != "ok" {
		t.Fatalf("healthz: %v", h)
	}
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "m", K: 2, T: 5, Seed: 1}, http.StatusAccepted, &job)
	waitJob(t, a, job.ID)

	resp, err := http.Get(a.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"dpc_uptime_seconds",
		`dpc_jobs_total{status="done"} 1`,
		"dpc_datasets 1",
		"dpc_cache_pool_entries",
		`dpc_dataset_cache_lookups_total{dataset="m",kind="hit"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestJobsCSVEndpoint(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "c", Points: testPoints(120, 2, 6)},
		http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "c", K: 2, T: 6, Seed: 1}, http.StatusAccepted, &job)
	j := waitJob(t, a, job.ID)
	if j.Status != StatusDone {
		t.Fatalf("job failed: %s", j.Error)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/centers.csv", a.srv.URL, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("centers.csv status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("centers.csv has %d rows, want 2:\n%s", len(lines), buf.String())
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	s := New(Config{})
	s.Registry().RegisterTable("d", rowsToPoints(testPoints(50, 2, 1)))
	s.Close()
	if _, err := s.Submit(JobSpec{Dataset: "d", K: 2}); err == nil {
		t.Fatalf("submit after close succeeded")
	}
}

func TestStreamAppendRejectsDimensionMismatch(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "sd", Kind: KindStream, K: 2, T: 4},
		http.StatusCreated, nil)
	a.do("POST", "/v1/datasets/sd/points", appendPointsRequest{Points: [][]float64{{1, 2}, {3, 4}}},
		http.StatusOK, nil)
	// A 3-dim point into a 2-dim sketch must fail cleanly — and the
	// dataset must stay fully usable afterwards (no wedged lock).
	a.do("POST", "/v1/datasets/sd/points", appendPointsRequest{Points: [][]float64{{1, 2, 3}}},
		http.StatusBadRequest, nil)
	a.do("POST", "/v1/datasets/sd/points", appendPointsRequest{Points: [][]float64{{5, 6}}},
		http.StatusOK, nil)
	var info DatasetInfo
	a.do("GET", "/v1/datasets/sd", nil, http.StatusOK, &info)
	if info.Ingested != 3 {
		t.Fatalf("ingested %d, want 3 (mismatched batch rejected whole)", info.Ingested)
	}
}

func TestDeleteAndReregisterNeverReusesStaleCaches(t *testing.T) {
	a, s := newAPI(t, Config{})
	first := testPoints(100, 2, 70)
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "re", Points: first}, http.StatusCreated, nil)
	spec := JobSpec{Dataset: "re", K: 2, T: 5, Sites: 2, Seed: 4}
	var job Job
	a.do("POST", "/v1/jobs", spec, http.StatusAccepted, &job)
	j1 := waitJob(t, a, job.ID)
	if j1.Status != StatusDone {
		t.Fatalf("job 1 failed: %s", j1.Error)
	}
	buildsAfter1 := s.Registry().Pool().Stats().Builds

	// Same name, same point count, different data: the re-registered
	// dataset must get fresh caches (fresh registry-global version), so
	// results reflect the new points.
	a.do("DELETE", "/v1/datasets/re", nil, http.StatusNoContent, nil)
	second := testPoints(100, 2, 71)
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "re", Points: second}, http.StatusCreated, nil)
	a.do("POST", "/v1/jobs", spec, http.StatusAccepted, &job)
	j2 := waitJob(t, a, job.ID)
	if j2.Status != StatusDone {
		t.Fatalf("job 2 failed: %s", j2.Error)
	}
	if got := s.Registry().Pool().Stats().Builds; got != buildsAfter1+2 {
		t.Fatalf("re-registered dataset built %d new caches, want 2 fresh shard caches", got-buildsAfter1)
	}
	want := oneShot(t, rowsToPoints(second), spec)
	assertCentersEqual(t, j2.Result.Centers, want.Centers, "post-reregister job")
}

func TestJobSitesBounded(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "b", Points: testPoints(60, 2, 8)},
		http.StatusCreated, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "b", K: 2, Sites: MaxJobSites + 1}, http.StatusBadRequest, nil)
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "b", K: 2, Sites: -1}, http.StatusBadRequest, nil)
}

func TestTableJobRejectsBudgetCoveringDataset(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{Name: "tiny", Points: testPoints(20, 2, 12)},
		http.StatusCreated, nil)
	var job Job
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "tiny", K: 2, T: 25, Sites: 2}, http.StatusAccepted, &job)
	j := waitJob(t, a, job.ID)
	if j.Status != StatusFailed {
		t.Fatalf("t >= n job returned %s with %d centers, want failure",
			j.Status, len(j.Result.Centers))
	}
	if !strings.Contains(j.Error, "out of range") {
		t.Fatalf("unhelpful error: %q", j.Error)
	}
}

func TestStreamObjectiveMustMatchSketch(t *testing.T) {
	a, _ := newAPI(t, Config{})
	a.do("POST", "/v1/datasets", createDatasetRequest{
		Name: "med", Kind: KindStream, K: 2, T: 4, Points: testPoints(100, 2, 13)},
		http.StatusCreated, nil)
	a.do("POST", "/v1/datasets", createDatasetRequest{
		Name: "sq", Kind: KindStream, K: 2, T: 4, Means: true, Points: testPoints(100, 2, 13)},
		http.StatusCreated, nil)
	var job Job
	// Matching objectives answer; mismatches fail loudly instead of
	// answering with the other objective's costs.
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "med", K: 2, T: 4}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusDone {
		t.Fatalf("median query on median sketch failed: %s", j.Error)
	}
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "sq", K: 2, T: 4, Objective: "means"}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusDone {
		t.Fatalf("means query on means sketch failed: %s", j.Error)
	}
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "med", K: 2, T: 4, Objective: "means"}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusFailed {
		t.Fatalf("means query on a median sketch succeeded")
	}
	a.do("POST", "/v1/jobs", JobSpec{Dataset: "sq", K: 2, T: 4}, http.StatusAccepted, &job)
	if j := waitJob(t, a, job.ID); j.Status != StatusFailed {
		t.Fatalf("median query on a means sketch succeeded")
	}
}

func TestStreamRegistrationRollsBackOnBadSeedPoints(t *testing.T) {
	a, _ := newAPI(t, Config{})
	// Inline seed points with a dimension mismatch: registration must fail
	// AND free the name for the corrected retry.
	a.do("POST", "/v1/datasets", createDatasetRequest{
		Name: "retry", Kind: KindStream, K: 2, T: 4, Points: [][]float64{{1, 2}, {3}}},
		http.StatusBadRequest, nil)
	a.do("POST", "/v1/datasets", createDatasetRequest{
		Name: "retry", Kind: KindStream, K: 2, T: 4, Points: [][]float64{{1, 2}, {3, 4}}},
		http.StatusCreated, nil)
}
