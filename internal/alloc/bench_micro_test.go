package alloc

import (
	"math/rand"
	"testing"

	"dpc/internal/geom"
)

func BenchmarkAllocate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	fns := make([]geom.ConvexFn, 32)
	for i := range fns {
		fns[i] = randomConvexFnBench(r, 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Allocate(fns, 2000)
	}
}

func randomConvexFnBench(r *rand.Rand, t int) geom.ConvexFn {
	grid := geom.Grid(t, 2)
	samples := make([]geom.Vertex, 0, len(grid))
	c := 1000 + r.Float64()*1000
	for _, q := range grid {
		samples = append(samples, geom.Vertex{Q: q, C: c})
		c *= r.Float64()
	}
	f, err := geom.NewConvexFn(samples)
	if err != nil {
		panic(err)
	}
	return f
}
