// Package alloc implements the outlier-budget allocation protocol of
// Algorithm 1 (Steps 7-14) and Lemma 3.3: given each site's convex local
// cost curve f_i, split a global budget of R = floor(rho*t) outliers into
// per-site budgets t_1..t_s minimizing sum_i f_i(t_i).
//
// The protocol ranks all marginal savings l(i,q) = f_i(q-1) - f_i(q) in
// decreasing order, breaking ties by the lexicographic order of (i,q)
// (Equation (4), "stable sort" in Step 8), takes the entry of rank R as the
// pivot, and gives each site the prefix of its own savings that sort at or
// before the pivot. Convexity of the f_i makes each site's included set a
// prefix, and greedily taking the R largest savings is exactly the optimum
// of the separable convex minimization (Lemma 3.3).
package alloc

import (
	"sort"

	"dpc/internal/geom"
)

// Pivot identifies the rank-R slope entry l(i0,q0) that the coordinator
// broadcasts in Step 9 of Algorithm 1. Sites reconstruct their budget from
// the pivot alone, so broadcasting it costs O(1) words per site.
type Pivot struct {
	I0, Q0 int     // site and budget index of the pivot entry
	L0     float64 // the pivot slope value l(i0, q0)
	Rank   int     // the requested rank R
	// Exhausted reports that fewer than R slope entries exist in total; in
	// that case every site simply takes its full domain and there is no
	// meaningful pivot (I0 = -1).
	Exhausted bool
}

// run is a site-tagged slope run.
type run struct {
	s      float64
	site   int
	lo, hi int
}

// Allocate computes the pivot of rank R over the slope entries of fns and
// the per-site budgets it induces. fns[i] is site i's convex cost curve;
// R is the global rank (floor(rho*t) in Algorithm 1).
//
// The returned budgets satisfy sum(ts) == min(R, total entries) and, by
// Lemma 3.3, minimize sum_i fns[i](ts[i]) subject to that total.
func Allocate(fns []geom.ConvexFn, R int) (Pivot, []int) {
	s := len(fns)
	ts := make([]int, s)
	if R <= 0 {
		return Pivot{I0: -1, Rank: R, Exhausted: false}, ts
	}
	var runs []run
	total := 0
	for i, f := range fns {
		for _, sr := range f.Runs() {
			runs = append(runs, run{s: sr.S, site: i, lo: sr.Lo, hi: sr.Hi})
			total += sr.Hi - sr.Lo + 1
		}
	}
	if total <= R {
		for i, f := range fns {
			ts[i] = f.T()
		}
		return Pivot{I0: -1, Rank: R, Exhausted: true}, ts
	}
	// Stable decreasing sort: larger slope first; ties by (site, q).
	sort.Slice(runs, func(a, b int) bool {
		if runs[a].s != runs[b].s {
			return runs[a].s > runs[b].s
		}
		if runs[a].site != runs[b].site {
			return runs[a].site < runs[b].site
		}
		return runs[a].lo < runs[b].lo
	})
	cum := 0
	var p Pivot
	for _, rn := range runs {
		n := rn.hi - rn.lo + 1
		if cum+n >= R {
			p = Pivot{I0: rn.site, Q0: rn.lo + (R - cum) - 1, L0: rn.s, Rank: R}
			break
		}
		cum += n
	}
	for i, f := range fns {
		ts[i] = BudgetForSite(f, i, p)
	}
	return p, ts
}

// BudgetForSite recomputes site i's budget t_i from the broadcast pivot
// (Step 11 of Algorithm 1): the number of entries (l(i,q), (i,q)) of site i
// that sort at or before the pivot under the stable decreasing order. For
// the pivot site itself this is exactly Q0.
//
// Both the coordinator and the sites derive slopes from the identical hull
// representation (geom.ConvexFn.Runs), so the float comparisons below are
// reproducible across the two ends of the protocol.
func BudgetForSite(f geom.ConvexFn, i int, p Pivot) int {
	if p.Exhausted {
		return f.T()
	}
	if p.Rank <= 0 {
		return 0
	}
	if i == p.I0 {
		return p.Q0
	}
	t := 0
	for _, sr := range f.Runs() {
		switch {
		case sr.S > p.L0:
			t = sr.Hi
		case sr.S == p.L0 && i < p.I0:
			t = sr.Hi
		}
	}
	return t
}

// FinalBudget is the budget a site actually solves with in round 2:
// Step 11's BudgetForSite for ordinary sites, and the Line 13 rounding for
// the pivot site itself (its budget moves up to the next hull vertex,
// where the hull cost is achieved). Sites and coordinator both call this,
// so the two ends of the protocol cannot drift apart.
func FinalBudget(f geom.ConvexFn, i int, p Pivot) int {
	if i == p.I0 {
		return f.NextVertex(p.Q0)
	}
	return BudgetForSite(f, i, p)
}

// Total returns the sum of the budgets (convenience for invariant checks).
func Total(ts []int) int {
	sum := 0
	for _, t := range ts {
		sum += t
	}
	return sum
}
