package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpc/internal/geom"
)

// randomConvexFn builds a convex fn from random samples on a geometric grid.
func randomConvexFn(r *rand.Rand, t int) geom.ConvexFn {
	grid := geom.Grid(t, 2)
	samples := make([]geom.Vertex, 0, len(grid))
	c := 100 + r.Float64()*900
	for _, q := range grid {
		samples = append(samples, geom.Vertex{Q: q, C: c})
		c *= r.Float64() // strictly decreasing, convex-ish decay
	}
	f, err := geom.NewConvexFn(samples)
	if err != nil {
		panic(err)
	}
	return f
}

// dpOptimum solves min sum f_i(t_i) s.t. sum t_i <= R exactly by dynamic
// programming (the truth Lemma 3.3 is checked against).
func dpOptimum(fns []geom.ConvexFn, R int) float64 {
	cur := make([]float64, R+1)
	next := make([]float64, R+1)
	for r := range cur {
		cur[r] = 0
	}
	for i := len(fns) - 1; i >= 0; i-- {
		f := fns[i]
		for r := 0; r <= R; r++ {
			best := math.Inf(1)
			maxQ := f.T()
			if maxQ > r {
				maxQ = r
			}
			for q := 0; q <= maxQ; q++ {
				if v := f.Eval(q) + cur[r-q]; v < best {
					best = v
				}
			}
			next[r] = best
		}
		cur, next = next, cur
	}
	return cur[R]
}

func TestAllocateMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		s := 1 + r.Intn(5)
		tt := 1 + r.Intn(30)
		fns := make([]geom.ConvexFn, s)
		for i := range fns {
			fns[i] = randomConvexFn(r, 1+r.Intn(tt))
		}
		R := 1 + r.Intn(2*tt)
		_, ts := Allocate(fns, R)
		var got float64
		sum := 0
		for i, f := range fns {
			got += f.Eval(ts[i])
			sum += ts[i]
			if ts[i] < 0 || ts[i] > f.T() {
				t.Fatalf("budget out of range: ts[%d]=%d, T=%d", i, ts[i], f.T())
			}
		}
		if sum > R {
			t.Fatalf("sum(ts)=%d > R=%d", sum, R)
		}
		want := dpOptimum(fns, R)
		if got > want+1e-6*(1+want) {
			t.Fatalf("trial %d: Allocate cost %g, DP optimum %g (ts=%v R=%d)", trial, got, want, ts, R)
		}
	}
}

func TestAllocateSumEqualsRankWhenNotExhausted(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		s := 1 + r.Intn(6)
		fns := make([]geom.ConvexFn, s)
		total := 0
		for i := range fns {
			fns[i] = randomConvexFn(r, 1+r.Intn(40))
			total += fns[i].T()
		}
		R := 1 + r.Intn(total)
		p, ts := Allocate(fns, R)
		if p.Exhausted {
			if Total(ts) != total {
				t.Fatalf("exhausted but sum=%d, total=%d", Total(ts), total)
			}
			continue
		}
		if Total(ts) != R {
			t.Fatalf("trial %d: sum(ts)=%d, want exactly R=%d (pivot %+v, ts=%v)", trial, Total(ts), R, p, ts)
		}
	}
}

func TestSitesReconstructBudgetsFromPivot(t *testing.T) {
	// The essence of the 2-round protocol: a site, given only the pivot,
	// must compute the same budget the coordinator computed.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		s := 2 + r.Intn(5)
		fns := make([]geom.ConvexFn, s)
		for i := range fns {
			fns[i] = randomConvexFn(r, 1+r.Intn(25))
		}
		R := 1 + r.Intn(40)
		p, ts := Allocate(fns, R)
		for i, f := range fns {
			if got := BudgetForSite(f, i, p); got != ts[i] {
				t.Fatalf("site %d reconstructs %d, coordinator said %d (pivot %+v)", i, got, ts[i], p)
			}
		}
	}
}

func TestAllocateZeroRank(t *testing.T) {
	fns := []geom.ConvexFn{mustFn(t, []geom.Vertex{{Q: 0, C: 10}, {Q: 5, C: 0}})}
	p, ts := Allocate(fns, 0)
	if ts[0] != 0 {
		t.Fatalf("ts = %v, want [0]", ts)
	}
	if got := BudgetForSite(fns[0], 0, p); got != 0 {
		t.Fatalf("BudgetForSite = %d, want 0", got)
	}
}

func TestAllocateExhausted(t *testing.T) {
	fns := []geom.ConvexFn{
		mustFn(t, []geom.Vertex{{Q: 0, C: 10}, {Q: 3, C: 0}}),
		mustFn(t, []geom.Vertex{{Q: 0, C: 10}, {Q: 2, C: 0}}),
	}
	p, ts := Allocate(fns, 100)
	if !p.Exhausted {
		t.Fatal("expected exhausted pivot")
	}
	if ts[0] != 3 || ts[1] != 2 {
		t.Fatalf("ts = %v, want [3 2]", ts)
	}
	for i, f := range fns {
		if got := BudgetForSite(f, i, p); got != ts[i] {
			t.Fatalf("reconstruction mismatch at %d", i)
		}
	}
}

func TestTieBreakIsLexicographic(t *testing.T) {
	// Two sites with identical curves: slope 1 everywhere on [1..4].
	mk := func() geom.ConvexFn {
		return mustFn(t, []geom.Vertex{{Q: 0, C: 4}, {Q: 4, C: 0}})
	}
	fns := []geom.ConvexFn{mk(), mk()}
	// R=3: entries sorted: (0,1),(0,2),(0,3),(0,4),(1,1),... pivot = (0,3).
	p, ts := Allocate(fns, 3)
	if p.I0 != 0 || p.Q0 != 3 {
		t.Fatalf("pivot = %+v, want site 0 q 3", p)
	}
	if ts[0] != 3 || ts[1] != 0 {
		t.Fatalf("ts = %v, want [3 0]", ts)
	}
	// R=6: pivot lands in site 1 at q=2; site 0 takes its full tie run.
	p, ts = Allocate(fns, 6)
	if p.I0 != 1 || p.Q0 != 2 {
		t.Fatalf("pivot = %+v, want site 1 q 2", p)
	}
	if ts[0] != 4 || ts[1] != 2 {
		t.Fatalf("ts = %v, want [4 2]", ts)
	}
}

// Property: greedy allocation never exceeds per-site domains and is optimal.
func TestAllocatePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 1 + r.Intn(4)
		fns := make([]geom.ConvexFn, s)
		for i := range fns {
			fns[i] = randomConvexFn(r, 1+r.Intn(16))
		}
		R := r.Intn(30)
		_, ts := Allocate(fns, R)
		var got float64
		for i, fn := range fns {
			if ts[i] < 0 || ts[i] > fn.T() {
				return false
			}
			got += fn.Eval(ts[i])
		}
		if Total(ts) > R && R >= 0 {
			return false
		}
		return got <= dpOptimum(fns, R)+1e-6*(1+got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func mustFn(t *testing.T, samples []geom.Vertex) geom.ConvexFn {
	t.Helper()
	f, err := geom.NewConvexFn(samples)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
