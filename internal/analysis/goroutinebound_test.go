package analysis_test

import (
	"testing"

	"dpc/internal/analysis"
	"dpc/internal/analysis/atest"
)

func TestGoroutineBound(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.GoroutineBound, "gb/serve")
}

func TestGoroutineBoundScope(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.GoroutineBound, "gb/other")
}
