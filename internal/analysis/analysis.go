// Package analysis is dpc's static-analysis suite: a small, self-contained
// framework in the shape of golang.org/x/tools/go/analysis plus the five
// dpc-vet analyzers that freeze this repo's cross-cutting invariants —
// determinism of solver results, context cancellation flow, journal-before-
// apply durability, stable wire error codes, and oracle-typed solver entry
// points — as compile-time rules.
//
// The framework mirrors the x/tools Analyzer/Pass/Diagnostic vocabulary but
// is built purely on the standard library (go/ast, go/types, go/importer
// driven by `go list -export`), so the suite builds and runs in a hermetic
// environment with no module downloads. If the module ever grows a vendored
// x/tools, each analyzer's Run body ports over mechanically.
//
// Suppression directives, checked per diagnostic line (the line itself or
// the line directly above):
//
//	//dpc:nondeterministic-ok <reason>   – allowlists a determinism finding
//	//dpc:vet-ok <analyzer> <reason>     – allowlists a finding of any analyzer
//
// A directive with no reason is itself a diagnostic: allowlisting without
// saying why defeats the point of the audit trail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run reports findings through the
// Pass; it must not retain the Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -analyzers filters and
	// //dpc:vet-ok directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by dpc-vet -help.
	Doc string
	// Scope restricts the analyzer to packages whose final import-path
	// segment (with any "_test" suffix stripped, so external test packages
	// inherit their package's scope) matches an entry. Nil means every
	// package.
	Scope []string
	// Run inspects the package behind pass and reports diagnostics.
	Run func(pass *Pass)
}

// Applies reports whether the analyzer's Scope admits the package path.
func (a *Analyzer) Applies(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	seg := pkgPath
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	seg = strings.TrimSuffix(seg, "_test")
	for _, s := range a.Scope {
		if s == seg {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by position then analyzer for stable
// output across runs (the suite's own determinism bar).
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources (with comments), test files
	// included when the loader was asked for them.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// Path is the display import path: the test-variant suffix that go
	// list prints ("pkg [pkg.test]") is stripped.
	Path string

	suppress map[suppressKey]bool
	out      *[]Diagnostic
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a diagnostic at pos unless a directive on the same line,
// or on the line directly above, allowlists this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if p.suppress[suppressKey{position.Filename, line, p.Analyzer.Name}] {
			return
		}
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is Info.TypeOf, tolerating a nil expression.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// directivePrefix introduces every dpc vet directive comment.
const directivePrefix = "//dpc:"

// collectDirectives scans a file's comments for suppression directives,
// filling the pass-independent suppression index. Malformed directives
// (unknown verb, missing reason) are reported as "directive" diagnostics —
// those are never suppressible.
func collectDirectives(fset *token.FileSet, files []*ast.File, suppress map[suppressKey]bool, out *[]Diagnostic) {
	report := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		*out = append(*out, Diagnostic{
			Analyzer: "directive",
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				verb, rest, _ := strings.Cut(text, " ")
				rest = strings.TrimSpace(rest)
				position := fset.Position(c.Pos())
				switch verb {
				case "nondeterministic-ok":
					if rest == "" {
						report(c.Pos(), "//dpc:nondeterministic-ok needs a reason")
						continue
					}
					suppress[suppressKey{position.Filename, position.Line, "determinism"}] = true
				case "vet-ok":
					name, reason, _ := strings.Cut(rest, " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						report(c.Pos(), "//dpc:vet-ok needs an analyzer name and a reason")
						continue
					}
					suppress[suppressKey{position.Filename, position.Line, name}] = true
				default:
					report(c.Pos(), fmt.Sprintf("unknown directive //dpc:%s (want nondeterministic-ok or vet-ok)", verb))
				}
			}
		}
	}
}

// --- shared type helpers used by the analyzers ---

// namedType unwraps pointers and aliases and reports the defining package
// path and type name of a named type, or "" if t is not named.
func namedType(t types.Type) (pkgPath, name string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// pkgSegment returns the final segment of an import path.
func pkgSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	path, name := namedType(t)
	return path == "context" && name == "Context"
}

// calleeFunc resolves the static *types.Func a call dispatches to, or nil
// for calls through function values, builtins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeSignature resolves the signature a call invokes, through named
// function types and method values too; nil for builtins and conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// isPkgFuncCall reports whether call statically invokes the package-level
// function pkgPath.name.
func isPkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
