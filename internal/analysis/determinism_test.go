package analysis_test

import (
	"testing"

	"dpc/internal/analysis"
	"dpc/internal/analysis/atest"
)

func TestDeterminism(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Determinism, "determ/kmedian")
}

// The same constructs outside the solver scope must produce nothing.
func TestDeterminismOutOfScope(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Determinism, "determ/util")
}
