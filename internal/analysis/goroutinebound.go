package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// GoroutineBound keeps internal/serve's concurrency bounded: the server's
// whole admission-control story (queue caps, the worker pool, per-client
// quotas) is void if a handler can spawn goroutines proportional to
// request volume or input size. The analyzer flags a `go` statement that
// sits inside a loop, or anywhere in a request handler (a function taking
// net/http's ResponseWriter/*Request), unless a semaphore acquire — a
// channel send — precedes it in the same scope: the counting-semaphore
// idiom (`sem <- struct{}{}` before `go`, receive on exit) is the one
// sanctioned way to spawn per item. Fixed background goroutines (gcLoop,
// a one-off drain helper) are untouched, test files are exempt (a test
// fleet spawning one goroutine per simulated site is bounded by the test,
// not a semaphore), and a deliberate unbounded spawn in production code
// needs //dpc:vet-ok goroutinebound <reason>.
var GoroutineBound = &Analyzer{
	Name:  "goroutinebound",
	Doc:   "in internal/serve, go statements inside loops or request handlers must be bounded by a semaphore acquire (or the worker pool)",
	Scope: []string{"serve"},
	Run:   runGoroutineBound,
}

func runGoroutineBound(pass *Pass) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var fn *ast.FuncType
			var body *ast.BlockStmt
			var name string
			switch d := n.(type) {
			case *ast.FuncDecl:
				fn, body, name = d.Type, d.Body, d.Name.Name
			case *ast.FuncLit:
				fn, body, name = d.Type, d.Body, "func literal"
			default:
				return true
			}
			if body != nil {
				checkGoStmts(pass, name, body, isRequestHandler(pass, fn.Params))
			}
			// Nested function literals are visited by the enclosing
			// Inspect and analyzed as their own scope above; checkGoStmts
			// itself does not descend into them.
			return true
		})
	}
}

// isRequestHandler reports whether the parameter list marks a per-request
// function: any parameter of net/http's *Request or ResponseWriter type.
func isRequestHandler(pass *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if path, tname := namedType(t); path == "net/http" && (tname == "Request" || tname == "ResponseWriter") {
			return true
		}
	}
	return false
}

// checkGoStmts walks one function body (skipping nested function
// literals, which are scopes of their own) and reports every go statement
// that is inside a loop, or anywhere in a request handler, without a
// preceding channel send in the bounding scope.
func checkGoStmts(pass *Pass, fnName string, body *ast.BlockStmt, handler bool) {
	// Semaphore acquires: every channel send in this function's own scope.
	var sends []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			sends = append(sends, s.Pos())
		}
		return true
	})
	boundedBefore := func(scope ast.Node, pos token.Pos) bool {
		for _, s := range sends {
			if s >= scope.Pos() && s < pos {
				return true
			}
		}
		return false
	}

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // own scope; no push, no pop event
		}
		if g, ok := n.(*ast.GoStmt); ok {
			if loop := innermostLoop(stack); loop != nil {
				if !boundedBefore(loopBody(loop), g.Pos()) {
					pass.Reportf(g.Pos(), "go statement inside a loop in %s spawns unbounded goroutines; acquire a semaphore slot first or dispatch on the worker pool", fnName)
				}
			} else if handler {
				if !boundedBefore(body, g.Pos()) {
					pass.Reportf(g.Pos(), "go statement in request handler %s spawns one goroutine per request; acquire a semaphore slot first or dispatch on the worker pool", fnName)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// innermostLoop returns the deepest enclosing for/range statement on the
// walk stack, or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}

// loopBody returns the body block of a for or range statement.
func loopBody(loop ast.Node) ast.Node {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return loop
}
