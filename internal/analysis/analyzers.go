package analysis

import "fmt"

// All returns the full dpc-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, CtxFlow, JournalBefore, ErrCode, OracleGuard, GoroutineBound}
}

// Select resolves a comma-free list of analyzer names against the suite;
// empty names selects everything.
func Select(names []string) ([]*Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
