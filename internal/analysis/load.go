// The loader: a `go list -deps -test -export -json` driven package loader
// that parses target packages from source and type-checks them against the
// build cache's export data for dependencies. This is the same architecture
// as x/tools go/packages LoadAllSyntax for the roots / export data for deps,
// reimplemented on the standard library so dpc-vet works with no module
// downloads. The gc importer reads dependency export data straight out of
// the artifacts `go list -export` compiled.
package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath  string
	Dir         string
	Standard    bool
	DepOnly     bool
	ForTest     string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Export      string
	ImportMap   map[string]string
	Error       *struct{ Err string }
}

// files returns the package's compilable sources. GoFiles is already
// complete for every variant go list emits: test variants ("pkg
// [pkg.test]", external "pkg_test [pkg.test]") fold their _test.go sources
// into GoFiles, so TestGoFiles is only the plain package's cross-reference
// and must not be re-appended.
func (p *listPackage) files() []string {
	return append(append([]string{}, p.GoFiles...), p.CgoFiles...)
}

// displayPath strips go list's test-variant suffix: "pkg [pkg.test]" → "pkg".
func displayPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// A Package is one loaded, type-checked analysis target.
type Package struct {
	Path  string // display import path
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadOptions configure Load.
type LoadOptions struct {
	// Dir is the directory go list runs in (its module is analyzed).
	// Empty means the current directory.
	Dir string
	// Patterns are go package patterns ("./...", "./internal/serve").
	// Empty defaults to "./...".
	Patterns []string
	// Tests includes each package's test files (in-package and external
	// test packages) among the targets.
	Tests bool
}

// Load lists, parses and type-checks the packages matching the patterns.
// It returns one Package per analysis target; a package that fails to list
// or type-check yields an error instead (analysis needs sound types).
func Load(opts LoadOptions) ([]*Package, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-deps", "-export", "-json"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, opts.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w", err)
	}

	byPath := map[string]*listPackage{}
	var order []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		q := p
		byPath[q.ImportPath] = &q
		order = append(order, &q)
	}

	// An in-package test variant supersedes its plain package: it carries
	// the same GoFiles plus the _test.go files, so analyzing both would
	// duplicate every diagnostic in the shared files.
	superseded := map[string]bool{}
	for _, p := range order {
		if p.ForTest != "" && displayPath(p.ImportPath) == p.ForTest {
			superseded[p.ForTest] = true
		}
	}

	var loadErrs []error
	var pkgs []*Package
	for _, p := range order {
		if p.Standard || p.DepOnly || superseded[p.ImportPath] {
			continue
		}
		// Skip the synthesized test-main packages ("pkg.test"): their one
		// generated file is toolchain output, not repo code.
		if strings.HasSuffix(p.ImportPath, ".test") && p.ForTest == "" {
			continue
		}
		if p.Error != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		if len(p.files()) == 0 {
			continue
		}
		pkg, err := typecheck(p, byPath)
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, errors.Join(loadErrs...)
}

// typecheck parses one listed package and type-checks it, resolving imports
// through the export data go list compiled for the dependency graph.
func typecheck(p *listPackage, byPath map[string]*listPackage) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.files() {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[importPath]; ok {
			importPath = mapped
		}
		dep, ok := byPath[importPath]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(dep.Export)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: %w", p.ImportPath, errors.Join(typeErrs...))
	} else if err != nil {
		return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:  displayPath(p.ImportPath),
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}, nil
}

// Vet loads the packages and runs every applicable analyzer, returning the
// surviving (non-allowlisted) diagnostics sorted by position. The returned
// error covers load/type-check failures only; diagnostics are data.
func Vet(opts LoadOptions, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(opts)
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, run(pkg, analyzers)...)
	}
	sortDiagnostics(out)
	return dedupe(out), err
}

// RunPackage applies the analyzers to one already-loaded package: directive
// collection, scope filtering, suppression, reporting. It is the seam the
// atest harness drives with packages it type-checked itself.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	out := run(pkg, analyzers)
	sortDiagnostics(out)
	return dedupe(out)
}

// run applies the analyzers to one loaded package.
func run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	suppress := map[suppressKey]bool{}
	collectDirectives(pkg.Fset, pkg.Files, suppress, &out)
	for _, a := range analyzers {
		if !a.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Path:     pkg.Path,
			suppress: suppress,
			out:      &out,
		}
		a.Run(pass)
	}
	return out
}

// dedupe drops exact-duplicate findings (a file shared between a package
// and a sibling variant can surface the same diagnostic twice). ds must be
// sorted.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
