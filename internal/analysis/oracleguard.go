package analysis

import (
	"go/ast"
	"go/types"
)

// OracleGuard keeps solver entry points oracle-typed: a parameter declared
// as the concrete *metric.DistCache or *metric.Index welds the solver to
// one acceleration structure, where metric.Oracle (which both satisfy, and
// which the ROADMAP's out-of-core store will too) slots any of them in.
// The metric package itself is out of scope — it owns the concrete types —
// and deliberate compat shims carry //dpc:vet-ok oracleguard <reason>.
var OracleGuard = &Analyzer{
	Name:  "oracleguard",
	Doc:   "solver functions must accept metric.Oracle, not concrete *DistCache/*Index parameters",
	Scope: []string{"kmedian", "kcenter", "core", "uncertain", "central", "stream", "protocol"},
	Run:   runOracleGuard,
}

func runOracleGuard(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var params *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				params = fn.Type.Params
			case *ast.FuncLit:
				params = fn.Type.Params
			default:
				return true
			}
			checkOracleParams(pass, params)
			return true
		})
	}
}

func checkOracleParams(pass *Pass, params *ast.FieldList) {
	if params == nil {
		return
	}
	for _, field := range params.List {
		if name := concreteOracle(pass.TypeOf(field.Type)); name != "" {
			pass.Reportf(field.Type.Pos(), "parameter typed as concrete metric.%s; accept metric.Oracle so other oracles (cache, index, out-of-core) slot in", name)
		}
	}
}

// concreteOracle reports the offending type name when t (possibly behind a
// pointer or slice) is metric.DistCache or metric.Index.
func concreteOracle(t types.Type) string {
	if t == nil {
		return ""
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	path, name := namedType(t)
	if pkgSegment(path) != "metric" {
		return ""
	}
	if name == "DistCache" || name == "Index" {
		return name
	}
	return ""
}
