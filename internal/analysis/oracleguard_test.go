package analysis_test

import (
	"testing"

	"dpc/internal/analysis"
	"dpc/internal/analysis/atest"
)

func TestOracleGuard(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.OracleGuard, "og/kmedian")
}

// Pool/spill infrastructure outside the solver scope legitimately names the
// concrete cache types.
func TestOracleGuardOutOfScope(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.OracleGuard, "og/pool")
}
