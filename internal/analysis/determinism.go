package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// solverScope names the packages whose outputs must be bit-identical across
// engines, worker counts and backends (the TestWorkersParity contract).
// Order-sensitive constructs inside them are determinism bugs by default.
var solverScope = []string{"kmedian", "kcenter", "core", "uncertain", "central", "metric", "par", "stream"}

// Determinism flags constructs whose result depends on map iteration order,
// wall-clock time, the global rand source, or goroutine scheduling inside
// the solver packages: ranging over a map while appending to a slice,
// accumulating a float or sending on a channel (without a subsequent
// deterministic sort), time.Now, package-level math/rand calls, and select
// statements with multiple sends. Allowlist deliberate sites with
// //dpc:nondeterministic-ok <reason>.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "flags map-iteration-order, wall-clock, global-rand and scheduling dependence in solver packages",
	Scope: solverScope,
	Run:   runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkMapRanges(pass, n.List)
			case *ast.CaseClause:
				checkMapRanges(pass, n.Body)
			case *ast.CommClause:
				checkMapRanges(pass, n.Body)
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.SelectStmt:
				sends := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						if _, isSend := cc.Comm.(*ast.SendStmt); isSend {
							sends++
						}
					}
				}
				if sends >= 2 {
					pass.Reportf(n.Select, "select with %d send cases delivers in scheduler order; solver packages must not race results", sends)
				}
			}
			return true
		})
	}
}

// checkNondetCall flags time.Now and the process-global math/rand source.
// Seeded generators (rand.New(rand.NewSource(seed))) are the sanctioned
// idiom and stay silent.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in a solver package: wall clock must not influence results")
		}
	case "math/rand", "math/rand/v2":
		if fn.Name() == "New" || fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8" {
			return
		}
		pass.Reportf(call.Pos(), "package-level rand.%s uses the process-global source; derive a seeded *rand.Rand instead", fn.Name())
	}
}

// checkMapRanges scans one statement list for map-range loops whose body
// accumulates order-sensitively, excusing loops followed by a sort in the
// same list.
func checkMapRanges(pass *Pass, list []ast.Stmt) {
	for i, stmt := range list {
		if labeled, ok := stmt.(*ast.LabeledStmt); ok {
			stmt = labeled.Stmt
		}
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			continue
		}
		what := orderSensitiveAccum(pass, rng)
		if what == "" {
			continue
		}
		if sortFollows(pass, list[i+1:]) {
			continue
		}
		pass.Reportf(rng.For, "range over map %s %s with no subsequent deterministic sort; iteration order leaks into results", exprString(rng.X), what)
	}
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderSensitiveAccum reports how the loop body accumulates state whose
// final value depends on iteration order: appending to a slice declared
// outside the loop, arithmetic accumulation into an outer float, or a
// channel send. Returns "" when the body is order-safe.
func orderSensitiveAccum(pass *Pass, rng *ast.RangeStmt) string {
	var what string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			what = "sends to a channel"
		case *ast.AssignStmt:
			what = assignAccum(pass, n, rng)
		}
		return what == ""
	})
	return what
}

// assignAccum classifies one assignment inside a map-range body.
func assignAccum(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) string {
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(assign.Lhs) != 1 {
			return ""
		}
		if target, ok := outerScalar(pass, assign.Lhs[0], rng); ok {
			return "accumulates float " + target
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pass.Info.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.Info.ObjectOf(lhs); obj != nil && obj.Pos().IsValid() && obj.Pos() < rng.Pos() {
				return "appends to " + lhs.Name
			}
		}
	}
	return ""
}

// outerScalar reports whether e is a float-typed identifier (or field of
// one) declared before the loop. Accumulating into m[k] while ranging m is
// per-key and stays silent.
func outerScalar(pass *Pass, e ast.Expr, rng *ast.RangeStmt) (string, bool) {
	e = ast.Unparen(e)
	root := e
	if sel, ok := e.(*ast.SelectorExpr); ok {
		root = sel.X
	}
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		return "", false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return "", false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return "", false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil || !obj.Pos().IsValid() || obj.Pos() >= rng.Pos() {
		return "", false
	}
	return exprString(e), true
}

// sortFollows reports whether any later statement in the same list sorts —
// a call into sort/slices, or a local helper whose name says it sorts.
func sortFollows(pass *Pass, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
				found = true
			} else if strings.Contains(strings.ToLower(fn.Name()), "sort") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// exprString renders a short source form of simple expressions for
// diagnostics (identifiers and selector chains; anything else is elided).
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "expression"
}
